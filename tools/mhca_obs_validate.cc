// Standalone validator for the telemetry artifacts mhca_sim emits:
//
//   mhca_obs_validate trace TRACE.json
//       well-formed Chrome trace-event JSON: parses, ts monotonically
//       non-decreasing within each (pid, tid) track, every "B" closed by
//       an "E".
//
//   mhca_obs_validate metrics SNAPSHOT.json SCHEMA.json
//       MetricsRegistry snapshot against a checked-in schema
//       (tools/metrics_schema.json): required keys/domains present, every
//       key `domain.name`-shaped, all values numeric.
//
// Exit 0 when valid; exit 1 with one violation per line otherwise. CI runs
// both against a traced scenario on every push (.github/workflows/ci.yml).

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/validate.h"

namespace {

bool read_file(const std::string& path, std::string& out) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return false;
  std::ostringstream ss;
  ss << f.rdbuf();
  out = ss.str();
  return true;
}

int usage() {
  std::fprintf(stderr,
               "usage: mhca_obs_validate trace TRACE.json\n"
               "       mhca_obs_validate metrics SNAPSHOT.json SCHEMA.json\n");
  return 2;
}

int report(const char* what, const std::string& path,
           const std::vector<std::string>& errors) {
  if (errors.empty()) {
    std::printf("%s OK: %s\n", what, path.c_str());
    return 0;
  }
  std::fprintf(stderr, "%s INVALID: %s\n", what, path.c_str());
  for (const std::string& e : errors)
    std::fprintf(stderr, "  - %s\n", e.c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string mode = argv[1];
  std::string text;
  if (!read_file(argv[2], text)) {
    std::fprintf(stderr, "cannot read %s\n", argv[2]);
    return 1;
  }
  if (mode == "trace") {
    return report("trace", argv[2], mhca::obs::validate_chrome_trace(text));
  }
  if (mode == "metrics") {
    if (argc < 4) return usage();
    std::string schema;
    if (!read_file(argv[3], schema)) {
      std::fprintf(stderr, "cannot read %s\n", argv[3]);
      return 1;
    }
    return report("metrics", argv[2],
                  mhca::obs::validate_metrics_snapshot(text, schema));
  }
  return usage();
}
