// mhca_sim — scenario-file-driven CLI for the channel-access system.
//
//   mhca_sim run <scenario.ini> [--override SEC.KEY=VAL]... [--csv PATH] [--net]
//   mhca_sim print <scenario.ini> [--override SEC.KEY=VAL]...
//   mhca_sim list
//
// Every experiment is a declarative Scenario (src/scenario/README.md):
// topology x channel model x policy x solver knobs are selected by registry
// string keys, so any cell of the paper's evaluation grid runs with no
// recompilation:
//
//   mhca_sim run examples/scenarios/quickstart.ini \
//       --override policy.kind=thompson --override solver.r=3
//
// `run` executes the scenario: a single simulation by default, a multi-seed
// replication when [replication] replications >= 1, or the message-level
// protocol runtime with --net. `print` parses + validates and emits the
// canonical serialized form (what a round-trip preserves). `list` shows
// every registered topology / channel model / policy / dynamics model with
// its accepted keys.
//
// Observability (src/obs/README.md): --trace PATH writes a Perfetto-loadable
// Chrome trace-event timeline of the run, --metrics PATH a metrics-registry
// snapshot (JSON, or CSV when PATH ends in .csv) — both are sugar for the
// scenario's [obs] section. --json replaces the human tables with exactly
// one machine-readable JSON object on stdout; the greppable
// `trace_hash = 0x...` / `decision_digest = 0x...` fingerprint lines of a
// --net run then move to stderr so stdout stays pure JSON.
#include <cstdio>
#include <exception>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "dynamics/registries.h"
#include "net/transport.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/publish.h"
#include "obs/trace.h"
#include "scenario/registries.h"
#include "scenario/runner.h"
#include "scenario/scenario.h"
#include "sim/export.h"
#include "sim/optimum.h"
#include "util/table.h"

namespace {

using namespace mhca;

[[noreturn]] void usage(const std::string& msg) {
  if (!msg.empty()) std::cerr << "mhca_sim: " << msg << "\n";
  std::cerr << "usage:\n"
            << "  mhca_sim run <scenario.ini> [--override SEC.KEY=VAL]..."
               " [--csv PATH] [--net]\n"
            << "      [--transport inprocess|udp] [--shard K/N]"
               " [--port-base PORT]\n"
            << "      [--trace PATH] [--metrics PATH] [--json]\n"
            << "  mhca_sim print <scenario.ini> [--override SEC.KEY=VAL]...\n"
            << "  mhca_sim list\n"
            << "--transport/--shard/--port-base shape a --net run: "
               "--transport X is sugar\n"
            << "for --override net.transport=X; --shard K/N runs this "
               "process as shard K of N\n"
            << "(udp transport; every shard gets the same scenario and "
               "seed); --port-base sets\n"
            << "the first loopback port (shard k binds port+k, default "
               "47310).\n"
            << "--trace PATH writes a Chrome trace-event timeline, "
               "--metrics PATH a metrics\n"
            << "snapshot (.csv = CSV, else JSON); --json emits one JSON "
               "object on stdout.\n";
  std::exit(2);
}

struct Options {
  std::string command;
  std::string scenario_path;
  std::vector<std::string> overrides;
  std::string csv;
  bool net = false;
  int shard_index = -1;  ///< --shard K/N; -1 = flag absent.
  int port_base = 0;     ///< --port-base; 0 = UdpOptions default.
  std::string trace;     ///< --trace; overrides scenario obs.trace.
  std::string metrics;   ///< --metrics; overrides scenario obs.metrics.
  bool json = false;     ///< --json machine-readable output.
};

/// "K/N" with 0 <= K < N; N also lands in the overrides as net.shard.
void parse_shard(const std::string& spec, Options& o) {
  const std::size_t slash = spec.find('/');
  std::size_t k_end = 0, n_end = 0;
  int k = -1, n = -1;
  try {
    k = std::stoi(spec, &k_end);
    if (slash != std::string::npos)
      n = std::stoi(spec.substr(slash + 1), &n_end);
  } catch (const std::exception&) {
    // fall through to the usage error below
  }
  if (slash == std::string::npos || k_end != slash ||
      n_end != spec.size() - slash - 1 || k < 0 || n < 1 || k >= n)
    usage("--shard wants K/N with 0 <= K < N, got '" + spec + "'");
  o.shard_index = k;
  o.overrides.push_back("net.shard=" + std::to_string(n));
}

Options parse_args(int argc, char** argv) {
  if (argc < 2) usage("missing command");
  Options o;
  o.command = argv[1];
  int i = 2;
  if (o.command == "run" || o.command == "print") {
    if (i >= argc) usage("missing scenario file");
    o.scenario_path = argv[i++];
  } else if (o.command != "list") {
    usage("unknown command '" + o.command + "'");
  }
  for (; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage("missing value after " + a);
      return argv[++i];
    };
    if (a == "--override" || a == "-O") o.overrides.push_back(next());
    else if (a == "--csv") o.csv = next();
    else if (a == "--net") o.net = true;
    else if (a == "--transport")
      o.overrides.push_back("net.transport=" + next());
    else if (a == "--shard") parse_shard(next(), o);
    else if (a == "--port-base") {
      try {
        o.port_base = std::stoi(next());
      } catch (const std::exception&) {
        o.port_base = -1;
      }
      if (o.port_base < 1 || o.port_base > 65535)
        usage("--port-base wants a port in [1, 65535]");
    }
    else if (a == "--trace") o.trace = next();
    else if (a == "--metrics") o.metrics = next();
    else if (a == "--json") o.json = true;
    else usage("unknown flag '" + a + "'");
  }
  // Reject flags the command would silently ignore.
  if (o.command != "run" &&
      (!o.csv.empty() || o.net || !o.trace.empty() || !o.metrics.empty() ||
       o.json))
    usage("--csv/--net/--trace/--metrics/--json only apply to 'run'");
  if (!o.net && (o.shard_index >= 0 || o.port_base > 0))
    usage("--shard/--port-base only apply to 'run --net'");
  if (o.command == "list" && !o.overrides.empty())
    usage("--override does not apply to 'list'");
  return o;
}

scenario::Scenario load(const Options& o) {
  scenario::Scenario s = scenario::parse_scenario_file(o.scenario_path);
  for (const auto& ov : o.overrides) scenario::apply_override(s, ov);
  scenario::validate(s);
  return s;
}

void print_registry_table(const std::string& title,
                          const std::vector<std::string>& names,
                          const std::vector<std::string>& keys) {
  TablePrinter table({title, "accepted keys"});
  for (std::size_t i = 0; i < names.size(); ++i)
    table.row(names[i], keys[i].empty() ? "(none)" : keys[i]);
  table.print(std::cout);
  std::cout << "\n";
}

int cmd_list() {
  auto keys_of = [](const auto& reg) {
    std::vector<std::string> out;
    for (const auto& name : reg.names())
      out.push_back(scenario::join_keys(reg.accepted_keys(name)));
    return out;
  };
  print_registry_table("topology", scenario::topology_registry().names(),
                       keys_of(scenario::topology_registry()));
  print_registry_table("channel model", scenario::channel_registry().names(),
                       keys_of(scenario::channel_registry()));
  print_registry_table("policy", scenario::policy_registry().names(),
                       keys_of(scenario::policy_registry()));
  print_registry_table("dynamics model", dynamics::dynamics_registry().names(),
                       keys_of(dynamics::dynamics_registry()));
  std::cout << "solver kinds: "
            << scenario::join_keys(scenario::solver_kind_keys()) << "\n"
            << "local solvers: "
            << scenario::join_keys(scenario::local_solver_keys()) << "\n"
            << "fixed sections/keys: see src/scenario/README.md\n";
  return 0;
}

int cmd_print(const Options& o) {
  std::cout << scenario::serialize_scenario(load(o));
  return 0;
}

// ------------------------------------------------------------ observability

/// Installs (and on destruction uninstalls) the process-global recorder and
/// registry the scenario's [obs] section asks for. The objects live here —
/// the globals are non-owning pointers into this frame.
struct ObsSession {
  obs::TraceRecorder recorder;
  obs::MetricsRegistry registry;
  bool tracing;
  bool metering;

  explicit ObsSession(const scenario::ObsSpec& spec)
      : tracing(!spec.trace.empty()), metering(!spec.metrics.empty()) {
    if (tracing) obs::set_trace(&recorder);
    if (metering) obs::set_metrics(&registry);
  }
  ~ObsSession() {
    obs::set_trace(nullptr);
    obs::set_metrics(nullptr);
  }
  ObsSession(const ObsSession&) = delete;
  ObsSession& operator=(const ObsSession&) = delete;
};

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// Writes the trace / metrics files the session collected. Status lines go
/// to `info` (stderr under --json so stdout stays one JSON object).
bool write_obs_artifacts(const ObsSession& session,
                         const scenario::ObsSpec& spec, std::ostream& info) {
  bool ok = true;
  if (session.tracing) {
    if (session.recorder.write_file(spec.trace)) {
      info << "trace written to " << spec.trace << " ("
           << session.recorder.event_count() << " events)\n";
    } else {
      std::cerr << "mhca_sim: failed to write trace " << spec.trace << "\n";
      ok = false;
    }
  }
  if (session.metering) {
    std::ofstream f(spec.metrics, std::ios::binary);
    if (f) {
      f << (ends_with(spec.metrics, ".csv") ? session.registry.to_csv()
                                            : session.registry.to_json());
    }
    if (f) {
      info << "metrics written to " << spec.metrics << "\n";
    } else {
      std::cerr << "mhca_sim: failed to write metrics " << spec.metrics
                << "\n";
      ok = false;
    }
  }
  return ok;
}

// ------------------------------------------------------------- JSON output

/// Incremental {"k":v,...} builder over the obs/json.h primitives.
class JsonObj {
 public:
  JsonObj() : j_("{") {}
  JsonObj& field(std::string_view key, std::string rendered_value) {
    if (!first_) j_ += ",";
    first_ = false;
    obs::append_json_string(j_, key);
    j_ += ":";
    j_ += rendered_value;
    return *this;
  }
  JsonObj& field(std::string_view key, std::int64_t v) {
    return field(key, obs::json_number(v));
  }
  JsonObj& field(std::string_view key, double v) {
    return field(key, obs::json_number(v));
  }
  std::string str() const { return j_ + "}"; }

 private:
  std::string j_;
  bool first_ = true;
};

std::string int_array_json(const std::vector<int>& xs) {
  std::string j = "[";
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (i > 0) j += ",";
    j += obs::json_number(static_cast<std::int64_t>(xs[i]));
  }
  return j + "]";
}

std::string simulation_json(const scenario::ScenarioRunner& runner,
                            const SimulationResult& res) {
  const scenario::Scenario& s = runner.scenario();
  JsonObj j;
  j.field("mode", obs::json_quote("simulation"))
      .field("scenario", obs::json_quote(s.name))
      .field("users", static_cast<std::int64_t>(runner.network().num_nodes()))
      .field("channels", static_cast<std::int64_t>(s.num_channels))
      .field("vertices", static_cast<std::int64_t>(
                             runner.extended_graph().num_vertices()))
      .field("slots", res.total_slots)
      .field("decisions", res.decisions)
      .field("total_observed", res.total_observed)
      .field("total_effective", res.total_effective)
      .field("total_expected", res.total_expected)
      .field("avg_strategy_size", res.avg_strategy_size)
      .field("decision_seconds", res.decision_seconds)
      .field("theta", res.theta)
      .field("rate_scale_kbps", runner.model().rate_scale_kbps());
  if (s.run.count_messages)
    j.field("total_messages", res.total_messages)
        .field("total_mini_timeslots", res.total_mini_timeslots);
  j.field("last_strategy", int_array_json(res.last_strategy));
  return j.str();
}

std::string replication_json(const scenario::Scenario& s,
                             const ReplicationReport& report) {
  std::string metrics = "[";
  for (std::size_t i = 0; i < report.metrics.size(); ++i) {
    const auto& m = report.metrics[i];
    if (i > 0) metrics += ",";
    metrics += JsonObj()
                   .field("name", obs::json_quote(m.name))
                   .field("mean", m.summary.mean)
                   .field("stddev", m.summary.stddev)
                   .field("min", m.summary.min)
                   .field("max", m.summary.max)
                   .str();
  }
  metrics += "]";
  return JsonObj()
      .field("mode", obs::json_quote("replication"))
      .field("scenario", obs::json_quote(s.name))
      .field("replications", static_cast<std::int64_t>(report.replications))
      .field("seed0", static_cast<std::int64_t>(s.replication.seed0))
      .field("metrics", metrics)
      .str();
}

std::string net_json(const scenario::Scenario& s,
                     const scenario::NetRunSummary& n, double rate_scale_kbps,
                     const net::TransportStats* ts, int shard_index) {
  std::string by_msgs = "{", by_bytes = "{";
  for (int t = 0; t < net::kNumMsgTypes; ++t) {
    if (t > 0) { by_msgs += ","; by_bytes += ","; }
    const std::string label = obs::json_quote(obs::msg_type_label(t));
    by_msgs += label + ":" + obs::json_number(n.messages_by_type[t]);
    by_bytes += label + ":" + obs::json_number(n.bytes_by_type[t]);
  }
  by_msgs += "}";
  by_bytes += "}";
  JsonObj j;
  j.field("mode", obs::json_quote("net"))
      .field("scenario", obs::json_quote(s.name))
      .field("rounds", n.rounds)
      .field("total_observed", n.total_observed)
      .field("rate_scale_kbps", rate_scale_kbps)
      .field("last_strategy", int_array_json(n.last_strategy))
      .field("max_table_size", static_cast<std::int64_t>(n.max_table_size))
      .field("conflicts", static_cast<std::int64_t>(n.conflicts))
      .field("tx_abstained", n.tx_abstained)
      .field("retries", n.retries)
      .field("timeouts", n.timeouts)
      .field("view_changes", n.view_changes)
      .field("stale_decisions", n.stale_decisions)
      .field("messages", n.messages)
      .field("drops", n.drops)
      .field("duplicates", n.duplicates)
      .field("deferred", n.deferred)
      .field("bytes_on_wire", n.bytes_on_wire)
      .field("fragments", n.fragments)
      .field("messages_by_type", by_msgs)
      .field("bytes_by_type", by_bytes)
      .field("trace_hash", obs::json_quote(obs::json_hex64(n.trace_hash)))
      .field("decision_digest",
             obs::json_quote(obs::json_hex64(n.decision_digest)));
  if (ts != nullptr)
    j.field("transport",
            JsonObj()
                .field("shard", static_cast<std::int64_t>(shard_index))
                .field("shards", static_cast<std::int64_t>(s.net.shard))
                .field("exchanges", ts->exchanges)
                .field("frames_sent", ts->frames_sent)
                .field("frames_received", ts->frames_received)
                .field("datagrams_sent", ts->datagrams_sent)
                .field("datagrams_received", ts->datagrams_received)
                .field("bytes_sent", ts->bytes_sent)
                .field("bytes_received", ts->bytes_received)
                .field("retransmit_requests", ts->retransmit_requests)
                .field("retransmissions", ts->retransmissions)
                .str());
  return j.str();
}

// ------------------------------------------------------------ human output

void print_simulation(const scenario::ScenarioRunner& runner,
                      const SimulationResult& res, const std::string& csv) {
  const scenario::Scenario& s = runner.scenario();
  const double scale = runner.model().rate_scale_kbps();
  const auto slots = static_cast<double>(res.total_slots);
  TablePrinter table({"metric", "value"});
  table.row("scenario", s.name);
  table.row("network", std::to_string(runner.network().num_nodes()) +
                           " users x " + std::to_string(s.num_channels) +
                           " channels (K=" +
                           std::to_string(runner.extended_graph().num_vertices()) +
                           ", topology=" + s.topology.kind + ")");
  table.row("channel / policy / solver",
            s.channel.kind + " / " + s.policy.kind + " / " +
                scenario::solver_kind_key(s.solver.kind));
  table.row("slots / decisions", std::to_string(res.total_slots) + " / " +
                                     std::to_string(res.decisions));
  table.row("avg transmitters per slot", fixed(res.avg_strategy_size, 2));
  table.row("avg observed throughput (kbps)",
            fixed(res.total_observed / slots * scale, 1));
  table.row("avg effective throughput (kbps)",
            fixed(res.total_effective / slots * scale, 1));
  table.row("realized fraction",
            fixed(res.total_effective / std::max(res.total_observed, 1e-12),
                  3));
  table.row("decision wall time (ms)", fixed(res.decision_seconds * 1e3, 1));
  if (s.run.count_messages) {
    table.row("control messages", res.total_messages);
    table.row("mini-timeslots", res.total_mini_timeslots);
  }
  // The exact optimum is only tractable on small instances.
  if (runner.extended_graph().num_vertices() <= 80) {
    const OptimumInfo opt =
        compute_optimum(runner.extended_graph(), runner.model());
    if (opt.exact)
      table.row("expected/optimal ratio",
                fixed(res.total_expected / slots / opt.weight, 3));
  }
  table.print(std::cout);

  if (!csv.empty()) {
    if (export_series_csv(res, csv, scale))
      std::cout << "series written to " << csv << "\n";
    else
      std::cerr << "failed to write " << csv << "\n";
  }
}

void print_replication(const scenario::Scenario& s,
                       const ReplicationReport& report) {
  std::cout << "scenario '" << s.name << "': " << report.replications
            << " replications (seed0 = " << s.replication.seed0
            << "), mean +/- std\n";
  TablePrinter table({"metric", "mean", "std", "min", "max"});
  for (const auto& m : report.metrics)
    table.row(m.name, fixed(m.summary.mean, 4), fixed(m.summary.stddev, 4),
              fixed(m.summary.min, 4), fixed(m.summary.max, 4));
  table.print(std::cout);
}

/// Machine-greppable run fingerprints: CI compares these lines between a
/// sharded UDP run and the in-process run of the same scenario. Under
/// --json they move to stderr (stdout is one JSON object).
void print_fingerprints(const scenario::NetRunSummary& n, std::ostream& os) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "trace_hash = 0x%016llx\n",
                static_cast<unsigned long long>(n.trace_hash));
  os << buf;
  std::snprintf(buf, sizeof(buf), "decision_digest = 0x%016llx\n",
                static_cast<unsigned long long>(n.decision_digest));
  os << buf;
}

void print_net(const scenario::Scenario& s, const scenario::NetRunSummary& n,
               double rate_scale_kbps) {
  TablePrinter table({"metric", "value"});
  table.row("scenario", s.name + " (message-level runtime)");
  table.row("rounds", n.rounds);
  table.row("avg observed throughput (kbps)",
            fixed(n.total_observed / static_cast<double>(n.rounds) *
                      rate_scale_kbps,
                  1));
  table.row("final strategy size", n.last_strategy.size());
  table.row("max agent table size", n.max_table_size);
  table.row("conflicting rounds", n.conflicts);
  table.row("control messages", n.messages);
  table.row("bytes on wire", n.bytes_on_wire);
  table.row("mtu fragments (mtu = " + std::to_string(s.net.mtu) + ")",
            n.fragments);
  for (int t = 0; t < net::kNumMsgTypes; ++t) {
    if (n.messages_by_type[t] == 0) continue;
    table.row(std::string("  ") + obs::msg_type_label(t) + " msgs / bytes",
              std::to_string(n.messages_by_type[t]) + " / " +
                  std::to_string(n.bytes_by_type[t]));
  }
  // Robustness telemetry is only meaningful when the wire is unreliable or
  // membership is inferred from it; keep the clean-run table compact.
  const bool faulty = s.net.drop_prob > 0.0 || s.net.dup_prob > 0.0 ||
                      s.net.reorder_prob > 0.0;
  if (faulty || s.net.membership == "view_sync") {
    table.row("dropped deliveries", n.drops);
    table.row("duplicate deliveries", n.duplicates);
    table.row("reordered/delayed deliveries", n.deferred);
    table.row("liveness timeouts", n.timeouts);
    table.row("liveness retries", n.retries);
    table.row("view changes", n.view_changes);
    table.row("stale-view decisions", n.stale_decisions);
    table.row("tx abstained (stale winners)", n.tx_abstained);
  }
  table.print(std::cout);
  print_fingerprints(n, std::cout);
}

int cmd_run(const Options& o) {
  scenario::Scenario s = load(o);
  if (!o.trace.empty()) s.obs.trace = o.trace;
  if (!o.metrics.empty()) s.obs.metrics = o.metrics;
  const scenario::ScenarioRunner runner(s);
  ObsSession session(s.obs);
  std::ostream& info = o.json ? std::cerr : std::cout;
  if (o.net) {
    if (!o.csv.empty())
      usage("--csv applies to single-simulation runs, not --net");
    if (s.replication.replications >= 1)
      usage("--net runs a single protocol pass; this scenario replicates "
            "(set --override replication.replications=0)");
    const auto transport = scenario::transport_kind_from_string(
        s.net.transport);
    if (transport == scenario::TransportKind::kUdp) {
      int shard_index = o.shard_index;
      if (shard_index < 0) {
        if (s.net.shard != 1)
          usage("net.transport=udp with net.shard=" +
                std::to_string(s.net.shard) +
                " needs --shard K/N to say which shard this process is");
        shard_index = 0;  // degenerate single-shard socket run
      }
      net::UdpOptions opts;
      if (o.port_base > 0) opts.port_base = o.port_base;
      opts.mtu = s.net.mtu;
      net::UdpTransport udp(shard_index, s.net.shard, opts);
      const scenario::NetRunSummary n = runner.run_net_sharded(udp);
      udp.finish();
      const net::TransportStats& ts = udp.stats();
      if (o.json) {
        std::cout << net_json(s, n, runner.model().rate_scale_kbps(), &ts,
                              shard_index)
                  << "\n";
        print_fingerprints(n, std::cerr);
      } else {
        std::cout << "shard " << shard_index << "/" << s.net.shard
                  << ": exchanges " << ts.exchanges << ", frames "
                  << ts.frames_sent << " sent / " << ts.frames_received
                  << " received, datagrams " << ts.datagrams_sent
                  << " sent / " << ts.datagrams_received << " received, "
                  << ts.retransmit_requests << " retransmit requests, "
                  << ts.retransmissions << " retransmissions\n";
        print_net(s, n, runner.model().rate_scale_kbps());
      }
    } else {
      if (o.shard_index > 0)
        usage("--shard K/N with K > 0 requires net.transport = udp");
      const scenario::NetRunSummary n = runner.run_net();
      if (o.json) {
        std::cout << net_json(s, n, runner.model().rate_scale_kbps(), nullptr,
                              0)
                  << "\n";
        print_fingerprints(n, std::cerr);
      } else {
        print_net(s, n, runner.model().rate_scale_kbps());
      }
    }
  } else if (s.replication.replications >= 1) {
    if (!o.csv.empty())
      usage("--csv applies to single-simulation runs; this scenario "
            "replicates (set --override replication.replications=0)");
    const ReplicationReport report = runner.replicate();
    if (o.json)
      std::cout << replication_json(s, report) << "\n";
    else
      print_replication(s, report);
  } else {
    const SimulationResult res = runner.run();
    // The lockstep engines never see a registry (their telemetry lives in
    // SimulationResult); publish the finished totals so a --metrics
    // snapshot covers the decision domain here too.
    if (session.metering) obs::publish_simulation(session.registry, res);
    if (o.json) {
      std::cout << simulation_json(runner, res) << "\n";
      if (!o.csv.empty()) {
        if (export_series_csv(res, o.csv, runner.model().rate_scale_kbps()))
          info << "series written to " << o.csv << "\n";
        else
          std::cerr << "failed to write " << o.csv << "\n";
      }
    } else {
      print_simulation(runner, res, o.csv);
    }
  }
  return write_obs_artifacts(session, s.obs, info) ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const Options o = parse_args(argc, argv);
  try {
    if (o.command == "list") return cmd_list();
    if (o.command == "print") return cmd_print(o);
    return cmd_run(o);
  } catch (const std::exception& e) {
    std::cerr << "mhca_sim: " << e.what() << "\n";
    return 1;
  }
}
