// mhca_sim — command-line driver for the channel-access simulator.
//
// Run the full Algorithm-2 pipeline on a synthetic network from the shell:
//
//   mhca_sim --users 50 --channels 8 --slots 2000 --policy cab
//            --period 10 --solver distributed --csv out.csv
//
// Options (all optional; defaults in brackets):
//   --users N        number of secondary users [30]
//   --channels M     number of channels [8]
//   --degree D       target average conflict degree [6]
//   --slots T        time horizon [1000]
//   --period Y       weight-update period y [1]
//   --policy P       cab | llr | ucb1 | greedy | eps | thompson [cab]
//   --solver S       distributed | centralized | greedy | exact [distributed]
//   --r R            PTAS neighborhood radius [2]
//   --mini-rounds D  mini-round budget per decision, 0 = unbounded [4]
//   --model M        gaussian | bernoulli | markov [gaussian]
//   --seed S         master seed [1]
//   --csv PATH       export the recorded series as CSV
//   --messages       count control-plane messages
#include <cstring>
#include <iostream>
#include <memory>
#include <string>

#include "bandit/policy.h"
#include "channel/bernoulli.h"
#include "channel/gaussian.h"
#include "channel/markov.h"
#include "graph/extended_graph.h"
#include "graph/generators.h"
#include "sim/export.h"
#include "sim/optimum.h"
#include "sim/simulator.h"
#include "util/rng.h"
#include "util/table.h"

namespace {

using namespace mhca;

struct Options {
  int users = 30;
  int channels = 8;
  double degree = 6.0;
  std::int64_t slots = 1000;
  int period = 1;
  std::string policy = "cab";
  std::string solver = "distributed";
  int r = 2;
  int mini_rounds = 4;
  std::string model = "gaussian";
  std::uint64_t seed = 1;
  std::string csv;
  bool messages = false;
};

[[noreturn]] void usage(const char* msg) {
  std::cerr << "mhca_sim: " << msg
            << "\nsee the header of tools/mhca_sim.cc for options\n";
  std::exit(2);
}

Options parse(int argc, char** argv) {
  Options o;
  auto next = [&](int& i) -> const char* {
    if (i + 1 >= argc) usage("missing value after flag");
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--users") o.users = std::atoi(next(i));
    else if (a == "--channels") o.channels = std::atoi(next(i));
    else if (a == "--degree") o.degree = std::atof(next(i));
    else if (a == "--slots") o.slots = std::atoll(next(i));
    else if (a == "--period") o.period = std::atoi(next(i));
    else if (a == "--policy") o.policy = next(i);
    else if (a == "--solver") o.solver = next(i);
    else if (a == "--r") o.r = std::atoi(next(i));
    else if (a == "--mini-rounds") o.mini_rounds = std::atoi(next(i));
    else if (a == "--model") o.model = next(i);
    else if (a == "--seed") o.seed = static_cast<std::uint64_t>(std::atoll(next(i)));
    else if (a == "--csv") o.csv = next(i);
    else if (a == "--messages") o.messages = true;
    else usage(("unknown flag: " + a).c_str());
  }
  if (o.users < 1 || o.channels < 1 || o.slots < 1 || o.period < 1)
    usage("users/channels/slots/period must be positive");
  return o;
}

PolicyKind parse_policy(const std::string& s) {
  if (s == "cab") return PolicyKind::kCab;
  if (s == "llr") return PolicyKind::kLlr;
  if (s == "ucb1") return PolicyKind::kUcb1;
  if (s == "greedy") return PolicyKind::kGreedy;
  if (s == "eps") return PolicyKind::kEpsGreedy;
  if (s == "thompson") return PolicyKind::kThompson;
  usage("unknown policy");
}

SolverKind parse_solver(const std::string& s) {
  if (s == "distributed") return SolverKind::kDistributedPtas;
  if (s == "centralized") return SolverKind::kCentralizedPtas;
  if (s == "greedy") return SolverKind::kGreedy;
  if (s == "exact") return SolverKind::kExact;
  usage("unknown solver");
}

std::unique_ptr<ChannelModel> parse_model(const Options& o, Rng& rng) {
  if (o.model == "gaussian")
    return std::make_unique<GaussianChannelModel>(o.users, o.channels, rng);
  if (o.model == "bernoulli")
    return std::make_unique<BernoulliChannelModel>(o.users, o.channels, rng);
  if (o.model == "markov")
    return std::make_unique<GilbertElliottChannelModel>(o.users, o.channels,
                                                        rng);
  usage("unknown channel model");
}

}  // namespace

int main(int argc, char** argv) {
  const Options o = parse(argc, argv);
  Rng rng(o.seed);
  ConflictGraph network = random_geometric_avg_degree(o.users, o.degree, rng,
                                                      /*force_connected=*/false);
  ExtendedConflictGraph ecg(network, o.channels);
  const std::unique_ptr<ChannelModel> model = parse_model(o, rng);

  PolicyParams params;
  params.llr_max_strategy_len = o.users;
  const auto policy = make_policy(parse_policy(o.policy), params);

  SimulationConfig cfg;
  cfg.slots = o.slots;
  cfg.update_period = o.period;
  cfg.solver = parse_solver(o.solver);
  cfg.r = o.r;
  cfg.D = o.mini_rounds;
  cfg.bnb_node_cap = 20'000;
  cfg.seed = o.seed;
  cfg.count_messages = o.messages;
  cfg.series_stride = static_cast<int>(std::max<std::int64_t>(1, o.slots / 100));

  Simulator sim(ecg, *model, *policy, cfg);
  const SimulationResult res = sim.run();

  TablePrinter table({"metric", "value"});
  table.row("network", std::to_string(o.users) + " users x " +
                           std::to_string(o.channels) + " channels (K=" +
                           std::to_string(ecg.num_vertices()) + ")");
  table.row("policy / solver", o.policy + " / " + o.solver);
  table.row("slots / decisions", std::to_string(res.total_slots) + " / " +
                                     std::to_string(res.decisions));
  table.row("avg transmitters per slot", fixed(res.avg_strategy_size, 2));
  table.row("avg observed throughput (kbps)",
            fixed(res.total_observed / static_cast<double>(res.total_slots) *
                      model->rate_scale_kbps(),
                  1));
  table.row("avg effective throughput (kbps)",
            fixed(res.total_effective / static_cast<double>(res.total_slots) *
                      model->rate_scale_kbps(),
                  1));
  table.row("realized fraction", fixed(res.total_effective /
                                           std::max(res.total_observed, 1e-12),
                                       3));
  table.row("decision wall time (ms)", fixed(res.decision_seconds * 1e3, 1));
  if (o.messages) {
    table.row("control messages", res.total_messages);
    table.row("mini-timeslots", res.total_mini_timeslots);
  }
  // The exact optimum is only tractable on small instances.
  if (ecg.num_vertices() <= 80) {
    const OptimumInfo opt = compute_optimum(ecg, *model);
    if (opt.exact)
      table.row("expected/optimal ratio",
                fixed(res.total_expected /
                          static_cast<double>(res.total_slots) / opt.weight,
                      3));
  }
  table.print(std::cout);

  if (!o.csv.empty()) {
    if (export_series_csv(res, o.csv, model->rate_scale_kbps()))
      std::cout << "series written to " << o.csv << "\n";
    else
      std::cerr << "failed to write " << o.csv << "\n";
  }
  return 0;
}
