// Merges per-shard Chrome trace files into one Perfetto timeline:
//
//   mhca_trace_merge MERGED.json SHARD0.json SHARD1.json [...]
//
// Each shard of a multi-process UDP run writes its own trace with pid = its
// shard id (obs/trace.h), so the merge is pure interleaving: validate every
// input, reject pid collisions (two shards claiming one process lane),
// stable-order all events by timestamp, and re-emit a single file Perfetto
// opens as one timeline with one lane per shard. The merged output is
// itself re-validated before it is written — a merge that produces a trace
// mhca_obs_validate would reject exits nonzero with the violations.
//
// CI merges the two shards of the UDP scenario on every push
// (.github/workflows/ci.yml) and runs mhca_obs_validate on the result.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "obs/validate.h"

namespace {

bool read_file(const std::string& path, std::string& out) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return false;
  std::ostringstream ss;
  ss << f.rdbuf();
  out = ss.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 4) {
    std::fprintf(stderr,
                 "usage: mhca_trace_merge MERGED.json SHARD.json "
                 "SHARD.json [...]\n");
    return 2;
  }
  std::vector<std::pair<std::string, std::string>> inputs;
  for (int i = 2; i < argc; ++i) {
    std::string text;
    if (!read_file(argv[i], text)) {
      std::fprintf(stderr, "cannot read %s\n", argv[i]);
      return 1;
    }
    inputs.emplace_back(argv[i], std::move(text));
  }

  std::vector<std::string> errors;
  const std::string merged = mhca::obs::merge_chrome_traces(inputs, errors);
  if (errors.empty())
    for (const std::string& e : mhca::obs::validate_chrome_trace(merged))
      errors.push_back(std::string("merged output: ") + e);
  if (!errors.empty()) {
    std::fprintf(stderr, "merge FAILED:\n");
    for (const std::string& e : errors)
      std::fprintf(stderr, "  - %s\n", e.c_str());
    return 1;
  }

  std::ofstream out(argv[1], std::ios::binary);
  out << merged;
  out.flush();
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", argv[1]);
    return 1;
  }
  std::printf("merged %d shard traces into %s\n", argc - 2, argv[1]);
  return 0;
}
