# Empty dependencies file for mhca_sim.
# This may be replaced when dependencies are built.
