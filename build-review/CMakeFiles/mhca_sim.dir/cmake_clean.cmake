file(REMOVE_RECURSE
  "CMakeFiles/mhca_sim.dir/tools/mhca_sim.cc.o"
  "CMakeFiles/mhca_sim.dir/tools/mhca_sim.cc.o.d"
  "mhca_sim"
  "mhca_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mhca_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
