# Empty dependencies file for cds_test.
# This may be replaced when dependencies are built.
