file(REMOVE_RECURSE
  "CMakeFiles/cds_test.dir/tests/cds_test.cc.o"
  "CMakeFiles/cds_test.dir/tests/cds_test.cc.o.d"
  "cds_test"
  "cds_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cds_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
