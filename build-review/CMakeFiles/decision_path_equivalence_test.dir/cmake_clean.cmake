file(REMOVE_RECURSE
  "CMakeFiles/decision_path_equivalence_test.dir/tests/decision_path_equivalence_test.cc.o"
  "CMakeFiles/decision_path_equivalence_test.dir/tests/decision_path_equivalence_test.cc.o.d"
  "decision_path_equivalence_test"
  "decision_path_equivalence_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decision_path_equivalence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
