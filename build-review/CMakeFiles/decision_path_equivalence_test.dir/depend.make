# Empty dependencies file for decision_path_equivalence_test.
# This may be replaced when dependencies are built.
