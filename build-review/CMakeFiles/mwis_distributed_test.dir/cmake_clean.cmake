file(REMOVE_RECURSE
  "CMakeFiles/mwis_distributed_test.dir/tests/mwis_distributed_test.cc.o"
  "CMakeFiles/mwis_distributed_test.dir/tests/mwis_distributed_test.cc.o.d"
  "mwis_distributed_test"
  "mwis_distributed_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mwis_distributed_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
