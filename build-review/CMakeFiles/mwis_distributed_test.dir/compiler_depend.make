# Empty compiler generated dependencies file for mwis_distributed_test.
# This may be replaced when dependencies are built.
