file(REMOVE_RECURSE
  "CMakeFiles/singlehop_test.dir/tests/singlehop_test.cc.o"
  "CMakeFiles/singlehop_test.dir/tests/singlehop_test.cc.o.d"
  "singlehop_test"
  "singlehop_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/singlehop_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
