# Empty compiler generated dependencies file for singlehop_test.
# This may be replaced when dependencies are built.
