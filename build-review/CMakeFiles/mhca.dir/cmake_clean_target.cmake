file(REMOVE_RECURSE
  "libmhca.a"
)
