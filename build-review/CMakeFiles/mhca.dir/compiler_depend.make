# Empty compiler generated dependencies file for mhca.
# This may be replaced when dependencies are built.
