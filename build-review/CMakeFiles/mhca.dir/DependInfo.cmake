
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bandit/cab.cc" "CMakeFiles/mhca.dir/src/bandit/cab.cc.o" "gcc" "CMakeFiles/mhca.dir/src/bandit/cab.cc.o.d"
  "/root/repo/src/bandit/estimates.cc" "CMakeFiles/mhca.dir/src/bandit/estimates.cc.o" "gcc" "CMakeFiles/mhca.dir/src/bandit/estimates.cc.o.d"
  "/root/repo/src/bandit/llr.cc" "CMakeFiles/mhca.dir/src/bandit/llr.cc.o" "gcc" "CMakeFiles/mhca.dir/src/bandit/llr.cc.o.d"
  "/root/repo/src/bandit/naive_ucb.cc" "CMakeFiles/mhca.dir/src/bandit/naive_ucb.cc.o" "gcc" "CMakeFiles/mhca.dir/src/bandit/naive_ucb.cc.o.d"
  "/root/repo/src/bandit/policy.cc" "CMakeFiles/mhca.dir/src/bandit/policy.cc.o" "gcc" "CMakeFiles/mhca.dir/src/bandit/policy.cc.o.d"
  "/root/repo/src/bandit/simple_policies.cc" "CMakeFiles/mhca.dir/src/bandit/simple_policies.cc.o" "gcc" "CMakeFiles/mhca.dir/src/bandit/simple_policies.cc.o.d"
  "/root/repo/src/bandit/thompson.cc" "CMakeFiles/mhca.dir/src/bandit/thompson.cc.o" "gcc" "CMakeFiles/mhca.dir/src/bandit/thompson.cc.o.d"
  "/root/repo/src/channel/adversarial.cc" "CMakeFiles/mhca.dir/src/channel/adversarial.cc.o" "gcc" "CMakeFiles/mhca.dir/src/channel/adversarial.cc.o.d"
  "/root/repo/src/channel/bernoulli.cc" "CMakeFiles/mhca.dir/src/channel/bernoulli.cc.o" "gcc" "CMakeFiles/mhca.dir/src/channel/bernoulli.cc.o.d"
  "/root/repo/src/channel/channel_model.cc" "CMakeFiles/mhca.dir/src/channel/channel_model.cc.o" "gcc" "CMakeFiles/mhca.dir/src/channel/channel_model.cc.o.d"
  "/root/repo/src/channel/gaussian.cc" "CMakeFiles/mhca.dir/src/channel/gaussian.cc.o" "gcc" "CMakeFiles/mhca.dir/src/channel/gaussian.cc.o.d"
  "/root/repo/src/channel/markov.cc" "CMakeFiles/mhca.dir/src/channel/markov.cc.o" "gcc" "CMakeFiles/mhca.dir/src/channel/markov.cc.o.d"
  "/root/repo/src/channel/primary_user.cc" "CMakeFiles/mhca.dir/src/channel/primary_user.cc.o" "gcc" "CMakeFiles/mhca.dir/src/channel/primary_user.cc.o.d"
  "/root/repo/src/channel/trace.cc" "CMakeFiles/mhca.dir/src/channel/trace.cc.o" "gcc" "CMakeFiles/mhca.dir/src/channel/trace.cc.o.d"
  "/root/repo/src/core/channel_access.cc" "CMakeFiles/mhca.dir/src/core/channel_access.cc.o" "gcc" "CMakeFiles/mhca.dir/src/core/channel_access.cc.o.d"
  "/root/repo/src/graph/cds.cc" "CMakeFiles/mhca.dir/src/graph/cds.cc.o" "gcc" "CMakeFiles/mhca.dir/src/graph/cds.cc.o.d"
  "/root/repo/src/graph/coloring.cc" "CMakeFiles/mhca.dir/src/graph/coloring.cc.o" "gcc" "CMakeFiles/mhca.dir/src/graph/coloring.cc.o.d"
  "/root/repo/src/graph/conflict_graph.cc" "CMakeFiles/mhca.dir/src/graph/conflict_graph.cc.o" "gcc" "CMakeFiles/mhca.dir/src/graph/conflict_graph.cc.o.d"
  "/root/repo/src/graph/extended_graph.cc" "CMakeFiles/mhca.dir/src/graph/extended_graph.cc.o" "gcc" "CMakeFiles/mhca.dir/src/graph/extended_graph.cc.o.d"
  "/root/repo/src/graph/generators.cc" "CMakeFiles/mhca.dir/src/graph/generators.cc.o" "gcc" "CMakeFiles/mhca.dir/src/graph/generators.cc.o.d"
  "/root/repo/src/graph/graph.cc" "CMakeFiles/mhca.dir/src/graph/graph.cc.o" "gcc" "CMakeFiles/mhca.dir/src/graph/graph.cc.o.d"
  "/root/repo/src/graph/hop.cc" "CMakeFiles/mhca.dir/src/graph/hop.cc.o" "gcc" "CMakeFiles/mhca.dir/src/graph/hop.cc.o.d"
  "/root/repo/src/graph/independence.cc" "CMakeFiles/mhca.dir/src/graph/independence.cc.o" "gcc" "CMakeFiles/mhca.dir/src/graph/independence.cc.o.d"
  "/root/repo/src/graph/induced.cc" "CMakeFiles/mhca.dir/src/graph/induced.cc.o" "gcc" "CMakeFiles/mhca.dir/src/graph/induced.cc.o.d"
  "/root/repo/src/graph/neighborhood_cache.cc" "CMakeFiles/mhca.dir/src/graph/neighborhood_cache.cc.o" "gcc" "CMakeFiles/mhca.dir/src/graph/neighborhood_cache.cc.o.d"
  "/root/repo/src/mwis/branch_and_bound.cc" "CMakeFiles/mhca.dir/src/mwis/branch_and_bound.cc.o" "gcc" "CMakeFiles/mhca.dir/src/mwis/branch_and_bound.cc.o.d"
  "/root/repo/src/mwis/brute_force.cc" "CMakeFiles/mhca.dir/src/mwis/brute_force.cc.o" "gcc" "CMakeFiles/mhca.dir/src/mwis/brute_force.cc.o.d"
  "/root/repo/src/mwis/distributed_ptas.cc" "CMakeFiles/mhca.dir/src/mwis/distributed_ptas.cc.o" "gcc" "CMakeFiles/mhca.dir/src/mwis/distributed_ptas.cc.o.d"
  "/root/repo/src/mwis/greedy.cc" "CMakeFiles/mhca.dir/src/mwis/greedy.cc.o" "gcc" "CMakeFiles/mhca.dir/src/mwis/greedy.cc.o.d"
  "/root/repo/src/mwis/robust_ptas.cc" "CMakeFiles/mhca.dir/src/mwis/robust_ptas.cc.o" "gcc" "CMakeFiles/mhca.dir/src/mwis/robust_ptas.cc.o.d"
  "/root/repo/src/net/agent.cc" "CMakeFiles/mhca.dir/src/net/agent.cc.o" "gcc" "CMakeFiles/mhca.dir/src/net/agent.cc.o.d"
  "/root/repo/src/net/control_channel.cc" "CMakeFiles/mhca.dir/src/net/control_channel.cc.o" "gcc" "CMakeFiles/mhca.dir/src/net/control_channel.cc.o.d"
  "/root/repo/src/net/runtime.cc" "CMakeFiles/mhca.dir/src/net/runtime.cc.o" "gcc" "CMakeFiles/mhca.dir/src/net/runtime.cc.o.d"
  "/root/repo/src/sim/export.cc" "CMakeFiles/mhca.dir/src/sim/export.cc.o" "gcc" "CMakeFiles/mhca.dir/src/sim/export.cc.o.d"
  "/root/repo/src/sim/metrics.cc" "CMakeFiles/mhca.dir/src/sim/metrics.cc.o" "gcc" "CMakeFiles/mhca.dir/src/sim/metrics.cc.o.d"
  "/root/repo/src/sim/optimum.cc" "CMakeFiles/mhca.dir/src/sim/optimum.cc.o" "gcc" "CMakeFiles/mhca.dir/src/sim/optimum.cc.o.d"
  "/root/repo/src/sim/replication.cc" "CMakeFiles/mhca.dir/src/sim/replication.cc.o" "gcc" "CMakeFiles/mhca.dir/src/sim/replication.cc.o.d"
  "/root/repo/src/sim/simulator.cc" "CMakeFiles/mhca.dir/src/sim/simulator.cc.o" "gcc" "CMakeFiles/mhca.dir/src/sim/simulator.cc.o.d"
  "/root/repo/src/util/csv.cc" "CMakeFiles/mhca.dir/src/util/csv.cc.o" "gcc" "CMakeFiles/mhca.dir/src/util/csv.cc.o.d"
  "/root/repo/src/util/parallel.cc" "CMakeFiles/mhca.dir/src/util/parallel.cc.o" "gcc" "CMakeFiles/mhca.dir/src/util/parallel.cc.o.d"
  "/root/repo/src/util/rng.cc" "CMakeFiles/mhca.dir/src/util/rng.cc.o" "gcc" "CMakeFiles/mhca.dir/src/util/rng.cc.o.d"
  "/root/repo/src/util/series.cc" "CMakeFiles/mhca.dir/src/util/series.cc.o" "gcc" "CMakeFiles/mhca.dir/src/util/series.cc.o.d"
  "/root/repo/src/util/stats.cc" "CMakeFiles/mhca.dir/src/util/stats.cc.o" "gcc" "CMakeFiles/mhca.dir/src/util/stats.cc.o.d"
  "/root/repo/src/util/table.cc" "CMakeFiles/mhca.dir/src/util/table.cc.o" "gcc" "CMakeFiles/mhca.dir/src/util/table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
