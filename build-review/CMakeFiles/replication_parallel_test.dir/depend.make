# Empty dependencies file for replication_parallel_test.
# This may be replaced when dependencies are built.
