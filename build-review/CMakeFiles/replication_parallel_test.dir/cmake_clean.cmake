file(REMOVE_RECURSE
  "CMakeFiles/replication_parallel_test.dir/tests/replication_parallel_test.cc.o"
  "CMakeFiles/replication_parallel_test.dir/tests/replication_parallel_test.cc.o.d"
  "replication_parallel_test"
  "replication_parallel_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replication_parallel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
