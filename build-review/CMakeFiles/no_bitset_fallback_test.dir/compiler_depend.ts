# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for no_bitset_fallback_test.
