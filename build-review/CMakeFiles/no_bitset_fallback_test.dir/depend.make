# Empty dependencies file for no_bitset_fallback_test.
# This may be replaced when dependencies are built.
