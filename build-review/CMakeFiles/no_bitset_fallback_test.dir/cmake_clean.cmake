file(REMOVE_RECURSE
  "CMakeFiles/no_bitset_fallback_test.dir/tests/no_bitset_fallback_test.cc.o"
  "CMakeFiles/no_bitset_fallback_test.dir/tests/no_bitset_fallback_test.cc.o.d"
  "no_bitset_fallback_test"
  "no_bitset_fallback_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/no_bitset_fallback_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
