file(REMOVE_RECURSE
  "CMakeFiles/mwis_differential_test.dir/tests/mwis_differential_test.cc.o"
  "CMakeFiles/mwis_differential_test.dir/tests/mwis_differential_test.cc.o.d"
  "mwis_differential_test"
  "mwis_differential_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mwis_differential_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
