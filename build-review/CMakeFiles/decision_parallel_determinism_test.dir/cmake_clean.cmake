file(REMOVE_RECURSE
  "CMakeFiles/decision_parallel_determinism_test.dir/tests/decision_parallel_determinism_test.cc.o"
  "CMakeFiles/decision_parallel_determinism_test.dir/tests/decision_parallel_determinism_test.cc.o.d"
  "decision_parallel_determinism_test"
  "decision_parallel_determinism_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decision_parallel_determinism_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
