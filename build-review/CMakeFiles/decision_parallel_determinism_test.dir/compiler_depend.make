# Empty compiler generated dependencies file for decision_parallel_determinism_test.
# This may be replaced when dependencies are built.
