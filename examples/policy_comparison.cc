// Scenario: comparing learning policies on the same network and channel
// realizations (stateless sampling makes the comparison exactly paired).
//
// Runs CAB (the paper's policy), LLR (its baseline), UCB1, pure
// exploitation and ε-greedy over a 30x5 mesh and reports expected
// throughput, realized throughput and the accuracy of each policy's own
// throughput estimate.
#include <iostream>

#include "bandit/policy.h"
#include "channel/gaussian.h"
#include "graph/extended_graph.h"
#include "graph/generators.h"
#include "sim/simulator.h"
#include "util/rng.h"
#include "util/table.h"

int main() {
  using namespace mhca;
  const int kUsers = 30, kChannels = 5;
  const std::int64_t kSlots = 2000;

  Rng rng(555);
  ConflictGraph mesh = random_geometric_avg_degree(kUsers, 5.0, rng);
  ExtendedConflictGraph ecg(mesh, kChannels);
  GaussianChannelModel model(kUsers, kChannels, rng);

  std::cout << "=== Policy comparison: " << kUsers << " users x " << kChannels
            << " channels, " << kSlots << " slots ===\n\n";
  TablePrinter table({"policy", "avg expected (kbps)", "avg effective (kbps)",
                      "estimate error", "decision time (ms total)"});

  for (PolicyKind kind : {PolicyKind::kCab, PolicyKind::kLlr,
                          PolicyKind::kUcb1, PolicyKind::kGreedy,
                          PolicyKind::kEpsGreedy}) {
    PolicyParams params;
    params.llr_max_strategy_len = kUsers;
    params.epsilon = 0.05;
    auto policy = make_policy(kind, params);
    SimulationConfig cfg;
    cfg.slots = kSlots;
    cfg.seed = 99;
    Simulator sim(ecg, model, *policy, cfg);
    const SimulationResult res = sim.run();
    const double est_err = std::abs(res.cumavg_estimated.back() -
                                    res.cumavg_effective.back()) /
                           res.cumavg_effective.back();
    table.row(policy->name(),
              fixed(res.total_expected / kSlots * kRateScaleKbps, 1),
              fixed(res.total_effective / kSlots * kRateScaleKbps, 1),
              fixed(est_err, 3), fixed(res.decision_seconds * 1e3, 0));
  }
  table.print(std::cout);
  std::cout << "\nReading: CAB should lead or tie on throughput with a far\n"
            << "smaller estimate error than LLR/UCB1 (their bonuses inflate\n"
            << "the index long after the means are known).\n";
  return 0;
}
