// Scenario: a city-scale cognitive-radio mesh backbone.
//
// 120 secondary users relay traffic across a mesh; 10 licensed channels
// with heterogeneous quality; two of them carry intermittent primary-user
// traffic (TV broadcast towers) and go dark region-wide when active.
// The operator refreshes strategies only every 10 slots (update period y)
// to keep control-plane overhead at 5% (Table II timing: 19/20 realized).
//
// Demonstrates: large networks, the primary-user decorator, periodic
// update, and message accounting.
#include <iostream>
#include <memory>

#include "bandit/policy.h"
#include "channel/gaussian.h"
#include "channel/primary_user.h"
#include "graph/extended_graph.h"
#include "graph/generators.h"
#include "sim/simulator.h"
#include "util/rng.h"
#include "util/table.h"

int main() {
  using namespace mhca;
  const int kUsers = 120, kChannels = 10;

  Rng rng(2024);
  ConflictGraph mesh = random_geometric_avg_degree(kUsers, 7.0, rng);
  auto base = std::make_shared<GaussianChannelModel>(kUsers, kChannels, rng);

  // Channels 0 and 1 host primaries that are busy 60% / 30% of slots.
  std::vector<double> busy(kChannels, 0.0);
  busy[0] = 0.6;
  busy[1] = 0.3;
  PrimaryUserChannelModel spectrum(base, busy, rng.engine()());

  ExtendedConflictGraph ecg(mesh, kChannels);
  auto policy = make_policy(PolicyKind::kCab);

  SimulationConfig cfg;
  cfg.slots = 3000;
  cfg.update_period = 10;  // decide once per 10 slots
  cfg.bnb_node_cap = 20'000;
  cfg.count_messages = true;
  cfg.series_stride = 300;
  Simulator sim(ecg, spectrum, *policy, cfg);
  const SimulationResult res = sim.run();

  std::cout << "=== Cognitive mesh backbone (" << kUsers << " users, "
            << kChannels << " channels, 2 primaries) ===\n\n";
  TablePrinter table({"metric", "value"});
  table.row("slots / decisions", std::to_string(res.total_slots) + " / " +
                                     std::to_string(res.decisions));
  table.row("avg transmitters per slot", fixed(res.avg_strategy_size, 1));
  table.row("network throughput (Mbps, effective)",
            fixed(res.total_effective / 3000.0 * kRateScaleKbps / 1000.0, 2));
  table.row("realized fraction (ideal 0.95)",
            fixed(res.total_effective / res.total_observed, 3));
  table.row("control messages per user per decision",
            fixed(static_cast<double>(res.total_messages) /
                      static_cast<double>(res.decisions) / ecg.num_vertices(),
                  1));
  table.print(std::cout);

  // How much load did the learner push onto the primary channels?
  std::int64_t primary_plays = 0, total_plays = 0;
  for (int v = 0; v < ecg.num_vertices(); ++v) {
    total_plays += res.final_counts[static_cast<std::size_t>(v)];
    if (ecg.channel_of(v) <= 1)
      primary_plays += res.final_counts[static_cast<std::size_t>(v)];
  }
  std::cout << "\nshare of plays on primary-occupied channels: "
            << fixed(100.0 * static_cast<double>(primary_plays) /
                         static_cast<double>(total_plays),
                     1)
            << "% (2 of 10 channels = 20% if oblivious)\n";
  return 0;
}
