// Scenario: watching the wire.
//
// Runs the *message-level* protocol runtime (per-vertex agents + flooding
// control channel) on a small network and prints, round by round, what the
// protocol does: weight-broadcast floods, leader elections, determinations,
// transmissions — together with the exact message/timeslot bill. This is
// the runtime the equivalence tests pit against the lockstep engine.
#include <iostream>

#include "channel/gaussian.h"
#include "graph/extended_graph.h"
#include "graph/generators.h"
#include "net/runtime.h"
#include "util/rng.h"
#include "util/table.h"

int main() {
  using namespace mhca;
  const int kUsers = 12, kChannels = 3;

  Rng rng(42);
  ConflictGraph network = random_geometric_avg_degree(kUsers, 4.0, rng);
  ExtendedConflictGraph ecg(network, kChannels);
  GaussianChannelModel model(kUsers, kChannels, rng);

  net::NetConfig cfg;
  cfg.r = 2;
  cfg.D = 4;
  net::DistributedRuntime runtime(ecg, model, cfg);

  std::cout << "=== Message-level Algorithm 2 (" << kUsers << " users x "
            << kChannels << " channels, K = " << ecg.num_vertices()
            << " virtual vertices) ===\n"
            << "discovery cost: " << runtime.channel_stats().messages
            << " messages (one-time hello floods, ttl = 2r+1)\n"
            << "largest per-vertex table m = " << runtime.max_table_size()
            << " entries (space O(m))\n\n";

  TablePrinter table({"round", "transmitters", "observed sum (kbps)",
                      "mini-rounds", "msgs so far", "timeslots so far"});
  for (int round = 1; round <= 10; ++round) {
    const net::NetRoundResult res = runtime.step();
    table.row(res.round, res.strategy.size(),
              fixed(res.observed_sum * kRateScaleKbps, 0), res.mini_rounds,
              runtime.channel_stats().messages,
              runtime.channel_stats().mini_timeslots);
  }
  table.print(std::cout);

  // Show the final channel assignment.
  std::cout << "\nfinal strategy (node -> channel):";
  const net::NetRoundResult last = runtime.step();
  const Strategy s = ecg.to_strategy(last.strategy);
  for (int node = 0; node < kUsers; ++node) {
    const int chan = s.channel_of_node[static_cast<std::size_t>(node)];
    std::cout << "  " << node << "->"
              << (chan == Strategy::kNoChannel ? std::string("-")
                                               : std::to_string(chan));
  }
  std::cout << "\n";
  return 0;
}
