// Scenario: the paper's Fig. 5 pathology, live.
//
// A chain of roadside relay units forms a linear network. When channel
// quality happens to decrease monotonically along the road, LocalLeader
// election serializes: exactly one leader can emerge per mini-round and a
// full strategy decision needs Θ(N) mini-rounds. This example contrasts
// the linear topology with a random mesh of the same size and shows what a
// practical fixed budget D leaves on the table in each case.
#include <iostream>

#include "channel/gaussian.h"
#include "graph/extended_graph.h"
#include "graph/generators.h"
#include "mwis/distributed_ptas.h"
#include "util/rng.h"
#include "util/table.h"

int main() {
  using namespace mhca;
  const int kUnits = 60;

  // Linear network; strictly decreasing mean rates along the road.
  ConflictGraph road = linear_network(kUnits);
  ExtendedConflictGraph road_h(road, 1);
  std::vector<double> road_w(static_cast<std::size_t>(kUnits));
  for (int i = 0; i < kUnits; ++i)
    road_w[static_cast<std::size_t>(i)] =
        0.9 - 0.8 * static_cast<double>(i) / kUnits;

  // Random mesh of the same size, weights of the same magnitude.
  Rng rng(10);
  ConflictGraph mesh = random_geometric_avg_degree(kUnits, 6.0, rng);
  ExtendedConflictGraph mesh_h(mesh, 1);
  GaussianChannelModel model(kUnits, 1, rng);
  const std::vector<double> mesh_w = model.mean_matrix();

  std::cout << "=== Fig. 5 live: linear vs random topology (N = " << kUnits
            << ", r = 2) ===\n\n";
  TablePrinter table({"topology", "D budget", "relative weight",
                      "mini-rounds used", "all marked?"});

  for (const bool linear : {true, false}) {
    const Graph& h = linear ? road_h.graph() : mesh_h.graph();
    const std::vector<double>& w = linear ? road_w : mesh_w;
    DistributedRobustPtas full(h, {});
    const double complete_weight = full.run(w).weight;
    for (int d : {2, 4, 8, 0}) {
      DistributedPtasConfig cfg;
      cfg.max_mini_rounds = d;
      DistributedRobustPtas engine(h, cfg);
      const DistributedPtasResult res = engine.run(w);
      table.row(linear ? "linear road" : "random mesh",
                d == 0 ? std::string("inf") : std::to_string(d),
                fixed(res.weight / complete_weight, 3), res.mini_rounds_used,
                res.all_marked ? "yes" : "no");
    }
  }
  table.print(std::cout);
  std::cout << "\nThe random mesh is done (weight ~1.0) within the D = 4\n"
            << "budget the paper uses; the adversarial road needs ~N/(2r+1)\n"
            << "mini-rounds to mark every unit.\n";
  return 0;
}
