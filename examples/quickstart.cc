// Quickstart: the public API in ~60 lines.
//
// The primary entry point is the declarative Scenario API: describe the
// whole experiment (topology x channel x policy x solver x run) as data,
// and let ScenarioRunner build and drive it. The step-by-step facade
// (ChannelAccessScheme) remains for callers that own the radio environment.
#include <iostream>

#include "channel/gaussian.h"
#include "core/channel_access.h"
#include "graph/generators.h"
#include "scenario/runner.h"
#include "sim/optimum.h"
#include "util/rng.h"
#include "util/table.h"

int main() {
  using namespace mhca;

  // --- Scenario mode: the experiment as data (see src/scenario/README.md;
  // the same text can live in a .ini file and run via `mhca_sim run`). ---
  scenario::Scenario s = scenario::parse_scenario(R"(name = quickstart
[topology]
kind = geometric
nodes = 20
avg_degree = 5.0
[channel]
kind = gaussian
channels = 8
[policy]
kind = cab
[run]
slots = 500
seed = 7
)");
  // Any knob is one override away — no recompilation:
  scenario::apply_override(s, "solver.D=4");

  scenario::ScenarioRunner runner(s);
  const SimulationResult res = runner.run();
  const OptimumInfo opt =
      compute_optimum(runner.extended_graph(), runner.model());

  TablePrinter table({"metric", "value"});
  table.row("slots", res.total_slots);
  table.row("avg transmitters per slot", fixed(res.avg_strategy_size, 2));
  table.row("avg observed throughput (kbps)",
            fixed(res.total_observed / 500.0 * kRateScaleKbps, 1));
  table.row("avg effective throughput (kbps, theta-discounted)",
            fixed(res.total_effective / 500.0 * kRateScaleKbps, 1));
  table.row("static optimum R1 (kbps)", fixed(opt.weight * kRateScaleKbps, 1));
  table.row("expected/optimal ratio",
            fixed(res.total_expected / 500.0 / opt.weight, 3));
  table.print(std::cout);

  // --- Step-by-step mode: you own the radio environment. ---
  Rng rng(7);
  ConflictGraph network = random_geometric_avg_degree(20, 5.0, rng);
  GaussianChannelModel environment(20, 8, rng);

  ChannelAccessConfig cfg;  // compatibility shim over scenario::SolverSpec
  cfg.num_channels = 8;
  ChannelAccessScheme scheme(network, cfg);
  for (std::int64_t t = 1; t <= 50; ++t) {
    const Strategy& st = scheme.decide();
    for (int node = 0; node < network.num_nodes(); ++node) {
      const int chan = st.channel_of_node[static_cast<std::size_t>(node)];
      if (chan == Strategy::kNoChannel) continue;  // node stays silent
      // Transmit, then report the observed normalized data rate:
      scheme.report(node, environment.sample(node, chan, t));
    }
  }
  std::cout << "after 50 step-mode rounds the scheme tried "
            << scheme.estimates().total_plays() << " (node, channel) plays\n";
  return 0;
}
