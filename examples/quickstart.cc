// Quickstart: the public API in ~60 lines.
//
// Build a random multi-hop network, wrap it in a ChannelAccessScheme, and
// (1) drive the scheme step by step against your own environment, then
// (2) let the built-in simulator run the full Algorithm-2 pipeline.
#include <iostream>

#include "channel/gaussian.h"
#include "core/channel_access.h"
#include "graph/generators.h"
#include "sim/optimum.h"
#include "util/rng.h"
#include "util/table.h"

int main() {
  using namespace mhca;

  // A 20-user network with unit-disk conflicts, 8 channels (paper rates).
  Rng rng(7);
  ConflictGraph network = random_geometric_avg_degree(20, 5.0, rng);
  GaussianChannelModel environment(20, 8, rng);

  ChannelAccessConfig cfg;
  cfg.num_channels = 8;          // M
  cfg.r = 2;                     // robust-PTAS neighborhood radius
  cfg.D = 4;                     // mini-rounds per strategy decision
  ChannelAccessScheme scheme(network, cfg);

  // --- Step-by-step mode: you own the radio environment. ---
  for (std::int64_t t = 1; t <= 50; ++t) {
    const Strategy& s = scheme.decide();
    for (int node = 0; node < network.num_nodes(); ++node) {
      const int chan = s.channel_of_node[static_cast<std::size_t>(node)];
      if (chan == Strategy::kNoChannel) continue;  // node stays silent
      // Transmit, then report the observed normalized data rate:
      scheme.report(node, environment.sample(node, chan, t));
    }
  }
  std::cout << "after 50 rounds the scheme tried "
            << scheme.estimates().total_plays() << " (node, channel) plays\n";

  // --- Batch mode: built-in simulator with the paper's timing model. ---
  const SimulationResult res = scheme.run(environment, 500);
  const OptimumInfo opt = compute_optimum(scheme.extended_graph(), environment);

  TablePrinter table({"metric", "value"});
  table.row("slots", res.total_slots);
  table.row("avg transmitters per slot", fixed(res.avg_strategy_size, 2));
  table.row("avg observed throughput (kbps)",
            fixed(res.total_observed / 500.0 * kRateScaleKbps, 1));
  table.row("avg effective throughput (kbps, theta-discounted)",
            fixed(res.total_effective / 500.0 * kRateScaleKbps, 1));
  table.row("static optimum R1 (kbps)", fixed(opt.weight * kRateScaleKbps, 1));
  table.row("expected/optimal ratio",
            fixed(res.total_expected / 500.0 / opt.weight, 3));
  table.print(std::cout);
  return 0;
}
