// Scenario: field trial with bursty channels and a replayable log.
//
// Real spectrum is bursty, not i.i.d.: a Gilbert–Elliott Markov chain per
// (node, channel) flips between a good and a bad state. We (1) run the
// scheme live on the Markov spectrum, (2) record the exact realization into
// a trace, (3) replay the trace against a different policy — a perfectly
// paired A/B comparison, the workflow you'd use with a measured dataset.
#include <iostream>

#include "bandit/policy.h"
#include "channel/markov.h"
#include "channel/trace.h"
#include "graph/extended_graph.h"
#include "graph/generators.h"
#include "sim/export.h"
#include "sim/simulator.h"
#include "util/rng.h"
#include "util/table.h"

int main() {
  using namespace mhca;
  const int kUsers = 16, kChannels = 4;
  const std::int64_t kSlots = 800;

  Rng rng(1313);
  ConflictGraph field = random_geometric_avg_degree(kUsers, 4.5, rng);
  ExtendedConflictGraph ecg(field, kChannels);

  // Bursty spectrum: bad state delivers 20% of the good rate; dwell times
  // of ~10-20 slots (transition probabilities 0.05-0.1).
  GilbertElliottChannelModel spectrum(kUsers, kChannels, rng, 0.2, 0.05, 0.1);

  // Record the realization once; both policies replay the identical slots.
  TraceChannelModel trace = record_trace(spectrum, kSlots);

  std::cout << "=== Bursty (Markov) spectrum + trace replay A/B ===\n"
            << "trace: " << trace.trace_length() << " slots x "
            << ecg.num_vertices() << " arms\n\n";

  TablePrinter table({"policy", "avg expected (kbps)", "avg effective (kbps)",
                      "estimate gap"});
  for (PolicyKind kind :
       {PolicyKind::kCab, PolicyKind::kLlr, PolicyKind::kGreedy}) {
    PolicyParams params;
    params.llr_max_strategy_len = kUsers;
    auto policy = make_policy(kind, params);
    SimulationConfig cfg;
    cfg.slots = kSlots;
    Simulator sim(ecg, trace, *policy, cfg);
    const SimulationResult res = sim.run();
    table.row(policy->name(),
              fixed(res.total_expected / kSlots * kRateScaleKbps, 1),
              fixed(res.total_effective / kSlots * kRateScaleKbps, 1),
              fixed(std::abs(res.cumavg_estimated.back() -
                             res.cumavg_effective.back()) /
                        res.cumavg_effective.back(),
                    3));
    if (kind == PolicyKind::kCab) {
      const std::string csv = "markov_trace_cab.csv";
      if (export_series_csv(res, csv, kRateScaleKbps))
        std::cout << "(CAB series exported to ./" << csv << ")\n";
    }
  }
  table.print(std::cout);
  std::cout << "\nBurstiness violates the i.i.d. assumption, yet the scheme\n"
            << "still converges to the good channels: the running means\n"
            << "estimate the chains' stationary marginals.\n";
  return 0;
}
