// Large-n smoke: the decision path past the dense-matrix limit.
//
// Everything here runs on graphs with more than Graph::kAdjacencyMatrixLimit
// vertices, where finalize() builds sharded sparse rows instead of the n^2
// bitset matrix. The claims: (1) the representation selection is what the
// README's rule says, (2) the cached decision path (NeighborhoodCache +
// sparse-row gather + incremental SoA election) takes byte-identical
// decisions to the seed re-derivation path at n ≈ 10k, and (3) incremental
// apply_delta keeps the sharded structures exact.
//
// ctest label "large": runs in the Release CI job only (Debug/ASan jobs
// filter it out with -LE large — an unoptimized 10k-vertex decision is
// minutes, not seconds).
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <utility>
#include <vector>

#include "graph/extended_graph.h"
#include "graph/generators.h"
#include "graph/hop.h"
#include "graph/neighborhood_cache.h"
#include "mwis/distributed_ptas.h"
#include "util/rng.h"

namespace mhca {
namespace {

/// Scoped MHCA_EBALL_TIER override (the cache reads it per construction).
class EballTierOverride {
 public:
  explicit EballTierOverride(const char* tier) {
    ::setenv("MHCA_EBALL_TIER", tier, /*overwrite=*/1);
  }
  ~EballTierOverride() { ::unsetenv("MHCA_EBALL_TIER"); }
};

TEST(LargeN, RepresentationSelectionRule) {
  Rng rng(5);
  ConflictGraph small = random_geometric_avg_degree(
      100, 5.0, rng, /*force_connected=*/false);
  EXPECT_TRUE(small.graph().has_adjacency_matrix());
  EXPECT_FALSE(small.graph().has_sparse_rows());

  ConflictGraph big = random_geometric_avg_degree(
      Graph::kAdjacencyMatrixLimit + 100, 5.0, rng, /*force_connected=*/false);
  EXPECT_FALSE(big.graph().has_adjacency_matrix());
  EXPECT_TRUE(big.graph().has_sparse_rows());

  // Sparse rows agree with the CSR row for every vertex.
  const Graph& g = big.graph();
  std::vector<int> from_sparse;
  for (int v = 0; v < g.size(); v += 97) {
    from_sparse.clear();
    const auto blocks = g.sparse_row_blocks(v);
    const auto words = g.sparse_row_words(v);
    ASSERT_EQ(blocks.size(), words.size());
    for (std::size_t k = 0; k < blocks.size(); ++k) {
      ASSERT_NE(words[k], 0u) << "stored zero block";
      if (k > 0) ASSERT_LT(blocks[k - 1], blocks[k]) << "blocks not ascending";
      for (int b = 0; b < 64; ++b)
        if ((words[k] >> b) & 1u) from_sparse.push_back(blocks[k] * 64 + b);
    }
    const auto nb = g.neighbors(v);
    ASSERT_TRUE(std::equal(nb.begin(), nb.end(), from_sparse.begin(),
                           from_sparse.end()))
        << "vertex " << v;
  }
}

TEST(LargeN, EballTierSelectionRule) {
  // The election-ball layer is tiered by the same n <= kAdjacencyMatrixLimit
  // threshold that picks the dense adjacency matrix, with MHCA_EBALL_TIER
  // as a per-construction override — and the two tiers describe the same
  // balls: identical r-ball spans, identical election-ball sizes, and the
  // implicit tier's sizes match a fresh BFS enumeration.
  Rng rng(91);
  ConflictGraph small_cg = random_geometric_avg_degree(
      300, 5.0, rng, /*force_connected=*/false);
  const Graph& small = small_cg.graph();
  EXPECT_EQ(NeighborhoodCache::select_eball_tier(small.size()),
            NeighborhoodCache::EballTier::kExplicit);
  EXPECT_EQ(
      NeighborhoodCache::select_eball_tier(Graph::kAdjacencyMatrixLimit + 1),
      NeighborhoodCache::EballTier::kImplicit);

  const NeighborhoodCache exp(small, 2, /*build_covers=*/false,
                              /*parallelism=*/1);
  ASSERT_EQ(exp.eball_tier(), NeighborhoodCache::EballTier::kExplicit);
  EXPECT_EQ(exp.explicit_layout_bytes(), exp.resident_bytes());

  EballTierOverride force("implicit");
  const NeighborhoodCache imp(small, 2, /*build_covers=*/false,
                              /*parallelism=*/1);
  ASSERT_EQ(imp.eball_tier(), NeighborhoodCache::EballTier::kImplicit);
  EXPECT_LT(imp.resident_bytes(), exp.resident_bytes());
  EXPECT_EQ(imp.explicit_layout_bytes(), exp.resident_bytes());

  BfsScratch scratch(small.size());
  std::vector<int> ball;
  for (int v = 0; v < small.size(); ++v) {
    const auto re = exp.r_ball(v), ri = imp.r_ball(v);
    ASSERT_TRUE(std::equal(re.begin(), re.end(), ri.begin(), ri.end()))
        << "r-ball of " << v;
    ASSERT_EQ(imp.election_ball_size(v), exp.election_ball_size(v))
        << "e-ball size of " << v;
    scratch.k_hop_neighborhood(small, v, 2 * 2 + 1, ball);
    ASSERT_EQ(imp.election_ball_size(v), static_cast<int>(ball.size()))
        << "e-ball size of " << v << " vs BFS";
  }
}

TEST(LargeN, CachedDecisionPathMatchesSeedPathAtTenThousandVertices) {
  // 2500 users x 4 channels = 10000 H vertices — past the matrix limit, so
  // the cached path gathers from sparse rows and the seed path from lists.
  Rng rng(2026);
  ConflictGraph cg = random_geometric_avg_degree(
      2500, 6.0, rng, /*force_connected=*/false);
  ExtendedConflictGraph ecg(cg, 4);
  const Graph& h = ecg.graph();
  ASSERT_GT(h.size(), Graph::kAdjacencyMatrixLimit);
  ASSERT_TRUE(h.has_sparse_rows());

  DistributedPtasConfig seed_cfg;
  seed_cfg.r = 2;
  seed_cfg.use_decision_cache = false;
  seed_cfg.local_solve_parallelism = 1;
  DistributedPtasConfig cached_cfg = seed_cfg;
  cached_cfg.use_decision_cache = true;
  cached_cfg.local_solve_parallelism = 0;  // fan out; determinism is claimed

  DistributedRobustPtas seed_engine(h, seed_cfg);
  DistributedRobustPtas cached_engine(h, cached_cfg);

  std::vector<double> w(static_cast<std::size_t>(h.size()));
  for (int decision = 0; decision < 2; ++decision) {
    for (auto& x : w) x = rng.uniform(0.05, 1.0);
    const DistributedPtasResult a = seed_engine.run(w);
    const DistributedPtasResult b = cached_engine.run(w);
    ASSERT_EQ(a.winners, b.winners) << "decision " << decision;
    ASSERT_EQ(a.weight, b.weight) << "decision " << decision;
    ASSERT_EQ(a.mini_rounds_used, b.mini_rounds_used);
    ASSERT_TRUE(h.is_independent_set(b.winners));
  }
}

TEST(LargeN, StageTimesCoverWholeDecisionAtTwelveThousandVertices) {
  // Regression for the untimed-742ms bug: the four original stage buckets
  // accounted for ~3% of a 50k-vertex decision while the O(W²) winner
  // validation burned the rest off the books. With setup/validate/other
  // buckets the accounting must be total: Σ buckets ≥ 95% of the wall
  // clock an external caller measures around run(). 3200 users x 4
  // channels = 12800 H vertices keeps the test seconds-long while well
  // past the dense-matrix limit.
  Rng rng(1212);
  ConflictGraph cg = random_geometric_avg_degree(
      3200, 6.0, rng, /*force_connected=*/false);
  ExtendedConflictGraph ecg(cg, 4);
  const Graph& h = ecg.graph();
  ASSERT_GT(h.size(), Graph::kAdjacencyMatrixLimit);

  DistributedPtasConfig cfg;
  cfg.r = 2;
  cfg.collect_stage_times = true;
  cfg.local_solve_parallelism = 1;
  DistributedRobustPtas engine(h, cfg);

  std::vector<double> w(static_cast<std::size_t>(h.size()));
  using Clock = std::chrono::steady_clock;
  double external_ms = 0.0;
  for (int decision = 0; decision < 3; ++decision) {
    for (auto& x : w) x = rng.uniform(0.05, 1.0);
    const auto t0 = Clock::now();
    engine.run(w);
    external_ms +=
        std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
  }
  const DecisionStageTimes& st = engine.stage_times();
  EXPECT_GE(st.total_ms(), 0.95 * external_ms)
      << "setup=" << st.setup_ms << " election=" << st.election_ms
      << " gather=" << st.gather_ms << " solve=" << st.solve_ms
      << " apply=" << st.apply_ms << " validate=" << st.validate_ms
      << " other=" << st.other_ms << " external=" << external_ms;
  // And the buckets are real measurements, not padding: the named protocol
  // stages must hold most of the time (`other` is loop bookkeeping only).
  EXPECT_LT(st.other_ms, 0.5 * st.total_ms());
}

TEST(LargeN, ParallelCacheBuildByteIdenticalAcrossWorkerCounts) {
  // The count-then-fill parallel build writes every vertex's balls (and
  // covers) into offset slots fixed by a worker-count-independent prefix
  // sum, so any parallelism must reproduce the serial single-pass build
  // byte for byte.
  Rng rng(33);
  ConflictGraph cg = random_geometric_avg_degree(
      2300, 6.0, rng, /*force_connected=*/false);
  ExtendedConflictGraph ecg(cg, 4);
  const Graph& h = ecg.graph();
  ASSERT_GT(h.size(), Graph::kAdjacencyMatrixLimit);

  // This graph is past the matrix limit, so both tiers are exercised: the
  // default implicit tier here, the explicit tier forced below.
  const NeighborhoodCache serial(h, 2, /*build_covers=*/true,
                                 /*parallelism=*/1);
  ASSERT_EQ(serial.eball_tier(), NeighborhoodCache::EballTier::kImplicit);
  const auto check = [&](const NeighborhoodCache& par, int workers) {
    ASSERT_EQ(par.size(), serial.size());
    ASSERT_TRUE(par.has_covers());
    const bool spans =
        par.eball_tier() == NeighborhoodCache::EballTier::kExplicit &&
        serial.eball_tier() == NeighborhoodCache::EballTier::kExplicit;
    for (int v = 0; v < h.size(); ++v) {
      const auto rs = serial.r_ball(v), rp = par.r_ball(v);
      ASSERT_TRUE(std::equal(rs.begin(), rs.end(), rp.begin(), rp.end()))
          << "r-ball of " << v << " at workers=" << workers;
      ASSERT_EQ(serial.election_ball_size(v), par.election_ball_size(v))
          << "election ball size of " << v << " at workers=" << workers;
      if (spans) {
        const auto es = serial.election_ball(v), ep = par.election_ball(v);
        ASSERT_TRUE(std::equal(es.begin(), es.end(), ep.begin(), ep.end()))
            << "election ball of " << v << " at workers=" << workers;
      }
      const auto cs = serial.r_ball_cover(v), cp = par.r_ball_cover(v);
      ASSERT_TRUE(std::equal(cs.begin(), cs.end(), cp.begin(), cp.end()))
          << "cover of " << v << " at workers=" << workers;
      ASSERT_EQ(serial.r_ball_clique_count(v), par.r_ball_clique_count(v));
    }
  };
  for (int workers : {2, 4}) {
    const NeighborhoodCache par(h, 2, /*build_covers=*/true, workers);
    ASSERT_EQ(par.eball_tier(), serial.eball_tier());
    check(par, workers);
  }
  {
    // Same claim with explicit e-ball spans: the count-then-fill layout is
    // worker-count independent on both tiers.
    EballTierOverride force("explicit");
    const NeighborhoodCache eser(h, 2, /*build_covers=*/true,
                                 /*parallelism=*/1);
    ASSERT_EQ(eser.eball_tier(), NeighborhoodCache::EballTier::kExplicit);
    const NeighborhoodCache epar(h, 2, /*build_covers=*/true,
                                 /*parallelism=*/4);
    ASSERT_EQ(epar.eball_tier(), NeighborhoodCache::EballTier::kExplicit);
    for (int v = 0; v < h.size(); ++v) {
      const auto es = eser.election_ball(v), ep = epar.election_ball(v);
      ASSERT_TRUE(std::equal(es.begin(), es.end(), ep.begin(), ep.end()))
          << "explicit election ball of " << v;
      ASSERT_EQ(serial.election_ball_size(v), eser.election_ball_size(v))
          << "tiers disagree on e-ball size of " << v;
    }
  }
}

TEST(LargeN, CachedDecisionMatchesSeedAtQuarterMillionVertices) {
  // 62500 users x 4 channels = 250k H vertices. One decision, seed path
  // (max-relaxation election + per-leader BFS) against the cached path
  // (implicit-tier NeighborhoodCache + SoA election): byte-identical
  // winners and weight. This is the scale gate on the road to 1M — the
  // explicit e-ball spans would hold ~10^8 entries here; the implicit tier
  // stores 4 bytes per vertex.
  Rng rng(250250);
  ConflictGraph cg = random_geometric_avg_degree(
      62500, 6.0, rng, /*force_connected=*/false);
  ExtendedConflictGraph ecg(cg, 4);
  const Graph& h = ecg.graph();
  ASSERT_EQ(h.size(), 250000);

  DistributedPtasConfig seed_cfg;
  seed_cfg.r = 2;
  seed_cfg.use_decision_cache = false;
  seed_cfg.local_solve_parallelism = 1;
  DistributedPtasConfig cached_cfg = seed_cfg;
  cached_cfg.use_decision_cache = true;
  cached_cfg.local_solve_parallelism = 0;

  DistributedRobustPtas seed_engine(h, seed_cfg);
  DistributedRobustPtas cached_engine(h, cached_cfg);
  ASSERT_EQ(cached_engine.neighborhood_cache().eball_tier(),
            NeighborhoodCache::EballTier::kImplicit);

  std::vector<double> w(static_cast<std::size_t>(h.size()));
  for (auto& x : w) x = rng.uniform(0.05, 1.0);
  const DistributedPtasResult a = seed_engine.run(w);
  const DistributedPtasResult b = cached_engine.run(w);
  ASSERT_EQ(a.winners, b.winners);
  ASSERT_EQ(a.weight, b.weight);
  ASSERT_EQ(a.mini_rounds_used, b.mini_rounds_used);
  ASSERT_TRUE(h.is_independent_set(b.winners));
}

TEST(LargeN, ApplyDeltaKeepsSparseRowsExact) {
  Rng rng(77);
  const int n = Graph::kAdjacencyMatrixLimit + 50;
  Graph g(n);
  std::vector<std::pair<int, int>> edges;
  for (int i = 0; i < 4000; ++i) {
    int u = rng.uniform_int(0, n - 1), v = rng.uniform_int(0, n - 1);
    if (u == v) continue;
    if (u > v) std::swap(u, v);
    edges.emplace_back(u, v);
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  for (const auto& [u, v] : edges) g.add_edge(u, v);
  g.finalize();
  ASSERT_TRUE(g.has_sparse_rows());

  // Remove a slice, add a fresh batch, and compare against a cold rebuild.
  std::vector<std::pair<int, int>> removed(edges.begin(), edges.begin() + 200);
  std::vector<std::pair<int, int>> added;
  for (int i = 0; i < 300; ++i) {
    int u = rng.uniform_int(0, n - 1), v = rng.uniform_int(0, n - 1);
    if (u == v) continue;
    if (u > v) std::swap(u, v);
    if (g.has_edge(u, v)) continue;
    added.emplace_back(u, v);
  }
  std::sort(added.begin(), added.end());
  added.erase(std::unique(added.begin(), added.end()), added.end());
  // Re-adding a just-removed edge would make the delta inexact.
  std::vector<std::pair<int, int>> clean_added;
  std::set_difference(added.begin(), added.end(), removed.begin(),
                      removed.end(), std::back_inserter(clean_added));
  g.apply_delta(clean_added, removed);

  std::vector<std::pair<int, int>> now(edges.begin() + 200, edges.end());
  now.insert(now.end(), clean_added.begin(), clean_added.end());
  std::sort(now.begin(), now.end());
  Graph rebuilt(n);
  for (const auto& [u, v] : now) rebuilt.add_edge(u, v);
  rebuilt.finalize();

  ASSERT_EQ(g.num_edges(), rebuilt.num_edges());
  for (int v = 0; v < n; ++v) {
    const auto ba = g.sparse_row_blocks(v);
    const auto bb = rebuilt.sparse_row_blocks(v);
    ASSERT_TRUE(std::equal(ba.begin(), ba.end(), bb.begin(), bb.end()))
        << "blocks of row " << v;
    const auto wa = g.sparse_row_words(v);
    const auto wb = rebuilt.sparse_row_words(v);
    ASSERT_TRUE(std::equal(wa.begin(), wa.end(), wb.begin(), wb.end()))
        << "words of row " << v;
  }
}

}  // namespace
}  // namespace mhca
