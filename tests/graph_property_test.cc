// Randomized property tests over the graph substrate: BFS hop utilities
// against a reference implementation, ball monotonicity/nesting, induced
// subgraphs preserving structure, growth-bounded sweeps of H across (M, r),
// and maximal-IS enumeration cross-checks.
#include <gtest/gtest.h>

#include <algorithm>
#include <queue>
#include <set>

#include "graph/extended_graph.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/hop.h"
#include "graph/independence.h"
#include "graph/induced.h"
#include "graph/spatial_grid.h"
#include "mwis/distributed_ptas.h"
#include "util/rng.h"

namespace mhca {
namespace {

/// Reference unbounded BFS distances (simple, obviously correct).
std::vector<int> reference_distances(const Graph& g, int src) {
  std::vector<int> dist(static_cast<std::size_t>(g.size()), -1);
  std::queue<int> q;
  q.push(src);
  dist[static_cast<std::size_t>(src)] = 0;
  while (!q.empty()) {
    const int v = q.front();
    q.pop();
    for (int u : g.neighbors(v)) {
      if (dist[static_cast<std::size_t>(u)] < 0) {
        dist[static_cast<std::size_t>(u)] =
            dist[static_cast<std::size_t>(v)] + 1;
        q.push(u);
      }
    }
  }
  return dist;
}

class RandomGraphSweep : public ::testing::TestWithParam<int> {
 protected:
  Graph make_graph() {
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 48271 + 7);
    ConflictGraph cg = erdos_renyi(35, 0.12, rng);
    return cg.graph();
  }
};

TEST_P(RandomGraphSweep, KHopMatchesReferenceDistances) {
  const Graph g = make_graph();
  BfsScratch scratch(g.size());
  for (int src : {0, 10, 34}) {
    const auto dist = reference_distances(g, src);
    for (int k : {0, 1, 2, 3, 5}) {
      const auto ball = scratch.k_hop_neighborhood(g, src, k);
      std::set<int> got(ball.begin(), ball.end());
      for (int v = 0; v < g.size(); ++v) {
        const bool inside = dist[static_cast<std::size_t>(v)] >= 0 &&
                            dist[static_cast<std::size_t>(v)] <= k;
        EXPECT_EQ(got.count(v) == 1, inside)
            << "src=" << src << " k=" << k << " v=" << v;
      }
    }
  }
}

TEST_P(RandomGraphSweep, HopDistanceSymmetricAndMatchesReference) {
  const Graph g = make_graph();
  BfsScratch scratch(g.size());
  const auto dist = reference_distances(g, 3);
  for (int v = 0; v < g.size(); v += 4) {
    const int d = scratch.hop_distance(g, 3, v);
    const int expected = dist[static_cast<std::size_t>(v)] < 0
                             ? BfsScratch::unreachable()
                             : dist[static_cast<std::size_t>(v)];
    EXPECT_EQ(d, expected);
    EXPECT_EQ(scratch.hop_distance(g, v, 3), d);  // symmetry
  }
}

TEST_P(RandomGraphSweep, BallsAreNested) {
  const Graph g = make_graph();
  BfsScratch scratch(g.size());
  for (int v = 0; v < g.size(); v += 7) {
    std::vector<int> prev = scratch.k_hop_neighborhood(g, v, 0);
    for (int k = 1; k <= 4; ++k) {
      const auto ball = scratch.k_hop_neighborhood(g, v, k);
      EXPECT_TRUE(std::includes(ball.begin(), ball.end(), prev.begin(),
                                prev.end()))
          << "J_" << k << " must contain J_" << k - 1;
      prev = ball;
    }
  }
}

TEST_P(RandomGraphSweep, InducedSubgraphPreservesEdgesExactly) {
  const Graph g = make_graph();
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 1000);
  std::vector<int> keep;
  for (int v = 0; v < g.size(); ++v)
    if (rng.bernoulli(0.5)) keep.push_back(v);
  if (keep.size() < 2) return;
  const InducedSubgraph sub = induced_subgraph(g, keep);
  for (int a = 0; a < sub.graph.size(); ++a)
    for (int b = a + 1; b < sub.graph.size(); ++b)
      EXPECT_EQ(sub.graph.has_edge(a, b),
                g.has_edge(sub.to_parent[static_cast<std::size_t>(a)],
                           sub.to_parent[static_cast<std::size_t>(b)]));
}

TEST_P(RandomGraphSweep, MaximalIndependentSetsAreMaximalAndIndependent) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 5);
  ConflictGraph cg = erdos_renyi(12, 0.3, rng);
  const Graph& g = cg.graph();
  std::vector<std::vector<int>> sets;
  ASSERT_TRUE(enumerate_maximal_independent_sets(g, 100000, sets));
  ASSERT_FALSE(sets.empty());
  for (const auto& s : sets) {
    EXPECT_TRUE(g.is_independent_set(s));
    // Maximality: every vertex outside s has a neighbor in s or is in s.
    std::set<int> in(s.begin(), s.end());
    for (int v = 0; v < g.size(); ++v) {
      if (in.count(v)) continue;
      bool blocked = false;
      for (int u : s)
        if (g.has_edge(u, v)) {
          blocked = true;
          break;
        }
      EXPECT_TRUE(blocked) << "set not maximal at vertex " << v;
    }
  }
  // No duplicates.
  std::set<std::vector<int>> uniq(sets.begin(), sets.end());
  EXPECT_EQ(uniq.size(), sets.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomGraphSweep, ::testing::Range(0, 6));

// Growth-bound sweep across channels and radii (Theorem 2 generalization).
class GrowthBoundSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(GrowthBoundSweep, ExtendedGraphIndependenceWithinPigeonholeBound) {
  const int m_channels = std::get<0>(GetParam());
  const int r = std::get<1>(GetParam());
  Rng rng(static_cast<std::uint64_t>(m_channels * 10 + r));
  ConflictGraph cg = random_geometric_avg_degree(24, 5.0, rng, false);
  ExtendedConflictGraph ecg(cg, m_channels);
  const Graph& h = ecg.graph();
  BfsScratch scratch(h.size());
  for (int v = 0; v < h.size(); v += std::max(1, h.size() / 6)) {
    const auto ball = scratch.k_hop_neighborhood(h, v, r);
    const InducedSubgraph sub = induced_subgraph(h, ball);
    EXPECT_LE(independence_number(sub.graph),
              m_channels * (2 * r + 1) * (2 * r + 1));
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, GrowthBoundSweep,
                         ::testing::Combine(::testing::Values(1, 2, 4),
                                            ::testing::Values(1, 2)));

TEST(GraphProperty, ExtendedGraphDegreeStructure) {
  // deg_H(v_{i,j}) = (M-1) + deg_G(i): the master clique plus same-channel
  // conflict edges.
  Rng rng(99);
  ConflictGraph cg = random_geometric_avg_degree(15, 4.0, rng, false);
  for (int m : {1, 2, 5}) {
    ExtendedConflictGraph ecg(cg, m);
    for (int i = 0; i < cg.num_nodes(); ++i)
      for (int j = 0; j < m; ++j)
        EXPECT_EQ(ecg.graph().degree(ecg.vertex_of(i, j)),
                  (m - 1) + cg.graph().degree(i));
  }
}

TEST(GraphProperty, ExtendedGraphEdgeCount) {
  // |E_H| = N * C(M,2) + M * |E_G|.
  Rng rng(100);
  ConflictGraph cg = erdos_renyi(20, 0.2, rng);
  for (int m : {2, 3, 6}) {
    ExtendedConflictGraph ecg(cg, m);
    const std::int64_t expected =
        static_cast<std::int64_t>(20) * m * (m - 1) / 2 +
        static_cast<std::int64_t>(m) * cg.graph().num_edges();
    EXPECT_EQ(ecg.graph().num_edges(), expected);
  }
}

TEST(GraphProperty, SpatialGridPairSweepMatchesAllPairs) {
  // The unit-disk hot paths (from_positions, waypoint re-derivation) lean
  // on the grid emitting exactly the naive O(n^2) sweep's pairs. Fuzz over
  // point distributions: uniform, clustered (many points per cell),
  // collinear, and coincident points; radii from "nothing close" to
  // "everything close".
  Rng rng(314);
  for (int trial = 0; trial < 60; ++trial) {
    const int n = 1 + trial % 40;
    std::vector<Point> pts;
    pts.reserve(static_cast<std::size_t>(n));
    const int dist_kind = trial % 4;
    for (int i = 0; i < n; ++i) {
      switch (dist_kind) {
        case 0:  // uniform square
          pts.push_back(Point{rng.uniform(0.0, 10.0), rng.uniform(0.0, 10.0)});
          break;
        case 1:  // two tight clusters
          pts.push_back(Point{rng.uniform(0.0, 0.5) + (i % 2) * 8.0,
                              rng.uniform(0.0, 0.5)});
          break;
        case 2:  // collinear (degenerate rows of cells)
          pts.push_back(Point{0.37 * i, 2.0});
          break;
        default:  // coincident + jitter
          pts.push_back(Point{1.0 + 1e-9 * i, 1.0});
          break;
      }
    }
    const double radius = 0.05 + rng.uniform() * 5.0;
    std::vector<std::pair<int, int>> naive;
    const double r2 = radius * radius;
    for (int i = 0; i < n; ++i)
      for (int j = i + 1; j < n; ++j)
        if (squared_distance(pts[static_cast<std::size_t>(i)],
                             pts[static_cast<std::size_t>(j)]) <= r2)
          naive.emplace_back(i, j);

    const SpatialGrid grid(pts, radius);
    std::vector<std::pair<int, int>> from_grid;
    grid.for_each_pair_within(
        pts, radius, [&](int i, int j) { from_grid.emplace_back(i, j); });
    std::sort(from_grid.begin(), from_grid.end());
    ASSERT_EQ(from_grid, naive) << "trial " << trial;

    // Radius query around a random center (possibly outside the bbox).
    const Point center{rng.uniform(-2.0, 12.0), rng.uniform(-2.0, 12.0)};
    std::vector<int> naive_in;
    for (int i = 0; i < n; ++i)
      if (squared_distance(pts[static_cast<std::size_t>(i)], center) <= r2)
        naive_in.push_back(i);
    std::vector<int> grid_in;
    grid.for_each_within(pts, center, radius,
                         [&](int i) { grid_in.push_back(i); });
    std::sort(grid_in.begin(), grid_in.end());
    ASSERT_EQ(grid_in, naive_in) << "trial " << trial;
  }
}

TEST(GraphProperty, GridBackedFromPositionsMatchesNaiveSweep) {
  // ConflictGraph::from_positions now derives edges through the grid; the
  // resulting graph must equal the direct all-pairs construction.
  Rng rng(2718);
  for (int trial = 0; trial < 12; ++trial) {
    const int n = 30 + trial * 7;
    std::vector<Point> pts;
    for (int i = 0; i < n; ++i)
      pts.push_back(Point{rng.uniform(0.0, 6.0), rng.uniform(0.0, 6.0)});
    const double radius = 0.3 + 0.15 * (trial % 5);
    const ConflictGraph cg = ConflictGraph::from_positions(pts, radius);
    const double r2 = radius * radius;
    std::vector<std::pair<int, int>> naive;
    for (int i = 0; i < n; ++i)
      for (int j = i + 1; j < n; ++j)
        if (squared_distance(pts[static_cast<std::size_t>(i)],
                             pts[static_cast<std::size_t>(j)]) <= r2)
          naive.emplace_back(i, j);
    ASSERT_EQ(cg.graph().num_edges(),
              static_cast<std::int64_t>(naive.size()));
    for (const auto& [u, v] : naive)
      ASSERT_TRUE(cg.graph().has_edge(u, v)) << u << "," << v;
  }
}

TEST(GraphProperty, IndependentSetCheckMatchesPairwiseOracle) {
  // The O(|vs| + Σ deg) neighbor-mark validator (the one the engine assert
  // and the net conflict detector run per decision) must return exactly the
  // pairwise oracle's verdict on every input: random subsets both
  // independent and conflicting, shuffled order, duplicate vertices, empty
  // and singleton sets.
  Rng rng(4242);
  for (int trial = 0; trial < 150; ++trial) {
    const int n = 1 + trial % 60;
    ConflictGraph cg =
        erdos_renyi(n, 0.05 + 0.12 * (trial % 4), rng);
    const Graph& g = cg.graph();
    for (int s = 0; s < 10; ++s) {
      std::vector<int> vs;
      const double keep = rng.uniform(0.05, 0.6);
      for (int v = 0; v < n; ++v)
        if (rng.bernoulli(keep)) vs.push_back(v);
      std::shuffle(vs.begin(), vs.end(), rng.engine());
      if (s % 3 == 2 && !vs.empty()) {
        // Duplicate a member — the mark check must catch the second
        // occurrence exactly like the pairwise vs[i] == vs[j] probe.
        vs.push_back(vs[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<int>(vs.size()) - 1))]);
        std::shuffle(vs.begin(), vs.end(), rng.engine());
      }
      ASSERT_EQ(g.is_independent_set(vs), g.is_independent_set_pairwise(vs))
          << "trial " << trial << " subset " << s;
    }
    // Exercise the accepting branch deliberately: every maximal IS must
    // pass both checks (random subsets of a dense graph almost never do).
    std::vector<std::vector<int>> sets;
    if (enumerate_maximal_independent_sets(g, 2000, sets)) {
      for (std::size_t i = 0; i < sets.size(); i += sets.size() / 4 + 1) {
        ASSERT_TRUE(g.is_independent_set(sets[i]));
        ASSERT_TRUE(g.is_independent_set_pairwise(sets[i]));
      }
    }
  }
}

TEST(GraphProperty, IndependentSetCheckMatchesOracleOnSparseRowGraphs) {
  // Same agreement beyond kAdjacencyMatrixLimit, where has_edge (the
  // oracle's probe) binary-searches sharded sparse rows while the mark
  // check walks CSR neighbor spans. Structure lives in a low-id core plus
  // deliberate edges to top-of-range ids so subsets span the full universe.
  const int n = Graph::kAdjacencyMatrixLimit + 64;
  Rng rng(777);
  Graph g(n);
  const int core = 120;
  for (int i = 0; i < core; ++i)
    for (int j = i + 1; j < core; ++j)
      if (rng.bernoulli(0.08)) g.add_edge(i, j);
  for (int i = 0; i < core; ++i) g.add_edge(i, n - 1 - i);
  g.finalize();
  ASSERT_TRUE(g.has_sparse_rows());
  ASSERT_FALSE(g.has_adjacency_matrix());

  for (int trial = 0; trial < 300; ++trial) {
    std::vector<int> vs;
    const int picks = rng.uniform_int(0, 24);
    for (int p = 0; p < picks; ++p) {
      // Mix core vertices (where the edges are), their high-id partners,
      // and isolated mid-range ids.
      switch (rng.uniform_int(0, 2)) {
        case 0: vs.push_back(rng.uniform_int(0, core - 1)); break;
        case 1: vs.push_back(n - 1 - rng.uniform_int(0, core - 1)); break;
        default: vs.push_back(rng.uniform_int(core, n - core - 1)); break;
      }
    }
    if (trial % 4 == 3 && !vs.empty())
      vs.push_back(vs[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<int>(vs.size()) - 1))]);
    std::shuffle(vs.begin(), vs.end(), rng.engine());
    ASSERT_EQ(g.is_independent_set(vs), g.is_independent_set_pairwise(vs))
        << "trial " << trial;
  }
}

TEST(GraphProperty, IndependentSetCheckOnSignedZeroWeightWinnerSets) {
  // Decisions whose weights include +0.0/-0.0 produce winner sets through
  // the election key path that collapses the two zeros; the winner set the
  // engine validates must satisfy both checks, and perturbed versions
  // (duplicated winner, winner plus one of its neighbors) must fail both
  // identically.
  Rng rng(909);
  ConflictGraph cg = random_geometric_avg_degree(40, 5.0, rng, false);
  ExtendedConflictGraph ecg(cg, 2);
  const Graph& h = ecg.graph();
  std::vector<double> w(static_cast<std::size_t>(h.size()));
  for (std::size_t i = 0; i < w.size(); ++i) {
    switch (i % 4) {
      case 0: w[i] = 0.0; break;
      case 1: w[i] = -0.0; break;
      default: w[i] = rng.uniform(0.05, 1.0); break;
    }
  }
  DistributedPtasConfig cfg;
  cfg.r = 2;
  DistributedRobustPtas engine(h, cfg);
  const auto res = engine.run(w);
  ASSERT_TRUE(h.is_independent_set(res.winners));
  ASSERT_TRUE(h.is_independent_set_pairwise(res.winners));
  ASSERT_FALSE(res.winners.empty());

  std::vector<int> dup = res.winners;
  dup.push_back(res.winners[res.winners.size() / 2]);
  EXPECT_FALSE(h.is_independent_set(dup));
  EXPECT_FALSE(h.is_independent_set_pairwise(dup));

  for (int v : res.winners) {
    for (int u : h.neighbors(v)) {
      std::vector<int> bad = res.winners;
      bad.push_back(u);
      ASSERT_EQ(h.is_independent_set(bad),
                h.is_independent_set_pairwise(bad));
      ASSERT_FALSE(h.is_independent_set(bad));
      break;  // one conflicting extension per winner is plenty
    }
    break;
  }
}

}  // namespace
}  // namespace mhca
