// Tests for src/util: rng, hashing, stats, series, csv, tables.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/csv.h"
#include "util/hash.h"
#include "util/rng.h"
#include "util/series.h"
#include "util/stats.h"
#include "util/table.h"

namespace mhca {
namespace {

TEST(Rng, DeterministicGivenSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.uniform(), b.uniform());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.uniform() == b.uniform()) ++same;
  EXPECT_LT(same, 5);
}

TEST(Rng, UniformRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(2.0, 3.0);
    EXPECT_GE(x, 2.0);
    EXPECT_LT(x, 3.0);
  }
}

TEST(Rng, UniformIntInclusive) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const int x = rng.uniform_int(0, 3);
    EXPECT_GE(x, 0);
    EXPECT_LE(x, 3);
    saw_lo |= (x == 0);
    saw_hi |= (x == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, GaussianMoments) {
  Rng rng(11);
  RunningStat rs;
  for (int i = 0; i < 20000; ++i) rs.add(rng.gaussian(5.0, 2.0));
  EXPECT_NEAR(rs.mean(), 5.0, 0.1);
  EXPECT_NEAR(rs.stddev(), 2.0, 0.1);
}

TEST(Rng, SplitStreamsIndependent) {
  Rng parent(3);
  Rng a = parent.split();
  Rng b = parent.split();
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.uniform() == b.uniform()) ++same;
  EXPECT_LT(same, 5);
}

TEST(Hash, SplitmixIsDeterministicAndMixing) {
  EXPECT_EQ(splitmix64(1), splitmix64(1));
  EXPECT_NE(splitmix64(1), splitmix64(2));
  // Single-bit input changes should flip many output bits.
  const std::uint64_t d = splitmix64(0x1000) ^ splitmix64(0x1001);
  int bits = 0;
  for (int i = 0; i < 64; ++i) bits += (d >> i) & 1;
  EXPECT_GT(bits, 16);
}

TEST(Hash, UnitRangeAndSpread) {
  RunningStat rs;
  for (std::uint64_t i = 0; i < 10000; ++i) {
    const double u = hash_to_unit(splitmix64(i));
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    rs.add(u);
  }
  EXPECT_NEAR(rs.mean(), 0.5, 0.02);
}

TEST(RunningStat, BasicMoments) {
  RunningStat rs;
  for (double x : {1.0, 2.0, 3.0, 4.0}) rs.add(x);
  EXPECT_EQ(rs.count(), 4);
  EXPECT_DOUBLE_EQ(rs.mean(), 2.5);
  EXPECT_DOUBLE_EQ(rs.min(), 1.0);
  EXPECT_DOUBLE_EQ(rs.max(), 4.0);
  EXPECT_NEAR(rs.variance(), 5.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(rs.sum(), 10.0);
}

TEST(RunningStat, EmptyAndSingle) {
  RunningStat rs;
  EXPECT_EQ(rs.count(), 0);
  EXPECT_DOUBLE_EQ(rs.mean(), 0.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
  rs.add(7.0);
  EXPECT_DOUBLE_EQ(rs.mean(), 7.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
}

TEST(Summary, MatchesRunningStat) {
  const std::vector<double> xs{3.0, 1.0, 2.0};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.count, 3);
  EXPECT_DOUBLE_EQ(s.mean, 2.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 3.0);
}

TEST(Series, CumulativeAverage) {
  const auto out = cumulative_average({2.0, 4.0, 6.0});
  ASSERT_EQ(out.size(), 3u);
  EXPECT_DOUBLE_EQ(out[0], 2.0);
  EXPECT_DOUBLE_EQ(out[1], 3.0);
  EXPECT_DOUBLE_EQ(out[2], 4.0);
}

TEST(Series, CumulativeSum) {
  const auto out = cumulative_sum({1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(out.back(), 6.0);
}

TEST(Series, MovingAverageWindowOne) {
  const std::vector<double> xs{1.0, 5.0, 9.0};
  EXPECT_EQ(moving_average(xs, 1), xs);
}

TEST(Series, MovingAverageSmooths) {
  const auto out = moving_average({0.0, 10.0, 0.0, 10.0, 0.0}, 3);
  EXPECT_NEAR(out[2], 20.0 / 3.0, 1e-12);
}

TEST(Series, DownsampleKeepsEnds) {
  std::vector<double> xs(100);
  for (std::size_t i = 0; i < xs.size(); ++i) xs[i] = static_cast<double>(i);
  const auto out = downsample(xs, 5);
  ASSERT_GE(out.size(), 2u);
  EXPECT_EQ(out.front().first, 0u);
  EXPECT_EQ(out.back().first, 99u);
}

TEST(Series, DownsampleShortSeriesIdentity) {
  const std::vector<double> xs{1.0, 2.0};
  const auto out = downsample(xs, 10);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(out[1].second, 2.0);
}

TEST(Csv, WritesHeaderAndRows) {
  const std::string path = "/tmp/mhca_csv_test.csv";
  {
    CsvWriter w(path, {"a", "b"});
    w.row(1, 2.5);
    w.row(std::string("x,y"), 3);
    ASSERT_TRUE(w.ok());
  }
  std::ifstream in(path);
  std::string l1, l2, l3;
  std::getline(in, l1);
  std::getline(in, l2);
  std::getline(in, l3);
  EXPECT_EQ(l1, "a,b");
  EXPECT_EQ(l2, "1,2.5");
  EXPECT_EQ(l3, "\"x,y\",3");
  std::remove(path.c_str());
}

TEST(Table, AlignsColumns) {
  TablePrinter t({"name", "value"});
  t.row("x", 1);
  t.row("longer", 22);
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("longer"), std::string::npos);
  EXPECT_NE(s.find("---"), std::string::npos);
}

TEST(Table, FixedFormatsDigits) {
  EXPECT_EQ(fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fixed(2.0, 0), "2");
}

}  // namespace
}  // namespace mhca
