// Coverage for the non-dense-matrix code paths: graphs larger than
// Graph::kAdjacencyMatrixLimit get sharded sparse rows instead of the n^2
// bitset matrix, and unfinalized graphs answer every query through
// build-phase vectors. The solver's sparse-row gather, its list-scan
// fallback, and the NeighborhoodCache must all behave identically to the
// dense bitset/CSR fast paths in every situation.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <utility>
#include <vector>

#include "graph/generators.h"
#include "graph/hop.h"
#include "graph/neighborhood_cache.h"
#include "mwis/branch_and_bound.h"
#include "mwis/brute_force.h"
#include "util/rng.h"

namespace mhca {
namespace {

std::vector<double> random_weights(int n, Rng& rng) {
  std::vector<double> w(static_cast<std::size_t>(n));
  for (auto& x : w) x = rng.uniform(0.05, 1.0);
  return w;
}

TEST(NoBitsetFallback, SolverMatchesBruteForceBeyondMatrixLimit) {
  // n > kAdjacencyMatrixLimit: finalize() builds CSR but skips the matrix,
  // so every solve runs the list-scan adjacency build. Embed a nontrivial
  // instance in the first 20 vertices plus edges to high-id vertices so the
  // candidate filter is exercised against the full id range.
  const int n = Graph::kAdjacencyMatrixLimit + 8;
  Rng rng(31);
  Graph big(n);
  Graph small(20);
  for (int i = 0; i < 20; ++i)
    for (int j = i + 1; j < 20; ++j)
      if (rng.uniform() < 0.3) {
        big.add_edge(i, j);
        small.add_edge(i, j);
      }
  for (int i = 0; i < 20; ++i) big.add_edge(i, n - 1 - i);
  big.finalize();
  small.finalize();
  ASSERT_FALSE(big.has_adjacency_matrix());
  ASSERT_TRUE(big.has_sparse_rows());
  ASSERT_TRUE(big.finalized());
  ASSERT_TRUE(small.has_adjacency_matrix());

  std::vector<double> w_small = random_weights(20, rng);
  std::vector<double> w_big(static_cast<std::size_t>(n), 0.0);
  std::copy(w_small.begin(), w_small.end(), w_big.begin());
  std::vector<int> cands(20);
  for (int v = 0; v < 20; ++v) cands[static_cast<std::size_t>(v)] = v;

  BruteForceMwisSolver brute(24);
  const MwisResult ref = brute.solve(small, w_small, cands);
  // Default path: gathers local adjacency from the sharded sparse rows.
  BranchAndBoundMwisSolver solver;
  const MwisResult got = solver.solve(big, w_big, cands);
  EXPECT_TRUE(got.exact);
  EXPECT_EQ(got.vertices, ref.vertices);
  EXPECT_NEAR(got.weight, ref.weight, 1e-12);
  // The explicit list-scan build must agree bit for bit (same search tree).
  SolveScratch scratch;
  BnbSolveOptions list_build;
  list_build.use_adjacency_rows = false;
  const MwisResult got_lists =
      solver.solve_with_scratch(big, w_big, cands, scratch, list_build);
  EXPECT_EQ(got_lists.vertices, got.vertices);
  EXPECT_EQ(got_lists.nodes_explored, got.nodes_explored);
  // And the classic mode takes the list fallback.
  BranchAndBoundMwisSolver classic(5'000'000, /*reuse_scratch=*/false);
  const MwisResult got_classic = classic.solve(big, w_big, cands);
  EXPECT_EQ(got_classic.vertices, ref.vertices);
}

TEST(NoBitsetFallback, SparseRowsMatchReferenceQueries) {
  // A graph just past the limit with structured + random edges: has_edge
  // through the sparse rows must agree with binary search over the CSR
  // rows, including the high-id columns that stress block indexing.
  const int n = Graph::kAdjacencyMatrixLimit + 70;
  Rng rng(53);
  Graph g(n);
  std::vector<std::pair<int, int>> edges;
  for (int i = 0; i + 1 < 120; ++i) edges.emplace_back(i, i + 1);
  for (int t = 0; t < 800; ++t) {
    int u = rng.uniform_int(0, n - 1), v = rng.uniform_int(0, n - 1);
    if (u == v) continue;
    if (u > v) std::swap(u, v);
    edges.emplace_back(u, v);
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  for (const auto& [u, v] : edges) g.add_edge(u, v);
  g.finalize();
  ASSERT_TRUE(g.has_sparse_rows());

  // Every present edge answers true (both directions)...
  for (const auto& [u, v] : edges) {
    ASSERT_TRUE(g.has_edge(u, v)) << u << "," << v;
    ASSERT_TRUE(g.has_edge(v, u)) << v << "," << u;
  }
  // ... and random non-edges answer false.
  std::set<std::pair<int, int>> present(edges.begin(), edges.end());
  for (int t = 0; t < 2000; ++t) {
    int u = rng.uniform_int(0, n - 1), v = rng.uniform_int(0, n - 1);
    if (u == v) continue;
    if (u > v) std::swap(u, v);
    if (present.count({u, v})) continue;
    ASSERT_FALSE(g.has_edge(u, v)) << u << "," << v;
  }
  // Degenerate queries stay false.
  EXPECT_FALSE(g.has_edge(0, 0));
  EXPECT_FALSE(g.has_edge(-1, 5));
  EXPECT_FALSE(g.has_edge(5, n));
}

TEST(NoBitsetFallback, UnfinalizedGraphSolvesIdenticalToFinalized) {
  Rng rng(37);
  ConflictGraph cg = erdos_renyi(24, 0.3, rng);
  const Graph& fin = cg.graph();  // factories finalize
  ASSERT_TRUE(fin.has_adjacency_matrix());

  Graph raw(fin.size());
  for (int v = 0; v < fin.size(); ++v)
    for (int u : fin.neighbors(v))
      if (u > v) raw.add_edge(v, u);
  ASSERT_FALSE(raw.finalized());

  BranchAndBoundMwisSolver solver;
  SolveScratch scratch;
  std::vector<int> all(static_cast<std::size_t>(fin.size()));
  for (int v = 0; v < fin.size(); ++v) all[static_cast<std::size_t>(v)] = v;
  for (int round = 0; round < 5; ++round) {
    const auto w = random_weights(fin.size(), rng);
    // Same scratch serves both: bitset-rows on the finalized graph, list
    // scan on the raw one — identical trees, identical results.
    const MwisResult a = solver.solve_with_scratch(fin, w, all, scratch);
    const MwisResult b = solver.solve_with_scratch(raw, w, all, scratch);
    ASSERT_EQ(a.vertices, b.vertices);
    EXPECT_DOUBLE_EQ(a.weight, b.weight);
    EXPECT_EQ(a.nodes_explored, b.nodes_explored);
  }
}

TEST(NoBitsetFallback, NeighborhoodCacheMatchesOnUnfinalizedAndHugeGraphs) {
  // Unfinalized graph: cache builds through build-phase adjacency.
  Rng rng(41);
  ConflictGraph cg = random_geometric_avg_degree(30, 5.0, rng);
  const Graph& fin = cg.graph();
  Graph raw(fin.size());
  for (int v = 0; v < fin.size(); ++v)
    for (int u : fin.neighbors(v))
      if (u > v) raw.add_edge(v, u);
  ASSERT_FALSE(raw.finalized());

  NeighborhoodCache cache_fin(fin, 2, /*build_covers=*/true);
  NeighborhoodCache cache_raw(raw, 2, /*build_covers=*/true);
  for (int v = 0; v < fin.size(); ++v) {
    const auto a = cache_fin.r_ball(v);
    const auto b = cache_raw.r_ball(v);
    ASSERT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()));
    const auto ea = cache_fin.election_ball(v);
    const auto eb = cache_raw.election_ball(v);
    ASSERT_TRUE(std::equal(ea.begin(), ea.end(), eb.begin(), eb.end()));
    // Covers come out identical too: build_ball_cover only uses has_edge.
    const auto ca = cache_fin.r_ball_cover(v);
    const auto cb = cache_raw.r_ball_cover(v);
    ASSERT_TRUE(std::equal(ca.begin(), ca.end(), cb.begin(), cb.end()));
    EXPECT_EQ(cache_fin.r_ball_clique_count(v),
              cache_raw.r_ball_clique_count(v));
  }

  // Beyond the matrix limit: balls still match a reference BFS.
  const int n = Graph::kAdjacencyMatrixLimit + 5;
  Graph big(n);
  for (int i = 0; i < 200; ++i) big.add_edge(i, i + 1);  // path prefix
  big.add_edge(0, n - 1);
  big.finalize();
  ASSERT_FALSE(big.has_adjacency_matrix());
  NeighborhoodCache cache_big(big, 2);
  BfsScratch scratch(n);
  for (int v : {0, 1, 100, 199, 200, n - 1, n - 2}) {
    const auto ball = scratch.k_hop_neighborhood(big, v, 2);
    const auto cached = cache_big.r_ball(v);
    ASSERT_TRUE(
        std::equal(ball.begin(), ball.end(), cached.begin(), cached.end()))
        << "vertex " << v;
  }
}

}  // namespace
}  // namespace mhca
