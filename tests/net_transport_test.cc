// Tests for src/net/transport.h: the sharded runtime over all three
// transport backends. The property under test is the tentpole guarantee —
// a scenario run as N cooperating shards (every shard hosting all agents,
// each originating only its owned vertices' floods) produces decisions,
// channel bills and trace hashes IDENTICAL to the classic single-process
// run, clean or faulty, whatever the MTU.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "channel/gaussian.h"
#include "graph/extended_graph.h"
#include "graph/generators.h"
#include "net/runtime.h"
#include "net/transport.h"
#include "util/rng.h"

namespace mhca {
namespace {

using net::DistributedRuntime;
using net::FloodFrame;
using net::LoopbackTransport;
using net::MemoryMeshGroup;
using net::Message;
using net::MsgType;
using net::NetConfig;
using net::Transport;
using net::UdpOptions;
using net::UdpTransport;

TEST(SortFrames, CanonicalOrderIsOriginThenSeq) {
  std::vector<FloodFrame> frames;
  frames.push_back({.origin = 3, .seq = 0});
  frames.push_back({.origin = 1, .seq = 1});
  frames.push_back({.origin = 1, .seq = 0});
  frames.push_back({.origin = 0, .seq = 5});
  net::sort_frames(frames);
  EXPECT_EQ(frames[0].origin, 0);
  EXPECT_EQ(frames[1].origin, 1);
  EXPECT_EQ(frames[1].seq, 0);
  EXPECT_EQ(frames[2].seq, 1);
  EXPECT_EQ(frames[3].origin, 3);
}

TEST(LoopbackTransportTest, ReturnsOwnFramesSorted) {
  LoopbackTransport t;
  std::vector<FloodFrame> frames;
  frames.push_back({.origin = 2, .seq = 0, .ttl = 3, .bytes = {1, 2}});
  frames.push_back({.origin = 0, .seq = 0, .ttl = 3, .bytes = {3}});
  const auto out = t.exchange(std::move(frames));
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].origin, 0);
  EXPECT_EQ(out[1].origin, 2);
  EXPECT_EQ(t.stats().exchanges, 1);
  EXPECT_EQ(t.stats().frames_sent, 2);
}

/// What one run leaves behind, compared field by field across shards and
/// against the classic single-process run.
struct RunLog {
  std::vector<std::vector<int>> strategies;  ///< Winner set per round.
  std::uint64_t trace_hash = 0;
  std::int64_t messages = 0;
  std::int64_t bytes_on_wire = 0;
  std::int64_t fragments = 0;
  std::int64_t drops = 0;
  std::int64_t duplicates = 0;
};

/// Build the (deterministic, seed-derived) world and drive `rounds` rounds
/// — classic when `transport` is null, sharded otherwise. Each caller (and
/// each shard thread) builds its own graph/model from the same seed, like
/// real shard processes parsing the same scenario file would.
RunLog drive(Transport* transport, const NetConfig& cfg, int rounds,
             std::uint64_t seed) {
  Rng rng(seed);
  ConflictGraph cg = random_geometric_avg_degree(10, 3.5, rng);
  const int m_channels = 3;
  ExtendedConflictGraph ecg(cg, m_channels);
  GaussianChannelModel model(10, m_channels, rng);
  RunLog log;
  auto run = [&](DistributedRuntime& rt) {
    for (int t = 0; t < rounds; ++t)
      log.strategies.push_back(rt.step().strategy);
    log.trace_hash = rt.channel().trace_hash();
    const net::ChannelStats& cs = rt.channel_stats();
    log.messages = cs.messages;
    log.bytes_on_wire = cs.bytes_on_wire;
    log.fragments = cs.fragments;
    log.drops = cs.drops;
    log.duplicates = cs.duplicates;
  };
  if (transport != nullptr) {
    DistributedRuntime rt(ecg, model, cfg, *transport);
    run(rt);
  } else {
    DistributedRuntime rt(ecg, model, cfg);
    run(rt);
  }
  return log;
}

void expect_same_run(const RunLog& a, const RunLog& b, const char* what) {
  ASSERT_EQ(a.strategies, b.strategies) << what;
  EXPECT_EQ(a.trace_hash, b.trace_hash) << what;
  EXPECT_EQ(a.messages, b.messages) << what;
  EXPECT_EQ(a.bytes_on_wire, b.bytes_on_wire) << what;
  EXPECT_EQ(a.fragments, b.fragments) << what;
  EXPECT_EQ(a.drops, b.drops) << what;
  EXPECT_EQ(a.duplicates, b.duplicates) << what;
}

/// Run every endpoint of a MemoryMeshGroup in its own thread and require
/// all shards to agree with the classic run bit for bit.
void mesh_matches_classic(int shards, const NetConfig& cfg, int rounds,
                          std::uint64_t seed) {
  const RunLog classic = drive(nullptr, cfg, rounds, seed);
  MemoryMeshGroup mesh(shards);
  std::vector<RunLog> logs(static_cast<std::size_t>(shards));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(shards));
  for (int k = 0; k < shards; ++k)
    threads.emplace_back([&, k] {
      logs[static_cast<std::size_t>(k)] =
          drive(&mesh.endpoint(k), cfg, rounds, seed);
    });
  for (auto& th : threads) th.join();
  for (int k = 0; k < shards; ++k)
    expect_same_run(logs[static_cast<std::size_t>(k)], classic,
                    ("shard " + std::to_string(k) + "/" +
                     std::to_string(shards))
                        .c_str());
}

TEST(MemoryMesh, TwoShardsMatchClassicClean) {
  NetConfig cfg;
  cfg.r = 2;
  cfg.D = 4;
  mesh_matches_classic(2, cfg, 12, 0x5EED01);
}

TEST(MemoryMesh, ThreeShardsMatchClassicUnderDropAndDupFaults) {
  NetConfig cfg;
  cfg.r = 2;
  cfg.D = 4;
  cfg.drop_prob = 0.12;
  cfg.dup_prob = 0.08;
  cfg.drop_seed = 0xFA17;
  mesh_matches_classic(3, cfg, 12, 0x5EED02);
}

TEST(MemoryMesh, TinyMtuStillMatchesAndBillsMoreFragments) {
  NetConfig cfg;
  cfg.r = 2;
  cfg.mtu = net::wire::kMinMtu;  // hellos fragment at 128 bytes
  const RunLog classic = drive(nullptr, cfg, 8, 0x5EED03);
  EXPECT_GT(classic.fragments, classic.messages)
      << "a 128-byte MTU must split some floods into several datagrams";
  MemoryMeshGroup mesh(2);
  std::vector<RunLog> logs(2);
  std::thread t0([&] { logs[0] = drive(&mesh.endpoint(0), cfg, 8, 0x5EED03); });
  logs[1] = drive(&mesh.endpoint(1), cfg, 8, 0x5EED03);
  t0.join();
  expect_same_run(logs[0], classic, "shard 0 (tiny mtu)");
  expect_same_run(logs[1], classic, "shard 1 (tiny mtu)");
}

TEST(MemoryMesh, LoopbackSingleShardMatchesClassic) {
  NetConfig cfg;
  LoopbackTransport loopback;
  const RunLog classic = drive(nullptr, cfg, 10, 0x5EED04);
  const RunLog sharded = drive(&loopback, cfg, 10, 0x5EED04);
  expect_same_run(sharded, classic, "loopback");
}

TEST(UdpTransportTest, BindConflictFailsWithActionableError) {
  UdpOptions opts;
  opts.port_base =
      40000 + static_cast<int>(::getpid() % 9000);  // dodge parallel tests
  UdpTransport first(0, 1, opts);
  try {
    UdpTransport second(0, 1, opts);  // same port: must fail loudly
    FAIL() << "second bind on the same port succeeded";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("bind"), std::string::npos);
    EXPECT_NE(what.find(std::to_string(opts.port_base)), std::string::npos);
  }
}

TEST(UdpTransportTest, TwoShardsOverRealSocketsMatchClassic) {
  NetConfig cfg;
  cfg.r = 2;
  cfg.D = 4;
  cfg.dup_prob = 0.05;  // exercise the fault plane over the real wire too
  cfg.drop_seed = 7;
  const RunLog classic = drive(nullptr, cfg, 10, 0x5EED05);

  UdpOptions opts;
  opts.port_base = 40000 + static_cast<int>((::getpid() * 2 + 101) % 19000);
  std::vector<RunLog> logs(2);
  std::thread t0([&] {
    UdpTransport udp(0, 2, opts);
    logs[0] = drive(&udp, cfg, 10, 0x5EED05);
    udp.finish();
  });
  {
    UdpTransport udp(1, 2, opts);
    logs[1] = drive(&udp, cfg, 10, 0x5EED05);
    udp.finish();
  }
  t0.join();
  expect_same_run(logs[0], classic, "udp shard 0");
  expect_same_run(logs[1], classic, "udp shard 1");
}

TEST(UdpTransportTest, SmallMtuFragmentsAndReassembles) {
  NetConfig cfg;
  cfg.mtu = net::wire::kMinMtu;  // every hello crosses several datagrams
  const RunLog classic = drive(nullptr, cfg, 6, 0x5EED06);
  UdpOptions opts;
  opts.port_base = 40000 + static_cast<int>((::getpid() * 3 + 211) % 19000);
  opts.mtu = cfg.mtu;
  std::vector<RunLog> logs(2);
  std::thread t0([&] {
    UdpTransport udp(0, 2, opts);
    logs[0] = drive(&udp, cfg, 6, 0x5EED06);
    udp.finish();
  });
  {
    UdpTransport udp(1, 2, opts);
    logs[1] = drive(&udp, cfg, 6, 0x5EED06);
    udp.finish();
  }
  t0.join();
  expect_same_run(logs[0], classic, "udp shard 0 (mtu 128)");
  expect_same_run(logs[1], classic, "udp shard 1 (mtu 128)");
  EXPECT_GT(classic.fragments, classic.messages)
      << "a 128-byte MTU must split some floods into several datagrams";
}

TEST(ShardedRuntime, RejectsViewSyncMembership) {
  Rng rng(1);
  ConflictGraph cg = random_geometric_avg_degree(6, 2.5, rng);
  ExtendedConflictGraph ecg(cg, 2);
  GaussianChannelModel model(6, 2, rng);
  NetConfig cfg;
  cfg.membership = net::MembershipMode::kViewSync;
  LoopbackTransport loopback;
  EXPECT_THROW(DistributedRuntime(ecg, model, cfg, loopback),
               std::logic_error);  // MHCA_ASSERT
}

}  // namespace
}  // namespace mhca
