// Scenario-layer tests: text-format round-trip, actionable error messages,
// registry completeness (every component constructible by string key), the
// single-source-of-truth solver defaults, and — the core redesign claim —
// byte-identical results between ScenarioRunner and the legacy hand-wired
// paths (direct Simulator, ChannelAccessScheme::run, net runtime).
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "channel/gaussian.h"
#include "core/channel_access.h"
#include "graph/generators.h"
#include "mwis/mwis.h"
#include "net/runtime.h"
#include "scenario/registries.h"
#include "scenario/runner.h"
#include "scenario/scenario.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace mhca {
namespace {

using scenario::ParamMap;
using scenario::Scenario;
using scenario::ScenarioError;
using scenario::ScenarioRunner;

const char* kFullScenario = R"(# every section exercised
name = full-example

[topology]
kind = geometric
nodes = 16
avg_degree = 5.0

[channel]
kind = gaussian
channels = 4
std_frac = 0.1

[policy]
kind = llr
L = 9

[dynamics]
kind = churn
incremental = false
seed = 21
leave_prob = 0.05

[net]
drop_prob = 0.1
drop_seed = 3
dup_prob = 0.05
reorder_prob = 0.2
delay_slots_max = 2
membership = view_sync
hello_timeout_slots = 6
hello_max_retries = 2
backoff_base = 3

[solver]
kind = distributed
r = 3
D = 6
local_solver = greedy
node_cap = 1234
parallelism = 2
memoized_covers = true
epsilon = 0.5

[run]
slots = 150
update_period = 5
seed = 99
series_stride = 3
count_messages = true

[replication]
replications = 4
seed0 = 7
parallelism = 1

[timing]
ta_ms = 1000
td_ms = 500
tb_ms = 50
tl_ms = 25
decision_mini_rounds = 4
)";

TEST(ScenarioFormat, ParseReadsEveryField) {
  const Scenario s = scenario::parse_scenario(kFullScenario);
  EXPECT_EQ(s.name, "full-example");
  EXPECT_EQ(s.topology.kind, "geometric");
  EXPECT_EQ(s.topology.params.get_int("nodes", 0), 16);
  EXPECT_EQ(s.channel.kind, "gaussian");
  EXPECT_EQ(s.num_channels, 4);
  EXPECT_DOUBLE_EQ(s.channel.params.get_double("std_frac", 0.0), 0.1);
  EXPECT_EQ(s.policy.kind, "llr");
  EXPECT_EQ(s.policy.params.get_int("L", 0), 9);
  EXPECT_EQ(s.dynamics.model.kind, "churn");
  EXPECT_FALSE(s.dynamics.incremental);
  EXPECT_EQ(s.dynamics.seed, 21u);
  EXPECT_DOUBLE_EQ(s.dynamics.model.params.get_double("leave_prob", 0), 0.05);
  EXPECT_DOUBLE_EQ(s.net.drop_prob, 0.1);
  EXPECT_EQ(s.net.drop_seed, 3u);
  EXPECT_DOUBLE_EQ(s.net.dup_prob, 0.05);
  EXPECT_DOUBLE_EQ(s.net.reorder_prob, 0.2);
  EXPECT_EQ(s.net.delay_slots_max, 2);
  EXPECT_EQ(s.net.membership, "view_sync");
  EXPECT_EQ(s.net.hello_timeout_slots, 6);
  EXPECT_EQ(s.net.hello_max_retries, 2);
  EXPECT_EQ(s.net.backoff_base, 3);
  EXPECT_EQ(s.solver.kind, SolverKind::kDistributedPtas);
  EXPECT_EQ(s.solver.r, 3);
  EXPECT_EQ(s.solver.D, 6);
  EXPECT_EQ(s.solver.local_solver, LocalSolverKind::kGreedy);
  EXPECT_EQ(s.solver.node_cap, 1234);
  EXPECT_EQ(s.solver.parallelism, 2);
  EXPECT_TRUE(s.solver.memoized_covers);
  EXPECT_DOUBLE_EQ(s.solver.epsilon, 0.5);
  EXPECT_EQ(s.run.slots, 150);
  EXPECT_EQ(s.run.update_period, 5);
  EXPECT_EQ(s.run.seed, 99u);
  EXPECT_EQ(s.run.series_stride, 3);
  EXPECT_TRUE(s.run.count_messages);
  EXPECT_EQ(s.replication.replications, 4);
  EXPECT_EQ(s.replication.seed0, 7u);
  EXPECT_EQ(s.replication.parallelism, 1);
  EXPECT_DOUBLE_EQ(s.timing.ta_ms, 1000.0);
  EXPECT_EQ(s.timing.decision_mini_rounds, 4);
}

TEST(ScenarioFormat, RoundTripIsExact) {
  const Scenario s1 = scenario::parse_scenario(kFullScenario);
  const std::string text = scenario::serialize_scenario(s1);
  const Scenario s2 = scenario::parse_scenario(text);
  EXPECT_EQ(s1, s2);
  // Serialization is canonical: a second round trip is textually stable.
  EXPECT_EQ(text, scenario::serialize_scenario(s2));
}

TEST(ScenarioFormat, DefaultsRoundTrip) {
  const Scenario s1;
  const Scenario s2 =
      scenario::parse_scenario(scenario::serialize_scenario(s1));
  EXPECT_EQ(s1, s2);
}

// ----------------------------------------------------- actionable errors

testing::AssertionResult message_contains(const std::string& haystack,
                                          const std::string& needle) {
  if (haystack.find(needle) != std::string::npos)
    return testing::AssertionSuccess();
  return testing::AssertionFailure()
         << "message '" << haystack << "' does not mention '" << needle << "'";
}

template <typename Fn>
std::string error_message(Fn&& fn) {
  try {
    fn();
  } catch (const ScenarioError& e) {
    return e.what();
  }
  return "";
}

TEST(ScenarioErrors, UnknownRegistryNameListsValidOnes) {
  Scenario s = scenario::parse_scenario(kFullScenario);
  s.topology.kind = "gemoetric";  // typo
  const std::string msg = error_message([&] { scenario::validate(s); });
  EXPECT_TRUE(message_contains(msg, "gemoetric"));
  EXPECT_TRUE(message_contains(msg, "geometric"));
  EXPECT_TRUE(message_contains(msg, "erdos_renyi"));
}

TEST(ScenarioErrors, UnknownParamKeyNamesKeyAndAccepted) {
  Scenario s = scenario::parse_scenario(kFullScenario);
  s.channel.params.set("stdfrac", "0.2");  // typo for std_frac
  const std::string msg = error_message([&] { scenario::validate(s); });
  EXPECT_TRUE(message_contains(msg, "stdfrac"));
  EXPECT_TRUE(message_contains(msg, "std_frac"));
  EXPECT_TRUE(message_contains(msg, "gaussian"));
}

TEST(ScenarioErrors, UnknownFixedSectionKeyListsValidKeys) {
  const std::string msg = error_message(
      [] { scenario::parse_scenario("[solver]\nrr = 3\n"); });
  EXPECT_TRUE(message_contains(msg, "rr"));
  EXPECT_TRUE(message_contains(msg, "node_cap"));
  EXPECT_TRUE(message_contains(msg, "line 2"));
}

TEST(ScenarioErrors, UnknownSectionListsValidSections) {
  const std::string msg = error_message(
      [] { scenario::parse_scenario("[chanel]\nkind = gaussian\n"); });
  EXPECT_TRUE(message_contains(msg, "chanel"));
  EXPECT_TRUE(message_contains(msg, "channel"));
  EXPECT_TRUE(message_contains(msg, "replication"));
}

TEST(ScenarioErrors, MalformedValueNamesKeyAndValue) {
  const std::string msg = error_message(
      [] { scenario::parse_scenario("[run]\nslots = soon\n"); });
  EXPECT_TRUE(message_contains(msg, "soon"));
  EXPECT_TRUE(message_contains(msg, "run.slots"));
}

TEST(ScenarioErrors, MissingRequiredKeyCaughtAtValidateTime) {
  // `mhca_sim print` (validate-only) must reject what `run` would reject.
  Scenario s = scenario::parse_scenario(kFullScenario);
  s.topology.kind = "grid";
  s.topology.params = ParamMap{};  // no rows/cols
  const std::string msg = error_message([&] { scenario::validate(s); });
  EXPECT_TRUE(message_contains(msg, "rows"));
  EXPECT_TRUE(message_contains(msg, "grid"));
}

TEST(ScenarioErrors, OutOfRangeIntegersAreRejectedNotTruncated) {
  Scenario s;
  // Would truncate to 2 through a bare static_cast<int>.
  const std::string msg = error_message(
      [&] { scenario::apply_override(s, "solver.r=4294967298"); });
  EXPECT_TRUE(message_contains(msg, "solver.r"));
  EXPECT_TRUE(message_contains(msg, "4294967298"));
  EXPECT_EQ(s.solver.r, 2) << "failed override must not mutate the scenario";
  // Beyond int64: rejected at parse, not saturated.
  EXPECT_THROW(
      scenario::apply_override(s, "run.slots=99999999999999999999999"),
      ScenarioError);
}

TEST(ScenarioErrors, NetProbabilityBoundsNameOffendingValue) {
  Scenario s;
  scenario::apply_override(s, "net.drop_prob=1.0");
  const std::string msg = error_message([&] { scenario::validate(s); });
  EXPECT_TRUE(message_contains(msg, "net.drop_prob"));
  EXPECT_TRUE(message_contains(msg, "[0, 1)"));
  EXPECT_TRUE(message_contains(msg, "1"));
}

TEST(ScenarioErrors, ReorderAndDelayRequireViewSyncMembership) {
  Scenario s;
  scenario::apply_override(s, "net.reorder_prob=0.2");
  const std::string msg = error_message([&] { scenario::validate(s); });
  EXPECT_TRUE(message_contains(msg, "net.reorder_prob"));
  EXPECT_TRUE(message_contains(msg, "view_sync"));
  scenario::apply_override(s, "net.membership=view_sync");
  // validate_fields (not full validate): the default Scenario names no
  // topology size, which is not what this test is about.
  EXPECT_NO_THROW(scenario::validate_fields(s));
}

TEST(ScenarioErrors, BadMembershipModeListsValidKeys) {
  Scenario s;
  const std::string msg = error_message(
      [&] { scenario::apply_override(s, "net.membership=viewsync"); });
  EXPECT_TRUE(message_contains(msg, "viewsync"));
  EXPECT_TRUE(message_contains(msg, "view_sync"));
  EXPECT_TRUE(message_contains(msg, "omniscient"));
}

TEST(ScenarioErrors, BadOverrideSyntax) {
  Scenario s;
  EXPECT_THROW(scenario::apply_override(s, "policy.kind"), ScenarioError);
  EXPECT_THROW(scenario::apply_override(s, "nosuch.key=1"), ScenarioError);
}

TEST(ScenarioOverrides, RouteLikeTheParser) {
  Scenario s;
  scenario::apply_override(s, "policy.kind=thompson");
  scenario::apply_override(s, "policy.seed=77");
  scenario::apply_override(s, "solver.r=3");
  scenario::apply_override(s, "run.slots=42");
  scenario::apply_override(s, "name=grid-cell");
  EXPECT_EQ(s.policy.kind, "thompson");
  EXPECT_EQ(s.policy.params.get_uint("seed", 0), 77u);
  EXPECT_EQ(s.solver.r, 3);
  EXPECT_EQ(s.run.slots, 42);
  EXPECT_EQ(s.name, "grid-cell");
}

// ------------------------------------------- solver-default single source

TEST(SolverSpec, DefaultsPinnedToOneConstant) {
  // Compile-time twins live in scenario.cc; these document the contract.
  EXPECT_EQ(scenario::SolverSpec{}.node_cap, kDefaultBnbNodeCap);
  EXPECT_EQ(DistributedPtasConfig{}.bnb_node_cap, kDefaultBnbNodeCap);
  EXPECT_EQ(SimulationConfig{}.bnb_node_cap, kDefaultBnbNodeCap);
  EXPECT_EQ(net::NetConfig{}.bnb_node_cap, kDefaultBnbNodeCap);
  EXPECT_EQ(ChannelAccessConfig{}.bnb_node_cap, kDefaultBnbNodeCap);
}

TEST(SolverSpec, EngineConfigMapsEveryKnob) {
  scenario::SolverSpec spec;
  spec.r = 3;
  spec.D = 7;
  spec.local_solver = LocalSolverKind::kGreedy;
  spec.node_cap = 555;
  spec.parallelism = 4;
  spec.memoized_covers = true;
  const DistributedPtasConfig cfg = spec.engine_config(/*count_messages=*/true);
  EXPECT_EQ(cfg.r, 3);
  EXPECT_EQ(cfg.max_mini_rounds, 7);
  EXPECT_EQ(cfg.local_solver, LocalSolverKind::kGreedy);
  EXPECT_EQ(cfg.bnb_node_cap, 555);
  EXPECT_EQ(cfg.local_solve_parallelism, 4);
  EXPECT_TRUE(cfg.use_memoized_covers);
  EXPECT_TRUE(cfg.count_messages);
}

// ------------------------------------------------- registry completeness

TEST(Registries, EveryBuiltinConstructibleByStringKey) {
  // Topologies: every registered generator builds from minimal params.
  const std::vector<std::pair<std::string, std::string>> topo_params{
      {"geometric", "nodes"}, {"linear", "nodes"},      {"grid", "rows"},
      {"complete", "nodes"},  {"erdos_renyi", "nodes"},
  };
  const std::vector<std::string> topo_names =
      scenario::topology_registry().names();
  EXPECT_EQ(topo_names.size(), topo_params.size());
  for (const auto& [kind, size_key] : topo_params) {
    SCOPED_TRACE(kind);
    ParamMap p;
    p.set(size_key, "6");
    if (kind == "grid") p.set("cols", "3");
    Rng rng(1);
    const ConflictGraph g = scenario::topology_registry().create(kind, p, rng);
    EXPECT_GE(g.num_nodes(), 6);
  }

  // Channel models: all five build through the registry.
  const std::vector<std::string> channel_names =
      scenario::channel_registry().names();
  EXPECT_EQ(channel_names.size(), 5u);
  for (const auto& kind : channel_names) {
    SCOPED_TRACE(kind);
    Rng rng(2);
    const auto model = scenario::channel_registry().create(
        kind, ParamMap{}, scenario::ChannelBuildContext{4, 3, 50}, rng);
    ASSERT_NE(model, nullptr);
    EXPECT_EQ(model->num_nodes(), 4);
    EXPECT_EQ(model->num_channels(), 3);
    const double x = model->sample(0, 0, 1);
    EXPECT_GE(x, 0.0);
    EXPECT_LE(x, 1.0);
  }

  // Policies: all six build through the registry.
  const std::vector<std::string> policy_names =
      scenario::policy_registry().names();
  EXPECT_EQ(policy_names.size(), 6u);
  for (const auto& kind : policy_names) {
    SCOPED_TRACE(kind);
    const auto policy = scenario::policy_registry().create(
        kind, ParamMap{}, scenario::PolicyBuildContext{10});
    ASSERT_NE(policy, nullptr);
    EXPECT_FALSE(policy->name().empty());
  }
}

TEST(Registries, TraceForwardsSourceParams) {
  ParamMap p;
  p.set("source", "bernoulli");
  p.set("record_slots", "16");
  p.set("p_lo", "0.5");
  Rng rng(3);
  const auto model = scenario::channel_registry().create(
      "trace", p, scenario::ChannelBuildContext{3, 2, 100}, rng);
  ASSERT_NE(model, nullptr);
  // A bad source param is caught by the *source* model's validation.
  ParamMap bad = p;
  bad.set("std_frac", "0.2");  // gaussian key, not a bernoulli key
  Rng rng2(3);
  EXPECT_THROW(scenario::channel_registry().create(
                   "trace", bad, scenario::ChannelBuildContext{3, 2, 100},
                   rng2),
               ScenarioError);
}

// ------------------------------------------------ determinism vs legacy

void expect_identical(const SimulationResult& a, const SimulationResult& b) {
  EXPECT_EQ(a.slots, b.slots);
  EXPECT_EQ(a.cumavg_effective, b.cumavg_effective);
  EXPECT_EQ(a.cumavg_estimated, b.cumavg_estimated);
  EXPECT_EQ(a.cumavg_observed, b.cumavg_observed);
  EXPECT_EQ(a.cum_expected, b.cum_expected);
  EXPECT_EQ(a.total_slots, b.total_slots);
  EXPECT_EQ(a.decisions, b.decisions);
  EXPECT_EQ(a.total_observed, b.total_observed);
  EXPECT_EQ(a.total_effective, b.total_effective);
  EXPECT_EQ(a.total_expected, b.total_expected);
  EXPECT_EQ(a.avg_strategy_size, b.avg_strategy_size);
  EXPECT_EQ(a.total_messages, b.total_messages);
  EXPECT_EQ(a.total_mini_timeslots, b.total_mini_timeslots);
  EXPECT_EQ(a.theta, b.theta);
  EXPECT_EQ(a.final_means, b.final_means);
  EXPECT_EQ(a.final_counts, b.final_counts);
  EXPECT_EQ(a.last_strategy, b.last_strategy);
}

const char* kDeterminismScenario = R"(name = determinism
[topology]
kind = geometric
nodes = 14
avg_degree = 4.5
[channel]
kind = gaussian
channels = 3
[policy]
kind = cab
[run]
slots = 120
seed = 5
series_stride = 10
)";

TEST(ScenarioRunnerDeterminism, ByteIdenticalToHandWiredSimulator) {
  const Scenario s = scenario::parse_scenario(kDeterminismScenario);
  const SimulationResult via_scenario = ScenarioRunner(s).run();

  // The legacy path, exactly as pre-scenario code wired it by hand: one
  // master Rng drives topology then model; Simulator runs the sim config.
  Rng rng(5);
  ConflictGraph network = random_geometric_avg_degree(14, 4.5, rng);
  ExtendedConflictGraph ecg(network, 3);
  GaussianChannelModel model(14, 3, rng);
  const auto policy = make_policy(PolicyKind::kCab);
  SimulationConfig cfg;
  cfg.slots = 120;
  cfg.seed = 5;
  cfg.series_stride = 10;
  const SimulationResult legacy = Simulator(ecg, model, *policy, cfg).run();

  expect_identical(via_scenario, legacy);
}

TEST(ScenarioRunnerDeterminism, ByteIdenticalToFacadeRun) {
  const Scenario s = scenario::parse_scenario(kDeterminismScenario);
  const SimulationResult via_scenario = ScenarioRunner(s).run();

  Rng rng(5);
  ConflictGraph network = random_geometric_avg_degree(14, 4.5, rng);
  GaussianChannelModel model(14, 3, rng);
  ChannelAccessConfig cfg;
  cfg.num_channels = 3;
  cfg.seed = 5;
  cfg.series_stride = 10;
  const ChannelAccessScheme scheme(network, cfg);
  const SimulationResult via_facade = scheme.run(model, 120);

  expect_identical(via_scenario, via_facade);
}

TEST(ScenarioRunnerDeterminism, RepeatedRunsAndReplicationsAreStable) {
  Scenario s = scenario::parse_scenario(kDeterminismScenario);
  scenario::apply_override(s, "replication.replications=3");
  scenario::apply_override(s, "run.slots=60");
  const ScenarioRunner runner(s);
  expect_identical(runner.run(), runner.run());

  const ReplicationReport r1 = runner.replicate();
  const ReplicationReport r2 = runner.replicate();
  ASSERT_EQ(r1.replications, 3);
  ASSERT_EQ(r1.metrics.size(), r2.metrics.size());
  for (std::size_t i = 0; i < r1.metrics.size(); ++i) {
    EXPECT_EQ(r1.metrics[i].name, r2.metrics[i].name);
    EXPECT_EQ(r1.metrics[i].summary.mean, r2.metrics[i].summary.mean);
    EXPECT_EQ(r1.metrics[i].summary.stddev, r2.metrics[i].summary.stddev);
  }
}

TEST(ScenarioRunnerNet, ProtocolRoundsMatchLockstepDecisions) {
  Scenario s = scenario::parse_scenario(kDeterminismScenario);
  scenario::apply_override(s, "run.slots=8");
  const ScenarioRunner runner(s);
  const scenario::NetRunSummary net = runner.run_net();
  EXPECT_EQ(net.rounds, 8);
  EXPECT_EQ(net.conflicts, 0);
  EXPECT_GT(net.max_table_size, 0u);
  // Full Algorithm 2, message-level vs lockstep: identical final strategy.
  const SimulationResult sim = runner.run();
  EXPECT_EQ(net.last_strategy, sim.last_strategy);
}

// --------------------------------------------- example scenarios can't rot

TEST(ExampleScenarios, EveryFileParsesValidatesAndRuns) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::path(MHCA_SOURCE_DIR) / "examples" / "scenarios";
  ASSERT_TRUE(fs::exists(dir)) << dir;
  int count = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() != ".ini") continue;
    SCOPED_TRACE(entry.path().filename().string());
    ++count;
    Scenario s = scenario::parse_scenario_file(entry.path().string());
    scenario::validate(s);
    // Short smoke run: a few slots, no replication fan-out.
    scenario::apply_override(s, "run.slots=5");
    scenario::apply_override(s, "run.series_stride=1");
    scenario::apply_override(s, "replication.replications=0");
    const SimulationResult res = ScenarioRunner(s).run();
    EXPECT_EQ(res.total_slots, 5);
  }
  EXPECT_GE(count, 9) << "example scenario grid shrank unexpectedly";
}

}  // namespace
}  // namespace mhca
