// The replication harness must produce results independent of the worker
// count (per-seed slots merged in seed order), propagate worker exceptions,
// and fail loudly on unknown metric names.
#include <gtest/gtest.h>

#include <stdexcept>

#include "bandit/policy.h"
#include "channel/gaussian.h"
#include "graph/extended_graph.h"
#include "graph/generators.h"
#include "sim/replication.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace mhca {
namespace {

std::function<SimulationResult(std::uint64_t)> small_experiment(
    const ExtendedConflictGraph& ecg) {
  return [&ecg](std::uint64_t seed) {
    Rng rng(seed * 7919 + 11);
    GaussianChannelModel model(ecg.num_nodes(), ecg.num_channels(), rng);
    PolicyParams params;
    auto policy = make_policy(PolicyKind::kCab, params);
    SimulationConfig cfg;
    cfg.slots = 60;
    cfg.seed = seed;
    Simulator sim(ecg, model, *policy, cfg);
    return sim.run();
  };
}

TEST(Replication, ResultsIndependentOfParallelism) {
  Rng topo_rng(404);
  ConflictGraph cg = random_geometric_avg_degree(12, 4.0, topo_rng);
  ExtendedConflictGraph ecg(cg, 3);
  const auto experiment = small_experiment(ecg);

  ReplicationConfig serial;
  serial.replications = 6;
  serial.parallelism = 1;
  ReplicationConfig parallel = serial;
  parallel.parallelism = 4;

  const ReplicationReport a = replicate(experiment, serial);
  const ReplicationReport b = replicate(experiment, parallel);
  ASSERT_EQ(a.metrics.size(), b.metrics.size());
  for (std::size_t i = 0; i < a.metrics.size(); ++i) {
    EXPECT_EQ(a.metrics[i].name, b.metrics[i].name);
    EXPECT_DOUBLE_EQ(a.metrics[i].summary.mean, b.metrics[i].summary.mean);
    EXPECT_DOUBLE_EQ(a.metrics[i].summary.stddev,
                     b.metrics[i].summary.stddev);
    EXPECT_DOUBLE_EQ(a.metrics[i].summary.min, b.metrics[i].summary.min);
    EXPECT_DOUBLE_EQ(a.metrics[i].summary.max, b.metrics[i].summary.max);
  }

  // Back-compat wrapper agrees with the config form.
  const ReplicationReport c = replicate(experiment, 6, 1);
  EXPECT_DOUBLE_EQ(c.metric("expected_rate").mean,
                   a.metric("expected_rate").mean);
}

TEST(Replication, WorkerExceptionPropagates) {
  const auto failing = [](std::uint64_t seed) -> SimulationResult {
    if (seed >= 3) throw std::runtime_error("replication 3 exploded");
    SimulationResult r;
    r.total_slots = 1;
    return r;
  };
  ReplicationConfig cfg;
  cfg.replications = 6;
  cfg.seed0 = 1;
  cfg.parallelism = 3;
  EXPECT_THROW(replicate(failing, cfg), std::runtime_error);
  cfg.parallelism = 1;
  EXPECT_THROW(replicate(failing, cfg), std::runtime_error);
}

TEST(Replication, UnknownMetricThrows) {
  ReplicationReport report;
  report.metrics = {{"expected_rate", Summary{}}};
  EXPECT_NO_THROW(report.metric("expected_rate"));
  EXPECT_THROW(report.metric("no_such_metric"), std::out_of_range);
}

}  // namespace
}  // namespace mhca
