// Tests for the CDS backbone (pipelined weight broadcast, paper §IV-C).
#include <gtest/gtest.h>

#include "graph/cds.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "util/rng.h"

namespace mhca {
namespace {

TEST(Cds, PredicatesOnTinyGraphs) {
  Graph g(4);  // star
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(0, 3);
  EXPECT_TRUE(is_dominating_set(g, {0}));
  EXPECT_FALSE(is_dominating_set(g, {1}));
  EXPECT_TRUE(induces_connected_subgraph(g, {0, 1}));
  EXPECT_FALSE(induces_connected_subgraph(g, {1, 2}));
  EXPECT_TRUE(induces_connected_subgraph(g, {}));
  EXPECT_TRUE(induces_connected_subgraph(g, {2}));
}

TEST(Cds, GreedyMisIsMaximalIndependent) {
  Rng rng(1);
  ConflictGraph cg = random_geometric_avg_degree(40, 5.0, rng);
  const Graph& g = cg.graph();
  const auto mis = greedy_mis(g);
  EXPECT_TRUE(g.is_independent_set(mis));
  EXPECT_TRUE(is_dominating_set(g, mis));  // maximal IS always dominates
}

TEST(Cds, ConstructionSatisfiesBothProperties) {
  Rng rng(2);
  for (int seed = 0; seed < 6; ++seed) {
    ConflictGraph cg = random_geometric_avg_degree(30 + 10 * seed, 6.0, rng);
    const Graph& g = cg.graph();
    const auto cds = simple_connected_dominating_set(g);
    EXPECT_TRUE(is_dominating_set(g, cds));
    EXPECT_TRUE(induces_connected_subgraph(g, cds));
    EXPECT_LE(static_cast<int>(cds.size()), g.size());
  }
}

TEST(Cds, PathBackbone) {
  ConflictGraph path = linear_network(9);
  const auto cds = simple_connected_dominating_set(path.graph());
  EXPECT_TRUE(is_dominating_set(path.graph(), cds));
  EXPECT_TRUE(induces_connected_subgraph(path.graph(), cds));
  // On a path the backbone must include at least the interior ~N-2 band.
  EXPECT_GE(cds.size(), 5u);
}

TEST(Cds, RequiresConnectedGraph) {
  Graph g(4);
  g.add_edge(0, 1);  // {2}, {3} isolated
  ConflictGraph cg = ConflictGraph::from_edges(4, {{0, 1}});
  EXPECT_THROW(simple_connected_dominating_set(cg.graph()),
               std::logic_error);
}

TEST(Cds, PipelinedBroadcastCoversSameBallWithBoundedStretch) {
  Rng rng(3);
  ConflictGraph cg = random_geometric_avg_degree(60, 6.0, rng);
  const Graph& g = cg.graph();
  const auto cds = simple_connected_dominating_set(g);
  const int r = 2;
  const int ttl = 2 * r + 1;
  for (int origin = 0; origin < g.size(); origin += 11) {
    const int slots = pipelined_broadcast_timeslots(g, cds, origin, ttl);
    EXPECT_GE(slots, 0);
    // Backbone detours stretch the flood by a constant factor at most
    // (each plain hop maps to <= 3 backbone hops: to a dominator, across,
    // and out).
    EXPECT_LE(slots, 3 * ttl + 2);
  }
}

TEST(Cds, FullGraphBackboneMatchesPlainFlood) {
  ConflictGraph path = linear_network(10);
  std::vector<int> everyone;
  for (int v = 0; v < 10; ++v) everyone.push_back(v);
  EXPECT_EQ(pipelined_broadcast_timeslots(path.graph(), everyone, 0, 4), 4);
  EXPECT_EQ(pipelined_broadcast_timeslots(path.graph(), everyone, 5, 100), 5);
}

}  // namespace
}  // namespace mhca
