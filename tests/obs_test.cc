// Tests for src/obs — the telemetry spine. The load-bearing property is the
// zero-perturbation contract: with a TraceRecorder and MetricsRegistry
// installed (or not), every engine takes bit-identical decisions and
// produces bit-identical trace hashes; the artifacts the spine then emits
// must satisfy their own validators (the same ones the CI gate runs via
// tools/mhca_obs_validate) and the checked-in metrics schema.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "net/transport.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/publish.h"
#include "obs/trace.h"
#include "obs/validate.h"
#include "scenario/runner.h"
#include "scenario/scenario.h"

namespace mhca {
namespace {

using obs::JsonValue;
using obs::MetricsRegistry;
using obs::TraceRecorder;
using scenario::Scenario;
using scenario::ScenarioRunner;

/// Re-installs a null recorder/registry on scope exit, whatever the test
/// did — no test may leak observability into its neighbors.
struct ObsGuard {
  ~ObsGuard() {
    obs::set_trace(nullptr);
    obs::set_metrics(nullptr);
  }
};

const char* kNetScenario = R"(name = obs-contract
[topology]
kind = geometric
nodes = 14
avg_degree = 4.5
[channel]
kind = gaussian
channels = 3
[policy]
kind = cab
[run]
slots = 10
seed = 5
)";

std::string read_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  EXPECT_TRUE(f.is_open()) << path;
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

// ---------------------------------------------------------------- metrics

TEST(Metrics, CounterSumsAcrossThreads) {
  obs::Counter c;
  constexpr int kThreads = 8, kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i)
    threads.emplace_back([&c] {
      for (int j = 0; j < kPerThread; ++j) c.inc();
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<std::int64_t>(kThreads) * kPerThread);
}

TEST(Metrics, HistogramBucketsArePowersOfTwo) {
  obs::Histogram h;
  h.observe(0.25);  // bucket 0: below 1
  h.observe(1.0);   // bucket 1: [1, 2)
  h.observe(3.0);   // bucket 2: [2, 4)
  h.observe(3.9);
  const obs::Histogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.count, 4);
  EXPECT_DOUBLE_EQ(s.min, 0.25);
  EXPECT_DOUBLE_EQ(s.max, 3.9);
  EXPECT_EQ(s.buckets[0], 1);
  EXPECT_EQ(s.buckets[1], 1);
  EXPECT_EQ(s.buckets[2], 2);
}

TEST(Metrics, RegistryInternsAndReadsBack) {
  MetricsRegistry reg;
  reg.counter("channel.messages").add(7);
  EXPECT_EQ(&reg.counter("channel.messages"), &reg.counter("channel.messages"))
      << "lookup must intern: hot sites hold the reference";
  reg.gauge("decision.theta").set(0.5);
  EXPECT_EQ(reg.counter_value("channel.messages"), 7);
  EXPECT_DOUBLE_EQ(reg.gauge_value("decision.theta"), 0.5);
  EXPECT_EQ(reg.counter_value("no.such_key"), 0);

  JsonValue doc;
  std::string err;
  ASSERT_TRUE(obs::parse_json(reg.to_json(), doc, &err)) << err;
  const JsonValue* counters = doc.find("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_NE(counters->find("channel.messages"), nullptr);
  EXPECT_DOUBLE_EQ(counters->find("channel.messages")->number, 7.0);
}

TEST(Metrics, CsvFlattensEveryKind) {
  MetricsRegistry reg;
  reg.counter("a.b").inc();
  reg.gauge("c.d").set(2.5);
  reg.histogram("e.f").observe(4.0);
  const std::string csv = reg.to_csv();
  EXPECT_NE(csv.find("counter,a.b,1"), std::string::npos) << csv;
  EXPECT_NE(csv.find("gauge,c.d,"), std::string::npos) << csv;
  EXPECT_NE(csv.find("e.f"), std::string::npos) << csv;
  EXPECT_NE(csv.find("histogram_p50,e.f,"), std::string::npos) << csv;
  EXPECT_NE(csv.find("histogram_p90,e.f,"), std::string::npos) << csv;
  EXPECT_NE(csv.find("histogram_p99,e.f,"), std::string::npos) << csv;
}

TEST(Metrics, HistogramPercentilesInterpolateAndClamp) {
  // Single value: every percentile clamps to the one observation exactly.
  obs::Histogram one;
  one.observe(10.0);
  const auto s1 = one.snapshot();
  EXPECT_DOUBLE_EQ(s1.percentile(50.0), 10.0);
  EXPECT_DOUBLE_EQ(s1.percentile(99.0), 10.0);

  // Empty histogram reports 0, not garbage.
  EXPECT_DOUBLE_EQ(obs::Histogram::Snapshot{}.percentile(50.0), 0.0);

  // A spread: percentiles are monotone in p, stay within [min, max], and
  // land in the right power-of-two bucket (90 of 100 observations below 2,
  // so p50 must sit under 2; rank 99 exhausts the [16, 32) bucket of the
  // 30.0 observations, and only p100 reaches the lone 100.0 tail, where
  // the clamp to the tracked max makes it exact).
  obs::Histogram h;
  for (int i = 0; i < 90; ++i) h.observe(1.5);
  for (int i = 0; i < 9; ++i) h.observe(30.0);
  h.observe(100.0);
  const auto s = h.snapshot();
  const double p50 = s.percentile(50.0);
  const double p90 = s.percentile(90.0);
  const double p99 = s.percentile(99.0);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  EXPECT_GE(p50, s.min);
  EXPECT_LE(p99, s.max);
  EXPECT_LT(p50, 2.0);
  EXPECT_GE(p99, 16.0);
  EXPECT_LE(p99, 32.0);
  EXPECT_DOUBLE_EQ(s.percentile(100.0), 100.0);

  // The JSON snapshot carries the percentile fields the checked-in schema
  // requires of every histogram.
  MetricsRegistry reg;
  reg.histogram("x.y").observe(3.0);
  const char* schema =
      R"({"required_histogram_fields":
          ["count","sum","min","max","p50","p90","p99","buckets"]})";
  const auto errors = obs::validate_metrics_snapshot(reg.to_json(), schema);
  EXPECT_TRUE(errors.empty())
      << "first violation: " << (errors.empty() ? "" : errors[0]);
}

// ------------------------------------------------------------------ trace

TEST(Trace, RecorderEmitsValidBalancedChromeTrace) {
  TraceRecorder rec;
  rec.begin(obs::kTidEngine, "ptas.decision", R"({"n":10})");
  rec.begin(obs::kTidEngine, "ptas.setup");
  rec.end(obs::kTidEngine);
  rec.instant(obs::kTidRuntime, "net.view_change");
  rec.end(obs::kTidEngine);
  const std::vector<std::string> violations =
      obs::validate_chrome_trace(rec.to_json());
  EXPECT_TRUE(violations.empty())
      << "first violation: " << (violations.empty() ? "" : violations[0]);
  EXPECT_EQ(rec.event_count(), 5u);
  rec.clear();
  EXPECT_EQ(rec.event_count(), 0u);
}

TEST(Trace, ValidatorRejectsUnbalancedAndNonMonotonicTracks) {
  // An unclosed "B" on track (0, 1).
  const char* unbalanced = R"({"traceEvents":[
    {"ph":"B","pid":0,"tid":1,"ts":1.0,"name":"x"}]})";
  EXPECT_FALSE(obs::validate_chrome_trace(unbalanced).empty());
  // ts runs backwards within one track.
  const char* backwards = R"({"traceEvents":[
    {"ph":"i","pid":0,"tid":1,"ts":5.0,"name":"a","s":"t"},
    {"ph":"i","pid":0,"tid":1,"ts":4.0,"name":"b","s":"t"}]})";
  EXPECT_FALSE(obs::validate_chrome_trace(backwards).empty());
  // An "E" with no matching "B".
  const char* stray_end = R"({"traceEvents":[
    {"ph":"E","pid":0,"tid":1,"ts":1.0}]})";
  EXPECT_FALSE(obs::validate_chrome_trace(stray_end).empty());
  // Same events, separate tracks: fine.
  const char* two_tracks = R"({"traceEvents":[
    {"ph":"i","pid":0,"tid":1,"ts":5.0,"name":"a","s":"t"},
    {"ph":"i","pid":1,"tid":1,"ts":4.0,"name":"b","s":"t"}]})";
  EXPECT_TRUE(obs::validate_chrome_trace(two_tracks).empty());
}

TEST(Trace, ShardTagLandsInPid) {
  TraceRecorder rec;
  obs::set_current_shard(3);
  rec.instant(obs::kTidTransport, "transport.exchange");
  obs::set_current_shard(0);
  JsonValue doc;
  ASSERT_TRUE(obs::parse_json(rec.to_json(), doc, nullptr));
  const JsonValue* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->items.size(), 1u);
  EXPECT_DOUBLE_EQ(events->items[0].find("pid")->number, 3.0);
}

TEST(Trace, MergeInterleavesShardsAndRejectsPidCollisions) {
  // Two shards, overlapping in time: shard 1's events straddle shard 2's.
  const char* shard1 = R"({"traceEvents":[
    {"ph":"B","pid":1,"tid":1,"ts":1.0,"name":"a"},
    {"ph":"E","pid":1,"tid":1,"ts":9.0}]})";
  const char* shard2 = R"({"traceEvents":[
    {"ph":"i","pid":2,"tid":1,"ts":5.0,"name":"b","s":"t"}]})";
  std::vector<std::pair<std::string, std::string>> inputs = {
      {"shard1.json", shard1}, {"shard2.json", shard2}};
  std::vector<std::string> errors;
  const std::string merged = obs::merge_chrome_traces(inputs, errors);
  ASSERT_TRUE(errors.empty())
      << "first violation: " << (errors.empty() ? "" : errors[0]);
  EXPECT_TRUE(obs::validate_chrome_trace(merged).empty());
  JsonValue doc;
  ASSERT_TRUE(obs::parse_json(merged, doc, nullptr));
  const JsonValue* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->items.size(), 3u);
  // Global ts order with track identity intact: B(1) < i(5) < E(9).
  EXPECT_DOUBLE_EQ(events->items[0].find("ts")->number, 1.0);
  EXPECT_DOUBLE_EQ(events->items[1].find("pid")->number, 2.0);
  EXPECT_DOUBLE_EQ(events->items[2].find("ts")->number, 9.0);

  // Two inputs claiming pid 1 cannot merge into one timeline.
  inputs[1] = {"dup.json", shard1};
  errors.clear();
  EXPECT_TRUE(obs::merge_chrome_traces(inputs, errors).empty());
  EXPECT_FALSE(errors.empty());

  // A broken shard (unclosed span) fails the merge, labeled by file.
  const char* broken = R"({"traceEvents":[
    {"ph":"B","pid":3,"tid":1,"ts":1.0,"name":"x"}]})";
  inputs[1] = {"broken.json", broken};
  errors.clear();
  EXPECT_TRUE(obs::merge_chrome_traces(inputs, errors).empty());
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(errors[0].find("broken.json"), std::string::npos) << errors[0];
}

// -------------------------------------------------------------- validators

TEST(Validate, MetricsSchemaCatchesMissingAndMalformedKeys) {
  const char* schema = R"({"required_domains":["channel"],
                           "required_counters":["channel.messages"]})";
  MetricsRegistry ok;
  ok.counter("channel.messages").inc();
  EXPECT_TRUE(obs::validate_metrics_snapshot(ok.to_json(), schema).empty());

  MetricsRegistry missing;
  missing.counter("channel.drops").inc();
  EXPECT_FALSE(
      obs::validate_metrics_snapshot(missing.to_json(), schema).empty());

  MetricsRegistry malformed;
  malformed.counter("channel.messages").inc();
  malformed.counter("NotADottedKey").inc();
  EXPECT_FALSE(
      obs::validate_metrics_snapshot(malformed.to_json(), schema).empty());
}

TEST(Validate, JsonParserRejectsTrailingGarbageAndBadEscapes) {
  JsonValue v;
  std::string err;
  EXPECT_TRUE(obs::parse_json(R"({"a":[1,2,{"b":"c\n"}],"d":null})", v, &err));
  EXPECT_FALSE(obs::parse_json("{} trailing", v, &err));
  EXPECT_FALSE(obs::parse_json(R"({"a":"\x"})", v, &err));
  EXPECT_FALSE(obs::parse_json("{\"a\":01}", v, &err));
}

// ------------------------------------------- the zero-perturbation contract

TEST(ObsContract, LockstepDecisionsIdenticalWithTracingOn) {
  ObsGuard guard;
  Scenario s = scenario::parse_scenario(kNetScenario);
  const ScenarioRunner runner(s);
  const SimulationResult off = runner.run();
  TraceRecorder rec;
  MetricsRegistry reg;
  obs::set_trace(&rec);
  obs::set_metrics(&reg);
  const SimulationResult on = runner.run();
  obs::set_trace(nullptr);
  obs::set_metrics(nullptr);
  EXPECT_EQ(off.last_strategy, on.last_strategy);
  EXPECT_EQ(off.total_observed, on.total_observed);
  EXPECT_EQ(off.total_expected, on.total_expected);
  EXPECT_GT(rec.event_count(), 0u) << "the engine must have emitted spans";
  EXPECT_TRUE(obs::validate_chrome_trace(rec.to_json()).empty());
}

TEST(ObsContract, NetRunHashesIdenticalWithObservabilityOn) {
  ObsGuard guard;
  Scenario s = scenario::parse_scenario(kNetScenario);
  const ScenarioRunner runner(s);
  const scenario::NetRunSummary off = runner.run_net();
  TraceRecorder rec;
  MetricsRegistry reg;
  obs::set_trace(&rec);
  obs::set_metrics(&reg);
  const scenario::NetRunSummary on = runner.run_net();
  obs::set_trace(nullptr);
  obs::set_metrics(nullptr);
  EXPECT_EQ(off.trace_hash, on.trace_hash);
  EXPECT_EQ(off.decision_digest, on.decision_digest);
  EXPECT_EQ(off.last_strategy, on.last_strategy);
  EXPECT_EQ(off.bytes_on_wire, on.bytes_on_wire);
  EXPECT_EQ(off.messages, on.messages);
  EXPECT_GT(rec.event_count(), 0u);
  EXPECT_TRUE(obs::validate_chrome_trace(rec.to_json()).empty());
}

TEST(ObsContract, SummaryDerivedFromRegistryMatchesInstalledRegistry) {
  // run_net_impl publishes into the installed registry and *derives* the
  // summary from it — so the summary and a --metrics snapshot can never
  // disagree.
  ObsGuard guard;
  Scenario s = scenario::parse_scenario(kNetScenario);
  const ScenarioRunner runner(s);
  MetricsRegistry reg;
  obs::set_metrics(&reg);
  const scenario::NetRunSummary n = runner.run_net();
  obs::set_metrics(nullptr);
  EXPECT_EQ(n.messages, reg.counter_value("channel.messages"));
  EXPECT_EQ(n.bytes_on_wire, reg.counter_value("channel.bytes_on_wire"));
  EXPECT_EQ(n.rounds, reg.counter_value("decision.rounds"));
  EXPECT_EQ(n.messages_by_type[0], reg.counter_value("channel.messages.hello"));
  EXPECT_EQ(n.tx_abstained, reg.counter_value("decision.tx_abstained"));
}

TEST(ObsContract, TracedTwoShardMeshMatchesUntracedClassic) {
  // The sharded runtime tags each shard's events with its own pid while
  // both threads share one recorder — and the decisions still match an
  // untraced single-process run bit for bit.
  ObsGuard guard;
  Scenario s = scenario::parse_scenario(kNetScenario);
  const ScenarioRunner runner(s);
  const scenario::NetRunSummary classic = runner.run_net();

  TraceRecorder rec;
  obs::set_trace(&rec);
  net::MemoryMeshGroup mesh(2);
  scenario::NetRunSummary logs[2];
  std::thread t0(
      [&] { logs[0] = runner.run_net_sharded(mesh.endpoint(0)); });
  logs[1] = runner.run_net_sharded(mesh.endpoint(1));
  t0.join();
  obs::set_trace(nullptr);
  obs::set_current_shard(0);  // this thread ran as shard 1

  for (const auto& log : logs) {
    EXPECT_EQ(log.trace_hash, classic.trace_hash);
    EXPECT_EQ(log.decision_digest, classic.decision_digest);
    EXPECT_EQ(log.last_strategy, classic.last_strategy);
  }
  EXPECT_TRUE(obs::validate_chrome_trace(rec.to_json()).empty());
  // Both shards must appear as distinct pids in the merged timeline.
  JsonValue doc;
  ASSERT_TRUE(obs::parse_json(rec.to_json(), doc, nullptr));
  bool saw_pid[2] = {false, false};
  for (const JsonValue& e : doc.find("traceEvents")->items) {
    const int pid = static_cast<int>(e.find("pid")->number);
    if (pid == 0 || pid == 1) saw_pid[pid] = true;
  }
  EXPECT_TRUE(saw_pid[0] && saw_pid[1]);
}

// --------------------------------------------------- the checked-in schema

TEST(ObsSchema, NetRunSnapshotSatisfiesCheckedInSchema) {
  ObsGuard guard;
  const std::string schema =
      read_file(std::string(MHCA_SOURCE_DIR) + "/tools/metrics_schema.json");
  ASSERT_FALSE(schema.empty());
  Scenario s = scenario::parse_scenario(kNetScenario);
  // view_sync exercises the membership domain's counters too.
  scenario::apply_override(s, "net.membership=view_sync");
  const ScenarioRunner runner(s);
  MetricsRegistry reg;
  obs::set_metrics(&reg);
  (void)runner.run_net();
  obs::set_metrics(nullptr);
  const std::vector<std::string> violations =
      obs::validate_metrics_snapshot(reg.to_json(), schema);
  EXPECT_TRUE(violations.empty())
      << "first violation: " << (violations.empty() ? "" : violations[0]);
}

TEST(ObsSchema, SimulationSnapshotCoversDecisionDomain) {
  ObsGuard guard;
  Scenario s = scenario::parse_scenario(kNetScenario);
  const ScenarioRunner runner(s);
  MetricsRegistry reg;
  const SimulationResult res = runner.run();
  obs::publish_simulation(reg, res);
  EXPECT_EQ(reg.counter_value("decision.slots"), res.total_slots);
  EXPECT_EQ(reg.counter_value("decision.decisions"),
            static_cast<std::int64_t>(res.decisions));
  EXPECT_DOUBLE_EQ(reg.gauge_value("decision.total_observed"),
                   res.total_observed);
}

}  // namespace
}  // namespace mhca
