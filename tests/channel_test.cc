// Tests for src/channel: Gaussian / Bernoulli models, primary-user
// decorator, adversarial processes, determinism of stateless sampling.
#include <gtest/gtest.h>

#include <memory>

#include "channel/adversarial.h"
#include "channel/bernoulli.h"
#include "channel/channel_model.h"
#include "channel/gaussian.h"
#include "channel/primary_user.h"
#include "util/rng.h"
#include "util/stats.h"

namespace mhca {
namespace {

TEST(Gaussian, MeansComeFromPaperRateClasses) {
  Rng rng(1);
  GaussianChannelModel m(10, 8, rng);
  for (int i = 0; i < 10; ++i)
    for (int j = 0; j < 8; ++j) {
      const double kbps = m.mean_rate_kbps(i, j);
      EXPECT_NE(std::find(kDataRatesKbps.begin(), kDataRatesKbps.end(), kbps),
                kDataRatesKbps.end());
      EXPECT_GT(m.mean(i, j, 1), 0.0);
      EXPECT_LE(m.mean(i, j, 1), 1.0);
    }
}

TEST(Gaussian, SamplingIsStatelessDeterministic) {
  Rng rng(2);
  GaussianChannelModel m(5, 4, rng);
  // Same (node, channel, t) twice -> identical value; this property is what
  // lets two runtimes observe identical channels.
  EXPECT_EQ(m.sample(1, 2, 77), m.sample(1, 2, 77));
  EXPECT_NE(m.sample(1, 2, 77), m.sample(1, 2, 78));
  EXPECT_NE(m.sample(1, 2, 77), m.sample(1, 3, 77));
}

TEST(Gaussian, EmpiricalMomentsMatch) {
  Rng rng(3);
  GaussianChannelModel m(2, 2, rng, 0.1);
  RunningStat rs;
  for (int t = 1; t <= 20000; ++t) rs.add(m.sample(0, 0, t));
  EXPECT_NEAR(rs.mean(), m.mean(0, 0, 1), 0.01);
  const double expected_std = 0.1 * m.mean(0, 0, 1);
  EXPECT_NEAR(rs.stddev(), expected_std, 0.2 * expected_std + 1e-4);
}

TEST(Gaussian, SamplesClampedToUnit) {
  Rng rng(4);
  GaussianChannelModel m(3, 3, rng, 2.0);  // huge variance to force clipping
  for (int t = 1; t <= 2000; ++t) {
    const double x = m.sample(1, 1, t);
    EXPECT_GE(x, 0.0);
    EXPECT_LE(x, 1.0);
  }
}

TEST(Gaussian, ExplicitMeansAndScale) {
  GaussianChannelModel m(1, 2, {300.0, 1350.0}, 0.0, 9);
  EXPECT_DOUBLE_EQ(m.mean(0, 0, 1), 300.0 / kRateScaleKbps);
  EXPECT_DOUBLE_EQ(m.sample(0, 1, 5), 1350.0 / kRateScaleKbps);
  EXPECT_DOUBLE_EQ(m.rate_scale_kbps(), kRateScaleKbps);
}

TEST(Gaussian, MeanMatrixLayout) {
  GaussianChannelModel m(2, 3, {150, 225, 300, 450, 600, 900}, 0.0, 1);
  const auto mm = m.mean_matrix();
  ASSERT_EQ(mm.size(), 6u);
  EXPECT_DOUBLE_EQ(mm[0], 150.0 / kRateScaleKbps);
  EXPECT_DOUBLE_EQ(mm[5], 900.0 / kRateScaleKbps);
}

TEST(Bernoulli, MeanIsProbTimesValue) {
  BernoulliChannelModel m(1, 1, {0.5}, {0.8}, 7);
  EXPECT_DOUBLE_EQ(m.mean(0, 0, 1), 0.4);
}

TEST(Bernoulli, EmpiricalFrequency) {
  BernoulliChannelModel m(1, 1, {0.3}, {1.0}, 11);
  int on = 0;
  const int trials = 20000;
  for (int t = 1; t <= trials; ++t)
    if (m.sample(0, 0, t) > 0.0) ++on;
  EXPECT_NEAR(static_cast<double>(on) / trials, 0.3, 0.02);
}

TEST(Bernoulli, RandomConstructionInRange) {
  Rng rng(5);
  BernoulliChannelModel m(4, 4, rng, 0.2, 0.9);
  for (int i = 0; i < 4; ++i)
    for (int j = 0; j < 4; ++j) {
      EXPECT_GE(m.mean(i, j, 1), 0.0);
      EXPECT_LE(m.mean(i, j, 1), 1.0);
    }
}

TEST(PrimaryUser, BlocksChannelWideAtActiveSlots) {
  Rng rng(6);
  auto base = std::make_shared<GaussianChannelModel>(3, 2, rng, 0.0);
  PrimaryUserChannelModel m(base, {1.0, 0.0}, 13);  // ch0 always busy
  for (int t = 1; t <= 50; ++t) {
    EXPECT_TRUE(m.primary_active(0, t));
    EXPECT_FALSE(m.primary_active(1, t));
    for (int i = 0; i < 3; ++i) {
      EXPECT_DOUBLE_EQ(m.sample(i, 0, t), 0.0);
      EXPECT_EQ(m.sample(i, 1, t), base->sample(i, 1, t));
    }
  }
  EXPECT_DOUBLE_EQ(m.mean(0, 0, 1), 0.0);
  EXPECT_DOUBLE_EQ(m.mean(0, 1, 1), base->mean(0, 1, 1));
}

TEST(PrimaryUser, ActivityFrequencyMatchesProb) {
  Rng rng(7);
  auto base = std::make_shared<GaussianChannelModel>(1, 1, rng, 0.0);
  PrimaryUserChannelModel m(base, {0.25}, 17);
  int active = 0;
  const int trials = 20000;
  for (int t = 1; t <= trials; ++t)
    if (m.primary_active(0, t)) ++active;
  EXPECT_NEAR(static_cast<double>(active) / trials, 0.25, 0.02);
}

TEST(PrimaryUser, RejectsBadConfig) {
  Rng rng(8);
  auto base = std::make_shared<GaussianChannelModel>(2, 2, rng);
  EXPECT_THROW(PrimaryUserChannelModel(base, {0.5}, 1), std::logic_error);
  EXPECT_THROW(PrimaryUserChannelModel(base, {0.5, 1.5}, 1), std::logic_error);
}

TEST(Adversarial, SwapFlipsBestAndWorst) {
  Rng rng(9);
  const std::int64_t horizon = 1000;
  AdversarialChannelModel m(3, 4, AdversaryKind::kSwap, horizon, rng);
  for (int i = 0; i < 3; ++i) {
    // Identify best/worst channel before the swap.
    int best = 0, worst = 0;
    for (int j = 1; j < 4; ++j) {
      if (m.mean(i, j, 1) > m.mean(i, best, 1)) best = j;
      if (m.mean(i, j, 1) < m.mean(i, worst, 1)) worst = j;
    }
    // After t0 = horizon/2 the means of best and worst are exchanged.
    EXPECT_DOUBLE_EQ(m.mean(i, best, horizon - 1), m.mean(i, worst, 1));
    EXPECT_DOUBLE_EQ(m.mean(i, worst, horizon - 1), m.mean(i, best, 1));
  }
  EXPECT_FALSE(m.is_stationary());
}

TEST(Adversarial, RampInterpolates) {
  Rng rng(10);
  AdversarialChannelModel m(1, 1, AdversaryKind::kRamp, 100, rng, 0.0);
  const double start = m.mean(0, 0, 0);
  const double end = m.mean(0, 0, 100);
  const double mid = m.mean(0, 0, 50);
  EXPECT_NEAR(mid, 0.5 * (start + end), 1e-9);
}

TEST(Adversarial, DriftStaysBoundedAndMoves) {
  Rng rng(11);
  AdversarialChannelModel m(2, 2, AdversaryKind::kDrift, 500, rng, 0.0);
  double lo = 1.0, hi = 0.0;
  for (int t = 0; t <= 500; t += 10) {
    const double mu = m.mean(0, 0, t);
    EXPECT_GE(mu, 0.0);
    EXPECT_LE(mu, 1.0);
    lo = std::min(lo, mu);
    hi = std::max(hi, mu);
  }
  EXPECT_GT(hi - lo, 0.0);  // it actually varies
}

TEST(Adversarial, SamplesNoisyAroundMean) {
  Rng rng(12);
  AdversarialChannelModel m(1, 1, AdversaryKind::kRamp, 10000, rng, 0.05);
  RunningStat rs;
  for (int t = 4000; t < 6000; ++t) rs.add(m.sample(0, 0, t));
  EXPECT_NEAR(rs.mean(), m.mean(0, 0, 5000), 0.02);
}

}  // namespace
}  // namespace mhca
