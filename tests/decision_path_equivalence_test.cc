// Equivalence tests for the decision-path overhaul: the cached decision
// path (CSR/bitset graph, NeighborhoodCache election, scratch-reuse B&B)
// must produce byte-identical results to the seed re-derivation path on
// every topology, and the reusable structures must survive repeated use —
// including the node-cap abort path.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "graph/extended_graph.h"
#include "graph/generators.h"
#include "graph/neighborhood_cache.h"
#include "mwis/branch_and_bound.h"
#include "mwis/distributed_ptas.h"
#include "util/rng.h"

namespace mhca {
namespace {

std::vector<double> random_weights(int n, Rng& rng) {
  std::vector<double> w(static_cast<std::size_t>(n));
  for (auto& x : w) x = rng.uniform(0.05, 1.0);
  return w;
}

/// Run both engine configurations over the same weight sequence and demand
/// identical winners, weights, and protocol traces.
void expect_paths_identical(const Graph& h, int r, int decisions,
                            std::uint64_t weight_seed) {
  DistributedPtasConfig cached_cfg;
  cached_cfg.r = r;
  cached_cfg.count_messages = true;
  DistributedPtasConfig seed_cfg = cached_cfg;
  seed_cfg.use_decision_cache = false;

  DistributedRobustPtas cached(h, cached_cfg);
  DistributedRobustPtas seed(h, seed_cfg);
  ASSERT_TRUE(cached.neighborhood_cache().built());
  ASSERT_FALSE(seed.neighborhood_cache().built());

  Rng rng(weight_seed);
  for (int d = 0; d < decisions; ++d) {
    const auto w = random_weights(h.size(), rng);
    const DistributedPtasResult a = cached.run(w);
    const DistributedPtasResult b = seed.run(w);
    ASSERT_EQ(a.winners, b.winners) << "decision " << d;
    EXPECT_DOUBLE_EQ(a.weight, b.weight);
    EXPECT_EQ(a.all_marked, b.all_marked);
    EXPECT_EQ(a.mini_rounds_used, b.mini_rounds_used);
    EXPECT_EQ(a.total_messages, b.total_messages);
    EXPECT_EQ(a.total_mini_timeslots, b.total_mini_timeslots);
    EXPECT_EQ(a.solver_nodes_explored, b.solver_nodes_explored);
    ASSERT_EQ(a.mini_rounds.size(), b.mini_rounds.size());
    for (std::size_t i = 0; i < a.mini_rounds.size(); ++i) {
      EXPECT_EQ(a.mini_rounds[i].leaders, b.mini_rounds[i].leaders);
      EXPECT_EQ(a.mini_rounds[i].new_winners, b.mini_rounds[i].new_winners);
      EXPECT_EQ(a.mini_rounds[i].new_losers, b.mini_rounds[i].new_losers);
      EXPECT_EQ(a.mini_rounds[i].messages, b.mini_rounds[i].messages);
    }
    // Weight-broadcast accounting agrees between cached and BFS sizes.
    EXPECT_EQ(cached.weight_broadcast_messages(a.winners),
              seed.weight_broadcast_messages(b.winners));
  }
}

TEST(DecisionPathEquivalence, RandomGeometricGraphs) {
  for (int r = 1; r <= 3; ++r) {
    Rng rng(static_cast<std::uint64_t>(r) * 101 + 7);
    ConflictGraph cg = random_geometric_avg_degree(40, 5.0, rng);
    ExtendedConflictGraph ecg(cg, 4);
    expect_paths_identical(ecg.graph(), r, 3,
                           static_cast<std::uint64_t>(r) * 997 + 3);
  }
}

TEST(DecisionPathEquivalence, AdversarialGraphs) {
  // Complete graph: one giant clique — every ball is the whole graph.
  {
    ConflictGraph cg = complete_network(12);
    ExtendedConflictGraph ecg(cg, 3);
    expect_paths_identical(ecg.graph(), 2, 2, 11);
  }
  // Dense Erdős–Rényi: decidedly non-geometric, non-growth-bounded.
  {
    Rng rng(21);
    ConflictGraph cg = erdos_renyi(30, 0.3, rng);
    ExtendedConflictGraph ecg(cg, 3);
    expect_paths_identical(ecg.graph(), 2, 2, 23);
  }
  // Fig. 5 linear worst case: maximal mini-round count, one leader each.
  {
    ConflictGraph cg = linear_network(40);
    ExtendedConflictGraph ecg(cg, 2);
    expect_paths_identical(ecg.graph(), 2, 2, 31);
  }
}

TEST(DecisionPathEquivalence, EqualWeightTies) {
  ConflictGraph cg = linear_network(15);
  ExtendedConflictGraph ecg(cg, 2);
  const Graph& h = ecg.graph();
  std::vector<double> w(static_cast<std::size_t>(h.size()), 0.5);
  DistributedPtasConfig seed_cfg;
  seed_cfg.use_decision_cache = false;
  DistributedRobustPtas cached(h, {});
  DistributedRobustPtas seed(h, seed_cfg);
  const auto a = cached.run(w);
  const auto b = seed.run(w);
  EXPECT_EQ(a.winners, b.winners);
  EXPECT_DOUBLE_EQ(a.weight, b.weight);
}

TEST(DecisionPathEquivalence, PathologicalElectionWeights) {
  // The cached election encodes weights as order-preserving 64-bit keys;
  // the seed path compares raw doubles. Exercise the encoding's edge
  // cases — negative weights, signed zeros (-0.0 must tie +0.0 exactly as
  // `==` does), dense ties — across repeated decisions and activity masks
  // on one engine, so incremental state (blocker chains, resume cursors)
  // is reused between runs.
  Rng rng(87);
  ConflictGraph cg = random_geometric_avg_degree(40, 5.0, rng,
                                                 /*force_connected=*/false);
  ExtendedConflictGraph ecg(cg, 3);
  const Graph& h = ecg.graph();
  DistributedPtasConfig seed_cfg;
  seed_cfg.use_decision_cache = false;
  DistributedRobustPtas cached(h, {});
  DistributedRobustPtas seed(h, seed_cfg);
  const double pool[] = {-1.5, -0.25, -0.0, 0.0, 0.25, 0.25, 0.5, 2.0};
  std::vector<double> w(static_cast<std::size_t>(h.size()));
  std::vector<char> active(static_cast<std::size_t>(h.size()), 1);
  for (int decision = 0; decision < 6; ++decision) {
    for (auto& x : w) x = pool[rng.uniform_int(0, 7)];
    for (auto& m : active) m = rng.bernoulli(0.85) ? 1 : 0;
    const auto a = cached.run(w, active);
    const auto b = seed.run(w, active);
    ASSERT_EQ(a.winners, b.winners) << "decision " << decision;
    ASSERT_EQ(a.weight, b.weight) << "decision " << decision;
    ASSERT_EQ(a.mini_rounds_used, b.mini_rounds_used);
  }
}

TEST(NeighborhoodCache, BallsMatchBfs) {
  Rng rng(5);
  ConflictGraph cg = random_geometric_avg_degree(30, 5.0, rng);
  ExtendedConflictGraph ecg(cg, 3);
  const Graph& h = ecg.graph();
  const int r = 2;
  NeighborhoodCache cache(h, r);
  BfsScratch scratch(h.size());
  for (int v = 0; v < h.size(); ++v) {
    const auto rb = scratch.k_hop_neighborhood(h, v, r);
    ASSERT_TRUE(std::equal(rb.begin(), rb.end(), cache.r_ball(v).begin(),
                           cache.r_ball(v).end()));
    const auto eb = scratch.k_hop_neighborhood(h, v, 2 * r + 1);
    ASSERT_TRUE(std::equal(eb.begin(), eb.end(),
                           cache.election_ball(v).begin(),
                           cache.election_ball(v).end()));
  }
}

TEST(SolveScratch, ReusedScratchMatchesFreshAllocation) {
  Rng rng(13);
  ConflictGraph cg = random_geometric_avg_degree(30, 6.0, rng);
  ExtendedConflictGraph ecg(cg, 4);
  const Graph& h = ecg.graph();
  ASSERT_TRUE(h.has_adjacency_matrix());

  BranchAndBoundMwisSolver solver(200'000, /*reuse_scratch=*/true);
  NeighborhoodCache cache(h, 2);

  // A series of solves over different candidate sets: the reused scratch
  // must never leak state between solves — a fresh scratch with the same
  // options must reproduce every solve byte-for-byte, node counts included.
  SolveScratch reused;
  for (int leader = 0; leader < h.size(); leader += 7) {
    const auto ball = cache.r_ball(leader);
    const auto w = random_weights(h.size(), rng);
    const MwisResult a = solver.solve_with_scratch(h, w, ball, reused);
    SolveScratch fresh;
    const MwisResult b = solver.solve_with_scratch(h, w, ball, fresh);
    ASSERT_EQ(a.vertices, b.vertices);
    EXPECT_DOUBLE_EQ(a.weight, b.weight);
    EXPECT_EQ(a.exact, b.exact);
    EXPECT_EQ(a.nodes_explored, b.nodes_explored);
  }
}

TEST(SolveScratch, EnhancedAndClassicAgreeOnExactInstances) {
  // The enhanced search (reductions + components + refined bound) and the
  // classic seed search are both exact when they complete: same optimal set
  // on unique-optimum instances, weight equal up to summation order.
  Rng rng(13);
  ConflictGraph cg = random_geometric_avg_degree(30, 6.0, rng);
  ExtendedConflictGraph ecg(cg, 4);
  const Graph& h = ecg.graph();

  BranchAndBoundMwisSolver enhanced(5'000'000, /*reuse_scratch=*/true);
  BranchAndBoundMwisSolver classic(5'000'000, /*reuse_scratch=*/false);
  NeighborhoodCache cache(h, 2);
  for (int leader = 0; leader < h.size(); leader += 7) {
    const auto ball = cache.r_ball(leader);
    const auto w = random_weights(h.size(), rng);
    const MwisResult a = enhanced.solve(h, w, ball);
    const MwisResult b = classic.solve(h, w, ball);
    ASSERT_TRUE(a.exact);
    ASSERT_TRUE(b.exact);
    ASSERT_EQ(a.vertices, b.vertices);
    EXPECT_NEAR(a.weight, b.weight, 1e-9);
    // The enhanced tree must never be larger than the classic one here.
    EXPECT_LE(a.nodes_explored, b.nodes_explored);
  }
}

TEST(SolveScratch, ExternalScratchSharedAcrossGraphs) {
  // One scratch serving solves over two different graphs (the message-level
  // runtime shares a solver across per-agent local graphs).
  Rng rng(17);
  ConflictGraph cg1 = random_geometric_avg_degree(20, 4.0, rng);
  ConflictGraph cg2 = random_geometric_avg_degree(35, 6.0, rng);
  ExtendedConflictGraph e1(cg1, 3), e2(cg2, 2);
  BranchAndBoundMwisSolver solver;
  SolveScratch scratch;
  for (int round = 0; round < 3; ++round) {
    for (const Graph* g : {&e1.graph(), &e2.graph()}) {
      const auto w = random_weights(g->size(), rng);
      std::vector<int> all(static_cast<std::size_t>(g->size()));
      for (int v = 0; v < g->size(); ++v) all[static_cast<std::size_t>(v)] = v;
      const MwisResult a = solver.solve_with_scratch(*g, w, all, scratch);
      SolveScratch fresh_scratch;
      BnbSolveOptions list_build;
      list_build.use_adjacency_rows = false;
      const MwisResult b =
          solver.solve_with_scratch(*g, w, all, fresh_scratch, list_build);
      ASSERT_EQ(a.vertices, b.vertices);
      EXPECT_DOUBLE_EQ(a.weight, b.weight);
      EXPECT_EQ(a.nodes_explored, b.nodes_explored);
    }
  }
}

TEST(SolveScratch, NodeCapAbortPathWithReusedScratch) {
  Rng rng(19);
  ConflictGraph cg = random_geometric_avg_degree(22, 6.0, rng);
  ExtendedConflictGraph ecg(cg, 3);
  const Graph& h = ecg.graph();
  const auto w = random_weights(h.size(), rng);
  std::vector<int> all(static_cast<std::size_t>(h.size()));
  for (int v = 0; v < h.size(); ++v) all[static_cast<std::size_t>(v)] = v;

  BranchAndBoundMwisSolver capped(50, /*reuse_scratch=*/true);
  const MwisResult first = capped.solve(h, w, all);
  EXPECT_FALSE(first.exact);
  EXPECT_TRUE(h.is_independent_set(first.vertices));
  EXPECT_GT(first.weight, 0.0);  // at least the greedy incumbent

  // Re-running on the same reused scratch must reproduce the abort exactly
  // (no state bleeds from the aborted search into the next solve).
  const MwisResult second = capped.solve(h, w, all);
  EXPECT_EQ(first.vertices, second.vertices);
  EXPECT_DOUBLE_EQ(first.weight, second.weight);
  EXPECT_EQ(first.nodes_explored, second.nodes_explored);
  EXPECT_FALSE(second.exact);

  // And an uncapped solve on the *same scratch object* still finds at least
  // as much weight, exactly.
  BranchAndBoundMwisSolver uncapped(5'000'000, /*reuse_scratch=*/true);
  SolveScratch scratch;
  const MwisResult aborted =
      BranchAndBoundMwisSolver(50).solve_with_scratch(h, w, all, scratch);
  const MwisResult full = uncapped.solve_with_scratch(h, w, all, scratch);
  EXPECT_TRUE(full.exact);
  EXPECT_GE(full.weight, aborted.weight - 1e-12);
  EXPECT_FALSE(aborted.exact);
}

TEST(GraphCsr, FinalizedAnswersMatchBuildPhase) {
  Rng rng(23);
  ConflictGraph cg = erdos_renyi(25, 0.25, rng);
  const Graph& fin = cg.graph();  // factories finalize
  ASSERT_TRUE(fin.finalized());
  ASSERT_TRUE(fin.has_adjacency_matrix());

  // Rebuild the same graph without finalizing.
  Graph raw(fin.size());
  for (int v = 0; v < fin.size(); ++v)
    for (int u : fin.neighbors(v))
      if (u > v) raw.add_edge(v, u);
  ASSERT_FALSE(raw.finalized());

  EXPECT_EQ(raw.num_edges(), fin.num_edges());
  EXPECT_EQ(raw.max_degree(), fin.max_degree());
  for (int v = 0; v < fin.size(); ++v) {
    const auto a = raw.neighbors(v);
    const auto b = fin.neighbors(v);
    ASSERT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()));
    for (int u = 0; u < fin.size(); ++u)
      ASSERT_EQ(raw.has_edge(v, u), fin.has_edge(v, u));
  }
}

TEST(GraphCsr, AdjacencyRowsMatchHasEdge) {
  Rng rng(29);
  ConflictGraph cg = random_geometric_avg_degree(20, 4.0, rng);
  ExtendedConflictGraph ecg(cg, 3);
  const Graph& h = ecg.graph();
  ASSERT_TRUE(h.has_adjacency_matrix());
  for (int v = 0; v < h.size(); ++v) {
    const auto row = h.adjacency_row(v);
    for (int u = 0; u < h.size(); ++u) {
      const bool bit = (row[static_cast<std::size_t>(u) / 64] >>
                        (static_cast<std::size_t>(u) % 64)) &
                       1u;
      ASSERT_EQ(bit, h.has_edge(v, u));
    }
  }
}

TEST(GraphCsr, AddEdgeAfterFinalizeReopens) {
  Graph g(4);
  g.add_edge(0, 1);
  g.finalize();
  ASSERT_TRUE(g.finalized());
  g.add_edge(2, 3);  // definalizes, then inserts
  EXPECT_FALSE(g.finalized());
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(2, 3));
  g.finalize();
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(2, 3));
  EXPECT_EQ(g.num_edges(), 2);
}

}  // namespace
}  // namespace mhca
