// Tests for the lockstep distributed robust PTAS engine (Algorithm 3):
// protocol invariants (leaders far apart, winners independent, everyone
// marked), approximation quality, the Fig. 5 linear worst case, and message
// accounting.
#include <gtest/gtest.h>

#include <algorithm>

#include "graph/extended_graph.h"
#include "graph/generators.h"
#include "graph/hop.h"
#include "mwis/branch_and_bound.h"
#include "mwis/distributed_ptas.h"
#include "util/rng.h"

namespace mhca {
namespace {

std::vector<double> random_weights(int n, Rng& rng) {
  std::vector<double> w(static_cast<std::size_t>(n));
  for (auto& x : w) x = rng.uniform(0.05, 1.0);
  return w;
}

TEST(DistributedPtas, WinnersAreIndependentAndAllMarked) {
  Rng rng(1);
  ConflictGraph cg = random_geometric_avg_degree(40, 5.0, rng);
  ExtendedConflictGraph ecg(cg, 4);
  const auto w = random_weights(ecg.num_vertices(), rng);
  DistributedRobustPtas engine(ecg.graph(), {});  // until all marked
  const DistributedPtasResult res = engine.run(w);
  EXPECT_TRUE(res.all_marked);
  EXPECT_TRUE(ecg.graph().is_independent_set(res.winners));
  EXPECT_GT(res.weight, 0.0);
  // Weight really is the sum over winners.
  double sum = 0.0;
  for (int v : res.winners) sum += w[static_cast<std::size_t>(v)];
  EXPECT_NEAR(sum, res.weight, 1e-9);
}

TEST(DistributedPtas, WinnersAreMaximal) {
  // No candidate should be left unmarked when run to completion, and the
  // result should be a *maximal* IS (every non-winner has a winner
  // neighbor or shares its master... in H: every vertex is Winner or has a
  // winner within its closed neighborhood is NOT guaranteed by Alg. 3;
  // but every vertex must be marked Winner or Loser).
  Rng rng(2);
  ConflictGraph cg = random_geometric_avg_degree(30, 4.0, rng);
  ExtendedConflictGraph ecg(cg, 3);
  const auto w = random_weights(ecg.num_vertices(), rng);
  DistributedRobustPtas engine(ecg.graph(), {});
  const DistributedPtasResult res = engine.run(w);
  EXPECT_TRUE(res.all_marked);
  EXPECT_EQ(res.mini_rounds.back().candidates_remaining, 0);
}

TEST(DistributedPtas, CumulativeWeightMonotone) {
  Rng rng(3);
  ConflictGraph cg = random_geometric_avg_degree(60, 5.0, rng);
  ExtendedConflictGraph ecg(cg, 5);
  const auto w = random_weights(ecg.num_vertices(), rng);
  DistributedRobustPtas engine(ecg.graph(), {});
  const DistributedPtasResult res = engine.run(w);
  for (std::size_t i = 1; i < res.mini_rounds.size(); ++i)
    EXPECT_GE(res.mini_rounds[i].cumulative_weight,
              res.mini_rounds[i - 1].cumulative_weight);
  EXPECT_DOUBLE_EQ(res.mini_rounds.back().cumulative_weight, res.weight);
}

TEST(DistributedPtas, MiniRoundCapRespected) {
  Rng rng(4);
  ConflictGraph cg = random_geometric_avg_degree(50, 5.0, rng);
  ExtendedConflictGraph ecg(cg, 4);
  const auto w = random_weights(ecg.num_vertices(), rng);
  DistributedPtasConfig cfg;
  cfg.max_mini_rounds = 2;
  DistributedRobustPtas engine(ecg.graph(), cfg);
  const DistributedPtasResult res = engine.run(w);
  EXPECT_LE(res.mini_rounds_used, 2);
  EXPECT_TRUE(ecg.graph().is_independent_set(res.winners));
}

TEST(DistributedPtas, LinearWorstCaseNeedsManyMiniRounds) {
  // Paper Fig. 5: on a path with strictly decreasing weights only one new
  // LocalLeader can appear per mini-round (with r-hop balls, a leader marks
  // its whole r-ball, so it takes ~N/(2r+1) mini-rounds, still Θ(N)).
  const int n = 40;
  ConflictGraph cg = linear_network(n);
  ExtendedConflictGraph ecg(cg, 1);  // H == G for M = 1
  std::vector<double> w(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    w[static_cast<std::size_t>(i)] = 1.0 - 0.01 * static_cast<double>(i);
  DistributedPtasConfig cfg;
  cfg.r = 2;
  DistributedRobustPtas engine(ecg.graph(), cfg);
  const DistributedPtasResult res = engine.run(w);
  EXPECT_TRUE(res.all_marked);
  // Each mini-round exactly one leader exists (the unmarked prefix vertex).
  for (const auto& mr : res.mini_rounds) EXPECT_EQ(mr.leaders, 1);
  EXPECT_GE(res.mini_rounds_used, n / (2 * cfg.r + 1));
}

TEST(DistributedPtas, RandomNetworksConvergeInFewMiniRounds) {
  // Theorem 4 / Fig. 6: on random geometric networks a small constant
  // number of mini-rounds marks everything.
  Rng rng(5);
  ConflictGraph cg = random_geometric_avg_degree(100, 6.0, rng);
  ExtendedConflictGraph ecg(cg, 5);
  const auto w = random_weights(ecg.num_vertices(), rng);
  DistributedRobustPtas engine(ecg.graph(), {});
  const DistributedPtasResult res = engine.run(w);
  EXPECT_TRUE(res.all_marked);
  EXPECT_LE(res.mini_rounds_used, 12);
}

TEST(DistributedPtas, MessageAccountingPositiveAndBounded) {
  Rng rng(6);
  ConflictGraph cg = random_geometric_avg_degree(30, 4.0, rng);
  ExtendedConflictGraph ecg(cg, 3);
  const auto w = random_weights(ecg.num_vertices(), rng);
  DistributedPtasConfig cfg;
  cfg.count_messages = true;
  DistributedRobustPtas engine(ecg.graph(), cfg);
  const DistributedPtasResult res = engine.run(w);
  EXPECT_GT(res.total_messages, 0);
  // Every flood reaches at most the whole graph, and there are at most
  // (leaders per round) * 2 floods.
  std::int64_t leaders = 0;
  for (const auto& mr : res.mini_rounds) leaders += mr.leaders;
  EXPECT_LE(res.total_messages,
            2 * leaders * static_cast<std::int64_t>(ecg.num_vertices()));
  EXPECT_GT(res.total_mini_timeslots, 0);

  const std::int64_t wb = engine.weight_broadcast_messages(res.winners);
  EXPECT_GT(wb, static_cast<std::int64_t>(res.winners.size()));
}

TEST(DistributedPtas, DeterministicAcrossRuns) {
  Rng rng(7);
  ConflictGraph cg = random_geometric_avg_degree(40, 5.0, rng);
  ExtendedConflictGraph ecg(cg, 4);
  const auto w = random_weights(ecg.num_vertices(), rng);
  DistributedRobustPtas e1(ecg.graph(), {});
  DistributedRobustPtas e2(ecg.graph(), {});
  EXPECT_EQ(e1.run(w).winners, e2.run(w).winners);
}

TEST(DistributedPtas, GreedyLocalSolverStillIndependent) {
  Rng rng(8);
  ConflictGraph cg = random_geometric_avg_degree(50, 6.0, rng);
  ExtendedConflictGraph ecg(cg, 4);
  const auto w = random_weights(ecg.num_vertices(), rng);
  DistributedPtasConfig cfg;
  cfg.local_solver = LocalSolverKind::kGreedy;
  DistributedRobustPtas engine(ecg.graph(), cfg);
  const DistributedPtasResult res = engine.run(w);
  EXPECT_TRUE(res.all_marked);
  EXPECT_TRUE(ecg.graph().is_independent_set(res.winners));
}

TEST(DistributedPtas, EqualWeightsTieBrokenDeterministically) {
  ConflictGraph cg = linear_network(10);
  ExtendedConflictGraph ecg(cg, 2);
  std::vector<double> w(static_cast<std::size_t>(ecg.num_vertices()), 0.5);
  DistributedRobustPtas e1(ecg.graph(), {});
  DistributedRobustPtas e2(ecg.graph(), {});
  const auto r1 = e1.run(w);
  EXPECT_EQ(r1.winners, e2.run(w).winners);
  EXPECT_TRUE(r1.all_marked);
}

// Approximation-quality sweep against the exact optimum on small graphs.
class DistributedQuality : public ::testing::TestWithParam<int> {};

TEST_P(DistributedQuality, WithinTheorem2RatioOfOptimum) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 53 + 17);
  ConflictGraph cg = random_geometric_avg_degree(10, 3.0, rng, false);
  const int m_channels = 3;
  ExtendedConflictGraph ecg(cg, m_channels);
  const auto w = random_weights(ecg.num_vertices(), rng);

  BranchAndBoundMwisSolver exact;
  const double opt = exact.solve_all(ecg.graph(), w).weight;

  DistributedPtasConfig cfg;  // r = 2
  DistributedRobustPtas engine(ecg.graph(), cfg);
  const DistributedPtasResult res = engine.run(w);

  // Theorem 2/3 bound: rho^r <= M (2r+1)^2 with r = 2 -> rho = sqrt(75 M/3)
  // ... conservatively: weight >= opt / rho with rho = (M(2r+1)^2)^(1/r).
  const double rho =
      std::sqrt(static_cast<double>(m_channels) * 25.0);
  EXPECT_GE(res.weight, opt / rho - 1e-9);
  // Empirically it is far better; sanity-check a much tighter factor too.
  EXPECT_GE(res.weight, opt / 2.5);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DistributedQuality, ::testing::Range(0, 12));

// Leaders of the same mini-round are pairwise > 2r+1 hops apart — the core
// independence argument of Theorem 3. We verify it indirectly: re-run with
// max_mini_rounds = 1 and check all pairwise winner distances & that winner
// sets from distinct leaders don't conflict (already covered by the IS
// check), plus directly measure leader separation via the first record.
TEST(DistributedPtas, FirstMiniRoundLeaderSeparation) {
  Rng rng(9);
  ConflictGraph cg = random_geometric_avg_degree(60, 5.0, rng);
  ExtendedConflictGraph ecg(cg, 3);
  const auto w = random_weights(ecg.num_vertices(), rng);
  const int r = 2;

  // Reimplement the election criterion to recover the leader set.
  const Graph& h = ecg.graph();
  BfsScratch scratch(h.size());
  std::vector<int> leaders;
  for (int v = 0; v < h.size(); ++v) {
    const auto ball = scratch.k_hop_neighborhood(h, v, 2 * r + 1);
    bool is_max = true;
    for (int u : ball) {
      if (u == v) continue;
      const auto ku = std::make_pair(w[static_cast<std::size_t>(u)], -u);
      const auto kv = std::make_pair(w[static_cast<std::size_t>(v)], -v);
      if (ku > kv) {
        is_max = false;
        break;
      }
    }
    if (is_max) leaders.push_back(v);
  }

  DistributedPtasConfig cfg;
  cfg.r = r;
  cfg.max_mini_rounds = 1;
  DistributedRobustPtas engine(h, cfg);
  const DistributedPtasResult res = engine.run(w);
  ASSERT_EQ(res.mini_rounds.size(), 1u);
  EXPECT_EQ(res.mini_rounds[0].leaders, static_cast<int>(leaders.size()));

  for (std::size_t i = 0; i < leaders.size(); ++i)
    for (std::size_t j = i + 1; j < leaders.size(); ++j)
      EXPECT_GT(hop_distance(h, leaders[i], leaders[j], 2 * r + 2), 2 * r + 1);
}

}  // namespace
}  // namespace mhca
