// Tests for src/sim: the Table-II timing model, optimum computation,
// regret metrics, and the simulation engine (learning convergence, periodic
// update accounting, determinism).
#include <gtest/gtest.h>

#include <memory>

#include "bandit/policy.h"
#include "channel/gaussian.h"
#include "graph/extended_graph.h"
#include "graph/generators.h"
#include "sim/config.h"
#include "sim/metrics.h"
#include "sim/optimum.h"
#include "sim/simulator.h"
#include "sim/timing.h"
#include "util/rng.h"

namespace mhca {
namespace {

TEST(Timing, TableIIDefaults) {
  RoundTiming t;
  EXPECT_DOUBLE_EQ(t.tm_ms(), 250.0);   // 2*100 + 50
  EXPECT_DOUBLE_EQ(t.ts_ms(), 1000.0);  // 4 mini-rounds
  EXPECT_DOUBLE_EQ(t.theta(), 0.5);
  EXPECT_TRUE(t.is_consistent());
}

TEST(Timing, PeriodicFractionsMatchPaper) {
  RoundTiming t;
  EXPECT_DOUBLE_EQ(t.periodic_fraction(1), 0.5);      // 1/2
  EXPECT_DOUBLE_EQ(t.periodic_fraction(5), 0.9);      // 9/10
  EXPECT_DOUBLE_EQ(t.periodic_fraction(10), 0.95);    // 19/20
  EXPECT_DOUBLE_EQ(t.periodic_fraction(20), 0.975);   // 39/40
}

TEST(Optimum, SmallNetworkExact) {
  // Two conflicting nodes, one channel: only one can transmit; the optimum
  // picks the better mean.
  ConflictGraph cg = ConflictGraph::from_edges(2, {{0, 1}});
  ExtendedConflictGraph ecg(cg, 1);
  GaussianChannelModel model(2, 1, {300.0, 900.0}, 0.0, 1);
  const OptimumInfo opt = compute_optimum(ecg, model);
  EXPECT_TRUE(opt.exact);
  EXPECT_DOUBLE_EQ(opt.weight, 900.0 / kRateScaleKbps);
  ASSERT_EQ(opt.vertices.size(), 1u);
  EXPECT_EQ(ecg.master_of(opt.vertices[0]), 1);
}

TEST(Optimum, Theorem2Rho) {
  // r = 2, M = 3: rho = sqrt(75).
  EXPECT_NEAR(theorem2_rho(3, 2), std::sqrt(75.0), 1e-12);
  EXPECT_NEAR(theorem2_rho(1, 1), 9.0, 1e-12);
}

class SimFixture : public ::testing::Test {
 protected:
  SimFixture()
      : rng_(7),
        cg_(random_geometric_avg_degree(12, 4.0, rng_)),
        ecg_(cg_, 3),
        model_(12, 3, rng_) {}

  SimulationConfig base_config(std::int64_t slots) {
    SimulationConfig cfg;
    cfg.slots = slots;
    cfg.r = 2;
    cfg.D = 4;
    return cfg;
  }

  Rng rng_;
  ConflictGraph cg_;
  ExtendedConflictGraph ecg_;
  GaussianChannelModel model_;
};

TEST_F(SimFixture, RunProducesConsistentSeries) {
  auto policy = make_policy(PolicyKind::kCab);
  Simulator sim(ecg_, model_, *policy, base_config(200));
  const SimulationResult res = sim.run();
  EXPECT_EQ(res.total_slots, 200);
  EXPECT_EQ(res.decisions, 200);  // y = 1: every slot decides
  ASSERT_FALSE(res.slots.empty());
  EXPECT_EQ(res.slots.back(), 200);
  EXPECT_EQ(res.slots.size(), res.cumavg_effective.size());
  // theta = 0.5 and y = 1: effective is exactly half of observed.
  EXPECT_NEAR(res.total_effective, 0.5 * res.total_observed, 1e-9);
  EXPECT_GT(res.avg_strategy_size, 0.0);
  EXPECT_DOUBLE_EQ(res.theta, 0.5);
}

TEST_F(SimFixture, DeterministicGivenSeed) {
  auto policy = make_policy(PolicyKind::kCab);
  Simulator a(ecg_, model_, *policy, base_config(100));
  Simulator b(ecg_, model_, *policy, base_config(100));
  const SimulationResult ra = a.run();
  const SimulationResult rb = b.run();
  EXPECT_EQ(ra.total_observed, rb.total_observed);
  EXPECT_EQ(ra.last_strategy, rb.last_strategy);
}

TEST_F(SimFixture, LearningApproachesOptimum) {
  const OptimumInfo opt = compute_optimum(ecg_, model_);
  ASSERT_TRUE(opt.exact);
  auto policy = make_policy(PolicyKind::kCab);
  Simulator sim(ecg_, model_, *policy, base_config(1500));
  const SimulationResult res = sim.run();
  // Average *expected* throughput of chosen strategies should approach the
  // optimum well within the Theorem-2 ratio; empirically much closer.
  const double avg_expected =
      res.total_expected / static_cast<double>(res.total_slots);
  EXPECT_GT(avg_expected, 0.6 * opt.weight);
  // And the last-quarter average beats the first-quarter average (learning).
  const auto ideal = ideal_regret_series(res, opt.weight);
  const double early_rate = ideal[ideal.size() / 4] /
                            static_cast<double>(res.slots[ideal.size() / 4]);
  const double late_rate = ideal.back() / static_cast<double>(res.total_slots);
  EXPECT_LE(late_rate, early_rate + 1e-9);
}

TEST_F(SimFixture, PeriodicUpdateReducesDecisionsAndBoostsThroughput) {
  auto policy = make_policy(PolicyKind::kCab);
  SimulationConfig cfg1 = base_config(400);
  SimulationConfig cfg10 = base_config(400);
  cfg10.update_period = 10;
  Simulator s1(ecg_, model_, *policy, cfg1);
  Simulator s10(ecg_, model_, *policy, cfg10);
  const SimulationResult r1 = s1.run();
  const SimulationResult r10 = s10.run();
  EXPECT_EQ(r10.decisions, 40);
  // Effective fraction: y=1 realizes 50%, y=10 realizes 95% of observed.
  EXPECT_NEAR(r1.total_effective / r1.total_observed, 0.5, 1e-9);
  EXPECT_GT(r10.total_effective / r10.total_observed, 0.9);
}

TEST_F(SimFixture, SeriesStrideRecordsSparsely) {
  auto policy = make_policy(PolicyKind::kCab);
  SimulationConfig cfg = base_config(100);
  cfg.series_stride = 10;
  Simulator sim(ecg_, model_, *policy, cfg);
  const SimulationResult res = sim.run();
  EXPECT_LE(res.slots.size(), 12u);
  EXPECT_EQ(res.slots.back(), 100);
}

TEST_F(SimFixture, MessageCountingMonotoneInSlots) {
  auto policy = make_policy(PolicyKind::kCab);
  SimulationConfig cfg = base_config(50);
  cfg.count_messages = true;
  Simulator sim(ecg_, model_, *policy, cfg);
  const SimulationResult res = sim.run();
  EXPECT_GT(res.total_messages, 0);
  EXPECT_GT(res.total_mini_timeslots, 0);
}

TEST_F(SimFixture, CentralizedSolversAlsoWork) {
  auto policy = make_policy(PolicyKind::kCab);
  for (SolverKind kind : {SolverKind::kCentralizedPtas, SolverKind::kGreedy,
                          SolverKind::kExact}) {
    SimulationConfig cfg = base_config(60);
    cfg.solver = kind;
    Simulator sim(ecg_, model_, *policy, cfg);
    const SimulationResult res = sim.run();
    EXPECT_GT(res.total_observed, 0.0) << to_string(kind);
    EXPECT_TRUE(
        ecg_.graph().is_independent_set(res.last_strategy))
        << to_string(kind);
  }
}

TEST_F(SimFixture, ExactSolverBeatsOrMatchesGreedyOnExpectedThroughput) {
  auto policy = make_policy(PolicyKind::kCab);
  SimulationConfig ce = base_config(300);
  ce.solver = SolverKind::kExact;
  SimulationConfig cgr = base_config(300);
  cgr.solver = SolverKind::kGreedy;
  auto policy2 = make_policy(PolicyKind::kCab);
  const SimulationResult re = Simulator(ecg_, model_, *policy, ce).run();
  const SimulationResult rg = Simulator(ecg_, model_, *policy2, cgr).run();
  EXPECT_GE(re.total_expected, 0.85 * rg.total_expected);
}

TEST_F(SimFixture, FinalCountsSumToPlays) {
  auto policy = make_policy(PolicyKind::kCab);
  Simulator sim(ecg_, model_, *policy, base_config(100));
  const SimulationResult res = sim.run();
  std::int64_t plays = 0;
  for (auto c : res.final_counts) plays += c;
  // Every slot, every strategy vertex is played once.
  double size_sum = res.avg_strategy_size * static_cast<double>(res.total_slots);
  EXPECT_NEAR(static_cast<double>(plays), size_sum, 1e-6);
}

TEST_F(SimFixture, EpsGreedyRunsAndExplores) {
  PolicyParams p;
  p.epsilon = 0.3;
  auto policy = make_policy(PolicyKind::kEpsGreedy, p);
  SimulationConfig cfg = base_config(200);
  cfg.seed = 99;
  Simulator sim(ecg_, model_, *policy, cfg);
  const SimulationResult res = sim.run();
  EXPECT_GT(res.total_observed, 0.0);
}

TEST(Metrics, RegretSeriesDefinitions) {
  SimulationResult sim;
  sim.slots = {1, 2};
  sim.cumavg_effective = {0.4, 0.6};
  sim.cum_expected = {0.5, 1.2};
  const auto pr = practical_regret_series(sim, 1.0);
  EXPECT_DOUBLE_EQ(pr[0], 0.6);
  EXPECT_DOUBLE_EQ(pr[1], 0.4);
  const auto br = beta_regret_series(sim, 1.0, 2.0);
  EXPECT_DOUBLE_EQ(br[0], 0.1);
  EXPECT_DOUBLE_EQ(br[1], -0.1);
  const auto ir = ideal_regret_series(sim, 1.0);
  EXPECT_DOUBLE_EQ(ir[0], 0.5);
  EXPECT_DOUBLE_EQ(ir[1], 0.8);
  EXPECT_THROW(beta_regret_series(sim, 1.0, 0.5), std::logic_error);
}

TEST(Simulator, EstimatedSeriesMatchesHandComputation) {
  // One isolated node, one channel, zero noise: the strategy is always
  // {vertex 0}; after the first play the greedy index equals the constant
  // rate, so cumavg_estimated must equal the θ-discounted rate trajectory.
  ConflictGraph cg = ConflictGraph::from_edges(1, {});
  ExtendedConflictGraph ecg(cg, 1);
  const double rate = 600.0 / kRateScaleKbps;
  GaussianChannelModel model(1, 1, {600.0}, 0.0, 1);
  auto policy = make_policy(PolicyKind::kGreedy);
  SimulationConfig cfg;
  cfg.slots = 4;
  Simulator sim(ecg, model, *policy, cfg);
  const SimulationResult res = sim.run();
  const double theta = cfg.timing.theta();
  // Slot 1 uses the unplayed bonus as its estimate; skip it and check the
  // exact closed form afterwards: each slot contributes theta * rate
  // estimated (y = 1: every slot is a decision slot).
  ASSERT_EQ(res.slots.size(), 4u);
  for (std::size_t i = 1; i < 4; ++i) {
    const double t = static_cast<double>(res.slots[i]);
    const double first = theta * IndexPolicy::unplayed_index(0, 1);
    const double expect = (first + (t - 1.0) * theta * rate) / t;
    EXPECT_NEAR(res.cumavg_estimated[i], expect, 1e-12);
    EXPECT_NEAR(res.cumavg_effective[i], theta * rate, 1e-12);
    EXPECT_NEAR(res.cumavg_observed[i], rate, 1e-12);
  }
  EXPECT_NEAR(res.cum_expected.back(), 4.0 * rate, 1e-12);
}

TEST(Simulator, PeriodicEstimateUsesDecisionTimeIndex) {
  // With y = 2 every period contributes theta*W + 1*W of estimate where W
  // is the decision-time index sum; verify the realized fraction formula.
  ConflictGraph cg = ConflictGraph::from_edges(1, {});
  ExtendedConflictGraph ecg(cg, 1);
  GaussianChannelModel model(1, 1, {900.0}, 0.0, 1);
  auto policy = make_policy(PolicyKind::kGreedy);
  SimulationConfig cfg;
  cfg.slots = 20;
  cfg.update_period = 2;
  Simulator sim(ecg, model, *policy, cfg);
  const SimulationResult res = sim.run();
  EXPECT_EQ(res.decisions, 10);
  EXPECT_NEAR(res.total_effective / res.total_observed,
              cfg.timing.periodic_fraction(2), 1e-12);
}

TEST(Simulator, RejectsBadConfig) {
  Rng rng(1);
  ConflictGraph cg = linear_network(4);
  ExtendedConflictGraph ecg(cg, 2);
  GaussianChannelModel model(4, 2, rng);
  auto policy = make_policy(PolicyKind::kCab);
  SimulationConfig cfg;
  cfg.slots = 0;
  EXPECT_THROW(Simulator(ecg, model, *policy, cfg), std::logic_error);
  cfg.slots = 10;
  cfg.update_period = 0;
  EXPECT_THROW(Simulator(ecg, model, *policy, cfg), std::logic_error);
  GaussianChannelModel wrong(5, 2, rng);
  SimulationConfig ok;
  EXPECT_THROW(Simulator(ecg, wrong, *policy, ok), std::logic_error);
}

}  // namespace
}  // namespace mhca
