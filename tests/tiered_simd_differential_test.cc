// Differential fuzz for the two dispatch axes of the cached decision path:
//
//   - e-ball tier (explicit CSR spans vs implicit BFS re-enumeration,
//     forced either way via MHCA_EBALL_TIER) — the election's tier-2 scan
//     walks a stored span on one tier and an early-exit BFS on the other,
//     and decisions must be byte-identical because the blocker verdict is
//     scan-order independent (see src/graph/README.md).
//   - SIMD dispatch level (scalar / AVX2 / AVX-512, switched in-process via
//     util::set_simd_level, clamped to what the CPU supports) — the vector
//     kernels are pure block filters re-inspected scalar, so blocker
//     positions and the winner-validation verdict cannot differ.
//
// Every (tier x level) combination must reproduce the seed path's decision
// bit for bit, and apply_delta must stay identical to a fresh rebuild on
// both tiers. ctest label "fuzz" (name matches *differential*); the CI
// Release job also runs the whole suite once under MHCA_FORCE_SCALAR=1.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "graph/extended_graph.h"
#include "graph/generators.h"
#include "graph/hop.h"
#include "graph/neighborhood_cache.h"
#include "mwis/distributed_ptas.h"
#include "util/cpufeatures.h"
#include "util/rng.h"
#include "util/simd_scan.h"

namespace mhca {
namespace {

class EballTierOverride {
 public:
  explicit EballTierOverride(const char* tier) {
    ::setenv("MHCA_EBALL_TIER", tier, /*overwrite=*/1);
  }
  ~EballTierOverride() { ::unsetenv("MHCA_EBALL_TIER"); }
};

/// Restores the ambient dispatch level when a sweep ends.
class SimdLevelGuard {
 public:
  SimdLevelGuard() : saved_(util::simd_level()) {}
  ~SimdLevelGuard() { util::set_simd_level(saved_); }

 private:
  util::SimdLevel saved_;
};

std::vector<util::SimdLevel> available_levels() {
  std::vector<util::SimdLevel> levels{util::SimdLevel::kScalar};
  if (util::max_simd_level() >= util::SimdLevel::kAvx2)
    levels.push_back(util::SimdLevel::kAvx2);
  if (util::max_simd_level() >= util::SimdLevel::kAvx512)
    levels.push_back(util::SimdLevel::kAvx512);
  return levels;
}

// ------------------------------------------------- kernel-level differential

TEST(TieredSimdDifferential, SkipBelowKernelsAgreeWithScalarScan) {
  // The kernel contract is a *filter*: it may stop early (at a block
  // containing a key >= kv) but must never skip past one. Driving the
  // filter + scalar-inspect loop to completion must find the exact first
  // position with key >= kv at every level.
  Rng rng(7001);
  for (int c = 0; c < 200; ++c) {
    const int n = 1 + static_cast<int>(rng.uniform_int(1, 400));
    std::vector<std::uint64_t> keys(static_cast<std::size_t>(n));
    for (auto& k : keys)
      k = static_cast<std::uint64_t>(rng.uniform_int(0, 1 << 20))
          << (c % 2 ? 40 : 0);
    std::vector<int> arr(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) arr[static_cast<std::size_t>(i)] = i;
    for (int i = n - 1; i > 0; --i)
      std::swap(arr[static_cast<std::size_t>(i)],
                arr[static_cast<std::size_t>(rng.uniform_int(0, i))]);
    const std::uint64_t kv =
        keys[static_cast<std::size_t>(rng.uniform_int(0, n - 1))] | 1u;

    const auto first_ge = [&](util::SimdLevel lvl) -> std::size_t {
      const std::size_t sz = arr.size();
      const std::size_t bw = util::simd_block_width(lvl);
      std::size_t i = 0;
      if (bw != 0) {
        while (true) {
          i = util::simd_skip_below(keys.data(), arr.data(), i, sz, kv, lvl);
          if (i + bw > sz) break;
          for (std::size_t j = i; j < i + bw; ++j)
            if (keys[static_cast<std::size_t>(
                    arr[j])] >= kv)
              return j;
          i += bw;
        }
      }
      for (; i < sz; ++i)
        if (keys[static_cast<std::size_t>(arr[i])] >= kv) return i;
      return sz;
    };

    const std::size_t want = first_ge(util::SimdLevel::kScalar);
    for (const auto lvl : available_levels())
      ASSERT_EQ(first_ge(lvl), want)
          << "case " << c << " level " << util::simd_level_name(lvl);
  }
}

TEST(TieredSimdDifferential, AnyStampEqualAgreesWithScalarScan) {
  Rng rng(7002);
  for (int c = 0; c < 200; ++c) {
    const int n = 1 + static_cast<int>(rng.uniform_int(1, 300));
    const std::uint32_t epoch =
        static_cast<std::uint32_t>(rng.uniform_int(1, 1000));
    std::vector<std::uint32_t> stamp(static_cast<std::size_t>(n));
    for (auto& s : stamp) {
      s = static_cast<std::uint32_t>(rng.uniform_int(0, 1000));
      // Make hits rare but present across cases.
      if (rng.uniform(0.0, 1.0) < 0.02) s = epoch;
    }
    std::vector<int> arr;
    const int row = static_cast<int>(rng.uniform_int(0, 40));
    for (int i = 0; i < row; ++i)
      arr.push_back(static_cast<int>(rng.uniform_int(0, n - 1)));

    bool want = false;
    for (const int u : arr)
      if (stamp[static_cast<std::size_t>(u)] == epoch) want = true;
    for (const auto lvl : available_levels())
      ASSERT_EQ(util::simd_any_stamp_equal(stamp.data(), arr.data(),
                                           arr.size(), epoch, lvl),
                want)
          << "case " << c << " level " << util::simd_level_name(lvl);
  }
}

// ------------------------------------------------- engine-level differential

TEST(TieredSimdDifferential, DecisionsByteIdenticalAcrossTiersAndSimdLevels) {
  SimdLevelGuard guard;
  const auto levels = available_levels();
  for (int c = 0; c < 6; ++c) {
    SCOPED_TRACE("case " + std::to_string(c));
    Rng rng(9100 + static_cast<std::uint64_t>(c) * 131);
    const int users = 120 + c * 40;
    const int channels = 2 + c % 3;
    const double degree = 5.0 + (c % 3);
    const int r = 1 + c % 2;
    ConflictGraph cg = random_geometric_avg_degree(
        users, degree, rng, /*force_connected=*/false);
    ExtendedConflictGraph ecg(cg, channels);
    const Graph& h = ecg.graph();

    DistributedPtasConfig seed_cfg;
    seed_cfg.r = r;
    seed_cfg.use_decision_cache = false;
    seed_cfg.local_solve_parallelism = 1;
    DistributedPtasConfig cached_cfg = seed_cfg;
    cached_cfg.use_decision_cache = true;
    DistributedRobustPtas seed_engine(h, seed_cfg);

    // One cached engine per tier; the SIMD level is swept per decision
    // (simd_level() is re-read every election and every validation).
    struct TierCase {
      const char* name;
      NeighborhoodCache::EballTier tier;
    };
    const TierCase tiers[] = {
        {"explicit", NeighborhoodCache::EballTier::kExplicit},
        {"implicit", NeighborhoodCache::EballTier::kImplicit},
    };
    std::vector<DistributedRobustPtas> engines;
    engines.reserve(2);
    for (const auto& tc : tiers) {
      EballTierOverride force(tc.name);
      engines.emplace_back(h, cached_cfg);
      ASSERT_EQ(engines.back().neighborhood_cache().eball_tier(), tc.tier);
    }

    std::vector<double> w(static_cast<std::size_t>(h.size()));
    for (int decision = 0; decision < 3; ++decision) {
      for (auto& x : w) x = rng.uniform(0.05, 1.0);
      util::set_simd_level(util::SimdLevel::kScalar);
      const DistributedPtasResult want = seed_engine.run(w);
      for (std::size_t t = 0; t < engines.size(); ++t) {
        for (const auto lvl : levels) {
          util::set_simd_level(lvl);
          const DistributedPtasResult got = engines[t].run(w);
          ASSERT_EQ(got.winners, want.winners)
              << "tier " << tiers[t].name << " level "
              << util::simd_level_name(lvl) << " decision " << decision;
          ASSERT_EQ(got.weight, want.weight);
          ASSERT_EQ(got.mini_rounds_used, want.mini_rounds_used);
        }
      }
    }
  }
}

// ------------------------------------------------- apply_delta differential

TEST(TieredSimdDifferential, ApplyDeltaMatchesFreshBuildOnBothTiers) {
  for (const char* tier : {"explicit", "implicit"}) {
    SCOPED_TRACE(std::string("tier ") + tier);
    EballTierOverride force(tier);
    Rng rng(4400);
    const int n = 60;
    const int r = 2;
    ConflictGraph base = random_geometric_avg_degree(
        n, 4.0, rng, /*force_connected=*/false);
    std::set<std::pair<int, int>> present;
    for (int v = 0; v < n; ++v)
      for (int u : base.graph().neighbors(v))
        if (v < u) present.insert({v, u});
    Graph g(n);
    for (const auto& [u, v] : present) g.add_edge(u, v);
    g.finalize();
    NeighborhoodCache cache(g, r, /*build_covers=*/true);
    const bool expl = cache.eball_tier() ==
                      NeighborhoodCache::EballTier::kExplicit;

    BfsScratch scratch(n);
    for (int d = 0; d < 25; ++d) {
      std::vector<std::pair<int, int>> added, removed;
      for (int t = 0; t < 3; ++t) {
        int u = static_cast<int>(rng.uniform_int(0, n - 1));
        int v = static_cast<int>(rng.uniform_int(0, n - 1));
        if (u == v) continue;
        if (u > v) std::swap(u, v);
        if (present.count({u, v})) {
          removed.push_back({u, v});
          present.erase({u, v});
        } else {
          added.push_back({u, v});
          present.insert({u, v});
        }
      }
      if (added.empty() && removed.empty()) continue;
      std::vector<int> touched;
      for (const auto& [u, v] : added) {
        touched.push_back(u);
        touched.push_back(v);
      }
      for (const auto& [u, v] : removed) {
        touched.push_back(u);
        touched.push_back(v);
      }
      std::sort(touched.begin(), touched.end());
      touched.erase(std::unique(touched.begin(), touched.end()),
                    touched.end());
      g.apply_delta(added, removed);
      cache.apply_delta(g, touched);

      Graph rebuilt(n);
      for (const auto& [u, v] : present) rebuilt.add_edge(u, v);
      rebuilt.finalize();
      const NeighborhoodCache fresh(rebuilt, r, /*build_covers=*/true);
      ASSERT_EQ(fresh.eball_tier(), cache.eball_tier());
      for (int v = 0; v < n; ++v) {
        const auto ra = cache.r_ball(v), rb = fresh.r_ball(v);
        ASSERT_TRUE(std::equal(ra.begin(), ra.end(), rb.begin(), rb.end()))
            << "r-ball " << v << " at delta " << d;
        ASSERT_EQ(cache.election_ball_size(v), fresh.election_ball_size(v))
            << "e-ball size " << v << " at delta " << d;
        if (expl) {
          const auto ea = cache.election_ball(v), eb = fresh.election_ball(v);
          ASSERT_TRUE(std::equal(ea.begin(), ea.end(), eb.begin(), eb.end()))
              << "e-ball " << v << " at delta " << d;
        }
        const auto ca = cache.r_ball_cover(v), cb = fresh.r_ball_cover(v);
        ASSERT_TRUE(std::equal(ca.begin(), ca.end(), cb.begin(), cb.end()))
            << "cover " << v << " at delta " << d;
      }
    }
  }
}

}  // namespace
}  // namespace mhca
