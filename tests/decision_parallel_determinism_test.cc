// Determinism of parallel per-leader local solves: one decision's leaders
// have pairwise disjoint, non-adjacent r-balls (Theorem 3), so their solves
// are independent; the engine fans them across worker threads but applies
// results in election order. Any parallelism setting must therefore yield
// byte-identical winners, weights, message traces, and node counts.
#include <gtest/gtest.h>

#include <vector>

#include "graph/extended_graph.h"
#include "graph/generators.h"
#include "mwis/distributed_ptas.h"
#include "util/rng.h"

namespace mhca {
namespace {

void expect_identical(const DistributedPtasResult& a,
                      const DistributedPtasResult& b, int decision) {
  ASSERT_EQ(a.winners, b.winners) << "decision " << decision;
  EXPECT_EQ(a.weight, b.weight);  // bitwise: same summation order
  EXPECT_EQ(a.all_marked, b.all_marked);
  EXPECT_EQ(a.mini_rounds_used, b.mini_rounds_used);
  EXPECT_EQ(a.total_messages, b.total_messages);
  EXPECT_EQ(a.total_mini_timeslots, b.total_mini_timeslots);
  EXPECT_EQ(a.solver_nodes_explored, b.solver_nodes_explored);
  EXPECT_EQ(a.all_local_solves_exact, b.all_local_solves_exact);
  ASSERT_EQ(a.mini_rounds.size(), b.mini_rounds.size());
  for (std::size_t i = 0; i < a.mini_rounds.size(); ++i) {
    EXPECT_EQ(a.mini_rounds[i].leaders, b.mini_rounds[i].leaders);
    EXPECT_EQ(a.mini_rounds[i].new_winners, b.mini_rounds[i].new_winners);
    EXPECT_EQ(a.mini_rounds[i].new_losers, b.mini_rounds[i].new_losers);
    EXPECT_EQ(a.mini_rounds[i].messages, b.mini_rounds[i].messages);
  }
}

void run_determinism(int users, int r, bool memoized_covers,
                     std::int64_t node_cap) {
  Rng topo(static_cast<std::uint64_t>(users) * 7 + r);
  ConflictGraph cg = random_geometric_avg_degree(users, 6.0, topo);
  ExtendedConflictGraph ecg(cg, 4);
  const Graph& h = ecg.graph();

  DistributedPtasConfig serial_cfg;
  serial_cfg.r = r;
  serial_cfg.count_messages = true;
  serial_cfg.local_solve_parallelism = 1;
  serial_cfg.use_memoized_covers = memoized_covers;
  serial_cfg.bnb_node_cap = node_cap;
  DistributedPtasConfig wide_cfg = serial_cfg;
  wide_cfg.local_solve_parallelism = 8;

  DistributedRobustPtas serial(h, serial_cfg);
  DistributedRobustPtas wide(h, wide_cfg);

  Rng rng(static_cast<std::uint64_t>(users) * 31 + 5);
  for (int d = 0; d < 4; ++d) {
    std::vector<double> w(static_cast<std::size_t>(h.size()));
    for (auto& x : w) x = rng.uniform(0.05, 1.0);
    const auto a = serial.run(w);
    const auto b = wide.run(w);
    expect_identical(a, b, d);
  }
}

TEST(DecisionParallelDeterminism, Parallelism1And8Identical) {
  run_determinism(/*users=*/60, /*r=*/2, /*memoized_covers=*/false,
                  /*node_cap=*/2'000);
}

TEST(DecisionParallelDeterminism, IdenticalAtRadius3WithCapAborts) {
  // r = 3 produces multi-leader rounds with instances that hit the node
  // cap; the anytime incumbents must still be schedule-independent.
  run_determinism(/*users=*/60, /*r=*/3, /*memoized_covers=*/false,
                  /*node_cap=*/300);
}

TEST(DecisionParallelDeterminism, IdenticalWithMemoizedCovers) {
  run_determinism(/*users=*/60, /*r=*/2, /*memoized_covers=*/true,
                  /*node_cap=*/2'000);
}

TEST(DecisionParallelDeterminism, AutoParallelismMatchesSerial) {
  Rng topo(123);
  ConflictGraph cg = random_geometric_avg_degree(50, 6.0, topo);
  ExtendedConflictGraph ecg(cg, 4);
  const Graph& h = ecg.graph();
  DistributedPtasConfig serial_cfg;
  serial_cfg.local_solve_parallelism = 1;
  DistributedPtasConfig auto_cfg;  // default 0 = hardware concurrency
  DistributedRobustPtas serial(h, serial_cfg);
  DistributedRobustPtas autop(h, auto_cfg);
  Rng rng(17);
  std::vector<double> w(static_cast<std::size_t>(h.size()));
  for (auto& x : w) x = rng.uniform(0.05, 1.0);
  const auto a = serial.run(w);
  const auto b = autop.run(w);
  expect_identical(a, b, 0);
}

}  // namespace
}  // namespace mhca
