// Tests for src/graph: Graph, hop BFS, independence, induced subgraphs,
// conflict graphs, the extended conflict graph H (paper §III, Fig. 1) and
// the topology generators.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/conflict_graph.h"
#include "graph/extended_graph.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/hop.h"
#include "graph/independence.h"
#include "graph/induced.h"
#include "util/rng.h"

namespace mhca {
namespace {

Graph path_graph(int n) {
  Graph g(n);
  for (int i = 0; i + 1 < n; ++i) g.add_edge(i, i + 1);
  return g;
}

TEST(Graph, EdgesAndDegrees) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(1, 2);  // duplicate ignored
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_EQ(g.degree(1), 2);
  EXPECT_EQ(g.max_degree(), 2);
  EXPECT_DOUBLE_EQ(g.average_degree(), 1.0);
}

TEST(Graph, RejectsSelfLoopAndOutOfRange) {
  Graph g(2);
  EXPECT_THROW(g.add_edge(0, 0), std::logic_error);
  EXPECT_THROW(g.add_edge(0, 5), std::logic_error);
}

TEST(Graph, NeighborsSorted) {
  Graph g(5);
  g.add_edge(2, 4);
  g.add_edge(2, 0);
  g.add_edge(2, 3);
  const auto& nb = g.neighbors(2);
  EXPECT_TRUE(std::is_sorted(nb.begin(), nb.end()));
  EXPECT_EQ(nb.size(), 3u);
}

TEST(Graph, Connectivity) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  EXPECT_FALSE(g.is_connected());
  g.add_edge(1, 2);
  EXPECT_TRUE(g.is_connected());
  EXPECT_TRUE(Graph(1).is_connected());
  EXPECT_TRUE(Graph(0).is_connected());
}

TEST(Graph, IndependentSetCheck) {
  Graph g = path_graph(4);
  const std::vector<int> good{0, 2};
  const std::vector<int> bad{0, 1};
  const std::vector<int> dup{0, 0};
  EXPECT_TRUE(g.is_independent_set(good));
  EXPECT_FALSE(g.is_independent_set(bad));
  EXPECT_FALSE(g.is_independent_set(dup));
}

TEST(Hop, NeighborhoodsOnPath) {
  Graph g = path_graph(7);
  EXPECT_EQ(k_hop_neighborhood(g, 3, 0), (std::vector<int>{3}));
  EXPECT_EQ(k_hop_neighborhood(g, 3, 1), (std::vector<int>{2, 3, 4}));
  EXPECT_EQ(k_hop_neighborhood(g, 3, 2), (std::vector<int>{1, 2, 3, 4, 5}));
  EXPECT_EQ(k_hop_neighborhood(g, 0, 100).size(), 7u);
}

TEST(Hop, Distances) {
  Graph g = path_graph(6);
  EXPECT_EQ(hop_distance(g, 0, 5), 5);
  EXPECT_EQ(hop_distance(g, 2, 2), 0);
  EXPECT_EQ(hop_distance(g, 0, 5, 3), BfsScratch::unreachable());
  Graph h(3);
  h.add_edge(0, 1);
  EXPECT_EQ(hop_distance(h, 0, 2), BfsScratch::unreachable());
}

TEST(Hop, ScratchReuseConsistent) {
  Graph g = path_graph(50);
  BfsScratch scratch(g.size());
  for (int v = 0; v < g.size(); v += 7)
    for (int k = 0; k < 4; ++k)
      EXPECT_EQ(scratch.k_hop_neighborhood(g, v, k), k_hop_neighborhood(g, v, k));
}

TEST(Independence, SetWeight) {
  const std::vector<double> w{0.5, 1.5, 2.0};
  const std::vector<int> vs{0, 2};
  EXPECT_DOUBLE_EQ(set_weight(vs, w), 2.5);
}

TEST(Independence, MaximalSetsOfTriangle) {
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 2);
  std::vector<std::vector<int>> sets;
  EXPECT_TRUE(enumerate_maximal_independent_sets(g, 100, sets));
  ASSERT_EQ(sets.size(), 3u);  // each single vertex
  for (auto& s : sets) EXPECT_EQ(s.size(), 1u);
}

TEST(Independence, MaximalSetsOfPath4) {
  Graph g = path_graph(4);
  std::vector<std::vector<int>> sets;
  EXPECT_TRUE(enumerate_maximal_independent_sets(g, 100, sets));
  // Maximal ISs of P4: {0,2}, {0,3}, {1,3}.
  std::set<std::set<int>> got;
  for (auto& s : sets) got.insert(std::set<int>(s.begin(), s.end()));
  EXPECT_EQ(got, (std::set<std::set<int>>{{0, 2}, {0, 3}, {1, 3}}));
}

TEST(Independence, EnumerationCapTruncates) {
  Graph g(10);  // edgeless: exactly one maximal IS (everything)
  std::vector<std::vector<int>> sets;
  EXPECT_TRUE(enumerate_maximal_independent_sets(g, 5, sets));
  EXPECT_EQ(sets.size(), 1u);
  EXPECT_EQ(sets[0].size(), 10u);
}

TEST(Independence, IndependenceNumber) {
  EXPECT_EQ(independence_number(path_graph(5)), 3);
  Graph k4(4);
  for (int i = 0; i < 4; ++i)
    for (int j = i + 1; j < 4; ++j) k4.add_edge(i, j);
  EXPECT_EQ(independence_number(k4), 1);
  EXPECT_EQ(independence_number(Graph(6)), 6);
}

TEST(Induced, SubgraphStructure) {
  Graph g = path_graph(5);
  const std::vector<int> keep{0, 1, 3, 4};
  InducedSubgraph sub = induced_subgraph(g, keep);
  EXPECT_EQ(sub.graph.size(), 4);
  EXPECT_TRUE(sub.graph.has_edge(0, 1));   // 0-1
  EXPECT_TRUE(sub.graph.has_edge(2, 3));   // 3-4
  EXPECT_FALSE(sub.graph.has_edge(1, 2));  // 1-3 not an edge of P5
  EXPECT_EQ(sub.lift(std::vector<int>{2, 3}), (std::vector<int>{3, 4}));
}

TEST(Induced, RejectsDuplicates) {
  Graph g = path_graph(3);
  const std::vector<int> dup{0, 0};
  EXPECT_THROW(induced_subgraph(g, dup), std::logic_error);
}

TEST(ConflictGraph, UnitDiskEdges) {
  std::vector<Point> pts{{0, 0}, {1.5, 0}, {10, 0}};
  ConflictGraph cg = ConflictGraph::from_positions(pts, 2.0);
  EXPECT_TRUE(cg.graph().has_edge(0, 1));
  EXPECT_FALSE(cg.graph().has_edge(0, 2));
  EXPECT_TRUE(cg.has_positions());
  EXPECT_DOUBLE_EQ(cg.radius(), 2.0);
}

TEST(ConflictGraph, FromEdges) {
  ConflictGraph cg = ConflictGraph::from_edges(3, {{0, 1}, {1, 2}});
  EXPECT_EQ(cg.num_nodes(), 3);
  EXPECT_FALSE(cg.has_positions());
  EXPECT_TRUE(cg.graph().has_edge(1, 2));
}

// --- Extended conflict graph: the paper's Fig. 1 example (3 nodes in a
// triangle, 3 channels). ---
class ExtendedGraphFig1 : public ::testing::Test {
 protected:
  ExtendedGraphFig1()
      : cg_(ConflictGraph::from_edges(3, {{0, 1}, {0, 2}, {1, 2}})),
        h_(cg_, 3) {}
  ConflictGraph cg_;
  ExtendedConflictGraph h_;
};

TEST_F(ExtendedGraphFig1, Dimensions) {
  EXPECT_EQ(h_.num_vertices(), 9);
  EXPECT_EQ(h_.num_nodes(), 3);
  EXPECT_EQ(h_.num_channels(), 3);
}

TEST_F(ExtendedGraphFig1, MasterCliques) {
  for (int i = 0; i < 3; ++i)
    for (int j = 0; j < 3; ++j)
      for (int k = j + 1; k < 3; ++k)
        EXPECT_TRUE(
            h_.graph().has_edge(h_.vertex_of(i, j), h_.vertex_of(i, k)));
}

TEST_F(ExtendedGraphFig1, SameChannelConflictEdges) {
  for (int j = 0; j < 3; ++j) {
    EXPECT_TRUE(h_.graph().has_edge(h_.vertex_of(0, j), h_.vertex_of(1, j)));
    EXPECT_TRUE(h_.graph().has_edge(h_.vertex_of(1, j), h_.vertex_of(2, j)));
  }
  // Different channels of different nodes never conflict.
  EXPECT_FALSE(h_.graph().has_edge(h_.vertex_of(0, 0), h_.vertex_of(1, 1)));
}

TEST_F(ExtendedGraphFig1, VertexMapRoundTrip) {
  for (int i = 0; i < 3; ++i)
    for (int j = 0; j < 3; ++j) {
      const int v = h_.vertex_of(i, j);
      EXPECT_EQ(h_.master_of(v), i);
      EXPECT_EQ(h_.channel_of(v), j);
    }
}

TEST_F(ExtendedGraphFig1, StrategyConversion) {
  // Triangle with 3 channels: all three nodes can transmit on distinct
  // channels — an IS of size 3.
  const std::vector<int> is{h_.vertex_of(0, 0), h_.vertex_of(1, 1),
                            h_.vertex_of(2, 2)};
  EXPECT_TRUE(h_.graph().is_independent_set(is));
  const Strategy s = h_.to_strategy(is);
  EXPECT_EQ(s.channel_of_node, (std::vector<int>{0, 1, 2}));
  EXPECT_TRUE(h_.is_feasible(s));
  auto back = h_.to_vertices(s);
  std::sort(back.begin(), back.end());
  auto sorted = is;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(back, sorted);
}

TEST_F(ExtendedGraphFig1, InfeasibleStrategyDetected) {
  Strategy s;
  s.channel_of_node = {0, 0, 1};  // nodes 0,1 share channel 0 but conflict
  EXPECT_FALSE(h_.is_feasible(s));
}

TEST_F(ExtendedGraphFig1, ToStrategyRejectsTwoChannelsPerNode) {
  const std::vector<int> bad{h_.vertex_of(0, 0), h_.vertex_of(0, 1)};
  EXPECT_THROW(h_.to_strategy(bad), std::logic_error);
}

TEST(ExtendedGraph, IndependenceNumberMatchesTheory) {
  // Paper §III: the independence number of H is N when the chromatic number
  // of G is <= M, and < N otherwise.
  ConflictGraph triangle = ConflictGraph::from_edges(3, {{0, 1}, {0, 2}, {1, 2}});
  // Triangle needs 3 colors; with M = 2 < 3 not all nodes can transmit.
  ExtendedConflictGraph h2(triangle, 2);
  EXPECT_LT(independence_number(h2.graph()), 3);
  // With M = 3 all 3 can.
  ExtendedConflictGraph h3(triangle, 3);
  EXPECT_EQ(independence_number(h3.graph()), 3);
}

TEST(ExtendedGraph, GrowthBoundTheorem2) {
  // Theorem 2: independent vertices within J_{H,r}(v) <= M * (2r+1)^2.
  Rng rng(5);
  ConflictGraph cg = random_geometric_avg_degree(30, 5.0, rng);
  const int m_channels = 3;
  ExtendedConflictGraph ecg(cg, m_channels);
  const Graph& h = ecg.graph();
  for (int v = 0; v < h.size(); v += 9) {
    for (int r = 1; r <= 2; ++r) {
      const auto ball = k_hop_neighborhood(h, v, r);
      InducedSubgraph sub = induced_subgraph(h, ball);
      const int alpha = independence_number(sub.graph);
      EXPECT_LE(alpha, m_channels * (2 * r + 1) * (2 * r + 1));
    }
  }
}

TEST(Generators, LinearNetworkIsPath) {
  ConflictGraph cg = linear_network(6);
  EXPECT_EQ(cg.graph().num_edges(), 5);
  for (int i = 0; i + 1 < 6; ++i) EXPECT_TRUE(cg.graph().has_edge(i, i + 1));
  EXPECT_FALSE(cg.graph().has_edge(0, 2));
}

TEST(Generators, GridNetwork) {
  ConflictGraph cg = grid_network(3, 4);
  EXPECT_EQ(cg.num_nodes(), 12);
  // 4-neighborhood grid: edges = 3*(4-1) + 4*(3-1) = 17... rows*(cols-1) +
  // cols*(rows-1) = 9 + 8 = 17.
  EXPECT_EQ(cg.graph().num_edges(), 17);
  EXPECT_TRUE(cg.graph().is_connected());
}

TEST(Generators, CompleteNetwork) {
  ConflictGraph cg = complete_network(5);
  EXPECT_EQ(cg.graph().num_edges(), 10);
  EXPECT_EQ(independence_number(cg.graph()), 1);
}

TEST(Generators, RandomGeometricConnectedAndDegree) {
  Rng rng(1);
  ConflictGraph cg = random_geometric_avg_degree(100, 6.0, rng);
  EXPECT_TRUE(cg.graph().is_connected());
  // Expected degree ~6; allow broad tolerance (connectivity filter biases up).
  EXPECT_GT(cg.graph().average_degree(), 3.0);
  EXPECT_LT(cg.graph().average_degree(), 12.0);
}

TEST(Generators, ErdosRenyiDensity) {
  Rng rng(2);
  ConflictGraph cg = erdos_renyi(60, 0.2, rng);
  const double expected = 0.2 * 60 * 59 / 2;
  EXPECT_NEAR(static_cast<double>(cg.graph().num_edges()), expected,
              0.35 * expected);
}

TEST(Generators, Deterministic) {
  Rng a(9), b(9);
  ConflictGraph g1 = random_geometric_avg_degree(40, 5.0, a);
  ConflictGraph g2 = random_geometric_avg_degree(40, 5.0, b);
  EXPECT_EQ(g1.graph().num_edges(), g2.graph().num_edges());
}

// Property sweep: generated geometric graphs are valid unit-disk graphs.
class GeometricSweep : public ::testing::TestWithParam<int> {};

TEST_P(GeometricSweep, UnitDiskConsistency) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  ConflictGraph cg = random_geometric_avg_degree(50, 6.0, rng, false);
  const auto& pts = cg.positions();
  const double r2 = cg.radius() * cg.radius();
  for (int i = 0; i < cg.num_nodes(); ++i)
    for (int j = i + 1; j < cg.num_nodes(); ++j)
      EXPECT_EQ(cg.graph().has_edge(i, j),
                squared_distance(pts[static_cast<std::size_t>(i)],
                                 pts[static_cast<std::size_t>(j)]) <= r2);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeometricSweep, ::testing::Range(0, 8));

}  // namespace
}  // namespace mhca
