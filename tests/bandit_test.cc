// Tests for src/bandit: estimate updates (eqs. 5-6), the CAB index (eq. 3),
// LLR, UCB1, ε-greedy, the policy factory, and the naive strategy-as-arm
// baseline.
#include <gtest/gtest.h>

#include <cmath>

#include "bandit/cab.h"
#include "bandit/estimates.h"
#include "bandit/llr.h"
#include "bandit/naive_ucb.h"
#include "bandit/policy.h"
#include "bandit/simple_policies.h"
#include "util/rng.h"

namespace mhca {
namespace {

TEST(ArmEstimates, RunningMeanMatchesEq5And6) {
  ArmEstimates est(3);
  est.observe(1, 0.5);
  est.observe(1, 1.0);
  est.observe(1, 0.0);
  EXPECT_EQ(est.count(1), 3);
  EXPECT_NEAR(est.mean(1), 0.5, 1e-12);
  // Untouched arms stay at (0, 0) — the "else" branches of eqs. 5-6.
  EXPECT_EQ(est.count(0), 0);
  EXPECT_DOUBLE_EQ(est.mean(0), 0.0);
  EXPECT_EQ(est.total_plays(), 3);
}

TEST(ArmEstimates, BoundsChecked) {
  ArmEstimates est(2);
  EXPECT_THROW(est.observe(2, 0.5), std::logic_error);
  EXPECT_THROW(est.mean(-1), std::logic_error);
  EXPECT_THROW(ArmEstimates(0), std::logic_error);
}

TEST(UnplayedIndex, AboveRewardsAndDistinct) {
  const int K = 100;
  for (int k = 0; k < K; ++k) {
    EXPECT_GT(IndexPolicy::unplayed_index(k, K), 1.0);
    if (k > 0) {
      EXPECT_NE(IndexPolicy::unplayed_index(k, K),
                IndexPolicy::unplayed_index(k - 1, K));
    }
  }
}

TEST(CabIndex, MatchesEquation3) {
  CabIndexPolicy cab;
  const int K = 10;
  const double mean = 0.4;
  const std::int64_t m = 3;
  const std::int64_t t = 1000;
  const double inner = (2.0 / 3.0) * std::log(static_cast<double>(t)) -
                       std::log(static_cast<double>(K) * 3.0);
  const double expect = mean + std::sqrt(std::max(inner, 0.0) / 3.0);
  EXPECT_NEAR(cab.index_from(mean, m, 0, t, K), expect, 1e-12);
}

TEST(CabIndex, ClipsToZeroWhenWellSampled) {
  // For m >= t^{2/3}/K the logarithm is non-positive: pure exploitation.
  CabIndexPolicy cab;
  const int K = 10;
  const std::int64_t t = 1000;  // t^{2/3} = 100, threshold m = 10
  EXPECT_DOUBLE_EQ(cab.index_from(0.7, 50, 0, t, K), 0.7);
  // Just below the threshold there is still a positive bonus.
  EXPECT_GT(cab.index_from(0.7, 5, 0, t, K), 0.7);
}

TEST(CabIndex, UnplayedGetsOptimisticValue) {
  CabIndexPolicy cab;
  EXPECT_DOUBLE_EQ(cab.index_from(0.0, 0, 3, 10, 8),
                   IndexPolicy::unplayed_index(3, 8));
}

TEST(CabIndex, BonusDecreasesWithSamples) {
  CabIndexPolicy cab;
  const double b1 = cab.index_from(0.0, 1, 0, 10000, 5);
  const double b2 = cab.index_from(0.0, 4, 0, 10000, 5);
  const double b3 = cab.index_from(0.0, 16, 0, 10000, 5);
  EXPECT_GT(b1, b2);
  EXPECT_GT(b2, b3);
}

TEST(LlrIndex, MatchesFormula) {
  LlrIndexPolicy llr(15);  // L = 15
  const double mean = 0.3;
  const std::int64_t m = 4, t = 500;
  const double expect =
      mean + std::sqrt(16.0 * std::log(500.0) / 4.0);
  EXPECT_NEAR(llr.index_from(mean, m, 0, t, 45), expect, 1e-12);
  EXPECT_EQ(llr.max_strategy_len(), 15);
}

TEST(LlrIndex, BonusGrowsWithL) {
  LlrIndexPolicy small(2), big(50);
  EXPECT_LT(small.index_from(0.0, 10, 0, 100, 10),
            big.index_from(0.0, 10, 0, 100, 10));
}

TEST(LlrIndex, LlrBonusDominatesCabLongRun) {
  // The paper's Fig. 8 hinges on this: LLR keeps over-estimating while the
  // CAB index converges to the sample mean.
  CabIndexPolicy cab;
  LlrIndexPolicy llr(100);
  const std::int64_t t = 10000, m = t / 20;
  EXPECT_DOUBLE_EQ(cab.index_from(0.5, m, 0, t, 1000), 0.5);
  EXPECT_GT(llr.index_from(0.5, m, 0, t, 1000), 0.9);
}

TEST(Ucb1Index, Formula) {
  Ucb1IndexPolicy ucb;
  const double expect = 0.2 + std::sqrt(2.0 * std::log(100.0) / 5.0);
  EXPECT_NEAR(ucb.index_from(0.2, 5, 0, 100, 10), expect, 1e-12);
}

TEST(GreedyIndex, PureExploitation) {
  GreedyIndexPolicy g;
  EXPECT_DOUBLE_EQ(g.index_from(0.42, 7, 0, 1000, 10), 0.42);
  EXPECT_GT(g.index_from(0.0, 0, 0, 1000, 10), 1.0);  // still explores new
}

TEST(EpsGreedy, RandomizationFrequency) {
  EpsilonGreedyIndexPolicy eps(0.25);
  Rng rng(3);
  int randomized = 0;
  const int trials = 10000;
  for (int t = 1; t <= trials; ++t)
    if (eps.randomize_round(t, rng)) ++randomized;
  EXPECT_NEAR(static_cast<double>(randomized) / trials, 0.25, 0.02);
  EXPECT_THROW(EpsilonGreedyIndexPolicy(1.5), std::logic_error);
}

TEST(Policies, NonEpsNeverRandomize) {
  CabIndexPolicy cab;
  Rng rng(1);
  for (int t = 1; t <= 100; ++t) EXPECT_FALSE(cab.randomize_round(t, rng));
}

TEST(Factory, BuildsEveryKind) {
  PolicyParams p;
  p.llr_max_strategy_len = 7;
  p.epsilon = 0.5;
  EXPECT_EQ(make_policy(PolicyKind::kCab, p)->name(), "CAB");
  EXPECT_EQ(make_policy(PolicyKind::kLlr, p)->name(), "LLR");
  EXPECT_EQ(make_policy(PolicyKind::kUcb1, p)->name(), "UCB1");
  EXPECT_EQ(make_policy(PolicyKind::kGreedy, p)->name(), "greedy-exploit");
  EXPECT_EQ(make_policy(PolicyKind::kEpsGreedy, p)->name(), "eps-greedy");
  EXPECT_EQ(to_string(PolicyKind::kCab), "CAB");
  EXPECT_EQ(to_string(PolicyKind::kLlr), "LLR");
}

TEST(Factory, ComputeIndicesFillsAllArms) {
  auto cab = make_policy(PolicyKind::kCab);
  ArmEstimates est(4);
  est.observe(0, 0.9);
  std::vector<double> w;
  cab->compute_indices(est, 10, w);
  ASSERT_EQ(w.size(), 4u);
  EXPECT_LT(w[0], w[1]);  // played arm has lower index than unplayed ones
}

TEST(NaiveUcb, ExploresAllArmsThenExploits) {
  // Three strategies with different deterministic rewards.
  NaiveStrategyUcb bandit({{0}, {1}, {2}});
  const std::vector<double> reward{0.1, 0.9, 0.5};
  std::int64_t t = 1;
  for (; t <= 3; ++t) {
    const int a = bandit.select(t);
    EXPECT_EQ(bandit.strategy(a).size(), 1u);
    bandit.observe(a, reward[static_cast<std::size_t>(a)]);
  }
  // After enough rounds the best arm dominates the play counts.
  int best_plays = 0;
  for (; t <= 400; ++t) {
    const int a = bandit.select(t);
    bandit.observe(a, reward[static_cast<std::size_t>(a)]);
    if (a == 1) ++best_plays;
  }
  EXPECT_GT(best_plays, 250);
}

TEST(NaiveUcb, MemoryGrowsWithStrategyCount) {
  NaiveStrategyUcb small({{0}, {1}});
  std::vector<std::vector<int>> many;
  for (int i = 0; i < 100; ++i) many.push_back({i, i + 1, i + 2});
  NaiveStrategyUcb big(std::move(many));
  EXPECT_GT(big.memory_bytes(), small.memory_bytes());
  EXPECT_EQ(big.num_arms(), 100);
}

}  // namespace
}  // namespace mhca
