// Fuzz + property tests for the wire codec (src/net/wire.h).
//
// The contract under test:
//   * round trip — decode(encode(msg)) == msg, field for field, for every
//     message type across 1000+ random messages each, including extreme
//     payloads (empty and huge neighbor lists, negative rounds, max
//     ViewIds, NaN-free but denormal/infinite means);
//   * rejection — truncated, oversized, bit-mutated, bad-magic and
//     unknown-version buffers raise WireError with an actionable message
//     and never read out of bounds (this suite runs under ASan/UBSan in
//     CI's sanitizer job — see .github/workflows/ci.yml);
//   * encoded_size discipline — encode produces exactly encoded_size(msg)
//     bytes for every generated message.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "net/message.h"
#include "net/wire.h"
#include "util/rng.h"

namespace mhca {
namespace {

using net::Message;
using net::MsgType;
using net::StatusEntry;
namespace wire = net::wire;

bool same_message(const Message& a, const Message& b) {
  if (a.type != b.type || a.origin != b.origin || a.round != b.round)
    return false;
  if (a.view.seq != b.view.seq ||
      a.view.representative != b.view.representative)
    return false;
  const bool hello_like =
      a.type == MsgType::kHello || a.type == MsgType::kViewChange;
  if (hello_like) {
    // Bit-exact double comparison: the codec moves the f64 bit pattern,
    // not a rounded value.
    std::uint64_t am, bm;
    static_assert(sizeof(am) == sizeof(a.mean));
    __builtin_memcpy(&am, &a.mean, sizeof(am));
    __builtin_memcpy(&bm, &b.mean, sizeof(bm));
    if (am != bm || a.count != b.count || a.solicit != b.solicit ||
        a.probe_target != b.probe_target ||
        a.neighbor_list != b.neighbor_list)
      return false;
  }
  if (a.type == MsgType::kWeightUpdate &&
      (a.mean != b.mean || a.count != b.count))
    return false;
  if (a.type == MsgType::kDetermination) {
    if (a.statuses.size() != b.statuses.size()) return false;
    for (std::size_t i = 0; i < a.statuses.size(); ++i)
      if (a.statuses[i].vertex != b.statuses[i].vertex ||
          a.statuses[i].status != b.statuses[i].status)
        return false;
  }
  return true;
}

Message random_message(MsgType type, Rng& rng, bool extreme) {
  Message m;
  m.type = type;
  m.origin = static_cast<int>(rng.uniform_int(0, 1 << 20));
  m.round = extreme && rng.bernoulli(0.3)
                ? std::numeric_limits<std::int64_t>::min() +
                      rng.uniform_int(0, 10)
                : rng.uniform_int(-1000, 1'000'000);
  if (rng.bernoulli(0.5)) {
    m.view.seq = extreme ? std::numeric_limits<std::int64_t>::max() -
                               rng.uniform_int(0, 10)
                         : rng.uniform_int(0, 1 << 30);
    m.view.representative = static_cast<int>(rng.uniform_int(-1, 1 << 20));
  }
  if (type == MsgType::kHello || type == MsgType::kViewChange) {
    m.mean = extreme && rng.bernoulli(0.2)
                 ? std::numeric_limits<double>::infinity()
                 : rng.uniform(-1e9, 1e9);
    m.count = rng.uniform_int(0, 1 << 30);
    m.solicit = rng.bernoulli(0.5);
    m.probe_target = static_cast<int>(rng.uniform_int(-1, 1 << 16));
    const int n = extreme ? (rng.bernoulli(0.5)
                                 ? 0
                                 : static_cast<int>(rng.uniform_int(0, 5000)))
                          : static_cast<int>(rng.uniform_int(0, 32));
    m.neighbor_list.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
      m.neighbor_list.push_back(
          static_cast<int>(rng.uniform_int(-5, 1 << 24)));
  } else if (type == MsgType::kWeightUpdate) {
    m.mean = rng.uniform(0.0, 1.0);
    m.count = extreme ? std::numeric_limits<std::int64_t>::max()
                      : rng.uniform_int(0, 1 << 30);
  } else if (type == MsgType::kDetermination) {
    const int n = extreme ? (rng.bernoulli(0.5)
                                 ? 0
                                 : static_cast<int>(rng.uniform_int(0, 3000)))
                          : static_cast<int>(rng.uniform_int(0, 24));
    m.statuses.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      StatusEntry e;
      e.vertex = static_cast<int>(rng.uniform_int(-1, 1 << 24));
      e.status = static_cast<VertexStatus>(rng.uniform_int(0, 2));
      m.statuses.push_back(e);
    }
  }
  return m;
}

constexpr MsgType kAllTypes[] = {
    MsgType::kHello, MsgType::kWeightUpdate, MsgType::kLeaderDeclare,
    MsgType::kDetermination, MsgType::kViewChange};

TEST(WireRoundTrip, ThousandRandomMessagesPerType) {
  Rng rng(0xF00D5EED);
  std::vector<std::uint8_t> buf;
  for (MsgType type : kAllTypes) {
    for (int i = 0; i < 1100; ++i) {
      const Message m = random_message(type, rng, /*extreme=*/i % 10 == 0);
      wire::encode(m, buf);
      ASSERT_EQ(buf.size(), wire::encoded_size(m));
      const Message back = wire::decode(buf.data(), buf.size());
      ASSERT_TRUE(same_message(m, back))
          << "round trip changed a type-"
          << static_cast<int>(type) << " message (iteration " << i << ")";
    }
  }
}

TEST(WireRoundTrip, ExtremePayloadsSurvive) {
  std::vector<std::uint8_t> buf;
  Message m;
  m.type = MsgType::kHello;
  m.origin = 0;
  m.round = std::numeric_limits<std::int64_t>::min();
  m.view.seq = std::numeric_limits<std::int64_t>::max();
  m.view.representative = std::numeric_limits<int>::max();
  m.mean = -std::numeric_limits<double>::infinity();
  m.count = std::numeric_limits<std::int64_t>::max();
  m.neighbor_list.assign(50'000, std::numeric_limits<int>::min());
  wire::encode(m, buf);
  EXPECT_EQ(buf.size(), wire::encoded_size(m));
  EXPECT_TRUE(same_message(m, wire::decode(buf.data(), buf.size())));

  Message det;
  det.type = MsgType::kDetermination;
  det.origin = 7;
  det.statuses.clear();  // empty verdict list is legal
  wire::encode(det, buf);
  EXPECT_TRUE(same_message(det, wire::decode(buf.data(), buf.size())));
}

TEST(WireRoundTrip, EveryTruncationIsRejectedWithoutUb) {
  Rng rng(0xCAFE);
  std::vector<std::uint8_t> buf;
  for (MsgType type : kAllTypes) {
    const Message m = random_message(type, rng, /*extreme=*/false);
    wire::encode(m, buf);
    // Every proper prefix must throw — never crash, never read past len.
    for (std::size_t len = 0; len < buf.size(); ++len)
      EXPECT_THROW((void)wire::decode(buf.data(), len), wire::WireError)
          << "prefix of " << len << " bytes decoded without error";
    // Trailing garbage must throw too (payload_len no longer matches).
    std::vector<std::uint8_t> longer = buf;
    longer.push_back(0xAB);
    EXPECT_THROW((void)wire::decode(longer.data(), longer.size()),
                 wire::WireError);
  }
}

TEST(WireRoundTrip, MutatedHeadersAreRejected) {
  Rng rng(0xBEEF);
  std::vector<std::uint8_t> buf;
  const Message m = random_message(MsgType::kHello, rng, false);
  wire::encode(m, buf);

  auto mutated = [&](std::size_t pos, std::uint8_t val) {
    std::vector<std::uint8_t> b = buf;
    b[pos] = val;
    return b;
  };
  // Bad magic.
  auto bad_magic = mutated(0, 0x00);
  EXPECT_THROW((void)wire::decode(bad_magic.data(), bad_magic.size()),
               wire::WireError);
  // Unknown version: the versioning rule — any payload change bumps
  // wire::kVersion, and decoders refuse versions they do not speak.
  auto bad_version = mutated(2, wire::kVersion + 1);
  EXPECT_THROW((void)wire::decode(bad_version.data(), bad_version.size()),
               wire::WireError);
  // Unknown message type.
  auto bad_type = mutated(3, 0x7F);
  EXPECT_THROW((void)wire::decode(bad_type.data(), bad_type.size()),
               wire::WireError);
  // Lying payload_len (offset 28, little-endian u32).
  auto bad_len = mutated(28, static_cast<std::uint8_t>(buf[28] ^ 0xFF));
  EXPECT_THROW((void)wire::decode(bad_len.data(), bad_len.size()),
               wire::WireError);
}

TEST(WireRoundTrip, RandomMutationsNeverCrash) {
  Rng rng(0xD00F);
  std::vector<std::uint8_t> buf;
  std::int64_t rejected = 0, survived = 0;
  for (int i = 0; i < 4000; ++i) {
    const auto type =
        kAllTypes[static_cast<std::size_t>(rng.uniform_int(0, 4))];
    const Message m = random_message(type, rng, /*extreme=*/false);
    wire::encode(m, buf);
    // Flip 1-4 random bytes anywhere in the buffer; decode must either
    // throw WireError or return a (possibly different) message — anything
    // but UB. ASan/UBSan make "anything but" checkable.
    const int flips = 1 + static_cast<int>(rng.uniform_int(0, 3));
    for (int f = 0; f < flips; ++f) {
      const auto pos = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<int>(buf.size()) - 1));
      buf[pos] ^= static_cast<std::uint8_t>(1 + rng.uniform_int(0, 254));
    }
    Message out;
    std::string error;
    if (wire::try_decode(buf.data(), buf.size(), out, &error)) {
      ++survived;  // mutation hit a don't-care bit or a value field
    } else {
      ++rejected;
      EXPECT_FALSE(error.empty());
    }
  }
  // The corpus must actually exercise the rejection paths.
  EXPECT_GT(rejected, 100);
  EXPECT_GT(survived, 100);
}

TEST(WireRoundTrip, ArbitraryNoiseBuffersNeverCrash) {
  Rng rng(0x9015E);
  for (int i = 0; i < 4000; ++i) {
    std::vector<std::uint8_t> noise(
        static_cast<std::size_t>(rng.uniform_int(0, 300)));
    for (auto& b : noise)
      b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    // Make a fraction look plausible so decoding gets past the header
    // checks and into the payload readers.
    if (noise.size() >= wire::kHeaderSize && rng.bernoulli(0.5)) {
      noise[0] = static_cast<std::uint8_t>(wire::kMagic);
      noise[1] = static_cast<std::uint8_t>(wire::kMagic >> 8);
      noise[2] = wire::kVersion;
      noise[3] = static_cast<std::uint8_t>(
          rng.uniform_int(0, net::kNumMsgTypes - 1));
    }
    Message out;
    (void)wire::try_decode(noise.data(), noise.size(), out, nullptr);
  }
}

TEST(WireRoundTrip, ErrorMessagesNameTheProblem) {
  Rng rng(1);
  std::vector<std::uint8_t> buf;
  const Message m = random_message(MsgType::kDetermination, rng, false);
  wire::encode(m, buf);

  try {
    (void)wire::decode(buf.data(), 10);
    FAIL() << "10-byte prefix decoded";
  } catch (const wire::WireError& e) {
    EXPECT_NE(std::string(e.what()).find("truncated"), std::string::npos);
  }
  buf[2] = 99;  // version
  try {
    (void)wire::decode(buf.data(), buf.size());
    FAIL() << "version 99 decoded";
  } catch (const wire::WireError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("version"), std::string::npos);
    EXPECT_NE(what.find("99"), std::string::npos);
  }
}

TEST(WireRoundTrip, LyingElementCountIsRejectedBeforeAllocating) {
  // A determination claiming 2^31 statuses in a 40-byte buffer must be
  // rejected by the count-vs-remaining guard, not by an OOM reserve.
  Message m;
  m.type = MsgType::kDetermination;
  m.origin = 1;
  std::vector<std::uint8_t> buf;
  wire::encode(m, buf);
  // Overwrite the payload's n_statuses (first 4 payload bytes) with a huge
  // count, keeping the buffer size (and header payload_len) unchanged.
  buf[wire::kHeaderSize + 0] = 0xFF;
  buf[wire::kHeaderSize + 1] = 0xFF;
  buf[wire::kHeaderSize + 2] = 0xFF;
  buf[wire::kHeaderSize + 3] = 0x7F;
  try {
    (void)wire::decode(buf.data(), buf.size());
    FAIL() << "lying element count decoded";
  } catch (const wire::WireError& e) {
    EXPECT_NE(std::string(e.what()).find("n_statuses"), std::string::npos);
  }
}

TEST(WireRoundTrip, FragmentsOfMatchesCeilDivision) {
  // mtu 128 leaves 104 payload bytes per datagram (24-byte header).
  EXPECT_EQ(wire::fragments_of(0, 128), 1);
  EXPECT_EQ(wire::fragments_of(104, 128), 1);
  EXPECT_EQ(wire::fragments_of(105, 128), 2);
  EXPECT_EQ(wire::fragments_of(1376, wire::kDefaultMtu), 1);
  EXPECT_EQ(wire::fragments_of(1377, wire::kDefaultMtu), 2);
}

}  // namespace
}  // namespace mhca
