// Tests for the extension modules: graph coloring (§III chromatic-number
// remark), Gilbert–Elliott Markov channels, trace replay, CSV export,
// multi-seed replication, and the lossy control channel (failure
// injection).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>

#include "channel/gaussian.h"
#include "channel/markov.h"
#include "channel/trace.h"
#include "graph/coloring.h"
#include "graph/extended_graph.h"
#include "graph/generators.h"
#include "graph/independence.h"
#include "net/runtime.h"
#include "sim/export.h"
#include "sim/replication.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace mhca {
namespace {

// ---------- Coloring ----------

TEST(Coloring, ProperOnRandomGraphs) {
  Rng rng(1);
  for (int seed = 0; seed < 5; ++seed) {
    ConflictGraph cg = erdos_renyi(40, 0.15, rng);
    const auto coloring = welsh_powell_coloring(cg.graph());
    EXPECT_TRUE(is_proper_coloring(cg.graph(), coloring));
    EXPECT_LE(num_colors(coloring), cg.graph().max_degree() + 1);
  }
}

TEST(Coloring, PathNeedsTwoColors) {
  ConflictGraph path = linear_network(7);
  const auto coloring = welsh_powell_coloring(path.graph());
  EXPECT_TRUE(is_proper_coloring(path.graph(), coloring));
  EXPECT_EQ(num_colors(coloring), 2);
}

TEST(Coloring, CompleteGraphNeedsN) {
  ConflictGraph k5 = complete_network(5);
  const auto coloring = welsh_powell_coloring(k5.graph());
  EXPECT_EQ(num_colors(coloring), 5);
}

TEST(Coloring, RejectsBadOrder) {
  Graph g(3);
  const std::vector<int> short_order{0, 1};
  EXPECT_THROW(greedy_coloring(g, short_order), std::logic_error);
  const std::vector<int> dup_order{0, 1, 1};
  EXPECT_THROW(greedy_coloring(g, dup_order), std::logic_error);
}

TEST(Coloring, ChromaticBoundImpliesFullIndependenceNumberOfH) {
  // §III: if G is M-colorable then every node can transmit, i.e. the
  // independence number of H equals N.
  Rng rng(2);
  ConflictGraph cg = random_geometric_avg_degree(12, 3.0, rng, false);
  const auto coloring = welsh_powell_coloring(cg.graph());
  const int m = num_colors(coloring);
  ExtendedConflictGraph ecg(cg, m);
  EXPECT_EQ(independence_number(ecg.graph()), cg.num_nodes());
}

// ---------- Gilbert–Elliott Markov channel ----------

TEST(Markov, DeterministicAndTwoValued) {
  Rng rng(3);
  GilbertElliottChannelModel m(3, 2, rng);
  for (int t = 1; t <= 50; ++t) {
    const double a = m.sample(1, 1, t);
    EXPECT_EQ(a, m.sample(1, 1, t));  // stateless w.r.t. call order
    EXPECT_GE(a, 0.0);
    EXPECT_LE(a, 1.0);
  }
}

TEST(Markov, StationaryOccupancyMatchesTheory) {
  Rng rng(4);
  GilbertElliottChannelModel m(1, 1, rng);
  const double pi_good = m.stationary_good(0, 0);
  int good = 0;
  const int trials = 30000;
  for (int t = 1; t <= trials; ++t)
    if (m.in_good_state(0, 0, t)) ++good;
  EXPECT_NEAR(static_cast<double>(good) / trials, pi_good, 0.03);
}

TEST(Markov, EmpiricalMeanMatchesMarginal) {
  Rng rng(5);
  GilbertElliottChannelModel m(2, 2, rng);
  double sum = 0.0;
  const int trials = 30000;
  for (int t = 1; t <= trials; ++t) sum += m.sample(0, 1, t);
  EXPECT_NEAR(sum / trials, m.mean(0, 1, 1), 0.02);
}

TEST(Markov, StatesAreCorrelatedAcrossSlots) {
  // Transition prob << 1/2 means consecutive states agree far more often
  // than independent draws would.
  Rng rng(6);
  GilbertElliottChannelModel m(1, 1, rng, 0.2, 0.05, 0.1);
  int agree = 0;
  const int trials = 5000;
  for (int t = 1; t < trials; ++t)
    if (m.in_good_state(0, 0, t) == m.in_good_state(0, 0, t + 1)) ++agree;
  EXPECT_GT(static_cast<double>(agree) / trials, 0.8);
}

TEST(Markov, LearningStillFindsGoodChannels) {
  Rng rng(7);
  ConflictGraph cg = random_geometric_avg_degree(8, 3.0, rng);
  ExtendedConflictGraph ecg(cg, 3);
  GilbertElliottChannelModel model(8, 3, rng);
  auto policy = make_policy(PolicyKind::kCab);
  SimulationConfig cfg;
  cfg.slots = 800;
  const SimulationResult res = Simulator(ecg, model, *policy, cfg).run();
  EXPECT_GT(res.total_expected, 0.0);
  EXPECT_TRUE(ecg.graph().is_independent_set(res.last_strategy));
}

// ---------- Trace replay ----------

TEST(Trace, ReplaysAndWraps) {
  // 2 slots of trace for 1 node, 2 channels.
  TraceChannelModel m(1, 2, {{0.1, 0.2}, {0.3, 0.4}});
  EXPECT_EQ(m.trace_length(), 2);
  EXPECT_DOUBLE_EQ(m.sample(0, 0, 1), 0.1);
  EXPECT_DOUBLE_EQ(m.sample(0, 1, 2), 0.4);
  EXPECT_DOUBLE_EQ(m.sample(0, 0, 3), 0.1);  // wrap-around
  EXPECT_DOUBLE_EQ(m.mean(0, 0, 1), 0.2);    // empirical mean
}

TEST(Trace, ValidatesInput) {
  EXPECT_THROW(TraceChannelModel(1, 2, {}), std::logic_error);
  EXPECT_THROW(TraceChannelModel(1, 2, {{0.1}}), std::logic_error);
  EXPECT_THROW(TraceChannelModel(1, 1, {{1.5}}), std::logic_error);
}

TEST(Trace, RecordedTraceReproducesSourceSamples) {
  Rng rng(8);
  GaussianChannelModel src(3, 2, rng);
  TraceChannelModel trace = record_trace(src, 20);
  for (std::int64_t t = 1; t <= 20; ++t)
    for (int i = 0; i < 3; ++i)
      for (int j = 0; j < 2; ++j)
        EXPECT_DOUBLE_EQ(trace.sample(i, j, t), src.sample(i, j, t));
}

TEST(Trace, DrivesSimulationLikeSource) {
  Rng rng(9);
  ConflictGraph cg = random_geometric_avg_degree(6, 3.0, rng);
  ExtendedConflictGraph ecg(cg, 2);
  GaussianChannelModel src(6, 2, rng);
  TraceChannelModel trace = record_trace(src, 100);
  auto p1 = make_policy(PolicyKind::kCab);
  auto p2 = make_policy(PolicyKind::kCab);
  SimulationConfig cfg;
  cfg.slots = 100;
  const SimulationResult a = Simulator(ecg, src, *p1, cfg).run();
  const SimulationResult b = Simulator(ecg, trace, *p2, cfg).run();
  // Identical observed rewards within the recorded horizon -> identical run.
  EXPECT_DOUBLE_EQ(a.total_observed, b.total_observed);
  EXPECT_EQ(a.last_strategy, b.last_strategy);
}

// ---------- CSV export ----------

TEST(Export, WritesSeriesFile) {
  Rng rng(10);
  ConflictGraph cg = random_geometric_avg_degree(6, 3.0, rng);
  ExtendedConflictGraph ecg(cg, 2);
  GaussianChannelModel model(6, 2, rng);
  auto policy = make_policy(PolicyKind::kCab);
  SimulationConfig cfg;
  cfg.slots = 50;
  cfg.series_stride = 10;
  const SimulationResult res = Simulator(ecg, model, *policy, cfg).run();

  const std::string path = "/tmp/mhca_export_test.csv";
  ASSERT_TRUE(export_series_csv(res, path, kRateScaleKbps));
  std::ifstream in(path);
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header,
            "slot,cumavg_effective,cumavg_estimated,cumavg_observed,"
            "cum_expected");
  int rows = 0;
  std::string line;
  while (std::getline(in, line))
    if (!line.empty()) ++rows;
  EXPECT_EQ(rows, static_cast<int>(res.slots.size()));
  std::remove(path.c_str());
}

// ---------- Replication ----------

TEST(Replication, AggregatesAcrossSeeds) {
  Rng topo_rng(11);
  ConflictGraph cg = random_geometric_avg_degree(8, 3.0, topo_rng);
  ExtendedConflictGraph ecg(cg, 2);
  auto experiment = [&](std::uint64_t seed) {
    Rng rng(seed);
    GaussianChannelModel model(8, 2, rng);
    auto policy = make_policy(PolicyKind::kCab);
    SimulationConfig cfg;
    cfg.slots = 100;
    return Simulator(ecg, model, *policy, cfg).run();
  };
  const ReplicationReport report = replicate(experiment, 5);
  EXPECT_EQ(report.replications, 5);
  EXPECT_EQ(report.metric("expected_rate").count, 5);
  EXPECT_GT(report.metric("expected_rate").mean, 0.0);
  EXPECT_GT(report.metric("effective_rate").mean, 0.0);
  // Different seeds -> genuinely different draws -> nonzero spread.
  EXPECT_GT(report.metric("expected_rate").stddev, 0.0);
  EXPECT_THROW(report.metric("no-such-metric"), std::logic_error);
  EXPECT_THROW(replicate(experiment, 0), std::logic_error);
}

// ---------- Lossy control channel ----------

TEST(LossyChannel, ZeroLossMatchesReliable) {
  Rng rng(12);
  ConflictGraph cg = random_geometric_avg_degree(10, 3.5, rng);
  ExtendedConflictGraph ecg(cg, 2);
  GaussianChannelModel model(10, 2, rng);
  net::NetConfig reliable;
  net::NetConfig lossy0;
  lossy0.drop_prob = 0.0;
  net::DistributedRuntime a(ecg, model, reliable);
  net::DistributedRuntime b(ecg, model, lossy0);
  for (int t = 0; t < 5; ++t) {
    const auto ra = a.step();
    const auto rb = b.step();
    EXPECT_EQ(ra.strategy, rb.strategy);
    EXPECT_FALSE(ra.conflict);
  }
}

TEST(LossyChannel, DropsAreCountedAndDegradeTheProtocol) {
  Rng rng(13);
  ConflictGraph cg = random_geometric_avg_degree(12, 4.0, rng);
  ExtendedConflictGraph ecg(cg, 3);
  GaussianChannelModel model(12, 3, rng);
  net::NetConfig cfg;
  cfg.drop_prob = 0.4;
  cfg.drop_seed = 99;
  net::DistributedRuntime rt(ecg, model, cfg);
  int conflicts = 0;
  for (int t = 0; t < 12; ++t)
    if (rt.step().conflict) ++conflicts;
  EXPECT_GT(rt.channel_stats().drops, 0);
  // With 40% reception loss the independence guarantee must break at least
  // once over 12 rounds on this seed (deterministic given seeds).
  EXPECT_GT(conflicts, 0);
}

TEST(LossyChannel, MildLossKeepsMostOfTheStrategyConflictFree) {
  Rng rng(14);
  ConflictGraph cg = random_geometric_avg_degree(10, 3.0, rng);
  ExtendedConflictGraph ecg(cg, 2);
  GaussianChannelModel model(10, 2, rng);
  net::NetConfig cfg;
  cfg.drop_prob = 0.02;
  cfg.drop_seed = 7;
  net::DistributedRuntime rt(ecg, model, cfg);
  std::int64_t conflicting_pairs = 0, winners = 0;
  for (int t = 0; t < 10; ++t) {
    const auto res = rt.step();
    winners += static_cast<std::int64_t>(res.strategy.size());
    for (std::size_t i = 0; i < res.strategy.size(); ++i)
      for (std::size_t j = i + 1; j < res.strategy.size(); ++j)
        if (ecg.graph().has_edge(res.strategy[i], res.strategy[j]))
          ++conflicting_pairs;
    EXPECT_FALSE(res.strategy.empty());
  }
  // A 2% reception-loss rate corrupts only a small fraction of the
  // schedule: well under one conflicting pair per five winners.
  EXPECT_GT(winners, 0);
  EXPECT_LT(static_cast<double>(conflicting_pairs),
            0.2 * static_cast<double>(winners));
}

TEST(LossyChannel, RejectsInvalidProbability) {
  Graph g(3);
  EXPECT_THROW(net::ControlChannel(g, 1.0), std::logic_error);
  EXPECT_THROW(net::ControlChannel(g, -0.1), std::logic_error);
}

}  // namespace
}  // namespace mhca
