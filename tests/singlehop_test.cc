// Single-hop reduction tests: when the conflict graph is complete (every
// pair of users conflicts), the multi-hop formulation collapses to the
// classic multi-user MAB of the paper's related work [1]-[7]: at most one
// user per channel, at most min(N, M) transmitters per slot. The general
// machinery must reproduce that special case exactly. Also includes
// Thompson-sampling extension tests (deterministic posterior draws).
#include <gtest/gtest.h>

#include <set>

#include "bandit/thompson.h"
#include "channel/gaussian.h"
#include "core/channel_access.h"
#include "graph/extended_graph.h"
#include "graph/generators.h"
#include "graph/independence.h"
#include "sim/optimum.h"
#include "sim/simulator.h"
#include "util/rng.h"
#include "util/stats.h"

namespace mhca {
namespace {

TEST(SingleHop, IndependenceNumberIsMinNM) {
  for (int n : {3, 5, 8}) {
    for (int m : {1, 2, 4, 10}) {
      ConflictGraph cg = complete_network(n);
      ExtendedConflictGraph ecg(cg, m);
      EXPECT_EQ(independence_number(ecg.graph()), std::min(n, m))
          << "n=" << n << " m=" << m;
    }
  }
}

TEST(SingleHop, StrategyNeverReusesAChannel) {
  Rng rng(5);
  ConflictGraph cg = complete_network(6);
  ChannelAccessConfig cfg;
  cfg.num_channels = 4;
  ChannelAccessScheme scheme(cg, cfg);
  GaussianChannelModel model(6, 4, rng);
  for (std::int64_t t = 1; t <= 30; ++t) {
    const Strategy& s = scheme.decide();
    std::set<int> used;
    int transmitters = 0;
    for (int node = 0; node < 6; ++node) {
      const int c = s.channel_of_node[static_cast<std::size_t>(node)];
      if (c == Strategy::kNoChannel) continue;
      ++transmitters;
      EXPECT_TRUE(used.insert(c).second)
          << "channel " << c << " assigned twice in a single-hop network";
      scheme.report(node, model.sample(node, c, t));
    }
    EXPECT_LE(transmitters, 4);  // min(N, M)
  }
}

TEST(SingleHop, OptimumIsAssignmentOfBestUsersToChannels) {
  // With N = 2 users, M = 2 channels, complete conflicts: the optimum is
  // the best perfect matching of users to channels.
  ConflictGraph cg = complete_network(2);
  ExtendedConflictGraph ecg(cg, 2);
  // Means (kbps): user0: {900, 300}, user1: {600, 450}.
  GaussianChannelModel model(2, 2, {900, 300, 600, 450}, 0.0, 1);
  const OptimumInfo opt = compute_optimum(ecg, model);
  ASSERT_TRUE(opt.exact);
  // Matching u0->c0 (900) + u1->c1 (450) = 1350 beats u0->c1 + u1->c0 = 900.
  EXPECT_NEAR(opt.weight, 1350.0 / kRateScaleKbps, 1e-9);
}

TEST(SingleHop, LearningConvergesToBestMatching) {
  ConflictGraph cg = complete_network(2);
  ExtendedConflictGraph ecg(cg, 2);
  GaussianChannelModel model(2, 2, {900, 300, 600, 450}, 0.02, 3);
  auto policy = make_policy(PolicyKind::kCab);
  SimulationConfig cfg;
  cfg.slots = 600;
  const SimulationResult res = Simulator(ecg, model, *policy, cfg).run();
  // Final strategy = the optimal matching.
  const Strategy s = ecg.to_strategy(res.last_strategy);
  EXPECT_EQ(s.channel_of_node, (std::vector<int>{0, 1}));
}

TEST(SingleHop, MoreUsersThanChannelsLeavesSomeSilent) {
  Rng rng(6);
  ConflictGraph cg = complete_network(7);
  ExtendedConflictGraph ecg(cg, 3);
  GaussianChannelModel model(7, 3, rng);
  auto policy = make_policy(PolicyKind::kCab);
  SimulationConfig cfg;
  cfg.slots = 100;
  const SimulationResult res = Simulator(ecg, model, *policy, cfg).run();
  EXPECT_LE(res.avg_strategy_size, 3.0 + 1e-9);
  EXPECT_GT(res.avg_strategy_size, 1.0);
}

// ---------- Thompson extension ----------

TEST(Thompson, DeterministicGivenInputs) {
  ThompsonIndexPolicy a(42), b(42), c(43);
  EXPECT_DOUBLE_EQ(a.index_from(0.5, 3, 1, 10, 8),
                   b.index_from(0.5, 3, 1, 10, 8));
  EXPECT_NE(a.index_from(0.5, 3, 1, 10, 8), c.index_from(0.5, 3, 1, 10, 8));
  // Fresh draw each round, per arm.
  EXPECT_NE(a.index_from(0.5, 3, 1, 10, 8), a.index_from(0.5, 3, 1, 11, 8));
  EXPECT_NE(a.index_from(0.5, 3, 1, 10, 8), a.index_from(0.5, 3, 2, 10, 8));
}

TEST(Thompson, PosteriorConcentratesWithSamples) {
  ThompsonIndexPolicy p(7);
  RunningStat few, many;
  for (std::int64_t t = 1; t <= 2000; ++t) {
    few.add(p.index_from(0.5, 2, 0, t, 8));
    many.add(p.index_from(0.5, 200, 0, t, 8));
  }
  EXPECT_NEAR(few.mean(), 0.5, 0.05);
  EXPECT_NEAR(many.mean(), 0.5, 0.01);
  EXPECT_GT(few.stddev(), 3.0 * many.stddev());
}

TEST(Thompson, UnplayedArmsExploredFirst) {
  ThompsonIndexPolicy p(7);
  EXPECT_GT(p.index_from(0.0, 0, 2, 5, 10), 1.0);
}

TEST(Thompson, WorksEndToEndAndLearns) {
  Rng rng(8);
  ConflictGraph cg = random_geometric_avg_degree(10, 3.5, rng);
  ExtendedConflictGraph ecg(cg, 3);
  GaussianChannelModel model(10, 3, rng);
  const OptimumInfo opt = compute_optimum(ecg, model);
  PolicyParams params;
  params.thompson_seed = 99;
  auto policy = make_policy(PolicyKind::kThompson, params);
  EXPECT_EQ(policy->name(), "Thompson");
  SimulationConfig cfg;
  cfg.slots = 1000;
  const SimulationResult res = Simulator(ecg, model, *policy, cfg).run();
  const double avg_expected =
      res.total_expected / static_cast<double>(res.total_slots);
  EXPECT_GT(avg_expected, 0.55 * opt.weight);
  EXPECT_TRUE(ecg.graph().is_independent_set(res.last_strategy));
}

TEST(Thompson, FactoryRoundTrip) {
  EXPECT_EQ(to_string(PolicyKind::kThompson), "Thompson");
  EXPECT_EQ(make_policy(PolicyKind::kThompson)->name(), "Thompson");
}

}  // namespace
}  // namespace mhca
