// Differential-testing harness for the branch-and-bound MWIS solver: every
// search mode must agree with exhaustive enumeration on hundreds of seeded
// random instances. This is the exactness proof backing the distributed
// PTAS's robustness argument (the paper's guarantees assume the local
// oracle is exact whenever it reports exact = true).
//
// Sweeps: graph density (Erdős–Rényi p in [0, 0.9] plus extended conflict
// graphs with per-master clique structure), weight distributions (uniform,
// exponential, heavy ties, mixed-sign), and candidate-subset shapes (full
// vertex set, random subsets, BFS balls, singletons). Modes: reuse_scratch
// on/off, enhanced search with and without reductions, and the memoized
// clique cover path.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "graph/extended_graph.h"
#include "graph/generators.h"
#include "graph/hop.h"
#include "graph/neighborhood_cache.h"
#include "mwis/branch_and_bound.h"
#include "mwis/brute_force.h"
#include "mwis/greedy.h"
#include "util/rng.h"

namespace mhca {
namespace {

struct Instance {
  Graph graph;
  std::vector<double> weights;
  std::vector<int> candidates;
  std::string tag;
};

/// Weight distribution by family index: continuous families exercise
/// unique-optimum instances, the tie family forces heavy degeneracy, the
/// mixed family adds non-positive weights (which the reductions drop).
double draw_weight(int family, Rng& rng) {
  switch (family) {
    case 0: return rng.uniform(0.01, 1.0);                       // uniform
    case 1: return -std::log(1.0 - rng.uniform(0.0, 0.999));     // exponential
    case 2: return 0.25 * (1 + static_cast<int>(rng.uniform() * 4));  // ties
    default: return rng.uniform(-0.4, 1.0);                      // mixed sign
  }
}

Instance make_instance(int trial, Rng& rng) {
  Instance inst;
  const int shape = trial % 3;
  if (shape == 2) {
    // Extended conflict graph: per-master channel cliques + conflict edges,
    // the structure the local solves actually see.
    const int users = 2 + static_cast<int>(rng.uniform() * 4);   // 2..5
    const int channels = 2 + trial % 2;                          // 2..3
    Rng topo(static_cast<std::uint64_t>(trial) * 13 + 7);
    ConflictGraph cg = erdos_renyi(users, rng.uniform() * 0.8, topo);
    ExtendedConflictGraph ecg(cg, channels);
    inst.graph = ecg.graph();
    inst.tag = "ecg";
  } else {
    const int n = 3 + static_cast<int>(rng.uniform() * 12);      // 3..14
    const double p = rng.uniform() * 0.9;
    Graph g(n);
    for (int i = 0; i < n; ++i)
      for (int j = i + 1; j < n; ++j)
        if (rng.uniform() < p) g.add_edge(i, j);
    if (shape == 0) g.finalize();  // shape 1 stays unfinalized (list path)
    inst.graph = std::move(g);
    inst.tag = shape == 0 ? "er-finalized" : "er-raw";
  }

  const int n = inst.graph.size();
  inst.weights.resize(static_cast<std::size_t>(n));
  const int family = trial % 4;
  for (auto& w : inst.weights) w = draw_weight(family, rng);

  // Candidate-subset shape.
  switch (trial % 4) {
    case 0:  // full vertex set
      for (int v = 0; v < n; ++v) inst.candidates.push_back(v);
      break;
    case 1: {  // random subset
      for (int v = 0; v < n; ++v)
        if (rng.uniform() < 0.7) inst.candidates.push_back(v);
      break;
    }
    case 2: {  // BFS ball around a random center
      BfsScratch scratch(n);
      const int center = static_cast<int>(rng.uniform() * n);
      inst.candidates = scratch.k_hop_neighborhood(inst.graph, center, 2);
      break;
    }
    default:  // singleton
      inst.candidates.push_back(static_cast<int>(rng.uniform() * n));
      break;
  }
  return inst;
}

/// A solve must report the weight of the set it returns, the set must be
/// independent and drawn from the candidates, and — when exact — the weight
/// must match exhaustive enumeration (continuous weights: up to summation
/// order; tie weights are exact dyadics, so equality is exact there too).
void check_result(const Instance& inst, const MwisResult& got,
                  const MwisResult& ref, const char* mode) {
  EXPECT_TRUE(got.exact) << mode << " " << inst.tag;
  EXPECT_TRUE(inst.graph.is_independent_set(got.vertices))
      << mode << " " << inst.tag;
  double set_weight = 0.0;
  for (int v : got.vertices) {
    set_weight += inst.weights[static_cast<std::size_t>(v)];
    EXPECT_TRUE(std::find(inst.candidates.begin(), inst.candidates.end(),
                          v) != inst.candidates.end())
        << mode << " returned non-candidate " << v;
  }
  EXPECT_NEAR(got.weight, set_weight, 1e-9) << mode << " " << inst.tag;
  EXPECT_NEAR(got.weight, ref.weight, 1e-9) << mode << " " << inst.tag;
}

TEST(MwisDifferential, AllModesMatchBruteForceOn600Instances) {
  Rng rng(20260728);
  BruteForceMwisSolver brute(24);
  BranchAndBoundMwisSolver reusing(5'000'000, /*reuse_scratch=*/true);
  BranchAndBoundMwisSolver fresh(5'000'000, /*reuse_scratch=*/false);
  SolveScratch scratch;
  std::vector<int> cover_ids;

  int solves = 0;
  for (int trial = 0; trial < 600; ++trial) {
    const Instance inst = make_instance(trial, rng);
    if (inst.candidates.empty()) continue;
    const MwisResult ref =
        brute.solve(inst.graph, inst.weights, inst.candidates);

    // The classic search is the frozen seed algorithm; like the seed greedy
    // it assumes the paper's positive index weights (it will happily keep a
    // negative-weight greedy seed), so the mixed-sign family exercises the
    // enhanced modes only.
    const bool classic_applicable = trial % 4 != 3;

    // Mode 1: reuse_scratch solver (enhanced search, internal scratch).
    check_result(inst,
                 reusing.solve(inst.graph, inst.weights, inst.candidates),
                 ref, "reuse");
    // Mode 2: fresh-allocation solver (classic seed search).
    if (classic_applicable)
      check_result(inst,
                   fresh.solve(inst.graph, inst.weights, inst.candidates),
                   ref, "fresh-classic");
    // Mode 3: enhanced without reductions.
    BnbSolveOptions no_red;
    no_red.use_reductions = false;
    check_result(inst,
                 reusing.solve_with_scratch(inst.graph, inst.weights,
                                            inst.candidates, scratch, no_red),
                 ref, "enhanced-no-reductions");
    // Mode 4: enhanced + reductions + memoized clique cover (ids built the
    // same way NeighborhoodCache memoizes them).
    BnbSolveOptions memo;
    memo.clique_id_bound = NeighborhoodCache::build_ball_cover(
        inst.graph, inst.candidates, cover_ids);
    memo.cand_clique_ids = cover_ids;
    check_result(inst,
                 reusing.solve_with_scratch(inst.graph, inst.weights,
                                            inst.candidates, scratch, memo),
                 ref, "enhanced-memo-cover");
    // Mode 5: classic search through explicit options + shared scratch.
    if (classic_applicable) {
      BnbSolveOptions classic;
      classic.enhanced = false;
      check_result(inst,
                   reusing.solve_with_scratch(inst.graph, inst.weights,
                                              inst.candidates, scratch,
                                              classic),
                   ref, "classic-scratch");
    }
    solves += classic_applicable ? 5 : 3;
  }
  // ≥500 instances × 5 modes actually ran (a few singleton draws may skip).
  EXPECT_GE(solves, 2500);
}

TEST(MwisDifferential, SparseRowGatherMatchesBruteForceBeyondMatrixLimit) {
  // Instances embedded in graphs past Graph::kAdjacencyMatrixLimit, where
  // the default gather reads sharded sparse rows. Each trial mirrors the
  // instance into a small dense-matrix graph for the brute-force reference
  // and cross-checks the sparse gather against the list-scan build (same
  // search tree, node counts included). Offsets place the instance across
  // the id range so block indexing and the candidate mask see high columns.
  const int big_n = Graph::kAdjacencyMatrixLimit + 64;
  Rng rng(8193);
  BruteForceMwisSolver brute(24);
  BranchAndBoundMwisSolver solver;
  SolveScratch scratch;

  for (int trial = 0; trial < 40; ++trial) {
    const int n = 4 + trial % 12;
    const int offset =
        (trial % 5) * ((big_n - n - 2) / 4);  // 0 .. near the top
    const double p = 0.15 + 0.2 * (trial % 4);
    Graph small(n);
    Graph big(big_n);
    for (int i = 0; i < n; ++i)
      for (int j = i + 1; j < n; ++j)
        if (rng.uniform() < p) {
          small.add_edge(i, j);
          big.add_edge(offset + i, offset + j);
        }
    // Decoy edges out of the instance: the candidate mask must drop them.
    for (int i = 0; i < n; ++i)
      big.add_edge(offset + i, (offset + n + 7 * i + 1) % big_n);
    small.finalize();
    big.finalize();
    ASSERT_TRUE(big.has_sparse_rows());

    std::vector<double> w_small(static_cast<std::size_t>(n));
    for (auto& x : w_small) x = draw_weight(trial % 4, rng);
    std::vector<double> w_big(static_cast<std::size_t>(big_n), 0.0);
    std::vector<int> cands_small, cands_big;
    for (int v = 0; v < n; ++v) {
      w_big[static_cast<std::size_t>(offset + v)] =
          w_small[static_cast<std::size_t>(v)];
      cands_small.push_back(v);
      cands_big.push_back(offset + v);
    }

    const MwisResult ref = brute.solve(small, w_small, cands_small);
    const MwisResult got = solver.solve(big, w_big, cands_big);
    ASSERT_TRUE(got.exact) << "trial " << trial;
    ASSERT_EQ(got.vertices.size(), ref.vertices.size()) << "trial " << trial;
    for (std::size_t k = 0; k < ref.vertices.size(); ++k)
      ASSERT_EQ(got.vertices[k], offset + ref.vertices[k])
          << "trial " << trial;
    ASSERT_NEAR(got.weight, ref.weight, 1e-12) << "trial " << trial;

    BnbSolveOptions list_build;
    list_build.use_adjacency_rows = false;
    const MwisResult via_lists =
        solver.solve_with_scratch(big, w_big, cands_big, scratch, list_build);
    ASSERT_EQ(via_lists.vertices, got.vertices) << "trial " << trial;
    ASSERT_EQ(via_lists.nodes_explored, got.nodes_explored)
        << "trial " << trial;
  }
}

TEST(MwisDifferential, TieWeightsExactDyadicEquality) {
  // All weights are multiples of 0.25: sums are exact in floating point, so
  // every mode must match brute force to the last bit despite massive
  // optimum degeneracy.
  Rng rng(99);
  BruteForceMwisSolver brute(24);
  BranchAndBoundMwisSolver reusing;
  BranchAndBoundMwisSolver fresh(5'000'000, /*reuse_scratch=*/false);
  for (int trial = 0; trial < 100; ++trial) {
    const int n = 4 + trial % 10;
    Graph g(n);
    for (int i = 0; i < n; ++i)
      for (int j = i + 1; j < n; ++j)
        if (rng.uniform() < 0.4) g.add_edge(i, j);
    g.finalize();
    std::vector<double> w(static_cast<std::size_t>(n));
    for (auto& x : w) x = 0.25 * (1 + static_cast<int>(rng.uniform() * 4));
    std::vector<int> all(static_cast<std::size_t>(n));
    for (int v = 0; v < n; ++v) all[static_cast<std::size_t>(v)] = v;
    const double ref = brute.solve(g, w, all).weight;
    EXPECT_EQ(reusing.solve(g, w, all).weight, ref);
    EXPECT_EQ(fresh.solve(g, w, all).weight, ref);
  }
}

TEST(MwisDifferential, AnytimeContractUnderNodeCap) {
  // A cap-aborting instance must report exact == false, return at least the
  // greedy solution (the solver's incumbent floor), and leave the reused
  // scratch fully reusable: the next (uncapped) solve is unaffected.
  Rng rng(7);
  ConflictGraph cg = random_geometric_avg_degree(40, 7.0, rng);
  ExtendedConflictGraph ecg(cg, 4);
  const Graph& h = ecg.graph();
  std::vector<double> w(static_cast<std::size_t>(h.size()));
  for (auto& x : w) x = rng.uniform(0.05, 1.0);
  std::vector<int> all(static_cast<std::size_t>(h.size()));
  for (int v = 0; v < h.size(); ++v) all[static_cast<std::size_t>(v)] = v;

  BranchAndBoundMwisSolver capped(60, /*reuse_scratch=*/true);
  const MwisResult aborted = capped.solve(h, w, all);
  ASSERT_FALSE(aborted.exact);
  EXPECT_TRUE(h.is_independent_set(aborted.vertices));

  const MwisResult greedy = GreedyMwisSolver().solve(h, w, all);
  EXPECT_GE(aborted.weight, greedy.weight - 1e-12)
      << "anytime result fell below the greedy floor";

  // Same solver, same scratch, same instance: the abort must reproduce
  // byte-for-byte (no state bleeds out of an aborted search) ...
  const MwisResult again = capped.solve(h, w, all);
  EXPECT_EQ(aborted.vertices, again.vertices);
  EXPECT_EQ(aborted.nodes_explored, again.nodes_explored);
  ASSERT_FALSE(again.exact);

  // ... and an uncapped solve reusing the very same scratch is exact and at
  // least as good. Run this part on a ball-sized instance (the full graph's
  // exact optimum is out of reach by design — that is what the cap is for).
  NeighborhoodCache cache(h, 3);
  SolveScratch scratch;
  BranchAndBoundMwisSolver small_cap(30);
  BranchAndBoundMwisSolver uncapped(5'000'000);
  int aborted_balls = 0;
  for (int v = 0; v < h.size(); v += 9) {
    const auto ball = cache.r_ball(v);
    const MwisResult first =
        small_cap.solve_with_scratch(h, w, ball, scratch);
    if (first.exact) continue;  // this ball was easy; try another
    ++aborted_balls;
    const MwisResult full = uncapped.solve_with_scratch(h, w, ball, scratch);
    EXPECT_TRUE(full.exact);
    EXPECT_GE(full.weight, first.weight - 1e-12);
  }
  EXPECT_GT(aborted_balls, 0) << "no r=3 ball aborted at cap 30; the "
                                 "scratch-reuse-after-abort path went untested";
}

}  // namespace
}  // namespace mhca
