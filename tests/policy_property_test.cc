// Property tests on the learning layer: index monotonicity/limits for
// every policy, eq. (3) clipping threshold behavior, eq. (5)-(6) streaming
// updates against batch recomputation, and lockstep-vs-facade consistency.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "bandit/cab.h"
#include "bandit/estimates.h"
#include "bandit/llr.h"
#include "bandit/policy.h"
#include "bandit/simple_policies.h"
#include "util/rng.h"

namespace mhca {
namespace {

std::vector<std::unique_ptr<IndexPolicy>> all_policies() {
  std::vector<std::unique_ptr<IndexPolicy>> ps;
  ps.push_back(std::make_unique<CabIndexPolicy>());
  ps.push_back(std::make_unique<LlrIndexPolicy>(10));
  ps.push_back(std::make_unique<Ucb1IndexPolicy>());
  ps.push_back(std::make_unique<GreedyIndexPolicy>());
  ps.push_back(std::make_unique<EpsilonGreedyIndexPolicy>(0.1));
  return ps;
}

TEST(PolicyProperty, IndexAtLeastMeanForAllPolicies) {
  // Optimism: the exploration bonus is never negative.
  for (const auto& p : all_policies()) {
    for (double mean : {0.0, 0.3, 0.99}) {
      for (std::int64_t m : {1, 5, 100}) {
        for (std::int64_t t : {1, 10, 100000}) {
          EXPECT_GE(p->index_from(mean, m, 0, t, 20), mean - 1e-12)
              << p->name() << " mean=" << mean << " m=" << m << " t=" << t;
        }
      }
    }
  }
}

TEST(PolicyProperty, UnplayedDominatesPlayedMeans) {
  // An unplayed arm must outrank any arm whose index is its mean (<= 1).
  for (const auto& p : all_policies()) {
    const double unplayed = p->index_from(0.0, 0, 3, 50, 20);
    EXPECT_GT(unplayed, 1.0) << p->name();
  }
}

TEST(PolicyProperty, BonusNonIncreasingInSampleCount) {
  for (const auto& p : all_policies()) {
    double prev = p->index_from(0.5, 1, 0, 100000, 10) - 0.5;
    for (std::int64_t m : {2, 4, 16, 64, 256}) {
      const double bonus = p->index_from(0.5, m, 0, 100000, 10) - 0.5;
      EXPECT_LE(bonus, prev + 1e-12) << p->name() << " m=" << m;
      prev = bonus;
    }
  }
}

TEST(PolicyProperty, LlrAndUcbBonusesGrowWithT) {
  LlrIndexPolicy llr(5);
  Ucb1IndexPolicy ucb;
  for (std::int64_t t : {2, 10, 100, 10000}) {
    EXPECT_LT(llr.index_from(0.0, 3, 0, t, 10),
              llr.index_from(0.0, 3, 0, t * 10, 10));
    EXPECT_LT(ucb.index_from(0.0, 3, 0, t, 10),
              ucb.index_from(0.0, 3, 0, t * 10, 10));
  }
}

TEST(PolicyProperty, CabClippingThresholdExact) {
  // eq. (3): bonus is zero iff t^{2/3} <= K * m.
  CabIndexPolicy cab;
  const int K = 8;
  for (std::int64_t t : {64, 512, 4096, 32768}) {
    const double threshold =
        std::pow(static_cast<double>(t), 2.0 / 3.0) / static_cast<double>(K);
    for (std::int64_t m = 1; m <= 40; m += 3) {
      const double bonus = cab.index_from(0.0, m, 0, t, K);
      if (static_cast<double>(m) >= threshold) {
        EXPECT_DOUBLE_EQ(bonus, 0.0) << "t=" << t << " m=" << m;
      } else {
        EXPECT_GT(bonus, 0.0) << "t=" << t << " m=" << m;
      }
    }
  }
}

TEST(PolicyProperty, CabBonusSmallerThanLlrEventually) {
  // The core Fig. 7/8 mechanism: for equal state, CAB's bonus <= LLR's
  // once t is large (LLR's never clips).
  CabIndexPolicy cab;
  LlrIndexPolicy llr(15);
  for (std::int64_t m : {1, 5, 50}) {
    EXPECT_LE(cab.index_from(0.4, m, 0, 100000, 45),
              llr.index_from(0.4, m, 0, 100000, 45));
  }
}

TEST(PolicyProperty, StreamingMeanMatchesBatch) {
  Rng rng(17);
  ArmEstimates est(4);
  std::vector<std::vector<double>> samples(4);
  for (int i = 0; i < 500; ++i) {
    const int k = rng.uniform_int(0, 3);
    const double x = rng.uniform();
    est.observe(k, x);
    samples[static_cast<std::size_t>(k)].push_back(x);
  }
  for (int k = 0; k < 4; ++k) {
    const auto& s = samples[static_cast<std::size_t>(k)];
    double batch = 0.0;
    for (double x : s) batch += x;
    if (!s.empty()) batch /= static_cast<double>(s.size());
    EXPECT_NEAR(est.mean(k), batch, 1e-10);
    EXPECT_EQ(est.count(k), static_cast<std::int64_t>(s.size()));
  }
}

TEST(PolicyProperty, ComputeIndicesConsistentWithScalarCalls) {
  ArmEstimates est(6);
  est.observe(0, 0.5);
  est.observe(2, 0.9);
  est.observe(2, 0.7);
  for (const auto& p : all_policies()) {
    std::vector<double> batch;
    p->compute_indices(est, 33, batch);
    ASSERT_EQ(batch.size(), 6u);
    for (int k = 0; k < 6; ++k)
      EXPECT_DOUBLE_EQ(batch[static_cast<std::size_t>(k)],
                       p->index(est, k, 33))
          << p->name();
  }
}

TEST(PolicyProperty, IndexIncreasesWithMean) {
  for (const auto& p : all_policies()) {
    EXPECT_LT(p->index_from(0.2, 7, 0, 100, 10),
              p->index_from(0.8, 7, 0, 100, 10))
        << p->name();
  }
}

TEST(PolicyProperty, RoundOneNeverHasPositiveLogBonus) {
  // At t = 1 every policy's bonus collapses (ln 1 = 0; CAB clips).
  CabIndexPolicy cab;
  LlrIndexPolicy llr(5);
  Ucb1IndexPolicy ucb;
  EXPECT_DOUBLE_EQ(cab.index_from(0.4, 2, 0, 1, 10), 0.4);
  EXPECT_DOUBLE_EQ(llr.index_from(0.4, 2, 0, 1, 10), 0.4);
  EXPECT_DOUBLE_EQ(ucb.index_from(0.4, 2, 0, 1, 10), 0.4);
}

}  // namespace
}  // namespace mhca
