// Differential fault-schedule suite for the control-channel fault plane and
// the view-synchronous membership layer (ctest labels: fuzz, faults).
//
// Two properties are fuzzed across 200+ seeded fault schedules, spanning
// static / churn / waypoint-mobility topologies and both local solver modes:
//
//   1. Replay — the fault plane is a pure function of (seed, schedule):
//      running the identical scenario twice must produce byte-identical
//      message traces (ControlChannel::trace_hash) and identical decisions,
//      counters and throughput. A different fault seed must diverge.
//
//   2. Conditional equivalence — the acceptance contract of the membership
//      layer: whenever views have converged (net/oracle.h makes that
//      precise), the message-level runtime's next decision equals the
//      lockstep engine run over the agents' own statistics — under any
//      fault schedule. Schedules here are windowed (quiet warmup, fault
//      burst with churn/mobility, quiet tail), swapped mid-run through
//      DistributedRuntime::set_fault_profile; after the tail the oracle
//      must report convergence and the prediction must match, winner for
//      winner, with no conflict and no abstention.
#include <gtest/gtest.h>

#include <cstdint>
#include <iterator>
#include <sstream>
#include <string>
#include <vector>

#include "dynamics/dynamic_network.h"
#include "graph/graph.h"
#include "net/faults.h"
#include "net/oracle.h"
#include "net/runtime.h"
#include "scenario/runner.h"
#include "scenario/scenario.h"

namespace mhca {
namespace {

using scenario::Scenario;
using scenario::ScenarioRunner;

struct Profile {
  double drop, dup, reorder;
  int delay;
};

// Replay grid: every fault mechanism alone, then all at once.
constexpr Profile kReplayProfiles[] = {
    {0.0, 0.0, 0.0, 0},    // fault-free baseline (view-sync still active)
    {0.10, 0.0, 0.0, 0},   // drops only
    {0.0, 0.20, 0.0, 0},   // duplicates only
    {0.0, 0.0, 0.25, 0},   // same-flood reordering
    {0.0, 0.0, 0.25, 2},   // cross-slot delay
    {0.15, 0.10, 0.10, 2}, // everything at once
};

struct ScheduleSpec {
  const char* name;
  Profile faulty;  ///< Profile of the burst window.
};

constexpr ScheduleSpec kSchedules[] = {
    {"drop-heavy", {0.25, 0.0, 0.0, 0}},
    {"dup-reorder", {0.10, 0.20, 0.20, 0}},
    {"delayed", {0.10, 0.0, 0.30, 2}},
    {"chaos", {0.20, 0.15, 0.15, 1}},
};

constexpr const char* kDynamicsKinds[] = {"static", "churn", "waypoint"};
constexpr const char* kSolverModes[] = {"exact", "greedy"};
constexpr std::uint64_t kReplaySeeds[] = {3, 7, 19};
constexpr std::uint64_t kScheduleSeeds[] = {5, 11, 23, 31};

constexpr int kReplayScheduleCount =
    static_cast<int>(std::size(kReplayProfiles) * std::size(kDynamicsKinds) *
                     std::size(kReplaySeeds) * std::size(kSolverModes));
constexpr int kWindowedScheduleCount =
    static_cast<int>(std::size(kSchedules) * std::size(kDynamicsKinds) *
                     std::size(kScheduleSeeds) * std::size(kSolverModes));

Scenario make_scenario(const std::string& dynamics, const Profile& p,
                       std::uint64_t seed, const std::string& solver,
                       int slots) {
  std::ostringstream os;
  os << "name = faults-diff\n"
     << "[topology]\nkind = geometric\nnodes = 14\navg_degree = 4.0\n"
     << "[channel]\nkind = gaussian\nchannels = 2\n"
     << "[policy]\nkind = cab\n";
  if (dynamics == "churn")
    os << "[dynamics]\nkind = churn\nleave_prob = 0.03\njoin_prob = 0.25\n"
       << "min_active = 6\n";
  else if (dynamics == "waypoint")
    os << "[dynamics]\nkind = waypoint\nspeed = 0.04\npause = 2\n";
  os << "[solver]\nkind = distributed\nr = 2\nD = 3\nlocal_solver = "
     << solver << "\n"
     << "[net]\nmembership = view_sync\n"
     << "drop_prob = " << p.drop << "\ndup_prob = " << p.dup << "\n"
     << "reorder_prob = " << p.reorder << "\n"
     << "delay_slots_max = " << p.delay << "\n"
     << "drop_seed = " << seed * 1000003 + 17 << "\n"
     << "[run]\nslots = " << slots << "\nseed = " << seed << "\n";
  return scenario::parse_scenario(os.str());
}

std::string cell_name(const std::string& dynamics, const std::string& solver,
                      std::uint64_t seed, const std::string& what) {
  return what + " dynamics=" + dynamics + " solver=" + solver +
         " seed=" + std::to_string(seed);
}

// ------------------------------------------------------------------ replay

TEST(FaultReplay, SameSeedAndScheduleIsByteIdentical) {
  for (const char* dynamics : kDynamicsKinds) {
    for (const Profile& p : kReplayProfiles) {
      for (std::uint64_t seed : kReplaySeeds) {
        for (const char* solver : kSolverModes) {
          SCOPED_TRACE(cell_name(dynamics, solver, seed,
                                 "drop=" + std::to_string(p.drop) +
                                     " dup=" + std::to_string(p.dup) +
                                     " reorder=" + std::to_string(p.reorder)));
          const Scenario s = make_scenario(dynamics, p, seed, solver, 16);
          const scenario::NetRunSummary a = ScenarioRunner(s).run_net();
          const scenario::NetRunSummary b = ScenarioRunner(s).run_net();
          EXPECT_EQ(a.trace_hash, b.trace_hash);
          EXPECT_EQ(a.last_strategy, b.last_strategy);
          EXPECT_EQ(a.conflicts, b.conflicts);
          EXPECT_EQ(a.total_observed, b.total_observed);
          EXPECT_EQ(a.messages, b.messages);
          EXPECT_EQ(a.drops, b.drops);
          EXPECT_EQ(a.duplicates, b.duplicates);
          EXPECT_EQ(a.deferred, b.deferred);
          EXPECT_EQ(a.retries, b.retries);
          EXPECT_EQ(a.timeouts, b.timeouts);
          EXPECT_EQ(a.view_changes, b.view_changes);
          EXPECT_EQ(a.stale_decisions, b.stale_decisions);
          EXPECT_EQ(a.tx_abstained, b.tx_abstained);
        }
      }
    }
  }
}

TEST(FaultReplay, DifferentFaultSeedDivergesTrace) {
  Scenario s =
      make_scenario("churn", kSchedules[3].faulty, 7, "exact", 20);
  const scenario::NetRunSummary a = ScenarioRunner(s).run_net();
  scenario::apply_override(s, "net.drop_seed=987654321");
  const scenario::NetRunSummary b = ScenarioRunner(s).run_net();
  EXPECT_NE(a.trace_hash, b.trace_hash);
}

// ------------------------------------------------- windowed fault schedules

struct Window {
  net::FaultProfile faults;
  int rounds;
  bool advance;  ///< Apply topology dynamics during this window.
};

struct Outcome {
  std::uint64_t trace = 0;
  std::vector<std::vector<int>> strategies;  ///< One entry per round.
  net::ConvergenceReport report;
  bool converged = false;
  std::vector<int> predicted;  ///< Lockstep engine's call for the last round.
  std::vector<int> actual;     ///< What the runtime decided.
  bool conflict = false;
  int abstained = 0;
  net::RuntimeCounters counters;
  net::ChannelStats channel;
};

std::string describe(const net::ConvergenceReport& r) {
  std::ostringstream os;
  os << "members_match=" << r.members_match
     << " adjacency_match=" << r.adjacency_match
     << " stats_match=" << r.stats_match << " no_suspects=" << r.no_suspects
     << " views_equal=" << r.views_equal << " no_pending=" << r.no_pending;
  return os.str();
}

// Drive one runtime through the windows, then check convergence and — when
// converged — that the lockstep engine predicts the next decision exactly.
Outcome run_schedule(const Scenario& s, const std::vector<Window>& windows) {
  ScenarioRunner runner(s);
  const net::NetConfig cfg =
      scenario::to_net_config(s, runner.network().num_nodes());
  Outcome out;
  std::int64_t round = 0;
  const auto drive = [&](net::DistributedRuntime& rt,
                         dynamics::DynamicNetwork* dyn) {
    for (const Window& w : windows) {
      rt.set_fault_profile(w.faults);
      for (int i = 0; i < w.rounds; ++i) {
        ++round;
        if (dyn != nullptr && w.advance && round > 1) {
          const dynamics::SlotChange& ch = dyn->advance(round);
          if (ch.changed)
            rt.on_wire_change(ch.touched_vertices, dyn->active_vertices());
        }
        net::NetRoundResult res = rt.step();
        out.strategies.push_back(std::move(res.strategy));
      }
    }
    const Graph& wire =
        dyn != nullptr ? dyn->ecg().graph() : runner.extended_graph().graph();
    out.report = net::check_convergence(rt, wire);
    out.converged = out.report.converged();
    if (out.converged) {
      out.predicted = net::lockstep_decision(rt, wire, rt.rounds_run() + 1);
      const net::NetRoundResult res = rt.step();
      out.actual = res.strategy;
      out.conflict = res.conflict;
      out.abstained = res.tx_abstained;
      out.strategies.push_back(res.strategy);
    }
    out.counters = rt.counters();
    out.channel = rt.channel_stats();
    out.trace = rt.channel().trace_hash();
  };
  if (scenario::is_dynamic(s)) {
    dynamics::DynamicNetwork dyn = runner.make_dynamic_network(s.run.seed);
    net::DistributedRuntime rt(dyn.ecg(), runner.model(), cfg);
    drive(rt, &dyn);
  } else {
    net::DistributedRuntime rt(runner.extended_graph(), runner.model(), cfg);
    drive(rt, nullptr);
  }
  return out;
}

std::vector<Window> make_windows(const Profile& p, std::uint64_t seed) {
  const net::FaultProfile quiet{0.0, 0.0, 0.0, 0, seed};
  const net::FaultProfile burst{p.drop, p.dup, p.reorder, p.delay, seed};
  // Quiet warmup with dynamics on, a faulty burst (still churning/moving),
  // then a long quiet tail with the topology frozen — long enough for every
  // timeout -> probe -> evict -> readmit cascade to play out and views to
  // gossip across the diameter.
  return {{quiet, 6, true}, {burst, 12, true}, {quiet, 36, false}};
}

TEST(FaultSchedules, ConvergedRoundsMatchLockstepUnderAnySchedule) {
  std::int64_t total_timeouts = 0, total_retries = 0, total_view_changes = 0;
  for (const char* dynamics : kDynamicsKinds) {
    for (const ScheduleSpec& spec : kSchedules) {
      for (std::uint64_t seed : kScheduleSeeds) {
        for (const char* solver : kSolverModes) {
          SCOPED_TRACE(cell_name(dynamics, solver, seed,
                                 std::string("schedule=") + spec.name));
          const Scenario s =
              make_scenario(dynamics, Profile{0, 0, 0, 0}, seed, solver, 64);
          const Outcome o = run_schedule(s, make_windows(spec.faulty, seed));
          // The burst must actually exercise the fault plane...
          EXPECT_GT(o.channel.drops + o.channel.duplicates +
                        o.channel.deferred,
                    0);
          // ...and the quiet tail must restore full convergence,
          EXPECT_TRUE(o.converged) << describe(o.report);
          // at which point the conditional-equivalence contract bites: the
          // lockstep engine predicts the runtime's decision exactly.
          if (o.converged) {
            EXPECT_EQ(o.predicted, o.actual);
            EXPECT_FALSE(o.conflict);
            EXPECT_EQ(o.abstained, 0);
          }
          total_timeouts += o.counters.timeouts;
          total_retries += o.counters.retries;
          total_view_changes += o.counters.view_changes;
        }
      }
    }
  }
  // Across the suite the liveness machinery must have genuinely fired —
  // otherwise the equivalence above is vacuous.
  EXPECT_GT(total_timeouts, 0);
  EXPECT_GT(total_retries, 0);
  EXPECT_GT(total_view_changes, 0);
}

TEST(FaultSchedules, WindowedScheduleReplaysByteForByte) {
  for (const char* dynamics : kDynamicsKinds) {
    SCOPED_TRACE(dynamics);
    const Scenario s =
        make_scenario(dynamics, Profile{0, 0, 0, 0}, 13, "exact", 64);
    const std::vector<Window> windows =
        make_windows(kSchedules[3].faulty, 13);
    const Outcome a = run_schedule(s, windows);
    const Outcome b = run_schedule(s, windows);
    EXPECT_EQ(a.trace, b.trace);
    EXPECT_EQ(a.strategies, b.strategies);
    EXPECT_EQ(a.converged, b.converged);
  }
}

TEST(FaultSchedules, SuiteCoversAtLeastTwoHundredSchedules) {
  EXPECT_GE(kReplayScheduleCount + kWindowedScheduleCount, 200);
  EXPECT_EQ(kReplayScheduleCount, 108);
  EXPECT_EQ(kWindowedScheduleCount, 96);
}

}  // namespace
}  // namespace mhca
