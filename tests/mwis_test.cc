// Tests for src/mwis: brute force vs branch-and-bound cross-validation,
// greedy feasibility, centralized robust PTAS ratio (property sweeps).
#include <gtest/gtest.h>

#include <algorithm>

#include "graph/extended_graph.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "mwis/branch_and_bound.h"
#include "mwis/brute_force.h"
#include "mwis/greedy.h"
#include "mwis/robust_ptas.h"
#include "util/rng.h"

namespace mhca {
namespace {

Graph path_graph(int n) {
  Graph g(n);
  for (int i = 0; i + 1 < n; ++i) g.add_edge(i, i + 1);
  return g;
}

std::vector<double> random_weights(int n, Rng& rng) {
  std::vector<double> w(static_cast<std::size_t>(n));
  for (auto& x : w) x = rng.uniform(0.05, 1.0);
  return w;
}

TEST(BruteForce, PathKnownOptimum) {
  Graph g = path_graph(4);
  const std::vector<double> w{1.0, 10.0, 1.0, 9.0};
  BruteForceMwisSolver s;
  const MwisResult res = s.solve_all(g, w);
  EXPECT_DOUBLE_EQ(res.weight, 19.0);
  EXPECT_EQ(res.vertices, (std::vector<int>{1, 3}));
  EXPECT_TRUE(res.exact);
}

TEST(BruteForce, EmptyCandidates) {
  Graph g = path_graph(3);
  const std::vector<double> w{1, 1, 1};
  BruteForceMwisSolver s;
  const std::vector<int> none;
  const MwisResult res = s.solve(g, w, none);
  EXPECT_TRUE(res.vertices.empty());
  EXPECT_DOUBLE_EQ(res.weight, 0.0);
}

TEST(BruteForce, RejectsTooLarge) {
  Graph g(30);
  const std::vector<double> w(30, 1.0);
  BruteForceMwisSolver s(24);
  EXPECT_THROW(s.solve_all(g, w), std::logic_error);
}

TEST(BranchAndBound, SimpleInstances) {
  BranchAndBoundMwisSolver s;
  // Triangle: picks heaviest vertex.
  Graph tri(3);
  tri.add_edge(0, 1);
  tri.add_edge(1, 2);
  tri.add_edge(0, 2);
  const std::vector<double> w{0.2, 0.9, 0.5};
  const MwisResult res = s.solve_all(tri, w);
  EXPECT_DOUBLE_EQ(res.weight, 0.9);
  EXPECT_EQ(res.vertices, (std::vector<int>{1}));
  EXPECT_TRUE(res.exact);
}

TEST(BranchAndBound, EdgelessTakesAll) {
  Graph g(6);
  const std::vector<double> w{1, 2, 3, 4, 5, 6};
  BranchAndBoundMwisSolver s;
  const MwisResult res = s.solve_all(g, w);
  EXPECT_DOUBLE_EQ(res.weight, 21.0);
  EXPECT_EQ(res.vertices.size(), 6u);
}

TEST(BranchAndBound, HeaviestVertexNotAlwaysChosen) {
  // Star: center weight 10, three leaves weight 4 each -> leaves win (12).
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(0, 3);
  const std::vector<double> w{10.0, 4.0, 4.0, 4.0};
  BranchAndBoundMwisSolver s;
  const MwisResult res = s.solve_all(g, w);
  EXPECT_DOUBLE_EQ(res.weight, 12.0);
  EXPECT_EQ(res.vertices, (std::vector<int>{1, 2, 3}));
}

TEST(BranchAndBound, RestrictedToCandidates) {
  Graph g = path_graph(5);
  const std::vector<double> w{5, 1, 5, 1, 5};
  BranchAndBoundMwisSolver s;
  const std::vector<int> cands{1, 2, 3};
  const MwisResult res = s.solve(g, w, cands);
  EXPECT_DOUBLE_EQ(res.weight, 5.0);
  EXPECT_EQ(res.vertices, (std::vector<int>{2}));
}

TEST(BranchAndBound, RejectsDuplicateCandidates) {
  Graph g = path_graph(3);
  const std::vector<double> w{1, 1, 1};
  BranchAndBoundMwisSolver s;
  const std::vector<int> dup{0, 0};
  EXPECT_THROW(s.solve(g, w, dup), std::logic_error);
}

TEST(BranchAndBound, NodeCapFallsBackToGreedyQuality) {
  // With a 1-node cap the search aborts immediately; the result must still
  // be the greedy seed (feasible, not marked exact).
  Rng rng(3);
  ConflictGraph cg = erdos_renyi(40, 0.15, rng);
  const auto w = random_weights(40, rng);
  BranchAndBoundMwisSolver capped(1);
  const MwisResult res = capped.solve_all(cg.graph(), w);
  EXPECT_FALSE(res.exact);
  EXPECT_TRUE(cg.graph().is_independent_set(res.vertices));
  GreedyMwisSolver greedy;
  EXPECT_GE(res.weight, greedy.solve_all(cg.graph(), w).weight - 1e-12);
}

TEST(Greedy, FeasibleAndDeterministic) {
  Rng rng(4);
  ConflictGraph cg = erdos_renyi(30, 0.2, rng);
  const auto w = random_weights(30, rng);
  GreedyMwisSolver s;
  const MwisResult a = s.solve_all(cg.graph(), w);
  const MwisResult b = s.solve_all(cg.graph(), w);
  EXPECT_EQ(a.vertices, b.vertices);
  EXPECT_TRUE(cg.graph().is_independent_set(a.vertices));
  EXPECT_FALSE(a.exact);
}

TEST(Greedy, PicksHeaviestFirst) {
  Graph g = path_graph(3);
  const std::vector<double> w{0.5, 1.0, 0.5};
  GreedyMwisSolver s;
  const MwisResult res = s.solve_all(g, w);
  EXPECT_DOUBLE_EQ(res.weight, 1.0);
  EXPECT_EQ(res.vertices, (std::vector<int>{1}));
}

// --- Cross-validation sweeps: BnB == brute force on random graphs. ---
class BnbCrossValidation : public ::testing::TestWithParam<int> {};

TEST_P(BnbCrossValidation, MatchesBruteForceOnErdosRenyi) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 997 + 1);
  const int n = 14;
  ConflictGraph cg = erdos_renyi(n, 0.25, rng);
  const auto w = random_weights(n, rng);
  BruteForceMwisSolver brute;
  BranchAndBoundMwisSolver bnb;
  const MwisResult exact = brute.solve_all(cg.graph(), w);
  const MwisResult fast = bnb.solve_all(cg.graph(), w);
  EXPECT_NEAR(exact.weight, fast.weight, 1e-9);
  EXPECT_TRUE(cg.graph().is_independent_set(fast.vertices));
  EXPECT_TRUE(fast.exact);
}

TEST_P(BnbCrossValidation, MatchesBruteForceOnExtendedGraph) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 131 + 7);
  ConflictGraph cg = random_geometric_avg_degree(5, 2.5, rng, false);
  ExtendedConflictGraph ecg(cg, 3);  // 15 vertices
  const auto w = random_weights(ecg.num_vertices(), rng);
  BruteForceMwisSolver brute(16);
  BranchAndBoundMwisSolver bnb;
  EXPECT_NEAR(brute.solve_all(ecg.graph(), w).weight,
              bnb.solve_all(ecg.graph(), w).weight, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BnbCrossValidation, ::testing::Range(0, 10));

// --- Robust PTAS: approximation ratio property (Theorem in §IV-B). ---
class PtasRatio : public ::testing::TestWithParam<int> {};

TEST_P(PtasRatio, WithinRhoOfExactOnGeometricGraphs) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 313 + 11);
  ConflictGraph cg = random_geometric_avg_degree(18, 4.0, rng, false);
  const auto w = random_weights(18, rng);
  BranchAndBoundMwisSolver exact;
  const double opt = exact.solve_all(cg.graph(), w).weight;

  RobustPtasSolver ptas(0.5);  // rho = 1.5
  const MwisResult approx = ptas.solve_all(cg.graph(), w);
  EXPECT_TRUE(cg.graph().is_independent_set(approx.vertices));
  EXPECT_GE(approx.weight, opt / ptas.rho() - 1e-9);
  EXPECT_LE(approx.weight, opt + 1e-9);
}

TEST_P(PtasRatio, WithinRhoOnExtendedGraphs) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 911 + 3);
  ConflictGraph cg = random_geometric_avg_degree(8, 3.0, rng, false);
  ExtendedConflictGraph ecg(cg, 3);
  const auto w = random_weights(ecg.num_vertices(), rng);
  BranchAndBoundMwisSolver exact;
  const double opt = exact.solve_all(ecg.graph(), w).weight;
  RobustPtasSolver ptas(1.0);  // rho = 2
  const MwisResult approx = ptas.solve_all(ecg.graph(), w);
  EXPECT_GE(approx.weight, opt / ptas.rho() - 1e-9);
  EXPECT_TRUE(ecg.graph().is_independent_set(approx.vertices));
}

INSTANTIATE_TEST_SUITE_P(Seeds, PtasRatio, ::testing::Range(0, 10));

TEST(RobustPtas, TightEpsilonApproachesExact) {
  // With small epsilon the criterion is strict: on a short path the PTAS
  // must find the true optimum.
  Graph g = path_graph(6);
  const std::vector<double> w{1.0, 2.0, 1.0, 2.0, 1.0, 2.0};
  RobustPtasSolver ptas(0.01, 6);
  const MwisResult res = ptas.solve_all(g, w);
  EXPECT_DOUBLE_EQ(res.weight, 6.0);  // vertices 1, 3, 5
}

TEST(RobustPtas, GrowthStopsAtConstantRadius) {
  Rng rng(21);
  ConflictGraph cg = random_geometric_avg_degree(60, 5.0, rng);
  const auto w = random_weights(60, rng);
  RobustPtasSolver ptas(1.0, 6);
  ptas.solve_all(cg.graph(), w);
  // rho = 2: violation must occur once 2^r > (2r+1)^2, i.e. r <= 6 always;
  // empirically far smaller on random graphs.
  EXPECT_LE(ptas.last_max_radius(), 6);
}

TEST(RobustPtas, InvalidEpsilonRejected) {
  EXPECT_THROW(RobustPtasSolver(0.0), std::logic_error);
  EXPECT_THROW(RobustPtasSolver(-1.0), std::logic_error);
}

TEST(SolverNames, AreStable) {
  EXPECT_EQ(BruteForceMwisSolver().name(), "brute-force");
  EXPECT_EQ(BranchAndBoundMwisSolver().name(), "branch-and-bound");
  EXPECT_EQ(GreedyMwisSolver().name(), "greedy");
  EXPECT_EQ(RobustPtasSolver().name(), "robust-ptas");
}

}  // namespace
}  // namespace mhca
