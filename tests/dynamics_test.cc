// Dynamics-subsystem unit tests: incremental Graph/NeighborhoodCache
// maintenance equals from-scratch construction, DynamicNetwork keeps its
// invariants (masks, isolation of departed nodes, H lift), built-in models
// are deterministic and registry-complete, the [dynamics]/[net] scenario
// sections parse/serialize/override like every other section, and the
// dynamic paths of ScenarioRunner (run / replicate / run_net / make_scheme)
// behave.
#include <algorithm>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "dynamics/dynamic_network.h"
#include "dynamics/registries.h"
#include "graph/generators.h"
#include "graph/hop.h"
#include "graph/neighborhood_cache.h"
#include "scenario/runner.h"
#include "scenario/scenario.h"
#include "util/rng.h"

namespace mhca {
namespace {

using dynamics::DynamicNetwork;
using dynamics::DynamicsBuildContext;
using dynamics::DynamicsModel;
using dynamics::GraphDelta;
using scenario::ParamMap;
using scenario::Scenario;
using scenario::ScenarioError;
using scenario::ScenarioRunner;

// ------------------------------------------------------- structural helpers

std::vector<std::pair<int, int>> edges_of(const Graph& g) {
  std::vector<std::pair<int, int>> out;
  for (int v = 0; v < g.size(); ++v)
    for (int u : g.neighbors(v))
      if (u > v) out.emplace_back(v, u);
  return out;
}

void expect_same_structure(const Graph& a, const Graph& b) {
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.num_edges(), b.num_edges());
  for (int v = 0; v < a.size(); ++v) {
    const auto na = a.neighbors(v);
    const auto nb = b.neighbors(v);
    ASSERT_TRUE(std::equal(na.begin(), na.end(), nb.begin(), nb.end()))
        << "row " << v << " differs";
  }
  ASSERT_EQ(a.has_adjacency_matrix(), b.has_adjacency_matrix());
  if (a.has_adjacency_matrix()) {
    ASSERT_EQ(a.row_blocks(), b.row_blocks());
    for (int v = 0; v < a.size(); ++v) {
      const auto ra = a.adjacency_row(v);
      const auto rb = b.adjacency_row(v);
      ASSERT_TRUE(std::equal(ra.begin(), ra.end(), rb.begin(), rb.end()))
          << "bitset row " << v << " differs";
    }
  }
}

void expect_same_cache(const NeighborhoodCache& a,
                       const NeighborhoodCache& b) {
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.r(), b.r());
  ASSERT_EQ(a.has_covers(), b.has_covers());
  for (int v = 0; v < a.size(); ++v) {
    const auto ra = a.r_ball(v);
    const auto rb = b.r_ball(v);
    ASSERT_TRUE(std::equal(ra.begin(), ra.end(), rb.begin(), rb.end()))
        << "r-ball of " << v << " differs";
    const auto ea = a.election_ball(v);
    const auto eb = b.election_ball(v);
    ASSERT_TRUE(std::equal(ea.begin(), ea.end(), eb.begin(), eb.end()))
        << "election ball of " << v << " differs";
    if (a.has_covers()) {
      ASSERT_EQ(a.r_ball_clique_count(v), b.r_ball_clique_count(v));
      const auto ca = a.r_ball_cover(v);
      const auto cb = b.r_ball_cover(v);
      ASSERT_TRUE(std::equal(ca.begin(), ca.end(), cb.begin(), cb.end()))
          << "cover of " << v << " differs";
    }
  }
}

Graph from_edge_list(int n, const std::vector<std::pair<int, int>>& edges) {
  Graph g(n);
  for (const auto& [u, v] : edges) g.add_edge(u, v);
  g.finalize();
  return g;
}

// ------------------------------------------------------ Graph::apply_delta

TEST(GraphDeltaTest, ApplyDeltaMatchesRebuild) {
  Rng rng(7);
  ConflictGraph cg = random_geometric_avg_degree(40, 5.0, rng,
                                                 /*force_connected=*/false);
  std::vector<std::pair<int, int>> edges = edges_of(cg.graph());
  Graph g = from_edge_list(40, edges);

  // Remove a third of the edges, add some fresh ones.
  std::vector<std::pair<int, int>> removed, added;
  for (std::size_t i = 0; i < edges.size(); i += 3) removed.push_back(edges[i]);
  std::set<std::pair<int, int>> present(edges.begin(), edges.end());
  for (int tries = 0; tries < 200 && added.size() < 15; ++tries) {
    int u = rng.uniform_int(0, 39), v = rng.uniform_int(0, 39);
    if (u == v) continue;
    if (u > v) std::swap(u, v);
    if (present.count({u, v})) continue;
    present.insert({u, v});
    added.emplace_back(u, v);
  }
  std::sort(added.begin(), added.end());

  g.apply_delta(added, removed);

  std::vector<std::pair<int, int>> want;
  std::set<std::pair<int, int>> gone(removed.begin(), removed.end());
  for (const auto& e : edges)
    if (!gone.count(e)) want.push_back(e);
  want.insert(want.end(), added.begin(), added.end());
  const Graph rebuilt = from_edge_list(40, want);
  expect_same_structure(g, rebuilt);

  // The inverse delta restores the original structure exactly.
  g.apply_delta(removed, added);
  expect_same_structure(g, from_edge_list(40, edges));
}

TEST(GraphDeltaTest, RejectsInexactDeltas) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.finalize();
  const std::vector<std::pair<int, int>> present{{0, 1}};
  const std::vector<std::pair<int, int>> absent{{2, 3}};
  const std::vector<std::pair<int, int>> self_loop{{1, 1}};
  EXPECT_THROW(g.apply_delta(present, {}), std::logic_error);   // re-add
  EXPECT_THROW(g.apply_delta({}, absent), std::logic_error);    // phantom rm
  EXPECT_THROW(g.apply_delta(self_loop, {}), std::logic_error); // self loop
  Graph unfinalized(3);
  unfinalized.add_edge(0, 1);
  EXPECT_THROW(unfinalized.apply_delta(absent, {}), std::logic_error);
}

TEST(GraphDeltaTest, MultiSourceKHopMatchesUnionOfBalls) {
  Rng rng(9);
  ConflictGraph cg = random_geometric_avg_degree(30, 4.0, rng,
                                                 /*force_connected=*/false);
  const Graph& g = cg.graph();
  BfsScratch scratch(g.size());
  const std::vector<int> sources{3, 17, 3, 25};
  for (int k : {0, 1, 2, 4}) {
    std::vector<int> got;
    scratch.multi_source_k_hop(g, sources, k, got);
    std::set<int> want;
    for (int s : sources) {
      const auto ball = k_hop_neighborhood(g, s, k);
      want.insert(ball.begin(), ball.end());
    }
    EXPECT_EQ(got, std::vector<int>(want.begin(), want.end())) << "k=" << k;
  }
}

// --------------------------------------- NeighborhoodCache::apply_delta

TEST(NeighborhoodCacheDeltaTest, ScopedInvalidationMatchesFreshBuild) {
  Rng rng(11);
  ConflictGraph cg = random_geometric_avg_degree(36, 5.0, rng,
                                                 /*force_connected=*/false);
  std::vector<std::pair<int, int>> edges = edges_of(cg.graph());
  for (const bool covers : {false, true}) {
    SCOPED_TRACE(covers ? "with covers" : "no covers");
    Graph g = from_edge_list(36, edges);
    NeighborhoodCache cache(g, /*r=*/2, covers);

    const std::vector<std::pair<int, int>> removed{edges[1], edges[5]};
    std::vector<std::pair<int, int>> added;
    std::set<std::pair<int, int>> present(edges.begin(), edges.end());
    for (int u = 0; u < 36 && added.size() < 4; ++u)
      for (int v = u + 1; v < 36 && added.size() < 4; ++v)
        if (!present.count({u, v})) added.emplace_back(u, v);

    g.apply_delta(added, removed);
    std::vector<int> touched;
    for (const auto& [u, v] : added) {
      touched.push_back(u);
      touched.push_back(v);
    }
    for (const auto& [u, v] : removed) {
      touched.push_back(u);
      touched.push_back(v);
    }
    std::sort(touched.begin(), touched.end());
    touched.erase(std::unique(touched.begin(), touched.end()), touched.end());
    cache.apply_delta(g, touched);
    EXPECT_GT(cache.last_invalidated(), 0);
    EXPECT_LE(cache.last_invalidated(), cache.size());

    const NeighborhoodCache fresh(g, /*r=*/2, covers);
    expect_same_cache(cache, fresh);
  }
}

// ------------------------------------------------------- DynamicNetwork

std::unique_ptr<DynamicsModel> build_model(const std::string& kind,
                                           const ParamMap& params,
                                           const ConflictGraph& base,
                                           std::uint64_t seed) {
  Rng rng(seed);
  const DynamicsBuildContext ctx{&base, 1000};
  return dynamics::dynamics_registry().create(kind, params, ctx, rng);
}

TEST(DynamicNetworkTest, ChurnKeepsInvariants) {
  Rng rng(13);
  ConflictGraph base = random_geometric_avg_degree(20, 5.0, rng);
  ParamMap p;
  p.set("leave_prob", "0.2");
  p.set("join_prob", "0.3");
  DynamicNetwork dyn(base, /*num_channels=*/3,
                     build_model("churn", p, base, 99));
  ASSERT_TRUE(dyn.dynamic());
  int changes = 0;
  for (std::int64_t t = 2; t <= 60; ++t) {
    const dynamics::SlotChange& ch = dyn.advance(t);
    if (!ch.changed) continue;
    ++changes;
    // Every inactive node is isolated in G and all its H vertices masked;
    // H stays the exact lift of G (checked via a from-scratch ECG).
    for (int i = 0; i < dyn.network().num_nodes(); ++i) {
      if (!dyn.active_nodes()[static_cast<std::size_t>(i)])
        EXPECT_EQ(dyn.network().graph().degree(i), 0);
      for (int j = 0; j < 3; ++j)
        EXPECT_EQ(dyn.active_vertices()[static_cast<std::size_t>(
                      dyn.ecg().vertex_of(i, j))],
                  dyn.active_nodes()[static_cast<std::size_t>(i)]);
    }
  }
  EXPECT_GT(changes, 0) << "heavy churn produced no change in 60 slots";
  const ExtendedConflictGraph lifted(dyn.network(), 3);
  expect_same_structure(dyn.ecg().graph(), lifted.graph());
}

TEST(DynamicNetworkTest, ModelsAreDeterministic) {
  Rng rng(17);
  ConflictGraph base = random_geometric_avg_degree(18, 5.0, rng);
  for (const char* kind : {"churn", "waypoint", "primary_user"}) {
    SCOPED_TRACE(kind);
    auto a = build_model(kind, ParamMap{}, base, 4242);
    auto b = build_model(kind, ParamMap{}, base, 4242);
    for (std::int64_t t = 2; t <= 40; ++t) {
      const GraphDelta& da = a->step(t);
      const GraphDelta& db = b->step(t);
      EXPECT_EQ(da.added_edges, db.added_edges);
      EXPECT_EQ(da.removed_edges, db.removed_edges);
      EXPECT_EQ(da.deactivated, db.deactivated);
      EXPECT_EQ(da.activated, db.activated);
    }
  }
}

TEST(DynamicNetworkTest, AdvanceMustBeCalledInOrder) {
  Rng rng(19);
  ConflictGraph base = random_geometric_avg_degree(10, 4.0, rng);
  DynamicNetwork dyn(base, 2, build_model("churn", ParamMap{}, base, 1));
  dyn.advance(2);
  EXPECT_THROW(dyn.advance(4), std::logic_error);
}

TEST(DynamicsRegistry, CompleteAndActionable) {
  const std::vector<std::string> names =
      dynamics::dynamics_registry().names();
  EXPECT_EQ(names, (std::vector<std::string>{"static", "churn", "waypoint",
                                             "primary_user"}));
  Rng rng(3);
  ConflictGraph base = random_geometric_avg_degree(8, 3.0, rng);
  for (const auto& kind : names) {
    SCOPED_TRACE(kind);
    auto model = build_model(kind, ParamMap{}, base, 5);
    ASSERT_NE(model, nullptr);
    EXPECT_EQ(model->name(), kind);
  }
  // Unknown kind / key errors name the offender and the valid options.
  try {
    build_model("churm", ParamMap{}, base, 5);
    FAIL() << "expected ScenarioError";
  } catch (const ScenarioError& e) {
    EXPECT_NE(std::string(e.what()).find("churm"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("waypoint"), std::string::npos);
  }
  try {
    ParamMap bad;
    bad.set("leave_prb", "0.1");
    build_model("churn", bad, base, 5);
    FAIL() << "expected ScenarioError";
  } catch (const ScenarioError& e) {
    EXPECT_NE(std::string(e.what()).find("leave_prb"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("leave_prob"), std::string::npos);
  }
  // Geometry-dependent models reject position-free topologies, telling the
  // user which topologies work.
  const ConflictGraph no_positions = complete_network(6);
  try {
    build_model("waypoint", ParamMap{}, no_positions, 5);
    FAIL() << "expected ScenarioError";
  } catch (const ScenarioError& e) {
    EXPECT_NE(std::string(e.what()).find("positions"), std::string::npos);
  }
}

// ----------------------------------------------- scenario format & runner

const char* kChurnScenario = R"(name = churn-test
[topology]
kind = geometric
nodes = 14
avg_degree = 4.5
[channel]
kind = gaussian
channels = 3
[policy]
kind = cab
[dynamics]
kind = churn
leave_prob = 0.1
join_prob = 0.3
[run]
slots = 60
seed = 5
series_stride = 10
)";

TEST(DynamicsScenario, ParseSerializeOverrideRoundTrip) {
  Scenario s = scenario::parse_scenario(kChurnScenario);
  EXPECT_TRUE(scenario::is_dynamic(s));
  EXPECT_EQ(s.dynamics.model.kind, "churn");
  EXPECT_DOUBLE_EQ(s.dynamics.model.params.get_double("leave_prob", 0), 0.1);
  EXPECT_TRUE(s.dynamics.incremental);
  EXPECT_FALSE(s.dynamics.batch);  // off by default (staleness trade-off)
  scenario::apply_override(s, "dynamics.incremental=false");
  scenario::apply_override(s, "dynamics.batch=true");
  scenario::apply_override(s, "dynamics.seed=77");
  scenario::apply_override(s, "net.drop_prob=0.25");
  EXPECT_FALSE(s.dynamics.incremental);
  EXPECT_TRUE(s.dynamics.batch);
  EXPECT_EQ(s.dynamics.seed, 77u);
  EXPECT_DOUBLE_EQ(s.net.drop_prob, 0.25);
  const Scenario back =
      scenario::parse_scenario(scenario::serialize_scenario(s));
  EXPECT_EQ(s, back);
  // Defaults are static and not dynamic.
  EXPECT_FALSE(scenario::is_dynamic(Scenario{}));
  // Unknown [net] keys are rejected with the valid list.
  try {
    Scenario bad;
    scenario::apply_override(bad, "net.dorp_prob=0.1");
    FAIL() << "expected ScenarioError";
  } catch (const ScenarioError& e) {
    EXPECT_NE(std::string(e.what()).find("drop_prob"), std::string::npos);
  }
  // Out-of-range drop_prob fails validation with the key name.
  Scenario range = scenario::parse_scenario(kChurnScenario);
  scenario::apply_override(range, "net.drop_prob=1.5");
  EXPECT_THROW(scenario::validate_fields(range), ScenarioError);
}

TEST(DynamicsScenario, DropProbReachesNetConfig) {
  Scenario s = scenario::parse_scenario(kChurnScenario);
  scenario::apply_override(s, "net.drop_prob=0.125");
  scenario::apply_override(s, "net.drop_seed=9");
  const net::NetConfig cfg = scenario::to_net_config(s, 14);
  EXPECT_DOUBLE_EQ(cfg.drop_prob, 0.125);
  EXPECT_EQ(cfg.drop_seed, 9u);
}

TEST(DynamicsScenario, RunsAreDeterministicAndReplicable) {
  const Scenario s = scenario::parse_scenario(kChurnScenario);
  const ScenarioRunner runner(s);
  const SimulationResult a = runner.run();
  const SimulationResult b = runner.run();
  EXPECT_EQ(a.last_strategy, b.last_strategy);
  EXPECT_EQ(a.total_observed, b.total_observed);
  EXPECT_EQ(a.final_means, b.final_means);

  Scenario rs = s;
  scenario::apply_override(rs, "replication.replications=3");
  scenario::apply_override(rs, "run.slots=30");
  const ScenarioRunner rrunner(rs);
  const ReplicationReport r1 = rrunner.replicate();
  const ReplicationReport r2 = rrunner.replicate();
  ASSERT_EQ(r1.metrics.size(), r2.metrics.size());
  for (std::size_t i = 0; i < r1.metrics.size(); ++i)
    EXPECT_EQ(r1.metrics[i].summary.mean, r2.metrics[i].summary.mean);
}

TEST(DynamicsScenario, DynamicsSeedPinsTheTrajectory) {
  Scenario s = scenario::parse_scenario(kChurnScenario);
  EXPECT_NE(scenario::dynamics_seed_of(s, 1), scenario::dynamics_seed_of(s, 2));
  scenario::apply_override(s, "dynamics.seed=123");
  EXPECT_EQ(scenario::dynamics_seed_of(s, 1), 123u);
  EXPECT_EQ(scenario::dynamics_seed_of(s, 2), 123u);
}

TEST(DynamicsScenario, NetRuntimeSurvivesChurnWithoutConflicts) {
  Scenario s = scenario::parse_scenario(kChurnScenario);
  scenario::apply_override(s, "run.slots=40");
  const ScenarioRunner runner(s);
  const scenario::NetRunSummary net = runner.run_net();
  EXPECT_EQ(net.rounds, 40);
  // On a reliable control channel the protocol's independence guarantee
  // must survive churn (scoped rediscovery keeps every table consistent).
  EXPECT_EQ(net.conflicts, 0);
}

TEST(DynamicsScenario, NetMatchesLockstepUnderDynamics) {
  // The strongest cross-engine claim: message-level protocol decisions track
  // the lockstep engine even while the topology moves, because rediscovery
  // hellos carry statistics and both engines see identical graphs + masks.
  for (const char* kind : {"churn", "waypoint"}) {
    SCOPED_TRACE(kind);
    Scenario s = scenario::parse_scenario(kChurnScenario);
    s.dynamics.model.params = ParamMap{};  // drop the churn-specific keys
    scenario::apply_override(s, std::string("dynamics.kind=") + kind);
    if (std::string(kind) == "churn")
      scenario::apply_override(s, "dynamics.leave_prob=0.1");
    else
      scenario::apply_override(s, "dynamics.speed=0.3");
    scenario::apply_override(s, "run.slots=25");
    const ScenarioRunner runner(s);
    const scenario::NetRunSummary net = runner.run_net();
    const SimulationResult sim = runner.run();
    EXPECT_EQ(net.last_strategy, sim.last_strategy);
    EXPECT_EQ(net.conflicts, 0);
  }
}

TEST(DynamicsScenario, MakeSchemeMatchesFirstLockstepDecision) {
  // The step-API satellite: a scenario-built ChannelAccessScheme takes the
  // same first decision as the scenario's own simulator (same graph, same
  // policy, same solver spec, empty learning state on both sides).
  Scenario s = scenario::parse_scenario(kChurnScenario);
  scenario::apply_override(s, "dynamics.kind=static");
  scenario::apply_override(s, "run.slots=1");
  const ScenarioRunner runner(s);
  ChannelAccessScheme scheme = runner.make_scheme();
  scheme.decide();
  const SimulationResult sim = runner.run();
  EXPECT_EQ(scheme.current_vertices(), sim.last_strategy);

  // Dynamic scenarios refuse the static step API, pointing at run().
  Scenario dyn = scenario::parse_scenario(kChurnScenario);
  const ScenarioRunner drunner(dyn);
  try {
    drunner.make_scheme();
    FAIL() << "expected ScenarioError";
  } catch (const ScenarioError& e) {
    EXPECT_NE(std::string(e.what()).find("run()"), std::string::npos);
  }
}

}  // namespace
}  // namespace mhca
