// Differential fuzz for incremental dynamic-topology maintenance.
//
// The claim under test (the dynamics subsystem's load-bearing wall): for
// ANY sequence of graph deltas, patching in place — Graph::apply_delta on
// the CSR/bitset structures plus NeighborhoodCache::apply_delta's scoped
// ball invalidation — is *byte-identical* to throwing everything away and
// rebuilding from scratch every slot. Three layers of evidence:
//
//   1. Structural: random delta sequences applied to a Graph equal a
//      from-scratch rebuild of the same edge set, row by row and bit by bit,
//      and a cache maintained by apply_delta equals a fresh cache.
//   2. Engine: a DistributedRobustPtas kept alive across deltas via
//      on_graph_delta() takes byte-identical decisions (winners + weight +
//      message accounting) to a fresh engine per delta.
//   3. End to end: full dynamic simulations with dynamics.incremental on
//      and off produce identical SimulationResults across every solver mode
//      (distributed exact/greedy local, centralized PTAS, global greedy,
//      exact B&B).
//
// Counting sequences: each structural case and each end-to-end run applies
// one independently seeded random delta *sequence*; the total crosses the
// 200-sequence bar with margin (see kStructuralCases and the mode grid).
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "dynamics/dynamic_network.h"
#include "dynamics/registries.h"
#include "graph/generators.h"
#include "graph/neighborhood_cache.h"
#include "mwis/distributed_ptas.h"
#include "scenario/runner.h"
#include "scenario/scenario.h"
#include "util/rng.h"

namespace mhca {
namespace {

using scenario::Scenario;
using scenario::ScenarioRunner;

constexpr int kStructuralCases = 140;  // sequences in layer 1
constexpr int kEngineCases = 30;       // sequences in layer 2
constexpr int kDeltasPerCase = 12;

// ---------------------------------------------------------------- helpers

std::vector<std::pair<int, int>> edges_of(const Graph& g) {
  std::vector<std::pair<int, int>> out;
  for (int v = 0; v < g.size(); ++v)
    for (int u : g.neighbors(v))
      if (u > v) out.emplace_back(v, u);
  return out;
}

Graph from_edge_list(int n, const std::vector<std::pair<int, int>>& edges) {
  Graph g(n);
  for (const auto& [u, v] : edges) g.add_edge(u, v);
  g.finalize();
  return g;
}

/// Draw a random exact delta against `present` (mutated to the new truth).
void random_delta(int n, std::set<std::pair<int, int>>& present, Rng& rng,
                  std::vector<std::pair<int, int>>& added,
                  std::vector<std::pair<int, int>>& removed) {
  added.clear();
  removed.clear();
  const int removals = rng.uniform_int(0, 3);
  const int additions = rng.uniform_int(0, 3);
  for (int i = 0; i < removals && !present.empty(); ++i) {
    auto it = present.begin();
    std::advance(it, rng.uniform_int(0, static_cast<int>(present.size()) - 1));
    removed.push_back(*it);
    present.erase(it);
  }
  const std::set<std::pair<int, int>> just_removed(removed.begin(),
                                                   removed.end());
  for (int i = 0; i < additions; ++i) {
    for (int tries = 0; tries < 50; ++tries) {
      int u = rng.uniform_int(0, n - 1), v = rng.uniform_int(0, n - 1);
      if (u == v) continue;
      if (u > v) std::swap(u, v);
      // One delta is exact: it may not both remove and re-add an edge.
      if (present.count({u, v}) || just_removed.count({u, v})) continue;
      present.insert({u, v});
      added.emplace_back(u, v);
      break;
    }
  }
  std::sort(added.begin(), added.end());
  std::sort(removed.begin(), removed.end());
}

std::vector<int> touched_of(const std::vector<std::pair<int, int>>& added,
                            const std::vector<std::pair<int, int>>& removed) {
  std::vector<int> touched;
  for (const auto& [u, v] : added) {
    touched.push_back(u);
    touched.push_back(v);
  }
  for (const auto& [u, v] : removed) {
    touched.push_back(u);
    touched.push_back(v);
  }
  std::sort(touched.begin(), touched.end());
  touched.erase(std::unique(touched.begin(), touched.end()), touched.end());
  return touched;
}

// --------------------------------------------- layer 1: structural equality

TEST(DynamicsDifferential, GraphAndCacheMatchFreshBuildOnRandomSequences) {
  for (int c = 0; c < kStructuralCases; ++c) {
    SCOPED_TRACE("case " + std::to_string(c));
    Rng rng(1000 + static_cast<std::uint64_t>(c) * 37);
    // Mix sizes and densities; every 4th case crosses the r=3 regime, every
    // 3rd builds memoized covers too.
    const int n = 12 + (c % 5) * 9;
    const double degree = 2.0 + (c % 4);
    const int r = 1 + (c % 4) % 3;
    const bool covers = (c % 3) == 0;
    ConflictGraph base = random_geometric_avg_degree(
        n, degree, rng, /*force_connected=*/false);
    std::vector<std::pair<int, int>> edge_vec = edges_of(base.graph());
    std::set<std::pair<int, int>> present(edge_vec.begin(), edge_vec.end());

    Graph g = from_edge_list(n, edge_vec);
    NeighborhoodCache cache(g, r, covers);

    std::vector<std::pair<int, int>> added, removed;
    for (int d = 0; d < kDeltasPerCase; ++d) {
      random_delta(n, present, rng, added, removed);
      if (added.empty() && removed.empty()) continue;
      g.apply_delta(added, removed);
      cache.apply_delta(g, touched_of(added, removed));

      const Graph rebuilt = from_edge_list(
          n, std::vector<std::pair<int, int>>(present.begin(), present.end()));
      ASSERT_EQ(g.num_edges(), rebuilt.num_edges());
      for (int v = 0; v < n; ++v) {
        const auto na = g.neighbors(v);
        const auto nb = rebuilt.neighbors(v);
        ASSERT_TRUE(std::equal(na.begin(), na.end(), nb.begin(), nb.end()))
            << "row " << v << " diverged at delta " << d;
        if (g.has_adjacency_matrix()) {
          const auto ra = g.adjacency_row(v);
          const auto rb = rebuilt.adjacency_row(v);
          ASSERT_TRUE(std::equal(ra.begin(), ra.end(), rb.begin(), rb.end()))
              << "bitset row " << v << " diverged at delta " << d;
        }
      }
      const NeighborhoodCache fresh(rebuilt, r, covers);
      for (int v = 0; v < n; ++v) {
        const auto ball_a = cache.r_ball(v);
        const auto ball_b = fresh.r_ball(v);
        ASSERT_TRUE(std::equal(ball_a.begin(), ball_a.end(), ball_b.begin(),
                               ball_b.end()))
            << "r-ball " << v << " diverged at delta " << d;
        const auto e_a = cache.election_ball(v);
        const auto e_b = fresh.election_ball(v);
        ASSERT_TRUE(
            std::equal(e_a.begin(), e_a.end(), e_b.begin(), e_b.end()))
            << "election ball " << v << " diverged at delta " << d;
        if (covers) {
          ASSERT_EQ(cache.r_ball_clique_count(v),
                    fresh.r_ball_clique_count(v));
          const auto c_a = cache.r_ball_cover(v);
          const auto c_b = fresh.r_ball_cover(v);
          ASSERT_TRUE(
              std::equal(c_a.begin(), c_a.end(), c_b.begin(), c_b.end()))
              << "cover " << v << " diverged at delta " << d;
        }
      }
    }
  }
}

TEST(DynamicsDifferential, SparseRowGraphMatchesFreshBuildBeyondMatrixLimit) {
  // Same structural claim past the dense-matrix limit: apply_delta must
  // keep the sharded sparse rows (and the cache built over them) identical
  // to a cold rebuild. One sparse graph, many deltas — the n > 8192 build
  // is the expensive part, the deltas are cheap.
  const int n = Graph::kAdjacencyMatrixLimit + 40;
  Rng rng(4242);
  std::set<std::pair<int, int>> present;
  // A long path keeps balls nontrivial; random chords stress the blocks.
  for (int i = 0; i + 1 < 400; ++i) present.insert({i, i + 1});
  for (int t = 0; t < 300; ++t) {
    int u = rng.uniform_int(0, n - 1), v = rng.uniform_int(0, n - 1);
    if (u == v) continue;
    if (u > v) std::swap(u, v);
    present.insert({u, v});
  }
  Graph g = from_edge_list(
      n, std::vector<std::pair<int, int>>(present.begin(), present.end()));
  ASSERT_TRUE(g.has_sparse_rows());
  NeighborhoodCache cache(g, 1);

  std::vector<std::pair<int, int>> added, removed;
  for (int d = 0; d < 20; ++d) {
    random_delta(n, present, rng, added, removed);
    if (added.empty() && removed.empty()) continue;
    g.apply_delta(added, removed);
    cache.apply_delta(g, touched_of(added, removed));

    const Graph rebuilt = from_edge_list(
        n, std::vector<std::pair<int, int>>(present.begin(), present.end()));
    ASSERT_TRUE(rebuilt.has_sparse_rows());
    ASSERT_EQ(g.num_edges(), rebuilt.num_edges());
    for (int v = 0; v < n; ++v) {
      const auto ba = g.sparse_row_blocks(v);
      const auto bb = rebuilt.sparse_row_blocks(v);
      ASSERT_TRUE(std::equal(ba.begin(), ba.end(), bb.begin(), bb.end()))
          << "sparse blocks of row " << v << " diverged at delta " << d;
      const auto wa = g.sparse_row_words(v);
      const auto wb = rebuilt.sparse_row_words(v);
      ASSERT_TRUE(std::equal(wa.begin(), wa.end(), wb.begin(), wb.end()))
          << "sparse words of row " << v << " diverged at delta " << d;
    }
    // Spot-check cached balls against a fresh bounded BFS (a full fresh
    // cache per delta would dominate the test's runtime).
    BfsScratch scratch(n);
    std::vector<int> ball;
    for (int v = 0; v < n; v += 509) {
      scratch.k_hop_neighborhood(g, v, 1, ball);
      const auto cached = cache.r_ball(v);
      ASSERT_TRUE(std::equal(ball.begin(), ball.end(), cached.begin(),
                             cached.end()))
          << "ball " << v << " diverged at delta " << d;
      // This graph is past the matrix limit, so the cache runs the
      // implicit e-ball tier: apply_delta maintains sizes, not spans.
      scratch.k_hop_neighborhood(g, v, 2 * 1 + 1, ball);
      ASSERT_EQ(cache.election_ball_size(v), static_cast<int>(ball.size()))
          << "e-ball size " << v << " diverged at delta " << d;
    }
  }
}

// -------------------------------------------- batched delta coalescing

TEST(DynamicsDifferential, BatchedDeltasMatchEagerApplicationAtFlushSlots) {
  // DeltaBatch claim: accumulating k exact slot deltas and applying the
  // flushed net delta yields the graph that applying all k in order yields
  // — including when edges and nodes flip back and forth inside the window
  // (the high-churn draws below revisit the same small id range, so
  // cancellation actually happens).
  for (int c = 0; c < 40; ++c) {
    SCOPED_TRACE("case " + std::to_string(c));
    Rng rng(5000 + static_cast<std::uint64_t>(c) * 71);
    const int n = 8 + (c % 4) * 6;
    std::set<std::pair<int, int>> present;
    for (int t = 0; t < n; ++t) {
      int u = rng.uniform_int(0, n - 1), v = rng.uniform_int(0, n - 1);
      if (u == v) continue;
      if (u > v) std::swap(u, v);
      present.insert({u, v});
    }
    Graph eager = from_edge_list(
        n, std::vector<std::pair<int, int>>(present.begin(), present.end()));
    Graph batched = eager;

    dynamics::DeltaBatch batch;
    std::vector<std::pair<int, int>> added, removed;
    const int window = 2 + c % 5;
    for (int slot = 0; slot < window; ++slot) {
      random_delta(n, present, rng, added, removed);
      eager.apply_delta(added, removed);
      dynamics::GraphDelta d;
      d.added_edges = added;
      d.removed_edges = removed;
      batch.accumulate(d);
    }
    dynamics::GraphDelta net;
    batch.flush(net);
    batched.apply_delta(net.added_edges, net.removed_edges);
    ASSERT_EQ(eager.num_edges(), batched.num_edges());
    for (int v = 0; v < n; ++v) {
      const auto na = eager.neighbors(v);
      const auto nb = batched.neighbors(v);
      ASSERT_TRUE(std::equal(na.begin(), na.end(), nb.begin(), nb.end()))
          << "row " << v;
    }
    // The batch is reset by flush: a second flush is a no-op delta.
    dynamics::GraphDelta empty;
    batch.flush(empty);
    ASSERT_TRUE(empty.empty());
  }
}

TEST(DynamicsDifferential, BatchedNetworkMatchesEagerAtDecisionSlots) {
  // DynamicNetwork batch mode: same model, same seed, one network eager and
  // one batched to period P. At every flush slot the graphs, masks, and the
  // decisions of engines maintained over them must be byte-identical; in
  // between, the batched network must hold still.
  for (const int period : {2, 4, 7}) {
    SCOPED_TRACE("period " + std::to_string(period));
    Rng topo(31);
    ConflictGraph base = random_geometric_avg_degree(
        20, 4.0, topo, /*force_connected=*/false);
    const auto make_model = [&](std::uint64_t seed) {
      Rng rng(seed);
      scenario::ParamMap p;
      p.set("leave_prob", "0.15");
      p.set("join_prob", "0.4");
      const dynamics::DynamicsBuildContext ctx{&base, 100};
      return dynamics::dynamics_registry().create("churn", p, ctx, rng);
    };
    dynamics::DynamicNetwork eager(base, 3, make_model(9), true);
    dynamics::DynamicNetwork batched(base, 3, make_model(9), true);
    batched.set_batch_period(period);

    DistributedPtasConfig cfg;
    cfg.r = 2;
    DistributedRobustPtas eager_engine(eager.ecg().graph(), cfg);
    DistributedRobustPtas batched_engine(batched.ecg().graph(), cfg);

    Rng wrng(17);
    std::vector<double> w(
        static_cast<std::size_t>(eager.ecg().num_vertices()));
    int flushes = 0;
    for (std::int64_t t = 2; t <= 60; ++t) {
      const dynamics::SlotChange& ce = eager.advance(t);
      if (ce.changed) eager_engine.on_graph_delta(ce.touched_vertices);
      const dynamics::SlotChange& cb = batched.advance(t);
      if (cb.changed) batched_engine.on_graph_delta(cb.touched_vertices);

      const bool flush_slot = ((t - 1) % period) == 0;
      if (!flush_slot) {
        ASSERT_FALSE(cb.changed) << "batched network changed mid-window, t="
                                 << t;
        continue;
      }
      ++flushes;
      // Graph equality at the decision boundary.
      const Graph& ga = eager.ecg().graph();
      const Graph& gb = batched.ecg().graph();
      ASSERT_EQ(ga.num_edges(), gb.num_edges()) << "t=" << t;
      for (int v = 0; v < ga.size(); ++v) {
        const auto na = ga.neighbors(v);
        const auto nb = gb.neighbors(v);
        ASSERT_TRUE(std::equal(na.begin(), na.end(), nb.begin(), nb.end()))
            << "row " << v << " t=" << t;
      }
      ASSERT_EQ(eager.active_nodes(), batched.active_nodes()) << "t=" << t;
      // Decision equality over the maintained engines.
      for (auto& x : w) x = wrng.uniform(0.05, 1.0);
      const DistributedPtasResult a =
          eager_engine.run(w, eager.active_vertex_mask());
      const DistributedPtasResult b =
          batched_engine.run(w, batched.active_vertex_mask());
      ASSERT_EQ(a.winners, b.winners) << "t=" << t;
      ASSERT_EQ(a.weight, b.weight) << "t=" << t;
    }
    ASSERT_GT(flushes, 3);
  }
}

// ------------------------------------------------ layer 2: engine equality

TEST(DynamicsDifferential, LongLivedEngineMatchesFreshEnginePerDelta) {
  for (int c = 0; c < kEngineCases; ++c) {
    SCOPED_TRACE("case " + std::to_string(c));
    Rng rng(9000 + static_cast<std::uint64_t>(c) * 101);
    const int n = 30 + (c % 3) * 20;
    ConflictGraph base = random_geometric_avg_degree(
        n, 4.0, rng, /*force_connected=*/false);
    std::vector<std::pair<int, int>> edge_vec = edges_of(base.graph());
    std::set<std::pair<int, int>> present(edge_vec.begin(), edge_vec.end());
    Graph g = from_edge_list(n, edge_vec);

    DistributedPtasConfig cfg;
    cfg.r = 1 + c % 3;
    cfg.count_messages = true;
    cfg.use_memoized_covers = (c % 2) == 1;
    DistributedRobustPtas engine(g, cfg);

    std::vector<double> weights(static_cast<std::size_t>(n));
    std::vector<char> active(static_cast<std::size_t>(n), 1);
    std::vector<std::pair<int, int>> added, removed;
    for (int d = 0; d < kDeltasPerCase; ++d) {
      random_delta(n, present, rng, added, removed);
      g.apply_delta(added, removed);
      engine.on_graph_delta(touched_of(added, removed));
      for (auto& w : weights) w = rng.uniform(0.05, 1.0);
      // Mask a few vertices like a churn slot would.
      for (auto& a : active) a = rng.bernoulli(0.9) ? 1 : 0;

      DistributedRobustPtas fresh(g, cfg);
      const DistributedPtasResult got = engine.run(weights, active);
      const DistributedPtasResult want = fresh.run(weights, active);
      ASSERT_EQ(got.winners, want.winners) << "delta " << d;
      ASSERT_EQ(got.weight, want.weight) << "delta " << d;
      ASSERT_EQ(got.total_messages, want.total_messages) << "delta " << d;
      ASSERT_EQ(got.total_mini_timeslots, want.total_mini_timeslots);
      ASSERT_EQ(got.mini_rounds_used, want.mini_rounds_used);
      for (int w : got.winners)
        ASSERT_TRUE(active[static_cast<std::size_t>(w)])
            << "inactive vertex won";
      ASSERT_TRUE(g.is_independent_set(got.winners));
    }
  }
}

// --------------------------------------- layer 3: end-to-end sim equality

void expect_identical(const SimulationResult& a, const SimulationResult& b,
                      const std::string& what) {
  ASSERT_EQ(a.last_strategy, b.last_strategy) << what;
  ASSERT_EQ(a.total_observed, b.total_observed) << what;
  ASSERT_EQ(a.total_effective, b.total_effective) << what;
  ASSERT_EQ(a.total_expected, b.total_expected) << what;
  ASSERT_EQ(a.total_messages, b.total_messages) << what;
  ASSERT_EQ(a.total_mini_timeslots, b.total_mini_timeslots) << what;
  ASSERT_EQ(a.avg_strategy_size, b.avg_strategy_size) << what;
  ASSERT_EQ(a.final_means, b.final_means) << what;
  ASSERT_EQ(a.final_counts, b.final_counts) << what;
  ASSERT_EQ(a.cumavg_effective, b.cumavg_effective) << what;
  ASSERT_EQ(a.cum_expected, b.cum_expected) << what;
}

const char* kBaseScenario = R"(name = dyn-diff
[topology]
kind = geometric
nodes = 16
avg_degree = 4.5
[channel]
kind = gaussian
channels = 3
[policy]
kind = cab
[dynamics]
kind = churn
leave_prob = 0.08
join_prob = 0.3
[run]
slots = 50
series_stride = 10
count_messages = true
)";

TEST(DynamicsDifferential, IncrementalEqualsFullRebuildAcrossAllSolverModes) {
  struct Mode {
    const char* solver;
    const char* local;
  };
  const std::vector<Mode> modes{{"distributed", "exact"},
                                {"distributed", "greedy"},
                                {"centralized", "exact"},
                                {"greedy", "exact"},
                                {"exact", "exact"}};
  const std::vector<std::string> models{"churn", "waypoint", "primary_user"};
  int sequences = 0;
  for (const auto& mode : modes) {
    for (const auto& model : models) {
      for (const std::uint64_t seed : {3u, 17u}) {
        SCOPED_TRACE(std::string(mode.solver) + "/" + mode.local + "/" +
                     model + "/seed=" + std::to_string(seed));
        Scenario s = scenario::parse_scenario(kBaseScenario);
        scenario::apply_override(s, std::string("solver.kind=") + mode.solver);
        scenario::apply_override(s,
                                 std::string("solver.local_solver=") +
                                     mode.local);
        s.dynamics.model.params = scenario::ParamMap{};
        scenario::apply_override(s, std::string("dynamics.kind=") + model);
        if (model == "churn") {
          scenario::apply_override(s, "dynamics.leave_prob=0.08");
          scenario::apply_override(s, "dynamics.join_prob=0.3");
        } else if (model == "waypoint") {
          scenario::apply_override(s, "dynamics.speed=0.25");
        } else {
          scenario::apply_override(s, "dynamics.on_prob=0.15");
          scenario::apply_override(s, "dynamics.off_prob=0.3");
        }
        scenario::apply_override(s, "run.seed=" + std::to_string(seed));
        // Exercise carried-strategy pruning on half the grid.
        if (seed == 17u) scenario::apply_override(s, "run.update_period=3");

        Scenario full = s;
        scenario::apply_override(full, "dynamics.incremental=false");
        const SimulationResult inc = ScenarioRunner(s).run();
        const SimulationResult ref = ScenarioRunner(full).run();
        expect_identical(inc, ref, "incremental vs full rebuild");
        ++sequences;
      }
    }
  }
  EXPECT_EQ(sequences, 30);
}

TEST(DynamicsDifferential, SequenceCountCrossesTheBar) {
  // 140 structural + 30 engine + 30 end-to-end = 200 independently seeded
  // random delta sequences minimum (documented acceptance criterion).
  EXPECT_GE(kStructuralCases + kEngineCases + 30, 200);
}

}  // namespace
}  // namespace mhca
