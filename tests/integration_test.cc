// End-to-end integration & property tests tying the whole system together:
// learning + distributed decision + timing on realistic scenarios, regret
// sublinearity, policy comparisons (paper Figs. 7-8 in miniature), failure
// injection with primary users, and adversarial channels (future work §VII).
#include <gtest/gtest.h>

#include <memory>

#include "bandit/policy.h"
#include "channel/adversarial.h"
#include "channel/bernoulli.h"
#include "channel/gaussian.h"
#include "channel/primary_user.h"
#include "core/channel_access.h"
#include "graph/generators.h"
#include "sim/metrics.h"
#include "sim/optimum.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace mhca {
namespace {

SimulationResult run_policy(const ExtendedConflictGraph& ecg,
                            const ChannelModel& model, PolicyKind kind,
                            std::int64_t slots, int update_period = 1) {
  PolicyParams params;
  params.llr_max_strategy_len = ecg.num_nodes();
  auto policy = make_policy(kind, params);
  SimulationConfig cfg;
  cfg.slots = slots;
  cfg.update_period = update_period;
  cfg.series_stride = 10;
  Simulator sim(ecg, model, *policy, cfg);
  return sim.run();
}

class MiniFig7 : public ::testing::Test {
 protected:
  // A small connected network where the optimum is exactly computable —
  // the same methodology as the paper's Fig. 7 (15 users, 3 channels).
  MiniFig7() : rng_(1234), cg_(random_geometric_avg_degree(15, 4.0, rng_)),
               ecg_(cg_, 3), model_(15, 3, rng_) {}

  Rng rng_;
  ConflictGraph cg_;
  ExtendedConflictGraph ecg_;
  GaussianChannelModel model_;
};

TEST_F(MiniFig7, OptimumIsExactAndPositive) {
  const OptimumInfo opt = compute_optimum(ecg_, model_);
  EXPECT_TRUE(opt.exact);
  EXPECT_GT(opt.weight, 0.0);
  EXPECT_TRUE(ecg_.graph().is_independent_set(opt.vertices));
}

TEST_F(MiniFig7, PracticalRegretShapesMatchPaper) {
  const OptimumInfo opt = compute_optimum(ecg_, model_);
  const SimulationResult cab = run_policy(ecg_, model_, PolicyKind::kCab, 800);
  const SimulationResult llr = run_policy(ecg_, model_, PolicyKind::kLlr, 800);

  // Fig. 7a: practical regret stays well above zero (θ = 0.5 forfeits half
  // the throughput) for both policies...
  const auto pr_cab = practical_regret_series(cab, opt.weight);
  const auto pr_llr = practical_regret_series(llr, opt.weight);
  EXPECT_GT(pr_cab.back(), 0.25 * opt.weight);
  EXPECT_GT(pr_llr.back(), 0.25 * opt.weight);
  // ...and CAB ends at or below LLR (the paper's ordering).
  EXPECT_LE(pr_cab.back(), pr_llr.back() + 0.02 * opt.weight);

  // Fig. 7b: β-regret converges to a negative value for both policies.
  const double beta = theorem2_rho(3, 2);  // sqrt(75)
  EXPECT_LT(beta_regret_series(cab, opt.weight, beta).back(), 0.0);
  EXPECT_LT(beta_regret_series(llr, opt.weight, beta).back(), 0.0);
}

TEST_F(MiniFig7, IdealRegretRateDeclinesAndBetaRegretIsSublinear) {
  const OptimumInfo opt = compute_optimum(ecg_, model_);
  const SimulationResult cab =
      run_policy(ecg_, model_, PolicyKind::kCab, 2000);
  // Against R1 itself the regret keeps a linear component (the oracle is a
  // ρ-approximation, not exact — that is the paper's whole premise), but
  // the per-slot rate must not grow once exploration tapers off.
  const auto ideal = ideal_regret_series(cab, opt.weight);
  const std::size_t q1 = ideal.size() / 8;
  const double early = ideal[q1] / static_cast<double>(cab.slots[q1]);
  const double late = ideal.back() / static_cast<double>(cab.total_slots);
  EXPECT_LE(late, early + 1e-9);
  // β-regret (β = Theorem-2 ρ) must be negative: the learned throughput
  // beats the 1/β benchmark by a wide margin.
  const double beta = theorem2_rho(3, 2);
  const double beta_regret = static_cast<double>(cab.total_slots) *
                                 opt.weight / beta -
                             cab.total_expected;
  EXPECT_LT(beta_regret, 0.0);
}

TEST_F(MiniFig7, EstimatedVsActualGapSmallForCabLargeForLlr) {
  // The Fig. 8 signature: CAB's estimated throughput tracks actual closely;
  // LLR's estimate stays inflated.
  const SimulationResult cab =
      run_policy(ecg_, model_, PolicyKind::kCab, 1200);
  const SimulationResult llr =
      run_policy(ecg_, model_, PolicyKind::kLlr, 1200);
  const double cab_gap =
      std::abs(cab.cumavg_estimated.back() - cab.cumavg_effective.back());
  const double llr_gap =
      std::abs(llr.cumavg_estimated.back() - llr.cumavg_effective.back());
  EXPECT_LT(cab_gap, llr_gap);
  EXPECT_GT(llr_gap, 0.2 * llr.cumavg_effective.back());
}

TEST_F(MiniFig7, PeriodicUpdateImprovesEffectiveThroughput) {
  // Fig. 8 across periods: larger y -> higher realized fraction.
  const SimulationResult y1 = run_policy(ecg_, model_, PolicyKind::kCab, 500, 1);
  const SimulationResult y5 = run_policy(ecg_, model_, PolicyKind::kCab, 500, 5);
  const SimulationResult y20 =
      run_policy(ecg_, model_, PolicyKind::kCab, 500, 20);
  const double f1 = y1.total_effective / y1.total_observed;
  const double f5 = y5.total_effective / y5.total_observed;
  const double f20 = y20.total_effective / y20.total_observed;
  EXPECT_NEAR(f1, 0.5, 1e-9);
  EXPECT_GT(f5, 0.85);
  EXPECT_GT(f20, f5);
  // Staleness barely hurts expected throughput (paper's conclusion).
  const double per_slot_y1 =
      y1.total_expected / static_cast<double>(y1.total_slots);
  const double per_slot_y20 =
      y20.total_expected / static_cast<double>(y20.total_slots);
  EXPECT_GT(per_slot_y20, 0.8 * per_slot_y1);
}

TEST_F(MiniFig7, CabBeatsNaiveBaselinesOnExpectedThroughput) {
  const SimulationResult cab =
      run_policy(ecg_, model_, PolicyKind::kCab, 700);
  const SimulationResult eps =
      run_policy(ecg_, model_, PolicyKind::kEpsGreedy, 700);
  EXPECT_GT(cab.total_expected, 0.95 * eps.total_expected);
}

TEST(IntegrationBernoulli, LearningWorksOnOnOffChannels) {
  Rng rng(77);
  ConflictGraph cg = random_geometric_avg_degree(10, 3.5, rng);
  ExtendedConflictGraph ecg(cg, 3);
  BernoulliChannelModel model(10, 3, rng);
  const OptimumInfo opt = compute_optimum(ecg, model);
  const SimulationResult res =
      run_policy(ecg, model, PolicyKind::kCab, 1500);
  const double avg_expected =
      res.total_expected / static_cast<double>(res.total_slots);
  EXPECT_GT(avg_expected, 0.55 * opt.weight);
}

TEST(IntegrationPrimaryUser, BusyChannelsAvoidedInTheLongRun) {
  // Isolated nodes (no conflicts) so nothing *forces* use of the busy
  // channel; the learner must migrate to the free one.
  ConflictGraph cg = ConflictGraph::from_edges(4, {});
  ExtendedConflictGraph ecg(cg, 2);
  auto base = std::make_shared<GaussianChannelModel>(
      4, 2, std::vector<double>{900, 900, 900, 900, 900, 900, 900, 900}, 0.05,
      42);
  // Channel 0 is busy 90% of the time; channel 1 free.
  PrimaryUserChannelModel model(base, {0.9, 0.0}, 7);
  const SimulationResult res =
      run_policy(ecg, model, PolicyKind::kCab, 1200);
  // Count long-run plays on each channel.
  std::int64_t on_busy = 0, on_free = 0;
  for (int node = 0; node < 4; ++node) {
    on_busy += res.final_counts[static_cast<std::size_t>(
        ecg.vertex_of(node, 0))];
    on_free += res.final_counts[static_cast<std::size_t>(
        ecg.vertex_of(node, 1))];
  }
  EXPECT_GT(on_free, 2 * on_busy);
}

TEST(IntegrationAdversarial, SwapAdversaryRecoveredAfterChange) {
  // §VII future work: oblivious adversary swaps best/worst channels halfway.
  // The stochastic policy re-learns because exploration never fully stops
  // while m_k < t^{2/3}/K for displaced arms.
  Rng rng(99);
  ConflictGraph cg = ConflictGraph::from_edges(2, {});  // isolated nodes
  ExtendedConflictGraph ecg(cg, 3);
  const std::int64_t horizon = 3000;
  AdversarialChannelModel model(2, 3, AdversaryKind::kSwap, horizon, rng,
                                0.02);
  const SimulationResult res =
      run_policy(ecg, model, PolicyKind::kCab, horizon);
  // Expected throughput in the last 10% should recover to at least ~60% of
  // the per-slot optimum of the *new* regime.
  double new_opt = 0.0;
  for (int i = 0; i < 2; ++i) {
    double best = 0.0;
    for (int j = 0; j < 3; ++j)
      best = std::max(best, model.mean(i, j, horizon - 1));
    new_opt += best;
  }
  // Per-slot expected of the final recorded window:
  const std::size_t nrec = res.cum_expected.size();
  const double tail_expected =
      (res.cum_expected[nrec - 1] - res.cum_expected[nrec - 31]) /
      static_cast<double>(res.slots[nrec - 1] - res.slots[nrec - 31]);
  EXPECT_GT(tail_expected, 0.6 * new_opt);
}

// Seed sweep: the whole pipeline stays feasible and productive across
// random topologies (failure would throw inside the engine's IS assert).
class PipelineSweep : public ::testing::TestWithParam<int> {};

TEST_P(PipelineSweep, RandomTopologiesRunClean) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 2654435761ULL + 3);
  const int n = 8 + GetParam() * 3;
  ConflictGraph cg = random_geometric_avg_degree(n, 4.0, rng);
  const int m = 2 + GetParam() % 3;
  ExtendedConflictGraph ecg(cg, m);
  GaussianChannelModel model(n, m, rng);
  const SimulationResult res =
      run_policy(ecg, model, PolicyKind::kCab, 120);
  EXPECT_GT(res.total_observed, 0.0);
  EXPECT_TRUE(ecg.graph().is_independent_set(res.last_strategy));
}

INSTANTIATE_TEST_SUITE_P(Sizes, PipelineSweep, ::testing::Range(0, 8));

}  // namespace
}  // namespace mhca
