// Tests for the public facade (core/channel_access.h): step API, batch
// API, configuration plumbing.
#include <gtest/gtest.h>

#include "channel/gaussian.h"
#include "core/channel_access.h"
#include "graph/generators.h"
#include "util/rng.h"

namespace mhca {
namespace {

class CoreFixture : public ::testing::Test {
 protected:
  CoreFixture() : rng_(21), cg_(random_geometric_avg_degree(10, 4.0, rng_)) {
    cfg_.num_channels = 3;
  }

  Rng rng_;
  ConflictGraph cg_;
  ChannelAccessConfig cfg_;
};

TEST_F(CoreFixture, ConstructionExposesExtendedGraph) {
  ChannelAccessScheme scheme(cg_, cfg_);
  EXPECT_EQ(scheme.extended_graph().num_vertices(), 30);
  EXPECT_EQ(scheme.network().num_nodes(), 10);
  EXPECT_EQ(scheme.policy().name(), "CAB");
  EXPECT_EQ(scheme.current_round(), 0);
}

TEST_F(CoreFixture, DecideProducesFeasibleStrategy) {
  ChannelAccessScheme scheme(cg_, cfg_);
  const Strategy& s = scheme.decide();
  EXPECT_EQ(scheme.current_round(), 1);
  EXPECT_TRUE(scheme.extended_graph().is_feasible(s));
  EXPECT_FALSE(scheme.current_vertices().empty());
}

TEST_F(CoreFixture, ReportFeedsEstimates) {
  ChannelAccessScheme scheme(cg_, cfg_);
  const Strategy& s = scheme.decide();
  int transmitter = -1;
  for (int i = 0; i < 10; ++i)
    if (s.channel_of_node[static_cast<std::size_t>(i)] != Strategy::kNoChannel) {
      transmitter = i;
      break;
    }
  ASSERT_GE(transmitter, 0);
  scheme.report(transmitter, 0.8);
  const int chan =
      s.channel_of_node[static_cast<std::size_t>(transmitter)];
  const int v = scheme.extended_graph().vertex_of(transmitter, chan);
  EXPECT_EQ(scheme.estimates().count(v), 1);
  EXPECT_DOUBLE_EQ(scheme.estimates().mean(v), 0.8);
}

TEST_F(CoreFixture, ReportValidation) {
  ChannelAccessScheme scheme(cg_, cfg_);
  EXPECT_THROW(scheme.report(0, 0.5), std::logic_error);  // before decide
  const Strategy& s = scheme.decide();
  int silent = -1;
  for (int i = 0; i < 10; ++i)
    if (s.channel_of_node[static_cast<std::size_t>(i)] == Strategy::kNoChannel) {
      silent = i;
      break;
    }
  if (silent >= 0) {
    EXPECT_THROW(scheme.report(silent, 0.5), std::logic_error);
  }
  EXPECT_THROW(scheme.report(99, 0.5), std::logic_error);
}

TEST_F(CoreFixture, SteppingLearnsTheBetterChannel) {
  // Two isolated nodes (no conflicts), two channels with very different
  // rates: after a few rounds each node should settle on its best channel.
  ConflictGraph iso = ConflictGraph::from_edges(2, {});
  ChannelAccessConfig cfg;
  cfg.num_channels = 2;
  ChannelAccessScheme scheme(iso, cfg);
  // True means: node 0 prefers channel 1; node 1 prefers channel 0.
  const double mu[2][2] = {{0.2, 0.9}, {0.8, 0.1}};
  for (int t = 1; t <= 60; ++t) {
    const Strategy& s = scheme.decide();
    for (int i = 0; i < 2; ++i) {
      const int c = s.channel_of_node[static_cast<std::size_t>(i)];
      if (c != Strategy::kNoChannel) scheme.report(i, mu[i][c]);
    }
  }
  const Strategy& last = scheme.decide();
  EXPECT_EQ(last.channel_of_node[0], 1);
  EXPECT_EQ(last.channel_of_node[1], 0);
}

TEST_F(CoreFixture, BatchRunMatchesSimulatorShape) {
  ChannelAccessScheme scheme(cg_, cfg_);
  GaussianChannelModel model(10, 3, rng_);
  const SimulationResult res = scheme.run(model, 150);
  EXPECT_EQ(res.total_slots, 150);
  EXPECT_GT(res.total_observed, 0.0);
  EXPECT_EQ(res.slots.size(), res.cumavg_estimated.size());
}

TEST_F(CoreFixture, AllSolverKindsUsable) {
  GaussianChannelModel model(10, 3, rng_);
  for (SolverKind kind :
       {SolverKind::kDistributedPtas, SolverKind::kCentralizedPtas,
        SolverKind::kGreedy, SolverKind::kExact}) {
    ChannelAccessConfig cfg = cfg_;
    cfg.solver = kind;
    ChannelAccessScheme scheme(cg_, cfg);
    const Strategy& s = scheme.decide();
    EXPECT_TRUE(scheme.extended_graph().is_feasible(s)) << to_string(kind);
  }
}

TEST_F(CoreFixture, LlrDefaultsLToN) {
  ChannelAccessConfig cfg = cfg_;
  cfg.policy = PolicyKind::kLlr;
  ChannelAccessScheme scheme(cg_, cfg);
  EXPECT_EQ(scheme.policy().name(), "LLR");
}

TEST_F(CoreFixture, UpdatePeriodForwardedToBatchRun) {
  ChannelAccessConfig cfg = cfg_;
  cfg.update_period = 5;
  ChannelAccessScheme scheme(cg_, cfg);
  GaussianChannelModel model(10, 3, rng_);
  const SimulationResult res = scheme.run(model, 100);
  EXPECT_EQ(res.decisions, 20);
}

}  // namespace
}  // namespace mhca
