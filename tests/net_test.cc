// Tests for src/net: control-channel flooding, agent-local protocol state,
// and the full message-level runtime — including the key integration
// property that the message-level protocol computes *identical* decisions
// to the lockstep engine from purely local knowledge.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "bandit/estimates.h"
#include "bandit/policy.h"
#include "channel/gaussian.h"
#include "graph/extended_graph.h"
#include "graph/generators.h"
#include "mwis/distributed_ptas.h"
#include "net/control_channel.h"
#include "net/runtime.h"
#include "util/rng.h"

namespace mhca {
namespace {

using net::ControlChannel;
using net::DistributedRuntime;
using net::Message;
using net::MsgType;
using net::NetConfig;
using net::NetRoundResult;

Graph path_graph(int n) {
  Graph g(n);
  for (int i = 0; i + 1 < n; ++i) g.add_edge(i, i + 1);
  return g;
}

TEST(ControlChannel, FloodReachesExactlyTtlBall) {
  Graph g = path_graph(10);
  ControlChannel ch(g);
  Message m;
  m.type = MsgType::kHello;
  m.origin = 5;
  std::set<int> reached;
  ch.flood(m, 2, [&](int v, const Message&) { reached.insert(v); });
  EXPECT_EQ(reached, (std::set<int>{3, 4, 6, 7}));  // origin excluded
  // Messages counted include the origin's own transmission.
  EXPECT_EQ(ch.stats().messages, 5);
  EXPECT_EQ(ch.stats().floods, 1);
}

TEST(ControlChannel, TtlZeroDeliversNobody) {
  Graph g = path_graph(3);
  ControlChannel ch(g);
  Message m;
  m.origin = 1;
  int delivered = 0;
  ch.flood(m, 0, [&](int, const Message&) { ++delivered; });
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(ch.stats().messages, 1);
}

TEST(ControlChannel, TimeslotCharging) {
  Graph g = path_graph(3);
  ControlChannel ch(g);
  ch.charge_timeslots(5);
  ch.charge_timeslots(7);
  EXPECT_EQ(ch.stats().mini_timeslots, 12);
  ch.reset_stats();
  EXPECT_EQ(ch.stats().mini_timeslots, 0);
}

class NetFixture : public ::testing::Test {
 protected:
  NetFixture()
      : rng_(11),
        cg_(random_geometric_avg_degree(12, 4.0, rng_)),
        ecg_(cg_, 3),
        model_(12, 3, rng_) {}

  Rng rng_;
  ConflictGraph cg_;
  ExtendedConflictGraph ecg_;
  GaussianChannelModel model_;
};

TEST_F(NetFixture, RoundProducesIndependentStrategy) {
  DistributedRuntime rt(ecg_, model_, NetConfig{});
  const NetRoundResult res = rt.step();
  EXPECT_EQ(res.round, 1);
  EXPECT_FALSE(res.strategy.empty());
  EXPECT_TRUE(ecg_.graph().is_independent_set(res.strategy));
  EXPECT_GT(res.observed_sum, 0.0);
  EXPECT_GE(res.mini_rounds, 1);
}

TEST_F(NetFixture, AgentsStoreOnlyLocalTables) {
  DistributedRuntime rt(ecg_, model_, NetConfig{});
  // Space bound O(m): every agent's table is at most the whole graph and at
  // least its direct neighborhood.
  for (int v = 0; v < ecg_.num_vertices(); ++v) {
    const auto& a = rt.agent(v);
    EXPECT_LT(a.table_size(),
              static_cast<std::size_t>(ecg_.num_vertices()));
    EXPECT_GE(a.table_size(),
              static_cast<std::size_t>(ecg_.graph().degree(v)));
  }
  EXPECT_GT(rt.max_table_size(), 0u);
}

TEST_F(NetFixture, EstimatesUpdateOnlyForTransmitters) {
  DistributedRuntime rt(ecg_, model_, NetConfig{});
  const NetRoundResult res = rt.step();
  std::set<int> winners(res.strategy.begin(), res.strategy.end());
  for (int v = 0; v < ecg_.num_vertices(); ++v) {
    const auto& a = rt.agent(v);
    if (winners.count(v)) {
      EXPECT_EQ(a.own_count(), 1);
      EXPECT_GT(a.own_mean(), 0.0);
    } else {
      EXPECT_EQ(a.own_count(), 0);
    }
  }
}

TEST_F(NetFixture, MessageVolumeGrowsWithRounds) {
  DistributedRuntime rt(ecg_, model_, NetConfig{});
  rt.step();
  const auto m1 = rt.channel_stats().messages;
  rt.step();
  const auto m2 = rt.channel_stats().messages;
  EXPECT_GT(m1, 0);
  EXPECT_GT(m2, m1);
  EXPECT_GT(rt.channel_stats().mini_timeslots, 0);
}

// --- The central integration property: message-level protocol ==
// lockstep engine, round for round. ---
class Equivalence : public ::testing::TestWithParam<int> {};

TEST_P(Equivalence, NetRuntimeMatchesLockstepEngine) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
  ConflictGraph cg = random_geometric_avg_degree(10, 3.5, rng);
  const int m_channels = 3;
  ExtendedConflictGraph ecg(cg, m_channels);
  GaussianChannelModel model(10, m_channels, rng);

  NetConfig ncfg;
  ncfg.r = 2;
  ncfg.D = 4;
  ncfg.policy = PolicyKind::kCab;
  DistributedRuntime rt(ecg, model, ncfg);

  // Lockstep replica: global estimates + engine + same policy.
  DistributedPtasConfig dcfg;
  dcfg.r = 2;
  dcfg.max_mini_rounds = 4;
  DistributedRobustPtas engine(ecg.graph(), dcfg);
  auto policy = make_policy(PolicyKind::kCab);
  ArmEstimates est(ecg.num_vertices());

  std::vector<double> weights;
  for (std::int64_t t = 1; t <= 15; ++t) {
    const NetRoundResult net_res = rt.step();

    policy->compute_indices(est, t, weights);
    const DistributedPtasResult lock = engine.run(weights);
    ASSERT_EQ(net_res.strategy, lock.winners) << "round " << t;
    for (int v : lock.winners)
      est.observe(v, model.sample(ecg.master_of(v), ecg.channel_of(v), t));
  }

  // After the horizon the learning state must agree too.
  for (int v = 0; v < ecg.num_vertices(); ++v) {
    EXPECT_EQ(rt.agent(v).own_count(), est.count(v));
    EXPECT_NEAR(rt.agent(v).own_mean(), est.mean(v), 1e-12);
  }
}

TEST_P(Equivalence, LlrPolicyAlsoMatches) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 5);
  ConflictGraph cg = random_geometric_avg_degree(8, 3.0, rng);
  ExtendedConflictGraph ecg(cg, 2);
  GaussianChannelModel model(8, 2, rng);

  NetConfig ncfg;
  ncfg.policy = PolicyKind::kLlr;
  DistributedRuntime rt(ecg, model, ncfg);

  DistributedPtasConfig dcfg;
  dcfg.max_mini_rounds = 4;
  DistributedRobustPtas engine(ecg.graph(), dcfg);
  PolicyParams params;
  params.llr_max_strategy_len = ecg.num_nodes();
  auto policy = make_policy(PolicyKind::kLlr, params);
  ArmEstimates est(ecg.num_vertices());

  std::vector<double> weights;
  for (std::int64_t t = 1; t <= 10; ++t) {
    const NetRoundResult net_res = rt.step();
    policy->compute_indices(est, t, weights);
    const DistributedPtasResult lock = engine.run(weights);
    ASSERT_EQ(net_res.strategy, lock.winners) << "round " << t;
    for (int v : lock.winners)
      est.observe(v, model.sample(ecg.master_of(v), ecg.channel_of(v), t));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Equivalence, ::testing::Range(0, 8));

TEST_F(NetFixture, MessageBillMatchesLockstepAccounting) {
  // The real floods (LD + LB transmissions, and WB transmissions) must
  // equal the lockstep engine's analytic ball-size accounting, decision
  // for decision — the §IV-C communication-complexity numbers are the
  // same whichever implementation you measure.
  net::NetConfig ncfg;
  DistributedRuntime rt(ecg_, model_, ncfg);

  DistributedPtasConfig dcfg;
  dcfg.max_mini_rounds = ncfg.D;
  dcfg.count_messages = true;
  DistributedRobustPtas engine(ecg_.graph(), dcfg);
  auto policy = make_policy(PolicyKind::kCab);
  ArmEstimates est(ecg_.num_vertices());

  std::vector<double> weights;
  std::vector<int> prev;
  for (std::int64_t t = 1; t <= 6; ++t) {
    const auto before = rt.channel_stats();
    const NetRoundResult net_res = rt.step();
    const auto after = rt.channel_stats();

    policy->compute_indices(est, t, weights);
    std::int64_t lock_wb = 0;
    if (!prev.empty()) lock_wb = engine.weight_broadcast_messages(prev);
    const DistributedPtasResult lock = engine.run(weights);
    ASSERT_EQ(net_res.strategy, lock.winners);

    const std::int64_t net_ldlb =
        (after.of_type(net::MsgType::kLeaderDeclare) -
         before.of_type(net::MsgType::kLeaderDeclare)) +
        (after.of_type(net::MsgType::kDetermination) -
         before.of_type(net::MsgType::kDetermination));
    EXPECT_EQ(net_ldlb, lock.total_messages) << "round " << t;
    const std::int64_t net_wb =
        after.of_type(net::MsgType::kWeightUpdate) -
        before.of_type(net::MsgType::kWeightUpdate);
    EXPECT_EQ(net_wb, lock_wb) << "round " << t;

    prev = lock.winners;
    for (int v : lock.winners)
      est.observe(v, model_.sample(ecg_.master_of(v), ecg_.channel_of(v), t));
  }
}

TEST_F(NetFixture, UnlimitedMiniRoundsMarkEveryone) {
  NetConfig cfg;
  cfg.D = 0;  // run until all marked
  DistributedRuntime rt(ecg_, model_, cfg);
  const NetRoundResult res = rt.step();
  EXPECT_TRUE(res.all_marked);
}

TEST_F(NetFixture, GreedyLocalSolverWorks) {
  NetConfig cfg;
  cfg.local_solver = LocalSolverKind::kGreedy;
  DistributedRuntime rt(ecg_, model_, cfg);
  const NetRoundResult res = rt.step();
  EXPECT_TRUE(ecg_.graph().is_independent_set(res.strategy));
}

TEST(NetValidation, DimensionMismatchRejected) {
  Rng rng(3);
  ConflictGraph cg = linear_network(4);
  ExtendedConflictGraph ecg(cg, 2);
  GaussianChannelModel wrong(5, 2, rng);
  EXPECT_THROW(DistributedRuntime(ecg, wrong, NetConfig{}), std::logic_error);
}

TEST(NetLinearWorstCase, OneLeaderPerMiniRound) {
  // The Fig. 5 pathology, at message level: decreasing weights on a path.
  // We drive a single round with D = 0 and verify it still terminates and
  // produces a feasible maximal-ish strategy.
  const int n = 15;
  ConflictGraph cg = linear_network(n);
  ExtendedConflictGraph ecg(cg, 1);
  // Deterministic means, decreasing along the path.
  std::vector<double> rates;
  for (int i = 0; i < n; ++i)
    rates.push_back(1350.0 - 80.0 * static_cast<double>(i));
  GaussianChannelModel model(n, 1, rates, 0.0, 1);
  NetConfig cfg;
  cfg.D = 0;
  DistributedRuntime rt(ecg, model, cfg);
  const NetRoundResult res = rt.step();
  EXPECT_TRUE(res.all_marked);
  // Needs about n / (2r+1) = 3 mini-rounds.
  EXPECT_GE(res.mini_rounds, 3);
  EXPECT_TRUE(ecg.graph().is_independent_set(res.strategy));
}

}  // namespace
}  // namespace mhca
