// Tests for src/net: control-channel flooding, agent-local protocol state,
// and the full message-level runtime — including the key integration
// property that the message-level protocol computes *identical* decisions
// to the lockstep engine from purely local knowledge.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "bandit/estimates.h"
#include "bandit/policy.h"
#include "channel/gaussian.h"
#include "graph/extended_graph.h"
#include "graph/generators.h"
#include "mwis/distributed_ptas.h"
#include "net/control_channel.h"
#include "net/faults.h"
#include "net/oracle.h"
#include "net/runtime.h"
#include "util/rng.h"

namespace mhca {
namespace {

using net::ControlChannel;
using net::DistributedRuntime;
using net::Message;
using net::MsgType;
using net::NetConfig;
using net::NetRoundResult;

Graph path_graph(int n) {
  Graph g(n);
  for (int i = 0; i + 1 < n; ++i) g.add_edge(i, i + 1);
  return g;
}

TEST(ControlChannel, FloodReachesExactlyTtlBall) {
  Graph g = path_graph(10);
  ControlChannel ch(g);
  Message m;
  m.type = MsgType::kHello;
  m.origin = 5;
  std::set<int> reached;
  ch.flood(m, 2, [&](int v, const Message&) { reached.insert(v); });
  EXPECT_EQ(reached, (std::set<int>{3, 4, 6, 7}));  // origin excluded
  // Messages counted include the origin's own transmission.
  EXPECT_EQ(ch.stats().messages, 5);
  EXPECT_EQ(ch.stats().floods, 1);
}

TEST(ControlChannel, TtlZeroDeliversNobody) {
  Graph g = path_graph(3);
  ControlChannel ch(g);
  Message m;
  m.origin = 1;
  int delivered = 0;
  ch.flood(m, 0, [&](int, const Message&) { ++delivered; });
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(ch.stats().messages, 1);
}

TEST(ControlChannel, TimeslotCharging) {
  Graph g = path_graph(3);
  ControlChannel ch(g);
  ch.charge_timeslots(5);
  ch.charge_timeslots(7);
  EXPECT_EQ(ch.stats().mini_timeslots, 12);
  ch.reset_stats();
  EXPECT_EQ(ch.stats().mini_timeslots, 0);
}

class NetFixture : public ::testing::Test {
 protected:
  NetFixture()
      : rng_(11),
        cg_(random_geometric_avg_degree(12, 4.0, rng_)),
        ecg_(cg_, 3),
        model_(12, 3, rng_) {}

  Rng rng_;
  ConflictGraph cg_;
  ExtendedConflictGraph ecg_;
  GaussianChannelModel model_;
};

TEST_F(NetFixture, RoundProducesIndependentStrategy) {
  DistributedRuntime rt(ecg_, model_, NetConfig{});
  const NetRoundResult res = rt.step();
  EXPECT_EQ(res.round, 1);
  EXPECT_FALSE(res.strategy.empty());
  EXPECT_TRUE(ecg_.graph().is_independent_set(res.strategy));
  EXPECT_GT(res.observed_sum, 0.0);
  EXPECT_GE(res.mini_rounds, 1);
}

TEST_F(NetFixture, AgentsStoreOnlyLocalTables) {
  DistributedRuntime rt(ecg_, model_, NetConfig{});
  // Space bound O(m): every agent's table is at most the whole graph and at
  // least its direct neighborhood.
  for (int v = 0; v < ecg_.num_vertices(); ++v) {
    const auto& a = rt.agent(v);
    EXPECT_LT(a.table_size(),
              static_cast<std::size_t>(ecg_.num_vertices()));
    EXPECT_GE(a.table_size(),
              static_cast<std::size_t>(ecg_.graph().degree(v)));
  }
  EXPECT_GT(rt.max_table_size(), 0u);
}

TEST_F(NetFixture, EstimatesUpdateOnlyForTransmitters) {
  DistributedRuntime rt(ecg_, model_, NetConfig{});
  const NetRoundResult res = rt.step();
  std::set<int> winners(res.strategy.begin(), res.strategy.end());
  for (int v = 0; v < ecg_.num_vertices(); ++v) {
    const auto& a = rt.agent(v);
    if (winners.count(v)) {
      EXPECT_EQ(a.own_count(), 1);
      EXPECT_GT(a.own_mean(), 0.0);
    } else {
      EXPECT_EQ(a.own_count(), 0);
    }
  }
}

TEST_F(NetFixture, MessageVolumeGrowsWithRounds) {
  DistributedRuntime rt(ecg_, model_, NetConfig{});
  rt.step();
  const auto m1 = rt.channel_stats().messages;
  rt.step();
  const auto m2 = rt.channel_stats().messages;
  EXPECT_GT(m1, 0);
  EXPECT_GT(m2, m1);
  EXPECT_GT(rt.channel_stats().mini_timeslots, 0);
}

// --- The central integration property: message-level protocol ==
// lockstep engine, round for round. ---
class Equivalence : public ::testing::TestWithParam<int> {};

TEST_P(Equivalence, NetRuntimeMatchesLockstepEngine) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
  ConflictGraph cg = random_geometric_avg_degree(10, 3.5, rng);
  const int m_channels = 3;
  ExtendedConflictGraph ecg(cg, m_channels);
  GaussianChannelModel model(10, m_channels, rng);

  NetConfig ncfg;
  ncfg.r = 2;
  ncfg.D = 4;
  ncfg.policy = PolicyKind::kCab;
  DistributedRuntime rt(ecg, model, ncfg);

  // Lockstep replica: global estimates + engine + same policy.
  DistributedPtasConfig dcfg;
  dcfg.r = 2;
  dcfg.max_mini_rounds = 4;
  DistributedRobustPtas engine(ecg.graph(), dcfg);
  auto policy = make_policy(PolicyKind::kCab);
  ArmEstimates est(ecg.num_vertices());

  std::vector<double> weights;
  for (std::int64_t t = 1; t <= 15; ++t) {
    const NetRoundResult net_res = rt.step();

    policy->compute_indices(est, t, weights);
    const DistributedPtasResult lock = engine.run(weights);
    ASSERT_EQ(net_res.strategy, lock.winners) << "round " << t;
    for (int v : lock.winners)
      est.observe(v, model.sample(ecg.master_of(v), ecg.channel_of(v), t));
  }

  // After the horizon the learning state must agree too.
  for (int v = 0; v < ecg.num_vertices(); ++v) {
    EXPECT_EQ(rt.agent(v).own_count(), est.count(v));
    EXPECT_NEAR(rt.agent(v).own_mean(), est.mean(v), 1e-12);
  }
}

TEST_P(Equivalence, LlrPolicyAlsoMatches) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 5);
  ConflictGraph cg = random_geometric_avg_degree(8, 3.0, rng);
  ExtendedConflictGraph ecg(cg, 2);
  GaussianChannelModel model(8, 2, rng);

  NetConfig ncfg;
  ncfg.policy = PolicyKind::kLlr;
  DistributedRuntime rt(ecg, model, ncfg);

  DistributedPtasConfig dcfg;
  dcfg.max_mini_rounds = 4;
  DistributedRobustPtas engine(ecg.graph(), dcfg);
  PolicyParams params;
  params.llr_max_strategy_len = ecg.num_nodes();
  auto policy = make_policy(PolicyKind::kLlr, params);
  ArmEstimates est(ecg.num_vertices());

  std::vector<double> weights;
  for (std::int64_t t = 1; t <= 10; ++t) {
    const NetRoundResult net_res = rt.step();
    policy->compute_indices(est, t, weights);
    const DistributedPtasResult lock = engine.run(weights);
    ASSERT_EQ(net_res.strategy, lock.winners) << "round " << t;
    for (int v : lock.winners)
      est.observe(v, model.sample(ecg.master_of(v), ecg.channel_of(v), t));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Equivalence, ::testing::Range(0, 8));

TEST_F(NetFixture, MessageBillMatchesLockstepAccounting) {
  // The real floods (LD + LB transmissions, and WB transmissions) must
  // equal the lockstep engine's analytic ball-size accounting, decision
  // for decision — the §IV-C communication-complexity numbers are the
  // same whichever implementation you measure.
  net::NetConfig ncfg;
  DistributedRuntime rt(ecg_, model_, ncfg);

  DistributedPtasConfig dcfg;
  dcfg.max_mini_rounds = ncfg.D;
  dcfg.count_messages = true;
  DistributedRobustPtas engine(ecg_.graph(), dcfg);
  auto policy = make_policy(PolicyKind::kCab);
  ArmEstimates est(ecg_.num_vertices());

  std::vector<double> weights;
  std::vector<int> prev;
  for (std::int64_t t = 1; t <= 6; ++t) {
    const auto before = rt.channel_stats();
    const NetRoundResult net_res = rt.step();
    const auto after = rt.channel_stats();

    policy->compute_indices(est, t, weights);
    std::int64_t lock_wb = 0;
    if (!prev.empty()) lock_wb = engine.weight_broadcast_messages(prev);
    const DistributedPtasResult lock = engine.run(weights);
    ASSERT_EQ(net_res.strategy, lock.winners);

    const std::int64_t net_ldlb =
        (after.of_type(net::MsgType::kLeaderDeclare) -
         before.of_type(net::MsgType::kLeaderDeclare)) +
        (after.of_type(net::MsgType::kDetermination) -
         before.of_type(net::MsgType::kDetermination));
    EXPECT_EQ(net_ldlb, lock.total_messages) << "round " << t;
    const std::int64_t net_wb =
        after.of_type(net::MsgType::kWeightUpdate) -
        before.of_type(net::MsgType::kWeightUpdate);
    EXPECT_EQ(net_wb, lock_wb) << "round " << t;

    prev = lock.winners;
    for (int v : lock.winners)
      est.observe(v, model_.sample(ecg_.master_of(v), ecg_.channel_of(v), t));
  }
}

TEST_F(NetFixture, UnlimitedMiniRoundsMarkEveryone) {
  NetConfig cfg;
  cfg.D = 0;  // run until all marked
  DistributedRuntime rt(ecg_, model_, cfg);
  const NetRoundResult res = rt.step();
  EXPECT_TRUE(res.all_marked);
}

TEST_F(NetFixture, GreedyLocalSolverWorks) {
  NetConfig cfg;
  cfg.local_solver = LocalSolverKind::kGreedy;
  DistributedRuntime rt(ecg_, model_, cfg);
  const NetRoundResult res = rt.step();
  EXPECT_TRUE(ecg_.graph().is_independent_set(res.strategy));
}

TEST(NetValidation, DimensionMismatchRejected) {
  Rng rng(3);
  ConflictGraph cg = linear_network(4);
  ExtendedConflictGraph ecg(cg, 2);
  GaussianChannelModel wrong(5, 2, rng);
  EXPECT_THROW(DistributedRuntime(ecg, wrong, NetConfig{}), std::logic_error);
}

// --- Fault plane: billing, determinism, actionable validation ---

TEST(ControlChannelFaults, InvalidDropProbErrorNamesOffendingValue) {
  Graph g = path_graph(4);
  net::FaultProfile bad;
  bad.drop_prob = 1.0;
  try {
    ControlChannel ch(g, bad);
    FAIL() << "expected the fault profile to be rejected";
  } catch (const std::logic_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("drop_prob = 1.000000"), std::string::npos) << msg;
    EXPECT_NE(msg.find("[0, 1)"), std::string::npos) << msg;
  }
}

TEST(ControlChannelFaults, DuplicatesAreBilledAsTransmissions) {
  Graph g = path_graph(10);
  net::FaultProfile p;
  p.dup_prob = 0.9;
  p.seed = 5;
  ControlChannel ch(g, p);
  Message m;
  m.type = MsgType::kHello;
  m.origin = 5;
  int delivered = 0;
  ch.flood(m, 2, [&](int, const Message&) { ++delivered; });
  // The ttl-2 ball holds 4 receivers and the fault-free bill is 5 (origin
  // included). Every duplicate is one extra delivery *and* one extra billed
  // transmission — duplicated airtime is not free.
  EXPECT_GT(ch.stats().duplicates, 0);
  EXPECT_EQ(delivered, 4 + ch.stats().duplicates);
  EXPECT_EQ(ch.stats().messages, 5 + ch.stats().duplicates);
  EXPECT_EQ(ch.stats().of_type(MsgType::kHello), ch.stats().messages);
}

TEST(ControlChannelFaults, SameFloodReorderIsDeterministicAndLossless) {
  Graph g = path_graph(12);
  auto run = [&](std::vector<int>& order) {
    net::FaultProfile p;
    p.reorder_prob = 0.9;
    p.seed = 9;
    ControlChannel ch(g, p);
    Message m;
    m.type = MsgType::kWeightUpdate;
    m.origin = 6;
    ch.flood(m, 3, [&](int v, const Message&) { order.push_back(v); });
    return ch.stats().deferred;
  };
  std::vector<int> o1, o2;
  const auto d1 = run(o1);
  const auto d2 = run(o2);
  EXPECT_EQ(o1, o2);  // same (seed, schedule) => same delivery order
  EXPECT_EQ(d1, d2);
  EXPECT_GT(d1, 0);
  // Reordering permutes deliveries but loses and invents nothing.
  std::vector<int> sorted = o1;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<int>{3, 4, 5, 7, 8, 9}));
}

TEST(ControlChannelFaults, DelayedDeliveriesSurfaceAtTheirSlot) {
  Graph g = path_graph(10);
  net::FaultProfile p;
  p.reorder_prob = 0.9;
  p.delay_slots_max = 3;
  p.seed = 4;
  ControlChannel ch(g, p);
  ch.begin_slot(1, [](int, const Message&) {});
  Message m;
  m.type = MsgType::kHello;
  m.origin = 5;
  int now = 0;
  ch.flood(m, 2, [&](int, const Message&) { ++now; });
  ASSERT_GT(ch.pending_deliveries(), 0u);
  int later = 0;
  for (std::int64_t round = 2; round <= 5; ++round)
    ch.begin_slot(round, [&](int, const Message&) { ++later; });
  // Every deferred delivery lands within delay_slots_max slots; none is
  // lost, none is delivered twice.
  EXPECT_EQ(now + later, 4);
  EXPECT_EQ(ch.pending_deliveries(), 0u);
}

// --- View-synchronous membership ---

NetConfig view_sync_config() {
  NetConfig cfg;
  cfg.membership = net::MembershipMode::kViewSync;
  return cfg;
}

TEST_F(NetFixture, FaultFreeViewSyncMatchesOmniscientEveryRound) {
  DistributedRuntime omniscient(ecg_, model_, NetConfig{});
  DistributedRuntime viewsync(ecg_, model_, view_sync_config());
  for (int t = 1; t <= 20; ++t) {
    const NetRoundResult a = omniscient.step();
    const NetRoundResult b = viewsync.step();
    ASSERT_EQ(a.strategy, b.strategy) << "round " << t;
    EXPECT_EQ(b.tx_abstained, 0);
  }
  // A reliable wire never triggers the robustness machinery.
  const net::RuntimeCounters c = viewsync.counters();
  EXPECT_EQ(c.timeouts, 0);
  EXPECT_EQ(c.view_changes, 0);
  EXPECT_EQ(c.stale_decisions, 0);
}

TEST_F(NetFixture, ConvergenceOracleAcceptsFaultFreeViewSyncRun) {
  DistributedRuntime rt(ecg_, model_, view_sync_config());
  for (int t = 1; t <= 8; ++t) rt.step();
  const net::ConvergenceReport rep = net::check_convergence(rt, ecg_.graph());
  EXPECT_TRUE(rep.members_match);
  EXPECT_TRUE(rep.adjacency_match);
  EXPECT_TRUE(rep.stats_match);
  EXPECT_TRUE(rep.no_suspects);
  EXPECT_TRUE(rep.views_equal);
  EXPECT_TRUE(rep.no_pending);
  ASSERT_TRUE(rep.converged());
  const std::vector<int> predicted =
      net::lockstep_decision(rt, ecg_.graph(), rt.rounds_run() + 1);
  EXPECT_EQ(rt.step().strategy, predicted);
}

TEST_F(NetFixture, LivenessProbesAndViewChangesAreBilled) {
  NetConfig clean = view_sync_config();
  NetConfig lossy = view_sync_config();
  lossy.drop_prob = 0.4;
  lossy.drop_seed = 21;
  DistributedRuntime rt_clean(ecg_, model_, clean);
  DistributedRuntime rt_lossy(ecg_, model_, lossy);
  for (int t = 1; t <= 20; ++t) {
    rt_clean.step();
    rt_lossy.step();
  }
  const net::RuntimeCounters c = rt_lossy.counters();
  EXPECT_GT(c.timeouts, 0);
  EXPECT_GT(c.retries, 0);
  EXPECT_GT(c.view_changes, 0);
  // Retried hellos and view-change floods are real airtime: the lossy run
  // floods strictly more often than the clean one (drops remove
  // transmissions, never floods).
  EXPECT_GT(rt_lossy.channel_stats().floods, rt_clean.channel_stats().floods);
  EXPECT_GT(rt_lossy.channel_stats().of_type(MsgType::kViewChange), 0);
}

TEST(NetLinearWorstCase, OneLeaderPerMiniRound) {
  // The Fig. 5 pathology, at message level: decreasing weights on a path.
  // We drive a single round with D = 0 and verify it still terminates and
  // produces a feasible maximal-ish strategy.
  const int n = 15;
  ConflictGraph cg = linear_network(n);
  ExtendedConflictGraph ecg(cg, 1);
  // Deterministic means, decreasing along the path.
  std::vector<double> rates;
  for (int i = 0; i < n; ++i)
    rates.push_back(1350.0 - 80.0 * static_cast<double>(i));
  GaussianChannelModel model(n, 1, rates, 0.0, 1);
  NetConfig cfg;
  cfg.D = 0;
  DistributedRuntime rt(ecg, model, cfg);
  const NetRoundResult res = rt.step();
  EXPECT_TRUE(res.all_marked);
  // Needs about n / (2r+1) = 3 mini-rounds.
  EXPECT_GE(res.mini_rounds, 3);
  EXPECT_TRUE(ecg.graph().is_independent_set(res.strategy));
}

}  // namespace
}  // namespace mhca
