// Reproduces Fig. 7: practical regret (a) and practical β-regret (b) over
// time, Algorithm 2 (CAB index) vs the LLR learning policy, on a small
// random connected network (15 users, 3 channels) whose optimum is computed
// exactly by branch and bound — the paper's methodology verbatim.
//
// Paper claims to reproduce:
//   * Algorithm 2 outperforms LLR on both metrics.
//   * Practical regret stays far above 0 (θ = 0.5 forfeits half of every
//     decision slot's throughput).
//   * β-regret converges to a *negative* value for both policies
//     (β = Theorem-2 ρ = sqrt(M (2r+1)^2) = sqrt(75) for M = 3, r = 2).
#include <iostream>

#include "bandit/policy.h"
#include "channel/gaussian.h"
#include "graph/extended_graph.h"
#include "graph/generators.h"
#include "sim/export.h"
#include "sim/metrics.h"
#include "sim/optimum.h"
#include "sim/simulator.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "util/table.h"

int main() {
  using namespace mhca;
  const int kUsers = 15;
  const int kChannels = 3;
  const std::int64_t kSlots = 1000;
  const int kStride = 50;

  Rng rng(20140707);
  ConflictGraph cg = random_geometric_avg_degree(kUsers, 4.0, rng);
  ExtendedConflictGraph ecg(cg, kChannels);
  GaussianChannelModel model(kUsers, kChannels, rng);

  const OptimumInfo opt = compute_optimum(ecg, model);
  const double r1_kbps = opt.weight * kRateScaleKbps;
  const double beta = theorem2_rho(kChannels, 2);

  std::cout << "=== Fig. 7: practical regret / beta-regret vs time slot ===\n"
            << "Network: " << kUsers << " users x " << kChannels
            << " channels, exact optimum R1 = " << fixed(r1_kbps, 2)
            << " kbps (computed by brute-force BnB, exact="
            << (opt.exact ? "yes" : "no") << ")\n"
            << "theta = 0.5 (Table II timing), beta = rho = " << fixed(beta, 3)
            << "\n\n";

  auto run = [&](PolicyKind kind) {
    PolicyParams params;
    params.llr_max_strategy_len = kUsers;
    auto policy = make_policy(kind, params);
    SimulationConfig cfg;
    cfg.slots = kSlots;
    cfg.series_stride = kStride;
    Simulator sim(ecg, model, *policy, cfg);
    return sim.run();
  };

  SimulationResult cab, llr;
  parallel_run(2, [&](int i) {
    if (i == 0)
      cab = run(PolicyKind::kCab);
    else
      llr = run(PolicyKind::kLlr);
  });

  const auto pr_cab = practical_regret_series(cab, opt.weight);
  const auto pr_llr = practical_regret_series(llr, opt.weight);
  const auto br_cab = beta_regret_series(cab, opt.weight, beta);
  const auto br_llr = beta_regret_series(llr, opt.weight, beta);

  TablePrinter table({"slot", "regret Alg2", "regret LLR", "b-regret Alg2",
                      "b-regret LLR"});
  for (std::size_t i = 0; i < cab.slots.size(); ++i) {
    table.row(cab.slots[i], fixed(pr_cab[i] * kRateScaleKbps, 1),
              fixed(pr_llr[i] * kRateScaleKbps, 1),
              fixed(br_cab[i] * kRateScaleKbps, 1),
              fixed(br_llr[i] * kRateScaleKbps, 1));
  }
  table.print(std::cout);

  std::cout << "\nSummary (kbps):\n";
  TablePrinter sum({"metric", "Alg2 (CAB)", "LLR", "paper-shape check"});
  sum.row("final practical regret", fixed(pr_cab.back() * kRateScaleKbps, 1),
          fixed(pr_llr.back() * kRateScaleKbps, 1),
          pr_cab.back() <= pr_llr.back() ? "Alg2 <= LLR: OK" : "MISMATCH");
  sum.row("final beta-regret", fixed(br_cab.back() * kRateScaleKbps, 1),
          fixed(br_llr.back() * kRateScaleKbps, 1),
          (br_cab.back() < 0 && br_llr.back() < 0) ? "both negative: OK"
                                                   : "MISMATCH");
  sum.row("regret >> 0 (theta loss)",
          fixed(pr_cab.back() / opt.weight, 3), fixed(pr_llr.back() / opt.weight, 3),
          pr_cab.back() > 0.25 * opt.weight ? "OK" : "MISMATCH");
  sum.print(std::cout);

  if (export_series_csv(cab, "fig7_alg2.csv", kRateScaleKbps) &&
      export_series_csv(llr, "fig7_llr.csv", kRateScaleKbps))
    std::cout << "\n(raw series exported to ./fig7_alg2.csv, ./fig7_llr.csv)\n";
  return 0;
}
