// Reproduces Fig. 7: practical regret (a) and practical β-regret (b) over
// time, Algorithm 2 (CAB index) vs the LLR learning policy, on a small
// random connected network (15 users, 3 channels) whose optimum is computed
// exactly by branch and bound — the paper's methodology verbatim.
//
// Paper claims to reproduce:
//   * Algorithm 2 outperforms LLR on both metrics.
//   * Practical regret stays far above 0 (θ = 0.5 forfeits half of every
//     decision slot's throughput).
//   * β-regret converges to a *negative* value for both policies
//     (β = Theorem-2 ρ = sqrt(M (2r+1)^2) = sqrt(75) for M = 3, r = 2).
//
// The two curves are one Scenario override apart (policy.kind); both
// runners share the seed, hence face the identical network and channels.
#include <iostream>

#include "channel/rates.h"
#include "scenario/runner.h"
#include "sim/export.h"
#include "sim/metrics.h"
#include "sim/optimum.h"
#include "util/parallel.h"
#include "util/table.h"

namespace {

const char* kBase = R"(name = fig7-regret
[topology]
kind = geometric
nodes = 15
avg_degree = 4.0
[channel]
kind = gaussian
channels = 3
[policy]
kind = cab
[run]
slots = 1000
seed = 20140707
series_stride = 50
)";

}  // namespace

int main() {
  using namespace mhca;
  const scenario::Scenario base = scenario::parse_scenario(kBase);

  const scenario::ScenarioRunner cab_runner(base);
  scenario::Scenario llr_scenario = base;
  scenario::apply_override(llr_scenario, "policy.kind=llr");
  const scenario::ScenarioRunner llr_runner(llr_scenario);

  const OptimumInfo opt =
      compute_optimum(cab_runner.extended_graph(), cab_runner.model());
  const double r1_kbps = opt.weight * kRateScaleKbps;
  const double beta = theorem2_rho(base.num_channels, base.solver.r);

  std::cout << "=== Fig. 7: practical regret / beta-regret vs time slot ===\n"
            << "Network: " << cab_runner.network().num_nodes() << " users x "
            << base.num_channels
            << " channels, exact optimum R1 = " << fixed(r1_kbps, 2)
            << " kbps (computed by brute-force BnB, exact="
            << (opt.exact ? "yes" : "no") << ")\n"
            << "theta = 0.5 (Table II timing), beta = rho = " << fixed(beta, 3)
            << "\n\n";

  SimulationResult cab, llr;
  parallel_run(2, [&](int i) {
    if (i == 0)
      cab = cab_runner.run();
    else
      llr = llr_runner.run();
  });

  const auto pr_cab = practical_regret_series(cab, opt.weight);
  const auto pr_llr = practical_regret_series(llr, opt.weight);
  const auto br_cab = beta_regret_series(cab, opt.weight, beta);
  const auto br_llr = beta_regret_series(llr, opt.weight, beta);

  TablePrinter table({"slot", "regret Alg2", "regret LLR", "b-regret Alg2",
                      "b-regret LLR"});
  for (std::size_t i = 0; i < cab.slots.size(); ++i) {
    table.row(cab.slots[i], fixed(pr_cab[i] * kRateScaleKbps, 1),
              fixed(pr_llr[i] * kRateScaleKbps, 1),
              fixed(br_cab[i] * kRateScaleKbps, 1),
              fixed(br_llr[i] * kRateScaleKbps, 1));
  }
  table.print(std::cout);

  std::cout << "\nSummary (kbps):\n";
  TablePrinter sum({"metric", "Alg2 (CAB)", "LLR", "paper-shape check"});
  sum.row("final practical regret", fixed(pr_cab.back() * kRateScaleKbps, 1),
          fixed(pr_llr.back() * kRateScaleKbps, 1),
          pr_cab.back() <= pr_llr.back() ? "Alg2 <= LLR: OK" : "MISMATCH");
  sum.row("final beta-regret", fixed(br_cab.back() * kRateScaleKbps, 1),
          fixed(br_llr.back() * kRateScaleKbps, 1),
          (br_cab.back() < 0 && br_llr.back() < 0) ? "both negative: OK"
                                                   : "MISMATCH");
  sum.row("regret >> 0 (theta loss)",
          fixed(pr_cab.back() / opt.weight, 3), fixed(pr_llr.back() / opt.weight, 3),
          pr_cab.back() > 0.25 * opt.weight ? "OK" : "MISMATCH");
  sum.print(std::cout);

  if (export_series_csv(cab, "fig7_alg2.csv", kRateScaleKbps) &&
      export_series_csv(llr, "fig7_llr.csv", kRateScaleKbps))
    std::cout << "\n(raw series exported to ./fig7_alg2.csv, ./fig7_llr.csv)\n";
  return 0;
}
