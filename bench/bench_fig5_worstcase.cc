// Reproduces the Fig. 5 discussion (§IV-D): on a linear network with
// strictly decreasing weights, only one LocalLeader can emerge per
// mini-round, so full termination needs Θ(N) mini-rounds — while random
// networks (Theorem 4 / Fig. 6) finish in a small constant number. Also
// shows what a fixed budget D recovers on the pathological instance.
//
// Cells are Scenario overrides on a declarative base (topology kind/size
// swapped per cell); the engine runs from ScenarioRunner::engine_config().
#include <iostream>

#include "mwis/distributed_ptas.h"
#include "scenario/runner.h"
#include "util/parallel.h"
#include "util/table.h"

namespace {

const char* kBase = R"(name = fig5-worstcase
[topology]
kind = linear
nodes = 20
[channel]
kind = gaussian
channels = 1
[solver]
kind = distributed
r = 2
D = 0
)";

}  // namespace

int main() {
  using namespace mhca;
  std::cout << "=== Fig. 5 worst case: linear network, decreasing weights ===\n\n";

  const scenario::Scenario base = scenario::parse_scenario(kBase);
  auto cell = [&](std::initializer_list<std::string> overrides) {
    scenario::Scenario s = base;
    for (const auto& ov : overrides) scenario::apply_override(s, ov);
    return scenario::ScenarioRunner(s);
  };

  TablePrinter table({"N", "mini-rounds (linear)", "mini-rounds (random)",
                      "leaders/round (linear)"});
  const std::vector<int> sizes{20, 40, 80, 160};
  struct Row {
    int linear_rounds = 0;
    int random_rounds = 0;
    double avg_leaders = 0.0;
  };
  std::vector<Row> rows(sizes.size());
  parallel_run(static_cast<int>(sizes.size()), [&](int job) {
    const int n = sizes[static_cast<std::size_t>(job)];
    const std::string nodes = "topology.nodes=" + std::to_string(n);
    // Pathological: path graph, strictly decreasing weights, M = 1.
    const scenario::ScenarioRunner path = cell({nodes});
    std::vector<double> w(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
      w[static_cast<std::size_t>(i)] =
          1.0 - 0.9 * static_cast<double>(i) / static_cast<double>(n);
    DistributedRobustPtas path_engine(path.extended_graph().graph(),
                                      path.engine_config());
    const DistributedPtasResult pres = path_engine.run(w);
    double avg_leaders = 0.0;
    for (const auto& mr : pres.mini_rounds) avg_leaders += mr.leaders;
    avg_leaders /= static_cast<double>(pres.mini_rounds.size());

    // Control: random geometric network of the same size and M.
    const scenario::ScenarioRunner rnd =
        cell({"topology.kind=geometric", nodes, "topology.avg_degree=6.0",
              "run.seed=" + std::to_string(n)});
    DistributedRobustPtas rnd_engine(rnd.extended_graph().graph(),
                                     rnd.engine_config());
    const DistributedPtasResult rres =
        rnd_engine.run(rnd.model().mean_matrix());

    rows[static_cast<std::size_t>(job)] =
        Row{pres.mini_rounds_used, rres.mini_rounds_used, avg_leaders};
  });
  for (std::size_t i = 0; i < sizes.size(); ++i)
    table.row(sizes[i], rows[i].linear_rounds, rows[i].random_rounds,
              fixed(rows[i].avg_leaders, 2));
  table.print(std::cout);

  std::cout << "\nWeight recovered by a fixed budget D on the linear worst "
               "case (N = 80):\n";
  const scenario::ScenarioRunner n80 = cell({"topology.nodes=80"});
  std::vector<double> w(80);
  for (int i = 0; i < 80; ++i)
    w[static_cast<std::size_t>(i)] = 1.0 - 0.9 * i / 80.0;
  DistributedRobustPtas full(n80.extended_graph().graph(), n80.engine_config());
  const double opt = full.run(w).weight;
  TablePrinter budget({"D", "relative weight", "all marked?"});
  for (int d : {1, 2, 4, 8, 16, 0}) {
    const scenario::ScenarioRunner bounded =
        cell({"topology.nodes=80", "solver.D=" + std::to_string(d)});
    DistributedRobustPtas engine(bounded.extended_graph().graph(),
                                 bounded.engine_config());
    const DistributedPtasResult res = engine.run(w);
    budget.row(d == 0 ? std::string("inf") : std::to_string(d),
               fixed(res.weight / opt, 3), res.all_marked ? "yes" : "no");
  }
  budget.print(std::cout);
  std::cout << "\nExpected shape: linear case needs ~N/(2r+1) mini-rounds\n"
            << "(one leader per round); random case a small constant.\n";
  return 0;
}
