// Reproduces the Fig. 5 discussion (§IV-D): on a linear network with
// strictly decreasing weights, only one LocalLeader can emerge per
// mini-round, so full termination needs Θ(N) mini-rounds — while random
// networks (Theorem 4 / Fig. 6) finish in a small constant number. Also
// shows what a fixed budget D recovers on the pathological instance.
#include <iostream>

#include "channel/gaussian.h"
#include "graph/extended_graph.h"
#include "graph/generators.h"
#include "mwis/distributed_ptas.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "util/table.h"

int main() {
  using namespace mhca;
  std::cout << "=== Fig. 5 worst case: linear network, decreasing weights ===\n\n";

  TablePrinter table({"N", "mini-rounds (linear)", "mini-rounds (random)",
                      "leaders/round (linear)"});
  const std::vector<int> sizes{20, 40, 80, 160};
  struct Row {
    int linear_rounds = 0;
    int random_rounds = 0;
    double avg_leaders = 0.0;
  };
  std::vector<Row> rows(sizes.size());
  parallel_run(static_cast<int>(sizes.size()), [&](int job) {
    const int n = sizes[static_cast<std::size_t>(job)];
    // Pathological: path graph, strictly decreasing weights, M = 1.
    ConflictGraph path = linear_network(n);
    ExtendedConflictGraph hpath(path, 1);
    std::vector<double> w(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
      w[static_cast<std::size_t>(i)] =
          1.0 - 0.9 * static_cast<double>(i) / static_cast<double>(n);
    DistributedRobustPtas path_engine(hpath.graph(), {});
    const DistributedPtasResult pres = path_engine.run(w);
    double avg_leaders = 0.0;
    for (const auto& mr : pres.mini_rounds) avg_leaders += mr.leaders;
    avg_leaders /= static_cast<double>(pres.mini_rounds.size());

    // Control: random geometric network of the same size and M.
    Rng rng(static_cast<std::uint64_t>(n));
    ConflictGraph rnd = random_geometric_avg_degree(n, 6.0, rng);
    ExtendedConflictGraph hrnd(rnd, 1);
    GaussianChannelModel model(n, 1, rng);
    DistributedRobustPtas rnd_engine(hrnd.graph(), {});
    const DistributedPtasResult rres = rnd_engine.run(model.mean_matrix());

    rows[static_cast<std::size_t>(job)] =
        Row{pres.mini_rounds_used, rres.mini_rounds_used, avg_leaders};
  });
  for (std::size_t i = 0; i < sizes.size(); ++i)
    table.row(sizes[i], rows[i].linear_rounds, rows[i].random_rounds,
              fixed(rows[i].avg_leaders, 2));
  table.print(std::cout);

  std::cout << "\nWeight recovered by a fixed budget D on the linear worst "
               "case (N = 80):\n";
  ConflictGraph path = linear_network(80);
  ExtendedConflictGraph hp(path, 1);
  std::vector<double> w(80);
  for (int i = 0; i < 80; ++i)
    w[static_cast<std::size_t>(i)] = 1.0 - 0.9 * i / 80.0;
  DistributedRobustPtas full(hp.graph(), {});
  const double opt = full.run(w).weight;
  TablePrinter budget({"D", "relative weight", "all marked?"});
  for (int d : {1, 2, 4, 8, 16, 0}) {
    DistributedPtasConfig cfg;
    cfg.max_mini_rounds = d;
    DistributedRobustPtas engine(hp.graph(), cfg);
    const DistributedPtasResult res = engine.run(w);
    budget.row(d == 0 ? std::string("inf") : std::to_string(d),
               fixed(res.weight / opt, 3), res.all_marked ? "yes" : "no");
  }
  budget.print(std::cout);
  std::cout << "\nExpected shape: linear case needs ~N/(2r+1) mini-rounds\n"
            << "(one leader per round); random case a small constant.\n";
  return 0;
}
