// Measures the §IV-C complexity claims:
//   * communication: O(r^2 + D) messages per vertex per round,
//   * space: O(m) per vertex (the (2r+1)-hop table),
//   * computation: strategy-decision time grows mildly with N for the
//     distributed engine (work is per-neighborhood) while the centralized
//     robust PTAS scans the whole graph sequentially.
//
// Message/space columns come from the message-level protocol runtime
// (real floods); timing columns from the lockstep engine (same decisions).
#include <chrono>
#include <iostream>

#include "bandit/policy.h"
#include "channel/gaussian.h"
#include "graph/cds.h"
#include "graph/extended_graph.h"
#include "graph/generators.h"
#include "mwis/distributed_ptas.h"
#include "mwis/greedy.h"
#include "mwis/robust_ptas.h"
#include "net/runtime.h"
#include "util/rng.h"
#include "util/table.h"

int main() {
  using namespace mhca;
  using Clock = std::chrono::steady_clock;

  std::cout << "=== Protocol complexity per round (r = 2, D = 4, M = 4) ===\n"
            << "msg/vertex/round should stay ~O(r^2+D) (constant in N);\n"
            << "table size m is the per-vertex space bound.\n\n";

  TablePrinter comms({"N", "K=N*M", "rounds", "msg/vertex/round",
                      "mini-timeslots/round", "max table m", "avg |J_G,1|"});
  for (int n : {20, 40, 80, 160}) {
    Rng rng(static_cast<std::uint64_t>(n) * 11 + 1);
    ConflictGraph cg = random_geometric_avg_degree(n, 6.0, rng, /*force_connected=*/false);
    ExtendedConflictGraph ecg(cg, 4);
    GaussianChannelModel model(n, 4, rng);
    net::NetConfig cfg;
    net::DistributedRuntime rt(ecg, model, cfg);
    const auto base = rt.channel_stats();  // discovery cost excluded below
    const int kRounds = 5;
    for (int i = 0; i < kRounds; ++i) rt.step();
    const auto& st = rt.channel_stats();
    const double msg_per_vertex_round =
        static_cast<double>(st.messages - base.messages) /
        (static_cast<double>(kRounds) * ecg.num_vertices());
    comms.row(n, ecg.num_vertices(), kRounds, fixed(msg_per_vertex_round, 2),
              fixed(static_cast<double>(st.mini_timeslots) / kRounds, 1),
              rt.max_table_size(), fixed(cg.graph().average_degree() + 1, 1));
  }
  comms.print(std::cout);

  std::cout << "\n=== Strategy-decision wall time (one decision, M = 5) ===\n";
  TablePrinter times({"N", "K", "distributed (ms)", "centralized PTAS (ms)",
                      "global greedy (ms)", "dist weight / greedy weight"});
  for (int n : {50, 100, 200, 400}) {
    Rng rng(static_cast<std::uint64_t>(n) * 7 + 3);
    ConflictGraph cg = random_geometric_avg_degree(n, 6.0, rng, /*force_connected=*/false);
    ExtendedConflictGraph ecg(cg, 5);
    GaussianChannelModel model(n, 5, rng);
    const std::vector<double> w = model.mean_matrix();

    DistributedPtasConfig dcfg;
    dcfg.bnb_node_cap = 20'000;
    DistributedRobustPtas engine(ecg.graph(), dcfg);
    auto t0 = Clock::now();
    const auto dres = engine.run(w);
    const double dist_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - t0).count();

    RobustPtasSolver ptas(1.0, 3, 20'000);
    t0 = Clock::now();
    ptas.solve_all(ecg.graph(), w);
    const double cent_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - t0).count();

    GreedyMwisSolver greedy;
    t0 = Clock::now();
    const auto gres = greedy.solve_all(ecg.graph(), w);
    const double greedy_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - t0).count();

    times.row(n, ecg.num_vertices(), fixed(dist_ms, 2), fixed(cent_ms, 2),
              fixed(greedy_ms, 2), fixed(dres.weight / gres.weight, 3));
  }
  times.print(std::cout);
  std::cout << "\nNote: the distributed engine simulates all vertices on one\n"
            << "core; per-vertex work is the per-neighborhood share.\n";

  // §IV-C also argues WB can be pipelined over a CDS backbone so a
  // (2r+1)-hop broadcast finishes in O((2r+1)^2) mini-timeslots instead of
  // the O((2r+1)^3) of sequential per-vertex broadcasts. Measured:
  std::cout << "\n=== Weight-broadcast pipelining over a CDS backbone "
               "(r = 2, ttl = 2r+1 = 5) ===\n";
  TablePrinter wb({"N", "CDS size / N", "pipelined slots (max over origins)",
                   "sequential bound (2r+1)^3"});
  for (int n : {40, 80, 160}) {
    Rng rng(static_cast<std::uint64_t>(n) * 13 + 5);
    ConflictGraph cg = random_geometric_avg_degree(n, 8.0, rng);
    const Graph& g = cg.graph();
    const auto cds = simple_connected_dominating_set(g);
    int worst = 0;
    for (int v = 0; v < g.size(); ++v)
      worst = std::max(worst, pipelined_broadcast_timeslots(g, cds, v, 5));
    wb.row(n, fixed(static_cast<double>(cds.size()) / n, 2), worst,
           5 * 5 * 5);
  }
  wb.print(std::cout);
  return 0;
}
