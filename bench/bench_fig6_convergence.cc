// Reproduces Fig. 6: summed weight of all output independent sets as a
// function of the mini-round, for random N x M networks with
// N x M in {50, 100, 200} x {5, 10}, r = 2.
//
// Paper claim: every curve converges to a fixed value after about the 4th
// mini-round regardless of network size (Theorem 4 — a constant number of
// mini-rounds suffices on random networks), and that value is close to the
// quality of the centralized solution.
//
// The 6-cell grid is pure Scenario data: N and M are two overrides on one
// declarative base scenario.
#include <cstdio>
#include <iostream>
#include <vector>

#include "channel/rates.h"
#include "mwis/distributed_ptas.h"
#include "mwis/greedy.h"
#include "mwis/robust_ptas.h"
#include "scenario/runner.h"
#include "util/parallel.h"
#include "util/table.h"

namespace {

struct Config {
  int n;
  int m;
};

const char* kBase = R"(name = fig6-convergence
[topology]
kind = geometric
nodes = 50
avg_degree = 6.0
[channel]
kind = gaussian
channels = 5
[solver]
kind = distributed
r = 2
D = 10
node_cap = 50000
)";

}  // namespace

int main() {
  using namespace mhca;
  std::cout << "=== Fig. 6: summed IS weight vs mini-round (r = 2) ===\n"
            << "Weights are true mean rates (kbps); one strategy decision\n"
            << "per network; random geometric topologies, avg degree ~6.\n\n";

  const std::vector<Config> configs{{50, 5},  {100, 5},  {200, 5},
                                    {50, 10}, {100, 10}, {200, 10}};
  const int kMaxMiniRounds = 10;
  const scenario::Scenario base = scenario::parse_scenario(kBase);

  std::vector<std::string> header{"mini-round"};
  for (const auto& c : configs)
    header.push_back(std::to_string(c.n) + "x" + std::to_string(c.m));
  TablePrinter table(header);

  std::vector<std::vector<double>> series(configs.size());
  std::vector<double> converged_round(configs.size(), 0.0);
  std::vector<double> greedy_ref(configs.size(), 0.0);
  std::vector<double> ptas_ref(configs.size(), 0.0);

  // Each cell builds its own runner/engine; outputs land in disjoint
  // per-config slots, so the sweep parallelizes cleanly.
  parallel_run(static_cast<int>(configs.size()), [&](int job) {
    const auto ci = static_cast<std::size_t>(job);
    const auto& c = configs[ci];
    scenario::Scenario s = base;
    scenario::apply_override(s, "topology.nodes=" + std::to_string(c.n));
    scenario::apply_override(s, "channel.channels=" + std::to_string(c.m));
    scenario::apply_override(s, "run.seed=" + std::to_string(1000 + ci));
    const scenario::ScenarioRunner runner(s);
    const std::vector<double> w = runner.model().mean_matrix();

    DistributedRobustPtas engine(runner.extended_graph().graph(),
                                 runner.engine_config());
    const DistributedPtasResult res = engine.run(w);

    std::vector<double> sr(kMaxMiniRounds, res.weight * kRateScaleKbps);
    for (const auto& mr : res.mini_rounds)
      for (int i = mr.mini_round - 1; i < kMaxMiniRounds; ++i)
        sr[static_cast<std::size_t>(i)] = mr.cumulative_weight * kRateScaleKbps;
    series[ci] = sr;
    converged_round[ci] = res.mini_rounds_used;

    GreedyMwisSolver greedy;
    greedy_ref[ci] =
        greedy.solve_all(runner.extended_graph().graph(), w).weight *
        kRateScaleKbps;
    RobustPtasSolver ptas(1.0, 3, 50'000);
    ptas_ref[ci] = ptas.solve_all(runner.extended_graph().graph(), w).weight *
                   kRateScaleKbps;
  });

  for (int mr = 1; mr <= kMaxMiniRounds; ++mr) {
    std::vector<std::string> row{std::to_string(mr)};
    for (const auto& sr : series)
      row.push_back(fixed(sr[static_cast<std::size_t>(mr - 1)], 0));
    TablePrinter* t = &table;
    // TablePrinter::row is variadic; feed the prebuilt row via print path:
    t->row(row[0], row[1], row[2], row[3], row[4], row[5], row[6]);
  }
  table.print(std::cout);

  std::cout << "\nReference points (same weights):\n";
  TablePrinter refs({"config", "distributed(final)", "centralized PTAS",
                     "global greedy", "mini-rounds to mark all"});
  for (std::size_t ci = 0; ci < configs.size(); ++ci) {
    refs.row(std::to_string(configs[ci].n) + "x" + std::to_string(configs[ci].m),
             fixed(series[ci].back(), 0), fixed(ptas_ref[ci], 0),
             fixed(greedy_ref[ci], 0), fixed(converged_round[ci], 0));
  }
  refs.print(std::cout);
  std::cout << "\nExpected shape: every column flat after ~4 mini-rounds;\n"
            << "final distributed weight comparable to centralized PTAS.\n";
  return 0;
}
