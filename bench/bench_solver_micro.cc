// google-benchmark micro-benchmarks of the MWIS oracles on extended
// conflict graphs of increasing size (N users x 5 channels, true-mean
// weights). Complements bench_complexity_table with statistically robust
// per-call timings.
#include <benchmark/benchmark.h>

#include <memory>

#include "channel/gaussian.h"
#include "graph/extended_graph.h"
#include "graph/generators.h"
#include "mwis/branch_and_bound.h"
#include "mwis/distributed_ptas.h"
#include "mwis/greedy.h"
#include "mwis/robust_ptas.h"
#include "util/rng.h"

namespace {

using namespace mhca;

struct Instance {
  ConflictGraph cg;
  std::unique_ptr<ExtendedConflictGraph> ecg;
  std::vector<double> weights;
};

Instance make_instance(int users) {
  Rng rng(static_cast<std::uint64_t>(users) * 31 + 9);
  Instance in{random_geometric_avg_degree(users, 6.0, rng), nullptr, {}};
  in.ecg = std::make_unique<ExtendedConflictGraph>(in.cg, 5);
  GaussianChannelModel model(users, 5, rng);
  in.weights = model.mean_matrix();
  return in;
}

void BM_DistributedPtas(benchmark::State& state) {
  const Instance in = make_instance(static_cast<int>(state.range(0)));
  DistributedPtasConfig cfg;
  cfg.bnb_node_cap = 20'000;
  DistributedRobustPtas engine(in.ecg->graph(), cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.run(in.weights));
  }
  state.SetLabel("K=" + std::to_string(in.ecg->num_vertices()));
}
BENCHMARK(BM_DistributedPtas)->Arg(25)->Arg(50)->Arg(100)->Arg(200)
    ->Unit(benchmark::kMillisecond);

void BM_CentralizedPtas(benchmark::State& state) {
  const Instance in = make_instance(static_cast<int>(state.range(0)));
  RobustPtasSolver solver(1.0, 3, 20'000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve_all(in.ecg->graph(), in.weights));
  }
}
BENCHMARK(BM_CentralizedPtas)->Arg(25)->Arg(50)->Arg(100)
    ->Unit(benchmark::kMillisecond);

void BM_GlobalGreedy(benchmark::State& state) {
  const Instance in = make_instance(static_cast<int>(state.range(0)));
  GreedyMwisSolver solver;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve_all(in.ecg->graph(), in.weights));
  }
}
BENCHMARK(BM_GlobalGreedy)->Arg(25)->Arg(50)->Arg(100)->Arg(200)
    ->Unit(benchmark::kMillisecond);

void BM_ExactBnbSmall(benchmark::State& state) {
  // Exact global MWIS is only sensible on small instances (Fig. 7 scale).
  const Instance in = make_instance(static_cast<int>(state.range(0)));
  BranchAndBoundMwisSolver solver(50'000'000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve_all(in.ecg->graph(), in.weights));
  }
}
BENCHMARK(BM_ExactBnbSmall)->Arg(10)->Arg(15)->Arg(20)
    ->Unit(benchmark::kMillisecond);

void BM_LocalMwisBall(benchmark::State& state) {
  // The inner kernel of Algorithm 3: exact MWIS over one r-hop candidate
  // ball (r = 2).
  const Instance in = make_instance(100);
  const Graph& h = in.ecg->graph();
  BfsScratch scratch(h.size());
  const auto ball = scratch.k_hop_neighborhood(h, h.size() / 2, 2);
  BranchAndBoundMwisSolver solver(200'000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve(h, in.weights, ball));
  }
  state.SetLabel("|A_r|=" + std::to_string(ball.size()));
}
BENCHMARK(BM_LocalMwisBall)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
