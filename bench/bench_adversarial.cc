// Extension bench (paper §VII future work): oblivious adversarial channel
// processes — drifting, swapping, and ramping means — against the
// stochastic learning policies. The stochastic guarantee does not apply,
// but the clipped CAB exploration keeps re-sampling displaced arms, so it
// should degrade gracefully versus pure exploitation.
#include <iostream>

#include "bandit/policy.h"
#include "channel/adversarial.h"
#include "graph/extended_graph.h"
#include "graph/generators.h"
#include "sim/simulator.h"
#include "util/rng.h"
#include "util/table.h"

int main() {
  using namespace mhca;
  const int kUsers = 20, kChannels = 4;
  const std::int64_t kSlots = 4000;

  Rng rng(31337);
  ConflictGraph cg = random_geometric_avg_degree(kUsers, 5.0, rng);
  ExtendedConflictGraph ecg(cg, kChannels);

  std::cout << "=== Adversarial channels (oblivious): avg expected thpt, "
               "final-10% window (kbps-equivalent x1500) ===\n\n";
  TablePrinter table({"adversary", "CAB", "LLR", "greedy-exploit",
                      "CAB vs greedy"});

  for (AdversaryKind kind :
       {AdversaryKind::kDrift, AdversaryKind::kSwap, AdversaryKind::kRamp}) {
    Rng mrng(static_cast<std::uint64_t>(kind) * 97 + 5);
    AdversarialChannelModel model(kUsers, kChannels, kind, kSlots, mrng);

    auto tail_rate = [&](PolicyKind pk) {
      PolicyParams params;
      params.llr_max_strategy_len = kUsers;
      auto policy = make_policy(pk, params);
      SimulationConfig cfg;
      cfg.slots = kSlots;
      cfg.series_stride = 10;
      const SimulationResult res =
          Simulator(ecg, model, *policy, cfg).run();
      const std::size_t n = res.cum_expected.size();
      const std::size_t lo = n - n / 10;
      return (res.cum_expected[n - 1] - res.cum_expected[lo]) /
             static_cast<double>(res.slots[n - 1] - res.slots[lo]) * 1500.0;
    };

    const double cab = tail_rate(PolicyKind::kCab);
    const double llr = tail_rate(PolicyKind::kLlr);
    const double greedy = tail_rate(PolicyKind::kGreedy);
    const char* name = kind == AdversaryKind::kDrift  ? "drift"
                       : kind == AdversaryKind::kSwap ? "swap@T/2"
                                                      : "ramp";
    table.row(name, fixed(cab, 0), fixed(llr, 0), fixed(greedy, 0),
              fixed(cab / greedy, 3));
  }
  table.print(std::cout);
  std::cout
      << "\nObserved shape: under the abrupt swap, CAB's residual\n"
      << "exploration lets it recover and beat pure exploitation; under\n"
      << "smooth drift/ramp the running mean tracks slowly enough that\n"
      << "exploitation is competitive (ratio ~1). Stochastic guarantees do\n"
      << "not transfer to adversaries — exactly the open problem of §VII.\n";
  return 0;
}
