// Benchmark of the view-synchronous membership layer under an unreliable
// wire: convergence lag and control overhead as functions of churn rate and
// drop/dup/reorder probability.
//
// Each cell runs one windowed fault schedule on the message-level runtime
// (src/net): a quiet warmup, a fault burst (the control channel drops,
// duplicates, reorders and delays while the topology churns), then a quiet
// tail with the topology frozen. The cell reports
//
//   - convergence lag: quiet rounds until the god's-eye oracle
//     (net/oracle.h) accepts — member tables equal the ground-truth
//     (2r+1)-balls, stats and adjacency are exact, no suspects, views
//     agree per component, nothing in flight;
//   - control overhead: messages per round during the burst vs the quiet
//     warmup, and the membership share (hello + view-change airtime);
//   - the robustness counters (timeouts, retries, view changes, stale
//     decisions) the burst provoked;
//   - identical_decisions: once converged, the lockstep engine run over
//     the agents' own statistics must predict the runtime's next strategy
//     winner for winner (the acceptance contract; CI validates the flag).
//
// Emits a table on stdout and machine-readable JSON (default
// BENCH_membership.json, or argv[1]); `--smoke` shrinks the grid for CI.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "channel/gaussian.h"
#include "dynamics/dynamic_network.h"
#include "dynamics/registries.h"
#include "graph/generators.h"
#include "net/faults.h"
#include "net/oracle.h"
#include "net/runtime.h"
#include "util/rng.h"
#include "util/table.h"

namespace {

using namespace mhca;

struct FaultSpec {
  const char* label;
  double drop, dup, reorder;
  int delay;
};

struct Cell {
  std::string faults;
  double churn = 0.0;
  int users = 0;
  int vertices = 0;
  int burst_rounds = 0;
  double msgs_per_round_quiet = 0.0;  ///< Warmup (fault-free) airtime.
  double msgs_per_round_burst = 0.0;  ///< Airtime while faults are live.
  double overhead = 0.0;              ///< burst / quiet ratio.
  double membership_share = 0.0;      ///< hello+view-change share of bill.
  // Wire-level bill (net/wire.h encoded sizes, duplicates included).
  double bytes_per_round_quiet = 0.0;
  double bytes_per_round_burst = 0.0;
  double membership_byte_share = 0.0;  ///< hello+view-change byte share.
  std::int64_t timeouts = 0;
  std::int64_t retries = 0;
  std::int64_t view_changes = 0;
  std::int64_t stale_decisions = 0;
  int convergence_lag = -1;  ///< Quiet rounds until the oracle accepts.
  bool converged = false;
  bool identical = false;  ///< Lockstep engine predicts the next decision.
};

Cell run_cell(int users, int channels, double churn_rate,
              const FaultSpec& f, int warmup, int burst, int tail_cap) {
  Cell cell;
  cell.faults = f.label;
  cell.churn = churn_rate;
  cell.users = users;
  cell.burst_rounds = burst;

  Rng topo_rng(static_cast<std::uint64_t>(users) * 677 + 29);
  ConflictGraph base = random_geometric_avg_degree(users, 4.5, topo_rng);
  Rng model_rng(static_cast<std::uint64_t>(users) * 131 + 3);
  GaussianChannelModel model(users, channels, model_rng);

  net::NetConfig cfg;
  cfg.r = 2;
  cfg.D = 3;
  cfg.membership = net::MembershipMode::kViewSync;

  std::unique_ptr<dynamics::DynamicNetwork> dyn;
  if (churn_rate > 0.0) {
    scenario::ParamMap params;
    params.set("leave_prob", std::to_string(churn_rate));
    params.set("join_prob", "0.3");
    params.set("min_active", std::to_string(users / 2));
    Rng dyn_rng(0xFEED);
    const dynamics::DynamicsBuildContext ctx{&base, warmup + burst};
    dyn = std::make_unique<dynamics::DynamicNetwork>(
        base, channels,
        dynamics::dynamics_registry().create("churn", params, ctx, dyn_rng),
        /*incremental=*/true);
  }
  std::unique_ptr<ExtendedConflictGraph> local_ecg;
  if (!dyn)
    local_ecg = std::make_unique<ExtendedConflictGraph>(base, channels);
  const ExtendedConflictGraph& ecg = dyn ? dyn->ecg() : *local_ecg;
  cell.vertices = ecg.num_vertices();
  net::DistributedRuntime rt(ecg, model, cfg);

  const net::FaultProfile quiet{0.0, 0.0, 0.0, 0, 0x5eed};
  const net::FaultProfile faulty{f.drop, f.dup, f.reorder, f.delay, 0x5eed};
  std::int64_t round = 0;
  struct WindowBill {
    double msgs_per_round, bytes_per_round;
  };
  const auto run_window = [&](const net::FaultProfile& p, int rounds,
                              bool advance) -> WindowBill {
    rt.set_fault_profile(p);
    const std::int64_t before = rt.channel_stats().messages;
    const std::int64_t before_bytes = rt.channel_stats().bytes_on_wire;
    for (int i = 0; i < rounds; ++i) {
      ++round;
      if (dyn && advance && round > 1) {
        const dynamics::SlotChange& ch = dyn->advance(round);
        if (ch.changed)
          rt.on_wire_change(ch.touched_vertices, dyn->active_vertices());
      }
      rt.step();
    }
    return {static_cast<double>(rt.channel_stats().messages - before) /
                static_cast<double>(rounds),
            static_cast<double>(rt.channel_stats().bytes_on_wire -
                                before_bytes) /
                static_cast<double>(rounds)};
  };

  const WindowBill quiet_bill = run_window(quiet, warmup, true);
  const WindowBill burst_bill = run_window(faulty, burst, true);
  cell.msgs_per_round_quiet = quiet_bill.msgs_per_round;
  cell.msgs_per_round_burst = burst_bill.msgs_per_round;
  cell.bytes_per_round_quiet = quiet_bill.bytes_per_round;
  cell.bytes_per_round_burst = burst_bill.bytes_per_round;
  cell.overhead = cell.msgs_per_round_quiet > 0.0
                      ? cell.msgs_per_round_burst / cell.msgs_per_round_quiet
                      : 0.0;

  // Quiet, frozen tail: count rounds until the oracle accepts.
  rt.set_fault_profile(quiet);
  const Graph& wire = ecg.graph();
  for (int i = 1; i <= tail_cap; ++i) {
    rt.step();
    if (net::check_convergence(rt, wire).converged()) {
      cell.convergence_lag = i;
      cell.converged = true;
      break;
    }
  }
  if (cell.converged) {
    const std::vector<int> predicted =
        net::lockstep_decision(rt, wire, rt.rounds_run() + 1);
    cell.identical = rt.step().strategy == predicted;
  }

  const net::ChannelStats& cs = rt.channel_stats();
  cell.membership_share =
      cs.messages > 0
          ? static_cast<double>(cs.of_type(net::MsgType::kHello) +
                                cs.of_type(net::MsgType::kViewChange)) /
                static_cast<double>(cs.messages)
          : 0.0;
  cell.membership_byte_share =
      cs.bytes_on_wire > 0
          ? static_cast<double>(cs.bytes_of_type(net::MsgType::kHello) +
                                cs.bytes_of_type(net::MsgType::kViewChange)) /
                static_cast<double>(cs.bytes_on_wire)
          : 0.0;
  const net::RuntimeCounters rc = rt.counters();
  cell.timeouts = rc.timeouts;
  cell.retries = rc.retries;
  cell.view_changes = rc.view_changes;
  cell.stale_decisions = rc.stale_decisions;
  return cell;
}

std::string json_of(const std::vector<Cell>& cells, int channels, int warmup,
                    int burst) {
  std::string out;
  char buf[768];
  out += "{\n  \"bench\": \"membership\",\n";
  std::snprintf(
      buf, sizeof(buf),
      "  \"config\": {\"channels\": %d, \"avg_degree\": 4.5, \"r\": 2, "
      "\"D\": 3, \"policy\": \"cab\", \"membership\": \"view_sync\", "
      "\"schedule\": \"%d quiet warmup, %d faulty burst (churn live), "
      "quiet frozen tail until the oracle accepts\"},\n",
      channels, warmup, burst);
  out += buf;
  out += "  \"results\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    std::snprintf(
        buf, sizeof(buf),
        "    {\"faults\": \"%s\", \"churn_leave_prob\": %.3f, \"users\": %d, "
        "\"vertices\": %d, \"msgs_per_round_quiet\": %.1f, "
        "\"msgs_per_round_burst\": %.1f, \"control_overhead\": %.2f, "
        "\"membership_msg_share\": %.3f, "
        "\"bytes_per_round_quiet\": %.1f, \"bytes_per_round_burst\": %.1f, "
        "\"membership_byte_share\": %.3f, \"timeouts\": %lld, "
        "\"retries\": %lld, \"view_changes\": %lld, "
        "\"stale_decisions\": %lld, \"convergence_lag_rounds\": %d, "
        "\"identical_decisions\": %s}%s\n",
        c.faults.c_str(), c.churn, c.users, c.vertices,
        c.msgs_per_round_quiet, c.msgs_per_round_burst, c.overhead,
        c.membership_share, c.bytes_per_round_quiet, c.bytes_per_round_burst,
        c.membership_byte_share, static_cast<long long>(c.timeouts),
        static_cast<long long>(c.retries),
        static_cast<long long>(c.view_changes),
        static_cast<long long>(c.stale_decisions), c.convergence_lag,
        c.identical ? "true" : "false", i + 1 < cells.size() ? "," : "");
    out += buf;
  }
  out += "  ]\n}\n";
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_membership.json";
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--smoke")
      smoke = true;
    else
      json_path = a;
  }

  std::cout << "=== View-synchronous membership under an unreliable wire: "
               "convergence lag + control overhead ===\n\n";

  std::vector<FaultSpec> faults{
      {"clean", 0.0, 0.0, 0.0, 0},
      {"drop 0.10", 0.10, 0.0, 0.0, 0},
      {"drop 0.25", 0.25, 0.0, 0.0, 0},
      {"dup 0.15", 0.0, 0.15, 0.0, 0},
      {"reorder 0.20 delay 2", 0.0, 0.0, 0.20, 2},
      {"chaos .15/.10/.10 d2", 0.15, 0.10, 0.10, 2},
  };
  std::vector<double> churn_rates{0.0, 0.01, 0.04};
  int users = 40, channels = 3, warmup = 8, burst = 20, tail_cap = 60;
  if (smoke) {
    faults = {faults[2], faults[5]};
    churn_rates = {0.0, 0.02};
    users = 20;
    burst = 12;
  }

  std::vector<Cell> cells;
  TablePrinter table({"faults", "churn", "|H|", "msgs/rnd quiet",
                      "msgs/rnd burst", "overhead", "KB/rnd burst",
                      "mem share", "mem B share", "timeouts", "view chg",
                      "conv lag", "identical"});
  for (double churn : churn_rates) {
    for (const FaultSpec& f : faults) {
      const Cell c =
          run_cell(users, channels, churn, f, warmup, burst, tail_cap);
      cells.push_back(c);
      table.row(c.faults, fixed(c.churn, 3), c.vertices,
                fixed(c.msgs_per_round_quiet, 1),
                fixed(c.msgs_per_round_burst, 1), fixed(c.overhead, 2),
                fixed(c.bytes_per_round_burst / 1024.0, 1),
                fixed(c.membership_share, 3),
                fixed(c.membership_byte_share, 3), c.timeouts,
                c.view_changes, c.convergence_lag,
                c.identical ? "yes" : "NO");
    }
  }
  table.print(std::cout);

  const std::string json = json_of(cells, channels, warmup, burst);
  std::ofstream out(json_path);
  out << json;
  std::cout << "\nJSON written to " << json_path << "\n";

  bool all_identical = true;
  for (const Cell& c : cells)
    if (!c.identical) all_identical = false;
  if (!all_identical) {
    std::cerr << "FAIL: some cells never converged or diverged from the "
                 "lockstep engine\n";
    return 1;
  }
  return 0;
}
