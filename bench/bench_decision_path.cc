// Micro-benchmark of one full strategy decision (leader election + local
// MWIS solves over H) on random geometric networks, comparing the seed
// re-derivation path (per-decision max-relaxation floods, per-leader BFS,
// per-solve allocation and list-scan adjacency builds) against the cached
// decision path (NeighborhoodCache + reusable SolveScratch + bitset-row
// adjacency gather).
//
// Both paths run the same local-solve algorithm (the enhanced
// branch-and-bound search) with the same per-solve effort cap, so their
// decisions are byte-identical *unconditionally* — node-cap aborts and
// weight ties included; the bench verifies that on every measured decision.
// The speedup column therefore isolates the decision-path infrastructure.
// A per-stage breakdown (setup / election / gather / solve / apply /
// validate / other) shows where each path spends its time, and the solver
// columns track search effort. The buckets are *total*: every cell asserts
// that Σ stages covers ≥95% of the headline ms/decision (small absolute
// tolerance for sub-millisecond cells), and the bench exits nonzero
// otherwise — an untimed hot spot on the decision path (like the O(W²)
// winner validation that once hid 742 ms per decision at 50k vertices)
// can no longer go unaccounted.
//
// The grid crosses Graph::kAdjacencyMatrixLimit (8192): the large-n cells
// run without a dense adjacency matrix — sharded sparse rows feed the
// solver gather, and the incremental SoA election carries candidate sets
// across mini-rounds — demonstrating that the decision path no longer has
// an 8192-vertex wall. `--smoke` shrinks the grid for CI (one modest
// beyond-the-limit cell instead of the 50k-vertex one).
//
// Emits a human-readable table on stdout and machine-readable JSON (default
// BENCH_decision_path.json, or argv[1]) so the perf trajectory of the
// decision path is tracked from PR 1 on.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "graph/extended_graph.h"
#include "graph/generators.h"
#include "graph/neighborhood_cache.h"
#include "mwis/distributed_ptas.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/rng.h"
#include "util/table.h"

namespace {

using namespace mhca;
using Clock = std::chrono::steady_clock;

struct Cell {
  int users = 0;
  int r = 0;
  int vertices = 0;
  int decisions = 0;
  double cache_build_ms = 0.0;   ///< One-time NeighborhoodCache cost.
  double seed_ms = 0.0;          ///< Per-decision, seed path.
  double cached_ms = 0.0;        ///< Per-decision, cached path.
  double speedup = 0.0;
  bool identical = true;         ///< Winners + weight match every decision.
  DecisionStageTimes seed_stages;    ///< Per-decision averages.
  DecisionStageTimes cached_stages;
  double seed_coverage = 0.0;    ///< Best-rep Σ buckets / seed ms_per_decision.
  double cached_coverage = 0.0;  ///< Best-rep Σ buckets / cached ms_per_decision.
  bool coverage_ok = true;       ///< Both coverages pass the ≥95% gate.
  double nodes_per_decision = 0.0;   ///< B&B nodes (identical across paths).
  bool all_solves_exact = true;      ///< No local solve hit the node cap.
  // Cache-build worker sweep (large cells): wall-clock at pinned worker
  // counts and whether every build produced byte-identical balls.
  bool build_swept = false;
  double build_ms_w1 = 0.0;
  double build_ms_w2 = 0.0;
  double build_ms_w4 = 0.0;
  bool build_identical = true;
  // Observability overhead (representative cells): the cached path with the
  // telemetry spine disabled (null recorder/registry — the default for
  // every production run) vs enabled (spans + metrics recorded).
  bool obs_measured = false;
  double obs_off_ms = 0.0;
  double obs_on_ms = 0.0;
  bool obs_overhead_ok = true;  ///< Disabled path within 2% of the headline.
  // Memory accounting for the cached path's NeighborhoodCache: the bytes it
  // actually keeps resident, what the same contents would cost in the
  // all-explicit (pre-tiered) layout, and the resulting reduction ratio.
  const char* eball_tier = "explicit";
  long long cache_resident_bytes = 0;
  long long cache_explicit_bytes = 0;
  double cache_bytes_ratio = 1.0;
  bool cache_bytes_ok = true;  ///< Implicit-tier cells must shrink >= 4x.
  int cache_build_workers = 1;  ///< Effective worker count of the build.
  double peak_rss_mb = 0.0;     ///< Process VmHWM after this cell (monotonic).
};

/// Peak resident set size of this process so far, in MB (Linux VmHWM;
/// 0 where /proc is unavailable). Monotonic over the run, so per-cell
/// values record the high-water mark as the grid walks up in size — the
/// 1M-vertex cell's figure is the number that matters.
double read_peak_rss_mb() {
  std::ifstream st("/proc/self/status");
  std::string line;
  while (std::getline(st, line))
    if (line.rfind("VmHWM:", 0) == 0)
      return std::strtod(line.c_str() + 6, nullptr) / 1024.0;
  return 0.0;
}

/// Byte-identical cache contents: same per-vertex r-ball spans (span
/// equality over the whole CSR implies identical offsets and data) and the
/// same e-ball side for the tier both caches landed on — explicit spans
/// when stored, the per-vertex size array when the tier keeps only sizes.
bool caches_identical(const NeighborhoodCache& a, const NeighborhoodCache& b) {
  if (a.size() != b.size() || a.r() != b.r() ||
      a.eball_tier() != b.eball_tier())
    return false;
  const bool expl = a.eball_tier() == NeighborhoodCache::EballTier::kExplicit;
  for (int v = 0; v < a.size(); ++v) {
    const auto ra = a.r_ball(v), rb = b.r_ball(v);
    if (!std::equal(ra.begin(), ra.end(), rb.begin(), rb.end())) return false;
    if (expl) {
      const auto ea = a.election_ball(v), eb = b.election_ball(v);
      if (!std::equal(ea.begin(), ea.end(), eb.begin(), eb.end()))
        return false;
    } else if (a.election_ball_size(v) != b.election_ball_size(v)) {
      return false;
    }
  }
  return true;
}

std::vector<std::vector<double>> make_weight_sequence(int n, int decisions,
                                                      std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> ws(static_cast<std::size_t>(decisions));
  for (auto& w : ws) {
    w.resize(static_cast<std::size_t>(n));
    for (auto& x : w) x = rng.uniform(0.05, 1.0);
  }
  return ws;
}

template <typename F>
double time_decisions_ms(F&& decide, int decisions) {
  const auto t0 = Clock::now();
  for (int d = 0; d < decisions; ++d) decide(d);
  const auto t1 = Clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count() /
         static_cast<double>(decisions);
}

/// Best-of-`reps` timing, with the two paths interleaved so scheduler noise
/// and frequency drift hit both sides equally. Minimum-of-repetitions is
/// the standard variance killer for micro-benchmarks on shared machines.
template <typename A, typename B>
std::pair<double, double> time_paths_ms(A&& seed_decide, B&& cached_decide,
                                        int decisions, int reps) {
  double seed_best = 0.0, cached_best = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    const double s = time_decisions_ms(seed_decide, decisions);
    const double c = time_decisions_ms(cached_decide, decisions);
    if (rep == 0 || s < seed_best) seed_best = s;
    if (rep == 0 || c < cached_best) cached_best = c;
  }
  return {seed_best, cached_best};
}

DecisionStageTimes per_decision(const DecisionStageTimes& total,
                                int decisions) {
  const double d = static_cast<double>(decisions);
  return {total.setup_ms / d,   total.election_ms / d, total.gather_ms / d,
          total.solve_ms / d,   total.apply_ms / d,    total.validate_ms / d,
          total.other_ms / d};
}

Cell run_cell(int users, int r, int channels, int decisions) {
  Cell cell;
  cell.users = users;
  cell.r = r;
  cell.decisions = decisions;

  Rng topo_rng(static_cast<std::uint64_t>(users) * 131 +
               static_cast<std::uint64_t>(r) * 17 + 5);
  // Connectivity is irrelevant to the decision path; don't resample for it.
  ConflictGraph cg =
      random_geometric_avg_degree(users, 6.0, topo_rng,
                                  /*force_connected=*/false);
  ExtendedConflictGraph ecg(cg, channels);
  const Graph& h = ecg.graph();
  cell.vertices = h.size();

  const auto weights = make_weight_sequence(
      h.size(), decisions, static_cast<std::uint64_t>(users) * 7 + 1);

  // Stage collection stays on for both engines: four steady_clock reads per
  // mini-round, far below measurement noise.
  DistributedPtasConfig seed_cfg;
  seed_cfg.r = r;
  seed_cfg.use_decision_cache = false;
  seed_cfg.collect_stage_times = true;
  // Pin solves to one thread on BOTH paths: the speedup column isolates the
  // caching infrastructure, not core count (the parallel fan-out is
  // exercised by decision_parallel_determinism_test instead).
  seed_cfg.local_solve_parallelism = 1;
  DistributedPtasConfig cached_cfg = seed_cfg;
  cached_cfg.use_decision_cache = true;

  DistributedRobustPtas seed_engine(h, seed_cfg);
  const auto tc0 = Clock::now();
  DistributedRobustPtas cached_engine(h, cached_cfg);
  cell.cache_build_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - tc0).count();

  // Memory accounting: what the cache keeps resident at the tier the
  // per-graph selection rule picked, vs the all-explicit layout cost of the
  // same contents. Implicit-tier cells gate the reduction at >= 4x (the
  // explicit tier makes no footprint claim — it IS the explicit layout).
  {
    const NeighborhoodCache& cache = cached_engine.neighborhood_cache();
    const bool implicit =
        cache.eball_tier() == NeighborhoodCache::EballTier::kImplicit;
    cell.eball_tier = implicit ? "implicit" : "explicit";
    cell.cache_resident_bytes = cache.resident_bytes();
    cell.cache_explicit_bytes = cache.explicit_layout_bytes();
    cell.cache_bytes_ratio =
        cell.cache_resident_bytes > 0
            ? static_cast<double>(cell.cache_explicit_bytes) /
                  static_cast<double>(cell.cache_resident_bytes)
            : 1.0;
    cell.cache_bytes_ok = !implicit || cell.cache_bytes_ratio >= 4.0;
    cell.cache_build_workers = NeighborhoodCache::build_workers(0, h.size());
  }

  // Correctness first: identical winners and weight on every decision, and
  // solver-effort accounting (nodes are identical across paths — same
  // search — so one side's count is the cell's count).
  std::int64_t nodes = 0;
  for (int d = 0; d < decisions; ++d) {
    const auto a = seed_engine.run(weights[static_cast<std::size_t>(d)]);
    const auto b = cached_engine.run(weights[static_cast<std::size_t>(d)]);
    if (a.winners != b.winners || a.weight != b.weight)
      cell.identical = false;
    nodes += b.solver_nodes_explored;
    cell.all_solves_exact = cell.all_solves_exact && b.all_local_solves_exact;
  }
  cell.nodes_per_decision =
      static_cast<double>(nodes) / static_cast<double>(decisions);

  // Warmed-up best-of-3 timing over the same weight sequence. The huge
  // cells (250k / 1M vertices) run a single rep — at tens of seconds per
  // seed decision, best-of-N buys noise reduction nobody needs and the
  // headline there is the memory column, not microsecond stability.
  const bool huge = users >= 62500;
  const auto [seed_ms, cached_ms] = time_paths_ms(
      [&](int d) { seed_engine.run(weights[static_cast<std::size_t>(d)]); },
      [&](int d) { cached_engine.run(weights[static_cast<std::size_t>(d)]); },
      decisions, /*reps=*/huge ? 1 : 3);
  cell.seed_ms = seed_ms;
  cell.cached_ms = cached_ms;
  cell.speedup = cell.cached_ms > 0.0 ? cell.seed_ms / cell.cached_ms : 0.0;

  // Stage breakdown: best-of-N instrumented passes per path, per-stage
  // minima — the same variance killer the headline timing uses, applied to
  // the breakdown so single-pass scheduler noise doesn't masquerade as a
  // stage regression (stages are an order of magnitude shorter than whole
  // decisions, so they need the extra repetitions; the sub-millisecond
  // small/medium cells get the most).
  const auto min_stages = [](const DecisionStageTimes& a,
                             const DecisionStageTimes& b) {
    return DecisionStageTimes{std::min(a.setup_ms, b.setup_ms),
                              std::min(a.election_ms, b.election_ms),
                              std::min(a.gather_ms, b.gather_ms),
                              std::min(a.solve_ms, b.solve_ms),
                              std::min(a.apply_ms, b.apply_ms),
                              std::min(a.validate_ms, b.validate_ms),
                              std::min(a.other_ms, b.other_ms)};
  };
  // Each path runs its decisions in a streak, exactly like the headline
  // timing loops above — interleaving the engines per decision would let
  // the seed path's full-graph sweeps evict the cached path's ball arrays
  // between decisions and charge the misses to the wrong stage.
  const int stage_reps = huge ? 1 : (users <= 800 ? 7 : 3);
  // Coverage pairs each rep's Σ buckets with an external wall clock around
  // that same rep's decision streak: the question "did run() spend time no
  // bucket saw?" only makes sense within one pass. Comparing against the
  // earlier headline loop instead re-measures warm-up drift, not accounting.
  double seed_wall = 0.0, cached_wall = 0.0;
  for (int rep = 0; rep < stage_reps; ++rep) {
    seed_engine.reset_stage_times();
    const auto ts0 = Clock::now();
    for (int d = 0; d < decisions; ++d)
      seed_engine.run(weights[static_cast<std::size_t>(d)]);
    const double s_wall =
        std::chrono::duration<double, std::milli>(Clock::now() - ts0).count() /
        static_cast<double>(decisions);
    cached_engine.reset_stage_times();
    const auto tg0 = Clock::now();
    for (int d = 0; d < decisions; ++d)
      cached_engine.run(weights[static_cast<std::size_t>(d)]);
    const double c_wall =
        std::chrono::duration<double, std::milli>(Clock::now() - tg0).count() /
        static_cast<double>(decisions);
    const DecisionStageTimes s =
        per_decision(seed_engine.stage_times(), decisions);
    const DecisionStageTimes c =
        per_decision(cached_engine.stage_times(), decisions);
    cell.seed_stages = rep == 0 ? s : min_stages(cell.seed_stages, s);
    cell.cached_stages = rep == 0 ? c : min_stages(cell.cached_stages, c);
    if (rep == 0 || s_wall < seed_wall) {
      seed_wall = s_wall;
      cell.seed_coverage = s_wall > 0.0 ? s.total_ms() / s_wall : 1.0;
    }
    if (rep == 0 || c_wall < cached_wall) {
      cached_wall = c_wall;
      cell.cached_coverage = c_wall > 0.0 ? c.total_ms() / c_wall : 1.0;
    }
  }

  // Coverage gate: the stage buckets must account for (nearly) the whole
  // per-decision wall clock of their own pass. Sub-millisecond cells get a
  // small absolute tolerance on top of the 95% ratio (the loop's weight
  // indexing and the Clock reads themselves are outside the buckets); a
  // real accounting gap — the O(W²) validation that cost hundreds of ms
  // per decision off the books — dwarfs both.
  constexpr double kCoverageRatio = 0.95;
  constexpr double kCoverageSlackMs = 0.05;
  cell.coverage_ok =
      (cell.seed_coverage >= kCoverageRatio ||
       (1.0 - cell.seed_coverage) * seed_wall <= kCoverageSlackMs) &&
      (cell.cached_coverage >= kCoverageRatio ||
       (1.0 - cell.cached_coverage) * cached_wall <= kCoverageSlackMs);

  // Observability overhead on the gated cells (|H| = 3200 and 50000, the
  // paper-scale points). The instrumentation is compiled into run()
  // unconditionally — there is no obs-free build in this binary — so the
  // gate re-measures the headline path (globals null) back-to-back with the
  // "off" pass and requires the two to agree within 2%: a tripwire for
  // instrumentation that is accidentally active, or does work, when
  // disabled. The "off vs headline" column compares against the main stage
  // loop's cached_ms for the longitudinal record only — minutes of
  // frequency drift separate those passes, which the interleaved baseline
  // exists to cancel (observed up to ~10% on shared hosts). "obs on"
  // records the full span set and is reported, not gated: tracing a
  // decision costs what it costs.
  if ((users == 800 && r == 2) || users == 12500) {
    cell.obs_measured = true;
    obs::TraceRecorder recorder;
    obs::MetricsRegistry registry;
    const auto cached_run = [&](int d) {
      cached_engine.run(weights[static_cast<std::size_t>(d)]);
    };
    // Warm up both paths untimed: the first pass after the preceding bench
    // phases sees cold branch predictors and peak turbo, and either would
    // bias whichever side runs first.
    time_decisions_ms(cached_run, decisions);
    obs::set_trace(&recorder);
    obs::set_metrics(&registry);
    time_decisions_ms(cached_run, decisions);
    obs::set_trace(nullptr);
    obs::set_metrics(nullptr);
    recorder.clear();
    double baseline_ms = 0.0;
    for (int rep = 0; rep < 4; ++rep) {
      // Alternate which pass runs first: base and off are the same code, so
      // pinning either to a rep's first (fastest-clock) slot would bias the
      // comparison even after warmup.
      const double first = time_decisions_ms(cached_run, decisions);
      const double second = time_decisions_ms(cached_run, decisions);
      const double base = (rep % 2 == 0) ? first : second;
      const double off = (rep % 2 == 0) ? second : first;
      obs::set_trace(&recorder);
      obs::set_metrics(&registry);
      const double on = time_decisions_ms(cached_run, decisions);
      obs::set_trace(nullptr);
      obs::set_metrics(nullptr);
      recorder.clear();
      if (rep == 0 || base < baseline_ms) baseline_ms = base;
      if (rep == 0 || off < cell.obs_off_ms) cell.obs_off_ms = off;
      if (rep == 0 || on < cell.obs_on_ms) cell.obs_on_ms = on;
    }
    constexpr double kObsOverheadRatio = 1.02;
    constexpr double kObsSlackMs = 0.05;
    cell.obs_overhead_ok =
        cell.obs_off_ms <= baseline_ms * kObsOverheadRatio + kObsSlackMs;
  }

  // Cache-build worker sweep on the cells where the build matters: pinned
  // worker counts must produce byte-identical balls (the count-then-fill
  // layout's determinism contract); the timings show how the one-time
  // build scales with cores (on a single-core CI box they simply tie).
  if (users >= 3200 && !huge) {
    cell.build_swept = true;
    const int counts[] = {1, 2, 4};
    double* build_ms[] = {&cell.build_ms_w1, &cell.build_ms_w2,
                          &cell.build_ms_w4};
    NeighborhoodCache prev;  // only two caches alive at a time
    for (std::size_t i = 0; i < 3; ++i) {
      const auto t0 = Clock::now();
      NeighborhoodCache cur(h, r, /*build_covers=*/false, counts[i]);
      *build_ms[i] =
          std::chrono::duration<double, std::milli>(Clock::now() - t0)
              .count();
      if (i > 0 && !caches_identical(prev, cur)) cell.build_identical = false;
      prev = std::move(cur);
    }
  }
  cell.peak_rss_mb = read_peak_rss_mb();
  return cell;
}

std::string stages_json(const char* name, const DecisionStageTimes& s) {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "     \"%s\": {\"setup\": %.4f, \"election\": %.4f, "
                "\"gather\": %.4f, \"solve\": %.4f, \"apply\": %.4f, "
                "\"validate\": %.4f, \"other\": %.4f}",
                name, s.setup_ms, s.election_ms, s.gather_ms, s.solve_ms,
                s.apply_ms, s.validate_ms, s.other_ms);
  return buf;
}

std::string json_of(const std::vector<Cell>& cells, int channels) {
  std::string out;
  char buf[1024];
  out += "{\n  \"bench\": \"decision_path\",\n";
  std::snprintf(buf, sizeof(buf),
                "  \"config\": {\"channels\": %d, \"avg_degree\": 6.0, "
                "\"weights\": \"uniform[0.05,1)\", "
                "\"bnb_node_cap\": %lld, \"shared_solver\": true, "
                "\"local_solve_parallelism\": 1, "
                "\"hardware_threads\": %u},\n",
                channels,
                static_cast<long long>(DistributedPtasConfig{}.bnb_node_cap),
                std::thread::hardware_concurrency());
  out += buf;
  out += "  \"results\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    std::snprintf(
        buf, sizeof(buf),
        "    {\"users\": %d, \"r\": %d, \"vertices\": %d, "
        "\"decisions\": %d, \"cache_build_ms\": %.4f, "
        "\"seed_ms_per_decision\": %.4f, \"cached_ms_per_decision\": %.4f, "
        "\"speedup\": %.2f, \"identical_results\": %s, "
        "\"solver_nodes_per_decision\": %.0f, \"all_solves_exact\": %s,\n"
        "     \"stage_coverage_seed\": %.4f, "
        "\"stage_coverage_cached\": %.4f, \"stage_coverage_ok\": %s,\n",
        c.users, c.r, c.vertices, c.decisions, c.cache_build_ms, c.seed_ms,
        c.cached_ms, c.speedup, c.identical ? "true" : "false",
        c.nodes_per_decision, c.all_solves_exact ? "true" : "false",
        c.seed_coverage, c.cached_coverage, c.coverage_ok ? "true" : "false");
    out += buf;
    std::snprintf(
        buf, sizeof(buf),
        "     \"eball_tier\": \"%s\", \"cache_resident_bytes\": %lld, "
        "\"cache_explicit_bytes\": %lld, \"cache_bytes_ratio\": %.2f, "
        "\"cache_bytes_ok\": %s, \"cache_build_workers\": %d, "
        "\"peak_rss_mb\": %.1f,\n",
        c.eball_tier, c.cache_resident_bytes, c.cache_explicit_bytes,
        c.cache_bytes_ratio, c.cache_bytes_ok ? "true" : "false",
        c.cache_build_workers, c.peak_rss_mb);
    out += buf;
    if (c.build_swept) {
      std::snprintf(buf, sizeof(buf),
                    "     \"cache_build_workers_ms\": {\"w1\": %.4f, "
                    "\"w2\": %.4f, \"w4\": %.4f, \"identical_balls\": %s},\n",
                    c.build_ms_w1, c.build_ms_w2, c.build_ms_w4,
                    c.build_identical ? "true" : "false");
      out += buf;
    }
    if (c.obs_measured) {
      std::snprintf(buf, sizeof(buf),
                    "     \"obs_off_ms_per_decision\": %.4f, "
                    "\"obs_on_ms_per_decision\": %.4f, "
                    "\"obs_overhead_ok\": %s,\n",
                    c.obs_off_ms, c.obs_on_ms,
                    c.obs_overhead_ok ? "true" : "false");
      out += buf;
    }
    out += stages_json("seed_stages_ms", c.seed_stages) + ",\n";
    out += stages_json("cached_stages_ms", c.cached_stages) +
           (i + 1 < cells.size() ? "},\n" : "}\n");
  }
  out += "  ]\n}\n";
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_decision_path.json";
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--smoke")
      smoke = true;
    else
      json_path = a;
  }
  const int kChannels = 4;

  std::cout << "=== Decision path: seed re-derivation vs cached "
               "(NeighborhoodCache + SolveScratch) ===\n"
            << "    (identical enhanced local solver on both paths; "
               "speedup isolates the caching)\n\n";

  struct GridCell {
    int users;
    int r;
    int decisions;
  };
  // Decision counts trade runtime for timing stability: the per-stage
  // numbers of a cell come from (reps x decisions) instrumented runs, and
  // cached-path stages are fractions of a millisecond — too short a pass
  // gets dominated by scheduler ticks.
  std::vector<GridCell> grid;
  for (int users : {50, 200, 800})
    for (int r : {1, 2, 3})
      grid.push_back({users, r, users >= 800 ? 16 : (users >= 200 ? 12 : 20)});
  if (smoke) {
    // CI: one cell past the dense-matrix limit proves the sharded path.
    grid.push_back({2300, 2, 3});
  } else {
    // The former 8192-vertex wall and well past it (50k, then 100k H
    // vertices — the 100k cell is pure sparse-row regime and exists
    // because the linear winner validation made it affordable).
    grid.push_back({3200, 2, 4});
    grid.push_back({3200, 3, 4});
    grid.push_back({12500, 2, 3});
    grid.push_back({25000, 2, 2});
    // The road to 1M: 250k- and 1M-vertex cells exist because the implicit
    // e-ball tier made their caches affordable (sizes only, 4 B/vertex,
    // membership re-enumerated by the election's early-exit BFS). One
    // decision each — the point is footprint and feasibility, not variance.
    grid.push_back({62500, 2, 1});
    grid.push_back({250000, 2, 1});
  }

  std::vector<Cell> cells;
  TablePrinter table({"users", "r", "|H|", "decisions", "cache build ms",
                      "seed ms", "cached ms", "speedup", "identical",
                      "coverage", "nodes/decision", "exact"});
  for (const GridCell& gc : grid) {
    const Cell c = run_cell(gc.users, gc.r, kChannels, gc.decisions);
    cells.push_back(c);
    table.row(std::to_string(c.users), std::to_string(c.r),
              std::to_string(c.vertices), std::to_string(c.decisions),
              fixed(c.cache_build_ms, 2), fixed(c.seed_ms, 3),
              fixed(c.cached_ms, 3), fixed(c.speedup, 2) + "x",
              c.identical ? "yes" : "NO",
              fixed(100.0 * c.cached_coverage, 1) + "%" +
                  (c.coverage_ok ? "" : " LOW"),
              fixed(c.nodes_per_decision, 0),
              c.all_solves_exact ? "yes" : "capped");
  }
  table.print(std::cout);

  std::cout << "\n--- cache memory (resident vs all-explicit layout; "
               "implicit-tier cells gate the reduction at >= 4x) ---\n";
  TablePrinter mem({"users", "r", "|H|", "tier", "resident MB",
                    "explicit MB", "ratio", "workers", "peak RSS MB"});
  const auto mb = [](long long bytes) {
    return fixed(static_cast<double>(bytes) / (1024.0 * 1024.0), 2);
  };
  for (const Cell& c : cells)
    mem.row(std::to_string(c.users), std::to_string(c.r),
            std::to_string(c.vertices), c.eball_tier,
            mb(c.cache_resident_bytes), mb(c.cache_explicit_bytes),
            fixed(c.cache_bytes_ratio, 2) + "x" +
                (c.cache_bytes_ok ? "" : " LOW"),
            std::to_string(c.cache_build_workers), fixed(c.peak_rss_mb, 1));
  mem.print(std::cout);

  std::cout << "\n--- per-stage breakdown, ms/decision (setup / election / "
               "gather / solve / apply / validate / other) ---\n";
  TablePrinter stages({"users", "r", "seed stages", "cached stages"});
  char sbuf[192];
  const auto stage_str = [&](const DecisionStageTimes& s) {
    std::snprintf(sbuf, sizeof(sbuf),
                  "%.3f / %.3f / %.3f / %.3f / %.3f / %.3f / %.3f",
                  s.setup_ms, s.election_ms, s.gather_ms, s.solve_ms,
                  s.apply_ms, s.validate_ms, s.other_ms);
    return std::string(sbuf);
  };
  for (const Cell& c : cells)
    stages.row(std::to_string(c.users), std::to_string(c.r),
               stage_str(c.seed_stages), stage_str(c.cached_stages));
  stages.print(std::cout);

  bool any_swept = false;
  for (const Cell& c : cells) any_swept = any_swept || c.build_swept;
  if (any_swept) {
    std::cout << "\n--- cache build worker sweep (count-then-fill; "
                 "byte-identical contract) ---\n";
    TablePrinter sweep({"users", "r", "w=1 ms", "w=2 ms", "w=4 ms",
                        "identical balls"});
    for (const Cell& c : cells) {
      if (!c.build_swept) continue;
      sweep.row(std::to_string(c.users), std::to_string(c.r),
                fixed(c.build_ms_w1, 2), fixed(c.build_ms_w2, 2),
                fixed(c.build_ms_w4, 2), c.build_identical ? "yes" : "NO");
    }
    sweep.print(std::cout);
  }

  bool any_obs = false;
  for (const Cell& c : cells) any_obs = any_obs || c.obs_measured;
  if (any_obs) {
    std::cout << "\n--- observability overhead (telemetry spine disabled vs "
                 "recording; cached path) ---\n";
    TablePrinter obs_table({"users", "r", "obs off ms", "obs on ms",
                            "off vs headline"});
    for (const Cell& c : cells) {
      if (!c.obs_measured) continue;
      obs_table.row(std::to_string(c.users), std::to_string(c.r),
                    fixed(c.obs_off_ms, 3), fixed(c.obs_on_ms, 3),
                    fixed(100.0 * c.obs_off_ms /
                              std::max(c.cached_ms, 1e-12),
                          1) +
                        "%" + (c.obs_overhead_ok ? "" : " REGRESSED"));
    }
    obs_table.print(std::cout);
  }

  bool all_identical = true, all_covered = true, builds_identical = true,
       obs_ok = true, bytes_ok = true;
  for (const Cell& c : cells) {
    all_identical = all_identical && c.identical;
    all_covered = all_covered && c.coverage_ok;
    builds_identical = builds_identical && c.build_identical;
    obs_ok = obs_ok && c.obs_overhead_ok;
    bytes_ok = bytes_ok && c.cache_bytes_ok;
  }
  std::cout << "\nresults identical across paths: "
            << (all_identical ? "yes" : "NO — BUG") << "\n"
            << "stage coverage >= 95% in every cell: "
            << (all_covered ? "yes" : "NO — untimed decision cost") << "\n"
            << "implicit-tier cache footprint >= 4x below explicit: "
            << (bytes_ok ? "yes" : "NO — layout regression") << "\n";
  if (any_swept)
    std::cout << "cache builds byte-identical at all worker counts: "
              << (builds_identical ? "yes" : "NO — BUG") << "\n";
  if (any_obs)
    std::cout << "disabled-observability path within 2% of headline: "
              << (obs_ok ? "yes" : "NO — hot-path overhead") << "\n";

  const std::string json = json_of(cells, kChannels);
  std::ofstream out(json_path);
  out << json;
  out.flush();
  if (!out) {
    std::cerr << "error: failed to write " << json_path << "\n";
    return 1;
  }
  std::cout << "wrote " << json_path << "\n";
  return all_identical && all_covered && builds_identical && obs_ok &&
                 bytes_ok
             ? 0
             : 1;
}
