// Measures the paper's §I motivation: formulating multi-hop channel access
// as a classic per-strategy bandit blows up exponentially — the number of
// arms is the number of independent sets of H (up to O(M^N)) — while the
// factored formulation keeps K = N*M arms. We count enumerated strategies
// and learning-state memory, then race naive strategy-UCB1 against
// Algorithm 2 on a small network where enumeration is still feasible.
#include <chrono>
#include <iostream>

#include "bandit/naive_ucb.h"
#include "bandit/policy.h"
#include "channel/gaussian.h"
#include "graph/extended_graph.h"
#include "graph/generators.h"
#include "graph/independence.h"
#include "sim/optimum.h"
#include "sim/simulator.h"
#include "util/rng.h"
#include "util/table.h"

int main() {
  using namespace mhca;
  std::cout << "=== Naive strategy-as-arm formulation vs factored (K = N*M) ===\n\n";

  TablePrinter growth({"N", "M", "K = N*M arms (ours)",
                       "maximal-IS strategies (naive)", "naive memory (KB)"});
  for (int n : {4, 6, 8, 10, 12}) {
    const int m = 3;
    Rng rng(static_cast<std::uint64_t>(n) * 101 + 7);
    ConflictGraph cg = random_geometric_avg_degree(n, 3.0, rng);
    ExtendedConflictGraph ecg(cg, m);
    std::vector<std::vector<int>> strategies;
    const bool complete = enumerate_maximal_independent_sets(
        ecg.graph(), 2'000'000, strategies);
    std::string count = std::to_string(strategies.size());
    if (!complete) count += "+ (truncated)";
    NaiveStrategyUcb naive(strategies);
    growth.row(n, m, ecg.num_vertices(), count,
               fixed(static_cast<double>(naive.memory_bytes()) / 1024.0, 1));
  }
  growth.print(std::cout);

  // Head-to-head on a tiny network (enumeration feasible for the naive arm).
  const int kUsers = 8, kChannels = 2;
  const std::int64_t kSlots = 3000;
  Rng rng(4242);
  ConflictGraph cg = random_geometric_avg_degree(kUsers, 3.0, rng);
  ExtendedConflictGraph ecg(cg, kChannels);
  GaussianChannelModel model(kUsers, kChannels, rng);
  const OptimumInfo opt = compute_optimum(ecg, model);

  using Clock = std::chrono::steady_clock;

  // Naive: UCB1 over maximal independent sets.
  std::vector<std::vector<int>> strategies;
  enumerate_maximal_independent_sets(ecg.graph(), 1'000'000, strategies);
  NaiveStrategyUcb naive(strategies);
  double naive_expected = 0.0;
  auto t0 = Clock::now();
  for (std::int64_t t = 1; t <= kSlots; ++t) {
    const int arm = naive.select(t);
    double reward = 0.0, expected = 0.0;
    for (int v : naive.strategy(arm)) {
      reward += model.sample(ecg.master_of(v), ecg.channel_of(v), t);
      expected += model.mean(ecg.master_of(v), ecg.channel_of(v), t);
    }
    naive.observe(arm, reward);
    naive_expected += expected;
  }
  const double naive_s =
      std::chrono::duration<double>(Clock::now() - t0).count();

  // Ours: CAB + distributed PTAS.
  auto policy = make_policy(PolicyKind::kCab);
  SimulationConfig cfg;
  cfg.slots = kSlots;
  t0 = Clock::now();
  const SimulationResult ours = Simulator(ecg, model, *policy, cfg).run();
  const double ours_s =
      std::chrono::duration<double>(Clock::now() - t0).count();

  std::cout << "\nHead-to-head (" << kUsers << " users x " << kChannels
            << " channels, " << kSlots << " slots, R1 = "
            << fixed(opt.weight * kRateScaleKbps, 1) << " kbps):\n";
  TablePrinter duel({"scheme", "arms", "avg expected thpt (kbps)",
                     "fraction of R1", "wall time (s)"});
  duel.row("naive strategy-UCB1", naive.num_arms(),
           fixed(naive_expected / kSlots * kRateScaleKbps, 1),
           fixed(naive_expected / kSlots / opt.weight, 3), fixed(naive_s, 2));
  duel.row("Algorithm 2 (CAB, K=N*M)", ecg.num_vertices(),
           fixed(ours.total_expected / kSlots * kRateScaleKbps, 1),
           fixed(ours.total_expected / kSlots / opt.weight, 3),
           fixed(ours_s, 2));
  duel.print(std::cout);
  std::cout << "\nExpected shape: strategy count explodes with N while K\n"
            << "grows linearly; Algorithm 2 reaches a competitive fraction\n"
            << "of R1 with exponentially less learning state.\n";
  return 0;
}
