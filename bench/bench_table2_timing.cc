// Reproduces Table II and the derived timing quantities of §V:
// ta = 2000 ms, tb = 100 ms, tl = 50 ms, td = 1000 ms, hence
// tm = 2 tb + tl = 250 ms, ts = 4 tm = 1000 ms, theta = td/ta = 0.5, and
// the periodic-update fractions 1/2, 9/10, 19/20, 39/40 of §V-C.
#include <iostream>

#include "sim/timing.h"
#include "util/table.h"

int main() {
  using namespace mhca;
  RoundTiming t;

  std::cout << "=== Table II: round timing parameters ===\n";
  TablePrinter params({"parameter", "value (ms)", "source"});
  params.row("round ta", fixed(t.ta_ms, 0), "Table II");
  params.row("local broadcast tb", fixed(t.tb_ms, 0), "Table II");
  params.row("local computation tl", fixed(t.tl_ms, 0), "Table II");
  params.row("data transmission td", fixed(t.td_ms, 0), "Table II");
  params.row("mini-round tm = 2tb+tl", fixed(t.tm_ms(), 0), "derived (250)");
  params.row("decision ts = 4tm", fixed(t.ts_ms(), 0), "derived (1000)");
  params.print(std::cout);

  std::cout << "\nderived theta = td/ta = " << fixed(t.theta(), 3)
            << "  (paper: actual throughput per decision slot = 0.5 Rx)\n"
            << "consistency ts + td == ta: "
            << (t.is_consistent() ? "OK" : "VIOLATED") << "\n\n";

  TablePrinter frac({"update period y", "realized fraction", "paper value"});
  frac.row(1, fixed(t.periodic_fraction(1), 4), "1/2");
  frac.row(5, fixed(t.periodic_fraction(5), 4), "9/10");
  frac.row(10, fixed(t.periodic_fraction(10), 4), "19/20");
  frac.row(20, fixed(t.periodic_fraction(20), 4), "39/40");
  frac.print(std::cout);
  return 0;
}
