// Reproduces Fig. 8 (a)-(d): estimated vs actual average effective
// throughput under different weight-update periods y = 1, 5, 10, 20, on a
// large random network (100 users, 10 channels), Algorithm 2 (CAB) vs LLR.
//
// Paper claims to reproduce:
//   * Actual effective throughput approaches the ideal as y grows
//     (fractions 1/2, 9/10, 19/20, 39/40), with the big jump from y=1 to 5.
//   * CAB's estimated throughput tracks its actual throughput closely;
//     LLR's estimate stays heavily inflated.
//   * CAB's actual throughput >= LLR's.
//   * Unfrequent update barely hurts estimation accuracy.
//
// The 2x4 grid (policy x update period) is Scenario overrides on one base;
// a shared seed keeps the network and channels identical across all cells.
#include <iostream>

#include "channel/rates.h"
#include "scenario/runner.h"
#include "sim/timing.h"
#include "util/parallel.h"
#include "util/table.h"

namespace {

const char* kBase = R"(name = fig8-periodic
[topology]
kind = geometric
nodes = 100
avg_degree = 6.0
[channel]
kind = gaussian
channels = 10
[policy]
kind = cab
[solver]
node_cap = 20000
[run]
seed = 8881
)";

}  // namespace

int main() {
  using namespace mhca;
  const int kPeriods = 1000;  // per case: 1000 weight updates (paper setup)
  const scenario::Scenario base = scenario::parse_scenario(kBase);

  std::cout << "=== Fig. 8: estimated vs actual avg effective throughput ===\n"
            << "Network: " << base.topology.params.get_int("nodes", 0)
            << " users x " << base.num_channels
            << " channels; each case runs 1000 weight updates.\n"
            << "All values kbps.\n";

  auto run = [&](const std::string& policy, int y) {
    const std::int64_t slots = static_cast<std::int64_t>(y) * kPeriods;
    scenario::Scenario s = base;
    scenario::apply_override(s, "policy.kind=" + policy);
    scenario::apply_override(s, "run.update_period=" + std::to_string(y));
    scenario::apply_override(s, "run.slots=" + std::to_string(slots));
    scenario::apply_override(s,
                             "run.series_stride=" + std::to_string(slots / 10));
    return scenario::ScenarioRunner(s).run();
  };

  // All (policy, y) cells are independent (stateless channel sampling, one
  // runner per job) — run them on all cores, then print in order.
  const std::vector<int> ys{1, 5, 10, 20};
  std::vector<SimulationResult> cab_results(ys.size());
  std::vector<SimulationResult> llr_results(ys.size());
  parallel_run(static_cast<int>(ys.size()) * 2, [&](int i) {
    const auto yi = static_cast<std::size_t>(i / 2);
    if (i % 2 == 0)
      cab_results[yi] = run("cab", ys[yi]);
    else
      llr_results[yi] = run("llr", ys[yi]);
  });

  RoundTiming timing;
  for (std::size_t yi = 0; yi < ys.size(); ++yi) {
    const int y = ys[yi];
    const SimulationResult& cab = cab_results[yi];
    const SimulationResult& llr = llr_results[yi];
    std::cout << "\n--- " << y << " time slot(s) per period ("
              << cab.total_slots << " slots, ideal fraction "
              << fixed(timing.periodic_fraction(y), 3) << ") ---\n";
    TablePrinter table({"slot", "Alg2 est", "Alg2 actual", "LLR est",
                        "LLR actual"});
    for (std::size_t i = 0; i < cab.slots.size(); ++i) {
      table.row(cab.slots[i],
                fixed(cab.cumavg_estimated[i] * kRateScaleKbps, 0),
                fixed(cab.cumavg_effective[i] * kRateScaleKbps, 0),
                fixed(llr.cumavg_estimated[i] * kRateScaleKbps, 0),
                fixed(llr.cumavg_effective[i] * kRateScaleKbps, 0));
    }
    table.print(std::cout);

    const double cab_gap = std::abs(cab.cumavg_estimated.back() -
                                    cab.cumavg_effective.back()) /
                           cab.cumavg_effective.back();
    const double llr_gap = std::abs(llr.cumavg_estimated.back() -
                                    llr.cumavg_effective.back()) /
                           llr.cumavg_effective.back();
    std::cout << "estimate/actual relative gap: Alg2 " << fixed(cab_gap, 3)
              << "  LLR " << fixed(llr_gap, 3)
              << (cab_gap < llr_gap ? "  (Alg2 more accurate: OK)"
                                    : "  (MISMATCH)")
              << "\nactual throughput: Alg2 "
              << fixed(cab.cumavg_effective.back() * kRateScaleKbps, 0)
              << " vs LLR "
              << fixed(llr.cumavg_effective.back() * kRateScaleKbps, 0)
              << (cab.cumavg_effective.back() >=
                          0.98 * llr.cumavg_effective.back()
                      ? "  (Alg2 >= LLR: OK)"
                      : "  (MISMATCH)")
              << "\nrealized fraction of observed: "
              << fixed(cab.total_effective / cab.total_observed, 3)
              << " (ideal " << fixed(timing.periodic_fraction(y), 3) << ")\n";
  }
  return 0;
}
