// Multi-seed replication of the headline comparison (Fig. 7/8 claims) with
// error bars: CAB vs LLR across independent channel realizations on a
// fixed topology. Single-seed point estimates can flatter either policy;
// this bench shows the ordering is stable.
//
// The grid is two Scenario overrides on one declarative base — same
// topology seed, so both policies face the identical network — executed by
// ScenarioRunner::replicate() (seed-order-deterministic thread pool).
#include <iostream>
#include <thread>

#include "channel/rates.h"
#include "scenario/runner.h"
#include "util/table.h"

int main() {
  using namespace mhca;

  const char* kBase = R"(name = replicated-cab-vs-llr
[topology]
kind = geometric
nodes = 25
avg_degree = 5.0
[channel]
kind = gaussian
channels = 4
[policy]
kind = cab
[run]
slots = 1000
seed = 606
[replication]
replications = 8
parallelism = 0
)";
  const scenario::Scenario base = scenario::parse_scenario(kBase);

  std::cout << "=== Replicated CAB vs LLR (25x4, " << base.run.slots
            << " slots, " << base.replication.replications
            << " seeds; kbps, mean +/- std) ===\n"
            << "replication pool: up to "
            << std::max(1u, std::thread::hardware_concurrency())
            << " worker thread(s); results are seed-order deterministic\n\n";

  auto report_for = [&](const std::string& policy) {
    scenario::Scenario s = base;
    scenario::apply_override(s, "policy.kind=" + policy);
    return scenario::ScenarioRunner(s).replicate();
  };
  const ReplicationReport cab = report_for("cab");
  const ReplicationReport llr = report_for("llr");

  auto cell = [](const Summary& s, double scale) {
    return fixed(s.mean * scale, 1) + " +/- " + fixed(s.stddev * scale, 1);
  };
  TablePrinter table({"metric", "CAB", "LLR"});
  table.row("expected throughput / slot",
            cell(cab.metric("expected_rate"), kRateScaleKbps),
            cell(llr.metric("expected_rate"), kRateScaleKbps));
  table.row("effective throughput / slot",
            cell(cab.metric("effective_rate"), kRateScaleKbps),
            cell(llr.metric("effective_rate"), kRateScaleKbps));
  table.row("estimate gap (relative)", cell(cab.metric("estimate_gap"), 1.0),
            cell(llr.metric("estimate_gap"), 1.0));
  table.row("transmitters / slot", cell(cab.metric("strategy_size"), 1.0),
            cell(llr.metric("strategy_size"), 1.0));
  table.print(std::cout);

  const double gap = cab.metric("expected_rate").mean -
                     llr.metric("expected_rate").mean;
  const double spread = cab.metric("expected_rate").stddev +
                        llr.metric("expected_rate").stddev;
  std::cout << "\nCAB - LLR expected-rate gap: " << fixed(gap * kRateScaleKbps, 1)
            << " kbps (" << (gap > 0 ? "CAB ahead" : "LLR ahead")
            << (gap > spread ? ", beyond 1-sigma spread" : ", within noise")
            << ")\n";
  return 0;
}
