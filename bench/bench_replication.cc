// Multi-seed replication of the headline comparison (Fig. 7/8 claims) with
// error bars: CAB vs LLR across independent channel realizations on a
// fixed topology. Single-seed point estimates can flatter either policy;
// this bench shows the ordering is stable.
#include <iostream>
#include <thread>

#include "bandit/policy.h"
#include "channel/gaussian.h"
#include "graph/extended_graph.h"
#include "graph/generators.h"
#include "sim/replication.h"
#include "sim/simulator.h"
#include "util/rng.h"
#include "util/table.h"

int main() {
  using namespace mhca;
  const int kUsers = 25, kChannels = 4;
  const std::int64_t kSlots = 1000;
  const int kReps = 8;

  Rng topo_rng(606);
  ConflictGraph cg = random_geometric_avg_degree(kUsers, 5.0, topo_rng);
  ExtendedConflictGraph ecg(cg, kChannels);

  std::cout << "=== Replicated CAB vs LLR (" << kUsers << "x" << kChannels
            << ", " << kSlots << " slots, " << kReps
            << " seeds; kbps, mean +/- std) ===\n"
            << "replication pool: up to "
            << std::max(1u, std::thread::hardware_concurrency())
            << " worker thread(s); results are seed-order deterministic\n\n";

  auto experiment = [&](PolicyKind kind) {
    return [&, kind](std::uint64_t seed) {
      Rng rng(seed * 7919 + 11);
      GaussianChannelModel model(kUsers, kChannels, rng);
      PolicyParams params;
      params.llr_max_strategy_len = kUsers;
      auto policy = make_policy(kind, params);
      SimulationConfig cfg;
      cfg.slots = kSlots;
      Simulator sim(ecg, model, *policy, cfg);
      return sim.run();
    };
  };

  ReplicationConfig rcfg;
  rcfg.replications = kReps;
  rcfg.parallelism = 0;  // one worker per hardware thread
  const ReplicationReport cab = replicate(experiment(PolicyKind::kCab), rcfg);
  const ReplicationReport llr = replicate(experiment(PolicyKind::kLlr), rcfg);

  auto cell = [](const Summary& s, double scale) {
    return fixed(s.mean * scale, 1) + " +/- " + fixed(s.stddev * scale, 1);
  };
  TablePrinter table({"metric", "CAB", "LLR"});
  table.row("expected throughput / slot",
            cell(cab.metric("expected_rate"), kRateScaleKbps),
            cell(llr.metric("expected_rate"), kRateScaleKbps));
  table.row("effective throughput / slot",
            cell(cab.metric("effective_rate"), kRateScaleKbps),
            cell(llr.metric("effective_rate"), kRateScaleKbps));
  table.row("estimate gap (relative)", cell(cab.metric("estimate_gap"), 1.0),
            cell(llr.metric("estimate_gap"), 1.0));
  table.row("transmitters / slot", cell(cab.metric("strategy_size"), 1.0),
            cell(llr.metric("strategy_size"), 1.0));
  table.print(std::cout);

  const double gap = cab.metric("expected_rate").mean -
                     llr.metric("expected_rate").mean;
  const double spread = cab.metric("expected_rate").stddev +
                        llr.metric("expected_rate").stddev;
  std::cout << "\nCAB - LLR expected-rate gap: " << fixed(gap * kRateScaleKbps, 1)
            << " kbps (" << (gap > 0 ? "CAB ahead" : "LLR ahead")
            << (gap > spread ? ", beyond 1-sigma spread" : ", within noise")
            << ")\n";
  return 0;
}
