// Ablation of the scheme's design knobs (DESIGN.md §5):
//   * neighborhood radius r (election 2r+1, MWIS ball r)
//   * mini-round budget D
//   * local solver: exact enumeration (BnB) vs greedy constant-approx
// on one 40-user x 5-channel random network with true-mean weights.
// Reported weight is normalized by the best weight any configuration finds.
#include <chrono>
#include <iostream>

#include "channel/gaussian.h"
#include "graph/extended_graph.h"
#include "graph/generators.h"
#include "mwis/distributed_ptas.h"
#include "util/rng.h"
#include "util/table.h"

int main() {
  using namespace mhca;
  using Clock = std::chrono::steady_clock;

  Rng rng(777);
  const int kUsers = 40, kChannels = 5;
  ConflictGraph cg = random_geometric_avg_degree(kUsers, 6.0, rng);
  ExtendedConflictGraph ecg(cg, kChannels);
  GaussianChannelModel model(kUsers, kChannels, rng);
  const std::vector<double> w = model.mean_matrix();

  struct Row {
    int r, d;
    LocalSolverKind solver;
    double weight = 0, ms = 0;
    bool all_marked = false;
    int rounds_used = 0;
  };
  std::vector<Row> rows;
  double best = 0.0;

  for (int r : {1, 2, 3}) {
    for (int d : {1, 2, 3, 4, 6, 0}) {  // 0 = until all marked
      for (LocalSolverKind solver :
           {LocalSolverKind::kExact, LocalSolverKind::kGreedy}) {
        DistributedPtasConfig cfg;
        cfg.r = r;
        cfg.max_mini_rounds = d;
        cfg.local_solver = solver;
        cfg.bnb_node_cap = 50'000;
        DistributedRobustPtas engine(ecg.graph(), cfg);
        const auto t0 = Clock::now();
        const DistributedPtasResult res = engine.run(w);
        Row row;
        row.r = r;
        row.d = d;
        row.solver = solver;
        row.weight = res.weight;
        row.ms = std::chrono::duration<double, std::milli>(Clock::now() - t0)
                     .count();
        row.all_marked = res.all_marked;
        row.rounds_used = res.mini_rounds_used;
        rows.push_back(row);
        best = std::max(best, res.weight);
      }
    }
  }

  std::cout << "=== Ablation: r x D x local solver (40x5 network) ===\n"
            << "weight column normalized to the best configuration.\n\n";
  TablePrinter table({"r", "D", "local solver", "rel. weight", "marked all?",
                      "mini-rounds used", "decision ms"});
  for (const auto& row : rows) {
    table.row(row.r, row.d == 0 ? std::string("inf") : std::to_string(row.d),
              row.solver == LocalSolverKind::kExact ? "exact" : "greedy",
              fixed(row.weight / best, 4), row.all_marked ? "yes" : "no",
              row.rounds_used, fixed(row.ms, 2));
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: D >= ~4 recovers nearly all weight\n"
            << "(Theorem 4 / Fig. 6); exact local MWIS beats greedy by a\n"
            << "few percent; larger r costs time for little extra weight.\n";
  return 0;
}
