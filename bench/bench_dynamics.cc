// Benchmark of dynamic-topology maintenance: incremental in-place patching
// (Graph::apply_delta + NeighborhoodCache::apply_delta scoped invalidation
// via DistributedRobustPtas::on_graph_delta) against the full per-slot
// rebuild (graphs reconstructed from scratch, fresh engine = fresh cache)
// across churn rates and network sizes.
//
// Both sides replay the *same* delta trajectory (same model, same seed) and
// decide with the same weights every slot; the bench verifies winners and
// weights are byte-identical on every decision — the speedup column
// isolates maintenance cost, not behavior. Mild churn touches a few balls
// out of thousands, so scoped invalidation should win big at low rates and
// converge toward the rebuild cost as the blast radius approaches the
// whole graph.
//
// Emits a table on stdout and machine-readable JSON (default
// BENCH_dynamics.json, or argv[1]); `--smoke` shrinks the grid for CI.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "dynamics/dynamic_network.h"
#include "dynamics/registries.h"
#include "graph/generators.h"
#include "mwis/distributed_ptas.h"
#include "util/rng.h"
#include "util/table.h"

namespace {

using namespace mhca;
using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

struct Cell {
  std::string model;          ///< "churn@p" or "waypoint@speed".
  int users = 0;
  int vertices = 0;
  int slots = 0;
  int changed_slots = 0;
  double avg_touched = 0.0;      ///< H vertices touched per changed slot.
  double avg_invalidated = 0.0;  ///< Balls recomputed per changed slot.
  double cache_build_ms = 0.0;   ///< One-time full cache build (= the cost
                                 ///< the full path pays per changed slot).
  double inc_ms = 0.0;           ///< Maintenance ms per changed slot, incr.
  double full_ms = 0.0;          ///< Maintenance ms per changed slot, full.
  double speedup = 0.0;
  bool identical = true;
};

std::unique_ptr<dynamics::DynamicsModel> build_model(
    const std::string& kind, const scenario::ParamMap& params,
    const ConflictGraph& base, std::int64_t slots) {
  Rng rng(0xD1CE);
  const dynamics::DynamicsBuildContext ctx{&base, slots};
  return dynamics::dynamics_registry().create(kind, params, ctx, rng);
}

Cell run_cell(const std::string& kind, const scenario::ParamMap& params,
              const std::string& label, int users, int channels, int slots) {
  Cell cell;
  cell.model = label;
  cell.users = users;
  cell.slots = slots;

  Rng topo_rng(static_cast<std::uint64_t>(users) * 977 + 13);
  ConflictGraph base = random_geometric_avg_degree(
      users, 6.0, topo_rng, /*force_connected=*/false);

  dynamics::DynamicNetwork inc(base, channels,
                               build_model(kind, params, base, slots),
                               /*incremental=*/true);
  dynamics::DynamicNetwork full(base, channels,
                                build_model(kind, params, base, slots),
                                /*incremental=*/false);
  cell.vertices = inc.ecg().num_vertices();

  DistributedPtasConfig cfg;
  cfg.r = 2;
  cfg.local_solve_parallelism = 1;
  auto inc_engine =
      std::make_unique<DistributedRobustPtas>(inc.ecg().graph(), cfg);
  const auto tc0 = Clock::now();
  auto full_engine =
      std::make_unique<DistributedRobustPtas>(full.ecg().graph(), cfg);
  cell.cache_build_ms = ms_since(tc0);

  Rng weight_rng(static_cast<std::uint64_t>(users) * 31 + 7);
  std::vector<double> weights(static_cast<std::size_t>(cell.vertices));

  double inc_ms = 0.0, full_ms = 0.0;
  std::int64_t touched = 0, invalidated = 0;
  for (int t = 2; t <= slots; ++t) {
    const auto ti = Clock::now();
    const dynamics::SlotChange& ca = inc.advance(t);
    if (ca.changed) inc_engine->on_graph_delta(ca.touched_vertices);
    const double ims = ms_since(ti);

    const auto tf = Clock::now();
    const dynamics::SlotChange& cb = full.advance(t);
    if (cb.changed)
      full_engine =
          std::make_unique<DistributedRobustPtas>(full.ecg().graph(), cfg);
    const double fms = ms_since(tf);

    if (ca.changed != cb.changed) cell.identical = false;
    if (!ca.changed) continue;
    ++cell.changed_slots;
    inc_ms += ims;
    full_ms += fms;
    touched += static_cast<std::int64_t>(ca.touched_vertices.size());
    invalidated += inc_engine->neighborhood_cache().last_invalidated();

    // Decide on both sides with the same weights; byte-identical or bust.
    for (auto& w : weights) w = weight_rng.uniform(0.05, 1.0);
    const DistributedPtasResult a =
        inc_engine->run(weights, inc.active_vertex_mask());
    const DistributedPtasResult b =
        full_engine->run(weights, full.active_vertex_mask());
    if (a.winners != b.winners || a.weight != b.weight)
      cell.identical = false;
  }
  if (cell.changed_slots > 0) {
    const double n = static_cast<double>(cell.changed_slots);
    cell.inc_ms = inc_ms / n;
    cell.full_ms = full_ms / n;
    cell.avg_touched = static_cast<double>(touched) / n;
    cell.avg_invalidated = static_cast<double>(invalidated) / n;
    cell.speedup = cell.inc_ms > 0.0 ? cell.full_ms / cell.inc_ms : 0.0;
  }
  return cell;
}

std::string json_of(const std::vector<Cell>& cells, int channels) {
  std::string out;
  char buf[768];
  out += "{\n  \"bench\": \"dynamics\",\n";
  std::snprintf(buf, sizeof(buf),
                "  \"config\": {\"channels\": %d, \"avg_degree\": 6.0, "
                "\"r\": 2, \"weights\": \"uniform[0.05,1)\", "
                "\"full_mode\": \"rebuild G+H from scratch, fresh engine "
                "(fresh NeighborhoodCache) per changed slot\"},\n",
                channels);
  out += buf;
  out += "  \"results\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    std::snprintf(
        buf, sizeof(buf),
        "    {\"model\": \"%s\", \"users\": %d, \"vertices\": %d, "
        "\"slots\": %d, \"changed_slots\": %d, \"avg_touched_vertices\": "
        "%.1f, \"avg_invalidated_balls\": %.1f, \"cache_build_ms\": %.3f, "
        "\"incremental_ms_per_changed_slot\": %.3f, "
        "\"full_rebuild_ms_per_changed_slot\": %.3f, \"speedup\": %.2f, "
        "\"identical_decisions\": %s}%s\n",
        c.model.c_str(), c.users, c.vertices, c.slots, c.changed_slots,
        c.avg_touched, c.avg_invalidated, c.cache_build_ms, c.inc_ms,
        c.full_ms, c.speedup, c.identical ? "true" : "false",
        i + 1 < cells.size() ? "," : "");
    out += buf;
  }
  out += "  ]\n}\n";
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_dynamics.json";
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--smoke")
      smoke = true;
    else
      json_path = a;
  }
  const int kChannels = 4;

  std::cout << "=== Dynamic topology maintenance: incremental (apply_delta "
               "+ scoped cache invalidation) vs full per-slot rebuild ===\n\n";

  struct Spec {
    const char* kind;
    const char* label;
    std::vector<std::pair<const char*, const char*>> params;
  };
  std::vector<Spec> specs{
      {"churn", "churn p=0.0005",
       {{"leave_prob", "0.0005"}, {"join_prob", "0.3"}}},
      {"churn", "churn p=0.002", {{"leave_prob", "0.002"}, {"join_prob", "0.3"}}},
      {"churn", "churn p=0.01", {{"leave_prob", "0.01"}, {"join_prob", "0.3"}}},
      {"churn", "churn p=0.05", {{"leave_prob", "0.05"}, {"join_prob", "0.3"}}},
      // Slow mobility: the spatial-grid edge re-derivation (O(n·k)/slot)
      // leaves a small blast radius as the dominant per-slot cost, so
      // scoped invalidation beats the rebuild. Fast mobility (below)
      // touches most balls anyway — the honest parity case.
      {"waypoint", "waypoint v=0.005", {{"speed", "0.005"}}},
      {"waypoint", "waypoint v=0.05", {{"speed", "0.05"}}},
  };
  std::vector<int> sizes{120, 320, 800};
  int slots = 150;
  if (smoke) {
    specs.resize(2);
    sizes = {60};
    slots = 40;
  }

  std::vector<Cell> cells;
  TablePrinter table({"model", "users", "|H|", "changed slots",
                      "touched/slot", "balls redone", "incr ms", "full ms",
                      "speedup", "identical"});
  for (int users : sizes) {
    for (const Spec& spec : specs) {
      scenario::ParamMap p;
      for (const auto& [k, v] : spec.params) p.set(k, v);
      const Cell c = run_cell(spec.kind, p, spec.label, users, kChannels,
                              slots);
      cells.push_back(c);
      table.row(c.model, std::to_string(c.users), std::to_string(c.vertices),
                std::to_string(c.changed_slots), fixed(c.avg_touched, 1),
                fixed(c.avg_invalidated, 1), fixed(c.inc_ms, 3),
                fixed(c.full_ms, 3), fixed(c.speedup, 1) + "x",
                c.identical ? "yes" : "NO");
    }
  }
  table.print(std::cout);

  bool all_identical = true, low_churn_wins = true;
  const int largest = sizes.back();
  for (const Cell& c : cells) {
    all_identical = all_identical && c.identical;
    // The headline claim: at the lowest churn rate, incremental clearly
    // beats the rebuild. Judged at the largest network only — the win
    // grows with size, and the small cells see a handful of changed slots
    // (single-digit sample counts swing the per-slot average).
    if (c.users == largest &&
        c.model.find("0.0005") != std::string::npos && c.changed_slots > 0)
      low_churn_wins = low_churn_wins && c.speedup > 1.5;
  }
  std::cout << "\ndecisions identical across maintenance modes: "
            << (all_identical ? "yes" : "NO — BUG") << "\n";

  const std::string json = json_of(cells, kChannels);
  std::ofstream out(json_path);
  out << json;
  out.flush();
  if (!out) {
    std::cerr << "error: failed to write " << json_path << "\n";
    return 1;
  }
  std::cout << "wrote " << json_path << "\n";
  if (!all_identical) return 1;
  if (!smoke && !low_churn_wins) {
    std::cerr << "warning: incremental maintenance did not clearly beat the "
                 "full rebuild at the lowest churn rate\n";
    return 1;
  }
  return 0;
}
