// Primary-user activity decorator.
//
// Cognitive radios may only transmit when the primary (licensed) user is
// idle. This decorator multiplies any base reward process by an on/off
// primary-activity mask per channel. The paper's evaluation does not model
// primaries explicitly (its rates already encode opportunistic quality);
// this is provided as a failure-injection / extension mechanism.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "channel/channel_model.h"

namespace mhca {

/// Wraps a base model; channel j is blocked (reward 0) at slot t with
/// probability busy[j], independently across slots and channels but shared
/// across nodes (the primary occupies the spectrum region-wide).
class PrimaryUserChannelModel : public ChannelModel {
 public:
  PrimaryUserChannelModel(std::shared_ptr<const ChannelModel> base,
                          std::vector<double> busy_prob,
                          std::uint64_t mask_seed);

  int num_nodes() const override { return base_->num_nodes(); }
  int num_channels() const override { return base_->num_channels(); }
  double mean(int node, int channel, std::int64_t t) const override;
  double sample(int node, int channel, std::int64_t t) const override;
  double rate_scale_kbps() const override { return base_->rate_scale_kbps(); }

  /// True iff the primary on channel `channel` is transmitting at slot t.
  bool primary_active(int channel, std::int64_t t) const;

 private:
  std::shared_ptr<const ChannelModel> base_;
  std::vector<double> busy_prob_;
  std::uint64_t mask_seed_;
};

}  // namespace mhca
