#include "channel/trace.h"

#include "util/assert.h"

namespace mhca {

TraceChannelModel::TraceChannelModel(int num_nodes, int num_channels,
                                     std::vector<std::vector<double>> trace)
    : num_nodes_(num_nodes),
      num_channels_(num_channels),
      trace_(std::move(trace)) {
  MHCA_ASSERT(num_nodes >= 1 && num_channels >= 1, "empty channel model");
  MHCA_ASSERT(!trace_.empty(), "empty trace");
  const std::size_t k = static_cast<std::size_t>(num_nodes) *
                        static_cast<std::size_t>(num_channels);
  empirical_mean_.assign(k, 0.0);
  for (const auto& row : trace_) {
    MHCA_ASSERT(row.size() == k, "ragged trace row");
    for (std::size_t i = 0; i < k; ++i) {
      MHCA_ASSERT(row[i] >= 0.0 && row[i] <= 1.0,
                  "trace rate out of [0,1]; normalize by kRateScaleKbps");
      empirical_mean_[i] += row[i];
    }
  }
  for (auto& m : empirical_mean_) m /= static_cast<double>(trace_.size());
}

std::size_t TraceChannelModel::index(int node, int channel) const {
  MHCA_ASSERT(node >= 0 && node < num_nodes_, "node out of range");
  MHCA_ASSERT(channel >= 0 && channel < num_channels_, "channel out of range");
  return static_cast<std::size_t>(node) * static_cast<std::size_t>(num_channels_) +
         static_cast<std::size_t>(channel);
}

double TraceChannelModel::mean(int node, int channel,
                               std::int64_t /*t*/) const {
  return empirical_mean_[index(node, channel)];
}

double TraceChannelModel::sample(int node, int channel, std::int64_t t) const {
  MHCA_ASSERT(t >= 1, "slots are 1-based");
  const std::size_t row =
      static_cast<std::size_t>((t - 1) % static_cast<std::int64_t>(trace_.size()));
  return trace_[row][index(node, channel)];
}

TraceChannelModel record_trace(const ChannelModel& model, std::int64_t slots) {
  MHCA_ASSERT(slots >= 1, "need at least one slot");
  const int n = model.num_nodes();
  const int m = model.num_channels();
  std::vector<std::vector<double>> trace;
  trace.reserve(static_cast<std::size_t>(slots));
  for (std::int64_t t = 1; t <= slots; ++t) {
    std::vector<double> row(static_cast<std::size_t>(n) *
                            static_cast<std::size_t>(m));
    for (int i = 0; i < n; ++i)
      for (int j = 0; j < m; ++j)
        row[static_cast<std::size_t>(i * m + j)] = model.sample(i, j, t);
    trace.push_back(std::move(row));
  }
  return TraceChannelModel(n, m, std::move(trace));
}

}  // namespace mhca
