// Gaussian i.i.d. channel model (paper §V: "each channel evolves as a
// distinct i.i.d. Gaussian stochastic process over time").
#pragma once

#include <cstdint>
#include <vector>

#include "channel/channel_model.h"
#include "util/rng.h"

namespace mhca {

/// Each (node, channel) pair draws one of the eight paper rate classes as
/// its mean; realizations are Gaussian around it (std = std_frac * mean),
/// clamped to [0, 1] after normalization by kRateScaleKbps.
class GaussianChannelModel : public ChannelModel {
 public:
  /// Randomly assign rate classes using `rng`.
  GaussianChannelModel(int num_nodes, int num_channels, Rng& rng,
                       double std_frac = 0.1);

  /// Explicit mean rates in kbps (row-major node x channel).
  GaussianChannelModel(int num_nodes, int num_channels,
                       std::vector<double> mean_rates_kbps, double std_frac,
                       std::uint64_t noise_seed);

  int num_nodes() const override { return num_nodes_; }
  int num_channels() const override { return num_channels_; }
  double mean(int node, int channel, std::int64_t t) const override;
  double sample(int node, int channel, std::int64_t t) const override;

  double mean_rate_kbps(int node, int channel) const;

 private:
  std::size_t index(int node, int channel) const;

  int num_nodes_;
  int num_channels_;
  std::vector<double> mean_kbps_;
  double std_frac_;
  std::uint64_t noise_seed_;
};

}  // namespace mhca
