// Trace-replay channel model.
//
// The paper's evaluation uses synthetic processes; real deployments replay
// measured spectrum traces. This model serves both: wrap an explicit
// T x (N*M) rate matrix (e.g. parsed from a measurement file) and replay it
// slot by slot, wrapping around at the end. `record_trace` snapshots any
// other ChannelModel into a trace — the synthetic-substitution path when a
// proprietary trace is unavailable (DESIGN.md §3).
#pragma once

#include <cstdint>
#include <vector>

#include "channel/channel_model.h"

namespace mhca {

class TraceChannelModel : public ChannelModel {
 public:
  /// `trace[t][node*M + channel]` = normalized rate at slot t (t >= 1 maps
  /// to row (t-1) % T). The trace must be non-empty and rectangular.
  TraceChannelModel(int num_nodes, int num_channels,
                    std::vector<std::vector<double>> trace);

  int num_nodes() const override { return num_nodes_; }
  int num_channels() const override { return num_channels_; }
  /// Empirical per-pair mean over the whole trace.
  double mean(int node, int channel, std::int64_t t) const override;
  double sample(int node, int channel, std::int64_t t) const override;

  std::int64_t trace_length() const {
    return static_cast<std::int64_t>(trace_.size());
  }

 private:
  std::size_t index(int node, int channel) const;

  int num_nodes_;
  int num_channels_;
  std::vector<std::vector<double>> trace_;
  std::vector<double> empirical_mean_;
};

/// Record `slots` slots of `model` (slots 1..slots) into a replayable trace.
TraceChannelModel record_trace(const ChannelModel& model, std::int64_t slots);

}  // namespace mhca
