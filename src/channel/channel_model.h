// Channel quality processes ξ_{i,j}(t) (paper §II).
//
// Each (node i, channel j) pair has an i.i.d. process with unknown mean
// µ_{i,j} ∈ [0, 1]. Sampling is *stateless*: the realization at slot t is a
// pure function of (seed, node, channel, t). This guarantees that the
// lockstep simulator and the message-level protocol runtime — and any two
// policies compared on the same seed — observe identical channel draws.
#pragma once

#include <cstdint>
#include <vector>

#include "channel/rates.h"

namespace mhca {

/// Abstract per-(node, channel) reward process, normalized to [0, 1].
class ChannelModel {
 public:
  virtual ~ChannelModel() = default;

  virtual int num_nodes() const = 0;
  virtual int num_channels() const = 0;

  /// Expected reward of (node, channel) at slot t, in [0, 1]. For i.i.d.
  /// models this is independent of t; time-varying (adversarial) models may
  /// depend on it.
  virtual double mean(int node, int channel, std::int64_t t = 1) const = 0;

  /// Realized reward at slot t, in [0, 1]. Deterministic given the model.
  virtual double sample(int node, int channel, std::int64_t t) const = 0;

  /// kbps represented by reward 1.0 (for reporting in paper units).
  virtual double rate_scale_kbps() const { return kRateScaleKbps; }

  /// True when mean() is time-invariant (i.i.d. models).
  virtual bool is_stationary() const { return true; }

  /// Matrix of means at slot t, indexed by vertex id node*M + channel.
  std::vector<double> mean_matrix(std::int64_t t = 1) const;
};

}  // namespace mhca
