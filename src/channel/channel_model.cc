#include "channel/channel_model.h"

namespace mhca {

std::vector<double> ChannelModel::mean_matrix(std::int64_t t) const {
  const int n = num_nodes();
  const int m = num_channels();
  std::vector<double> out(static_cast<std::size_t>(n) *
                          static_cast<std::size_t>(m));
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < m; ++j)
      out[static_cast<std::size_t>(i * m + j)] = mean(i, j, t);
  return out;
}

}  // namespace mhca
