#include "channel/bernoulli.h"

#include "util/assert.h"
#include "util/hash.h"

namespace mhca {

BernoulliChannelModel::BernoulliChannelModel(int num_nodes, int num_channels,
                                             Rng& rng, double p_lo,
                                             double p_hi)
    : num_nodes_(num_nodes),
      num_channels_(num_channels),
      noise_seed_(rng.engine()()) {
  MHCA_ASSERT(num_nodes >= 1 && num_channels >= 1, "empty channel model");
  MHCA_ASSERT(0.0 <= p_lo && p_lo <= p_hi && p_hi <= 1.0,
              "invalid probability range");
  const std::size_t k = static_cast<std::size_t>(num_nodes) *
                        static_cast<std::size_t>(num_channels);
  probs_.resize(k);
  values_.resize(k);
  for (std::size_t i = 0; i < k; ++i) {
    probs_[i] = rng.uniform(p_lo, p_hi);
    const int cls = rng.uniform_int(0, static_cast<int>(kDataRatesKbps.size()) - 1);
    values_[i] = kDataRatesKbps[static_cast<std::size_t>(cls)] / kRateScaleKbps;
  }
}

BernoulliChannelModel::BernoulliChannelModel(int num_nodes, int num_channels,
                                             std::vector<double> probs,
                                             std::vector<double> values,
                                             std::uint64_t noise_seed)
    : num_nodes_(num_nodes),
      num_channels_(num_channels),
      probs_(std::move(probs)),
      values_(std::move(values)),
      noise_seed_(noise_seed) {
  const std::size_t k = static_cast<std::size_t>(num_nodes) *
                        static_cast<std::size_t>(num_channels);
  MHCA_ASSERT(probs_.size() == k && values_.size() == k,
              "probability/value matrix size mismatch");
}

std::size_t BernoulliChannelModel::index(int node, int channel) const {
  MHCA_ASSERT(node >= 0 && node < num_nodes_, "node out of range");
  MHCA_ASSERT(channel >= 0 && channel < num_channels_, "channel out of range");
  return static_cast<std::size_t>(node) * static_cast<std::size_t>(num_channels_) +
         static_cast<std::size_t>(channel);
}

double BernoulliChannelModel::mean(int node, int channel,
                                   std::int64_t /*t*/) const {
  const std::size_t i = index(node, channel);
  return probs_[i] * values_[i];
}

double BernoulliChannelModel::sample(int node, int channel,
                                     std::int64_t t) const {
  const std::size_t i = index(node, channel);
  const std::uint64_t h =
      hash_combine(noise_seed_, hash_combine(static_cast<std::uint64_t>(i),
                                             static_cast<std::uint64_t>(t)));
  return hash_to_unit(splitmix64(h)) < probs_[i] ? values_[i] : 0.0;
}

}  // namespace mhca
