// Gilbert–Elliott two-state Markov channel model.
//
// The classic cognitive-radio channel abstraction (cf. the paper's related
// work [21][22]: channels evolving as good/bad Markov processes): each
// (node, channel) pair has a hidden state chain
//     good -> bad  with prob p_gb,    bad -> good with prob p_bg,
// and emits its good-rate or bad-rate accordingly. The chain is initialized
// from its stationary distribution, so the *marginal* mean is
// time-invariant even though samples are correlated across slots — a
// deliberate stress test of the paper's i.i.d. assumption.
//
// State sequences are derived deterministically from the seed and cached
// lazily per pair, so sampling remains reproducible across runtimes.
#pragma once

#include <cstdint>
#include <vector>

#include "channel/channel_model.h"
#include "util/rng.h"

namespace mhca {

class GilbertElliottChannelModel : public ChannelModel {
 public:
  /// Random construction: good rates from the paper's rate classes, bad
  /// rate = fraction of the good rate, transition probabilities uniform in
  /// the given ranges.
  GilbertElliottChannelModel(int num_nodes, int num_channels, Rng& rng,
                             double bad_fraction = 0.2,
                             double p_transition_lo = 0.05,
                             double p_transition_hi = 0.3);

  int num_nodes() const override { return num_nodes_; }
  int num_channels() const override { return num_channels_; }
  /// Marginal (stationary) mean — time-invariant by construction.
  double mean(int node, int channel, std::int64_t t) const override;
  double sample(int node, int channel, std::int64_t t) const override;

  /// Stationary probability of the good state for a pair.
  double stationary_good(int node, int channel) const;
  /// The hidden state at slot t (exposed for tests).
  bool in_good_state(int node, int channel, std::int64_t t) const;

 private:
  std::size_t index(int node, int channel) const;
  void extend_states(std::size_t i, std::int64_t t) const;

  int num_nodes_;
  int num_channels_;
  std::vector<double> good_rate_;  ///< normalized
  std::vector<double> bad_rate_;   ///< normalized
  std::vector<double> p_gb_;
  std::vector<double> p_bg_;
  std::uint64_t seed_;
  /// Lazily grown state sequences; states_[i][t] = 1 iff good at slot t.
  mutable std::vector<std::vector<std::uint8_t>> states_;
};

}  // namespace mhca
