#include "channel/markov.h"

#include "util/assert.h"
#include "util/hash.h"

namespace mhca {

GilbertElliottChannelModel::GilbertElliottChannelModel(
    int num_nodes, int num_channels, Rng& rng, double bad_fraction,
    double p_transition_lo, double p_transition_hi)
    : num_nodes_(num_nodes),
      num_channels_(num_channels),
      seed_(rng.engine()()) {
  MHCA_ASSERT(num_nodes >= 1 && num_channels >= 1, "empty channel model");
  MHCA_ASSERT(bad_fraction >= 0.0 && bad_fraction <= 1.0,
              "bad fraction out of range");
  MHCA_ASSERT(0.0 < p_transition_lo && p_transition_lo <= p_transition_hi &&
                  p_transition_hi <= 1.0,
              "invalid transition probability range");
  const std::size_t k = static_cast<std::size_t>(num_nodes) *
                        static_cast<std::size_t>(num_channels);
  good_rate_.resize(k);
  bad_rate_.resize(k);
  p_gb_.resize(k);
  p_bg_.resize(k);
  states_.resize(k);
  for (std::size_t i = 0; i < k; ++i) {
    const int cls =
        rng.uniform_int(0, static_cast<int>(kDataRatesKbps.size()) - 1);
    good_rate_[i] = kDataRatesKbps[static_cast<std::size_t>(cls)] / kRateScaleKbps;
    bad_rate_[i] = bad_fraction * good_rate_[i];
    p_gb_[i] = rng.uniform(p_transition_lo, p_transition_hi);
    p_bg_[i] = rng.uniform(p_transition_lo, p_transition_hi);
  }
}

std::size_t GilbertElliottChannelModel::index(int node, int channel) const {
  MHCA_ASSERT(node >= 0 && node < num_nodes_, "node out of range");
  MHCA_ASSERT(channel >= 0 && channel < num_channels_, "channel out of range");
  return static_cast<std::size_t>(node) * static_cast<std::size_t>(num_channels_) +
         static_cast<std::size_t>(channel);
}

double GilbertElliottChannelModel::stationary_good(int node,
                                                   int channel) const {
  const std::size_t i = index(node, channel);
  return p_bg_[i] / (p_gb_[i] + p_bg_[i]);
}

void GilbertElliottChannelModel::extend_states(std::size_t i,
                                               std::int64_t t) const {
  auto& seq = states_[i];
  if (seq.empty()) {
    // Initialize from the stationary distribution at slot 0.
    const double pi_good = p_bg_[i] / (p_gb_[i] + p_bg_[i]);
    const double u =
        hash_to_unit(splitmix64(hash_combine(seed_, static_cast<std::uint64_t>(i))));
    seq.push_back(u < pi_good ? 1 : 0);
  }
  while (static_cast<std::int64_t>(seq.size()) <= t) {
    const std::int64_t step = static_cast<std::int64_t>(seq.size());
    const std::uint64_t h = hash_combine(
        seed_ ^ 0x5bd1e995u,
        hash_combine(static_cast<std::uint64_t>(i),
                     static_cast<std::uint64_t>(step)));
    const double u = hash_to_unit(splitmix64(h));
    const bool was_good = seq.back() != 0;
    const bool now_good = was_good ? (u >= p_gb_[i]) : (u < p_bg_[i]);
    seq.push_back(now_good ? 1 : 0);
  }
}

bool GilbertElliottChannelModel::in_good_state(int node, int channel,
                                               std::int64_t t) const {
  MHCA_ASSERT(t >= 0, "negative slot");
  const std::size_t i = index(node, channel);
  extend_states(i, t);
  return states_[i][static_cast<std::size_t>(t)] != 0;
}

double GilbertElliottChannelModel::mean(int node, int channel,
                                        std::int64_t /*t*/) const {
  const std::size_t i = index(node, channel);
  const double pi_good = p_bg_[i] / (p_gb_[i] + p_bg_[i]);
  return pi_good * good_rate_[i] + (1.0 - pi_good) * bad_rate_[i];
}

double GilbertElliottChannelModel::sample(int node, int channel,
                                          std::int64_t t) const {
  const std::size_t i = index(node, channel);
  return in_good_state(node, channel, t) ? good_rate_[i] : bad_rate_[i];
}

}  // namespace mhca
