// The eight channel data-rate classes used throughout the paper's
// evaluation (§V): 150..1350 kbps, taken from the cognitive-radio system
// of Li et al. (INFOCOM 2012).
#pragma once

#include <array>

namespace mhca {

/// Paper §V channel data rates, in kbps.
inline constexpr std::array<double, 8> kDataRatesKbps = {
    150.0, 225.0, 300.0, 450.0, 600.0, 900.0, 1200.0, 1350.0};

/// Normalization constant mapping kbps to the [0, 1] reward range the
/// bandit analysis assumes (µ ∈ [0,1]); chosen > max rate so Gaussian
/// fluctuation rarely clips at 1.
inline constexpr double kRateScaleKbps = 1500.0;

}  // namespace mhca
