#include "channel/primary_user.h"

#include "util/assert.h"
#include "util/hash.h"

namespace mhca {

PrimaryUserChannelModel::PrimaryUserChannelModel(
    std::shared_ptr<const ChannelModel> base, std::vector<double> busy_prob,
    std::uint64_t mask_seed)
    : base_(std::move(base)),
      busy_prob_(std::move(busy_prob)),
      mask_seed_(mask_seed) {
  MHCA_ASSERT(base_ != nullptr, "null base model");
  MHCA_ASSERT(static_cast<int>(busy_prob_.size()) == base_->num_channels(),
              "one busy probability per channel required");
  for (double p : busy_prob_)
    MHCA_ASSERT(p >= 0.0 && p <= 1.0, "busy probability out of range");
}

bool PrimaryUserChannelModel::primary_active(int channel,
                                             std::int64_t t) const {
  MHCA_ASSERT(channel >= 0 && channel < num_channels(), "channel out of range");
  const std::uint64_t h =
      hash_combine(mask_seed_, hash_combine(static_cast<std::uint64_t>(channel),
                                            static_cast<std::uint64_t>(t)));
  return hash_to_unit(splitmix64(h)) <
         busy_prob_[static_cast<std::size_t>(channel)];
}

double PrimaryUserChannelModel::mean(int node, int channel,
                                     std::int64_t t) const {
  return base_->mean(node, channel, t) *
         (1.0 - busy_prob_[static_cast<std::size_t>(channel)]);
}

double PrimaryUserChannelModel::sample(int node, int channel,
                                       std::int64_t t) const {
  if (primary_active(channel, t)) return 0.0;
  return base_->sample(node, channel, t);
}

}  // namespace mhca
