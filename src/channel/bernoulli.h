// Bernoulli channel model: channel is either idle (full rate) or occupied
// (zero), the classic on/off spectrum-availability abstraction.
#pragma once

#include <cstdint>
#include <vector>

#include "channel/channel_model.h"
#include "util/rng.h"

namespace mhca {

/// Reward = value_{i,j} with probability p_{i,j}, else 0.
class BernoulliChannelModel : public ChannelModel {
 public:
  /// Random availability probabilities in [p_lo, p_hi] and random rate
  /// classes for the "on" value.
  BernoulliChannelModel(int num_nodes, int num_channels, Rng& rng,
                        double p_lo = 0.2, double p_hi = 0.95);

  /// Explicit probabilities and on-values (normalized, row-major).
  BernoulliChannelModel(int num_nodes, int num_channels,
                        std::vector<double> probs, std::vector<double> values,
                        std::uint64_t noise_seed);

  int num_nodes() const override { return num_nodes_; }
  int num_channels() const override { return num_channels_; }
  double mean(int node, int channel, std::int64_t t) const override;
  double sample(int node, int channel, std::int64_t t) const override;

 private:
  std::size_t index(int node, int channel) const;

  int num_nodes_;
  int num_channels_;
  std::vector<double> probs_;
  std::vector<double> values_;
  std::uint64_t noise_seed_;
};

}  // namespace mhca
