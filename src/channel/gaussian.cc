#include "channel/gaussian.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/assert.h"
#include "util/hash.h"

namespace mhca {
namespace {

/// Standard-normal deviate from a 64-bit hash via Box–Muller (one branch of
/// the pair is enough; the two uniforms come from remixing the hash).
double hashed_gaussian(std::uint64_t h) {
  const double u1 = std::max(hash_to_unit(splitmix64(h)), 1e-12);
  const double u2 = hash_to_unit(splitmix64(h ^ 0xdeadbeefcafef00dULL));
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

}  // namespace

GaussianChannelModel::GaussianChannelModel(int num_nodes, int num_channels,
                                           Rng& rng, double std_frac)
    : num_nodes_(num_nodes),
      num_channels_(num_channels),
      std_frac_(std_frac),
      noise_seed_(rng.engine()()) {
  MHCA_ASSERT(num_nodes >= 1 && num_channels >= 1, "empty channel model");
  MHCA_ASSERT(std_frac >= 0.0, "negative std fraction");
  mean_kbps_.resize(static_cast<std::size_t>(num_nodes) *
                    static_cast<std::size_t>(num_channels));
  for (auto& m : mean_kbps_) {
    const int cls = rng.uniform_int(0, static_cast<int>(kDataRatesKbps.size()) - 1);
    m = kDataRatesKbps[static_cast<std::size_t>(cls)];
  }
}

GaussianChannelModel::GaussianChannelModel(int num_nodes, int num_channels,
                                           std::vector<double> mean_rates_kbps,
                                           double std_frac,
                                           std::uint64_t noise_seed)
    : num_nodes_(num_nodes),
      num_channels_(num_channels),
      mean_kbps_(std::move(mean_rates_kbps)),
      std_frac_(std_frac),
      noise_seed_(noise_seed) {
  MHCA_ASSERT(static_cast<int>(mean_kbps_.size()) == num_nodes * num_channels,
              "mean matrix size mismatch");
}

std::size_t GaussianChannelModel::index(int node, int channel) const {
  MHCA_ASSERT(node >= 0 && node < num_nodes_, "node out of range");
  MHCA_ASSERT(channel >= 0 && channel < num_channels_, "channel out of range");
  return static_cast<std::size_t>(node) * static_cast<std::size_t>(num_channels_) +
         static_cast<std::size_t>(channel);
}

double GaussianChannelModel::mean_rate_kbps(int node, int channel) const {
  return mean_kbps_[index(node, channel)];
}

double GaussianChannelModel::mean(int node, int channel,
                                  std::int64_t /*t*/) const {
  return mean_kbps_[index(node, channel)] / kRateScaleKbps;
}

double GaussianChannelModel::sample(int node, int channel,
                                    std::int64_t t) const {
  const double mu = mean_kbps_[index(node, channel)];
  const std::uint64_t h = hash_combine(
      noise_seed_,
      hash_combine(static_cast<std::uint64_t>(index(node, channel)),
                   static_cast<std::uint64_t>(t)));
  const double raw = mu + std_frac_ * mu * hashed_gaussian(h);
  return std::clamp(raw / kRateScaleKbps, 0.0, 1.0);
}

}  // namespace mhca
