#include "channel/adversarial.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/assert.h"
#include "util/hash.h"

namespace mhca {

AdversarialChannelModel::AdversarialChannelModel(int num_nodes,
                                                 int num_channels,
                                                 AdversaryKind kind,
                                                 std::int64_t horizon, Rng& rng,
                                                 double noise_std)
    : num_nodes_(num_nodes),
      num_channels_(num_channels),
      kind_(kind),
      horizon_(horizon),
      noise_std_(noise_std),
      noise_seed_(rng.engine()()) {
  MHCA_ASSERT(num_nodes >= 1 && num_channels >= 1, "empty channel model");
  MHCA_ASSERT(horizon >= 1, "horizon must be positive");
  const std::size_t k = static_cast<std::size_t>(num_nodes) *
                        static_cast<std::size_t>(num_channels);
  base_means_.resize(k);
  other_means_.resize(k);
  phases_.resize(k);
  for (std::size_t i = 0; i < k; ++i) {
    base_means_[i] = rng.uniform(0.1, 0.9);
    other_means_[i] = rng.uniform(0.1, 0.9);
    phases_[i] = rng.uniform(0.0, 2.0 * std::numbers::pi);
  }
  if (kind_ == AdversaryKind::kSwap) {
    // Swap the best and worst channel of each node at t0 = horizon/2.
    other_means_ = base_means_;
    for (int i = 0; i < num_nodes_; ++i) {
      std::size_t lo = index(i, 0), hi = index(i, 0);
      for (int j = 1; j < num_channels_; ++j) {
        const std::size_t idx = index(i, j);
        if (base_means_[idx] < base_means_[lo]) lo = idx;
        if (base_means_[idx] > base_means_[hi]) hi = idx;
      }
      std::swap(other_means_[lo], other_means_[hi]);
    }
  }
}

std::size_t AdversarialChannelModel::index(int node, int channel) const {
  MHCA_ASSERT(node >= 0 && node < num_nodes_, "node out of range");
  MHCA_ASSERT(channel >= 0 && channel < num_channels_, "channel out of range");
  return static_cast<std::size_t>(node) * static_cast<std::size_t>(num_channels_) +
         static_cast<std::size_t>(channel);
}

double AdversarialChannelModel::mean(int node, int channel,
                                     std::int64_t t) const {
  const std::size_t i = index(node, channel);
  const double frac =
      std::clamp(static_cast<double>(t) / static_cast<double>(horizon_), 0.0, 1.0);
  switch (kind_) {
    case AdversaryKind::kDrift: {
      const double amp = 0.5 * (other_means_[i] - base_means_[i]);
      const double mid = 0.5 * (other_means_[i] + base_means_[i]);
      return std::clamp(
          mid + amp * std::sin(2.0 * std::numbers::pi * frac + phases_[i]), 0.0,
          1.0);
    }
    case AdversaryKind::kSwap:
      return t < horizon_ / 2 ? base_means_[i] : other_means_[i];
    case AdversaryKind::kRamp:
      return (1.0 - frac) * base_means_[i] + frac * other_means_[i];
  }
  return base_means_[i];
}

double AdversarialChannelModel::sample(int node, int channel,
                                       std::int64_t t) const {
  const std::size_t i = index(node, channel);
  const std::uint64_t h =
      hash_combine(noise_seed_, hash_combine(static_cast<std::uint64_t>(i),
                                             static_cast<std::uint64_t>(t)));
  const double u1 = std::max(hash_to_unit(splitmix64(h)), 1e-12);
  const double u2 = hash_to_unit(splitmix64(h ^ 0xabcdef1234567890ULL));
  const double g = std::sqrt(-2.0 * std::log(u1)) *
                   std::cos(2.0 * std::numbers::pi * u2);
  return std::clamp(mean(node, channel, t) + noise_std_ * g, 0.0, 1.0);
}

}  // namespace mhca
