#include "obs/publish.h"

#include <string>

namespace mhca::obs {

namespace {
constexpr const char* kMsgTypeLabels[net::kNumMsgTypes] = {
    "hello", "weight_update", "leader_declare", "determination",
    "view_change"};
}  // namespace

const char* msg_type_label(int type) {
  return (type >= 0 && type < net::kNumMsgTypes) ? kMsgTypeLabels[type]
                                                 : "unknown";
}

void publish_channel_stats(MetricsRegistry& reg, const net::ChannelStats& cs) {
  reg.counter("channel.messages").add(cs.messages);
  reg.counter("channel.floods").add(cs.floods);
  reg.counter("channel.drops").add(cs.drops);
  reg.counter("channel.duplicates").add(cs.duplicates);
  reg.counter("channel.deferred").add(cs.deferred);
  reg.counter("channel.mini_timeslots").add(cs.mini_timeslots);
  reg.counter("channel.bytes_on_wire").add(cs.bytes_on_wire);
  reg.counter("channel.fragments").add(cs.fragments);
  for (int t = 0; t < net::kNumMsgTypes; ++t) {
    const std::string suffix = kMsgTypeLabels[t];
    reg.counter("channel.messages." + suffix).add(cs.messages_by_type[t]);
    reg.counter("channel.bytes." + suffix).add(cs.bytes_by_type[t]);
  }
}

void publish_transport_stats(MetricsRegistry& reg,
                             const net::TransportStats* ts) {
  static const net::TransportStats kZero{};
  if (ts == nullptr) ts = &kZero;
  reg.counter("transport.exchanges").add(ts->exchanges);
  reg.counter("transport.frames_sent").add(ts->frames_sent);
  reg.counter("transport.frames_received").add(ts->frames_received);
  reg.counter("transport.datagrams_sent").add(ts->datagrams_sent);
  reg.counter("transport.datagrams_received").add(ts->datagrams_received);
  reg.counter("transport.bytes_sent").add(ts->bytes_sent);
  reg.counter("transport.bytes_received").add(ts->bytes_received);
  reg.counter("transport.retransmit_requests").add(ts->retransmit_requests);
  reg.counter("transport.retransmissions").add(ts->retransmissions);
}

void publish_membership_counters(MetricsRegistry& reg,
                                 const net::RuntimeCounters& rc) {
  reg.counter("membership.retries").add(rc.retries);
  reg.counter("membership.timeouts").add(rc.timeouts);
  reg.counter("membership.view_changes").add(rc.view_changes);
  reg.counter("membership.stale_decisions").add(rc.stale_decisions);
}

void publish_simulation(MetricsRegistry& reg, const SimulationResult& res) {
  reg.counter("decision.slots").add(res.total_slots);
  reg.counter("decision.decisions").add(res.decisions);
  reg.counter("decision.messages").add(res.total_messages);
  reg.counter("decision.mini_timeslots").add(res.total_mini_timeslots);
  reg.gauge("decision.total_observed").set(res.total_observed);
  reg.gauge("decision.total_effective").set(res.total_effective);
  reg.gauge("decision.total_expected").set(res.total_expected);
  reg.gauge("decision.avg_strategy_size").set(res.avg_strategy_size);
  reg.gauge("decision.seconds").set(res.decision_seconds);
  reg.gauge("decision.theta").set(res.theta);
  reg.gauge("decision.strategy_size")
      .set(static_cast<double>(res.last_strategy.size()));
}

}  // namespace mhca::obs
