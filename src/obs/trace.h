#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

// The tracing half of the telemetry spine (src/obs/README.md).
//
// TraceRecorder collects Chrome trace-event JSON — the format Perfetto and
// chrome://tracing load directly. Producers emit RAII ScopedSpans (B/E
// duration pairs) and instant events ("i") onto fixed tracks:
//
//   pid = shard id (0 for unsharded runs; a multi-process UDP run written
//         as one file per shard merges into a single timeline in Perfetto
//         because each process tags its own pid),
//   tid = subsystem track (engine / runtime / channel / transport below).
//
// Disabled-path contract: tracing is compiled in but off by default. Every
// instrumentation site loads the global recorder pointer once (one relaxed
// atomic load) and does nothing when it is null; sites exist only at
// decision-stage / round-phase / flood / exchange granularity, never in
// inner loops. Decisions, `trace_hash` and `decision_digest` are
// bit-identical with tracing on or off — the recorder observes timing, it
// never touches protocol or RNG state.

namespace mhca::obs {

// Track (tid) assignments — stable small ints so traces diff cleanly.
inline constexpr int kTidEngine = 1;     // DistributedRobustPtas stages
inline constexpr int kTidRuntime = 2;    // net round phases + instants
inline constexpr int kTidChannel = 3;    // per-flood spans
inline constexpr int kTidTransport = 4;  // per-exchange spans

class TraceRecorder {
 public:
  TraceRecorder() : t0_(std::chrono::steady_clock::now()) {}

  /// Opens a duration span ("B"). `args_json` must be empty or a complete
  /// JSON object (e.g. R"({"round":3})") — built only by enabled sites.
  void begin(int tid, const char* name, std::string args_json = {});

  /// Closes the most recent span on this (pid, tid) track ("E").
  void end(int tid);

  /// Point event ("i", thread scope).
  void instant(int tid, const char* name, std::string args_json = {});

  std::size_t event_count() const;

  /// Drops all recorded events (benchmarks reuse one recorder across reps).
  void clear();

  /// {"traceEvents": [...], "displayTimeUnit": "ms"}
  std::string to_json() const;

  /// Returns false (and writes nothing) if the file cannot be opened.
  bool write_file(const std::string& path) const;

 private:
  struct Event {
    char ph;  // 'B' | 'E' | 'i'
    int pid;
    int tid;
    double ts_us;
    const char* name;  // static string; null for 'E'
    std::string args;  // pre-rendered JSON object or empty
  };

  double now_us() const {
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - t0_)
        .count();
  }

  std::chrono::steady_clock::time_point t0_;
  mutable std::mutex mu_;
  std::vector<Event> events_;
};

/// Process-global recorder (null = tracing off). Not owned.
void set_trace(TraceRecorder* rec);
TraceRecorder* trace();

/// Thread-local shard tag stamped into every event's pid. Runtimes running
/// over a sharded Transport set this to their shard index; everything else
/// stays 0.
void set_current_shard(int shard);
int current_shard();

/// RAII span: no-op when constructed with a null recorder. Capture the
/// recorder pointer once per scope — `obs::ScopedSpan span(obs::trace(),
/// obs::kTidRuntime, "phase.hello");`.
class ScopedSpan {
 public:
  ScopedSpan(TraceRecorder* rec, int tid, const char* name)
      : rec_(rec), tid_(tid) {
    if (rec_) rec_->begin(tid_, name);
  }
  ScopedSpan(TraceRecorder* rec, int tid, const char* name,
             std::string args_json)
      : rec_(rec), tid_(tid) {
    if (rec_) rec_->begin(tid_, name, std::move(args_json));
  }
  ~ScopedSpan() {
    if (rec_) rec_->end(tid_);
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  TraceRecorder* rec_;
  int tid_;
};

}  // namespace mhca::obs
