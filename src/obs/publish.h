#pragma once

#include "net/control_channel.h"
#include "net/runtime.h"
#include "net/transport.h"
#include "obs/metrics.h"
#include "sim/simulator.h"

// The one place the `domain.name` key scheme is defined (src/obs/README.md
// documents it). Producers keep their hot-path accumulator structs
// (ChannelStats, TransportStats, AgentCounters aggregated into
// RuntimeCounters, SimulationResult) — these functions publish a finished
// struct into a registry at snapshot points. Consumers (NetRunSummary
// derivation in scenario/runner.cc, `mhca_sim --metrics/--json`, the CI
// schema gate) read the registry keys, never the structs, so adding a
// metric is one publish line + one schema line.
//
// Publishing *adds* the struct's totals: call each function exactly once
// per run per registry (a second call would double-count).

namespace mhca::obs {

/// Canonical lowercase label for a MsgType index ("hello", "weight_update",
/// "leader_declare", "determination", "view_change").
const char* msg_type_label(int type);

/// channel.* — flood/byte bill from the control channel, including the
/// channel.messages.<type> / channel.bytes.<type> per-type breakdown.
void publish_channel_stats(MetricsRegistry& reg, const net::ChannelStats& cs);

/// transport.* — datagram/retransmit counters. Pass null when the run had
/// no Transport; the keys are still registered (as zeros) so every
/// snapshot covers the transport domain.
void publish_transport_stats(MetricsRegistry& reg,
                             const net::TransportStats* ts);

/// membership.* — per-agent robustness counters aggregated by the runtime.
void publish_membership_counters(MetricsRegistry& reg,
                                 const net::RuntimeCounters& rc);

/// decision.* totals for a lockstep Simulator run.
void publish_simulation(MetricsRegistry& reg, const SimulationResult& res);

}  // namespace mhca::obs
