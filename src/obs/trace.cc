#include "obs/trace.h"

#include <cstdio>
#include <fstream>

#include "obs/json.h"

namespace mhca::obs {

namespace {

std::atomic<TraceRecorder*> g_trace{nullptr};
thread_local int t_shard = 0;

}  // namespace

void set_trace(TraceRecorder* rec) {
  g_trace.store(rec, std::memory_order_release);
}

TraceRecorder* trace() { return g_trace.load(std::memory_order_acquire); }

void set_current_shard(int shard) { t_shard = shard; }

int current_shard() { return t_shard; }

void TraceRecorder::begin(int tid, const char* name, std::string args_json) {
  const double ts = now_us();
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back({'B', t_shard, tid, ts, name, std::move(args_json)});
}

void TraceRecorder::end(int tid) {
  const double ts = now_us();
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back({'E', t_shard, tid, ts, nullptr, {}});
}

void TraceRecorder::instant(int tid, const char* name,
                            std::string args_json) {
  const double ts = now_us();
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back({'i', t_shard, tid, ts, name, std::move(args_json)});
}

std::size_t TraceRecorder::event_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

void TraceRecorder::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
}

std::string TraceRecorder::to_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"traceEvents\": [";
  bool first = true;
  char buf[96];
  for (const Event& e : events_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "{\"ph\": \"";
    out.push_back(e.ph);
    out += "\", \"pid\": ";
    std::snprintf(buf, sizeof(buf), "%d, \"tid\": %d, \"ts\": %.3f", e.pid,
                  e.tid, e.ts_us);
    out += buf;
    if (e.name) {
      out += ", \"name\": ";
      append_json_string(out, e.name);
    }
    if (e.ph == 'i') out += ", \"s\": \"t\"";
    if (!e.args.empty()) {
      out += ", \"args\": ";
      out += e.args;
    }
    out += "}";
  }
  out += first ? "]" : "\n]";
  out += ", \"displayTimeUnit\": \"ms\"}\n";
  return out;
}

bool TraceRecorder::write_file(const std::string& path) const {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) return false;
  const std::string body = to_json();
  f.write(body.data(), static_cast<std::streamsize>(body.size()));
  return static_cast<bool>(f);
}

}  // namespace mhca::obs
