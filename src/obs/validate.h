#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

// Self-contained validators for the telemetry artifacts the spine emits:
//   - Chrome trace-event JSON (obs/trace.h): parses, ts is monotonically
//     non-decreasing within each (pid, tid) track, every "B" has an "E".
//   - Metrics snapshots (MetricsRegistry::to_json) against a checked-in
//     schema (tools/metrics_schema.json): required keys present, every key
//     follows the `domain.name` scheme, required domains covered.
//
// Backed by a minimal recursive-descent JSON parser (no dependencies) that
// the CI gate and tests/obs_test.cc both use via tools/mhca_obs_validate.

namespace mhca::obs {

/// Parsed JSON value. Objects preserve insertion order.
struct JsonValue {
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> items;                           // Array
  std::vector<std::pair<std::string, JsonValue>> fields;  // Object

  /// Object member lookup; null when absent or not an object.
  const JsonValue* find(std::string_view key) const;
};

/// Parses strict JSON. On failure returns false and sets `error` (if
/// non-null) to a message with a byte offset.
bool parse_json(std::string_view text, JsonValue& out, std::string* error);

/// Empty result = valid. Each string is one human-readable violation.
std::vector<std::string> validate_chrome_trace(std::string_view text);

/// Validates a MetricsRegistry::to_json snapshot against a schema document:
/// {"required_domains": [...], "required_counters": [...],
///  "required_gauges": [...], "required_histograms": [...],
///  "required_histogram_fields": [...]}. Empty result = valid.
std::vector<std::string> validate_metrics_snapshot(std::string_view snapshot,
                                                   std::string_view schema);

/// Merges per-shard Chrome traces into one timeline. Each input is
/// (label, full trace JSON text); labels only decorate error messages.
/// Every event keeps its (pid, tid) track identity — shards already tag
/// their own pid (obs/trace.h), so the merged file opens in Perfetto as one
/// timeline with one process lane per shard. Inputs whose pid sets overlap
/// are rejected (two shards claiming one lane would interleave into a
/// nonsense track), and events are stably ordered by ts across shards,
/// which preserves each track's internal B/E order. On any error the
/// returned text is empty.
std::string merge_chrome_traces(
    const std::vector<std::pair<std::string, std::string>>& inputs,
    std::vector<std::string>& errors);

}  // namespace mhca::obs
