#include "obs/metrics.h"

#include <cmath>
#include <limits>
#include <thread>

#include "obs/json.h"

namespace mhca::obs {

int Counter::shard_index() {
  thread_local const int idx = static_cast<int>(
      std::hash<std::thread::id>{}(std::this_thread::get_id()) %
      static_cast<std::size_t>(kShards));
  return idx;
}

void Histogram::observe(double v) {
  int b = 0;
  if (v >= 1.0) {
    b = std::min(kBuckets - 1,
                 1 + static_cast<int>(std::floor(std::log2(v))));
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (s_.count == 0) {
    s_.min = v;
    s_.max = v;
  } else {
    s_.min = std::min(s_.min, v);
    s_.max = std::max(s_.max, v);
  }
  ++s_.count;
  s_.sum += v;
  ++s_.buckets[b];
}

Histogram::Snapshot Histogram::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return s_;
}

double Histogram::Snapshot::percentile(double p) const {
  if (count == 0) return 0.0;
  const double target = p / 100.0 * static_cast<double>(count);
  std::int64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    if (buckets[i] == 0) continue;
    const double in_bucket = static_cast<double>(buckets[i]);
    if (static_cast<double>(seen) + in_bucket >= target) {
      // Bucket i spans [2^(i-1), 2^i) (bucket 0 starts at 0); walk the
      // target rank's fraction of the way through it.
      const double lo = i == 0 ? 0.0 : std::ldexp(1.0, i - 1);
      const double hi = std::ldexp(1.0, i);
      double frac = (target - static_cast<double>(seen)) / in_bucket;
      frac = std::min(std::max(frac, 0.0), 1.0);
      const double v = lo + frac * (hi - lo);
      return std::min(std::max(v, min), max);
    }
    seen += buckets[i];
  }
  return max;
}

Counter& MetricsRegistry::counter(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[key];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[key];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[key];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

std::int64_t MetricsRegistry::counter_value(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = counters_.find(key);
  return it == counters_.end() ? 0 : it->second->value();
}

double MetricsRegistry::gauge_value(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = gauges_.find(key);
  return it == gauges_.end() ? 0.0 : it->second->value();
}

std::string MetricsRegistry::to_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [key, c] : counters_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    ";
    append_json_string(out, key);
    out += ": " + json_number(c->value());
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [key, g] : gauges_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    ";
    append_json_string(out, key);
    out += ": " + json_number(g->value());
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [key, h] : histograms_) {
    const Histogram::Snapshot s = h->snapshot();
    out += first ? "\n" : ",\n";
    first = false;
    out += "    ";
    append_json_string(out, key);
    out += ": {\"count\": " + json_number(s.count);
    out += ", \"sum\": " + json_number(s.sum);
    out += ", \"min\": " + json_number(s.min);
    out += ", \"max\": " + json_number(s.max);
    out += ", \"p50\": " + json_number(s.percentile(50.0));
    out += ", \"p90\": " + json_number(s.percentile(90.0));
    out += ", \"p99\": " + json_number(s.percentile(99.0));
    out += ", \"buckets\": [";
    int last = Histogram::kBuckets - 1;
    while (last > 0 && s.buckets[last] == 0) --last;
    for (int i = 0; i <= last; ++i) {
      if (i) out += ", ";
      out += json_number(s.buckets[i]);
    }
    out += "]}";
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

std::string MetricsRegistry::to_csv() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "kind,key,value\n";
  for (const auto& [key, c] : counters_)
    out += "counter," + key + "," + json_number(c->value()) + "\n";
  for (const auto& [key, g] : gauges_)
    out += "gauge," + key + "," + json_number(g->value()) + "\n";
  for (const auto& [key, h] : histograms_) {
    const Histogram::Snapshot s = h->snapshot();
    out += "histogram_count," + key + "," + json_number(s.count) + "\n";
    out += "histogram_sum," + key + "," + json_number(s.sum) + "\n";
    out += "histogram_min," + key + "," + json_number(s.min) + "\n";
    out += "histogram_max," + key + "," + json_number(s.max) + "\n";
    out += "histogram_p50," + key + "," + json_number(s.percentile(50.0)) +
           "\n";
    out += "histogram_p90," + key + "," + json_number(s.percentile(90.0)) +
           "\n";
    out += "histogram_p99," + key + "," + json_number(s.percentile(99.0)) +
           "\n";
  }
  return out;
}

namespace {
std::atomic<MetricsRegistry*> g_metrics{nullptr};
}  // namespace

void set_metrics(MetricsRegistry* reg) {
  g_metrics.store(reg, std::memory_order_release);
}

MetricsRegistry* metrics() {
  return g_metrics.load(std::memory_order_acquire);
}

}  // namespace mhca::obs
