#include "obs/json.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>

namespace mhca::obs {

void append_json_string(std::string& out, std::string_view s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

std::string json_quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  append_json_string(out, s);
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  if (v == std::floor(v) && std::fabs(v) < 9.0e15)
    return json_number(static_cast<std::int64_t>(v));
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  // Prefer the shorter %.15g form when it round-trips.
  char short_buf[40];
  std::snprintf(short_buf, sizeof(short_buf), "%.15g", v);
  double back = 0.0;
  if (std::sscanf(short_buf, "%lf", &back) == 1 && back == v)
    return short_buf;
  return buf;
}

std::string json_number(std::int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  return buf;
}

std::string json_hex64(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "0x%016" PRIx64, v);
  return buf;
}

}  // namespace mhca::obs
