#include "obs/validate.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>

#include "obs/json.h"

namespace mhca::obs {

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind != Kind::Object) return nullptr;
  for (const auto& [k, v] : fields)
    if (k == key) return &v;
  return nullptr;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  bool parse(JsonValue& out, std::string* error) {
    skip_ws();
    if (!parse_value(out)) {
      if (error) *error = error_;
      return false;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing data after top-level value");
      if (error) *error = error_;
      return false;
    }
    return true;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  bool fail(const std::string& what) {
    if (error_.empty())
      error_ = what + " at byte " + std::to_string(pos_);
    return false;
  }

  bool parse_value(JsonValue& out) {
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{': return parse_object(out);
      case '[': return parse_array(out);
      case '"':
        out.kind = JsonValue::Kind::String;
        return parse_string(out.str);
      case 't':
      case 'f': return parse_bool(out);
      case 'n': return parse_null(out);
      default: return parse_number(out);
    }
  }

  bool parse_object(JsonValue& out) {
    out.kind = JsonValue::Kind::Object;
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"')
        return fail("expected object key string");
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':')
        return fail("expected ':' after object key");
      ++pos_;
      skip_ws();
      JsonValue v;
      if (!parse_value(v)) return false;
      out.fields.emplace_back(std::move(key), std::move(v));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or '}' in object");
    }
  }

  bool parse_array(JsonValue& out) {
    out.kind = JsonValue::Kind::Array;
    ++pos_;  // '['
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      JsonValue v;
      if (!parse_value(v)) return false;
      out.items.push_back(std::move(v));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or ']' in array");
    }
  }

  bool parse_string(std::string& out) {
    ++pos_;  // opening quote
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return fail("unterminated escape");
        const char e = text_[pos_];
        switch (e) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            if (pos_ + 4 >= text_.size()) return fail("truncated \\u escape");
            unsigned code = 0;
            for (int i = 1; i <= 4; ++i) {
              const char h = text_[pos_ + static_cast<std::size_t>(i)];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f')
                code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F')
                code |= static_cast<unsigned>(h - 'A' + 10);
              else
                return fail("bad hex digit in \\u escape");
            }
            pos_ += 4;
            // UTF-8 encode (surrogate pairs not needed for our artifacts;
            // lone surrogates pass through as replacement-free code units).
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out.push_back(static_cast<char>(0xC0 | (code >> 6)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out.push_back(static_cast<char>(0xE0 | (code >> 12)));
              out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default: return fail("unknown escape character");
        }
        ++pos_;
        continue;
      }
      if (static_cast<unsigned char>(c) < 0x20)
        return fail("raw control character in string");
      out.push_back(c);
      ++pos_;
    }
    return fail("unterminated string");
  }

  bool parse_bool(JsonValue& out) {
    out.kind = JsonValue::Kind::Bool;
    if (text_.substr(pos_, 4) == "true") {
      out.boolean = true;
      pos_ += 4;
      return true;
    }
    if (text_.substr(pos_, 5) == "false") {
      out.boolean = false;
      pos_ += 5;
      return true;
    }
    return fail("bad literal");
  }

  bool parse_null(JsonValue& out) {
    out.kind = JsonValue::Kind::Null;
    if (text_.substr(pos_, 4) == "null") {
      pos_ += 4;
      return true;
    }
    return fail("bad literal");
  }

  bool parse_number(JsonValue& out) {
    out.kind = JsonValue::Kind::Number;
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) return fail("expected a JSON value");
    const std::string token(text_.substr(start, pos_ - start));
    // strtod is laxer than JSON: reject the leading zeros ("01") and bare
    // signs it would accept.
    const std::size_t digits = token[0] == '-' ? 1 : 0;
    if (token.size() == digits ||
        (token[digits] == '0' && token.size() > digits + 1 &&
         std::isdigit(static_cast<unsigned char>(token[digits + 1])))) {
      pos_ = start;
      return fail("malformed number");
    }
    char* endp = nullptr;
    out.number = std::strtod(token.c_str(), &endp);
    if (endp == nullptr || *endp != '\0') {
      pos_ = start;
      return fail("malformed number");
    }
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

/// `domain.name` key discipline: lowercase/digit/underscore segments
/// separated by dots, at least two segments.
bool well_formed_key(const std::string& key) {
  int segments = 0;
  std::size_t seg_len = 0;
  for (const char c : key) {
    if (c == '.') {
      if (seg_len == 0) return false;
      ++segments;
      seg_len = 0;
      continue;
    }
    if (!(std::islower(static_cast<unsigned char>(c)) ||
          std::isdigit(static_cast<unsigned char>(c)) || c == '_'))
      return false;
    ++seg_len;
  }
  if (seg_len == 0) return false;
  return segments >= 1;
}

std::string domain_of(const std::string& key) {
  const std::size_t dot = key.find('.');
  return dot == std::string::npos ? key : key.substr(0, dot);
}

}  // namespace

bool parse_json(std::string_view text, JsonValue& out, std::string* error) {
  Parser p(text);
  return p.parse(out, error);
}

std::vector<std::string> validate_chrome_trace(std::string_view text) {
  std::vector<std::string> errors;
  JsonValue root;
  std::string perr;
  if (!parse_json(text, root, &perr)) {
    errors.push_back("trace does not parse as JSON: " + perr);
    return errors;
  }
  const JsonValue* events = root.find("traceEvents");
  if (events == nullptr || events->kind != JsonValue::Kind::Array) {
    errors.push_back("trace has no \"traceEvents\" array");
    return errors;
  }
  // Per-(pid, tid) track state: last timestamp and open-B depth.
  std::map<std::pair<int, int>, std::pair<double, int>> tracks;
  std::size_t idx = 0;
  for (const JsonValue& e : events->items) {
    const std::string where = "event #" + std::to_string(idx++);
    if (e.kind != JsonValue::Kind::Object) {
      errors.push_back(where + ": not an object");
      continue;
    }
    const JsonValue* ph = e.find("ph");
    const JsonValue* ts = e.find("ts");
    const JsonValue* pid = e.find("pid");
    const JsonValue* tid = e.find("tid");
    if (ph == nullptr || ph->kind != JsonValue::Kind::String ||
        ph->str.size() != 1) {
      errors.push_back(where + ": missing or malformed \"ph\"");
      continue;
    }
    if (ts == nullptr || ts->kind != JsonValue::Kind::Number ||
        pid == nullptr || pid->kind != JsonValue::Kind::Number ||
        tid == nullptr || tid->kind != JsonValue::Kind::Number) {
      errors.push_back(where + ": missing ts/pid/tid");
      continue;
    }
    const char kind = ph->str[0];
    if (kind != 'E' && e.find("name") == nullptr)
      errors.push_back(where + ": missing \"name\"");
    const auto track = std::make_pair(static_cast<int>(pid->number),
                                      static_cast<int>(tid->number));
    auto [it, inserted] =
        tracks.try_emplace(track, std::make_pair(ts->number, 0));
    if (!inserted) {
      if (ts->number < it->second.first) {
        char buf[160];
        std::snprintf(buf, sizeof(buf),
                      "%s: ts %.3f goes backwards (track pid=%d tid=%d was "
                      "at %.3f)",
                      where.c_str(), ts->number, track.first, track.second,
                      it->second.first);
        errors.push_back(buf);
      }
      it->second.first = std::max(it->second.first, ts->number);
    }
    if (kind == 'B') {
      ++it->second.second;
    } else if (kind == 'E') {
      if (it->second.second == 0)
        errors.push_back(where + ": \"E\" with no open \"B\" on its track");
      else
        --it->second.second;
    }
  }
  for (const auto& [track, state] : tracks) {
    if (state.second != 0) {
      char buf[96];
      std::snprintf(buf, sizeof(buf),
                    "track pid=%d tid=%d ends with %d unclosed \"B\" events",
                    track.first, track.second, state.second);
      errors.push_back(buf);
    }
  }
  return errors;
}

std::vector<std::string> validate_metrics_snapshot(std::string_view snapshot,
                                                   std::string_view schema) {
  std::vector<std::string> errors;
  JsonValue snap, sch;
  std::string perr;
  if (!parse_json(snapshot, snap, &perr)) {
    errors.push_back("snapshot does not parse as JSON: " + perr);
    return errors;
  }
  if (!parse_json(schema, sch, &perr)) {
    errors.push_back("schema does not parse as JSON: " + perr);
    return errors;
  }

  std::set<std::string> seen_domains;
  const auto check_section = [&](const char* section, bool numbers) {
    const JsonValue* sec = snap.find(section);
    if (sec == nullptr || sec->kind != JsonValue::Kind::Object) {
      errors.push_back(std::string("snapshot missing \"") + section +
                       "\" object");
      return;
    }
    for (const auto& [key, v] : sec->fields) {
      if (!well_formed_key(key))
        errors.push_back(std::string(section) + " key \"" + key +
                         "\" violates the domain.name scheme");
      else
        seen_domains.insert(domain_of(key));
      if (numbers && v.kind != JsonValue::Kind::Number)
        errors.push_back(std::string(section) + " key \"" + key +
                         "\" is not a number");
    }
  };
  check_section("counters", true);
  check_section("gauges", true);
  check_section("histograms", false);
  if (!errors.empty() && snap.find("counters") == nullptr) return errors;

  const auto require_keys = [&](const char* list_name, const char* section) {
    const JsonValue* list = sch.find(list_name);
    if (list == nullptr) return;
    const JsonValue* sec = snap.find(section);
    for (const JsonValue& k : list->items) {
      if (k.kind != JsonValue::Kind::String) continue;
      if (sec == nullptr || sec->find(k.str) == nullptr)
        errors.push_back(std::string("required ") + section + " key \"" +
                         k.str + "\" missing from snapshot");
    }
  };
  require_keys("required_counters", "counters");
  require_keys("required_gauges", "gauges");
  require_keys("required_histograms", "histograms");

  // Every histogram object must carry the full summary-field set (count /
  // sum / min / max / p50 / p90 / p99 / buckets) — a producer that forgets
  // the percentile step ships a snapshot consumers can't chart.
  if (const JsonValue* fields = sch.find("required_histogram_fields")) {
    const JsonValue* hists = snap.find("histograms");
    if (hists != nullptr && hists->kind == JsonValue::Kind::Object) {
      for (const auto& [key, h] : hists->fields) {
        if (h.kind != JsonValue::Kind::Object) {
          errors.push_back("histogram \"" + key + "\" is not an object");
          continue;
        }
        for (const JsonValue& f : fields->items) {
          if (f.kind != JsonValue::Kind::String) continue;
          const JsonValue* v = h.find(f.str);
          if (v == nullptr)
            errors.push_back("histogram \"" + key + "\" missing field \"" +
                             f.str + "\"");
          else if (f.str == "buckets" ? v->kind != JsonValue::Kind::Array
                                      : v->kind != JsonValue::Kind::Number)
            errors.push_back("histogram \"" + key + "\" field \"" + f.str +
                             "\" has the wrong type");
        }
      }
    }
  }

  if (const JsonValue* domains = sch.find("required_domains")) {
    for (const JsonValue& d : domains->items) {
      if (d.kind != JsonValue::Kind::String) continue;
      if (seen_domains.count(d.str) == 0)
        errors.push_back("required domain \"" + d.str +
                         "\" has no keys in the snapshot");
    }
  }
  return errors;
}

namespace {

/// Serializes a parsed JsonValue back to compact JSON. Objects keep their
/// insertion order, so merged events re-emit with the fields the recorder
/// wrote in the positions it wrote them.
void serialize_json(const JsonValue& v, std::string& out) {
  switch (v.kind) {
    case JsonValue::Kind::Null: out += "null"; return;
    case JsonValue::Kind::Bool: out += v.boolean ? "true" : "false"; return;
    case JsonValue::Kind::Number: out += json_number(v.number); return;
    case JsonValue::Kind::String: append_json_string(out, v.str); return;
    case JsonValue::Kind::Array: {
      out += '[';
      for (std::size_t i = 0; i < v.items.size(); ++i) {
        if (i) out += ", ";
        serialize_json(v.items[i], out);
      }
      out += ']';
      return;
    }
    case JsonValue::Kind::Object: {
      out += '{';
      for (std::size_t i = 0; i < v.fields.size(); ++i) {
        if (i) out += ", ";
        append_json_string(out, v.fields[i].first);
        out += ": ";
        serialize_json(v.fields[i].second, out);
      }
      out += '}';
      return;
    }
  }
}

}  // namespace

std::string merge_chrome_traces(
    const std::vector<std::pair<std::string, std::string>>& inputs,
    std::vector<std::string>& errors) {
  struct Shard {
    JsonValue root;
    std::set<int> pids;
  };
  std::vector<Shard> shards;
  shards.reserve(inputs.size());
  std::map<int, const std::string*> pid_owner;
  for (const auto& [label, text] : inputs) {
    // Full per-input validation first: merging can only launder a broken
    // trace into a broken timeline.
    for (const std::string& e : validate_chrome_trace(text))
      errors.push_back(label + ": " + e);
    Shard s;
    std::string perr;
    if (!parse_json(text, s.root, &perr)) continue;  // already reported
    const JsonValue* events = s.root.find("traceEvents");
    if (events == nullptr) continue;
    for (const JsonValue& e : events->items)
      if (const JsonValue* pid = e.find("pid"))
        s.pids.insert(static_cast<int>(pid->number));
    for (const int pid : s.pids) {
      const auto [it, inserted] = pid_owner.try_emplace(pid, &label);
      if (!inserted)
        errors.push_back(label + ": pid " + std::to_string(pid) +
                         " already used by " + *it->second +
                         " — shards must tag distinct pids");
    }
    shards.push_back(std::move(s));
  }
  if (!errors.empty()) return {};

  // Stable order by ts across shards: each (pid, tid) track is already
  // non-decreasing (validated above) and lives in exactly one input, so a
  // stable sort cannot reorder a track's B/E pairs at equal timestamps.
  std::vector<const JsonValue*> merged;
  for (const Shard& s : shards)
    for (const JsonValue& e : s.root.find("traceEvents")->items)
      merged.push_back(&e);
  std::stable_sort(merged.begin(), merged.end(),
                   [](const JsonValue* a, const JsonValue* b) {
                     return a->find("ts")->number < b->find("ts")->number;
                   });

  std::string out = "{\"traceEvents\": [";
  for (std::size_t i = 0; i < merged.size(); ++i) {
    out += i ? ",\n" : "\n";
    serialize_json(*merged[i], out);
  }
  out += "\n], \"displayTimeUnit\": \"ms\"}\n";
  return out;
}

}  // namespace mhca::obs
