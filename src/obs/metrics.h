#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

// The metrics half of the telemetry spine (src/obs/README.md).
//
// A MetricsRegistry holds named counters / gauges / histograms under a
// stable `domain.name` key scheme (e.g. "channel.bytes_on_wire",
// "membership.view_changes"). Producers publish into whichever registry is
// installed; consumers (CLI `--metrics`, `--json`, CI schema validation,
// NetRunSummary derivation) read one uniform snapshot instead of
// hand-copied struct fields.
//
// Contract: observability must never perturb results. Nothing in here
// touches RNG state, decision state or the wire — metrics are pure
// accounting, and the hot-path structs (ChannelStats, TransportStats,
// AgentCounters) keep accumulating exactly as before; they are *published*
// into a registry at snapshot points (obs/publish.h), not replaced.

namespace mhca::obs {

/// Monotonic integer counter with thread-sharded cache-line-padded cells:
/// concurrent `add` calls from different threads rarely contend on a line.
class Counter {
 public:
  void add(std::int64_t delta) {
    shards_[shard_index()].v.fetch_add(delta, std::memory_order_relaxed);
  }
  void inc() { add(1); }

  std::int64_t value() const {
    std::int64_t sum = 0;
    for (const auto& s : shards_) sum += s.v.load(std::memory_order_relaxed);
    return sum;
  }

 private:
  static constexpr int kShards = 8;
  static int shard_index();

  struct alignas(64) Cell {
    std::atomic<std::int64_t> v{0};
  };
  std::array<Cell, kShards> shards_;
};

/// Last-write-wins double value (exact: atomic store/load, no arithmetic).
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Power-of-two-bucketed distribution: bucket i counts observations in
/// [2^(i-1), 2^i) (bucket 0 holds everything below 1, the last bucket is
/// open-ended). Mutex-guarded — histograms record at decision/round
/// granularity, never in inner loops.
class Histogram {
 public:
  static constexpr int kBuckets = 32;

  struct Snapshot {
    std::int64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    std::array<std::int64_t, kBuckets> buckets{};

    /// Estimated p-th percentile (p in [0, 100]) from the power-of-two
    /// buckets: linear interpolation across the bucket holding the rank,
    /// clamped to the exact [min, max] the histogram tracked. Power-of-two
    /// bounds cap the relative error at 2x; the observed extremes pin the
    /// tails (p0 == min, p100 == max exactly). 0 when empty.
    double percentile(double p) const;
  };

  void observe(double v);
  Snapshot snapshot() const;

 private:
  mutable std::mutex mu_;
  Snapshot s_;
};

/// Named registry. Lookup interns the key on first use; the returned
/// reference stays valid for the registry's lifetime, so hot sites resolve
/// the key once and then touch only the counter.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& key);
  Gauge& gauge(const std::string& key);
  Histogram& histogram(const std::string& key);

  /// Snapshot reads; 0 when the key was never registered.
  std::int64_t counter_value(const std::string& key) const;
  double gauge_value(const std::string& key) const;

  /// {"counters": {...}, "gauges": {...}, "histograms": {...}} with keys
  /// in sorted order (stable diffs, schema-checkable).
  std::string to_json() const;

  /// `kind,key,value` rows (histograms flatten to count/sum/min/max plus
  /// interpolated p50/p90/p99).
  std::string to_csv() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Process-global registry used by `mhca_sim run --metrics` and tests.
/// Null (the default) means metrics are off; producers must null-check.
/// Not owned — the caller keeps the registry alive until set_metrics(nullptr).
void set_metrics(MetricsRegistry* reg);
MetricsRegistry* metrics();

}  // namespace mhca::obs
