#pragma once

#include <cstdint>
#include <string>
#include <string_view>

// Tiny JSON emission helpers shared by the metrics snapshot, the trace
// recorder and the CLI `--json` output. Emission only — parsing (needed by
// the validators) lives in obs/validate.h.

namespace mhca::obs {

/// Appends `s` to `out` as a JSON string literal, quotes included.
void append_json_string(std::string& out, std::string_view s);

/// `s` as a JSON string literal (quotes included).
std::string json_quote(std::string_view s);

/// Shortest-ish decimal form that round-trips a double through JSON.
/// Integral values (within int64 range) are printed without a fraction.
std::string json_number(double v);

std::string json_number(std::int64_t v);

/// 64-bit hashes must never enter JSON as numbers — doubles lose precision
/// above 2^53. This renders them the way the CLI always has: "0x%016llx".
std::string json_hex64(std::uint64_t v);

}  // namespace mhca::obs
