// The strawman the paper's introduction argues against: treat every feasible
// strategy (independent set of H) as one arm of a classic UCB1 bandit.
// Time, space and regret all scale with the number of strategies — up to
// O(M^N) — versus O(N·M) for the factored formulation. Usable only on tiny
// networks; `bench_naive_exponential` measures the blow-up.
#pragma once

#include <cstdint>
#include <vector>

#include "bandit/estimates.h"

namespace mhca {

class NaiveStrategyUcb {
 public:
  /// `strategies`: the enumerated feasible strategies (vertex sets of H).
  explicit NaiveStrategyUcb(std::vector<std::vector<int>> strategies);

  int num_arms() const { return est_.num_arms(); }

  /// UCB1 arm choice at round t (unplayed arms first, by index order).
  int select(std::int64_t t) const;

  /// Record the strategy's total observed throughput.
  void observe(int arm, double total_reward) { est_.observe(arm, total_reward); }

  const std::vector<int>& strategy(int arm) const {
    return strategies_[static_cast<std::size_t>(arm)];
  }

  /// Approximate resident memory of the learning state, for the
  /// complexity-comparison benchmark.
  std::size_t memory_bytes() const;

 private:
  std::vector<std::vector<int>> strategies_;
  ArmEstimates est_;
};

}  // namespace mhca
