#include "bandit/naive_ucb.h"

#include <cmath>

#include "util/assert.h"

namespace mhca {

NaiveStrategyUcb::NaiveStrategyUcb(std::vector<std::vector<int>> strategies)
    : strategies_(std::move(strategies)),
      est_(static_cast<int>(strategies_.size())) {
  MHCA_ASSERT(!strategies_.empty(), "no strategies to choose from");
}

int NaiveStrategyUcb::select(std::int64_t t) const {
  MHCA_ASSERT(t >= 1, "rounds are 1-based");
  int best = -1;
  double best_idx = 0.0;
  for (int a = 0; a < num_arms(); ++a) {
    const std::int64_t m = est_.count(a);
    double idx;
    if (m == 0) {
      idx = 1e18 - static_cast<double>(a);  // explore unplayed arms in order
    } else {
      // Rewards here are strategy sums (not in [0,1]); UCB1 with a scale
      // proportional to the strategy length keeps the bonus meaningful.
      const double scale = static_cast<double>(strategies_[static_cast<std::size_t>(a)].size());
      idx = est_.mean(a) +
            std::max(scale, 1.0) * std::sqrt(2.0 * std::log(static_cast<double>(t)) /
                                             static_cast<double>(m));
    }
    if (best < 0 || idx > best_idx) {
      best = a;
      best_idx = idx;
    }
  }
  return best;
}

std::size_t NaiveStrategyUcb::memory_bytes() const {
  std::size_t bytes = 0;
  for (const auto& s : strategies_) bytes += s.size() * sizeof(int);
  bytes += static_cast<std::size_t>(est_.num_arms()) *
           (sizeof(double) + sizeof(std::int64_t));
  return bytes;
}

}  // namespace mhca
