#include "bandit/thompson.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/assert.h"
#include "util/hash.h"

namespace mhca {

ThompsonIndexPolicy::ThompsonIndexPolicy(std::uint64_t seed) : seed_(seed) {}

double ThompsonIndexPolicy::index_from(double mean, std::int64_t count, int k,
                                       std::int64_t t, int num_arms) const {
  MHCA_ASSERT(t >= 1, "rounds are 1-based");
  if (count == 0) return unplayed_index(k, num_arms);
  const std::uint64_t h = hash_combine(
      seed_, hash_combine(static_cast<std::uint64_t>(k),
                          static_cast<std::uint64_t>(t)));
  const double u1 = std::max(hash_to_unit(splitmix64(h)), 1e-12);
  const double u2 = hash_to_unit(splitmix64(h ^ 0x1234abcd5678ef90ULL));
  const double z = std::sqrt(-2.0 * std::log(u1)) *
                   std::cos(2.0 * std::numbers::pi * u2);
  const double sigma =
      std::sqrt(0.25 / (static_cast<double>(count) + 1.0));
  return mean + sigma * z;
}

}  // namespace mhca
