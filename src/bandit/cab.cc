#include "bandit/cab.h"

#include <algorithm>
#include <cmath>

#include "util/assert.h"

namespace mhca {

double CabIndexPolicy::index_from(double mean, std::int64_t count, int k,
                                  std::int64_t t, int num_arms) const {
  MHCA_ASSERT(t >= 1, "rounds are 1-based");
  if (count == 0) return unplayed_index(k, num_arms);
  const double kd = static_cast<double>(num_arms);
  const double md = static_cast<double>(count);
  // ln(t^{2/3} / (K m)) = (2/3) ln t − ln(K m)
  const double inner =
      (2.0 / 3.0) * std::log(static_cast<double>(t)) - std::log(kd * md);
  return mean + std::sqrt(std::max(inner, 0.0) / md);
}

}  // namespace mhca
