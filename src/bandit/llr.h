// LLR — "Learning with Linear Rewards" (Gai, Krishnamachari & Jain,
// IEEE/ACM ToN 2012), the baseline the paper compares against (Figs. 7, 8):
//
//   index_k(t) = µ̃_k(t) + sqrt( (L+1) · ln t / m_k )
//
// L is the maximum strategy length (here: N, every node could transmit).
// Its regret bound is O(log n) but scales with 1/Δ_min and the bonus decays
// slowly, which is why its *estimated* throughput stays inflated relative
// to actual throughput in Fig. 8.
#pragma once

#include "bandit/policy.h"

namespace mhca {

class LlrIndexPolicy : public IndexPolicy {
 public:
  explicit LlrIndexPolicy(int max_strategy_len);

  std::string name() const override { return "LLR"; }
  double index_from(double mean, std::int64_t count, int k, std::int64_t t,
                    int num_arms) const override;

  int max_strategy_len() const { return max_strategy_len_; }

 private:
  int max_strategy_len_;
};

}  // namespace mhca
