#include "bandit/simple_policies.h"

#include <cmath>

#include "util/assert.h"

namespace mhca {

double Ucb1IndexPolicy::index_from(double mean, std::int64_t count, int k,
                                   std::int64_t t, int num_arms) const {
  MHCA_ASSERT(t >= 1, "rounds are 1-based");
  if (count == 0) return unplayed_index(k, num_arms);
  return mean + std::sqrt(2.0 * std::log(static_cast<double>(t)) /
                          static_cast<double>(count));
}

double GreedyIndexPolicy::index_from(double mean, std::int64_t count, int k,
                                     std::int64_t /*t*/, int num_arms) const {
  if (count == 0) return unplayed_index(k, num_arms);
  return mean;
}

EpsilonGreedyIndexPolicy::EpsilonGreedyIndexPolicy(double epsilon)
    : epsilon_(epsilon) {
  MHCA_ASSERT(epsilon >= 0.0 && epsilon <= 1.0, "epsilon out of range");
}

double EpsilonGreedyIndexPolicy::index_from(double mean, std::int64_t count,
                                            int k, std::int64_t /*t*/,
                                            int num_arms) const {
  if (count == 0) return unplayed_index(k, num_arms);
  return mean;
}

bool EpsilonGreedyIndexPolicy::randomize_round(std::int64_t /*t*/,
                                               Rng& rng) const {
  return rng.bernoulli(epsilon_);
}

}  // namespace mhca
