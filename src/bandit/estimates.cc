#include "bandit/estimates.h"

#include "util/assert.h"

namespace mhca {

ArmEstimates::ArmEstimates(int num_arms)
    : mean_(static_cast<std::size_t>(num_arms), 0.0),
      count_(static_cast<std::size_t>(num_arms), 0) {
  MHCA_ASSERT(num_arms >= 1, "need at least one arm");
}

void ArmEstimates::observe(int k, double reward) {
  MHCA_ASSERT(k >= 0 && k < num_arms(), "arm out of range");
  auto ki = static_cast<std::size_t>(k);
  const double m_old = static_cast<double>(count_[ki]);
  count_[ki] += 1;
  mean_[ki] = (mean_[ki] * m_old + reward) / static_cast<double>(count_[ki]);
  ++total_plays_;
}

double ArmEstimates::mean(int k) const {
  MHCA_ASSERT(k >= 0 && k < num_arms(), "arm out of range");
  return mean_[static_cast<std::size_t>(k)];
}

std::int64_t ArmEstimates::count(int k) const {
  MHCA_ASSERT(k >= 0 && k < num_arms(), "arm out of range");
  return count_[static_cast<std::size_t>(k)];
}

}  // namespace mhca
