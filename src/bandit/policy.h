// Learning-policy interface: per-arm optimistic indices.
//
// A policy maps the sufficient statistics (µ̃_k, m_k) and the round number t
// to an exploration-adjusted weight per arm; the MWIS oracle then selects
// the strategy maximizing the summed index (paper eq. 4). Different papers'
// policies differ only in the index formula, so comparisons (CAB vs LLR vs
// UCB1) share the entire decision and transmission machinery.
//
// The index is a pure function of (µ̃_k, m_k, k, t, K) — `index_from` — so a
// distributed vertex can evaluate it from locally stored statistics without
// any global state; `index` is a convenience over a global ArmEstimates.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "bandit/estimates.h"
#include "util/rng.h"

namespace mhca {

class IndexPolicy {
 public:
  virtual ~IndexPolicy() = default;

  virtual std::string name() const = 0;

  /// Index of an arm with observed mean `mean` played `count` times, at
  /// (1-based) round t, among `num_arms` arms total. Must return
  /// unplayed_index(k, num_arms) when count = 0.
  virtual double index_from(double mean, std::int64_t count, int k,
                            std::int64_t t, int num_arms) const = 0;

  /// Index of arm k given global estimates.
  double index(const ArmEstimates& est, int k, std::int64_t t) const {
    return index_from(est.mean(k), est.count(k), k, t, est.num_arms());
  }

  /// Fill `out` (resized to K) with all arms' indices.
  void compute_indices(const ArmEstimates& est, std::int64_t t,
                       std::vector<double>& out) const;

  /// ε-greedy hook: return true to replace this round's indices with
  /// uniform random weights. Default: never.
  virtual bool randomize_round(std::int64_t t, Rng& rng) const;

  /// Deterministic optimistic value for never-played arms: strictly above
  /// any reachable reward (rewards live in [0,1]), distinct per arm so ties
  /// are broken identically in every runtime.
  static double unplayed_index(int k, int num_arms);
};

/// Available learning policies.
enum class PolicyKind {
  kCab,        ///< Paper's adopted policy (eq. 3; Zhou & Li 2013).
  kLlr,        ///< LLR, Gai–Krishnamachari–Jain 2012 (paper's baseline).
  kUcb1,       ///< Classic UCB1 bonus per arm (extension).
  kGreedy,     ///< Exploit-only (no bonus) — ablation baseline.
  kEpsGreedy,  ///< Random strategy with probability ε — ablation baseline.
  kThompson,   ///< Derandomized Thompson sampling (extension).
};

std::string to_string(PolicyKind kind);

struct PolicyParams {
  int llr_max_strategy_len = 1;  ///< L in the LLR bonus; use N.
  double epsilon = 0.1;          ///< ε for kEpsGreedy.
  std::uint64_t thompson_seed = 0x7503a11ULL;  ///< kThompson derandomizer.
};

std::unique_ptr<IndexPolicy> make_policy(PolicyKind kind,
                                         const PolicyParams& params = {});

}  // namespace mhca
