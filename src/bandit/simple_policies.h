// Ablation baselines: UCB1, pure exploitation, and ε-greedy.
#pragma once

#include "bandit/policy.h"

namespace mhca {

/// Classic per-arm UCB1 bonus sqrt(2 ln t / m) applied in the combinatorial
/// setting (extension; not in the paper).
class Ucb1IndexPolicy : public IndexPolicy {
 public:
  std::string name() const override { return "UCB1"; }
  double index_from(double mean, std::int64_t count, int k, std::int64_t t,
                    int num_arms) const override;
};

/// Exploit-only: index = µ̃ (unplayed arms still explored first).
class GreedyIndexPolicy : public IndexPolicy {
 public:
  std::string name() const override { return "greedy-exploit"; }
  double index_from(double mean, std::int64_t count, int k, std::int64_t t,
                    int num_arms) const override;
};

/// With probability ε the round's weights are replaced by uniform noise
/// (random feasible strategy); otherwise exploit µ̃.
class EpsilonGreedyIndexPolicy : public IndexPolicy {
 public:
  explicit EpsilonGreedyIndexPolicy(double epsilon);

  std::string name() const override { return "eps-greedy"; }
  double index_from(double mean, std::int64_t count, int k, std::int64_t t,
                    int num_arms) const override;
  bool randomize_round(std::int64_t t, Rng& rng) const override;

  double epsilon() const { return epsilon_; }

 private:
  double epsilon_;
};

}  // namespace mhca
