#include "bandit/llr.h"

#include <cmath>

#include "util/assert.h"

namespace mhca {

LlrIndexPolicy::LlrIndexPolicy(int max_strategy_len)
    : max_strategy_len_(max_strategy_len) {
  MHCA_ASSERT(max_strategy_len >= 1, "L must be at least 1");
}

double LlrIndexPolicy::index_from(double mean, std::int64_t count, int k,
                                  std::int64_t t, int num_arms) const {
  MHCA_ASSERT(t >= 1, "rounds are 1-based");
  if (count == 0) return unplayed_index(k, num_arms);
  return mean + std::sqrt(static_cast<double>(max_strategy_len_ + 1) *
                          std::log(static_cast<double>(t)) /
                          static_cast<double>(count));
}

}  // namespace mhca
