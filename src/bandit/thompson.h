// Thompson sampling adapted to the combinatorial index interface
// (extension; not in the paper).
//
// Classic Thompson sampling draws a random index from each arm's posterior.
// To stay compatible with the pure-function index interface — and hence
// with the distributed runtime, where every vertex must compute the same
// value from the same statistics — the "draw" is derandomized: the
// posterior sample for arm k at round t is generated from a hash of
// (seed, k, t). Same inputs ⇒ same index on every vertex, yet across
// rounds the sequence behaves like fresh posterior samples.
//
// Posterior model: Gaussian with mean µ̃_k and standard deviation
// sqrt(1/4 / (m_k + 1)) (the 1/4 variance bound of [0,1] rewards).
#pragma once

#include "bandit/policy.h"

namespace mhca {

class ThompsonIndexPolicy : public IndexPolicy {
 public:
  explicit ThompsonIndexPolicy(std::uint64_t seed = 0x7503a11ULL);

  std::string name() const override { return "Thompson"; }
  double index_from(double mean, std::int64_t count, int k, std::int64_t t,
                    int num_arms) const override;

 private:
  std::uint64_t seed_;
};

}  // namespace mhca
