#include "bandit/policy.h"

#include "bandit/cab.h"
#include "bandit/llr.h"
#include "bandit/simple_policies.h"
#include "bandit/thompson.h"
#include "util/assert.h"

namespace mhca {

void IndexPolicy::compute_indices(const ArmEstimates& est, std::int64_t t,
                                  std::vector<double>& out) const {
  const int k_arms = est.num_arms();
  out.resize(static_cast<std::size_t>(k_arms));
  for (int k = 0; k < k_arms; ++k)
    out[static_cast<std::size_t>(k)] = index(est, k, t);
}

bool IndexPolicy::randomize_round(std::int64_t /*t*/, Rng& /*rng*/) const {
  return false;
}

double IndexPolicy::unplayed_index(int k, int num_arms) {
  // > 1 (the reward ceiling) so unexplored arms win against any exploited
  // mean; tiny per-arm offset makes ties deterministic across runtimes.
  return 2.0 + 1e-9 * static_cast<double>(num_arms - k);
}

std::string to_string(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kCab: return "CAB";
    case PolicyKind::kLlr: return "LLR";
    case PolicyKind::kUcb1: return "UCB1";
    case PolicyKind::kGreedy: return "greedy";
    case PolicyKind::kEpsGreedy: return "eps-greedy";
    case PolicyKind::kThompson: return "Thompson";
  }
  return "?";
}

std::unique_ptr<IndexPolicy> make_policy(PolicyKind kind,
                                         const PolicyParams& params) {
  switch (kind) {
    case PolicyKind::kCab:
      return std::make_unique<CabIndexPolicy>();
    case PolicyKind::kLlr:
      return std::make_unique<LlrIndexPolicy>(params.llr_max_strategy_len);
    case PolicyKind::kUcb1:
      return std::make_unique<Ucb1IndexPolicy>();
    case PolicyKind::kGreedy:
      return std::make_unique<GreedyIndexPolicy>();
    case PolicyKind::kEpsGreedy:
      return std::make_unique<EpsilonGreedyIndexPolicy>(params.epsilon);
    case PolicyKind::kThompson:
      return std::make_unique<ThompsonIndexPolicy>(params.thompson_seed);
  }
  MHCA_ASSERT(false, "unknown policy kind");
}

}  // namespace mhca
