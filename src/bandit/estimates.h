// Per-arm sufficient statistics (µ̃_k, m_k) — paper eqs. (5) and (6).
//
// The whole point of the paper's formulation is that learning state is
// linear in K = N·M arms (two 1×K vectors), not in the O(M^N) strategy
// space. In the distributed runtime every virtual vertex owns exactly its
// own (µ̃, m) entry.
#pragma once

#include <cstdint>
#include <vector>

namespace mhca {

class ArmEstimates {
 public:
  explicit ArmEstimates(int num_arms);

  int num_arms() const { return static_cast<int>(mean_.size()); }

  /// Incorporate one observation of arm k (running-mean update, eq. 5-6).
  void observe(int k, double reward);

  /// Observed mean µ̃_k (0 before the first play).
  double mean(int k) const;

  /// Number of times arm k has been played, m_k.
  std::int64_t count(int k) const;

  /// Total plays across all arms.
  std::int64_t total_plays() const { return total_plays_; }

  const std::vector<double>& means() const { return mean_; }
  const std::vector<std::int64_t>& counts() const { return count_; }

 private:
  std::vector<double> mean_;
  std::vector<std::int64_t> count_;
  std::int64_t total_plays_ = 0;
};

}  // namespace mhca
