// The paper's adopted learning index (eq. 3), from Zhou & Li,
// "Multi-armed bandits with combinatorial strategies under stochastic
// bandits" (arXiv:1307.5438):
//
//   w_k(t+1) = µ̃_k(t) + sqrt( max( ln( t^{2/3} / (K·m_k) ), 0 ) / m_k )
//
// Distinctive property (Theorem 1): with any β-approximate MWIS oracle the
// β-regret bound is O(n^{5/6}) and — unlike LLR's bound — does not involve
// 1/Δ_min, so it stays meaningful when strategies have nearly equal means.
// The max(·, 0) clips exploration to zero for well-sampled arms
// (m_k ≥ t^{2/3}/K), giving the "almost optimal" exploitation phase.
#pragma once

#include "bandit/policy.h"

namespace mhca {

class CabIndexPolicy : public IndexPolicy {
 public:
  std::string name() const override { return "CAB"; }
  double index_from(double mean, std::int64_t count, int k, std::int64_t t,
                    int num_arms) const override;
};

}  // namespace mhca
