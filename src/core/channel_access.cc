#include "core/channel_access.h"

#include "mwis/branch_and_bound.h"
#include "mwis/greedy.h"
#include "mwis/robust_ptas.h"
#include "scenario/scenario.h"
#include "sim/simulator.h"
#include "util/assert.h"

namespace mhca {
namespace {

// ChannelAccessConfig is a compatibility shim over the declarative Scenario
// API (src/scenario): the facade's knobs are one-to-one with a SolverSpec +
// RunSpec, and batch runs execute the scenario-derived SimulationConfig over
// the scheme's own graph/policy. The field-level mapping is tabulated in
// src/scenario/README.md.
scenario::SolverSpec solver_spec(const ChannelAccessConfig& cfg) {
  scenario::SolverSpec spec;
  spec.kind = cfg.solver;
  spec.r = cfg.r;
  spec.D = cfg.D;
  spec.local_solver = cfg.local_solver;
  spec.node_cap = cfg.bnb_node_cap;
  spec.parallelism = cfg.local_solve_parallelism;
  spec.memoized_covers = cfg.use_memoized_covers;
  spec.epsilon = cfg.ptas_epsilon;
  return spec;
}

// The facade keeps its own graph, model, and policy; only the solver/run/
// timing knobs flow through the scenario layer (SolverSpec is the single
// source of truth the Simulator config is derived from).
SimulationConfig sim_config(const ChannelAccessConfig& cfg,
                            std::int64_t slots) {
  scenario::Scenario s;
  s.solver = solver_spec(cfg);
  s.run.slots = slots;
  s.run.update_period = cfg.update_period;
  s.run.seed = cfg.seed;
  s.run.count_messages = cfg.count_messages;
  s.run.series_stride = cfg.series_stride;
  s.timing = cfg.timing;
  return scenario::to_simulation_config(s);
}

std::unique_ptr<IndexPolicy> build_policy(const ChannelAccessConfig& cfg,
                                          int num_nodes) {
  PolicyParams params = cfg.policy_params;
  if (cfg.policy == PolicyKind::kLlr && params.llr_max_strategy_len <= 1)
    params.llr_max_strategy_len = num_nodes;
  return make_policy(cfg.policy, params);
}

}  // namespace

ChannelAccessScheme::ChannelAccessScheme(ConflictGraph network,
                                         ChannelAccessConfig cfg)
    : network_(std::move(network)),
      cfg_(cfg),
      ecg_(network_, cfg.num_channels),
      policy_(build_policy(cfg, network_.num_nodes())),
      est_(ecg_.num_vertices()),
      engine_(ecg_.graph(),
              solver_spec(cfg).engine_config(cfg.count_messages)),
      rng_(cfg.seed) {
  switch (cfg_.solver) {
    case SolverKind::kDistributedPtas:
      break;
    case SolverKind::kCentralizedPtas:
      central_ = std::make_unique<RobustPtasSolver>(cfg_.ptas_epsilon, 4,
                                                    cfg_.bnb_node_cap);
      break;
    case SolverKind::kGreedy:
      central_ = std::make_unique<GreedyMwisSolver>();
      break;
    case SolverKind::kExact:
      central_ = std::make_unique<BranchAndBoundMwisSolver>(cfg_.bnb_node_cap);
      break;
  }
  current_.channel_of_node.assign(
      static_cast<std::size_t>(network_.num_nodes()), Strategy::kNoChannel);
}

const Strategy& ChannelAccessScheme::decide() {
  ++t_;
  if (policy_->randomize_round(t_, rng_)) {
    weights_.resize(static_cast<std::size_t>(ecg_.num_vertices()));
    for (auto& w : weights_) w = rng_.uniform();
  } else {
    policy_->compute_indices(est_, t_, weights_);
  }
  if (cfg_.solver == SolverKind::kDistributedPtas) {
    current_vertices_ = engine_.run(weights_).winners;
  } else {
    current_vertices_ = central_->solve_all(ecg_.graph(), weights_).vertices;
  }
  current_ = ecg_.to_strategy(current_vertices_);
  return current_;
}

void ChannelAccessScheme::report(int node, double reward) {
  MHCA_ASSERT(node >= 0 && node < network_.num_nodes(), "node out of range");
  MHCA_ASSERT(t_ >= 1, "report before the first decide()");
  const int chan = current_.channel_of_node[static_cast<std::size_t>(node)];
  MHCA_ASSERT(chan != Strategy::kNoChannel,
              "node did not transmit in the current strategy");
  est_.observe(ecg_.vertex_of(node, chan), reward);
}

SimulationResult ChannelAccessScheme::run(const ChannelModel& model,
                                          std::int64_t slots) const {
  Simulator sim(ecg_, model, *policy_, sim_config(cfg_, slots));
  return sim.run();
}

}  // namespace mhca
