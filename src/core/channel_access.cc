#include "core/channel_access.h"

#include "mwis/branch_and_bound.h"
#include "mwis/greedy.h"
#include "mwis/robust_ptas.h"
#include "util/assert.h"

namespace mhca {
namespace {

DistributedPtasConfig engine_config(const ChannelAccessConfig& cfg) {
  DistributedPtasConfig d;
  d.r = cfg.r;
  d.max_mini_rounds = cfg.D;
  d.local_solver = cfg.local_solver;
  d.bnb_node_cap = cfg.bnb_node_cap;
  d.count_messages = cfg.count_messages;
  return d;
}

std::unique_ptr<IndexPolicy> build_policy(const ChannelAccessConfig& cfg,
                                          int num_nodes) {
  PolicyParams params = cfg.policy_params;
  if (cfg.policy == PolicyKind::kLlr && params.llr_max_strategy_len <= 1)
    params.llr_max_strategy_len = num_nodes;
  return make_policy(cfg.policy, params);
}

}  // namespace

ChannelAccessScheme::ChannelAccessScheme(ConflictGraph network,
                                         ChannelAccessConfig cfg)
    : network_(std::move(network)),
      cfg_(cfg),
      ecg_(network_, cfg.num_channels),
      policy_(build_policy(cfg, network_.num_nodes())),
      est_(ecg_.num_vertices()),
      engine_(ecg_.graph(), engine_config(cfg)),
      rng_(cfg.seed) {
  switch (cfg_.solver) {
    case SolverKind::kDistributedPtas:
      break;
    case SolverKind::kCentralizedPtas:
      central_ = std::make_unique<RobustPtasSolver>(cfg_.ptas_epsilon, 4,
                                                    cfg_.bnb_node_cap);
      break;
    case SolverKind::kGreedy:
      central_ = std::make_unique<GreedyMwisSolver>();
      break;
    case SolverKind::kExact:
      central_ = std::make_unique<BranchAndBoundMwisSolver>(cfg_.bnb_node_cap);
      break;
  }
  current_.channel_of_node.assign(
      static_cast<std::size_t>(network_.num_nodes()), Strategy::kNoChannel);
}

const Strategy& ChannelAccessScheme::decide() {
  ++t_;
  if (policy_->randomize_round(t_, rng_)) {
    weights_.resize(static_cast<std::size_t>(ecg_.num_vertices()));
    for (auto& w : weights_) w = rng_.uniform();
  } else {
    policy_->compute_indices(est_, t_, weights_);
  }
  if (cfg_.solver == SolverKind::kDistributedPtas) {
    current_vertices_ = engine_.run(weights_).winners;
  } else {
    current_vertices_ = central_->solve_all(ecg_.graph(), weights_).vertices;
  }
  current_ = ecg_.to_strategy(current_vertices_);
  return current_;
}

void ChannelAccessScheme::report(int node, double reward) {
  MHCA_ASSERT(node >= 0 && node < network_.num_nodes(), "node out of range");
  MHCA_ASSERT(t_ >= 1, "report before the first decide()");
  const int chan = current_.channel_of_node[static_cast<std::size_t>(node)];
  MHCA_ASSERT(chan != Strategy::kNoChannel,
              "node did not transmit in the current strategy");
  est_.observe(ecg_.vertex_of(node, chan), reward);
}

SimulationConfig ChannelAccessScheme::to_sim_config(std::int64_t slots) const {
  SimulationConfig s;
  s.slots = slots;
  s.update_period = cfg_.update_period;
  s.solver = cfg_.solver;
  s.r = cfg_.r;
  s.D = cfg_.D;
  s.local_solver = cfg_.local_solver;
  s.bnb_node_cap = cfg_.bnb_node_cap;
  s.ptas_epsilon = cfg_.ptas_epsilon;
  s.timing = cfg_.timing;
  s.seed = cfg_.seed;
  s.count_messages = cfg_.count_messages;
  s.series_stride = cfg_.series_stride;
  return s;
}

SimulationResult ChannelAccessScheme::run(const ChannelModel& model,
                                          std::int64_t slots) const {
  Simulator sim(ecg_, model, *policy_, to_sim_config(slots));
  return sim.run();
}

}  // namespace mhca
