// Public facade: the paper's channel-access scheme behind one class.
//
// Typical use (see examples/quickstart.cc):
//
//   ConflictGraph net = random_geometric_avg_degree(20, 6.0, rng);
//   ChannelAccessConfig cfg;
//   cfg.num_channels = 8;
//   ChannelAccessScheme scheme(net, cfg);
//
//   // Either drive it step by step against your own radio environment:
//   const Strategy& s = scheme.decide();
//   ... transmit on s.channel_of_node[i] ...
//   scheme.report(i, observed_rate);  // for every node that transmitted
//
//   // Or run the built-in simulator against a channel model:
//   GaussianChannelModel model(20, 8, rng);
//   SimulationResult res = scheme.run(model, 1000);
//
// ChannelAccessConfig is a compatibility shim over the declarative Scenario
// API: batch runs derive their SimulationConfig from a scenario::SolverSpec/
// RunSpec (the single source of truth) while reusing the scheme's own graph
// and policy. New code should describe experiments as a scenario::Scenario
// directly (see src/scenario/README.md for the old-field -> scenario-key
// migration table).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "bandit/policy.h"
#include "channel/channel_model.h"
#include "graph/conflict_graph.h"
#include "graph/extended_graph.h"
#include "mwis/distributed_ptas.h"
#include "mwis/mwis.h"
#include "sim/config.h"
#include "sim/simulator.h"

namespace mhca {

struct ChannelAccessConfig {
  int num_channels = 8;

  PolicyKind policy = PolicyKind::kCab;
  PolicyParams policy_params{};  ///< LLR's L defaults to N if unset.

  SolverKind solver = SolverKind::kDistributedPtas;
  int r = 2;
  int D = 4;
  LocalSolverKind local_solver = LocalSolverKind::kExact;
  std::int64_t bnb_node_cap = kDefaultBnbNodeCap;
  double ptas_epsilon = 1.0;
  /// Threads for per-leader local solves within one decision (0 = one per
  /// hardware thread, 1 = inline). Deterministic at any setting. Defaults
  /// to inline like scenario::SolverSpec (static_assert-pinned); raise it
  /// for big single-scheme deployments on idle cores.
  int local_solve_parallelism = 1;
  /// Reuse memoized per-ball clique covers (see src/mwis/README.md).
  bool use_memoized_covers = false;

  RoundTiming timing{};
  int update_period = 1;
  std::uint64_t seed = 1;
  bool count_messages = false;
  int series_stride = 1;
};

class ChannelAccessScheme {
 public:
  ChannelAccessScheme(ConflictGraph network, ChannelAccessConfig cfg);

  const ExtendedConflictGraph& extended_graph() const { return ecg_; }
  const ConflictGraph& network() const { return network_; }
  const IndexPolicy& policy() const { return *policy_; }
  const ArmEstimates& estimates() const { return est_; }
  std::int64_t current_round() const { return t_; }

  /// Advance one round and compute the strategy from current estimates
  /// (Algorithm 2's strategy-decision part).
  const Strategy& decide();

  /// Report the data rate `node` observed on its current channel
  /// (normalized to [0,1]); updates the node's arm statistics (eqs. 5-6).
  void report(int node, double reward);

  /// The current strategy as vertices of H.
  const std::vector<int>& current_vertices() const {
    return current_vertices_;
  }

  /// Batch simulation against a channel model (fresh learning state,
  /// independent of the step API's state).
  SimulationResult run(const ChannelModel& model, std::int64_t slots) const;

 private:
  ConflictGraph network_;
  ChannelAccessConfig cfg_;
  ExtendedConflictGraph ecg_;
  std::unique_ptr<IndexPolicy> policy_;
  ArmEstimates est_;
  DistributedRobustPtas engine_;
  std::unique_ptr<MwisSolver> central_;
  Rng rng_;

  std::int64_t t_ = 0;
  std::vector<double> weights_;
  std::vector<int> current_vertices_;
  Strategy current_;
};

}  // namespace mhca
