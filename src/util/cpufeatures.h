#ifndef MHCA_UTIL_CPUFEATURES_H_
#define MHCA_UTIL_CPUFEATURES_H_

// Runtime SIMD dispatch for the election hot loops (src/mwis) and the
// winner-validation neighbor-mark check (src/graph). The contract:
//
//   - The scalar path is ALWAYS compiled and always correct; SIMD levels
//     are pure block filters over the same data, so results are
//     byte-identical at every level (fuzz-asserted by
//     tests/tiered_simd_differential_test.cc).
//   - The effective level is min(requested, what the CPU supports).
//     Requests come from the environment at first use —
//     `MHCA_SIMD=scalar|avx2|avx512` or the blunt `MHCA_FORCE_SCALAR=1` —
//     or programmatically via set_simd_level() (tests switch levels
//     in-process; the setter clamps to CPU capability too).
//   - Detection uses __builtin_cpu_supports and is cached in one atomic;
//     a query is one relaxed load on the hot path.

namespace mhca::util {

enum class SimdLevel : int {
  kScalar = 0,
  kAvx2 = 1,
  kAvx512 = 2,  // AVX-512F + AVX-512VL gathers/compares
};

// Best level this CPU can run (independent of any override).
SimdLevel max_simd_level();

// Effective dispatch level: min(env request, max_simd_level()). Cached
// after the first call; hot-path cost is one relaxed atomic load.
SimdLevel simd_level();

// Override the effective level (clamped to max_simd_level()). Intended
// for tests that sweep dispatch levels in one process.
void set_simd_level(SimdLevel level);

const char* simd_level_name(SimdLevel level);

}  // namespace mhca::util

#endif  // MHCA_UTIL_CPUFEATURES_H_
