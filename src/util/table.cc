#include "util/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>

namespace mhca {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size(), 0);
  auto widen = [&](const std::vector<std::string>& r) {
    for (std::size_t i = 0; i < r.size() && i < widths.size(); ++i)
      widths[i] = std::max(widths[i], r[i].size());
  };
  widen(header_);
  for (const auto& r : rows_) widen(r);

  auto emit = [&](const std::vector<std::string>& r) {
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < r.size() ? r[i] : std::string();
      os << std::left << std::setw(static_cast<int>(widths[i]) + 2) << cell;
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& r : rows_) emit(r);
}

std::string fixed(double v, int digits) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(digits) << v;
  return os.str();
}

}  // namespace mhca
