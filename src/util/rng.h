// Seedable random number generator with independent-stream splitting.
#pragma once

#include <cstdint>
#include <random>

namespace mhca {

/// Thin wrapper around std::mt19937_64 with convenience samplers.
///
/// All stochastic components of the library take an explicit Rng (or a seed)
/// so that every experiment is reproducible from a single 64-bit seed.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] (inclusive).
  int uniform_int(int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(engine_);
  }

  /// Normal sample.
  double gaussian(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Bernoulli sample.
  bool bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Derive an independent child stream (deterministic given parent state).
  Rng split();

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace mhca
