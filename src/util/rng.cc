#include "util/rng.h"

#include "util/hash.h"

namespace mhca {

Rng Rng::split() {
  const std::uint64_t a = engine_();
  const std::uint64_t b = engine_();
  return Rng(hash_combine(a, b));
}

}  // namespace mhca
