#include "util/series.h"

#include <algorithm>

#include "util/assert.h"

namespace mhca {

std::vector<double> cumulative_average(const std::vector<double>& xs) {
  std::vector<double> out(xs.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sum += xs[i];
    out[i] = sum / static_cast<double>(i + 1);
  }
  return out;
}

std::vector<double> cumulative_sum(const std::vector<double>& xs) {
  std::vector<double> out(xs.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sum += xs[i];
    out[i] = sum;
  }
  return out;
}

std::vector<double> moving_average(const std::vector<double>& xs,
                                   std::size_t window) {
  MHCA_ASSERT(window >= 1, "window must be positive");
  std::vector<double> out(xs.size());
  const std::ptrdiff_t half = static_cast<std::ptrdiff_t>(window) / 2;
  const std::ptrdiff_t n = static_cast<std::ptrdiff_t>(xs.size());
  for (std::ptrdiff_t i = 0; i < n; ++i) {
    const std::ptrdiff_t lo = std::max<std::ptrdiff_t>(0, i - half);
    const std::ptrdiff_t hi = std::min<std::ptrdiff_t>(n - 1, i + half);
    double sum = 0.0;
    for (std::ptrdiff_t j = lo; j <= hi; ++j) sum += xs[static_cast<std::size_t>(j)];
    out[static_cast<std::size_t>(i)] = sum / static_cast<double>(hi - lo + 1);
  }
  return out;
}

std::vector<std::pair<std::size_t, double>> downsample(
    const std::vector<double>& xs, std::size_t points) {
  std::vector<std::pair<std::size_t, double>> out;
  if (xs.empty() || points == 0) return out;
  if (xs.size() <= points) {
    for (std::size_t i = 0; i < xs.size(); ++i) out.emplace_back(i, xs[i]);
    return out;
  }
  const double stride =
      static_cast<double>(xs.size() - 1) / static_cast<double>(points - 1);
  std::size_t prev = static_cast<std::size_t>(-1);
  for (std::size_t p = 0; p < points; ++p) {
    std::size_t idx = static_cast<std::size_t>(stride * static_cast<double>(p) + 0.5);
    idx = std::min(idx, xs.size() - 1);
    if (idx == prev) continue;
    prev = idx;
    out.emplace_back(idx, xs[idx]);
  }
  if (out.back().first != xs.size() - 1) out.emplace_back(xs.size() - 1, xs.back());
  return out;
}

}  // namespace mhca
