// Time-series helpers for experiment reporting.
#pragma once

#include <cstddef>
#include <vector>

namespace mhca {

/// Cumulative-average transform: out[i] = mean(xs[0..i]).
std::vector<double> cumulative_average(const std::vector<double>& xs);

/// Prefix-sum transform: out[i] = sum(xs[0..i]).
std::vector<double> cumulative_sum(const std::vector<double>& xs);

/// Centered-window moving average with the given (odd) window width.
std::vector<double> moving_average(const std::vector<double>& xs,
                                   std::size_t window);

/// Downsample a series to at most `points` evenly spaced samples
/// (always keeps the last element). Returns (index, value) pairs.
std::vector<std::pair<std::size_t, double>> downsample(
    const std::vector<double>& xs, std::size_t points);

}  // namespace mhca
