#include "util/cpufeatures.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace mhca::util {
namespace {

SimdLevel detect_max() {
#if defined(__x86_64__) && defined(__GNUC__)
  if (__builtin_cpu_supports("avx512f") && __builtin_cpu_supports("avx512vl"))
    return SimdLevel::kAvx512;
  if (__builtin_cpu_supports("avx2")) return SimdLevel::kAvx2;
#endif
  return SimdLevel::kScalar;
}

SimdLevel requested_from_env(SimdLevel best) {
  if (const char* f = std::getenv("MHCA_FORCE_SCALAR");
      f != nullptr && f[0] == '1')
    return SimdLevel::kScalar;
  const char* s = std::getenv("MHCA_SIMD");
  if (s == nullptr) return best;
  if (std::strcmp(s, "scalar") == 0) return SimdLevel::kScalar;
  if (std::strcmp(s, "avx2") == 0) return SimdLevel::kAvx2;
  if (std::strcmp(s, "avx512") == 0) return SimdLevel::kAvx512;
  return best;  // unknown value: ignore, keep CPU best
}

// -1 = not yet initialized from CPU + environment.
std::atomic<int> g_level{-1};

}  // namespace

SimdLevel max_simd_level() {
  static const SimdLevel best = detect_max();
  return best;
}

SimdLevel simd_level() {
  int v = g_level.load(std::memory_order_relaxed);
  if (v >= 0) return static_cast<SimdLevel>(v);
  const SimdLevel best = max_simd_level();
  SimdLevel req = requested_from_env(best);
  if (static_cast<int>(req) > static_cast<int>(best)) req = best;
  // Racing first calls compute the same value; the exchange is idempotent.
  g_level.store(static_cast<int>(req), std::memory_order_relaxed);
  return req;
}

void set_simd_level(SimdLevel level) {
  const SimdLevel best = max_simd_level();
  if (static_cast<int>(level) > static_cast<int>(best)) level = best;
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

const char* simd_level_name(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar: return "scalar";
    case SimdLevel::kAvx2: return "avx2";
    case SimdLevel::kAvx512: return "avx512";
  }
  return "unknown";
}

}  // namespace mhca::util
