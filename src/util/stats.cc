#include "util/stats.h"

#include <algorithm>
#include <cmath>

namespace mhca {

void RunningStat::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStat::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

Summary summarize(const std::vector<double>& xs) {
  RunningStat rs;
  for (double x : xs) rs.add(x);
  return Summary{rs.count(), rs.mean(), rs.stddev(), rs.min(), rs.max()};
}

}  // namespace mhca
