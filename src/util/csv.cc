#include "util/csv.h"

namespace mhca {

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : out_(path) {
  std::ostringstream os;
  bool first = true;
  for (const auto& h : header) {
    if (!first) os << ',';
    first = false;
    write_cell(os, h);
  }
  write_line(os.str());
}

CsvWriter::~CsvWriter() = default;

void CsvWriter::write_cell(std::ostringstream& os, const std::string& v) {
  if (v.find_first_of(",\"\n") == std::string::npos) {
    os << v;
    return;
  }
  os << '"';
  for (char c : v) {
    if (c == '"') os << '"';
    os << c;
  }
  os << '"';
}

void CsvWriter::write_line(const std::string& line) {
  if (out_) out_ << line << '\n';
}

}  // namespace mhca
