#pragma once

// Vector kernels for the two election-path hot loops, dispatched at runtime
// by util::simd_level() (cpufeatures.h):
//
//   - simd_skip_below: advance a scan over an index array past full blocks
//     whose gathered 64-bit keys are all unsigned-< a threshold. This is a
//     PURE FILTER — it never decides anything; the caller inspects the
//     stopping block with the exact scalar predicate, so the blocker
//     position returned by the full scan is bit-identical to the scalar
//     loop at every dispatch level.
//   - simd_any_stamp_equal: "does any stamp[arr[i]] equal epoch" over a CSR
//     neighbor row (the winner-validation neighbor-mark check). The result
//     is a bool over an unordered existence test, so vectorizing it cannot
//     change the answer.
//
// The scalar paths are always compiled (and are the only paths on non-x86
// or non-GNU toolchains, where simd_level() reports kScalar). AVX2 gathers
// are 4-wide over u64 keys / 8-wide over u32 stamps; AVX-512 doubles both
// and uses native unsigned mask compares instead of the 2^63 bias trick.

#include <cstddef>
#include <cstdint>

#include "util/cpufeatures.h"

#if defined(__x86_64__) && defined(__GNUC__)
#define MHCA_SIMD_X86 1
#include <immintrin.h>
#endif

namespace mhca::util {

/// Block width of the skip-below kernel at `level` (0 = no vector kernel;
/// the caller falls back to its scalar loop).
inline constexpr std::size_t simd_block_width(SimdLevel level) {
#ifdef MHCA_SIMD_X86
  switch (level) {
    case SimdLevel::kScalar: return 0;
    case SimdLevel::kAvx2: return 4;
    case SimdLevel::kAvx512: return 8;
  }
#else
  (void)level;
#endif
  return 0;
}

#ifdef MHCA_SIMD_X86

/// Advance i (in steps of 4) to the first block of arr[i..i+4) containing a
/// key >= kv, or to the last position where a full block no longer fits.
/// Keys are unsigned; biasing both sides by 2^63 turns the signed 64-bit
/// compare into the unsigned one. kv is a live candidate key, far above 0,
/// so the `- 1` cannot wrap.
__attribute__((target("avx2"))) inline std::size_t avx2_skip_below(
    const std::uint64_t* keys, const int* arr, std::size_t i, std::size_t sz,
    std::uint64_t kv) {
  const __m256i bias =
      _mm256_set1_epi64x(static_cast<long long>(0x8000000000000000ULL));
  const __m256i threshold = _mm256_set1_epi64x(
      static_cast<long long>((kv ^ 0x8000000000000000ULL) - 1));
  for (; i + 4 <= sz; i += 4) {
    const __m128i idx =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(arr + i));
    const __m256i k = _mm256_i32gather_epi64(
        reinterpret_cast<const long long*>(keys), idx, 8);
    const __m256i ge =
        _mm256_cmpgt_epi64(_mm256_xor_si256(k, bias), threshold);
    if (!_mm256_testz_si256(ge, ge)) break;
  }
  return i;
}

/// 8-wide AVX-512 variant; _mm512_cmpge_epu64_mask compares unsigned
/// natively, no bias needed.
__attribute__((target("avx512f"))) inline std::size_t avx512_skip_below(
    const std::uint64_t* keys, const int* arr, std::size_t i, std::size_t sz,
    std::uint64_t kv) {
  const __m512i limit = _mm512_set1_epi64(static_cast<long long>(kv));
  for (; i + 8 <= sz; i += 8) {
    const __m256i idx =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(arr + i));
    // Masked gather with a zeroed pass-through: the plain gather's
    // undefined source register trips -Wmaybe-uninitialized inside the
    // intrinsic header.
    const __m512i k = _mm512_mask_i32gather_epi64(
        _mm512_setzero_si512(), static_cast<__mmask8>(0xff), idx, keys, 8);
    if (_mm512_cmpge_epu64_mask(k, limit) != 0) break;
  }
  return i;
}

__attribute__((target("avx2"))) inline bool avx2_any_stamp_equal(
    const std::uint32_t* stamp, const int* arr, std::size_t sz,
    std::uint32_t epoch) {
  const __m256i e = _mm256_set1_epi32(static_cast<int>(epoch));
  std::size_t i = 0;
  for (; i + 8 <= sz; i += 8) {
    const __m256i idx =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(arr + i));
    const __m256i s = _mm256_i32gather_epi32(
        reinterpret_cast<const int*>(stamp), idx, 4);
    const __m256i eq = _mm256_cmpeq_epi32(s, e);
    if (!_mm256_testz_si256(eq, eq)) return true;
  }
  for (; i < sz; ++i)
    if (stamp[arr[i]] == epoch) return true;
  return false;
}

__attribute__((target("avx512f"))) inline bool avx512_any_stamp_equal(
    const std::uint32_t* stamp, const int* arr, std::size_t sz,
    std::uint32_t epoch) {
  const __m512i e = _mm512_set1_epi32(static_cast<int>(epoch));
  std::size_t i = 0;
  for (; i + 16 <= sz; i += 16) {
    const __m512i idx =
        _mm512_loadu_si512(reinterpret_cast<const void*>(arr + i));
    const __m512i s = _mm512_mask_i32gather_epi32(
        _mm512_setzero_si512(), static_cast<__mmask16>(0xffff), idx, stamp,
        4);
    if (_mm512_cmpeq_epi32_mask(s, e) != 0) return true;
  }
  for (; i < sz; ++i)
    if (stamp[arr[i]] == epoch) return true;
  return false;
}

#endif  // MHCA_SIMD_X86

/// Dispatching front end for the skip-below filter. Only meaningful when
/// simd_block_width(level) != 0; returns i unchanged otherwise.
inline std::size_t simd_skip_below(const std::uint64_t* keys, const int* arr,
                                   std::size_t i, std::size_t sz,
                                   std::uint64_t kv, SimdLevel level) {
#ifdef MHCA_SIMD_X86
  if (level == SimdLevel::kAvx512) return avx512_skip_below(keys, arr, i, sz, kv);
  if (level == SimdLevel::kAvx2) return avx2_skip_below(keys, arr, i, sz, kv);
#else
  (void)keys;
  (void)arr;
  (void)sz;
  (void)kv;
  (void)level;
#endif
  return i;
}

/// True iff stamp[arr[i]] == epoch for some i in [0, sz). Complete at every
/// level (tails run scalar inside the kernels).
inline bool simd_any_stamp_equal(const std::uint32_t* stamp, const int* arr,
                                 std::size_t sz, std::uint32_t epoch,
                                 SimdLevel level) {
#ifdef MHCA_SIMD_X86
  if (level == SimdLevel::kAvx512)
    return avx512_any_stamp_equal(stamp, arr, sz, epoch);
  if (level == SimdLevel::kAvx2)
    return avx2_any_stamp_equal(stamp, arr, sz, epoch);
#endif
  for (std::size_t i = 0; i < sz; ++i)
    if (stamp[arr[i]] == epoch) return true;
  return false;
}

}  // namespace mhca::util
