// Minimal CSV writer used by the benchmark harnesses to dump raw series.
#pragma once

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace mhca {

/// Writes rows of comma-separated values to a file (or any ostream).
///
/// Values are formatted with operator<<; strings containing commas or quotes
/// are quoted per RFC 4180.
class CsvWriter {
 public:
  /// Open `path` for writing and emit the header row.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);
  ~CsvWriter();

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  /// Append one row; the number of cells should match the header.
  template <typename... Ts>
  void row(const Ts&... cells) {
    std::ostringstream os;
    bool first = true;
    (
        [&] {
          if (!first) os << ',';
          first = false;
          write_cell(os, cells);
        }(),
        ...);
    write_line(os.str());
  }

  bool ok() const { return static_cast<bool>(out_); }

 private:
  template <typename T>
  static void write_cell(std::ostringstream& os, const T& v) {
    os << v;
  }
  static void write_cell(std::ostringstream& os, const std::string& v);

  void write_line(const std::string& line);

  std::ofstream out_;
};

}  // namespace mhca
