// Aligned console table printer used by the benchmark binaries to emit
// paper-style rows.
#pragma once

#include <iosfwd>
#include <sstream>
#include <string>
#include <vector>

namespace mhca {

/// Collects rows of string cells and prints them with aligned columns.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Append a row; cells are converted with operator<<.
  template <typename... Ts>
  void row(const Ts&... cells) {
    std::vector<std::string> r;
    r.reserve(sizeof...(cells));
    (r.push_back(to_cell(cells)), ...);
    rows_.push_back(std::move(r));
  }

  /// Render the table (header, rule, rows) to `os`.
  void print(std::ostream& os) const;

 private:
  template <typename T>
  static std::string to_cell(const T& v) {
    std::ostringstream os;
    os << v;
    return os.str();
  }

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with fixed precision (helper for table cells).
std::string fixed(double v, int digits = 2);

}  // namespace mhca
