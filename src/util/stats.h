// Streaming statistics helpers.
#pragma once

#include <cstdint>
#include <vector>

namespace mhca {

/// Welford streaming mean/variance accumulator.
class RunningStat {
 public:
  void add(double x);

  std::int64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  double variance() const;  ///< Sample variance (n-1 denominator).
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return mean_ * static_cast<double>(count_); }

 private:
  std::int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Summary statistics of a finished sample.
struct Summary {
  std::int64_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
};

/// Compute a Summary over a vector of samples.
Summary summarize(const std::vector<double>& xs);

}  // namespace mhca
