// Small deterministic hashing / mixing utilities.
//
// The channel models use these to derive per-(node, channel, slot) random
// values statelessly, so two different runtimes (the lockstep simulator and
// the message-level protocol runtime) observe bit-identical channel
// realizations for the same seed.
#pragma once

#include <cstdint>

namespace mhca {

/// splitmix64 finalizer — a high-quality 64-bit mixing function.
constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Combine two 64-bit values into one well-mixed value.
constexpr std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) {
  return splitmix64(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
}

/// Map a 64-bit hash to a double uniformly distributed in [0, 1).
constexpr double hash_to_unit(std::uint64_t h) {
  return static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
}

}  // namespace mhca
