// Precondition / invariant checking for the mhca library.
//
// MHCA_ASSERT is active in all build types (the library is a research
// artifact; silent corruption is worse than the nanoseconds saved), and
// throws std::logic_error so tests can assert on violations.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace mhca::detail {

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const std::string& msg) {
  std::ostringstream os;
  os << "MHCA_ASSERT failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::logic_error(os.str());
}

}  // namespace mhca::detail

#define MHCA_ASSERT(cond, msg)                                             \
  do {                                                                     \
    if (!(cond)) ::mhca::detail::assert_fail(#cond, __FILE__, __LINE__, (msg)); \
  } while (0)
