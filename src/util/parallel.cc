#include "util/parallel.h"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "util/assert.h"

namespace mhca {

void parallel_run(int jobs, const std::function<void(int)>& job,
                  int parallelism) {
  MHCA_ASSERT(jobs >= 0, "negative job count");
  MHCA_ASSERT(parallelism >= 0, "negative parallelism");
  if (jobs == 0) return;

  int workers = parallelism;
  if (workers == 0) {
    workers = static_cast<int>(std::thread::hardware_concurrency());
    if (workers == 0) workers = 1;
  }
  if (workers > jobs) workers = jobs;

  if (workers <= 1) {
    for (int i = 0; i < jobs; ++i) job(i);
    return;
  }

  std::atomic<int> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr error;
  std::mutex error_mu;
  auto worker = [&] {
    for (;;) {
      const int i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= jobs || failed.load(std::memory_order_relaxed)) return;
      try {
        job(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mu);
        if (!error) error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers));
  for (int t = 0; t < workers; ++t) pool.emplace_back(worker);
  for (auto& th : pool) th.join();
  if (error) std::rethrow_exception(error);
}

}  // namespace mhca
