// Minimal fork-join helper for embarrassingly parallel jobs.
//
// The replication harness and the figure benches all have the same shape:
// N independent jobs (distinct seeds / configs / policies) whose outputs go
// to preallocated, disjoint slots. `parallel_run` executes them on a small
// std::thread pool; determinism is the *caller's* property (jobs must not
// share mutable state), which every user in this repo satisfies because
// channel sampling is stateless and each job builds its own simulator.
#pragma once

#include <functional>

namespace mhca {

/// Run job(0), ..., job(jobs-1) on min(parallelism, jobs) worker threads.
/// parallelism 0 = one worker per hardware thread; 1 = inline on the
/// calling thread (no threads spawned). If any job throws, the first
/// exception is rethrown on the calling thread after all workers join.
void parallel_run(int jobs, const std::function<void(int)>& job,
                  int parallelism = 0);

}  // namespace mhca
