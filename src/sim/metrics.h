// Regret metrics (paper §II eq. 1, §III β-regret, §IV-E practical regret).
#pragma once

#include <vector>

namespace mhca {

struct SimulationResult;  // defined in sim/simulator.h

/// Practical regret series: R1 − cumavg effective throughput at each
/// recorded slot (Fig. 7a). All values normalized; multiply by the model's
/// rate scale for kbps.
std::vector<double> practical_regret_series(const SimulationResult& sim,
                                            double r1);

/// Practical β-regret series: R1/β − cumavg effective throughput (Fig. 7b).
/// Negative values mean the scheme beats the 1/β benchmark.
std::vector<double> beta_regret_series(const SimulationResult& sim, double r1,
                                       double beta);

/// Ideal (timing-free) cumulative regret: t·R1 − Σ λ_{x(τ)} using true
/// means of the chosen strategies — the classic eq. (1) regret.
std::vector<double> ideal_regret_series(const SimulationResult& sim,
                                        double r1);

}  // namespace mhca
