// Multi-seed replication: run the same experiment across independent seeds
// and report mean/std error bars instead of single-run point estimates.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/simulator.h"
#include "util/stats.h"

namespace mhca {

/// A named metric aggregated over replications.
struct ReplicatedMetric {
  std::string name;
  Summary summary;
};

struct ReplicationReport {
  int replications = 0;
  std::vector<ReplicatedMetric> metrics;

  /// Find a metric by name (throws if absent).
  const Summary& metric(const std::string& name) const;
};

/// Run `experiment(seed)` for seeds seed0 .. seed0+replications-1 and
/// aggregate the standard headline metrics of each SimulationResult:
///   expected_rate   — avg true-mean throughput per slot
///   effective_rate  — avg timing-discounted realized throughput per slot
///   observed_rate   — avg raw observed throughput per slot
///   estimate_gap    — |estimated − effective| / effective at the horizon
///   strategy_size   — avg transmitters per slot
ReplicationReport replicate(
    const std::function<SimulationResult(std::uint64_t seed)>& experiment,
    int replications, std::uint64_t seed0 = 1);

}  // namespace mhca
