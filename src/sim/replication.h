// Multi-seed replication: run the same experiment across independent seeds
// and report mean/std error bars instead of single-run point estimates.
//
// Replications are independent by construction (each gets its own seed and
// builds its own simulator state), so they run on a small std::thread pool.
// Results are deterministic regardless of parallelism: per-seed metrics are
// written to seed-indexed slots and aggregated in seed order.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/simulator.h"
#include "util/stats.h"

namespace mhca {

/// A named metric aggregated over replications.
struct ReplicatedMetric {
  std::string name;
  Summary summary;
};

struct ReplicationReport {
  int replications = 0;
  std::vector<ReplicatedMetric> metrics;

  /// Find a metric by name (throws if absent).
  const Summary& metric(const std::string& name) const;
};

struct ReplicationConfig {
  int replications = 8;
  std::uint64_t seed0 = 1;
  /// Worker threads running replications. 0 = one per hardware thread
  /// (capped at `replications`); 1 = run inline on the calling thread.
  int parallelism = 0;
};

/// Run `experiment(seed)` for seeds cfg.seed0 .. cfg.seed0+replications-1
/// and aggregate the standard headline metrics of each SimulationResult:
///   expected_rate   — avg true-mean throughput per slot
///   effective_rate  — avg timing-discounted realized throughput per slot
///   observed_rate   — avg raw observed throughput per slot
///   estimate_gap    — |estimated − effective| / effective at the horizon
///   strategy_size   — avg transmitters per slot
///
/// The experiment callable must be safe to invoke from multiple threads at
/// once (each call should build its own graphs/models/policies — which every
/// caller in this repo already does). An exception thrown by any replication
/// is rethrown on the calling thread after the pool joins.
ReplicationReport replicate(
    const std::function<SimulationResult(std::uint64_t seed)>& experiment,
    const ReplicationConfig& cfg);

/// Back-compat wrapper preserving the original *sequential* contract
/// (parallelism = 1): legacy callers may pass experiments that are not
/// thread-safe. Opt into the pool explicitly via ReplicationConfig.
ReplicationReport replicate(
    const std::function<SimulationResult(std::uint64_t seed)>& experiment,
    int replications, std::uint64_t seed0 = 1);

}  // namespace mhca
