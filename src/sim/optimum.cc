#include "sim/optimum.h"

#include <cmath>

#include "mwis/branch_and_bound.h"
#include "util/assert.h"

namespace mhca {

OptimumInfo compute_optimum(const ExtendedConflictGraph& ecg,
                            const ChannelModel& model,
                            std::int64_t bnb_node_cap) {
  const std::vector<double> means = model.mean_matrix(1);
  BranchAndBoundMwisSolver solver(bnb_node_cap);
  MwisResult res = solver.solve_all(ecg.graph(), means);
  OptimumInfo info;
  info.weight = res.weight;
  info.vertices = std::move(res.vertices);
  info.exact = res.exact;
  return info;
}

double theorem2_rho(int num_channels, int r) {
  MHCA_ASSERT(num_channels >= 1 && r >= 1, "invalid rho parameters");
  const double bound =
      static_cast<double>(num_channels) *
      static_cast<double>((2 * r + 1) * (2 * r + 1));
  return std::pow(bound, 1.0 / static_cast<double>(r));
}

}  // namespace mhca
