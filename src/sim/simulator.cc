#include "sim/simulator.h"

#include <chrono>

#include "dynamics/dynamic_network.h"
#include "mwis/branch_and_bound.h"
#include "mwis/distributed_ptas.h"
#include "mwis/greedy.h"
#include "mwis/robust_ptas.h"
#include "util/assert.h"
#include "util/rng.h"

namespace mhca {

const char* to_string(SolverKind kind) {
  switch (kind) {
    case SolverKind::kDistributedPtas: return "distributed-ptas";
    case SolverKind::kCentralizedPtas: return "centralized-ptas";
    case SolverKind::kGreedy: return "greedy";
    case SolverKind::kExact: return "exact";
  }
  return "?";
}

Simulator::Simulator(const ExtendedConflictGraph& ecg,
                     const ChannelModel& model, const IndexPolicy& policy,
                     SimulationConfig cfg, dynamics::DynamicNetwork* dyn)
    : ecg_(ecg), model_(model), policy_(policy), cfg_(cfg), dyn_(dyn) {
  MHCA_ASSERT(ecg.num_nodes() == model.num_nodes() &&
                  ecg.num_channels() == model.num_channels(),
              "graph/model dimension mismatch");
  MHCA_ASSERT(cfg_.slots >= 1, "need at least one slot");
  MHCA_ASSERT(cfg_.update_period >= 1, "update period must be positive");
  MHCA_ASSERT(cfg_.series_stride >= 1, "series stride must be positive");
  MHCA_ASSERT(dyn_ == nullptr || &dyn_->ecg() == &ecg_,
              "dynamic simulation must run over the DynamicNetwork's graph");
}

SimulationResult Simulator::run() {
  using Clock = std::chrono::steady_clock;
  const Graph& h = ecg_.graph();
  const int k_arms = ecg_.num_vertices();

  ArmEstimates est(k_arms);
  Rng rng(cfg_.seed);

  // Strategy-decision oracle. The distributed engine precomputes its
  // NeighborhoodCache at construction, so only build it when selected.
  std::unique_ptr<DistributedRobustPtas> engine;
  std::unique_ptr<MwisSolver> central;
  DistributedPtasConfig dcfg;  // kept: dynamic full-rebuild re-uses it
  switch (cfg_.solver) {
    case SolverKind::kDistributedPtas: {
      dcfg.r = cfg_.r;
      dcfg.max_mini_rounds = cfg_.D;
      dcfg.local_solver = cfg_.local_solver;
      dcfg.bnb_node_cap = cfg_.bnb_node_cap;
      dcfg.count_messages = cfg_.count_messages;
      dcfg.local_solve_parallelism = cfg_.local_solve_parallelism;
      dcfg.use_memoized_covers = cfg_.use_memoized_covers;
      engine = std::make_unique<DistributedRobustPtas>(h, dcfg);
      break;
    }
    case SolverKind::kCentralizedPtas:
      central = std::make_unique<RobustPtasSolver>(cfg_.ptas_epsilon, 4,
                                                   cfg_.bnb_node_cap);
      break;
    case SolverKind::kGreedy:
      central = std::make_unique<GreedyMwisSolver>();
      break;
    case SolverKind::kExact:
      central = std::make_unique<BranchAndBoundMwisSolver>(cfg_.bnb_node_cap);
      break;
  }

  SimulationResult out;
  out.theta = cfg_.timing.theta();

  std::vector<double> weights;
  std::vector<int> strategy;
  std::vector<int> active_list;  // central-solver candidates when masked
  double estimated_sum = 0.0;  // index-sum W_x of the current strategy
  double sum_observed = 0.0, sum_effective = 0.0, sum_estimated = 0.0;
  double sum_expected = 0.0, sum_strategy_size = 0.0;
  const bool is_dynamic = dyn_ != nullptr && dyn_->dynamic();

  for (std::int64_t t = 1; t <= cfg_.slots; ++t) {
    if (is_dynamic && t > 1) {
      const dynamics::SlotChange& ch = dyn_->advance(t);
      if (ch.changed) {
        if (engine) {
          if (dyn_->incremental())
            engine->on_graph_delta(ch.touched_vertices);
          else
            engine = std::make_unique<DistributedRobustPtas>(h, dcfg);
        }
        // A strategy carried across non-decision slots must stay feasible
        // on the new graph: drop members that went inactive, then members
        // that now conflict with an earlier (lower-id) kept member. Purely
        // deterministic, so both maintenance modes prune identically.
        if (!strategy.empty()) {
          const std::span<const char> mask = dyn_->active_vertex_mask();
          std::vector<int> kept;
          kept.reserve(strategy.size());
          for (int v : strategy) {
            bool ok =
                mask.empty() || mask[static_cast<std::size_t>(v)] != 0;
            for (std::size_t i = 0; ok && i < kept.size(); ++i)
              ok = !h.has_edge(v, kept[i]);
            if (ok)
              kept.push_back(v);
            else
              estimated_sum -= weights[static_cast<std::size_t>(v)];
          }
          strategy = std::move(kept);
        }
      }
    }
    const bool decision_slot = ((t - 1) % cfg_.update_period) == 0;
    if (decision_slot) {
      const auto t0 = Clock::now();
      if (policy_.randomize_round(t, rng)) {
        weights.resize(static_cast<std::size_t>(k_arms));
        for (auto& w : weights) w = rng.uniform();
      } else {
        policy_.compute_indices(est, t, weights);
      }
      const std::span<const char> mask =
          is_dynamic ? dyn_->active_vertex_mask() : std::span<const char>{};
      if (cfg_.solver == SolverKind::kDistributedPtas) {
        if (cfg_.count_messages && !strategy.empty())
          out.total_messages += engine->weight_broadcast_messages(strategy);
        DistributedPtasResult dres = engine->run(weights, mask);
        strategy = std::move(dres.winners);
        out.total_messages += dres.total_messages;
        out.total_mini_timeslots += dres.total_mini_timeslots;
      } else if (mask.empty()) {
        strategy = central->solve_all(h, weights).vertices;
      } else {
        // Centralized oracles see only the live part of H.
        active_list.clear();
        for (int v = 0; v < k_arms; ++v)
          if (mask[static_cast<std::size_t>(v)]) active_list.push_back(v);
        strategy = central->solve(h, weights, active_list).vertices;
      }
      estimated_sum = 0.0;
      for (int v : strategy)
        estimated_sum += weights[static_cast<std::size_t>(v)];
      out.decision_seconds +=
          std::chrono::duration<double>(Clock::now() - t0).count();
      ++out.decisions;
    }
    sum_strategy_size += static_cast<double>(strategy.size());

    // Data transmission + observation.
    double observed = 0.0, expected = 0.0;
    for (int v : strategy) {
      const int node = ecg_.master_of(v);
      const int chan = ecg_.channel_of(v);
      const double x = model_.sample(node, chan, t);
      est.observe(v, x);
      observed += x;
      expected += model_.mean(node, chan, t);
    }
    const double factor = decision_slot ? cfg_.timing.theta() : 1.0;
    sum_observed += observed;
    sum_effective += factor * observed;
    sum_estimated += factor * estimated_sum;
    sum_expected += expected;

    if ((t - 1) % cfg_.series_stride == 0 || t == cfg_.slots) {
      const double td = static_cast<double>(t);
      out.slots.push_back(t);
      out.cumavg_effective.push_back(sum_effective / td);
      out.cumavg_estimated.push_back(sum_estimated / td);
      out.cumavg_observed.push_back(sum_observed / td);
      out.cum_expected.push_back(sum_expected);
    }
  }

  out.total_slots = cfg_.slots;
  out.total_observed = sum_observed;
  out.total_effective = sum_effective;
  out.total_expected = sum_expected;
  out.avg_strategy_size =
      sum_strategy_size / static_cast<double>(cfg_.slots);
  out.final_means = est.means();
  out.final_counts = est.counts();
  out.last_strategy = strategy;
  return out;
}

}  // namespace mhca
