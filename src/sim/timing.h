// Round timing model (paper Fig. 2 + Table II + §IV-E).
//
// A round of length t_a splits into a strategy-decision part t_s and a data
// transmission part t_d. The decision part consists of c mini-rounds of
// length t_m = 2·t_b + t_l each (two local broadcasts + local computation).
// Only the fraction θ = t_d / t_a of a decision slot's throughput is
// realized — the "practical regret" discount.
#pragma once

namespace mhca {

struct RoundTiming {
  double ta_ms = 2000.0;  ///< Round length (Table II).
  double td_ms = 1000.0;  ///< Data-transmission part (Table II).
  double tb_ms = 100.0;   ///< One local broadcast (Table II).
  double tl_ms = 50.0;    ///< Local computation per mini-round (Table II).
  int decision_mini_rounds = 4;  ///< c: paper §V sets t_s = 4·t_m.

  /// Mini-round length t_m = 2 t_b + t_l (250 ms with Table II values).
  double tm_ms() const { return 2.0 * tb_ms + tl_ms; }

  /// Strategy-decision duration t_s = c · t_m.
  double ts_ms() const { return decision_mini_rounds * tm_ms(); }

  /// θ = t_d / t_a: realized fraction of a decision slot (0.5 in the paper).
  double theta() const { return td_ms / ta_ms; }

  /// Whether t_s + t_d fills the round exactly (true for Table II values).
  bool is_consistent() const { return ts_ms() + td_ms == ta_ms; }

  /// Fraction of ideal throughput realized when strategies are refreshed
  /// every y slots (paper §V-C): (t_d + (y−1)·t_a) / (y·t_a);
  /// y = 1, 5, 10, 20 → 1/2, 9/10, 19/20, 39/40.
  double periodic_fraction(int y) const {
    return (td_ms + static_cast<double>(y - 1) * ta_ms) /
           (static_cast<double>(y) * ta_ms);
  }

  bool operator==(const RoundTiming&) const = default;
};

}  // namespace mhca
