#include "sim/metrics.h"

#include "sim/simulator.h"
#include "util/assert.h"

namespace mhca {

std::vector<double> practical_regret_series(const SimulationResult& sim,
                                            double r1) {
  std::vector<double> out;
  out.reserve(sim.cumavg_effective.size());
  for (double eff : sim.cumavg_effective) out.push_back(r1 - eff);
  return out;
}

std::vector<double> beta_regret_series(const SimulationResult& sim, double r1,
                                       double beta) {
  MHCA_ASSERT(beta >= 1.0, "beta must be at least 1");
  std::vector<double> out;
  out.reserve(sim.cumavg_effective.size());
  for (double eff : sim.cumavg_effective) out.push_back(r1 / beta - eff);
  return out;
}

std::vector<double> ideal_regret_series(const SimulationResult& sim,
                                        double r1) {
  std::vector<double> out;
  out.reserve(sim.cum_expected.size());
  for (std::size_t i = 0; i < sim.cum_expected.size(); ++i) {
    const double t = static_cast<double>(sim.slots[i]);
    out.push_back(t * r1 - sim.cum_expected[i]);
  }
  return out;
}

}  // namespace mhca
