// Static-optimum computation: R1 = W(MWIS(H)) with true means as weights
// (paper eq. 2) — the genie benchmark that regret is measured against.
#pragma once

#include <cstdint>
#include <vector>

#include "channel/channel_model.h"
#include "graph/extended_graph.h"

namespace mhca {

struct OptimumInfo {
  double weight = 0.0;        ///< R1, normalized units.
  std::vector<int> vertices;  ///< The optimal strategy (vertices of H).
  bool exact = true;          ///< False if the effort cap was hit.
};

/// Compute the optimal static strategy by exact branch-and-bound over H.
/// For the paper's Fig. 7 network (15 users x 3 channels) this is fast;
/// `bnb_node_cap` guards against accidental use on huge instances (the
/// result then carries exact = false, like the paper's remark that large
/// networks' optima are not computed).
OptimumInfo compute_optimum(const ExtendedConflictGraph& ecg,
                            const ChannelModel& model,
                            std::int64_t bnb_node_cap = 50'000'000);

/// Theorem-2 approximation ratio bound for the distributed PTAS on H:
/// ρ = (M · (2r+1)²)^(1/r). Used as β in β-regret reporting.
double theorem2_rho(int num_channels, int r);

}  // namespace mhca
