// Simulation configuration shared by the simulator and the core facade.
#pragma once

#include <cstdint>

#include "mwis/distributed_ptas.h"
#include "sim/timing.h"

namespace mhca {

/// Which MWIS oracle performs the strategy decision.
enum class SolverKind {
  kDistributedPtas,  ///< Algorithm 3 (lockstep engine) — the paper's scheme.
  kCentralizedPtas,  ///< Centralized robust PTAS (§IV-B).
  kGreedy,           ///< Global greedy heuristic.
  kExact,            ///< Exact branch-and-bound (small instances / optimum).
};

const char* to_string(SolverKind kind);

struct SimulationConfig {
  std::int64_t slots = 1000;  ///< Time horizon n.
  int update_period = 1;      ///< y: strategy refresh every y slots (§V-C).

  // Strategy-decision oracle.
  SolverKind solver = SolverKind::kDistributedPtas;
  int r = 2;  ///< Local-neighborhood radius (paper simulations: r = 2).
  int D = 4;  ///< Mini-round budget per decision (0 = until all marked).
  LocalSolverKind local_solver = LocalSolverKind::kExact;
  /// Per-solve effort cap (distributed local solves and centralized
  /// oracles alike); see DistributedPtasConfig::bnb_node_cap.
  std::int64_t bnb_node_cap = kDefaultBnbNodeCap;
  /// Threads for per-leader local solves within one decision (0 = one per
  /// hardware thread). Deterministic at any setting. Defaults to 1 here —
  /// simulations usually already fan out across replications
  /// (ReplicationConfig.parallelism), and nesting both oversubscribes;
  /// raise it for single-simulation runs on idle cores.
  int local_solve_parallelism = 1;
  /// Reuse memoized per-ball clique covers (see src/mwis/README.md).
  bool use_memoized_covers = false;
  double ptas_epsilon = 1.0;  ///< ε for the centralized robust PTAS.

  RoundTiming timing;

  std::uint64_t seed = 1;      ///< Drives ε-greedy randomization only.
  bool count_messages = false; ///< Tally protocol messages (costs BFS).
  int series_stride = 1;       ///< Record every k-th slot in the series.
};

}  // namespace mhca
