// The channel-access simulation engine: Algorithm 2 end to end.
//
// Each slot, the engine (a) at period boundaries recomputes per-arm indices
// from the learning policy and runs the configured MWIS oracle to pick the
// strategy, (b) samples the channel realizations of all transmitting
// vertices, feeds them back into the estimates (eqs. 5-6), and (c) accounts
// effective throughput under the paper's timing model: decision slots only
// realize θ = t_d/t_a of their throughput, the remaining y−1 slots of an
// update period realize all of it (§IV-E, §V-C).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "bandit/policy.h"
#include "channel/channel_model.h"
#include "graph/extended_graph.h"
#include "sim/config.h"

namespace mhca::dynamics {
class DynamicNetwork;
}

namespace mhca {

struct SimulationResult {
  // Recorded series (every `series_stride` slots; slot index in `slots`).
  std::vector<std::int64_t> slots;
  std::vector<double> cumavg_effective;   ///< timing-discounted actual
  std::vector<double> cumavg_estimated;   ///< timing-discounted index-sum
  std::vector<double> cumavg_observed;    ///< raw observed (no discount)
  std::vector<double> cum_expected;       ///< Σ true-mean throughput so far

  // Totals.
  std::int64_t total_slots = 0;
  std::int64_t decisions = 0;
  double total_observed = 0.0;
  double total_effective = 0.0;
  double total_expected = 0.0;
  double avg_strategy_size = 0.0;
  std::int64_t total_messages = 0;        ///< if count_messages
  std::int64_t total_mini_timeslots = 0;  ///< if count_messages
  double decision_seconds = 0.0;          ///< wall time in oracle calls
  double theta = 0.5;

  // Final learning state (per arm).
  std::vector<double> final_means;
  std::vector<std::int64_t> final_counts;

  // Final strategy of the run.
  std::vector<int> last_strategy;
};

class Simulator {
 public:
  /// All references must outlive the simulator. `dyn`, when given, owns the
  /// (mutable) topology behind `ecg` — it must be the same object `ecg`
  /// refers to — and is advanced between slots: the engine's neighborhood
  /// cache follows the graph by scoped invalidation (or full rebuild when
  /// dyn->incremental() is off), inactive vertices are masked out of every
  /// decision, and a strategy carried across non-decision slots is pruned
  /// of members the change made inactive or conflicting.
  Simulator(const ExtendedConflictGraph& ecg, const ChannelModel& model,
            const IndexPolicy& policy, SimulationConfig cfg,
            dynamics::DynamicNetwork* dyn = nullptr);

  SimulationResult run();

  const SimulationConfig& config() const { return cfg_; }

 private:
  const ExtendedConflictGraph& ecg_;
  const ChannelModel& model_;
  const IndexPolicy& policy_;
  SimulationConfig cfg_;
  dynamics::DynamicNetwork* dyn_ = nullptr;
};

}  // namespace mhca
