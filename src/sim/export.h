// CSV export of simulation series (for external plotting of the figures).
#pragma once

#include <string>

#include "sim/simulator.h"

namespace mhca {

/// Write the recorded series of `res` to a CSV file with columns
/// slot, cumavg_effective, cumavg_estimated, cumavg_observed, cum_expected.
/// Values are multiplied by `rate_scale` (pass the model's kbps scale, or
/// 1.0 for normalized units). Returns false if the file could not be
/// written.
bool export_series_csv(const SimulationResult& res, const std::string& path,
                       double rate_scale = 1.0);

}  // namespace mhca
