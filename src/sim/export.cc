#include "sim/export.h"

#include "util/csv.h"

namespace mhca {

bool export_series_csv(const SimulationResult& res, const std::string& path,
                       double rate_scale) {
  CsvWriter csv(path, {"slot", "cumavg_effective", "cumavg_estimated",
                       "cumavg_observed", "cum_expected"});
  if (!csv.ok()) return false;
  for (std::size_t i = 0; i < res.slots.size(); ++i) {
    csv.row(res.slots[i], res.cumavg_effective[i] * rate_scale,
            res.cumavg_estimated[i] * rate_scale,
            res.cumavg_observed[i] * rate_scale,
            res.cum_expected[i] * rate_scale);
  }
  return csv.ok();
}

}  // namespace mhca
