#include "sim/replication.h"

#include <cmath>

#include "util/assert.h"

namespace mhca {

const Summary& ReplicationReport::metric(const std::string& name) const {
  for (const auto& m : metrics)
    if (m.name == name) return m.summary;
  MHCA_ASSERT(false, "unknown replication metric: " + name);
}

ReplicationReport replicate(
    const std::function<SimulationResult(std::uint64_t seed)>& experiment,
    int replications, std::uint64_t seed0) {
  MHCA_ASSERT(replications >= 1, "need at least one replication");
  std::vector<double> expected, effective, observed, gap, size;
  for (int i = 0; i < replications; ++i) {
    const SimulationResult res = experiment(seed0 + static_cast<std::uint64_t>(i));
    const double slots = static_cast<double>(res.total_slots);
    expected.push_back(res.total_expected / slots);
    effective.push_back(res.total_effective / slots);
    observed.push_back(res.total_observed / slots);
    const double eff = res.cumavg_effective.empty()
                           ? 0.0
                           : res.cumavg_effective.back();
    const double est = res.cumavg_estimated.empty()
                           ? 0.0
                           : res.cumavg_estimated.back();
    gap.push_back(eff > 0.0 ? std::abs(est - eff) / eff : 0.0);
    size.push_back(res.avg_strategy_size);
  }
  ReplicationReport report;
  report.replications = replications;
  report.metrics = {
      {"expected_rate", summarize(expected)},
      {"effective_rate", summarize(effective)},
      {"observed_rate", summarize(observed)},
      {"estimate_gap", summarize(gap)},
      {"strategy_size", summarize(size)},
  };
  return report;
}

}  // namespace mhca
