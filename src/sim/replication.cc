#include "sim/replication.h"

#include <cmath>
#include <stdexcept>

#include "util/assert.h"
#include "util/parallel.h"

namespace mhca {

const Summary& ReplicationReport::metric(const std::string& name) const {
  for (const auto& m : metrics)
    if (m.name == name) return m.summary;
  throw std::out_of_range("unknown replication metric: " + name);
}

namespace {

/// The per-seed headline numbers extracted inside the worker so the full
/// SimulationResult (series vectors included) can be freed immediately.
struct SeedMetrics {
  double expected = 0.0;
  double effective = 0.0;
  double observed = 0.0;
  double gap = 0.0;
  double size = 0.0;
};

SeedMetrics extract(const SimulationResult& res) {
  SeedMetrics m;
  const double slots = static_cast<double>(res.total_slots);
  m.expected = res.total_expected / slots;
  m.effective = res.total_effective / slots;
  m.observed = res.total_observed / slots;
  const double eff =
      res.cumavg_effective.empty() ? 0.0 : res.cumavg_effective.back();
  const double est =
      res.cumavg_estimated.empty() ? 0.0 : res.cumavg_estimated.back();
  m.gap = eff > 0.0 ? std::abs(est - eff) / eff : 0.0;
  m.size = res.avg_strategy_size;
  return m;
}

}  // namespace

ReplicationReport replicate(
    const std::function<SimulationResult(std::uint64_t seed)>& experiment,
    const ReplicationConfig& cfg) {
  MHCA_ASSERT(cfg.replications >= 1, "need at least one replication");
  MHCA_ASSERT(cfg.parallelism >= 0, "negative parallelism");
  const int reps = cfg.replications;

  std::vector<SeedMetrics> per_seed(static_cast<std::size_t>(reps));
  parallel_run(
      reps,
      [&](int i) {
        per_seed[static_cast<std::size_t>(i)] =
            extract(experiment(cfg.seed0 + static_cast<std::uint64_t>(i)));
      },
      cfg.parallelism);

  // Merge in seed order — identical output for any worker count.
  std::vector<double> expected, effective, observed, gap, size;
  for (const SeedMetrics& m : per_seed) {
    expected.push_back(m.expected);
    effective.push_back(m.effective);
    observed.push_back(m.observed);
    gap.push_back(m.gap);
    size.push_back(m.size);
  }
  ReplicationReport report;
  report.replications = reps;
  report.metrics = {
      {"expected_rate", summarize(expected)},
      {"effective_rate", summarize(effective)},
      {"observed_rate", summarize(observed)},
      {"estimate_gap", summarize(gap)},
      {"strategy_size", summarize(size)},
  };
  return report;
}

ReplicationReport replicate(
    const std::function<SimulationResult(std::uint64_t seed)>& experiment,
    int replications, std::uint64_t seed0) {
  ReplicationConfig cfg;
  cfg.replications = replications;
  cfg.seed0 = seed0;
  cfg.parallelism = 1;  // legacy sequential contract
  return replicate(experiment, cfg);
}

}  // namespace mhca
