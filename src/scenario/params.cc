#include "scenario/params.h"

#include <cerrno>
#include <cstdlib>
#include <limits>

namespace mhca::scenario {

void ParamMap::set(const std::string& key, std::string value) {
  for (auto& [k, v] : entries_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  entries_.emplace_back(key, std::move(value));
}

const std::string* ParamMap::find(const std::string& key) const {
  for (const auto& [k, v] : entries_)
    if (k == key) return &v;
  return nullptr;
}

bool ParamMap::has(const std::string& key) const {
  return find(key) != nullptr;
}

std::string ParamMap::get_string(const std::string& key,
                                 const std::string& def) const {
  const std::string* v = find(key);
  return v ? *v : def;
}

std::int64_t ParamMap::get_int(const std::string& key,
                               std::int64_t def) const {
  const std::string* v = find(key);
  return v ? parse_int_value(*v, key) : def;
}

std::uint64_t ParamMap::get_uint(const std::string& key,
                                 std::uint64_t def) const {
  const std::string* v = find(key);
  return v ? parse_uint_value(*v, key) : def;
}

double ParamMap::get_double(const std::string& key, double def) const {
  const std::string* v = find(key);
  return v ? parse_double_value(*v, key) : def;
}

bool ParamMap::get_bool(const std::string& key, bool def) const {
  const std::string* v = find(key);
  return v ? parse_bool_value(*v, key) : def;
}

std::vector<std::string> ParamMap::keys() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [k, v] : entries_) out.push_back(k);
  return out;
}

namespace {

[[noreturn]] void bad_value(const std::string& value, const std::string& where,
                            const char* expected) {
  throw ScenarioError("bad value '" + value + "' for '" + where +
                      "': expected " + expected);
}

}  // namespace

std::int64_t parse_int_value(const std::string& value,
                             const std::string& where) {
  char* end = nullptr;
  errno = 0;
  const long long x = std::strtoll(value.c_str(), &end, 10);
  if (value.empty() || end != value.c_str() + value.size() || errno == ERANGE)
    bad_value(value, where, "an integer (in 64-bit range)");
  return static_cast<std::int64_t>(x);
}

std::uint64_t parse_uint_value(const std::string& value,
                               const std::string& where) {
  char* end = nullptr;
  errno = 0;
  const unsigned long long x = std::strtoull(value.c_str(), &end, 10);
  if (value.empty() || end != value.c_str() + value.size() ||
      errno == ERANGE || value.front() == '-')
    bad_value(value, where, "a non-negative integer (in 64-bit range)");
  return static_cast<std::uint64_t>(x);
}

int checked_int32(std::int64_t v, const std::string& where) {
  if (v < std::numeric_limits<int>::min() ||
      v > std::numeric_limits<int>::max())
    throw ScenarioError("value " + std::to_string(v) + " for '" + where +
                        "' is out of 32-bit range");
  return static_cast<int>(v);
}

double parse_double_value(const std::string& value, const std::string& where) {
  char* end = nullptr;
  const double x = std::strtod(value.c_str(), &end);
  if (value.empty() || end != value.c_str() + value.size())
    bad_value(value, where, "a number");
  return x;
}

bool parse_bool_value(const std::string& value, const std::string& where) {
  if (value == "true" || value == "yes" || value == "1") return true;
  if (value == "false" || value == "no" || value == "0") return false;
  bad_value(value, where, "a boolean (true/false)");
}

std::string join_keys(const std::vector<std::string>& keys) {
  std::string out;
  for (const auto& k : keys) {
    if (!out.empty()) out += ", ";
    out += k;
  }
  return out;
}

}  // namespace mhca::scenario
