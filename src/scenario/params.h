// String-keyed parameter bag for declarative scenario specs.
//
// Component factories (channel models, policies, topology generators) read
// their construction parameters from a ParamMap instead of a positional C++
// signature, so a scenario file — or a `--override` on the command line —
// can reach any knob by name. Values are stored as the raw strings from the
// scenario text; typed accessors parse on demand and raise ScenarioError
// with the offending key and value on malformed input.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace mhca::scenario {

/// All scenario-layer failures (parse errors, unknown keys/names, malformed
/// values) throw this; the message always names the offending token and, for
/// lookups, lists the valid alternatives.
class ScenarioError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Insertion-ordered string->string map. Order is preserved so
/// serialize(parse(text)) keeps the author's key order.
class ParamMap {
 public:
  /// Insert or overwrite (overwrite keeps the original position).
  void set(const std::string& key, std::string value);

  bool has(const std::string& key) const;
  bool empty() const { return entries_.empty(); }

  /// Typed accessors: return `def` when the key is absent; throw
  /// ScenarioError when the stored value does not parse as the target type.
  std::string get_string(const std::string& key, const std::string& def) const;
  std::int64_t get_int(const std::string& key, std::int64_t def) const;
  std::uint64_t get_uint(const std::string& key, std::uint64_t def) const;
  double get_double(const std::string& key, double def) const;
  bool get_bool(const std::string& key, bool def) const;

  std::vector<std::string> keys() const;
  const std::vector<std::pair<std::string, std::string>>& entries() const {
    return entries_;
  }

  bool operator==(const ParamMap&) const = default;

 private:
  const std::string* find(const std::string& key) const;

  std::vector<std::pair<std::string, std::string>> entries_;
};

// Value-parsing helpers shared with the fixed-schema scenario sections.
// `where` names the key (and section) for the error message.
std::int64_t parse_int_value(const std::string& value, const std::string& where);
std::uint64_t parse_uint_value(const std::string& value,
                               const std::string& where);
double parse_double_value(const std::string& value, const std::string& where);
bool parse_bool_value(const std::string& value, const std::string& where);

/// Narrow to int, throwing ScenarioError (naming `where`) when out of range
/// — so an overflowing override fails instead of silently truncating.
int checked_int32(std::int64_t v, const std::string& where);

/// "a, b, c" — used to list valid alternatives in error messages.
std::string join_keys(const std::vector<std::string>& keys);

}  // namespace mhca::scenario
