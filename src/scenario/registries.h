// The three component registries behind the Scenario API.
//
// Every ChannelModel, IndexPolicy, and topology generator in the library is
// constructible by string key through these registries — that is what lets
// one scenario file (or one `--override`) select any combination without a
// new C++ call site. Built-ins self-register on first access (one block per
// subsystem in registries.cc); extension code adds its own components with
// `registry.add(...)` at startup — see src/scenario/README.md.
#pragma once

#include <cstdint>
#include <memory>

#include "bandit/policy.h"
#include "channel/channel_model.h"
#include "graph/conflict_graph.h"
#include "scenario/registry.h"
#include "util/rng.h"

namespace mhca::scenario {

/// Fixed build arguments a channel-model factory receives next to its
/// ParamMap. `horizon` is the scenario's slot count (time-varying models —
/// adversarial ramps/swaps — schedule against it).
struct ChannelBuildContext {
  int num_nodes = 0;
  int num_channels = 0;
  std::int64_t horizon = 0;
};

/// Fixed build arguments for policy factories (LLR's L defaults to N).
struct PolicyBuildContext {
  int num_nodes = 0;
};

using TopologyRegistry = Registry<ConflictGraph(Rng&)>;
using ChannelRegistry =
    Registry<std::unique_ptr<ChannelModel>(const ChannelBuildContext&, Rng&)>;
using PolicyRegistry =
    Registry<std::unique_ptr<IndexPolicy>(const PolicyBuildContext&)>;

/// Process-wide registries, built-ins registered on first access.
TopologyRegistry& topology_registry();
ChannelRegistry& channel_registry();
PolicyRegistry& policy_registry();

/// The one mapping from policy ParamMap keys (L, epsilon, seed) to
/// PolicyParams — shared by the built-in policy factories and by
/// to_net_config, so the net runtime can never drift from the registry.
PolicyParams builtin_policy_params(const ParamMap& params, int num_nodes);

}  // namespace mhca::scenario
