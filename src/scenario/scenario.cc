#include "scenario/scenario.h"

#include <algorithm>
#include <fstream>
#include <functional>
#include <sstream>

#include "core/channel_access.h"
#include "dynamics/registries.h"
#include "net/runtime.h"
#include "scenario/registries.h"

namespace mhca::scenario {

// The drift guard: every config struct that carries a B&B node cap defaults
// it from the one constant in mwis/mwis.h, and the high-level specs agree on
// the shared solver knobs. A default edited in one place and not the others
// now fails to compile instead of silently diverging (as
// ChannelAccessConfig did after PR 2).
static_assert(SolverSpec{}.node_cap == kDefaultBnbNodeCap);
static_assert(DistributedPtasConfig{}.bnb_node_cap == kDefaultBnbNodeCap);
static_assert(SimulationConfig{}.bnb_node_cap == kDefaultBnbNodeCap);
static_assert(net::NetConfig{}.bnb_node_cap == kDefaultBnbNodeCap);
static_assert(ChannelAccessConfig{}.bnb_node_cap == kDefaultBnbNodeCap);
static_assert(SolverSpec{}.r == SimulationConfig{}.r &&
              SolverSpec{}.r == ChannelAccessConfig{}.r &&
              SolverSpec{}.r == net::NetConfig{}.r &&
              SolverSpec{}.r == DistributedPtasConfig{}.r);
static_assert(SolverSpec{}.D == SimulationConfig{}.D &&
              SolverSpec{}.D == ChannelAccessConfig{}.D &&
              SolverSpec{}.D == net::NetConfig{}.D);
static_assert(SolverSpec{}.parallelism ==
                  SimulationConfig{}.local_solve_parallelism &&
              SolverSpec{}.parallelism ==
                  ChannelAccessConfig{}.local_solve_parallelism);
static_assert(SolverSpec{}.memoized_covers ==
                  SimulationConfig{}.use_memoized_covers &&
              SolverSpec{}.memoized_covers ==
                  net::NetConfig{}.use_memoized_covers &&
              SolverSpec{}.memoized_covers ==
                  ChannelAccessConfig{}.use_memoized_covers);
static_assert(NetSpec{}.drop_prob == net::NetConfig{}.drop_prob &&
              NetSpec{}.drop_seed == net::NetConfig{}.drop_seed);
static_assert(NetSpec{}.dup_prob == net::NetConfig{}.dup_prob &&
              NetSpec{}.reorder_prob == net::NetConfig{}.reorder_prob &&
              NetSpec{}.delay_slots_max == net::NetConfig{}.delay_slots_max);
static_assert(NetSpec{}.hello_timeout_slots ==
                  net::NetConfig{}.hello_timeout_slots &&
              NetSpec{}.hello_max_retries ==
                  net::NetConfig{}.hello_max_retries &&
              NetSpec{}.backoff_base == net::NetConfig{}.backoff_base);
static_assert(net::NetConfig{}.membership ==
              net::MembershipMode::kOmniscient);
static_assert(NetSpec{}.mtu == net::NetConfig{}.mtu &&
              NetSpec{}.mtu == net::wire::kDefaultMtu);
// The agent-side liveness defaults must agree with the runtime config's
// (the runtime stamps NetConfig into LivenessParams agent by agent).
static_assert(net::LivenessParams{}.hello_timeout_slots ==
                  net::NetConfig{}.hello_timeout_slots &&
              net::LivenessParams{}.hello_max_retries ==
                  net::NetConfig{}.hello_max_retries &&
              net::LivenessParams{}.backoff_base ==
                  net::NetConfig{}.backoff_base);

namespace {

const std::vector<std::string> kSections{
    "topology", "channel",     "policy", "dynamics", "solver",
    "run",      "net",         "replication", "timing", "obs"};

/// One fixed-schema field: the key plus its parse-and-assign action.
/// Routing and the valid-keys error message both come from this table, so
/// the two cannot drift.
struct FieldDef {
  const char* key;
  std::function<void(Scenario&, const std::string& value,
                     const std::string& where)>
      set;
};

int int32_field(const std::string& value, const std::string& where) {
  return checked_int32(parse_int_value(value, where), where);
}

const std::vector<FieldDef>& solver_fields() {
  static const std::vector<FieldDef> fields{
      {"kind", [](Scenario& s, const std::string& v, const std::string&) {
         s.solver.kind = solver_kind_from_string(v);
       }},
      {"r", [](Scenario& s, const std::string& v, const std::string& w) {
         s.solver.r = int32_field(v, w);
       }},
      {"D", [](Scenario& s, const std::string& v, const std::string& w) {
         s.solver.D = int32_field(v, w);
       }},
      {"local_solver",
       [](Scenario& s, const std::string& v, const std::string&) {
         s.solver.local_solver = local_solver_from_string(v);
       }},
      {"node_cap", [](Scenario& s, const std::string& v, const std::string& w) {
         s.solver.node_cap = parse_int_value(v, w);
       }},
      {"parallelism",
       [](Scenario& s, const std::string& v, const std::string& w) {
         s.solver.parallelism = int32_field(v, w);
       }},
      {"memoized_covers",
       [](Scenario& s, const std::string& v, const std::string& w) {
         s.solver.memoized_covers = parse_bool_value(v, w);
       }},
      {"epsilon", [](Scenario& s, const std::string& v, const std::string& w) {
         s.solver.epsilon = parse_double_value(v, w);
       }},
  };
  return fields;
}

const std::vector<FieldDef>& run_fields() {
  static const std::vector<FieldDef> fields{
      {"slots", [](Scenario& s, const std::string& v, const std::string& w) {
         s.run.slots = parse_int_value(v, w);
       }},
      {"update_period",
       [](Scenario& s, const std::string& v, const std::string& w) {
         s.run.update_period = int32_field(v, w);
       }},
      {"seed", [](Scenario& s, const std::string& v, const std::string& w) {
         s.run.seed = parse_uint_value(v, w);
       }},
      {"series_stride",
       [](Scenario& s, const std::string& v, const std::string& w) {
         s.run.series_stride = int32_field(v, w);
       }},
      {"count_messages",
       [](Scenario& s, const std::string& v, const std::string& w) {
         s.run.count_messages = parse_bool_value(v, w);
       }},
  };
  return fields;
}

const std::vector<FieldDef>& net_fields() {
  static const std::vector<FieldDef> fields{
      {"drop_prob", [](Scenario& s, const std::string& v, const std::string& w) {
         s.net.drop_prob = parse_double_value(v, w);
       }},
      {"drop_seed", [](Scenario& s, const std::string& v, const std::string& w) {
         s.net.drop_seed = parse_uint_value(v, w);
       }},
      {"dup_prob", [](Scenario& s, const std::string& v, const std::string& w) {
         s.net.dup_prob = parse_double_value(v, w);
       }},
      {"reorder_prob",
       [](Scenario& s, const std::string& v, const std::string& w) {
         s.net.reorder_prob = parse_double_value(v, w);
       }},
      {"delay_slots_max",
       [](Scenario& s, const std::string& v, const std::string& w) {
         s.net.delay_slots_max = int32_field(v, w);
       }},
      {"membership",
       [](Scenario& s, const std::string& v, const std::string&) {
         membership_mode_from_string(v);  // reject bad values at parse time
         s.net.membership = v;
       }},
      {"hello_timeout_slots",
       [](Scenario& s, const std::string& v, const std::string& w) {
         s.net.hello_timeout_slots = int32_field(v, w);
       }},
      {"hello_max_retries",
       [](Scenario& s, const std::string& v, const std::string& w) {
         s.net.hello_max_retries = int32_field(v, w);
       }},
      {"backoff_base",
       [](Scenario& s, const std::string& v, const std::string& w) {
         s.net.backoff_base = int32_field(v, w);
       }},
      {"transport",
       [](Scenario& s, const std::string& v, const std::string&) {
         transport_kind_from_string(v);  // reject bad values at parse time
         s.net.transport = v;
       }},
      {"mtu", [](Scenario& s, const std::string& v, const std::string& w) {
         s.net.mtu = int32_field(v, w);
       }},
      {"shard", [](Scenario& s, const std::string& v, const std::string& w) {
         s.net.shard = int32_field(v, w);
       }},
  };
  return fields;
}

const std::vector<FieldDef>& replication_fields() {
  static const std::vector<FieldDef> fields{
      {"replications",
       [](Scenario& s, const std::string& v, const std::string& w) {
         s.replication.replications = int32_field(v, w);
       }},
      {"seed0", [](Scenario& s, const std::string& v, const std::string& w) {
         s.replication.seed0 = parse_uint_value(v, w);
       }},
      {"parallelism",
       [](Scenario& s, const std::string& v, const std::string& w) {
         s.replication.parallelism = int32_field(v, w);
       }},
  };
  return fields;
}

const std::vector<FieldDef>& timing_fields() {
  static const std::vector<FieldDef> fields{
      {"ta_ms", [](Scenario& s, const std::string& v, const std::string& w) {
         s.timing.ta_ms = parse_double_value(v, w);
       }},
      {"td_ms", [](Scenario& s, const std::string& v, const std::string& w) {
         s.timing.td_ms = parse_double_value(v, w);
       }},
      {"tb_ms", [](Scenario& s, const std::string& v, const std::string& w) {
         s.timing.tb_ms = parse_double_value(v, w);
       }},
      {"tl_ms", [](Scenario& s, const std::string& v, const std::string& w) {
         s.timing.tl_ms = parse_double_value(v, w);
       }},
      {"decision_mini_rounds",
       [](Scenario& s, const std::string& v, const std::string& w) {
         s.timing.decision_mini_rounds = int32_field(v, w);
       }},
  };
  return fields;
}

const std::vector<FieldDef>& obs_fields() {
  static const std::vector<FieldDef> fields{
      {"trace", [](Scenario& s, const std::string& v, const std::string&) {
         s.obs.trace = v;
       }},
      {"metrics", [](Scenario& s, const std::string& v, const std::string&) {
         s.obs.metrics = v;
       }},
  };
  return fields;
}

/// nullptr for the component sections (topology/channel/policy), which mix
/// reserved keys with free-form factory params and are routed by hand.
const std::vector<FieldDef>* fixed_section(const std::string& section) {
  if (section == "solver") return &solver_fields();
  if (section == "run") return &run_fields();
  if (section == "net") return &net_fields();
  if (section == "replication") return &replication_fields();
  if (section == "timing") return &timing_fields();
  if (section == "obs") return &obs_fields();
  return nullptr;
}

std::string trim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  std::size_t e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

/// Route one `section.key = value` assignment into the Scenario. Shared by
/// the file parser and apply_override, so both produce identical routing
/// and identical error messages.
void set_field(Scenario& s, const std::string& section, const std::string& key,
               const std::string& value) {
  const std::string where = section.empty() ? key : section + "." + key;
  if (section.empty()) {
    if (key == "name") {
      s.name = value;
      return;
    }
    throw ScenarioError("unknown top-level key '" + key +
                        "'; only 'name' may appear before the first "
                        "[section]");
  }
  if (section == "topology") {
    if (key == "kind")
      s.topology.kind = value;
    else
      s.topology.params.set(key, value);
    return;
  }
  if (section == "channel") {
    if (key == "kind")
      s.channel.kind = value;
    else if (key == "channels")
      s.num_channels = checked_int32(parse_int_value(value, where), where);
    else
      s.channel.params.set(key, value);
    return;
  }
  if (section == "policy") {
    if (key == "kind")
      s.policy.kind = value;
    else
      s.policy.params.set(key, value);
    return;
  }
  if (section == "dynamics") {
    // Like the other component sections, but with two reserved fixed keys
    // next to the free-form model parameters.
    if (key == "kind")
      s.dynamics.model.kind = value;
    else if (key == "incremental")
      s.dynamics.incremental = parse_bool_value(value, where);
    else if (key == "batch")
      s.dynamics.batch = parse_bool_value(value, where);
    else if (key == "seed")
      s.dynamics.seed = parse_uint_value(value, where);
    else
      s.dynamics.model.params.set(key, value);
    return;
  }
  if (const std::vector<FieldDef>* fields = fixed_section(section)) {
    for (const FieldDef& f : *fields) {
      if (key == f.key) {
        f.set(s, value, where);
        return;
      }
    }
    std::vector<std::string> valid;
    for (const FieldDef& f : *fields) valid.emplace_back(f.key);
    throw ScenarioError("unknown key '" + key + "' in [" + section +
                        "]; valid keys: " + join_keys(valid));
  }
  throw ScenarioError("unknown section [" + section +
                      "]; valid sections: " + join_keys(kSections));
}

/// Shortest decimal form that parses back to exactly the same double.
std::string format_double(double v) {
  for (int precision = 1; precision <= 17; ++precision) {
    std::ostringstream os;
    os.precision(precision);
    os << v;
    if (std::stod(os.str()) == v) return os.str();
  }
  return std::to_string(v);
}

void emit_params(std::ostringstream& os, const ParamMap& params) {
  for (const auto& [k, v] : params.entries()) os << k << " = " << v << "\n";
}

}  // namespace

// --------------------------------------------------------------- parsing

Scenario parse_scenario(const std::string& text) {
  Scenario s;
  std::istringstream in(text);
  std::string line;
  std::string section;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string t = trim(line);
    if (t.empty() || t[0] == '#' || t[0] == ';') continue;
    try {
      if (t.front() == '[') {
        if (t.back() != ']')
          throw ScenarioError("malformed section header '" + t + "'");
        section = trim(t.substr(1, t.size() - 2));
        bool known = false;
        for (const auto& k : kSections) known = known || k == section;
        if (!known)
          throw ScenarioError("unknown section [" + section +
                              "]; valid sections: " + join_keys(kSections));
        continue;
      }
      const std::size_t eq = t.find('=');
      if (eq == std::string::npos)
        throw ScenarioError("expected 'key = value', got '" + t + "'");
      const std::string key = trim(t.substr(0, eq));
      const std::string value = trim(t.substr(eq + 1));
      if (key.empty()) throw ScenarioError("empty key in '" + t + "'");
      set_field(s, section, key, value);
    } catch (const ScenarioError& e) {
      throw ScenarioError("line " + std::to_string(line_no) + ": " + e.what());
    }
  }
  return s;
}

Scenario parse_scenario_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw ScenarioError("cannot read scenario file '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  try {
    return parse_scenario(buf.str());
  } catch (const ScenarioError& e) {
    throw ScenarioError(path + ": " + e.what());
  }
}

std::string serialize_scenario(const Scenario& s) {
  std::ostringstream os;
  os << "name = " << s.name << "\n";
  os << "\n[topology]\nkind = " << s.topology.kind << "\n";
  emit_params(os, s.topology.params);
  os << "\n[channel]\nkind = " << s.channel.kind << "\n"
     << "channels = " << s.num_channels << "\n";
  emit_params(os, s.channel.params);
  os << "\n[policy]\nkind = " << s.policy.kind << "\n";
  emit_params(os, s.policy.params);
  os << "\n[dynamics]\nkind = " << s.dynamics.model.kind << "\n"
     << "incremental = " << (s.dynamics.incremental ? "true" : "false")
     << "\n"
     << "batch = " << (s.dynamics.batch ? "true" : "false") << "\n"
     << "seed = " << s.dynamics.seed << "\n";
  emit_params(os, s.dynamics.model.params);
  os << "\n[solver]\n"
     << "kind = " << solver_kind_key(s.solver.kind) << "\n"
     << "r = " << s.solver.r << "\n"
     << "D = " << s.solver.D << "\n"
     << "local_solver = " << local_solver_key(s.solver.local_solver) << "\n"
     << "node_cap = " << s.solver.node_cap << "\n"
     << "parallelism = " << s.solver.parallelism << "\n"
     << "memoized_covers = " << (s.solver.memoized_covers ? "true" : "false")
     << "\n"
     << "epsilon = " << format_double(s.solver.epsilon) << "\n";
  os << "\n[run]\n"
     << "slots = " << s.run.slots << "\n"
     << "update_period = " << s.run.update_period << "\n"
     << "seed = " << s.run.seed << "\n"
     << "series_stride = " << s.run.series_stride << "\n"
     << "count_messages = " << (s.run.count_messages ? "true" : "false")
     << "\n";
  os << "\n[net]\n"
     << "drop_prob = " << format_double(s.net.drop_prob) << "\n"
     << "drop_seed = " << s.net.drop_seed << "\n"
     << "dup_prob = " << format_double(s.net.dup_prob) << "\n"
     << "reorder_prob = " << format_double(s.net.reorder_prob) << "\n"
     << "delay_slots_max = " << s.net.delay_slots_max << "\n"
     << "membership = " << s.net.membership << "\n"
     << "hello_timeout_slots = " << s.net.hello_timeout_slots << "\n"
     << "hello_max_retries = " << s.net.hello_max_retries << "\n"
     << "backoff_base = " << s.net.backoff_base << "\n"
     << "transport = " << s.net.transport << "\n"
     << "mtu = " << s.net.mtu << "\n"
     << "shard = " << s.net.shard << "\n";
  os << "\n[replication]\n"
     << "replications = " << s.replication.replications << "\n"
     << "seed0 = " << s.replication.seed0 << "\n"
     << "parallelism = " << s.replication.parallelism << "\n";
  os << "\n[timing]\n"
     << "ta_ms = " << format_double(s.timing.ta_ms) << "\n"
     << "td_ms = " << format_double(s.timing.td_ms) << "\n"
     << "tb_ms = " << format_double(s.timing.tb_ms) << "\n"
     << "tl_ms = " << format_double(s.timing.tl_ms) << "\n"
     << "decision_mini_rounds = " << s.timing.decision_mini_rounds << "\n";
  // Empty paths round-trip: `trace = ` parses back to "" (off).
  os << "\n[obs]\n"
     << "trace = " << s.obs.trace << "\n"
     << "metrics = " << s.obs.metrics << "\n";
  return os.str();
}

void apply_override(Scenario& s, const std::string& spec) {
  const std::size_t eq = spec.find('=');
  if (eq == std::string::npos)
    throw ScenarioError("override '" + spec +
                        "' must look like section.key=value");
  const std::string path = trim(spec.substr(0, eq));
  const std::string value = trim(spec.substr(eq + 1));
  const std::size_t dot = path.find('.');
  try {
    if (dot == std::string::npos) {
      set_field(s, "", path, value);
    } else {
      set_field(s, path.substr(0, dot), path.substr(dot + 1), value);
    }
  } catch (const ScenarioError& e) {
    throw ScenarioError("override '" + spec + "': " + e.what());
  }
}

void validate_fields(const Scenario& s) {
  if (s.num_channels < 1)
    throw ScenarioError("channel.channels must be >= 1");
  if (s.run.slots < 1) throw ScenarioError("run.slots must be >= 1");
  if (s.run.update_period < 1)
    throw ScenarioError("run.update_period must be >= 1");
  if (s.run.series_stride < 0)
    throw ScenarioError("run.series_stride must be >= 0 (0 = auto)");
  if (s.solver.r < 1) throw ScenarioError("solver.r must be >= 1");
  if (s.solver.D < 0) throw ScenarioError("solver.D must be >= 0");
  if (s.solver.node_cap < 1)
    throw ScenarioError("solver.node_cap must be >= 1");
  if (s.solver.parallelism < 0)
    throw ScenarioError("solver.parallelism must be >= 0");
  if (s.replication.replications < 0)
    throw ScenarioError("replication.replications must be >= 0");
  if (s.replication.parallelism < 0)
    throw ScenarioError("replication.parallelism must be >= 0");
  // ControlChannel requires every fault probability in [0, 1) (a channel
  // that drops everything can never complete discovery), so reject here
  // with the key name *and the offending value* instead of letting the
  // assert fire three layers down.
  const auto check_prob = [](double p, const char* key) {
    if (p < 0.0 || p >= 1.0)
      throw ScenarioError(std::string("net.") + key + " = " +
                          format_double(p) + " is outside the supported "
                          "[0, 1) range");
  };
  check_prob(s.net.drop_prob, "drop_prob");
  check_prob(s.net.dup_prob, "dup_prob");
  check_prob(s.net.reorder_prob, "reorder_prob");
  if (s.net.delay_slots_max < 0)
    throw ScenarioError("net.delay_slots_max must be >= 0 (got " +
                        std::to_string(s.net.delay_slots_max) + ")");
  const net::MembershipMode mode =
      membership_mode_from_string(s.net.membership);
  if (mode != net::MembershipMode::kViewSync &&
      (s.net.reorder_prob > 0.0 || s.net.delay_slots_max > 0))
    throw ScenarioError(
        "net.reorder_prob / net.delay_slots_max require net.membership = "
        "view_sync: omniscient discovery finalizes tables once per change "
        "and cannot absorb a late hello");
  if (s.net.hello_timeout_slots < 2)
    throw ScenarioError(
        "net.hello_timeout_slots must be >= 2 (keep-alives go out every "
        "hello_timeout_slots - 1 rounds; got " +
        std::to_string(s.net.hello_timeout_slots) + ")");
  if (s.net.hello_max_retries < 0)
    throw ScenarioError("net.hello_max_retries must be >= 0 (got " +
                        std::to_string(s.net.hello_max_retries) + ")");
  if (s.net.backoff_base < 1)
    throw ScenarioError("net.backoff_base must be >= 1 (got " +
                        std::to_string(s.net.backoff_base) + ")");
  if (s.net.mtu < net::wire::kMinMtu || s.net.mtu > net::wire::kMaxMtu)
    throw ScenarioError(
        "net.mtu = " + std::to_string(s.net.mtu) + " is outside the "
        "supported [" + std::to_string(net::wire::kMinMtu) + ", " +
        std::to_string(net::wire::kMaxMtu) + "] range (header " +
        std::to_string(net::wire::kHeaderSize) + " B must fit; UDP "
        "payloads cap at 65507 B)");
  if (s.net.shard < 1)
    throw ScenarioError("net.shard must be >= 1 (got " +
                        std::to_string(s.net.shard) + ")");
  const TransportKind transport =
      transport_kind_from_string(s.net.transport);
  if (s.net.shard > 1 && transport != TransportKind::kUdp)
    throw ScenarioError(
        "net.shard = " + std::to_string(s.net.shard) + " requires "
        "net.transport = udp (only the socket transport runs a scenario as "
        "multiple processes)");
  if (transport == TransportKind::kUdp) {
    if (mode != net::MembershipMode::kOmniscient)
      throw ScenarioError(
          "net.transport = udp requires net.membership = omniscient "
          "(the sharded runtime cannot replay the view-sync membership "
          "phase's same-pass hello responses yet)");
    if (is_dynamic(s))
      throw ScenarioError(
          "net.transport = udp requires static dynamics (sharded churn "
          "rediscovery would need its own exchange barrier)");
  }
}

void validate(const Scenario& s) {
  validate_fields(s);
  topology_registry().validate(s.topology.kind, s.topology.params);
  if (s.channel.kind.empty())
    throw ScenarioError(
        "scenario has no channel model ([channel] kind is empty)");
  channel_registry().validate(s.channel.kind, s.channel.params);
  policy_registry().validate(s.policy.kind, s.policy.params);
  dynamics::dynamics_registry().validate(s.dynamics.model.kind,
                                         s.dynamics.model.params);
}

bool is_dynamic(const Scenario& s) {
  return s.dynamics.model.kind != dynamics::kStaticDynamicsKind;
}

// ----------------------------------------------------------- conversions

DistributedPtasConfig SolverSpec::engine_config(bool count_messages) const {
  DistributedPtasConfig cfg;
  cfg.r = r;
  cfg.max_mini_rounds = D;
  cfg.local_solver = local_solver;
  cfg.bnb_node_cap = node_cap;
  cfg.count_messages = count_messages;
  cfg.local_solve_parallelism = parallelism;
  cfg.use_memoized_covers = memoized_covers;
  return cfg;
}

SimulationConfig to_simulation_config(const Scenario& s) {
  SimulationConfig cfg;
  cfg.slots = s.run.slots;
  cfg.update_period = s.run.update_period;
  cfg.solver = s.solver.kind;
  cfg.r = s.solver.r;
  cfg.D = s.solver.D;
  cfg.local_solver = s.solver.local_solver;
  cfg.bnb_node_cap = s.solver.node_cap;
  cfg.local_solve_parallelism = s.solver.parallelism;
  cfg.use_memoized_covers = s.solver.memoized_covers;
  cfg.ptas_epsilon = s.solver.epsilon;
  cfg.timing = s.timing;
  cfg.seed = s.run.seed;
  cfg.count_messages = s.run.count_messages;
  cfg.series_stride =
      s.run.series_stride > 0
          ? s.run.series_stride
          : static_cast<int>(std::max<std::int64_t>(1, s.run.slots / 100));
  return cfg;
}

// ------------------------------------------------------- enum <-> string

// One table per enum: from_string, _key, and _keys all derive from it, so
// adding a kind updates parsing, serialization, error messages, and the
// CLI's `list` output together.
namespace {

constexpr std::pair<const char*, SolverKind> kSolverKinds[] = {
    {"distributed", SolverKind::kDistributedPtas},
    {"centralized", SolverKind::kCentralizedPtas},
    {"greedy", SolverKind::kGreedy},
    {"exact", SolverKind::kExact},
};

constexpr std::pair<const char*, LocalSolverKind> kLocalSolvers[] = {
    {"exact", LocalSolverKind::kExact},
    {"greedy", LocalSolverKind::kGreedy},
};

template <typename Table>
std::vector<std::string> table_keys(const Table& table) {
  std::vector<std::string> out;
  for (const auto& [key, kind] : table) out.emplace_back(key);
  return out;
}

}  // namespace

const std::vector<std::string>& solver_kind_keys() {
  static const std::vector<std::string> keys = table_keys(kSolverKinds);
  return keys;
}

const std::vector<std::string>& local_solver_keys() {
  static const std::vector<std::string> keys = table_keys(kLocalSolvers);
  return keys;
}

SolverKind solver_kind_from_string(const std::string& s) {
  for (const auto& [key, kind] : kSolverKinds)
    if (s == key) return kind;
  throw ScenarioError("unknown solver kind '" + s +
                      "'; valid: " + join_keys(solver_kind_keys()));
}

const char* solver_kind_key(SolverKind kind) {
  for (const auto& [key, k] : kSolverKinds)
    if (kind == k) return key;
  return "?";
}

LocalSolverKind local_solver_from_string(const std::string& s) {
  for (const auto& [key, kind] : kLocalSolvers)
    if (s == key) return kind;
  throw ScenarioError("unknown local solver '" + s +
                      "'; valid: " + join_keys(local_solver_keys()));
}

const char* local_solver_key(LocalSolverKind kind) {
  for (const auto& [key, k] : kLocalSolvers)
    if (kind == k) return key;
  return "?";
}

PolicyKind policy_kind_from_string(const std::string& s) {
  if (s == "cab") return PolicyKind::kCab;
  if (s == "llr") return PolicyKind::kLlr;
  if (s == "ucb1") return PolicyKind::kUcb1;
  if (s == "greedy") return PolicyKind::kGreedy;
  if (s == "eps") return PolicyKind::kEpsGreedy;
  if (s == "thompson") return PolicyKind::kThompson;
  throw ScenarioError("policy '" + s +
                      "' has no built-in PolicyKind; built-ins: cab, llr, "
                      "ucb1, greedy, eps, thompson");
}

const char* policy_kind_key(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kCab: return "cab";
    case PolicyKind::kLlr: return "llr";
    case PolicyKind::kUcb1: return "ucb1";
    case PolicyKind::kGreedy: return "greedy";
    case PolicyKind::kEpsGreedy: return "eps";
    case PolicyKind::kThompson: return "thompson";
  }
  return "?";
}

net::MembershipMode membership_mode_from_string(const std::string& s) {
  if (s == "omniscient") return net::MembershipMode::kOmniscient;
  if (s == "view_sync") return net::MembershipMode::kViewSync;
  throw ScenarioError("unknown net.membership '" + s +
                      "'; valid: omniscient, view_sync");
}

const char* membership_mode_key(net::MembershipMode mode) {
  switch (mode) {
    case net::MembershipMode::kOmniscient: return "omniscient";
    case net::MembershipMode::kViewSync: return "view_sync";
  }
  return "?";
}

TransportKind transport_kind_from_string(const std::string& s) {
  if (s == "inprocess") return TransportKind::kInProcess;
  if (s == "udp") return TransportKind::kUdp;
  throw ScenarioError("unknown net.transport '" + s +
                      "'; valid: inprocess, udp");
}

const char* transport_kind_key(TransportKind kind) {
  switch (kind) {
    case TransportKind::kInProcess: return "inprocess";
    case TransportKind::kUdp: return "udp";
  }
  return "?";
}

}  // namespace mhca::scenario
