#include "scenario/runner.h"

#include <utility>

#include "dynamics/dynamic_network.h"
#include "dynamics/registries.h"
#include "obs/metrics.h"
#include "obs/publish.h"
#include "scenario/registries.h"
#include "util/assert.h"
#include "util/hash.h"

namespace mhca::scenario {

namespace {

std::unique_ptr<ChannelModel> build_channel(const Scenario& s, int num_nodes,
                                            Rng& rng) {
  const ChannelBuildContext ctx{num_nodes, s.num_channels, s.run.slots};
  return channel_registry().create(s.channel.kind, s.channel.params, ctx, rng);
}

}  // namespace

net::NetConfig to_net_config(const Scenario& s, int num_nodes) {
  net::NetConfig cfg;
  cfg.r = s.solver.r;
  cfg.D = s.solver.D;
  cfg.policy = policy_kind_from_string(s.policy.kind);
  cfg.policy_params = builtin_policy_params(s.policy.params, num_nodes);
  cfg.local_solver = s.solver.local_solver;
  cfg.bnb_node_cap = s.solver.node_cap;
  cfg.use_memoized_covers = s.solver.memoized_covers;
  cfg.drop_prob = s.net.drop_prob;
  cfg.drop_seed = s.net.drop_seed;
  cfg.dup_prob = s.net.dup_prob;
  cfg.reorder_prob = s.net.reorder_prob;
  cfg.delay_slots_max = s.net.delay_slots_max;
  cfg.membership = membership_mode_from_string(s.net.membership);
  cfg.hello_timeout_slots = s.net.hello_timeout_slots;
  cfg.hello_max_retries = s.net.hello_max_retries;
  cfg.backoff_base = s.net.backoff_base;
  cfg.mtu = s.net.mtu;
  return cfg;
}

ChannelAccessConfig to_channel_access_config(const Scenario& s,
                                             int num_nodes) {
  ChannelAccessConfig cfg;
  cfg.num_channels = s.num_channels;
  cfg.policy = policy_kind_from_string(s.policy.kind);
  cfg.policy_params = builtin_policy_params(s.policy.params, num_nodes);
  cfg.solver = s.solver.kind;
  cfg.r = s.solver.r;
  cfg.D = s.solver.D;
  cfg.local_solver = s.solver.local_solver;
  cfg.bnb_node_cap = s.solver.node_cap;
  cfg.ptas_epsilon = s.solver.epsilon;
  cfg.local_solve_parallelism = s.solver.parallelism;
  cfg.use_memoized_covers = s.solver.memoized_covers;
  cfg.timing = s.timing;
  cfg.update_period = s.run.update_period;
  cfg.seed = s.run.seed;
  cfg.count_messages = s.run.count_messages;
  cfg.series_stride = to_simulation_config(s).series_stride;
  return cfg;
}

std::uint64_t dynamics_seed_of(const Scenario& s, std::uint64_t base_seed) {
  if (s.dynamics.seed != 0) return s.dynamics.seed;
  // Mixed so nearby run seeds don't produce correlated churn streams.
  return splitmix64(base_seed);
}

struct ScenarioRunner::Parts {
  Scenario s;
  ConflictGraph network;
  std::unique_ptr<ChannelModel> model;
};

// The build order fixes the Rng discipline of a scenario: one master
// Rng(run.seed) first generates the topology, then the channel model — the
// exact sequence hand-written experiments in this repo follow, which is what
// makes scenario-vs-legacy results byte-identical (tests/scenario_test.cc).
ScenarioRunner::Parts ScenarioRunner::make_parts(Scenario s) {
  validate_fields(s);
  Rng rng(s.run.seed);
  ConflictGraph network =
      topology_registry().create(s.topology.kind, s.topology.params, rng);
  std::unique_ptr<ChannelModel> model;
  if (!s.channel.kind.empty())
    model = build_channel(s, network.num_nodes(), rng);
  return Parts{std::move(s), std::move(network), std::move(model)};
}

ScenarioRunner::Parts ScenarioRunner::make_parts(Scenario s,
                                                 ConflictGraph network) {
  validate_fields(s);
  std::unique_ptr<ChannelModel> model;
  if (!s.channel.kind.empty()) {
    Rng rng(s.run.seed);
    model = build_channel(s, network.num_nodes(), rng);
  }
  return Parts{std::move(s), std::move(network), std::move(model)};
}

ScenarioRunner::ScenarioRunner(Parts parts)
    : s_(std::move(parts.s)),
      network_(std::move(parts.network)),
      ecg_(network_, s_.num_channels),
      model_(std::move(parts.model)),
      policy_(policy_registry().create(s_.policy.kind, s_.policy.params,
                                       PolicyBuildContext{
                                           network_.num_nodes()})) {}

ScenarioRunner::ScenarioRunner(Scenario s)
    : ScenarioRunner(make_parts(std::move(s))) {}

ScenarioRunner::ScenarioRunner(Scenario s, ConflictGraph network)
    : ScenarioRunner(make_parts(std::move(s), std::move(network))) {}

const ChannelModel& ScenarioRunner::model() const {
  MHCA_ASSERT(model_ != nullptr,
              "scenario has no built channel model ([channel] kind is empty)");
  return *model_;
}

SimulationResult ScenarioRunner::run() const {
  if (!model_)
    throw ScenarioError(
        "scenario has no channel model; run_with() an external one");
  return run_with(*model_);
}

dynamics::DynamicNetwork ScenarioRunner::make_dynamic_network(
    std::uint64_t base_seed) const {
  MHCA_ASSERT(is_dynamic(s_), "make_dynamic_network on a static scenario");
  Rng rng(dynamics_seed_of(s_, base_seed));
  const dynamics::DynamicsBuildContext ctx{&network_, s_.run.slots};
  std::unique_ptr<dynamics::DynamicsModel> model =
      dynamics::dynamics_registry().create(s_.dynamics.model.kind,
                                           s_.dynamics.model.params, ctx, rng);
  dynamics::DynamicNetwork dyn(network_, s_.num_channels, std::move(model),
                               s_.dynamics.incremental);
  // Batched maintenance aligns the structural flushes with the decision
  // slots; with update_period == 1 every slot decides, so eager == batched.
  if (s_.dynamics.batch && s_.run.update_period > 1)
    dyn.set_batch_period(s_.run.update_period);
  return dyn;
}

ChannelAccessScheme ScenarioRunner::make_scheme() const {
  if (is_dynamic(s_))
    throw ScenarioError(
        "make_scheme() drives the static step API; dynamic scenarios run "
        "through run()/run_net() (set dynamics.kind=static to step by hand)");
  return ChannelAccessScheme(
      network_, to_channel_access_config(s_, network_.num_nodes()));
}

SimulationResult ScenarioRunner::run_with(const ChannelModel& model) const {
  if (is_dynamic(s_)) {
    // Each run gets a fresh topology trajectory from slot 1: the dynamic
    // network copies this runner's base graph, so repeated runs (and the
    // runner's own components) never see a half-evolved topology.
    dynamics::DynamicNetwork dyn = make_dynamic_network(s_.run.seed);
    Simulator sim(dyn.ecg(), model, *policy_, to_simulation_config(s_), &dyn);
    return sim.run();
  }
  Simulator sim(ecg_, model, *policy_, to_simulation_config(s_));
  return sim.run();
}

ReplicationReport ScenarioRunner::replicate() const {
  if (s_.replication.replications < 1)
    throw ScenarioError(
        "replicate() needs replication.replications >= 1 (got " +
        std::to_string(s_.replication.replications) + ")");
  if (s_.channel.kind.empty())
    throw ScenarioError("replicate() needs a scenario channel model");
  const Scenario& s = s_;
  const ExtendedConflictGraph& ecg = ecg_;
  const ConflictGraph& network = network_;
  const IndexPolicy& policy = *policy_;
  const ScenarioRunner& self = *this;
  // Fixed base topology, fresh channel realization per seed (the repo's
  // replication convention) — and, for dynamic scenarios, a fresh topology
  // trajectory per seed unless dynamics.seed pins one. Policies are
  // stateless, so one instance is safely shared across the pool.
  const auto experiment = [&s, &ecg, &network, &policy,
                           &self](std::uint64_t seed) {
    Rng rng(seed * 7919 + 11);
    const std::unique_ptr<ChannelModel> model =
        build_channel(s, network.num_nodes(), rng);
    SimulationConfig cfg = to_simulation_config(s);
    cfg.seed = seed;
    if (is_dynamic(s)) {
      dynamics::DynamicNetwork dyn = self.make_dynamic_network(seed);
      Simulator sim(dyn.ecg(), *model, policy, cfg, &dyn);
      return sim.run();
    }
    Simulator sim(ecg, *model, policy, cfg);
    return sim.run();
  };
  ReplicationConfig rcfg;
  rcfg.replications = s_.replication.replications;
  rcfg.seed0 = s_.replication.seed0;
  rcfg.parallelism = s_.replication.parallelism;
  return mhca::replicate(experiment, rcfg);
}

NetRunSummary ScenarioRunner::run_net() const {
  return run_net_impl(nullptr);
}

NetRunSummary ScenarioRunner::run_net_sharded(
    net::Transport& transport) const {
  if (is_dynamic(s_))
    throw ScenarioError(
        "run_net_sharded() supports static scenarios only (sharded churn "
        "rediscovery would need its own exchange barrier)");
  if (membership_mode_from_string(s_.net.membership) !=
      net::MembershipMode::kOmniscient)
    throw ScenarioError(
        "run_net_sharded() requires net.membership = omniscient (the "
        "sharded runtime cannot replay the view-sync membership phase's "
        "same-pass hello responses yet)");
  return run_net_impl(&transport);
}

NetRunSummary ScenarioRunner::run_net_impl(net::Transport* transport) const {
  if (!model_)
    throw ScenarioError("run_net() needs a scenario channel model");
  if (s_.run.update_period != 1)
    throw ScenarioError(
        "run_net() decides every round and does not implement "
        "run.update_period = " + std::to_string(s_.run.update_period) +
        "; set run.update_period=1 for the message-level runtime");
  const net::NetConfig net_cfg = to_net_config(s_, network_.num_nodes());
  const bool view_sync =
      net_cfg.membership == net::MembershipMode::kViewSync;
  // The telemetry registry is the single source of truth for every numeric
  // field of the summary: the run publishes into it, and the summary below
  // is *derived* from registry lookups — no field-by-field mirror to drift.
  // When no session registry is installed (obs::set_metrics), a local
  // scratch registry plays the same role, so the data flow — and therefore
  // every decision — is identical with observability on or off.
  obs::MetricsRegistry local_registry;
  obs::MetricsRegistry* const reg =
      obs::metrics() != nullptr ? obs::metrics() : &local_registry;
  NetRunSummary out;
  out.decision_digest = 0xDEC15105;  // non-zero init: an empty run digests
  const auto drive = [&](net::DistributedRuntime& runtime,
                         dynamics::DynamicNetwork* dyn) {
    obs::Counter& conflicts = reg->counter("decision.conflicts");
    obs::Counter& tx_abstained = reg->counter("decision.tx_abstained");
    obs::Histogram& round_observed = reg->histogram("decision.round_observed");
    obs::Histogram& round_strategy_size =
        reg->histogram("decision.round_strategy_size");
    double total_observed = 0.0;
    for (std::int64_t round = 1; round <= s_.run.slots; ++round) {
      if (dyn != nullptr && round > 1) {
        const dynamics::SlotChange& ch = dyn->advance(round);
        if (ch.changed) {
          // View-sync agents get only link-layer truth (their own direct
          // neighbors, their own on/off state); omniscient agents get the
          // god's-eye scoped rediscovery.
          if (view_sync)
            runtime.on_wire_change(ch.touched_vertices,
                                   dyn->active_vertices());
          else
            runtime.on_topology_change(ch.touched_vertices,
                                       dyn->active_vertices());
        }
      }
      net::NetRoundResult res = runtime.step();
      total_observed += res.observed_sum;
      round_observed.observe(res.observed_sum);
      round_strategy_size.observe(static_cast<double>(res.strategy.size()));
      if (res.conflict) conflicts.inc();
      tx_abstained.add(res.tx_abstained);
      // Every round's winner set, in round order: the decisions themselves,
      // not just the wire traffic — shard runs must agree on this digest.
      out.decision_digest = hash_combine(
          out.decision_digest, static_cast<std::uint64_t>(res.round));
      for (int v : res.strategy)
        out.decision_digest =
            hash_combine(out.decision_digest, static_cast<std::uint64_t>(v));
      out.last_strategy = std::move(res.strategy);
    }
    reg->counter("decision.rounds").add(runtime.rounds_run());
    reg->gauge("decision.total_observed").set(total_observed);
    reg->gauge("decision.strategy_size")
        .set(static_cast<double>(out.last_strategy.size()));
    reg->gauge("decision.max_table_size")
        .set(static_cast<double>(runtime.max_table_size()));
    obs::publish_membership_counters(*reg, runtime.counters());
    obs::publish_channel_stats(*reg, runtime.channel_stats());
    obs::publish_transport_stats(*reg, runtime.transport_stats());
    // ---- The summary, read back out of the registry. The two 64-bit
    // digests stay direct: they are identities, not measurements, and a
    // registry of doubles cannot hold them exactly (> 2^53).
    out.rounds = reg->counter_value("decision.rounds");
    out.conflicts = static_cast<int>(reg->counter_value("decision.conflicts"));
    out.tx_abstained = reg->counter_value("decision.tx_abstained");
    out.total_observed = reg->gauge_value("decision.total_observed");
    out.max_table_size = static_cast<std::size_t>(
        reg->gauge_value("decision.max_table_size"));
    out.retries = reg->counter_value("membership.retries");
    out.timeouts = reg->counter_value("membership.timeouts");
    out.view_changes = reg->counter_value("membership.view_changes");
    out.stale_decisions = reg->counter_value("membership.stale_decisions");
    out.messages = reg->counter_value("channel.messages");
    out.drops = reg->counter_value("channel.drops");
    out.duplicates = reg->counter_value("channel.duplicates");
    out.deferred = reg->counter_value("channel.deferred");
    out.bytes_on_wire = reg->counter_value("channel.bytes_on_wire");
    out.fragments = reg->counter_value("channel.fragments");
    for (int t = 0; t < net::kNumMsgTypes; ++t) {
      const char* label = obs::msg_type_label(t);
      out.messages_by_type[t] =
          reg->counter_value(std::string("channel.messages.") + label);
      out.bytes_by_type[t] =
          reg->counter_value(std::string("channel.bytes.") + label);
    }
    out.trace_hash = runtime.channel().trace_hash();
  };
  if (is_dynamic(s_)) {
    dynamics::DynamicNetwork dyn = make_dynamic_network(s_.run.seed);
    net::DistributedRuntime runtime(dyn.ecg(), *model_, net_cfg);
    drive(runtime, &dyn);
  } else if (transport != nullptr) {
    net::DistributedRuntime runtime(ecg_, *model_, net_cfg, *transport);
    drive(runtime, nullptr);
  } else {
    net::DistributedRuntime runtime(ecg_, *model_, net_cfg);
    drive(runtime, nullptr);
  }
  return out;
}

}  // namespace mhca::scenario
