#include "scenario/runner.h"

#include <utility>

#include "scenario/registries.h"
#include "util/assert.h"

namespace mhca::scenario {

namespace {

std::unique_ptr<ChannelModel> build_channel(const Scenario& s, int num_nodes,
                                            Rng& rng) {
  const ChannelBuildContext ctx{num_nodes, s.num_channels, s.run.slots};
  return channel_registry().create(s.channel.kind, s.channel.params, ctx, rng);
}

}  // namespace

net::NetConfig to_net_config(const Scenario& s, int num_nodes) {
  net::NetConfig cfg;
  cfg.r = s.solver.r;
  cfg.D = s.solver.D;
  cfg.policy = policy_kind_from_string(s.policy.kind);
  cfg.policy_params = builtin_policy_params(s.policy.params, num_nodes);
  cfg.local_solver = s.solver.local_solver;
  cfg.bnb_node_cap = s.solver.node_cap;
  cfg.use_memoized_covers = s.solver.memoized_covers;
  return cfg;
}

struct ScenarioRunner::Parts {
  Scenario s;
  ConflictGraph network;
  std::unique_ptr<ChannelModel> model;
};

// The build order fixes the Rng discipline of a scenario: one master
// Rng(run.seed) first generates the topology, then the channel model — the
// exact sequence hand-written experiments in this repo follow, which is what
// makes scenario-vs-legacy results byte-identical (tests/scenario_test.cc).
ScenarioRunner::Parts ScenarioRunner::make_parts(Scenario s) {
  validate_fields(s);
  Rng rng(s.run.seed);
  ConflictGraph network =
      topology_registry().create(s.topology.kind, s.topology.params, rng);
  std::unique_ptr<ChannelModel> model;
  if (!s.channel.kind.empty())
    model = build_channel(s, network.num_nodes(), rng);
  return Parts{std::move(s), std::move(network), std::move(model)};
}

ScenarioRunner::Parts ScenarioRunner::make_parts(Scenario s,
                                                 ConflictGraph network) {
  validate_fields(s);
  std::unique_ptr<ChannelModel> model;
  if (!s.channel.kind.empty()) {
    Rng rng(s.run.seed);
    model = build_channel(s, network.num_nodes(), rng);
  }
  return Parts{std::move(s), std::move(network), std::move(model)};
}

ScenarioRunner::ScenarioRunner(Parts parts)
    : s_(std::move(parts.s)),
      network_(std::move(parts.network)),
      ecg_(network_, s_.num_channels),
      model_(std::move(parts.model)),
      policy_(policy_registry().create(s_.policy.kind, s_.policy.params,
                                       PolicyBuildContext{
                                           network_.num_nodes()})) {}

ScenarioRunner::ScenarioRunner(Scenario s)
    : ScenarioRunner(make_parts(std::move(s))) {}

ScenarioRunner::ScenarioRunner(Scenario s, ConflictGraph network)
    : ScenarioRunner(make_parts(std::move(s), std::move(network))) {}

const ChannelModel& ScenarioRunner::model() const {
  MHCA_ASSERT(model_ != nullptr,
              "scenario has no built channel model ([channel] kind is empty)");
  return *model_;
}

SimulationResult ScenarioRunner::run() const {
  if (!model_)
    throw ScenarioError(
        "scenario has no channel model; run_with() an external one");
  return run_with(*model_);
}

SimulationResult ScenarioRunner::run_with(const ChannelModel& model) const {
  Simulator sim(ecg_, model, *policy_, to_simulation_config(s_));
  return sim.run();
}

ReplicationReport ScenarioRunner::replicate() const {
  if (s_.replication.replications < 1)
    throw ScenarioError(
        "replicate() needs replication.replications >= 1 (got " +
        std::to_string(s_.replication.replications) + ")");
  if (s_.channel.kind.empty())
    throw ScenarioError("replicate() needs a scenario channel model");
  const Scenario& s = s_;
  const ExtendedConflictGraph& ecg = ecg_;
  const IndexPolicy& policy = *policy_;
  // Fixed topology, fresh channel realization per seed (the repo's
  // replication convention). Policies are stateless, so one instance is
  // safely shared across the replication pool.
  const auto experiment = [&s, &ecg, &policy](std::uint64_t seed) {
    Rng rng(seed * 7919 + 11);
    const std::unique_ptr<ChannelModel> model =
        build_channel(s, ecg.num_nodes(), rng);
    SimulationConfig cfg = to_simulation_config(s);
    cfg.seed = seed;
    Simulator sim(ecg, *model, policy, cfg);
    return sim.run();
  };
  ReplicationConfig rcfg;
  rcfg.replications = s_.replication.replications;
  rcfg.seed0 = s_.replication.seed0;
  rcfg.parallelism = s_.replication.parallelism;
  return mhca::replicate(experiment, rcfg);
}

NetRunSummary ScenarioRunner::run_net() const {
  if (!model_)
    throw ScenarioError("run_net() needs a scenario channel model");
  if (s_.run.update_period != 1)
    throw ScenarioError(
        "run_net() decides every round and does not implement "
        "run.update_period = " + std::to_string(s_.run.update_period) +
        "; set run.update_period=1 for the message-level runtime");
  net::DistributedRuntime runtime(ecg_, *model_,
                                  to_net_config(s_, network_.num_nodes()));
  NetRunSummary out;
  for (std::int64_t t = 0; t < s_.run.slots; ++t) {
    net::NetRoundResult round = runtime.step();
    out.total_observed += round.observed_sum;
    if (round.conflict) ++out.conflicts;
    out.last_strategy = std::move(round.strategy);
  }
  out.rounds = runtime.rounds_run();
  out.max_table_size = runtime.max_table_size();
  return out;
}

}  // namespace mhca::scenario
