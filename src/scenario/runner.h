// ScenarioRunner — the single engine entry point behind the Scenario API.
//
// Construction resolves the scenario's registry keys into live components:
// master Rng(run.seed) -> topology generator -> extended conflict graph ->
// channel model -> policy. One runner then drives any of the repo's four
// execution engines over those components:
//
//   run()        lockstep Simulator (Algorithm 2, the benchmarks' engine)
//   run_with(m)  same, against an externally owned ChannelModel (the facade
//                runs its batch mode through the identical scenario-derived
//                SimulationConfig over its own graph/policy)
//   replicate()  multi-seed replication harness (fresh channel realization
//                per seed, seed-order-deterministic thread pool)
//   run_net()    message-level protocol runtime (src/net), one Algorithm-2
//                round per slot
//
// All four read their knobs from the same Scenario (one SolverSpec), so a
// decision taken by run() and run_net() on the same scenario is identical —
// asserted by tests/scenario_test.cc.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "bandit/policy.h"
#include "channel/channel_model.h"
#include "core/channel_access.h"
#include "graph/conflict_graph.h"
#include "graph/extended_graph.h"
#include "net/runtime.h"
#include "scenario/scenario.h"
#include "sim/replication.h"
#include "sim/simulator.h"

namespace mhca::dynamics {
class DynamicNetwork;
}

namespace mhca::scenario {

/// Aggregate of a message-level protocol run (run_net()).
struct NetRunSummary {
  std::int64_t rounds = 0;
  double total_observed = 0.0;     ///< Summed realized throughput.
  std::vector<int> last_strategy;  ///< Winner vertices of the final round.
  std::size_t max_table_size = 0;  ///< Per-vertex space bound O(m).
  int conflicts = 0;               ///< Rounds whose strategy conflicted.
  // --- Robustness telemetry (fault plane + view-sync membership) ---
  std::int64_t retries = 0;          ///< Liveness probes flooded.
  std::int64_t timeouts = 0;         ///< Members that became suspects.
  std::int64_t view_changes = 0;     ///< Membership-epoch advances.
  std::int64_t stale_decisions = 0;  ///< Rounds decided under stale views.
  std::int64_t tx_abstained = 0;     ///< Winners that declined to transmit.
  std::int64_t messages = 0;         ///< Control-channel transmissions.
  std::int64_t drops = 0;            ///< Fault plane: receptions failed.
  std::int64_t duplicates = 0;       ///< Fault plane: duplicate deliveries.
  std::int64_t deferred = 0;         ///< Fault plane: reordered/delayed.
  // --- Wire telemetry (net/wire.h; airtime in real marshalled bytes) ---
  std::int64_t bytes_on_wire = 0;  ///< Encoded bytes billed, dups included.
  std::int64_t fragments = 0;      ///< MTU fragments (= UDP datagram count).
  /// Per-MsgType breakdown, indexed like net::ChannelStats (hello /
  /// weight-update / leader-declare / determination / view-change).
  std::int64_t messages_by_type[net::kNumMsgTypes] = {0, 0, 0, 0, 0};
  std::int64_t bytes_by_type[net::kNumMsgTypes] = {0, 0, 0, 0, 0};
  /// Order-sensitive digest of every flood and delivery — two runs of the
  /// same (seed, schedule) must agree byte for byte.
  std::uint64_t trace_hash = 0;
  /// Digest of every round's winner set, in round order — what a sharded
  /// run must reproduce bit for bit against the single-process run of the
  /// same scenario (CI greps it from both and compares).
  std::uint64_t decision_digest = 0;
};

/// The net::NetConfig a scenario denotes (policy must be a built-in kind;
/// `num_nodes` backs LLR's L-defaults-to-N rule). The runtime implements the
/// distributed protocol, so solver.kind is not consulted. [net] drop_prob /
/// drop_seed ride along, so message-loss runs are declarative.
net::NetConfig to_net_config(const Scenario& s, int num_nodes);

/// The ChannelAccessConfig a scenario denotes — the compat-shim face of the
/// same SolverSpec/RunSpec single source of truth, for callers on the
/// facade's step API (decide()/report() against a user-owned radio
/// environment). The policy must be a built-in kind.
ChannelAccessConfig to_channel_access_config(const Scenario& s,
                                             int num_nodes);

/// The dynamics seed a run derives from `base_seed` (the run seed, or one
/// replication's seed): dynamics.seed when pinned, else a fixed mix of
/// base_seed — so churn replicates exactly like the channel realization.
std::uint64_t dynamics_seed_of(const Scenario& s, std::uint64_t base_seed);

class ScenarioRunner {
 public:
  /// Build every component from the registries. Throws ScenarioError with
  /// the offending key/name on any unknown kind or parameter.
  explicit ScenarioRunner(Scenario s);

  /// Use an externally built network instead of the topology spec (for
  /// callers that own their graph). The channel spec may be empty, in which
  /// case only run_with() is available.
  ScenarioRunner(Scenario s, ConflictGraph network);

  const Scenario& scenario() const { return s_; }
  const ConflictGraph& network() const { return network_; }
  const ExtendedConflictGraph& extended_graph() const { return ecg_; }
  bool has_model() const { return model_ != nullptr; }
  const ChannelModel& model() const;
  const IndexPolicy& policy() const { return *policy_; }

  /// The configs this scenario denotes, for callers that drive an engine
  /// directly (benchmark grids use engine_config()).
  SimulationConfig simulation_config() const {
    return to_simulation_config(s_);
  }
  DistributedPtasConfig engine_config() const {
    return s_.solver.engine_config(s_.run.count_messages);
  }

  /// One full simulation of the scenario (its channel model, its seed).
  SimulationResult run() const;

  /// One full simulation against an external channel model.
  SimulationResult run_with(const ChannelModel& model) const;

  /// Replicate the scenario across replication.replications seeds: each
  /// seed gets a fresh channel realization on the fixed topology. Requires
  /// replications >= 1.
  ReplicationReport replicate() const;

  /// Drive the message-level runtime for run.slots rounds. Dynamic
  /// scenarios apply each slot's GraphDelta between protocol rounds: agents
  /// within the blast radius re-discover their neighborhoods, and nodes
  /// the model took offline stop participating until they rejoin.
  NetRunSummary run_net() const;

  /// run_net() as one shard of a multi-process run: this process hosts all
  /// agents but originates only the floods of its owned vertices, moving
  /// them over `transport` (net/transport.h). The summary — decisions,
  /// trace hash, decision digest, byte bill — is identical on every shard
  /// and identical to run_net() of the same scenario. Static scenarios with
  /// omniscient membership only (validate() enforces this for
  /// net.transport = udp). The transport must outlive the call.
  NetRunSummary run_net_sharded(net::Transport& transport) const;

  /// The step-API handle this scenario denotes: a ChannelAccessScheme over
  /// this runner's network, configured from the same SolverSpec — for
  /// user-owned radio environments that call decide()/report() themselves
  /// while describing everything else declaratively. Static scenarios only.
  ChannelAccessScheme make_scheme() const;

  /// Build this scenario's dynamic topology driver seeded from `base_seed`
  /// (see dynamics_seed_of). One driver per run; requires is_dynamic().
  dynamics::DynamicNetwork make_dynamic_network(
      std::uint64_t base_seed) const;

 private:
  struct Parts;  // built graph + model, carried into the delegate ctor
  explicit ScenarioRunner(Parts parts);
  /// Shared body of run_net / run_net_sharded (transport null = classic).
  NetRunSummary run_net_impl(net::Transport* transport) const;
  static Parts make_parts(Scenario s);
  static Parts make_parts(Scenario s, ConflictGraph network);

  Scenario s_;
  ConflictGraph network_;
  ExtendedConflictGraph ecg_;
  std::unique_ptr<ChannelModel> model_;
  std::unique_ptr<IndexPolicy> policy_;
};

}  // namespace mhca::scenario
