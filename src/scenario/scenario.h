// Scenario — one declarative value describing an experiment end to end.
//
// A Scenario names a topology (generator + params), a channel model, a
// learning policy, a solver spec (oracle, r, D, local solver, node cap,
// parallelism), timing/replication/seed settings. Components are referenced
// by registry string keys (scenario/registries.h), so the full evaluation
// grid of the paper — channels x policies x topologies x r/D ablations — is
// data, not code: ScenarioRunner (scenario/runner.h) turns any Scenario into
// a running experiment, and every engine in the repo (facade, simulator,
// replication harness, message-level net runtime) is expressed through it.
//
// Scenarios round-trip through a flat `key = value` text format with
// [section]s (no external deps); see src/scenario/README.md for the spec.
// `apply_override` mutates one dotted key ("policy.kind=thompson"), which is
// how the CLI and the benchmark grids derive cells from a base scenario.
#pragma once

#include <cstdint>
#include <string>

#include "bandit/policy.h"
#include "mwis/distributed_ptas.h"
#include "mwis/mwis.h"
#include "net/view.h"
#include "scenario/params.h"
#include "sim/config.h"
#include "sim/timing.h"

namespace mhca::scenario {

/// A registry-resolved component: which factory, and its parameters.
struct ComponentSpec {
  std::string kind;
  ParamMap params;

  bool operator==(const ComponentSpec&) const = default;
};

/// The strategy-decision oracle, fully specified. Single source of truth
/// for solver knobs across every decision path: conversions below stamp it
/// into SimulationConfig / DistributedPtasConfig / net::NetConfig, and
/// scenario.cc static_asserts that all default values agree with
/// kDefaultBnbNodeCap and with each other (the PR-2 drift guard).
struct SolverSpec {
  SolverKind kind = SolverKind::kDistributedPtas;
  int r = 2;                ///< Local-neighborhood radius.
  int D = 4;                ///< Mini-round budget (0 = until all marked).
  LocalSolverKind local_solver = LocalSolverKind::kExact;
  std::int64_t node_cap = kDefaultBnbNodeCap;  ///< Per-solve B&B effort cap.
  /// Threads for per-leader local solves within one decision (0 = one per
  /// hardware thread, 1 = inline). Deterministic at any setting.
  int parallelism = 1;
  bool memoized_covers = false;  ///< See src/mwis/README.md.
  double epsilon = 1.0;          ///< ε for the centralized robust PTAS.

  /// The lockstep-engine configuration this spec denotes.
  DistributedPtasConfig engine_config(bool count_messages = false) const;

  bool operator==(const SolverSpec&) const = default;
};

/// Horizon / bookkeeping of a single run.
struct RunSpec {
  std::int64_t slots = 1000;
  int update_period = 1;  ///< y: strategy refresh every y slots.
  std::uint64_t seed = 1;
  /// Record every k-th slot in the series; 0 (the default) = auto,
  /// max(1, slots/100) — so long horizons don't record millions of points.
  int series_stride = 0;
  bool count_messages = false;

  bool operator==(const RunSpec&) const = default;
};

/// Topology dynamics over the run ([dynamics] section; src/dynamics). The
/// model is a registry component like topologies/channels/policies —
/// `kind = static` (the default) means the graph is frozen at slot 0 and
/// every engine takes its original fast path.
struct DynamicsSpec {
  ComponentSpec model{"static", {}};
  /// Maintain graph + neighborhood cache incrementally (scoped
  /// invalidation); false = rebuild everything from scratch on every change
  /// (the reference mode — byte-identical results, bench baseline).
  bool incremental = true;
  /// Coalesce the model's per-slot deltas and apply them as one net change
  /// per run.update_period slots (dynamics::DeltaBatch): structural
  /// maintenance is paid only on decision slots, and add/remove churn
  /// inside a window cancels. Between decisions the engines see the
  /// window-start topology — an explicit staleness trade-off, so off by
  /// default; no effect when update_period == 1.
  bool batch = false;
  /// Seed of the dynamics randomness; 0 (default) derives it from the run
  /// seed (and, under replication, from each replication's seed), so churn
  /// is replicated like the channel realization is.
  std::uint64_t seed = 0;

  bool operator==(const DynamicsSpec&) const = default;
};

/// Message-level runtime knobs ([net] section): the control-channel
/// fault-injection plane and the view-synchronous membership layer,
/// declarative at last. Numeric defaults are static_assert-pinned to
/// net::NetConfig in scenario.cc (the PR-2 drift guard); membership is the
/// string form of net::MembershipMode ("omniscient" | "view_sync").
struct NetSpec {
  double drop_prob = 0.0;     ///< Per-flood reception failure probability.
  std::uint64_t drop_seed = 0;
  double dup_prob = 0.0;      ///< Duplicate-delivery probability.
  double reorder_prob = 0.0;  ///< Deferred-delivery probability.
  int delay_slots_max = 0;    ///< Max deferral in slots (0 = same flood).
  std::string membership = "omniscient";
  int hello_timeout_slots = 4;  ///< Silence (slots) before suspicion.
  int hello_max_retries = 3;    ///< Liveness probes before eviction.
  int backoff_base = 2;         ///< Probe k waits backoff_base^k slots.
  /// How the --net runtime moves encoded floods: "inprocess" (every flood
  /// still round-trips through wire bytes) or "udp" (one real process per
  /// shard on loopback sockets; see net/transport.h). String form of
  /// TransportKind.
  std::string transport = "inprocess";
  /// Datagram size limit for fragment accounting and the UDP transport;
  /// pinned to net::wire::kDefaultMtu / net::NetConfig by static_asserts.
  int mtu = 1400;
  /// Shard count for transport = udp: the scenario runs as `shard`
  /// cooperating processes (`mhca_sim run --net --shard k/N`), each owning
  /// the floods of vertices v with v % N == k. 1 = single process.
  int shard = 1;

  bool operator==(const NetSpec&) const = default;
};

/// Observability ([obs] section; src/obs/README.md): where to write the
/// Chrome trace-event timeline and the metrics snapshot. Empty paths (the
/// default) leave observability off — the compiled-in-but-disabled fast
/// path whose overhead bench_decision_path gates. `mhca_sim run
/// --trace=PATH --metrics=PATH` is sugar for overriding these.
struct ObsSpec {
  std::string trace;    ///< Trace-event JSON output path ("" = off).
  std::string metrics;  ///< Metrics snapshot path; .csv = CSV, else JSON.

  bool operator==(const ObsSpec&) const = default;
};

/// Multi-seed replication. replications = 0 means a plain single run.
struct ReplicationSpec {
  int replications = 0;
  std::uint64_t seed0 = 1;
  /// Worker threads across replications (0 = one per hardware thread).
  int parallelism = 0;

  bool operator==(const ReplicationSpec&) const = default;
};

struct Scenario {
  std::string name = "scenario";
  ComponentSpec topology{"geometric", {}};
  ComponentSpec channel{"gaussian", {}};
  int num_channels = 8;  ///< M ([channel] key `channels`).
  ComponentSpec policy{"cab", {}};
  DynamicsSpec dynamics;
  NetSpec net;
  SolverSpec solver;
  RunSpec run;
  ReplicationSpec replication;
  RoundTiming timing;
  ObsSpec obs;

  bool operator==(const Scenario&) const = default;
};

/// True iff the scenario's topology changes over time (its [dynamics]
/// model is anything but the built-in "static" no-op).
bool is_dynamic(const Scenario& s);

// ------------------------------------------------------------- text format

/// Parse the scenario text format. Throws ScenarioError naming the offending
/// line/section/key and listing the valid alternatives.
Scenario parse_scenario(const std::string& text);

/// Parse a scenario file (throws ScenarioError if unreadable).
Scenario parse_scenario_file(const std::string& path);

/// Canonical text form; parse(serialize(s)) == s.
std::string serialize_scenario(const Scenario& s);

/// Apply one "section.key=value" override (top-level: "name=value").
void apply_override(Scenario& s, const std::string& spec);

/// Range-check the fixed numeric fields (slots, r, strides, ...) without
/// touching the registries. ScenarioRunner calls this at construction, so
/// out-of-range fields fail with an actionable ScenarioError naming the
/// scenario key instead of a deep MHCA_ASSERT later.
void validate_fields(const Scenario& s);

/// Full validation without building anything: validate_fields + component
/// kinds exist and their params use accepted keys.
void validate(const Scenario& s);

// -------------------------------------------------------------- conversions

/// The SimulationConfig this scenario denotes (solver + run + timing).
SimulationConfig to_simulation_config(const Scenario& s);

// ------------------------------------------------------- enum <-> string

SolverKind solver_kind_from_string(const std::string& s);
const char* solver_kind_key(SolverKind kind);
LocalSolverKind local_solver_from_string(const std::string& s);
const char* local_solver_key(LocalSolverKind kind);
/// All valid keys, from the same tables as the mappings above (what
/// `mhca_sim list` prints).
const std::vector<std::string>& solver_kind_keys();
const std::vector<std::string>& local_solver_keys();
/// Maps the built-in policy registry keys to the PolicyKind enum (used by
/// compatibility shims and the message-level runtime config). Throws for
/// registry keys without an enum value (user-registered policies).
PolicyKind policy_kind_from_string(const std::string& s);
const char* policy_kind_key(PolicyKind kind);
/// net.membership <-> net::MembershipMode ("omniscient" | "view_sync").
/// Throws ScenarioError listing the valid keys on anything else.
net::MembershipMode membership_mode_from_string(const std::string& s);
const char* membership_mode_key(net::MembershipMode mode);

/// How a --net run moves its encoded floods (net.transport).
enum class TransportKind {
  kInProcess,  ///< One process; floods still round-trip through wire bytes.
  kUdp,        ///< One process per shard over loopback UDP sockets.
};

/// net.transport <-> TransportKind ("inprocess" | "udp").
/// Throws ScenarioError listing the valid keys on anything else.
TransportKind transport_kind_from_string(const std::string& s);
const char* transport_kind_key(TransportKind kind);

}  // namespace mhca::scenario
