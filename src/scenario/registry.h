// Generic string-keyed component registry.
//
// A Registry<R(Args...)> maps a component name to a factory taking a
// ParamMap (the component's scenario parameters) plus fixed build arguments
// (e.g. an Rng, a build context). Each entry declares the parameter keys it
// accepts, so `create` can reject a typo with an actionable message *before*
// the factory runs: the error names the bad key and lists the valid ones.
//
// Registries are how "scenario diversity becomes data": a new channel model,
// learning policy, or topology generator registers itself once under a
// string key and is immediately reachable from every scenario file, CLI
// override, and benchmark grid with no new call sites. Built-ins register in
// scenario/registries.cc; downstream code extends a registry at startup via
// `add` (see src/scenario/README.md).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "scenario/params.h"

namespace mhca::scenario {

/// Entry key list wildcard: a factory that validates (or forwards) its own
/// parameters registers with kOpenKeys among its accepted keys.
inline const char* const kOpenKeys = "*";

template <typename Signature>
class Registry;

template <typename R, typename... Args>
class Registry<R(Args...)> {
 public:
  using Factory = std::function<R(const ParamMap&, Args...)>;

  /// `what` names the component family in error messages ("channel model").
  explicit Registry(std::string what) : what_(std::move(what)) {}

  /// Register `name`. `accepted_keys` are the parameter keys the factory
  /// understands; include kOpenKeys ("*") to skip unknown-key validation
  /// (for factories that forward parameters, e.g. the trace recorder).
  /// `required_keys` must be present — checked by validate(), so a missing
  /// key fails at validation time, not only when the factory runs.
  void add(const std::string& name, std::vector<std::string> accepted_keys,
           Factory factory, std::vector<std::string> required_keys = {}) {
    if (contains(name))
      throw ScenarioError("duplicate " + what_ + " '" + name + "'");
    entries_.push_back(Entry{name, std::move(accepted_keys),
                             std::move(required_keys), std::move(factory)});
  }

  bool contains(const std::string& name) const {
    return find(name) != nullptr;
  }

  /// Registered names, in registration order.
  std::vector<std::string> names() const {
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const auto& e : entries_) out.push_back(e.name);
    return out;
  }

  const std::vector<std::string>& accepted_keys(const std::string& name) const {
    return require(name).keys;
  }

  /// Check that `name` exists, `params` only uses accepted keys, and every
  /// required key is present — the validation half of `create`, usable
  /// without building the component.
  void validate(const std::string& name, const ParamMap& params) const {
    const Entry& e = require(name);
    for (const auto& k : e.required)
      if (!params.has(k))
        throw ScenarioError("missing required key '" + k + "' for " + what_ +
                            " '" + name + "'");
    bool open = false;
    for (const auto& k : e.keys) open = open || k == kOpenKeys;
    if (open) return;
    for (const auto& key : params.keys()) {
      bool ok = false;
      for (const auto& k : e.keys) ok = ok || k == key;
      if (!ok)
        throw ScenarioError("unknown key '" + key + "' for " + what_ + " '" +
                            name + "'; accepted keys: " +
                            (e.keys.empty() ? "(none)" : join_keys(e.keys)));
    }
  }

  R create(const std::string& name, const ParamMap& params,
           Args... args) const {
    validate(name, params);
    try {
      return require(name).factory(params, std::forward<Args>(args)...);
    } catch (const ScenarioError&) {
      throw;
    } catch (const std::logic_error& e) {
      // Component preconditions (MHCA_ASSERT) name file/line, not the
      // scenario; wrap them so the user learns which component rejected
      // its parameters.
      throw ScenarioError("cannot build " + what_ + " '" + name +
                          "' from the given parameters: " + e.what());
    }
  }

 private:
  struct Entry {
    std::string name;
    std::vector<std::string> keys;
    std::vector<std::string> required;
    Factory factory;
  };

  const Entry* find(const std::string& name) const {
    for (const auto& e : entries_)
      if (e.name == name) return &e;
    return nullptr;
  }

  const Entry& require(const std::string& name) const {
    const Entry* e = find(name);
    if (!e)
      throw ScenarioError("unknown " + what_ + " '" + name +
                          "'; registered: " + join_keys(names()));
    return *e;
  }

  std::string what_;
  std::vector<Entry> entries_;
};

}  // namespace mhca::scenario
