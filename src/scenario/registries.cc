#include "scenario/registries.h"

#include <algorithm>

#include "channel/adversarial.h"
#include "channel/bernoulli.h"
#include "channel/gaussian.h"
#include "channel/markov.h"
#include "channel/trace.h"
#include "graph/generators.h"

namespace mhca::scenario {

namespace {

int require_int(const ParamMap& p, const std::string& key,
                const std::string& component) {
  if (!p.has(key))
    throw ScenarioError("missing required key '" + key + "' for " + component);
  const int v = checked_int32(p.get_int(key, 0), key);
  if (v < 1)
    throw ScenarioError("bad value " + std::to_string(v) + " for '" + key +
                        "' of " + component + ": must be >= 1");
  return v;
}

// ------------------------------------------------- topology generators

void register_builtin_topologies(TopologyRegistry& reg) {
  reg.add("geometric",
          {"nodes", "avg_degree", "side", "radius", "force_connected",
           "max_attempts"},
          [](const ParamMap& p, Rng& rng) {
            const int n = require_int(p, "nodes", "topology 'geometric'");
            const bool fc = p.get_bool("force_connected", true);
            if (p.has("side") || p.has("radius")) {
              if (!(p.has("side") && p.has("radius")))
                throw ScenarioError(
                    "topology 'geometric' needs both 'side' and 'radius' "
                    "(or neither — then 'avg_degree' sizes the disk)");
              return random_geometric(
                  n, p.get_double("side", 0.0), p.get_double("radius", 0.0),
                  rng, fc,
                  checked_int32(p.get_int("max_attempts", 200), "max_attempts"));
            }
            return random_geometric_avg_degree(
                n, p.get_double("avg_degree", 6.0), rng, fc);
          },
          /*required_keys=*/{"nodes"});
  reg.add(
      "linear", {"nodes"},
      [](const ParamMap& p, Rng&) {
        return linear_network(require_int(p, "nodes", "topology 'linear'"));
      },
      /*required_keys=*/{"nodes"});
  reg.add(
      "grid", {"rows", "cols"},
      [](const ParamMap& p, Rng&) {
        return grid_network(require_int(p, "rows", "topology 'grid'"),
                            require_int(p, "cols", "topology 'grid'"));
      },
      /*required_keys=*/{"rows", "cols"});
  reg.add(
      "complete", {"nodes"},
      [](const ParamMap& p, Rng&) {
        return complete_network(
            require_int(p, "nodes", "topology 'complete'"));
      },
      /*required_keys=*/{"nodes"});
  reg.add(
      "erdos_renyi", {"nodes", "p"},
      [](const ParamMap& p, Rng& rng) {
        return erdos_renyi(require_int(p, "nodes", "topology 'erdos_renyi'"),
                           p.get_double("p", 0.2), rng);
      },
      /*required_keys=*/{"nodes"});
}

// ----------------------------------------------------- channel models

AdversaryKind parse_adversary(const std::string& s) {
  if (s == "drift") return AdversaryKind::kDrift;
  if (s == "swap") return AdversaryKind::kSwap;
  if (s == "ramp") return AdversaryKind::kRamp;
  throw ScenarioError("unknown adversary '" + s +
                      "' for channel model 'adversarial'; "
                      "valid: drift, swap, ramp");
}

void register_builtin_channels(ChannelRegistry& reg) {
  reg.add("gaussian", {"std_frac"},
          [](const ParamMap& p, const ChannelBuildContext& ctx, Rng& rng) {
            return std::unique_ptr<ChannelModel>(
                std::make_unique<GaussianChannelModel>(
                    ctx.num_nodes, ctx.num_channels, rng,
                    p.get_double("std_frac", 0.1)));
          });
  reg.add("bernoulli", {"p_lo", "p_hi"},
          [](const ParamMap& p, const ChannelBuildContext& ctx, Rng& rng) {
            return std::unique_ptr<ChannelModel>(
                std::make_unique<BernoulliChannelModel>(
                    ctx.num_nodes, ctx.num_channels, rng,
                    p.get_double("p_lo", 0.2), p.get_double("p_hi", 0.95)));
          });
  reg.add("markov", {"bad_fraction", "p_lo", "p_hi"},
          [](const ParamMap& p, const ChannelBuildContext& ctx, Rng& rng) {
            return std::unique_ptr<ChannelModel>(
                std::make_unique<GilbertElliottChannelModel>(
                    ctx.num_nodes, ctx.num_channels, rng,
                    p.get_double("bad_fraction", 0.2),
                    p.get_double("p_lo", 0.05), p.get_double("p_hi", 0.3)));
          });
  reg.add("adversarial", {"adversary", "noise_std"},
          [](const ParamMap& p, const ChannelBuildContext& ctx, Rng& rng) {
            return std::unique_ptr<ChannelModel>(
                std::make_unique<AdversarialChannelModel>(
                    ctx.num_nodes, ctx.num_channels,
                    parse_adversary(p.get_string("adversary", "drift")),
                    std::max<std::int64_t>(ctx.horizon, 1), rng,
                    p.get_double("noise_std", 0.02)));
          });
  // Record another model into a replayable trace (the synthetic-substitution
  // path when no measured trace is at hand). Parameters other than `source`
  // and `record_slots` pass through to the source model, which validates
  // them — hence the open key set.
  reg.add("trace", {"source", "record_slots", kOpenKeys},
          [&reg](const ParamMap& p, const ChannelBuildContext& ctx, Rng& rng) {
            const std::string source = p.get_string("source", "gaussian");
            if (source == "trace")
              throw ScenarioError(
                  "channel model 'trace' cannot record itself; pick a "
                  "different 'source'");
            const std::int64_t record_slots = p.get_int(
                "record_slots",
                std::clamp<std::int64_t>(ctx.horizon, 1, 256));
            if (record_slots < 1)
              throw ScenarioError(
                  "bad value " + std::to_string(record_slots) +
                  " for 'record_slots' of channel model 'trace': must be "
                  ">= 1");
            ParamMap source_params;
            for (const auto& [k, v] : p.entries())
              if (k != "source" && k != "record_slots") source_params.set(k, v);
            ChannelBuildContext source_ctx = ctx;
            source_ctx.horizon = record_slots;
            const std::unique_ptr<ChannelModel> src =
                reg.create(source, source_params, source_ctx, rng);
            return std::unique_ptr<ChannelModel>(
                std::make_unique<TraceChannelModel>(
                    record_trace(*src, record_slots)));
          });
}

// -------------------------------------------------- learning policies

void register_builtin_policies(PolicyRegistry& reg) {
  // All built-ins share builtin_policy_params, the single ParamMap ->
  // PolicyParams mapping (also used by to_net_config).
  const auto builtin = [](PolicyKind kind) {
    return [kind](const ParamMap& p, const PolicyBuildContext& ctx) {
      return make_policy(kind, builtin_policy_params(p, ctx.num_nodes));
    };
  };
  reg.add("cab", {}, builtin(PolicyKind::kCab));
  reg.add("llr", {"L"}, builtin(PolicyKind::kLlr));
  reg.add("ucb1", {}, builtin(PolicyKind::kUcb1));
  reg.add("greedy", {}, builtin(PolicyKind::kGreedy));
  reg.add("eps", {"epsilon"}, builtin(PolicyKind::kEpsGreedy));
  reg.add("thompson", {"seed"}, builtin(PolicyKind::kThompson));
}

}  // namespace

PolicyParams builtin_policy_params(const ParamMap& params, int num_nodes) {
  PolicyParams pp;
  pp.llr_max_strategy_len =
      checked_int32(params.get_int("L", num_nodes), "L");
  pp.epsilon = params.get_double("epsilon", pp.epsilon);
  pp.thompson_seed = params.get_uint("seed", pp.thompson_seed);
  return pp;
}

TopologyRegistry& topology_registry() {
  static TopologyRegistry* reg = [] {
    auto* r = new TopologyRegistry("topology");
    register_builtin_topologies(*r);
    return r;
  }();
  return *reg;
}

ChannelRegistry& channel_registry() {
  static ChannelRegistry* reg = [] {
    auto* r = new ChannelRegistry("channel model");
    register_builtin_channels(*r);
    return r;
  }();
  return *reg;
}

PolicyRegistry& policy_registry() {
  static PolicyRegistry* reg = [] {
    auto* r = new PolicyRegistry("policy");
    register_builtin_policies(*r);
    return r;
  }();
  return *reg;
}

}  // namespace mhca::scenario
