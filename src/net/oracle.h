// God's-eye convergence oracle for the view-synchronous runtime (tests and
// benchmarks only — nothing here is information an agent could act on).
//
// The acceptance contract of the membership layer is conditional: the
// message-level runtime must take exactly the lockstep engine's decisions
// *whenever views have converged*, under any fault schedule. This header
// makes "converged" precise and checkable:
//
//   1. every active agent's member table equals the ground-truth
//      (2r+1)-hop ball around it in the current wire,
//   2. every tracked member's adjacency and sufficient statistics equal
//      that member's own live state,
//   3. no agent holds a suspect,
//   4. all active agents of each wire component share one view,
//   5. the channel has no delayed deliveries in flight.
//
// When all five hold, each agent's local picture is exactly the slice of
// global state the lockstep engine reads — so `lockstep_decision` (the
// engine run over weights gathered from the agents' own statistics) must
// predict the runtime's next strategy, winner for winner.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "net/runtime.h"

namespace mhca::net {

struct ConvergenceReport {
  bool members_match = true;    ///< Tables == ground-truth (2r+1)-balls.
  bool adjacency_match = true;  ///< Believed neighbor lists == wire truth.
  bool stats_match = true;      ///< Stored (µ̃, m) == each member's own.
  bool no_suspects = true;
  /// One ViewId per connected component of the wire (islands a churn split
  /// created cannot exchange messages, so their epochs may diverge).
  bool views_equal = true;
  bool no_pending = true;       ///< No delayed deliveries in flight.

  bool converged() const {
    return members_match && adjacency_match && stats_match && no_suspects &&
           views_equal && no_pending;
  }
};

/// Compare every active agent's local picture against the ground truth of
/// `h` (the runtime's current wire). View-sync runtimes only.
ConvergenceReport check_convergence(const DistributedRuntime& rt,
                                    const Graph& h);

/// The strategy the lockstep engine decides for round `t_next` from the
/// agents' own statistics (weights via the runtime's policy) and activity
/// mask — what a converged runtime's step() must produce.
std::vector<int> lockstep_decision(const DistributedRuntime& rt,
                                   const Graph& h, std::int64_t t_next);

}  // namespace mhca::net
