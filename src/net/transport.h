// Pluggable transport: how a sharded protocol run moves encoded floods
// between processes.
//
// Sharding model (see net/runtime.h): every shard hosts all agents and
// replays *every* flood through its local ControlChannel, but only the
// owner shard of a vertex (owner = vertex % shard_count) originates that
// vertex's floods — and only the owner computes its expensive payloads
// (the leader's local MWIS solve travels as bytes, not as recomputation).
// Each protocol phase is one exchange(): every shard deposits the frames
// it originated, and every shard receives the union in canonical
// (origin, seq) order. Replaying that canonical order keeps the global
// flood counter — and with it every fault draw and the trace hash —
// identical on all shards and identical to a single-process run.
//
// exchange() is a barrier: it returns only when every shard's frames for
// the current step have arrived. Three backends:
//
//   LoopbackTransport   shard_count == 1; sorts and returns the caller's
//                       own frames (the degenerate mesh).
//   MemoryMeshGroup     N endpoints in one process synchronized by a
//                       condition-variable barrier — what tests use to run
//                       N genuine shard runtimes against each other without
//                       sockets.
//   UdpTransport        N real processes on loopback UDP: fragments frames
//                       to the MTU, stamps every datagram with a per-sender
//                       sequence number, reassembles, and recovers lost
//                       datagrams with receiver-driven retransmit requests
//                       (loopback UDP can overrun SO_RCVBUF; ~50 ms of
//                       silence triggers a re-request, an overall deadline
//                       fails loudly instead of hanging CI).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "net/wire.h"

namespace mhca::net {

/// One originated flood, as it travels between shards: the encoded message
/// plus the flood parameters a replaying shard needs.
struct FloodFrame {
  int origin = -1;  ///< Originating vertex (unique owner shard).
  int seq = 0;      ///< Per-origin tiebreak within one exchange.
  int ttl = 0;      ///< Flood TTL, replayed verbatim.
  std::vector<std::uint8_t> bytes;  ///< wire::encode of the message.
};

/// Canonical (origin, seq) order — the replay order every shard agrees on.
void sort_frames(std::vector<FloodFrame>& frames);

struct TransportStats {
  std::int64_t exchanges = 0;
  std::int64_t frames_sent = 0;      ///< Locally originated frames.
  std::int64_t frames_received = 0;  ///< Frames from peer shards.
  std::int64_t datagrams_sent = 0;   ///< UDP only (fragments + control).
  std::int64_t datagrams_received = 0;
  std::int64_t bytes_sent = 0;
  std::int64_t bytes_received = 0;
  std::int64_t retransmit_requests = 0;  ///< Sent to stalled peers.
  std::int64_t retransmissions = 0;      ///< Datagrams resent on request.
};

class Transport {
 public:
  virtual ~Transport() = default;

  virtual int shard_index() const = 0;
  virtual int shard_count() const = 0;

  /// Barrier exchange: deposit this shard's frames for the current step;
  /// returns the union of all shards' frames in canonical order. Every
  /// shard must call exchange() the same number of times (the protocol's
  /// control flow is deterministic, so they do). Throws std::runtime_error
  /// with an actionable message if a peer stays silent past the deadline.
  virtual std::vector<FloodFrame> exchange(
      std::vector<FloodFrame> local) = 0;

  /// Linger briefly servicing peers' retransmit requests before teardown
  /// (a shard that finishes first must not take the last step's frames to
  /// the grave). No-op for in-process backends.
  virtual void finish() {}

  const TransportStats& stats() const { return stats_; }

 protected:
  TransportStats stats_;
};

/// The one-shard mesh: exchange() sorts and returns the local frames.
class LoopbackTransport : public Transport {
 public:
  int shard_index() const override { return 0; }
  int shard_count() const override { return 1; }
  std::vector<FloodFrame> exchange(std::vector<FloodFrame> local) override;
};

/// N in-process endpoints over a shared two-phase barrier. Endpoints are
/// driven from N threads (one runtime each); the group must outlive them.
class MemoryMeshGroup {
 public:
  explicit MemoryMeshGroup(int shards);
  ~MemoryMeshGroup();

  Transport& endpoint(int index);

 private:
  struct Shared;
  class Endpoint;
  std::shared_ptr<Shared> shared_;
  std::vector<std::unique_ptr<Endpoint>> endpoints_;
};

struct UdpOptions {
  int port_base = 47310;  ///< Shard k binds 127.0.0.1:(port_base + k).
  int mtu = wire::kDefaultMtu;
  int resend_after_ms = 50;      ///< Silence before a retransmit request.
  int overall_timeout_ms = 30'000;  ///< Hard deadline per exchange.
  int finish_linger_ms = 300;    ///< finish(): serve late re-requests.
};

/// Real sockets on loopback; one process per shard. See net/README.md for
/// the datagram header layout and the recovery protocol.
class UdpTransport : public Transport {
 public:
  /// Binds the shard's socket; throws std::runtime_error (with the errno
  /// string and the port) if the address is unavailable.
  UdpTransport(int shard_index, int shard_count, UdpOptions options = {});
  ~UdpTransport() override;

  UdpTransport(const UdpTransport&) = delete;
  UdpTransport& operator=(const UdpTransport&) = delete;

  int shard_index() const override { return index_; }
  int shard_count() const override { return count_; }
  std::vector<FloodFrame> exchange(std::vector<FloodFrame> local) override;
  void finish() override;

 private:
  struct PeerProgress;
  struct SentStep;

  void send_datagram(int peer, const std::vector<std::uint8_t>& dgram);
  void send_step_to(int peer, const SentStep& step);
  /// Handle one incoming datagram; returns true if it advanced the current
  /// step's collection state.
  bool handle_datagram(const std::uint8_t* data, std::size_t len,
                       std::vector<PeerProgress>& peers);
  void integrate(PeerProgress& peer, std::uint16_t frame,
                 std::uint16_t frag, std::uint16_t frag_count,
                 const std::uint8_t* payload, std::size_t payload_len);

  int index_;
  int count_;
  UdpOptions opt_;
  int fd_ = -1;
  std::uint32_t step_ = 0;
  std::uint32_t send_seq_ = 0;  ///< Per-datagram sequence number.
  /// Recent steps' outgoing datagrams, kept for retransmit requests.
  std::vector<SentStep> history_;
  /// Datagrams from peers already at step_ + 1 while we still collect
  /// step_ (they can be ahead by at most one barrier).
  std::vector<std::vector<std::uint8_t>> ahead_;
};

}  // namespace mhca::net
