#include "net/transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>

#include "util/assert.h"

namespace mhca::net {

void sort_frames(std::vector<FloodFrame>& frames) {
  std::sort(frames.begin(), frames.end(),
            [](const FloodFrame& a, const FloodFrame& b) {
              if (a.origin != b.origin) return a.origin < b.origin;
              return a.seq < b.seq;
            });
}

// ------------------------------------------------------------- loopback

std::vector<FloodFrame> LoopbackTransport::exchange(
    std::vector<FloodFrame> local) {
  ++stats_.exchanges;
  stats_.frames_sent += static_cast<std::int64_t>(local.size());
  sort_frames(local);
  return local;
}

// ---------------------------------------------------------- memory mesh

struct MemoryMeshGroup::Shared {
  std::mutex mu;
  std::condition_variable cv;
  int shards = 1;
  int phase = 0;  ///< 0 = depositing, 1 = collecting.
  int deposited = 0;
  int collected = 0;
  std::vector<FloodFrame> pool;
  std::vector<FloodFrame> merged;
};

class MemoryMeshGroup::Endpoint : public Transport {
 public:
  Endpoint(std::shared_ptr<Shared> shared, int index)
      : shared_(std::move(shared)), index_(index) {}

  int shard_index() const override { return index_; }
  int shard_count() const override { return shared_->shards; }

  std::vector<FloodFrame> exchange(std::vector<FloodFrame> local) override {
    Shared& sh = *shared_;
    const auto mine = static_cast<std::int64_t>(local.size());
    std::unique_lock<std::mutex> lk(sh.mu);
    // Two-phase barrier: wait out any stragglers still collecting the
    // previous step, deposit, and either merge (last depositor) or wait.
    sh.cv.wait(lk, [&] { return sh.phase == 0; });
    for (FloodFrame& f : local) sh.pool.push_back(std::move(f));
    if (++sh.deposited == sh.shards) {
      sh.merged = std::move(sh.pool);
      sh.pool.clear();
      sort_frames(sh.merged);
      sh.collected = 0;
      sh.phase = 1;
      sh.cv.notify_all();
    } else {
      sh.cv.wait(lk, [&] { return sh.phase == 1; });
    }
    std::vector<FloodFrame> out = sh.merged;
    if (++sh.collected == sh.shards) {
      sh.deposited = 0;
      sh.phase = 0;
      sh.cv.notify_all();
    }
    ++stats_.exchanges;
    stats_.frames_sent += mine;
    stats_.frames_received += static_cast<std::int64_t>(out.size()) - mine;
    return out;
  }

 private:
  std::shared_ptr<Shared> shared_;
  int index_;
};

MemoryMeshGroup::MemoryMeshGroup(int shards)
    : shared_(std::make_shared<Shared>()) {
  MHCA_ASSERT(shards >= 1, "MemoryMeshGroup needs at least one shard");
  shared_->shards = shards;
  endpoints_.reserve(static_cast<std::size_t>(shards));
  for (int i = 0; i < shards; ++i)
    endpoints_.push_back(std::make_unique<Endpoint>(shared_, i));
}

MemoryMeshGroup::~MemoryMeshGroup() = default;

Transport& MemoryMeshGroup::endpoint(int index) {
  MHCA_ASSERT(index >= 0 &&
                  index < static_cast<int>(endpoints_.size()),
              "endpoint index out of range");
  return *endpoints_[static_cast<std::size_t>(index)];
}

// ------------------------------------------------------------------ UDP
//
// Datagram header (24 bytes, packed LE):
//   offset size field
//        0    2 magic        0x4D55
//        2    1 version      1
//        3    1 kind         1 = DATA, 2 = DONE, 3 = REQ
//        4    2 shard        sender's shard index
//        6    2 reserved     0
//        8    4 step         exchange barrier number (1-based)
//       12    2 frame        DATA: frame index; DONE: frame count
//       14    2 frag         fragment index within the frame
//       16    2 frag_count   fragments in the frame
//       18    2 payload_len  bytes after the header
//       20    4 seq          per-sender datagram sequence number
//
// A frame body (before fragmentation): origin i32, seq i32, ttl i32,
// len u32, then the encoded message. DONE closes a step (carries the frame
// count so receivers know when reassembly is complete); REQ asks the peer
// to resend everything it sent for `step` (receiver-driven recovery —
// loopback UDP loses datagrams only to buffer overrun, so the sender
// keeps its recent steps' datagrams and replays them on request).

namespace {

constexpr std::uint16_t kDgramMagic = 0x4D55;
constexpr std::uint8_t kDgramVersion = 1;
constexpr std::uint8_t kKindData = 1;
constexpr std::uint8_t kKindDone = 2;
constexpr std::uint8_t kKindReq = 3;
constexpr std::size_t kFrameBodyHeader = 16;  // origin, seq, ttl, len

static_assert(wire::kDatagramHeaderSize == 24);

void put16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint16_t get16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] |
                                    (static_cast<std::uint16_t>(p[1]) << 8));
}

std::uint32_t get32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

struct DgramHeader {
  std::uint8_t kind = 0;
  std::uint16_t shard = 0;
  std::uint32_t step = 0;
  std::uint16_t frame = 0;
  std::uint16_t frag = 0;
  std::uint16_t frag_count = 0;
  std::uint16_t payload_len = 0;
  std::uint32_t seq = 0;
};

/// Returns false on anything that is not one of ours (foreign traffic on
/// the port is ignored, never fatal).
bool parse_header(const std::uint8_t* data, std::size_t len,
                  DgramHeader& h) {
  if (len < wire::kDatagramHeaderSize) return false;
  if (get16(data) != kDgramMagic || data[2] != kDgramVersion) return false;
  h.kind = data[3];
  h.shard = get16(data + 4);
  h.step = get32(data + 8);
  h.frame = get16(data + 12);
  h.frag = get16(data + 14);
  h.frag_count = get16(data + 16);
  h.payload_len = get16(data + 18);
  h.seq = get32(data + 20);
  if (h.kind < kKindData || h.kind > kKindReq) return false;
  if (wire::kDatagramHeaderSize + h.payload_len != len) return false;
  return true;
}

sockaddr_in shard_addr(int port_base, int shard) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port_base + shard));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return addr;
}

}  // namespace

struct UdpTransport::SentStep {
  std::uint32_t step = 0;
  std::vector<std::vector<std::uint8_t>> datagrams;
};

struct UdpTransport::PeerProgress {
  int expected_frames = -1;  ///< -1 until the DONE datagram arrives.
  int completed_frames = 0;
  struct FrameBuf {
    int frag_count = 0;
    int received = 0;
    std::vector<std::vector<std::uint8_t>> parts;
  };
  std::map<std::uint16_t, FrameBuf> frames;
  bool done = false;

  void update_done() {
    done = expected_frames >= 0 && completed_frames == expected_frames;
  }
};

UdpTransport::UdpTransport(int shard_index, int shard_count,
                           UdpOptions options)
    : index_(shard_index), count_(shard_count), opt_(options) {
  MHCA_ASSERT(shard_count >= 1, "shard_count must be >= 1");
  MHCA_ASSERT(shard_index >= 0 && shard_index < shard_count,
              "shard_index " + std::to_string(shard_index) +
                  " out of range for " + std::to_string(shard_count) +
                  " shards");
  MHCA_ASSERT(opt_.mtu >= wire::kMinMtu && opt_.mtu <= wire::kMaxMtu,
              "mtu = " + std::to_string(opt_.mtu) +
                  " is outside the supported [" +
                  std::to_string(wire::kMinMtu) + ", " +
                  std::to_string(wire::kMaxMtu) + "] range");
  fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd_ < 0)
    throw std::runtime_error(std::string("UdpTransport: socket() failed: ") +
                             std::strerror(errno));
  // Loopback floods arrive in bursts; a deep receive buffer is the first
  // line of defense, the retransmit protocol the second.
  int rcvbuf = 4 << 20;
  ::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
  timeval tv{};
  tv.tv_usec = 20'000;  // 20 ms poll quantum for the recv loop
  ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  const sockaddr_in addr = shard_addr(opt_.port_base, index_);
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error(
        "UdpTransport: bind(127.0.0.1:" +
        std::to_string(opt_.port_base + index_) + ") failed: " +
        std::strerror(err) + " (is another shard or process on the port?)");
  }
}

UdpTransport::~UdpTransport() {
  if (fd_ >= 0) ::close(fd_);
}

void UdpTransport::send_datagram(int peer,
                                 const std::vector<std::uint8_t>& dgram) {
  const sockaddr_in addr = shard_addr(opt_.port_base, peer);
  (void)::sendto(fd_, dgram.data(), dgram.size(), 0,
                 reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  ++stats_.datagrams_sent;
  stats_.bytes_sent += static_cast<std::int64_t>(dgram.size());
}

void UdpTransport::send_step_to(int peer, const SentStep& step) {
  for (const auto& dgram : step.datagrams) send_datagram(peer, dgram);
}

void UdpTransport::integrate(PeerProgress& peer, std::uint16_t frame,
                             std::uint16_t frag, std::uint16_t frag_count,
                             const std::uint8_t* payload,
                             std::size_t payload_len) {
  if (frag_count == 0 || frag >= frag_count) return;  // malformed; ignore
  auto& buf = peer.frames[frame];
  if (buf.frag_count == 0) {
    buf.frag_count = frag_count;
    buf.parts.resize(frag_count);
  }
  if (buf.frag_count != frag_count) return;  // inconsistent; ignore
  if (!buf.parts[frag].empty() || buf.received > frag_count) return;  // dup
  if (payload_len == 0) return;  // DATA fragments always carry bytes
  buf.parts[frag].assign(payload, payload + payload_len);
  if (++buf.received == buf.frag_count) ++peer.completed_frames;
  peer.update_done();
}

bool UdpTransport::handle_datagram(const std::uint8_t* data, std::size_t len,
                                   std::vector<PeerProgress>& peers) {
  DgramHeader h;
  if (!parse_header(data, len, h)) return false;
  if (h.shard >= static_cast<std::uint16_t>(count_) ||
      static_cast<int>(h.shard) == index_)
    return false;
  ++stats_.datagrams_received;
  stats_.bytes_received += static_cast<std::int64_t>(len);

  if (h.kind == kKindReq) {
    // A stalled peer wants a step of ours again. Serve it from history.
    for (const SentStep& s : history_) {
      if (s.step == h.step) {
        ++stats_.retransmissions;
        send_step_to(h.shard, s);
        break;
      }
    }
    return false;
  }
  if (h.step < step_) return false;  // stale duplicate of a finished step
  if (h.step > step_) {
    // The peer already completed our step and moved on (it can lead by at
    // most one barrier); park its next-step datagrams for later.
    ahead_.emplace_back(data, data + len);
    return false;
  }
  PeerProgress& peer = peers[h.shard];
  if (peer.done) return false;
  if (h.kind == kKindDone) {
    peer.expected_frames = h.frame;
    peer.update_done();
    return true;
  }
  integrate(peer, h.frame, h.frag, h.frag_count,
            data + wire::kDatagramHeaderSize, h.payload_len);
  return true;
}

std::vector<FloodFrame> UdpTransport::exchange(
    std::vector<FloodFrame> local) {
  using Clock = std::chrono::steady_clock;
  ++step_;
  ++stats_.exchanges;
  stats_.frames_sent += static_cast<std::int64_t>(local.size());

  // Serialize + fragment this shard's frames into outgoing datagrams.
  SentStep sent;
  sent.step = step_;
  const std::size_t cap =
      static_cast<std::size_t>(opt_.mtu) - wire::kDatagramHeaderSize;
  const auto header = [&](std::uint8_t kind, std::uint16_t frame,
                          std::uint16_t frag, std::uint16_t frag_count,
                          std::uint16_t payload_len,
                          std::vector<std::uint8_t>& out) {
    put16(out, kDgramMagic);
    out.push_back(kDgramVersion);
    out.push_back(kind);
    put16(out, static_cast<std::uint16_t>(index_));
    put16(out, 0);  // reserved
    put32(out, step_);
    put16(out, frame);
    put16(out, frag);
    put16(out, frag_count);
    put16(out, payload_len);
    put32(out, send_seq_++);
  };
  MHCA_ASSERT(local.size() < 0xFFFF, "too many frames in one exchange");
  for (std::size_t f = 0; f < local.size(); ++f) {
    const FloodFrame& fr = local[f];
    std::vector<std::uint8_t> body;
    body.reserve(kFrameBodyHeader + fr.bytes.size());
    put32(body, static_cast<std::uint32_t>(fr.origin));
    put32(body, static_cast<std::uint32_t>(fr.seq));
    put32(body, static_cast<std::uint32_t>(fr.ttl));
    put32(body, static_cast<std::uint32_t>(fr.bytes.size()));
    body.insert(body.end(), fr.bytes.begin(), fr.bytes.end());
    const std::size_t n_frags = (body.size() + cap - 1) / cap;
    MHCA_ASSERT(n_frags < 0xFFFF, "frame does not fit 65534 fragments");
    for (std::size_t frag = 0; frag < n_frags; ++frag) {
      const std::size_t off = frag * cap;
      const std::size_t n = std::min(cap, body.size() - off);
      std::vector<std::uint8_t> dgram;
      dgram.reserve(wire::kDatagramHeaderSize + n);
      header(kKindData, static_cast<std::uint16_t>(f),
             static_cast<std::uint16_t>(frag),
             static_cast<std::uint16_t>(n_frags),
             static_cast<std::uint16_t>(n), dgram);
      dgram.insert(dgram.end(), body.begin() + static_cast<long>(off),
                   body.begin() + static_cast<long>(off + n));
      sent.datagrams.push_back(std::move(dgram));
    }
  }
  {
    std::vector<std::uint8_t> done;
    header(kKindDone, static_cast<std::uint16_t>(local.size()), 0, 1, 0,
           done);
    sent.datagrams.push_back(std::move(done));
  }
  history_.push_back(std::move(sent));
  if (history_.size() > 4) history_.erase(history_.begin());
  const SentStep& mine = history_.back();
  for (int p = 0; p < count_; ++p)
    if (p != index_) send_step_to(p, mine);

  // Collect every peer's frames for this step.
  std::vector<PeerProgress> peers(static_cast<std::size_t>(count_));
  peers[static_cast<std::size_t>(index_)].done = true;
  const auto all_done = [&] {
    for (const PeerProgress& p : peers)
      if (!p.done) return false;
    return true;
  };
  // First, datagrams that arrived early while we were still in the
  // previous barrier.
  if (!ahead_.empty()) {
    std::vector<std::vector<std::uint8_t>> parked;
    parked.swap(ahead_);
    // datagrams_received/bytes_received were already counted at park time;
    // undo the double count before re-handling.
    for (const auto& d : parked) {
      --stats_.datagrams_received;
      stats_.bytes_received -= static_cast<std::int64_t>(d.size());
      handle_datagram(d.data(), d.size(), peers);
    }
  }

  const auto start = Clock::now();
  auto last_progress = start;
  std::uint8_t buf[65536];
  while (!all_done()) {
    const auto r = ::recv(fd_, buf, sizeof(buf), 0);
    const auto now = Clock::now();
    if (r > 0 &&
        handle_datagram(buf, static_cast<std::size_t>(r), peers)) {
      last_progress = now;
      continue;
    }
    using std::chrono::duration_cast;
    using std::chrono::milliseconds;
    if (duration_cast<milliseconds>(now - start).count() >
        opt_.overall_timeout_ms) {
      std::string missing;
      for (int p = 0; p < count_; ++p)
        if (!peers[static_cast<std::size_t>(p)].done)
          missing += (missing.empty() ? "" : ", ") + std::to_string(p);
      throw std::runtime_error(
          "UdpTransport: shard " + std::to_string(index_) + " timed out in "
          "exchange step " + std::to_string(step_) + " waiting for shard(s) " +
          missing + " (ports " + std::to_string(opt_.port_base) + "+k; did "
          "every shard process start with the same scenario and --shard k/" +
          std::to_string(count_) + "?)");
    }
    if (duration_cast<milliseconds>(now - last_progress).count() >
        opt_.resend_after_ms) {
      // Receiver-driven recovery: ask every stalled peer to replay the step.
      for (int p = 0; p < count_; ++p) {
        if (peers[static_cast<std::size_t>(p)].done) continue;
        std::vector<std::uint8_t> req;
        header(kKindReq, 0, 0, 1, 0, req);
        send_datagram(p, req);
        ++stats_.retransmit_requests;
      }
      last_progress = now;
    }
  }

  // Merge: reassemble every peer frame and append to the local ones.
  std::vector<FloodFrame> merged = std::move(local);
  for (int p = 0; p < count_; ++p) {
    if (p == index_) continue;
    PeerProgress& peer = peers[static_cast<std::size_t>(p)];
    for (auto& [frame_idx, fbuf] : peer.frames) {
      (void)frame_idx;
      std::vector<std::uint8_t> body;
      for (const auto& part : fbuf.parts)
        body.insert(body.end(), part.begin(), part.end());
      if (body.size() < kFrameBodyHeader)
        throw std::runtime_error(
            "UdpTransport: reassembled frame body of " +
            std::to_string(body.size()) + " bytes is smaller than its " +
            std::to_string(kFrameBodyHeader) + "-byte header");
      FloodFrame fr;
      fr.origin = static_cast<std::int32_t>(get32(body.data()));
      fr.seq = static_cast<std::int32_t>(get32(body.data() + 4));
      fr.ttl = static_cast<std::int32_t>(get32(body.data() + 8));
      const std::uint32_t n = get32(body.data() + 12);
      if (kFrameBodyHeader + n != body.size())
        throw std::runtime_error(
            "UdpTransport: frame body length field " + std::to_string(n) +
            " does not match the " +
            std::to_string(body.size() - kFrameBodyHeader) +
            " reassembled payload bytes");
      fr.bytes.assign(body.begin() + kFrameBodyHeader, body.end());
      ++stats_.frames_received;
      merged.push_back(std::move(fr));
    }
  }
  sort_frames(merged);
  return merged;
}

void UdpTransport::finish() {
  using Clock = std::chrono::steady_clock;
  // Serve late retransmit requests: a peer may still be collecting our
  // final step when we are already done with the run.
  const auto start = Clock::now();
  std::uint8_t buf[65536];
  std::vector<PeerProgress> scratch(static_cast<std::size_t>(count_));
  for (auto& p : scratch) p.done = true;  // only REQs matter here
  while (std::chrono::duration_cast<std::chrono::milliseconds>(
             Clock::now() - start)
             .count() < opt_.finish_linger_ms) {
    const auto r = ::recv(fd_, buf, sizeof(buf), 0);
    if (r > 0) handle_datagram(buf, static_cast<std::size_t>(r), scratch);
  }
}

}  // namespace mhca::net
