// View-synchronous membership identifiers (galera's virtual-synchrony
// ViewId(seq, representative) idiom).
//
// A ViewId names one membership epoch of an agent's local neighborhood. The
// sequence number advances whenever an agent changes its own membership
// table (a member evicted after timeout + exhausted retries, or a new
// member admitted from a hello); the representative is the id of the agent
// that initiated that change. Every control-channel message carries its
// sender's current ViewId, and receivers adopt any strictly greater view
// they hear (total order: seq first, then representative) — so views gossip
// outward with ordinary protocol traffic and, in the absence of new faults
// or churn, every agent of a connected region settles on the same maximal
// view. Decisions are tagged with the view they were made in; an agent
// whose view is in flux decides conservatively (see net/agent.h).
#pragma once

#include <cstdint>

namespace mhca::net {

struct ViewId {
  std::int64_t seq = 0;
  int representative = -1;  ///< Initiator of this membership epoch.

  friend bool operator==(const ViewId&, const ViewId&) = default;
  friend bool operator<(const ViewId& a, const ViewId& b) {
    if (a.seq != b.seq) return a.seq < b.seq;
    return a.representative < b.representative;
  }
  friend bool operator>(const ViewId& a, const ViewId& b) { return b < a; }
};

/// How the runtime learns of membership/topology change.
enum class MembershipMode : std::uint8_t {
  /// The simulator's delta feed drives scoped rediscovery directly
  /// (DistributedRuntime::on_topology_change) — the pre-view-sync behavior,
  /// byte-identical to the lockstep engine every round.
  kOmniscient,
  /// Agents infer membership from the wire alone: periodic stat-carrying
  /// hellos, liveness by timeout + bounded retry with exponential backoff,
  /// evictions/admissions announced as view changes. The lockstep engine is
  /// matched whenever views have converged (see net/README.md).
  kViewSync,
};

}  // namespace mhca::net
