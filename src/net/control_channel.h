// Synchronous common control channel with TTL-bounded flooding.
//
// Delivery model: a flood from `origin` with time-to-live `ttl` reaches
// exactly the vertices within ttl hops in the control topology (one hop per
// mini-timeslot, every reached vertex retransmits once). The channel counts
// transmissions (= reached vertices, including the origin) and the
// mini-timeslots a phase occupies, matching the accounting of the lockstep
// engine and the paper's §IV-C complexity analysis.
//
// Failure injection: with drop_prob > 0 each non-origin vertex fails to
// receive a given flood with that probability (deterministically derived
// from drop_seed and the flood counter); a dropped vertex neither delivers
// nor forwards. The paper assumes a reliable control channel — the lossy
// mode exists to demonstrate (and test) that the protocol's independence
// guarantee genuinely depends on that assumption.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "graph/graph.h"
#include "graph/hop.h"
#include "net/message.h"

namespace mhca::net {

struct ChannelStats {
  std::int64_t messages = 0;        ///< Total transmissions.
  std::int64_t floods = 0;          ///< Flood operations.
  std::int64_t drops = 0;           ///< Reception failures (lossy mode).
  std::int64_t mini_timeslots = 0;  ///< Accumulated phase durations.
  /// Transmissions broken out per message type (indexed by MsgType):
  /// hello / weight-update / leader-declare / determination. Lets tests
  /// compare the real protocol's bill against the lockstep engine's
  /// analytic accounting, phase by phase.
  std::int64_t messages_by_type[4] = {0, 0, 0, 0};

  std::int64_t of_type(MsgType t) const {
    return messages_by_type[static_cast<std::size_t>(t)];
  }
};

class ControlChannel {
 public:
  /// `topology` must outlive the channel (it is the extended graph H; the
  /// paper's control plane shares the conflict structure of the data plane).
  explicit ControlChannel(const Graph& topology, double drop_prob = 0.0,
                          std::uint64_t drop_seed = 0);

  /// Flood `msg` within `ttl` hops of msg.origin; `deliver(v, msg)` is
  /// invoked once for every reached vertex except the origin.
  void flood(const Message& msg, int ttl,
             const std::function<void(int, const Message&)>& deliver);

  /// Account that a protocol phase occupied `slots` mini-timeslots.
  void charge_timeslots(int slots) { stats_.mini_timeslots += slots; }

  double drop_prob() const { return drop_prob_; }
  const ChannelStats& stats() const { return stats_; }
  void reset_stats() { stats_ = ChannelStats{}; }

 private:
  const Graph& topology_;
  double drop_prob_;
  std::uint64_t drop_seed_;
  BfsScratch scratch_;
  std::vector<int> reach_buf_;
  std::vector<std::uint32_t> visit_stamp_;
  std::uint32_t visit_epoch_ = 0;
  ChannelStats stats_;
};

}  // namespace mhca::net
