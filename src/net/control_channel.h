// Synchronous common control channel with TTL-bounded flooding and a
// seeded, deterministic fault-injection plane.
//
// Delivery model: a flood from `origin` with time-to-live `ttl` reaches
// exactly the vertices within ttl hops in the control topology (one hop per
// mini-timeslot, every reached vertex retransmits once). The channel counts
// transmissions (= reached vertices, including the origin) and the
// mini-timeslots a phase occupies, matching the accounting of the lockstep
// engine and the paper's §IV-C complexity analysis.
//
// Fault injection (net/faults.h): per (flood, receiving vertex) the channel
// can drop (the vertex neither delivers nor forwards), duplicate (a second
// delivery, billed as a real retransmission — duplicated and retried
// messages are not free airtime), and defer deliveries — to the end of the
// same flood (pure reordering) or into the membership phase of a later
// slot, bounded by delay_slots_max. Every decision is a pure hash of
// (seed, flood counter, vertex), so one (seed, schedule) pair replays the
// same fault pattern byte for byte; `trace_hash()` folds every flood and
// every delivery into one order-sensitive digest that tests compare across
// runs. The paper assumes a reliable control channel — the fault plane
// exists to demonstrate (and test) which protocol guarantees genuinely
// depend on that assumption, and what the view-synchronous membership
// layer recovers.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "graph/graph.h"
#include "graph/hop.h"
#include "net/faults.h"
#include "net/message.h"
#include "net/wire.h"

namespace mhca::net {

struct ChannelStats {
  std::int64_t messages = 0;        ///< Total transmissions (incl. dups).
  std::int64_t floods = 0;          ///< Flood operations.
  std::int64_t drops = 0;           ///< Reception failures (lossy mode).
  std::int64_t duplicates = 0;      ///< Duplicate deliveries (billed).
  std::int64_t deferred = 0;        ///< Deliveries reordered or delayed.
  std::int64_t mini_timeslots = 0;  ///< Accumulated phase durations.
  /// Transmissions broken out per message type (indexed by MsgType):
  /// hello / weight-update / leader-declare / determination / view-change.
  /// Lets tests compare the real protocol's bill against the lockstep
  /// engine's analytic accounting, phase by phase.
  std::int64_t messages_by_type[kNumMsgTypes] = {0, 0, 0, 0, 0};
  /// Encoded bytes on the wire (wire::encoded_size per transmission, dups
  /// included) — airtime billed from the real marshalled size, not a count.
  std::int64_t bytes_on_wire = 0;
  /// Same bill broken out per message type.
  std::int64_t bytes_by_type[kNumMsgTypes] = {0, 0, 0, 0, 0};
  /// MTU fragments those transmissions occupy (wire::fragments_of); equals
  /// the datagram count the UDP transport would send.
  std::int64_t fragments = 0;

  std::int64_t of_type(MsgType t) const {
    return messages_by_type[static_cast<std::size_t>(t)];
  }
  std::int64_t bytes_of_type(MsgType t) const {
    return bytes_by_type[static_cast<std::size_t>(t)];
  }
};

class ControlChannel {
 public:
  /// `topology` must outlive the channel (it is the extended graph H; the
  /// paper's control plane shares the conflict structure of the data plane).
  /// The profile is validated with actionable errors (offending knob and
  /// value) before anything else runs.
  ControlChannel(const Graph& topology, const FaultProfile& faults);

  /// Drop-only compatibility form (PR-4 signature).
  explicit ControlChannel(const Graph& topology, double drop_prob = 0.0,
                          std::uint64_t drop_seed = 0);

  /// Flood `msg` within `ttl` hops of msg.origin; `deliver(v, msg)` is
  /// invoked once per delivery for every reached vertex except the origin
  /// (twice when the fault plane duplicates). Deliveries the fault plane
  /// delayed into a later slot are *not* delivered here — they surface from
  /// begin_slot() when their slot comes.
  ///
  /// Wire discipline: the flood's unit of transfer is the *encoded* message
  /// (net/wire.h). Every flood marshals once, the fault plane operates on
  /// those bytes, and every delivery hands receivers the *decoded* copy —
  /// so in-process runs exercise the exact bytes a socket transport would
  /// carry, airtime is billed from encoded_size, and an always-on invariant
  /// asserts decode(encode(msg)) == msg.
  void flood(const Message& msg, int ttl,
             const std::function<void(int, const Message&)>& deliver);

  /// Flood a message that already arrived as wire bytes (a sharded peer's
  /// frame): identical fault/billing/trace behavior, minus the re-encode.
  void flood_encoded(const std::shared_ptr<const std::vector<std::uint8_t>>&
                         bytes,
                     int ttl,
                     const std::function<void(int, const Message&)>& deliver);

  /// Enter slot `round`: hands every delayed delivery that is now due to
  /// `dispatch(to, msg)`, in deterministic hash-shuffled order. Call once
  /// per slot before any flooding; a no-op on a fault-free channel.
  void begin_slot(std::int64_t round,
                  const std::function<void(int, const Message&)>& dispatch);

  /// Account that a protocol phase occupied `slots` mini-timeslots.
  void charge_timeslots(int slots) { stats_.mini_timeslots += slots; }

  /// Swap the fault profile mid-run (fault *schedules*: a lossy window
  /// followed by a quiet one, etc.). Validated like the constructor's;
  /// deliveries already delayed keep their original due slots.
  void set_fault_profile(const FaultProfile& faults) {
    faults.validate();
    faults_ = faults;
  }

  /// MTU for fragment accounting (and the wire contract of any socket
  /// transport layered on this channel). Rejects mtu outside
  /// [wire::kMinMtu, wire::kMaxMtu] with an actionable error.
  void set_mtu(int mtu);
  int mtu() const { return mtu_; }

  double drop_prob() const { return faults_.drop_prob; }
  const FaultProfile& faults() const { return faults_; }
  const ChannelStats& stats() const { return stats_; }
  void reset_stats() { stats_ = ChannelStats{}; }

  /// Deliveries still in flight (delayed into a future slot). Convergence
  /// requires this to be zero — a delayed hello can still change a table.
  std::size_t pending_deliveries() const { return pending_.size(); }

  /// Order-sensitive digest of every flood and every delivery so far.
  /// Identical (seed, schedule) runs must produce identical digests — the
  /// byte-for-byte replay guarantee of the fault plane.
  std::uint64_t trace_hash() const { return trace_hash_; }

 private:
  /// A deferred delivery holds the *encoded datagram* (shared across the
  /// copies of one flood), not the struct: what sits in the fault plane's
  /// queues is bytes on a wire, decoded only when finally delivered.
  struct Pending {
    std::int64_t due_round;
    std::uint64_t shuffle_key;  ///< Deterministic delivery-order key.
    int to;
    std::shared_ptr<const std::vector<std::uint8_t>> bytes;
  };

  /// Per-(flood, vertex, salt) uniform [0,1) draw.
  double fault_draw(int vertex, std::uint64_t salt) const;
  void record_flood(const Message& msg, int ttl,
                    const std::vector<std::uint8_t>& bytes);
  void record_delivery(int to, const Message& msg);
  void deliver_copies(
      int vertex, const Message& msg,
      const std::shared_ptr<const std::vector<std::uint8_t>>& bytes,
      const std::function<void(int, const Message&)>& deliver,
      std::vector<Pending>& same_flood);
  void flood_impl(const Message& msg,
                  const std::shared_ptr<const std::vector<std::uint8_t>>&
                      bytes,
                  int ttl,
                  const std::function<void(int, const Message&)>& deliver);
  /// One transmission's airtime: message count, bytes, fragments, per type.
  void bill(MsgType type, std::size_t wire_size, std::int64_t transmissions);

  const Graph& topology_;
  FaultProfile faults_;
  int mtu_ = wire::kDefaultMtu;
  BfsScratch scratch_;
  std::vector<int> reach_buf_;
  std::vector<std::uint32_t> visit_stamp_;
  std::uint32_t visit_epoch_ = 0;
  std::int64_t round_ = 0;
  std::vector<Pending> pending_;
  ChannelStats stats_;
  std::uint64_t trace_hash_ = 0x6d686361'6e657432ULL;  // "mhcanet2"
};

}  // namespace mhca::net
