// Message-level implementation of Algorithm 2 (the full distributed
// channel-access scheme) over per-vertex agents and a flooding control
// channel.
//
// Per round t:
//   MEM — (view-sync mode only) membership phase: delayed deliveries land,
//         staggered keep-alive hellos go out, liveness is evaluated
//         (timeout → suspect → backed-off probes → eviction), and view
//         changes are announced. See net/README.md for the full lifecycle.
//   WB  — every vertex of the previous strategy floods its refreshed (µ̃, m)
//         within 2r+1 hops; all agents recompute indices locally from the
//         global round number (eq. 3 needs only t, K and the stored stats).
//   LS  — Candidates whose key dominates their (2r+1)-hop table self-elect
//         LocalLeader and declare within 2r+1 hops.
//   LMWIS/LB — each leader solves MWIS over its r-hop Candidates and floods
//         the verdicts within 3r+1 hops; D mini-rounds total.
//   TX  — Winners access their channels, observe rates, update estimates.
//         Under view-sync a Winner with outstanding suspects, or whose
//         verdict was minted in an older view, abstains (conservative
//         degradation: reduced throughput, never an avoidable collision).
//
// This runtime exists to demonstrate and *test* that the protocol works
// from purely local knowledge; the lockstep engine in mwis/distributed_ptas
// computes identical decisions (asserted by integration tests: every round
// in omniscient mode, every converged round under view-sync — see
// net/oracle.h) and is what the large benchmarks use.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "bandit/policy.h"
#include "channel/channel_model.h"
#include "graph/extended_graph.h"
#include "mwis/branch_and_bound.h"
#include "mwis/greedy.h"
#include "net/agent.h"
#include "net/control_channel.h"
#include "net/transport.h"
#include "net/view.h"

namespace mhca::net {

struct NetConfig {
  int r = 2;
  int D = 4;  ///< Mini-rounds per decision; 0 = run until all marked.
  PolicyKind policy = PolicyKind::kCab;
  PolicyParams policy_params{};
  LocalSolverKind local_solver = LocalSolverKind::kExact;
  /// Per-solve effort cap; mirrors DistributedPtasConfig::bnb_node_cap so
  /// runtime and lockstep engine take identical decisions.
  std::int64_t bnb_node_cap = kDefaultBnbNodeCap;
  /// Solve over each agent's memoized r-ball clique cover (mirrors
  /// DistributedPtasConfig::use_memoized_covers; see src/mwis/README.md).
  bool use_memoized_covers = false;
  /// MTU for fragment accounting and the UDP transport's datagram size
  /// (net/wire.h). Every flood's airtime is billed in encoded bytes and in
  /// the MTU fragments a socket transport would actually send.
  int mtu = wire::kDefaultMtu;
  // --- Fault-injection plane (net/faults.h; all seeded by drop_seed) ---
  /// Control-channel reception failure probability (the protocol's
  /// independence guarantee assumes 0 — see ControlChannel).
  double drop_prob = 0.0;
  std::uint64_t drop_seed = 0;
  double dup_prob = 0.0;      ///< Duplicate-delivery probability.
  double reorder_prob = 0.0;  ///< Deferred-delivery probability.
  int delay_slots_max = 0;    ///< Max deferral in slots (0 = same flood).
  // --- Membership (net/view.h) ---
  /// kViewSync: no omniscient delta feed — liveness from stat-carrying
  /// hellos with timeout + bounded retry + exponential backoff, membership
  /// epochs as gossiped ViewIds. Required when reorder_prob > 0 or
  /// delay_slots_max > 0 (omniscient discovery cannot absorb a late hello).
  MembershipMode membership = MembershipMode::kOmniscient;
  int hello_timeout_slots = 4;  ///< Silence (slots) before suspicion.
  int hello_max_retries = 3;    ///< Probes before eviction.
  int backoff_base = 2;         ///< Probe k waits backoff_base^k slots.
};

struct NetRoundResult {
  std::int64_t round = 0;
  std::vector<int> strategy;  ///< Winner vertices of H (sorted).
  double observed_sum = 0.0;  ///< Realized throughput (normalized).
  int mini_rounds = 0;
  bool all_marked = false;
  /// True if the produced strategy contains a conflict. Always false on a
  /// reliable omniscient-mode channel (asserted); possible under faults or
  /// not-yet-converged views.
  bool conflict = false;
  /// View-sync: Winners that abstained from transmitting because their
  /// view was stale (counted into AgentCounters::stale_decisions).
  int tx_abstained = 0;
};

/// Aggregated per-agent robustness counters (see AgentCounters).
struct RuntimeCounters {
  std::int64_t retries = 0;
  std::int64_t timeouts = 0;
  std::int64_t view_changes = 0;
  std::int64_t stale_decisions = 0;
};

class DistributedRuntime {
 public:
  /// References must outlive the runtime. Construction performs the
  /// one-time (2r+1)-hop neighborhood discovery (paper: the first WB round
  /// collects ids of the local neighborhood).
  DistributedRuntime(const ExtendedConflictGraph& ecg,
                     const ChannelModel& model, NetConfig cfg);

  /// Sharded: this process is shard `transport.shard_index()` of
  /// `transport.shard_count()`. Every shard hosts *all* agents (same
  /// scenario, same seed — replicated state), but only the owner shard of a
  /// vertex (owner = vertex % shard_count) originates its floods and
  /// computes its expensive payloads (a leader's local MWIS solve travels
  /// as wire bytes). Each protocol phase deposits the owned floods into one
  /// transport exchange and replays the merged union in canonical
  /// (origin, seq) order through the local ControlChannel — which keeps the
  /// global flood counter, every fault draw, the trace hash and every
  /// decision identical across shards *and* identical to a single-process
  /// run of the same scenario. v1 scope: omniscient membership and a static
  /// graph (view-sync's same-phase hello interleaving needs finer barriers);
  /// drop/dup faults are fine — the fault plane replays identically
  /// everywhere. The transport must outlive the runtime.
  DistributedRuntime(const ExtendedConflictGraph& ecg,
                     const ChannelModel& model, NetConfig cfg,
                     Transport& transport);

  /// Execute one full round of Algorithm 2.
  NetRoundResult step();

  /// The extended graph just changed (src/dynamics; apply between rounds).
  /// `touched` are the H vertices incident to an added/removed edge,
  /// `active_vertices` the new per-vertex activity mask. Agents whose
  /// (2r+1)-hop view can have changed — members of a touched agent's old
  /// table, or within 2r+1 new-graph hops of a touched vertex — re-run
  /// discovery: every vertex of the affected neighborhoods re-floods a
  /// hello (billed on the control channel like any flood) carrying its
  /// neighbor list *and* current statistics, so rebuilt tables stay
  /// index-consistent and the decisions keep matching the lockstep engine.
  /// Omniscient mode only — the god's-eye feed view-sync replaces.
  void on_topology_change(std::span<const int> touched,
                          const std::vector<char>& active_vertices);

  /// View-sync counterpart: the wire changed, but agents are told only
  /// what a real node's link layer could know — each touched agent's own
  /// direct-neighbor set, and each node's own on/off state. Everything
  /// else (who left the neighborhood, who arrived) must be inferred from
  /// hellos, timeouts and view changes.
  void on_wire_change(std::span<const int> touched,
                      const std::vector<char>& active_vertices);

  /// Swap the fault profile mid-run (fault *schedules*: e.g. a lossy window
  /// followed by a quiet one). Validated like the constructor's profile.
  void set_fault_profile(const FaultProfile& faults);

  std::int64_t rounds_run() const { return t_; }
  /// Winners of the last round — the vertices whose refreshed statistics
  /// are still in flight (their WB flood opens the *next* round, before
  /// any decision reads a table). The convergence oracle exempts exactly
  /// these from its stats equality check.
  const std::vector<int>& prev_strategy() const { return prev_strategy_; }
  const ChannelStats& channel_stats() const { return channel_.stats(); }
  const ControlChannel& channel() const { return channel_; }
  const VertexAgent& agent(int v) const {
    return agents_[static_cast<std::size_t>(v)];
  }
  const IndexPolicy& policy() const { return *policy_; }
  const NetConfig& config() const { return cfg_; }
  /// Null in classic (single-process) mode.
  const Transport* transport() const { return transport_; }
  /// Transport-layer counters for the telemetry registry (obs/publish.h);
  /// null in classic mode — the publisher then registers the transport
  /// domain as zeros.
  const TransportStats* transport_stats() const {
    return transport_ != nullptr ? &transport_->stats() : nullptr;
  }

  /// Maximum agent table size — the per-vertex space bound O(m).
  std::size_t max_table_size() const;

  /// Sum of every agent's robustness counters.
  RuntimeCounters counters() const;

 private:
  /// The delegate both public constructors funnel into (transport may be
  /// null); transport_ must be set before discovery floods anything.
  DistributedRuntime(const ExtendedConflictGraph& ecg,
                     const ChannelModel& model, NetConfig cfg,
                     Transport* transport);

  void discover();
  /// One vertex's hello: id, direct neighbors, current (µ̃, m) — shared by
  /// initial discovery, scoped churn rediscovery, keep-alives and probes,
  /// so none of them can drift.
  Message make_hello(int v) const;
  /// The MEM phase of a view-sync round (see class comment).
  void membership_phase();
  /// Route one delivery to the right agent handler by message type (the
  /// single dispatch point for immediate and delayed deliveries alike).
  void route(int to, const Message& msg);
  /// Flood every agent whose hello_pending flag is set (keep-alives are
  /// merged into the first pass; the second pass catches same-round
  /// responses to probes and solicits).
  void flood_pending_hellos(bool include_keepalives);
  bool unreliable() const {
    return channel_.faults().any() ||
           cfg_.membership == MembershipMode::kViewSync;
  }
  bool sharded() const { return transport_ != nullptr; }
  /// Does this shard originate vertex v's floods? (Always true classic.)
  bool owns(int v) const {
    return transport_ == nullptr ||
           v % transport_->shard_count() == transport_->shard_index();
  }
  /// Encode `msg` as a FloodFrame this shard deposits into the next
  /// exchange.
  static FloodFrame make_frame(const Message& msg, int ttl);
  /// Barrier-exchange the owned frames of one protocol phase and replay
  /// the merged union — every shard's floods, this one's included — in
  /// canonical order through the local channel. `deliver` as in
  /// ControlChannel::flood; `on_origin`, when set, is applied to each
  /// decoded message before its flood (floods never deliver to their own
  /// origin, but a determination must mark the leader itself). Returns the
  /// merged frames' origins in replay order so callers can recover e.g.
  /// the global leader list.
  std::vector<int> exchange_and_replay(
      std::vector<FloodFrame> frames,
      const std::function<void(int, const Message&)>& deliver,
      const std::function<void(const Message&)>& on_origin = {});

  const ExtendedConflictGraph& ecg_;
  const ChannelModel& model_;
  NetConfig cfg_;
  int keepalive_interval_ = 1;
  std::unique_ptr<IndexPolicy> policy_;
  ControlChannel channel_;
  std::vector<VertexAgent> agents_;
  BranchAndBoundMwisSolver exact_;
  GreedyMwisSolver greedy_;
  SolveScratch lead_scratch_;  ///< Reused across agents' exact local solves.
  std::vector<int> prev_strategy_;
  std::int64_t t_ = 0;
  Transport* transport_ = nullptr;  ///< Null in classic mode.
};

}  // namespace mhca::net
