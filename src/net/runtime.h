// Message-level implementation of Algorithm 2 (the full distributed
// channel-access scheme) over per-vertex agents and a flooding control
// channel.
//
// Per round t:
//   WB  — every vertex of the previous strategy floods its refreshed (µ̃, m)
//         within 2r+1 hops; all agents recompute indices locally from the
//         global round number (eq. 3 needs only t, K and the stored stats).
//   LS  — Candidates whose key dominates their (2r+1)-hop table self-elect
//         LocalLeader and declare within 2r+1 hops.
//   LMWIS/LB — each leader solves MWIS over its r-hop Candidates and floods
//         the verdicts within 3r+1 hops; D mini-rounds total.
//   TX  — Winners access their channels, observe rates, update estimates.
//
// This runtime exists to demonstrate and *test* that the protocol works
// from purely local knowledge; the lockstep engine in mwis/distributed_ptas
// computes identical decisions (asserted by integration tests) and is what
// the large benchmarks use.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "bandit/policy.h"
#include "channel/channel_model.h"
#include "graph/extended_graph.h"
#include "mwis/branch_and_bound.h"
#include "mwis/greedy.h"
#include "net/agent.h"
#include "net/control_channel.h"

namespace mhca::net {

struct NetConfig {
  int r = 2;
  int D = 4;  ///< Mini-rounds per decision; 0 = run until all marked.
  PolicyKind policy = PolicyKind::kCab;
  PolicyParams policy_params{};
  LocalSolverKind local_solver = LocalSolverKind::kExact;
  /// Per-solve effort cap; mirrors DistributedPtasConfig::bnb_node_cap so
  /// runtime and lockstep engine take identical decisions.
  std::int64_t bnb_node_cap = kDefaultBnbNodeCap;
  /// Solve over each agent's memoized r-ball clique cover (mirrors
  /// DistributedPtasConfig::use_memoized_covers; see src/mwis/README.md).
  bool use_memoized_covers = false;
  /// Control-channel reception failure probability (failure injection; the
  /// protocol's independence guarantee assumes 0 — see ControlChannel).
  double drop_prob = 0.0;
  std::uint64_t drop_seed = 0;
};

struct NetRoundResult {
  std::int64_t round = 0;
  std::vector<int> strategy;  ///< Winner vertices of H (sorted).
  double observed_sum = 0.0;  ///< Realized throughput (normalized).
  int mini_rounds = 0;
  bool all_marked = false;
  /// True if the produced strategy contains a conflict. Always false on a
  /// reliable control channel (asserted); possible under drop_prob > 0.
  bool conflict = false;
};

class DistributedRuntime {
 public:
  /// References must outlive the runtime. Construction performs the
  /// one-time (2r+1)-hop neighborhood discovery (paper: the first WB round
  /// collects ids of the local neighborhood).
  DistributedRuntime(const ExtendedConflictGraph& ecg,
                     const ChannelModel& model, NetConfig cfg);

  /// Execute one full round of Algorithm 2.
  NetRoundResult step();

  /// The extended graph just changed (src/dynamics; apply between rounds).
  /// `touched` are the H vertices incident to an added/removed edge,
  /// `active_vertices` the new per-vertex activity mask. Agents whose
  /// (2r+1)-hop view can have changed — members of a touched agent's old
  /// table, or within 2r+1 new-graph hops of a touched vertex — re-run
  /// discovery: every vertex of the affected neighborhoods re-floods a
  /// hello (billed on the control channel like any flood) carrying its
  /// neighbor list *and* current statistics, so rebuilt tables stay
  /// index-consistent and the decisions keep matching the lockstep engine.
  void on_topology_change(std::span<const int> touched,
                          const std::vector<char>& active_vertices);

  std::int64_t rounds_run() const { return t_; }
  const ChannelStats& channel_stats() const { return channel_.stats(); }
  const VertexAgent& agent(int v) const {
    return agents_[static_cast<std::size_t>(v)];
  }
  const IndexPolicy& policy() const { return *policy_; }

  /// Maximum agent table size — the per-vertex space bound O(m).
  std::size_t max_table_size() const;

 private:
  void discover();
  /// One vertex's hello: id, direct neighbors, current (µ̃, m) — shared by
  /// initial discovery and scoped churn rediscovery so the two can't drift.
  Message make_hello(int v) const;

  const ExtendedConflictGraph& ecg_;
  const ChannelModel& model_;
  NetConfig cfg_;
  std::unique_ptr<IndexPolicy> policy_;
  ControlChannel channel_;
  std::vector<VertexAgent> agents_;
  BranchAndBoundMwisSolver exact_;
  GreedyMwisSolver greedy_;
  SolveScratch lead_scratch_;  ///< Reused across agents' exact local solves.
  std::vector<int> prev_strategy_;
  std::int64_t t_ = 0;
};

}  // namespace mhca::net
