#include "net/control_channel.h"

#include <algorithm>
#include <cstdio>

#include "obs/trace.h"
#include "util/assert.h"
#include "util/hash.h"

namespace mhca::net {

namespace {

// Salts separating the independent fault decisions of one (flood, vertex).
constexpr std::uint64_t kSaltDrop = 0;  // PR-4 drop hash (kept bit-compatible)
constexpr std::uint64_t kSaltDup = 0x9e01;
constexpr std::uint64_t kSaltDefer = 0x9e02;
constexpr std::uint64_t kSaltDelay = 0x9e03;
constexpr std::uint64_t kSaltShuffle = 0x9e04;

std::uint64_t hash_double(double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  __builtin_memcpy(&bits, &v, sizeof(bits));
  return bits;
}

std::uint64_t message_digest(const Message& msg) {
  std::uint64_t h = hash_combine(static_cast<std::uint64_t>(msg.type),
                                 static_cast<std::uint64_t>(msg.origin));
  h = hash_combine(h, static_cast<std::uint64_t>(msg.round));
  h = hash_combine(h, static_cast<std::uint64_t>(msg.view.seq));
  h = hash_combine(h, static_cast<std::uint64_t>(msg.view.representative));
  h = hash_combine(h, hash_double(msg.mean));
  h = hash_combine(h, static_cast<std::uint64_t>(msg.count));
  h = hash_combine(h, static_cast<std::uint64_t>(msg.solicit));
  h = hash_combine(h, static_cast<std::uint64_t>(msg.probe_target));
  for (int v : msg.neighbor_list)
    h = hash_combine(h, static_cast<std::uint64_t>(v));
  for (const StatusEntry& e : msg.statuses) {
    h = hash_combine(h, static_cast<std::uint64_t>(e.vertex));
    h = hash_combine(h, static_cast<std::uint64_t>(e.status));
  }
  return h;
}

}  // namespace

ControlChannel::ControlChannel(const Graph& topology,
                               const FaultProfile& faults)
    : topology_(topology),
      faults_(faults),
      scratch_(topology.size()),
      visit_stamp_(static_cast<std::size_t>(topology.size()), 0) {
  faults_.validate();
}

ControlChannel::ControlChannel(const Graph& topology, double drop_prob,
                               std::uint64_t drop_seed)
    : ControlChannel(topology, FaultProfile{.drop_prob = drop_prob,
                                            .seed = drop_seed}) {}

void ControlChannel::set_mtu(int mtu) {
  MHCA_ASSERT(mtu >= wire::kMinMtu && mtu <= wire::kMaxMtu,
              "mtu = " + std::to_string(mtu) + " is outside the supported [" +
                  std::to_string(wire::kMinMtu) + ", " +
                  std::to_string(wire::kMaxMtu) + "] range");
  mtu_ = mtu;
}

double ControlChannel::fault_draw(int vertex, std::uint64_t salt) const {
  const std::uint64_t h = hash_combine(
      faults_.seed ^ salt,
      hash_combine(static_cast<std::uint64_t>(stats_.floods),
                   static_cast<std::uint64_t>(vertex)));
  return hash_to_unit(splitmix64(h));
}

void ControlChannel::record_flood(const Message& msg, int ttl,
                                  const std::vector<std::uint8_t>& bytes) {
  trace_hash_ = hash_combine(trace_hash_, 0xF100D);
  trace_hash_ = hash_combine(trace_hash_, message_digest(msg));
  trace_hash_ = hash_combine(trace_hash_, static_cast<std::uint64_t>(ttl));
  // The wire-level fold: replays must agree on the exact bytes, not just on
  // the struct fields they decode to.
  trace_hash_ = hash_combine(trace_hash_,
                             wire::bytes_digest(bytes.data(), bytes.size()));
}

void ControlChannel::record_delivery(int to, const Message& msg) {
  trace_hash_ = hash_combine(trace_hash_, 0xDE11);
  trace_hash_ = hash_combine(trace_hash_, static_cast<std::uint64_t>(to));
  trace_hash_ = hash_combine(trace_hash_, message_digest(msg));
}

void ControlChannel::bill(MsgType type, std::size_t wire_size,
                          std::int64_t transmissions) {
  stats_.messages += transmissions;
  stats_.messages_by_type[static_cast<std::size_t>(type)] += transmissions;
  const auto bytes =
      transmissions * static_cast<std::int64_t>(wire_size);
  stats_.bytes_on_wire += bytes;
  stats_.bytes_by_type[static_cast<std::size_t>(type)] += bytes;
  stats_.fragments += transmissions * wire::fragments_of(wire_size, mtu_);
}

void ControlChannel::deliver_copies(
    int vertex, const Message& msg,
    const std::shared_ptr<const std::vector<std::uint8_t>>& bytes,
    const std::function<void(int, const Message&)>& deliver,
    std::vector<Pending>& same_flood) {
  // Duplication: the duplicate is a real retransmission — billed, like any
  // retried message (airtime is airtime).
  int copies = 1;
  if (faults_.dup_prob > 0.0 &&
      fault_draw(vertex, kSaltDup) < faults_.dup_prob) {
    copies = 2;
    ++stats_.duplicates;
    bill(msg.type, bytes->size(), 1);
  }
  for (int c = 0; c < copies; ++c) {
    const std::uint64_t copy_salt = static_cast<std::uint64_t>(c) << 32;
    if (faults_.reorder_prob > 0.0 &&
        fault_draw(vertex, kSaltDefer ^ copy_salt) < faults_.reorder_prob) {
      ++stats_.deferred;
      const std::uint64_t shuffle = splitmix64(hash_combine(
          faults_.seed ^ kSaltShuffle ^ copy_salt,
          hash_combine(static_cast<std::uint64_t>(stats_.floods),
                       static_cast<std::uint64_t>(vertex))));
      if (faults_.delay_slots_max == 0) {
        // Pure reordering: lands after this flood's in-order deliveries.
        same_flood.push_back(Pending{round_, shuffle, vertex, bytes});
      } else {
        const int d = 1 + static_cast<int>(
                              splitmix64(hash_combine(
                                  faults_.seed ^ kSaltDelay ^ copy_salt,
                                  hash_combine(
                                      static_cast<std::uint64_t>(stats_.floods),
                                      static_cast<std::uint64_t>(vertex)))) %
                              static_cast<std::uint64_t>(
                                  faults_.delay_slots_max));
        pending_.push_back(Pending{round_ + d, shuffle, vertex, bytes});
      }
      continue;
    }
    record_delivery(vertex, msg);
    deliver(vertex, msg);
  }
}

void ControlChannel::flood(
    const Message& msg, int ttl,
    const std::function<void(int, const Message&)>& deliver) {
  // Marshal once per flood: the bytes are the unit of transfer everywhere
  // below, and the decoded copy is what receivers actually see.
  auto bytes = std::make_shared<std::vector<std::uint8_t>>();
  wire::encode(msg, *bytes);
  flood_impl(msg, std::move(bytes), ttl, deliver);
}

void ControlChannel::flood_encoded(
    const std::shared_ptr<const std::vector<std::uint8_t>>& bytes, int ttl,
    const std::function<void(int, const Message&)>& deliver) {
  MHCA_ASSERT(bytes != nullptr && !bytes->empty(), "empty encoded flood");
  const Message msg = wire::decode(bytes->data(), bytes->size());
  flood_impl(msg, bytes, ttl, deliver);
}

void ControlChannel::flood_impl(
    const Message& msg,
    const std::shared_ptr<const std::vector<std::uint8_t>>& bytes, int ttl,
    const std::function<void(int, const Message&)>& deliver) {
  MHCA_ASSERT(msg.origin >= 0 && msg.origin < topology_.size(),
              "flood origin out of range");
  MHCA_ASSERT(ttl >= 0, "negative ttl");
  const std::size_t wire_size = bytes->size();
  MHCA_ASSERT(wire_size == wire::encoded_size(msg),
              "encoded flood size disagrees with encoded_size()");

  // Per-flood trace span (src/obs): one relaxed load when tracing is off;
  // nothing below branches on `tr`, so the flood — and the trace_hash folds
  // in record_flood/record_delivery — is bit-identical either way.
  static constexpr const char* kFloodSpanNames[kNumMsgTypes] = {
      "flood.hello", "flood.weight_update", "flood.leader_declare",
      "flood.determination", "flood.view_change"};
  obs::TraceRecorder* const tr = obs::trace();
  char targs[80];
  if (tr)
    std::snprintf(targs, sizeof(targs),
                  "{\"origin\":%d,\"ttl\":%d,\"bytes\":%zu}", msg.origin, ttl,
                  wire_size);
  obs::ScopedSpan span(tr, obs::kTidChannel,
                       kFloodSpanNames[static_cast<std::size_t>(msg.type)],
                       tr ? std::string(targs) : std::string());

  ++stats_.floods;
  record_flood(msg, ttl, *bytes);

  // The always-on round-trip invariant: what receivers decode from the wire
  // must be exactly what the sender marshalled. Deliveries below hand out
  // this decoded copy, never the caller's struct.
  const Message decoded = wire::decode(bytes->data(), wire_size);
  MHCA_ASSERT(message_digest(decoded) == message_digest(msg),
              "wire round-trip changed the message (encode/decode drift)");

  if (!faults_.any()) {
    scratch_.k_hop_neighborhood(topology_, msg.origin, ttl, reach_buf_);
    bill(msg.type, wire_size, static_cast<std::int64_t>(reach_buf_.size()));
    for (int v : reach_buf_) {
      if (v == msg.origin) continue;
      record_delivery(v, decoded);
      deliver(v, decoded);
    }
    return;
  }

  // Faulty BFS: a vertex that fails reception neither delivers nor
  // forwards; a vertex whose delivery is deferred still forwards (the delay
  // models a slow receive path, not a broken relay).
  ++visit_epoch_;
  struct Item {
    int vertex;
    int depth;
  };
  std::vector<Item> queue;
  queue.push_back({msg.origin, 0});
  visit_stamp_[static_cast<std::size_t>(msg.origin)] = visit_epoch_;
  std::size_t head = 0;
  std::int64_t transmitters = 0;
  std::vector<Pending> same_flood;
  while (head < queue.size()) {
    const Item it = queue[head++];
    ++transmitters;  // this vertex retransmits the flood once
    if (it.depth == ttl) continue;
    for (int u : topology_.neighbors(it.vertex)) {
      auto ui = static_cast<std::size_t>(u);
      if (visit_stamp_[ui] == visit_epoch_) continue;
      visit_stamp_[ui] = visit_epoch_;
      if (faults_.drop_prob > 0.0 &&
          fault_draw(u, kSaltDrop) < faults_.drop_prob) {
        ++stats_.drops;
        continue;
      }
      queue.push_back({u, it.depth + 1});
      deliver_copies(u, decoded, bytes, deliver, same_flood);
    }
  }
  bill(msg.type, wire_size, transmitters);

  if (!same_flood.empty()) {
    std::sort(same_flood.begin(), same_flood.end(),
              [](const Pending& a, const Pending& b) {
                if (a.shuffle_key != b.shuffle_key)
                  return a.shuffle_key < b.shuffle_key;
                return a.to < b.to;
              });
    for (const Pending& p : same_flood) {
      const Message m = wire::decode(p.bytes->data(), p.bytes->size());
      record_delivery(p.to, m);
      deliver(p.to, m);
    }
  }
}

void ControlChannel::begin_slot(
    std::int64_t round,
    const std::function<void(int, const Message&)>& dispatch) {
  round_ = round;
  if (pending_.empty()) return;
  std::vector<Pending> due;
  std::size_t kept = 0;
  for (std::size_t i = 0; i < pending_.size(); ++i) {
    if (pending_[i].due_round <= round)
      due.push_back(std::move(pending_[i]));
    else
      pending_[kept++] = std::move(pending_[i]);
  }
  pending_.resize(kept);
  std::sort(due.begin(), due.end(), [](const Pending& a, const Pending& b) {
    if (a.shuffle_key != b.shuffle_key) return a.shuffle_key < b.shuffle_key;
    return a.to < b.to;
  });
  for (const Pending& p : due) {
    // Stragglers decode when they finally land — the queue held datagrams.
    const Message m = wire::decode(p.bytes->data(), p.bytes->size());
    record_delivery(p.to, m);
    dispatch(p.to, m);
  }
}

}  // namespace mhca::net
