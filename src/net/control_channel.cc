#include "net/control_channel.h"

#include "util/assert.h"
#include "util/hash.h"

namespace mhca::net {

ControlChannel::ControlChannel(const Graph& topology, double drop_prob,
                               std::uint64_t drop_seed)
    : topology_(topology),
      drop_prob_(drop_prob),
      drop_seed_(drop_seed),
      scratch_(topology.size()),
      visit_stamp_(static_cast<std::size_t>(topology.size()), 0) {
  MHCA_ASSERT(drop_prob >= 0.0 && drop_prob < 1.0,
              "drop probability out of range");
}

void ControlChannel::flood(
    const Message& msg, int ttl,
    const std::function<void(int, const Message&)>& deliver) {
  MHCA_ASSERT(msg.origin >= 0 && msg.origin < topology_.size(),
              "flood origin out of range");
  MHCA_ASSERT(ttl >= 0, "negative ttl");
  ++stats_.floods;

  if (drop_prob_ <= 0.0) {
    scratch_.k_hop_neighborhood(topology_, msg.origin, ttl, reach_buf_);
    stats_.messages += static_cast<std::int64_t>(reach_buf_.size());
    stats_.messages_by_type[static_cast<std::size_t>(msg.type)] +=
        static_cast<std::int64_t>(reach_buf_.size());
    for (int v : reach_buf_) {
      if (v == msg.origin) continue;
      deliver(v, msg);
    }
    return;
  }

  // Lossy BFS: a vertex that fails reception neither delivers nor forwards.
  ++visit_epoch_;
  struct Item {
    int vertex;
    int depth;
  };
  std::vector<Item> queue;
  queue.push_back({msg.origin, 0});
  visit_stamp_[static_cast<std::size_t>(msg.origin)] = visit_epoch_;
  std::size_t head = 0;
  std::int64_t transmitters = 0;
  while (head < queue.size()) {
    const Item it = queue[head++];
    ++transmitters;  // this vertex retransmits the flood once
    if (it.depth == ttl) continue;
    for (int u : topology_.neighbors(it.vertex)) {
      auto ui = static_cast<std::size_t>(u);
      if (visit_stamp_[ui] == visit_epoch_) continue;
      visit_stamp_[ui] = visit_epoch_;
      const std::uint64_t h = hash_combine(
          drop_seed_, hash_combine(static_cast<std::uint64_t>(stats_.floods),
                                   static_cast<std::uint64_t>(u)));
      if (hash_to_unit(splitmix64(h)) < drop_prob_) {
        ++stats_.drops;
        continue;
      }
      deliver(u, msg);
      queue.push_back({u, it.depth + 1});
    }
  }
  stats_.messages += transmitters;
  stats_.messages_by_type[static_cast<std::size_t>(msg.type)] += transmitters;
}

}  // namespace mhca::net
