#include "net/agent.h"

#include <algorithm>

#include "graph/hop.h"
#include "graph/neighborhood_cache.h"
#include "util/assert.h"

namespace mhca::net {

VertexAgent::VertexAgent(int id, int r, bool memoize_cover)
    : id_(id), r_(r), memoize_cover_(memoize_cover) {
  MHCA_ASSERT(id >= 0, "negative vertex id");
  MHCA_ASSERT(r >= 1, "r must be at least 1");
}

void VertexAgent::on_hello(const Message& msg) {
  MHCA_ASSERT(!discovered_, "hello after discovery finalized");
  hello_lists_[msg.origin] = Hello{msg.neighbor_list, msg.mean, msg.count};
}

void VertexAgent::reset_discovery() {
  MHCA_ASSERT(discovered_, "reset_discovery before initial discovery");
  discovered_ = false;
  hello_lists_.clear();
  own_neighbors_.clear();
}

void VertexAgent::set_own_neighbors(std::vector<int> neighbors) {
  own_neighbors_ = std::move(neighbors);
}

void VertexAgent::finalize_discovery() {
  MHCA_ASSERT(!discovered_, "discovery finalized twice");
  members_.clear();
  members_.push_back(id_);
  for (const auto& [origin, _] : hello_lists_) members_.push_back(origin);
  std::sort(members_.begin(), members_.end());
  members_.erase(std::unique(members_.begin(), members_.end()),
                 members_.end());

  local_graph_ = Graph(static_cast<int>(members_.size()));
  auto add_edges_of = [&](int origin, const std::vector<int>& nbs) {
    const int lo = local_id(origin);
    for (int u : nbs) {
      const auto it =
          std::lower_bound(members_.begin(), members_.end(), u);
      if (it != members_.end() && *it == u)
        local_graph_.add_edge(lo, static_cast<int>(it - members_.begin()));
    }
  };
  add_edges_of(id_, own_neighbors_);
  for (const auto& [origin, hello] : hello_lists_)
    add_edges_of(origin, hello.neighbors);
  local_graph_.finalize();

  // Memoize the r-ball (computed on the *local* subgraph — identical to
  // global r-hop distance because every shortest path of length <= r stays
  // inside J_{2r+1}(me)) and its weight-free clique cover: both are static
  // for the lifetime of the network, while indices change every round.
  BfsScratch scratch(local_graph_.size());
  r_ball_local_ =
      scratch.k_hop_neighborhood(local_graph_, local_id(id_), r_);
  if (memoize_cover_) {
    r_ball_cliques_ = NeighborhoodCache::build_ball_cover(
        local_graph_, r_ball_local_, r_ball_cover_);
  }

  table_.clear();
  for (int m : members_) {
    if (m == id_) continue;
    // Seed the entry from the hello's carried statistics: zeros at initial
    // discovery (nothing learned yet), the sender's live (µ̃, m) when a
    // topology change brought it into this agent's horizon mid-run.
    const Hello& hello = hello_lists_.at(m);
    Entry e;
    e.mean = hello.mean;
    e.count = hello.count;
    table_.emplace(m, e);
  }
  hello_lists_.clear();
  discovered_ = true;
}

int VertexAgent::local_id(int global) const {
  const auto it = std::lower_bound(members_.begin(), members_.end(), global);
  MHCA_ASSERT(it != members_.end() && *it == global,
              "vertex not in local table");
  return static_cast<int>(it - members_.begin());
}

void VertexAgent::observe(double reward) {
  const double m_old = static_cast<double>(count_);
  ++count_;
  mean_ = (mean_ * m_old + reward) / static_cast<double>(count_);
}

void VertexAgent::begin_round(const IndexPolicy& policy, std::int64_t t,
                              int num_arms) {
  MHCA_ASSERT(discovered_, "begin_round before discovery");
  // An off-air node never contends: it enters every round pre-marked. Its
  // vertices are isolated by then (dynamics removed their edges), so no
  // live agent's table still lists them as competition.
  status_ = active_ ? VertexStatus::kCandidate : VertexStatus::kLoser;
  own_index_ = policy.index_from(mean_, count_, id_, t, num_arms);
  for (auto& [v, e] : table_) {
    e.status = VertexStatus::kCandidate;
    e.index = policy.index_from(e.mean, e.count, v, t, num_arms);
  }
}

void VertexAgent::on_weight_update(const Message& msg) {
  const auto it = table_.find(msg.origin);
  if (it == table_.end()) return;  // beyond my 2r+1 horizon (shouldn't occur)
  it->second.mean = msg.mean;
  it->second.count = msg.count;
}

bool VertexAgent::should_lead() const {
  if (status_ != VertexStatus::kCandidate) return false;
  const std::pair<double, int> my_key{own_index_, -id_};
  for (const auto& [v, e] : table_) {
    if (e.status != VertexStatus::kCandidate) continue;
    if (std::pair<double, int>{e.index, -v} > my_key) return false;
  }
  return true;
}

void VertexAgent::gather_local_candidates() {
  MHCA_ASSERT(status_ == VertexStatus::kCandidate, "non-candidate leading");
  cand_buf_.clear();
  cand_cover_buf_.clear();
  weight_buf_.assign(static_cast<std::size_t>(local_graph_.size()), 0.0);
  for (std::size_t i = 0; i < r_ball_local_.size(); ++i) {
    const int lv = r_ball_local_[i];
    const int gv = members_[static_cast<std::size_t>(lv)];
    if (gv == id_) {
      cand_buf_.push_back(lv);
      if (memoize_cover_) cand_cover_buf_.push_back(r_ball_cover_[i]);
      weight_buf_[static_cast<std::size_t>(lv)] = own_index_;
    } else {
      const Entry& e = table_.at(gv);
      if (e.status == VertexStatus::kCandidate) {
        cand_buf_.push_back(lv);
        if (memoize_cover_) cand_cover_buf_.push_back(r_ball_cover_[i]);
        weight_buf_[static_cast<std::size_t>(lv)] = e.index;
      }
    }
  }
}

std::vector<StatusEntry> VertexAgent::verdicts_from(const MwisResult& res) {
  std::vector<char> is_winner(static_cast<std::size_t>(local_graph_.size()), 0);
  for (int lv : res.vertices) is_winner[static_cast<std::size_t>(lv)] = 1;
  std::vector<char> decided(static_cast<std::size_t>(local_graph_.size()), 0);
  std::vector<StatusEntry> verdicts;
  verdicts.reserve(cand_buf_.size());
  for (int lv : cand_buf_) {
    decided[static_cast<std::size_t>(lv)] = 1;
    verdicts.push_back(StatusEntry{
        members_[static_cast<std::size_t>(lv)],
        is_winner[static_cast<std::size_t>(lv)] ? VertexStatus::kWinner
                                                : VertexStatus::kLoser});
  }
  // Centralized-PTAS removal rule: Candidates adjacent to a fresh Winner
  // lose as well (they may sit at distance r+1, still inside the table).
  for (int lw : res.vertices) {
    for (int lu : local_graph_.neighbors(lw)) {
      if (decided[static_cast<std::size_t>(lu)]) continue;
      const int gu = members_[static_cast<std::size_t>(lu)];
      const VertexStatus st =
          gu == id_ ? status_ : table_.at(gu).status;
      if (st != VertexStatus::kCandidate) continue;
      decided[static_cast<std::size_t>(lu)] = 1;
      verdicts.push_back(StatusEntry{gu, VertexStatus::kLoser});
    }
  }
  return verdicts;
}

std::vector<StatusEntry> VertexAgent::lead(MwisSolver& solver) {
  gather_local_candidates();
  const MwisResult res = solver.solve(local_graph_, weight_buf_, cand_buf_);
  return verdicts_from(res);
}

std::vector<StatusEntry> VertexAgent::lead(
    const BranchAndBoundMwisSolver& solver, SolveScratch& scratch,
    bool use_memoized_cover) {
  gather_local_candidates();
  BnbSolveOptions opts;
  if (use_memoized_cover) {
    MHCA_ASSERT(memoize_cover_, "agent was built without a memoized cover");
    opts.cand_clique_ids = cand_cover_buf_;
    opts.clique_id_bound = r_ball_cliques_;
  }
  const MwisResult res = solver.solve_with_scratch(local_graph_, weight_buf_,
                                                   cand_buf_, scratch, opts);
  return verdicts_from(res);
}

void VertexAgent::on_determination(const Message& msg) {
  for (const StatusEntry& e : msg.statuses) {
    if (e.vertex == id_) {
      status_ = e.status;
      continue;
    }
    const auto it = table_.find(e.vertex);
    if (it != table_.end()) it->second.status = e.status;
  }
}

}  // namespace mhca::net
