#include "net/agent.h"

#include <algorithm>

#include "graph/hop.h"
#include "graph/neighborhood_cache.h"
#include "util/assert.h"

namespace mhca::net {

VertexAgent::VertexAgent(int id, int r, bool memoize_cover,
                         MembershipMode mode, LivenessParams liveness)
    : id_(id), r_(r), memoize_cover_(memoize_cover), mode_(mode),
      liveness_(liveness) {
  MHCA_ASSERT(id >= 0, "negative vertex id");
  MHCA_ASSERT(r >= 1, "r must be at least 1");
  if (mode_ == MembershipMode::kViewSync) {
    MHCA_ASSERT(liveness_.hello_timeout_slots >= 2,
                "hello_timeout_slots = " +
                    std::to_string(liveness_.hello_timeout_slots) +
                    " must be >= 2 (keep-alives go out every "
                    "hello_timeout_slots - 1 rounds)");
    MHCA_ASSERT(liveness_.hello_max_retries >= 0,
                "hello_max_retries must be >= 0");
    MHCA_ASSERT(liveness_.backoff_base >= 1, "backoff_base must be >= 1");
  }
}

void VertexAgent::on_hello(const Message& msg) {
  MHCA_ASSERT(mode_ == MembershipMode::kOmniscient,
              "on_hello is the omniscient-discovery path; view-sync hellos "
              "go through on_membership_message");
  MHCA_ASSERT(!discovered_, "hello after discovery finalized");
  hello_lists_[msg.origin] = Hello{msg.neighbor_list, msg.mean, msg.count};
}

void VertexAgent::reset_discovery() {
  MHCA_ASSERT(discovered_, "reset_discovery before initial discovery");
  discovered_ = false;
  hello_lists_.clear();
  own_neighbors_.clear();
}

void VertexAgent::set_own_neighbors(std::vector<int> neighbors) {
  own_neighbors_ = std::move(neighbors);
}

template <typename NeighborsOf>
void VertexAgent::build_structures(NeighborsOf&& neighbors_of) {
  local_graph_ = Graph(static_cast<int>(members_.size()));
  auto add_edges_of = [&](int origin, const std::vector<int>& nbs) {
    const int lo = local_id(origin);
    for (int u : nbs) {
      const auto it = std::lower_bound(members_.begin(), members_.end(), u);
      if (it != members_.end() && *it == u)
        local_graph_.add_edge(lo, static_cast<int>(it - members_.begin()));
    }
  };
  for (int m : members_) add_edges_of(m, neighbors_of(m));
  local_graph_.finalize();

  // Memoize the r-ball (computed on the *local* subgraph — identical to
  // global r-hop distance because every shortest path of length <= r stays
  // inside J_{2r+1}(me)) and its weight-free clique cover: both are static
  // between membership changes, while indices change every round.
  BfsScratch scratch(local_graph_.size());
  r_ball_local_ =
      scratch.k_hop_neighborhood(local_graph_, local_id(id_), r_);
  if (memoize_cover_) {
    r_ball_cliques_ = NeighborhoodCache::build_ball_cover(
        local_graph_, r_ball_local_, r_ball_cover_);
  }
}

void VertexAgent::finalize_discovery() {
  MHCA_ASSERT(!discovered_, "discovery finalized twice");
  if (mode_ == MembershipMode::kViewSync) {
    // Initial discovery filled knowledge_ silently (no view bumps while the
    // whole network introduces itself at once); one rebuild closes it.
    rebuild_local_view();
    needs_rebuild_ = false;
    membership_changed_ = false;
    discovered_ = true;
    return;
  }
  members_.clear();
  members_.push_back(id_);
  for (const auto& [origin, _] : hello_lists_) members_.push_back(origin);
  std::sort(members_.begin(), members_.end());
  members_.erase(std::unique(members_.begin(), members_.end()),
                 members_.end());

  build_structures([&](int m) -> const std::vector<int>& {
    return m == id_ ? own_neighbors_ : hello_lists_.at(m).neighbors;
  });

  table_.clear();
  for (int m : members_) {
    if (m == id_) continue;
    // Seed the entry from the hello's carried statistics: zeros at initial
    // discovery (nothing learned yet), the sender's live (µ̃, m) when a
    // topology change brought it into this agent's horizon mid-run.
    const Hello& hello = hello_lists_.at(m);
    Entry e;
    e.mean = hello.mean;
    e.count = hello.count;
    table_.emplace(m, e);
  }
  hello_lists_.clear();
  discovered_ = true;
}

void VertexAgent::rebuild_local_view() {
  members_.clear();
  members_.reserve(knowledge_.size() + 1);
  // knowledge_ is ordered by id; splice self into the sorted run.
  bool self_placed = false;
  for (const auto& [m, _] : knowledge_) {
    if (!self_placed && id_ < m) {
      members_.push_back(id_);
      self_placed = true;
    }
    members_.push_back(m);
  }
  if (!self_placed) members_.push_back(id_);

  build_structures([&](int m) -> const std::vector<int>& {
    return m == id_ ? own_neighbors_ : knowledge_.at(m).neighbors;
  });

  table_.clear();
  for (const auto& [m, k] : knowledge_) {
    Entry e;
    e.mean = k.mean;
    e.count = k.count;
    table_.emplace(m, e);
  }
}

int VertexAgent::local_id(int global) const {
  const auto it = std::lower_bound(members_.begin(), members_.end(), global);
  MHCA_ASSERT(it != members_.end() && *it == global,
              "vertex not in local table");
  return static_cast<int>(it - members_.begin());
}

// ---------------------------------------------- view-synchronous membership

void VertexAgent::maybe_adopt(const ViewId& v) {
  if (v > view_) view_ = v;
}

void VertexAgent::bump_view() {
  view_ = ViewId{view_.seq + 1, id_};
  view_dirty_ = true;
  ++counters_.view_changes;
}

std::int64_t VertexAgent::backoff_delay(int attempt) const {
  std::int64_t d = 1;
  for (int i = 0; i < attempt; ++i) {
    d *= liveness_.backoff_base;
    if (d > 1'000'000) return 1'000'000;  // cap: schedules stay finite
  }
  return d;
}

void VertexAgent::on_membership_message(const Message& msg,
                                        std::int64_t now) {
  MHCA_ASSERT(mode_ == MembershipMode::kViewSync,
              "membership messages require view-sync mode");
  if (msg.origin == id_) return;
  maybe_adopt(msg.view);
  if (msg.probe_target == id_ || msg.solicit) hello_pending_ = true;

  const auto it = knowledge_.find(msg.origin);
  if (it == knowledge_.end()) {
    MemberKnowledge k;
    k.neighbors = msg.neighbor_list;
    k.mean = msg.mean;
    k.count = msg.count;
    k.last_heard = msg.round;
    k.last_hello_round = msg.round;
    knowledge_.emplace(msg.origin, std::move(k));
    if (discovered_) {
      // Admission: a node entered this agent's horizon mid-run.
      needs_rebuild_ = true;
      membership_changed_ = true;
    }
    return;
  }

  MemberKnowledge& k = it->second;
  k.last_heard = std::max(k.last_heard, msg.round);
  if (k.suspect && now - k.last_heard <= liveness_.hello_timeout_slots) {
    k.suspect = false;
    k.probes_sent = 0;
    --suspect_count_;
  }
  // Statistics are count-monotonic: a member's count only grows and its
  // mean is a function of its count, so "newer" is decidable without
  // trusting delivery order — duplicated or delayed payloads never regress.
  if (msg.count >= k.count) {
    k.count = msg.count;
    k.mean = msg.mean;
    const auto t = table_.find(msg.origin);
    if (t != table_.end()) {
      t->second.mean = msg.mean;
      t->second.count = msg.count;
    }
  }
  // Adjacency is round-monotonic: accept only payloads at least as new as
  // the newest already applied (a delayed hello must not resurrect edges).
  if (msg.round >= k.last_hello_round) {
    k.last_hello_round = msg.round;
    if (msg.neighbor_list != k.neighbors) {
      k.neighbors = msg.neighbor_list;
      needs_rebuild_ = true;
    }
  }
}

std::vector<int> VertexAgent::liveness_pass(std::int64_t now) {
  MHCA_ASSERT(mode_ == MembershipMode::kViewSync,
              "liveness_pass requires view-sync mode");
  std::vector<int> probes;
  std::vector<int> evict;
  for (auto& [m, k] : knowledge_) {
    if (now - k.last_heard <= liveness_.hello_timeout_slots) {
      if (k.suspect) {
        k.suspect = false;
        k.probes_sent = 0;
        --suspect_count_;
      }
      continue;
    }
    if (!k.suspect) {
      k.suspect = true;
      k.probes_sent = 0;
      k.next_probe = now;
      ++suspect_count_;
      ++counters_.timeouts;
    }
    if (now < k.next_probe) continue;
    if (k.probes_sent < liveness_.hello_max_retries) {
      probes.push_back(m);
      ++k.probes_sent;
      ++counters_.retries;
      k.next_probe = now + backoff_delay(k.probes_sent);
    } else {
      evict.push_back(m);
    }
  }
  for (int m : evict) {
    const auto it = knowledge_.find(m);
    if (it->second.suspect) --suspect_count_;
    knowledge_.erase(it);
    needs_rebuild_ = true;
    membership_changed_ = true;
  }
  return probes;
}

void VertexAgent::flush_membership() {
  if (!needs_rebuild_) return;
  rebuild_local_view();
  needs_rebuild_ = false;
  if (membership_changed_) {
    membership_changed_ = false;
    bump_view();
  }
}

bool VertexAgent::take_view_dirty() {
  const bool was = view_dirty_;
  view_dirty_ = false;
  return was;
}

bool VertexAgent::take_hello_pending() {
  const bool was = hello_pending_;
  hello_pending_ = false;
  return was;
}

bool VertexAgent::take_solicit() {
  const bool was = solicit_pending_;
  solicit_pending_ = false;
  return was;
}

void VertexAgent::on_rejoin() {
  MHCA_ASSERT(mode_ == MembershipMode::kViewSync,
              "on_rejoin requires view-sync mode");
  // Whatever this agent believed before going dark is stale; restart from
  // its own link-layer truth and ask the neighborhood to re-introduce
  // itself (solicited hellos).
  knowledge_.clear();
  suspect_count_ = 0;
  needs_rebuild_ = true;
  membership_changed_ = true;
  hello_pending_ = true;
  solicit_pending_ = true;
}

void VertexAgent::refresh_own_neighbors(std::vector<int> neighbors) {
  MHCA_ASSERT(mode_ == MembershipMode::kViewSync,
              "refresh_own_neighbors requires view-sync mode");
  if (neighbors == own_neighbors_) return;
  own_neighbors_ = std::move(neighbors);
  needs_rebuild_ = true;
  hello_pending_ = true;  // a real radio beacons on link change
}

bool VertexAgent::transmit_ok() const {
  if (mode_ != MembershipMode::kViewSync) return true;
  return !has_suspects() && decision_view_ == view_;
}

std::pair<double, std::int64_t> VertexAgent::member_stats(int v) const {
  if (mode_ == MembershipMode::kViewSync) {
    const auto it = knowledge_.find(v);
    MHCA_ASSERT(it != knowledge_.end(), "member_stats of unknown member");
    return {it->second.mean, it->second.count};
  }
  const auto it = table_.find(v);
  MHCA_ASSERT(it != table_.end(), "member_stats of unknown member");
  return {it->second.mean, it->second.count};
}

const std::vector<int>* VertexAgent::member_neighbors(int v) const {
  const auto it = knowledge_.find(v);
  return it == knowledge_.end() ? nullptr : &it->second.neighbors;
}

// --------------------------------------------------------- round lifecycle

void VertexAgent::observe(double reward) {
  const double m_old = static_cast<double>(count_);
  ++count_;
  mean_ = (mean_ * m_old + reward) / static_cast<double>(count_);
}

void VertexAgent::begin_round(const IndexPolicy& policy, std::int64_t t,
                              int num_arms) {
  MHCA_ASSERT(discovered_, "begin_round before discovery");
  round_now_ = t;
  // An off-air node never contends: it enters every round pre-marked. Its
  // vertices are isolated by then (dynamics removed their edges), so no
  // live agent's table still lists them as competition.
  status_ = active_ ? VertexStatus::kCandidate : VertexStatus::kLoser;
  own_index_ = policy.index_from(mean_, count_, id_, t, num_arms);
  for (auto& [v, e] : table_) {
    e.status = VertexStatus::kCandidate;
    e.index = policy.index_from(e.mean, e.count, v, t, num_arms);
  }
  if (mode_ == MembershipMode::kViewSync && active_ && has_suspects())
    ++counters_.stale_decisions;  // this round is decided under a stale view
}

void VertexAgent::on_weight_update(const Message& msg) {
  if (mode_ == MembershipMode::kViewSync) {
    maybe_adopt(msg.view);
    const auto kit = knowledge_.find(msg.origin);
    if (kit == knowledge_.end()) return;  // evicted; a keep-alive readmits
    MemberKnowledge& k = kit->second;
    k.last_heard = std::max(k.last_heard, msg.round);
    if (msg.count < k.count) return;  // delayed/duplicated: stale payload
    k.mean = msg.mean;
    k.count = msg.count;
  }
  const auto it = table_.find(msg.origin);
  if (it == table_.end()) return;  // beyond my 2r+1 horizon
  it->second.mean = msg.mean;
  it->second.count = msg.count;
}

bool VertexAgent::should_lead() const {
  if (status_ != VertexStatus::kCandidate) return false;
  // Conservative degradation: while membership is uncertain, never claim
  // leadership — a ghost entry might outrank this agent in reality, and a
  // missed contender is how double-claims happen.
  if (mode_ == MembershipMode::kViewSync && has_suspects()) return false;
  const std::pair<double, int> my_key{own_index_, -id_};
  for (const auto& [v, e] : table_) {
    if (e.status != VertexStatus::kCandidate) continue;
    if (std::pair<double, int>{e.index, -v} > my_key) return false;
  }
  return true;
}

void VertexAgent::gather_local_candidates() {
  MHCA_ASSERT(status_ == VertexStatus::kCandidate, "non-candidate leading");
  cand_buf_.clear();
  cand_cover_buf_.clear();
  weight_buf_.assign(static_cast<std::size_t>(local_graph_.size()), 0.0);
  for (std::size_t i = 0; i < r_ball_local_.size(); ++i) {
    const int lv = r_ball_local_[i];
    const int gv = members_[static_cast<std::size_t>(lv)];
    if (gv == id_) {
      cand_buf_.push_back(lv);
      if (memoize_cover_) cand_cover_buf_.push_back(r_ball_cover_[i]);
      weight_buf_[static_cast<std::size_t>(lv)] = own_index_;
    } else {
      const Entry& e = table_.at(gv);
      if (e.status == VertexStatus::kCandidate) {
        cand_buf_.push_back(lv);
        if (memoize_cover_) cand_cover_buf_.push_back(r_ball_cover_[i]);
        weight_buf_[static_cast<std::size_t>(lv)] = e.index;
      }
    }
  }
}

std::vector<StatusEntry> VertexAgent::verdicts_from(const MwisResult& res) {
  std::vector<char> is_winner(static_cast<std::size_t>(local_graph_.size()), 0);
  for (int lv : res.vertices) is_winner[static_cast<std::size_t>(lv)] = 1;
  std::vector<char> decided(static_cast<std::size_t>(local_graph_.size()), 0);
  std::vector<StatusEntry> verdicts;
  verdicts.reserve(cand_buf_.size());
  for (int lv : cand_buf_) {
    decided[static_cast<std::size_t>(lv)] = 1;
    verdicts.push_back(StatusEntry{
        members_[static_cast<std::size_t>(lv)],
        is_winner[static_cast<std::size_t>(lv)] ? VertexStatus::kWinner
                                                : VertexStatus::kLoser});
  }
  // Centralized-PTAS removal rule: Candidates adjacent to a fresh Winner
  // lose as well (they may sit at distance r+1, still inside the table).
  for (int lw : res.vertices) {
    for (int lu : local_graph_.neighbors(lw)) {
      if (decided[static_cast<std::size_t>(lu)]) continue;
      const int gu = members_[static_cast<std::size_t>(lu)];
      const VertexStatus st =
          gu == id_ ? status_ : table_.at(gu).status;
      if (st != VertexStatus::kCandidate) continue;
      decided[static_cast<std::size_t>(lu)] = 1;
      verdicts.push_back(StatusEntry{gu, VertexStatus::kLoser});
    }
  }
  return verdicts;
}

std::vector<StatusEntry> VertexAgent::lead(MwisSolver& solver) {
  gather_local_candidates();
  const MwisResult res = solver.solve(local_graph_, weight_buf_, cand_buf_);
  return verdicts_from(res);
}

std::vector<StatusEntry> VertexAgent::lead(
    const BranchAndBoundMwisSolver& solver, SolveScratch& scratch,
    bool use_memoized_cover) {
  gather_local_candidates();
  BnbSolveOptions opts;
  if (use_memoized_cover) {
    MHCA_ASSERT(memoize_cover_, "agent was built without a memoized cover");
    opts.cand_clique_ids = cand_cover_buf_;
    opts.clique_id_bound = r_ball_cliques_;
  }
  const MwisResult res = solver.solve_with_scratch(local_graph_, weight_buf_,
                                                   cand_buf_, scratch, opts);
  return verdicts_from(res);
}

void VertexAgent::on_determination(const Message& msg) {
  if (mode_ == MembershipMode::kViewSync) {
    maybe_adopt(msg.view);
    // A verdict from any round but the current one is a delayed wire's
    // ghost: the statuses it names were re-randomized at begin_round.
    if (msg.round != round_now_) return;
  }
  for (const StatusEntry& e : msg.statuses) {
    if (e.vertex == id_) {
      status_ = e.status;
      decision_view_ = msg.view;
      continue;
    }
    const auto it = table_.find(e.vertex);
    if (it != table_.end()) it->second.status = e.status;
  }
}

}  // namespace mhca::net
