#include "net/wire.h"

#include <cstring>

#include "util/hash.h"

namespace mhca::net::wire {

namespace {

// ------------------------------------------------------------- LE helpers
// Explicit byte-at-a-time little-endian packing: no host-endianness or
// alignment assumptions, and every read is bounds-checked by the cursor.

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_i32(std::vector<std::uint8_t>& out, std::int32_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
}

void put_i64(std::vector<std::uint8_t>& out, std::int64_t v) {
  put_u64(out, static_cast<std::uint64_t>(v));
}

void put_f64(std::vector<std::uint8_t>& out, double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(out, bits);
}

/// Bounds-checked read cursor over [data, data + len).
struct Cursor {
  const std::uint8_t* data;
  std::size_t len;
  std::size_t pos = 0;

  std::size_t remaining() const { return len - pos; }

  void need(std::size_t n, const char* what) const {
    if (remaining() < n)
      throw WireError(std::string("truncated buffer: reading ") + what +
                      " needs " + std::to_string(n) + " bytes but only " +
                      std::to_string(remaining()) + " remain (offset " +
                      std::to_string(pos) + " of " + std::to_string(len) +
                      ")");
  }

  std::uint8_t u8(const char* what) {
    need(1, what);
    return data[pos++];
  }

  std::uint16_t u16(const char* what) {
    need(2, what);
    std::uint16_t v = 0;
    for (int i = 0; i < 2; ++i)
      v |= static_cast<std::uint16_t>(data[pos++]) << (8 * i);
    return v;
  }

  std::uint32_t u32(const char* what) {
    need(4, what);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(data[pos++]) << (8 * i);
    return v;
  }

  std::uint64_t u64(const char* what) {
    need(8, what);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(data[pos++]) << (8 * i);
    return v;
  }

  std::int32_t i32(const char* what) {
    return static_cast<std::int32_t>(u32(what));
  }

  std::int64_t i64(const char* what) {
    return static_cast<std::int64_t>(u64(what));
  }

  double f64(const char* what) {
    const std::uint64_t bits = u64(what);
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
};

// --------------------------------------------------------------- payloads

bool carries_hello_payload(MsgType t) {
  return t == MsgType::kHello || t == MsgType::kViewChange;
}

std::size_t payload_size(const Message& msg) {
  switch (msg.type) {
    case MsgType::kHello:
    case MsgType::kViewChange:
      // mean + count + probe_target + solicit + n + neighbors
      return 8 + 8 + 4 + 1 + 4 + 4 * msg.neighbor_list.size();
    case MsgType::kWeightUpdate:
      return 8 + 8;  // mean + count
    case MsgType::kLeaderDeclare:
      return 0;
    case MsgType::kDetermination:
      return 4 + 5 * msg.statuses.size();  // n + n x (vertex, status)
  }
  return 0;
}

void encode_payload(const Message& msg, std::vector<std::uint8_t>& out) {
  switch (msg.type) {
    case MsgType::kHello:
    case MsgType::kViewChange:
      put_f64(out, msg.mean);
      put_i64(out, msg.count);
      put_i32(out, msg.probe_target);
      put_u8(out, msg.solicit ? 1 : 0);
      put_u32(out, static_cast<std::uint32_t>(msg.neighbor_list.size()));
      for (int v : msg.neighbor_list) put_i32(out, v);
      break;
    case MsgType::kWeightUpdate:
      put_f64(out, msg.mean);
      put_i64(out, msg.count);
      break;
    case MsgType::kLeaderDeclare:
      break;
    case MsgType::kDetermination:
      put_u32(out, static_cast<std::uint32_t>(msg.statuses.size()));
      for (const StatusEntry& e : msg.statuses) {
        put_i32(out, e.vertex);
        put_u8(out, static_cast<std::uint8_t>(e.status));
      }
      break;
  }
}

void decode_payload(Cursor& c, Message& msg) {
  if (carries_hello_payload(msg.type)) {
    msg.mean = c.f64("hello.mean");
    msg.count = c.i64("hello.count");
    msg.probe_target = c.i32("hello.probe_target");
    const std::uint8_t solicit = c.u8("hello.solicit");
    if (solicit > 1)
      throw WireError("hello.solicit byte = " + std::to_string(solicit) +
                      " is not a bool (0 or 1)");
    msg.solicit = solicit == 1;
    const std::uint32_t n = c.u32("hello.n_neighbors");
    // Guard the allocation against a lying count before reserving: the
    // remaining bytes bound how many 4-byte entries can exist.
    if (n > c.remaining() / 4)
      throw WireError("hello.n_neighbors = " + std::to_string(n) +
                      " exceeds the " + std::to_string(c.remaining()) +
                      " payload bytes that remain");
    msg.neighbor_list.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i)
      msg.neighbor_list.push_back(c.i32("hello.neighbor"));
    return;
  }
  switch (msg.type) {
    case MsgType::kWeightUpdate:
      msg.mean = c.f64("weight_update.mean");
      msg.count = c.i64("weight_update.count");
      break;
    case MsgType::kLeaderDeclare:
      break;
    case MsgType::kDetermination: {
      const std::uint32_t n = c.u32("determination.n_statuses");
      if (n > c.remaining() / 5)
        throw WireError("determination.n_statuses = " + std::to_string(n) +
                        " exceeds the " + std::to_string(c.remaining()) +
                        " payload bytes that remain");
      msg.statuses.reserve(n);
      for (std::uint32_t i = 0; i < n; ++i) {
        StatusEntry e;
        e.vertex = c.i32("determination.vertex");
        const std::uint8_t s = c.u8("determination.status");
        if (s > static_cast<std::uint8_t>(VertexStatus::kLoser))
          throw WireError("determination.status byte = " +
                          std::to_string(s) + " is not a VertexStatus");
        e.status = static_cast<VertexStatus>(s);
        msg.statuses.push_back(e);
      }
      break;
    }
    default:
      break;  // hello/view_change handled above
  }
}

}  // namespace

std::size_t encoded_size(const Message& msg) {
  return kHeaderSize + payload_size(msg);
}

void encode(const Message& msg, std::vector<std::uint8_t>& out) {
  out.clear();
  out.reserve(encoded_size(msg));
  put_u16(out, kMagic);
  put_u8(out, kVersion);
  put_u8(out, static_cast<std::uint8_t>(msg.type));
  put_i32(out, msg.origin);
  put_i64(out, msg.round);
  put_i64(out, msg.view.seq);
  put_i32(out, msg.view.representative);
  put_u32(out, static_cast<std::uint32_t>(payload_size(msg)));
  encode_payload(msg, out);
}

Message decode(const std::uint8_t* data, std::size_t len) {
  Cursor c{data, len};
  if (len < kHeaderSize)
    throw WireError("truncated buffer: " + std::to_string(len) +
                    " bytes is smaller than the " +
                    std::to_string(kHeaderSize) + "-byte header");
  const std::uint16_t magic = c.u16("magic");
  if (magic != kMagic)
    throw WireError("bad magic 0x" + std::to_string(magic) +
                    " (expected 0x" + std::to_string(kMagic) +
                    "); not a control-channel datagram");
  const std::uint8_t version = c.u8("version");
  if (version != kVersion)
    throw WireError("unknown wire version " + std::to_string(version) +
                    " (this build speaks version " +
                    std::to_string(kVersion) + ")");
  const std::uint8_t type = c.u8("type");
  if (type >= static_cast<std::uint8_t>(kNumMsgTypes))
    throw WireError("unknown message type " + std::to_string(type) +
                    " (valid: 0.." + std::to_string(kNumMsgTypes - 1) + ")");
  Message msg;
  msg.type = static_cast<MsgType>(type);
  msg.origin = c.i32("origin");
  msg.round = c.i64("round");
  msg.view.seq = c.i64("view.seq");
  msg.view.representative = c.i32("view.representative");
  const std::uint32_t payload_len = c.u32("payload_len");
  if (payload_len != len - kHeaderSize)
    throw WireError("payload_len = " + std::to_string(payload_len) +
                    " does not match the " +
                    std::to_string(len - kHeaderSize) +
                    " bytes after the header (buffer " +
                    (payload_len > len - kHeaderSize ? "truncated"
                                                     : "has trailing bytes") +
                    ")");
  decode_payload(c, msg);
  if (c.remaining() != 0)
    throw WireError("payload has " + std::to_string(c.remaining()) +
                    " trailing bytes after the last field");
  return msg;
}

bool try_decode(const std::uint8_t* data, std::size_t len, Message& out,
                std::string* error) {
  try {
    out = decode(data, len);
    return true;
  } catch (const WireError& e) {
    if (error != nullptr) *error = e.what();
    return false;
  }
}

std::uint64_t bytes_digest(const std::uint8_t* data, std::size_t len) {
  std::uint64_t h = hash_combine(0xB17E5ULL, len);
  std::size_t i = 0;
  for (; i + 8 <= len; i += 8) {
    std::uint64_t chunk = 0;
    std::memcpy(&chunk, data + i, 8);
    h = hash_combine(h, chunk);
  }
  if (i < len) {
    std::uint64_t tail = 0;
    std::memcpy(&tail, data + i, len - i);
    h = hash_combine(h, tail);
  }
  return h;
}

}  // namespace mhca::net::wire
