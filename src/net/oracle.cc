#include "net/oracle.h"

#include <algorithm>

#include "graph/hop.h"
#include "mwis/distributed_ptas.h"
#include "util/assert.h"

namespace mhca::net {

ConvergenceReport check_convergence(const DistributedRuntime& rt,
                                    const Graph& h) {
  MHCA_ASSERT(rt.config().membership == MembershipMode::kViewSync,
              "convergence is a view-sync notion (omniscient tables are "
              "correct by construction)");
  ConvergenceReport rep;
  const int horizon = 2 * rt.config().r + 1;
  BfsScratch scratch(h.size());
  std::vector<int> ball;
  auto sorted_neighbors = [&](int v) {
    const auto nb = h.neighbors(v);
    std::vector<int> out(nb.begin(), nb.end());
    std::sort(out.begin(), out.end());
    return out;
  };
  // Views can only equalize where messages can flow: compare per connected
  // component of the current wire (a churn split legitimately leaves each
  // island on its own epoch; leavers shed their edges, so inactive vertices
  // are isolated and never join a component).
  std::vector<char> visited(static_cast<std::size_t>(h.size()), 0);
  std::vector<int> queue;
  for (int s = 0; s < h.size(); ++s) {
    if (visited[static_cast<std::size_t>(s)] || !rt.agent(s).active())
      continue;
    const ViewId ref = rt.agent(s).view();
    queue.assign(1, s);
    visited[static_cast<std::size_t>(s)] = 1;
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const int x = queue[head];
      if (!(rt.agent(x).view() == ref)) rep.views_equal = false;
      for (int u : h.neighbors(x)) {
        if (visited[static_cast<std::size_t>(u)] || !rt.agent(u).active())
          continue;
        visited[static_cast<std::size_t>(u)] = 1;
        queue.push_back(u);
      }
    }
  }
  for (int v = 0; v < h.size(); ++v) {
    const VertexAgent& a = rt.agent(v);
    if (!a.active()) continue;
    if (a.has_suspects()) rep.no_suspects = false;
    scratch.k_hop_neighborhood(h, v, horizon, ball);
    std::sort(ball.begin(), ball.end());
    if (ball != a.members()) {
      rep.members_match = false;
      continue;  // per-member checks are meaningless against a wrong set
    }
    const std::vector<int>& in_flight = rt.prev_strategy();
    for (int m : ball) {
      if (m == v) continue;
      // Last-round winners refreshed their own stats at TX; the update
      // reaches the ball in the WB phase that opens the next round, before
      // any decision reads a table. That one-round lag is the protocol's
      // pipeline, not divergence — exempt exactly those members.
      const bool wb_pending = std::find(in_flight.begin(), in_flight.end(),
                                        m) != in_flight.end();
      const auto [mean, count] = a.member_stats(m);
      if (!wb_pending && (mean != rt.agent(m).own_mean() ||
                          count != rt.agent(m).own_count()))
        rep.stats_match = false;
      const std::vector<int>* believed = a.member_neighbors(m);
      if (believed == nullptr) {
        rep.adjacency_match = false;
        continue;
      }
      std::vector<int> got = *believed;
      std::sort(got.begin(), got.end());
      if (got != sorted_neighbors(m)) rep.adjacency_match = false;
    }
  }
  if (rt.channel().pending_deliveries() != 0) rep.no_pending = false;
  return rep;
}

std::vector<int> lockstep_decision(const DistributedRuntime& rt,
                                   const Graph& h, std::int64_t t_next) {
  const NetConfig& cfg = rt.config();
  DistributedPtasConfig ecfg;
  ecfg.r = cfg.r;
  ecfg.max_mini_rounds = cfg.D;
  ecfg.local_solver = cfg.local_solver;
  ecfg.bnb_node_cap = cfg.bnb_node_cap;
  ecfg.use_memoized_covers = cfg.use_memoized_covers;
  DistributedRobustPtas engine(h, ecfg);
  const int k_arms = h.size();
  std::vector<double> weights(static_cast<std::size_t>(h.size()), 0.0);
  std::vector<char> active(static_cast<std::size_t>(h.size()), 0);
  for (int v = 0; v < h.size(); ++v) {
    const VertexAgent& a = rt.agent(v);
    active[static_cast<std::size_t>(v)] = a.active() ? 1 : 0;
    weights[static_cast<std::size_t>(v)] =
        rt.policy().index_from(a.own_mean(), a.own_count(), v, t_next, k_arms);
  }
  return engine.run(weights, active).winners;
}

}  // namespace mhca::net
