// Declarative fault-injection profile for the control channel.
//
// Every fault decision is a pure hash of (seed, flood counter, vertex, salt)
// — no hidden RNG state — so a given (seed, schedule) pair replays the exact
// same drops, duplicates, reorders and delays byte for byte, run after run.
// That determinism is what makes the differential "faults" suite possible:
// identical inputs must produce identical message traces and decisions.
//
// Semantics per (flood, receiving vertex):
//   drop     — the vertex neither delivers nor forwards (existing PR-4
//              behavior, probability drop_prob).
//   dup      — the vertex receives the message twice; the duplicate is a
//              real retransmission and is billed on the channel
//              (probability dup_prob).
//   reorder  — delivery is deferred: with delay_slots_max == 0 it lands at
//              the end of the same flood (pure reordering among that
//              flood's receivers); with delay_slots_max >= 1 it lands in
//              the membership phase of a later slot, 1..delay_slots_max
//              slots out, interleaved with other deferred messages in
//              hash-shuffled order (probability reorder_prob). The vertex
//              still forwards immediately — delay models a slow receive
//              path, not a broken relay.
#pragma once

#include <cstdint>
#include <string>

#include "util/assert.h"

namespace mhca::net {

struct FaultProfile {
  double drop_prob = 0.0;     ///< Reception failure probability.
  double dup_prob = 0.0;      ///< Duplicate-delivery probability.
  double reorder_prob = 0.0;  ///< Deferred-delivery probability.
  int delay_slots_max = 0;    ///< Max deferral in slots (0 = same flood).
  std::uint64_t seed = 0;     ///< Seeds every fault decision.

  bool any() const {
    return drop_prob > 0.0 || dup_prob > 0.0 || reorder_prob > 0.0;
  }

  /// Throws std::logic_error naming the offending knob *and value* when a
  /// probability is outside its documented range — `drop_prob = 1.0` must
  /// say so, not fail as an anonymous bounds assert three layers down.
  void validate() const {
    const auto check_prob = [](double p, const char* name) {
      MHCA_ASSERT(p >= 0.0 && p < 1.0,
                  std::string(name) + " = " + std::to_string(p) +
                      " is outside the supported [0, 1) range");
    };
    check_prob(drop_prob, "drop_prob");
    check_prob(dup_prob, "dup_prob");
    check_prob(reorder_prob, "reorder_prob");
    MHCA_ASSERT(delay_slots_max >= 0,
                "delay_slots_max = " + std::to_string(delay_slots_max) +
                    " must be >= 0");
  }
};

}  // namespace mhca::net
