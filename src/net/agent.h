// Per-vertex protocol agent (paper Algorithm 3, vertex-local view).
//
// An agent stores only what a real node could learn from the control
// channel: the membership, adjacency, sufficient statistics (µ̃, m) and
// status of its (2r+1)-hop neighborhood — O(m) space as claimed in §IV-C.
// Every decision it takes (leader self-election, local MWIS, status
// updates) is a function of this local table alone.
//
// Two membership modes (net/view.h):
//   kOmniscient — the runtime's delta feed reopens discovery after churn
//     (on_hello / finalize_discovery / reset_discovery), the pre-view-sync
//     behavior, byte-identical round for round to the lockstep engine.
//   kViewSync — the agent infers membership from the wire alone. It keeps a
//     persistent, ordered knowledge base of every member it has heard from
//     (adjacency, statistics, last-heard round) fed by periodic
//     stat-carrying keep-alive hellos; a member silent past
//     hello_timeout_slots becomes a suspect and is probed with
//     exponentially backed-off retries (backoff_base^attempt slots apart,
//     hello_max_retries attempts); exhausting the retries evicts it and
//     advances the agent's ViewId. While any suspect is outstanding the
//     agent decides conservatively: it never self-elects as leader, and a
//     Winner whose verdict was minted under a different view than its
//     current one abstains from transmitting — degraded throughput, never a
//     double-claim the agent could have avoided. Per-agent counters
//     (retries, timeouts, view changes, stale decisions) expose the cost.
#pragma once

#include <cstdint>
#include <map>
#include <unordered_map>
#include <utility>
#include <vector>

#include "bandit/policy.h"
#include "graph/graph.h"
#include "mwis/branch_and_bound.h"
#include "mwis/distributed_ptas.h"
#include "net/message.h"
#include "net/view.h"

namespace mhca::net {

/// Liveness knobs of the view-synchronous membership layer.
struct LivenessParams {
  int hello_timeout_slots = 4;  ///< Silence (slots) before suspicion.
  int hello_max_retries = 3;    ///< Probes before eviction.
  int backoff_base = 2;         ///< Probe k waits backoff_base^k slots.
};

/// Per-agent robustness counters (runtime stats; aggregated per run).
struct AgentCounters {
  std::int64_t retries = 0;         ///< Liveness probes flooded.
  std::int64_t timeouts = 0;        ///< Members that became suspects.
  std::int64_t view_changes = 0;    ///< Own membership-epoch advances.
  std::int64_t stale_decisions = 0; ///< Rounds decided under stale views.
};

class VertexAgent {
 public:
  /// `memoize_cover`: also build this agent's r-ball clique cover at
  /// discovery (only useful when the runtime leads with memoized covers).
  VertexAgent(int id, int r, bool memoize_cover = false,
              MembershipMode mode = MembershipMode::kOmniscient,
              LivenessParams liveness = {});

  int id() const { return id_; }
  VertexStatus status() const { return status_; }
  MembershipMode mode() const { return mode_; }

  /// Whether this vertex's node is on the air (dynamics: a node that left
  /// keeps its agent — and its learned statistics — but sits out every
  /// round as a Loser until it rejoins).
  bool active() const { return active_; }
  void set_active(bool active) { active_ = active; }

  // ---- Discovery (initial, and scoped re-discovery after churn) ----
  /// Record another vertex's hello (its id, direct neighbor list, and
  /// current sufficient statistics — the paper's first WB round collects
  /// ids *and* weights of the local neighborhood). Omniscient mode only;
  /// view-sync hellos go through on_membership_message.
  void on_hello(const Message& msg);
  /// Own direct neighbors (an agent knows who it can hear — a link-layer
  /// fact in both modes).
  void set_own_neighbors(std::vector<int> neighbors);
  /// Build the local subgraph from the collected hellos. Must be called
  /// once after all hellos have been delivered (both modes use this to
  /// close initial discovery).
  void finalize_discovery();
  /// Re-open discovery after the local topology changed (omniscient mode:
  /// the runtime calls this for every agent within the change's blast
  /// radius, then re-floods hellos and finalizes again). Learning state is
  /// untouched; the member table is rebuilt from the fresh hellos, whose
  /// carried statistics keep every index consistent network-wide.
  void reset_discovery();

  /// Members of this agent's (2r+1)-hop table (sorted, including self) —
  /// the "old ball" side of the runtime's blast-radius computation, and the
  /// membership the convergence oracle compares against ground truth.
  const std::vector<int>& members() const { return members_; }

  // ---- View-synchronous membership (mode() == kViewSync) ----
  const ViewId& view() const { return view_; }
  bool has_suspects() const { return suspect_count_ > 0; }
  const AgentCounters& counters() const { return counters_; }

  /// A membership-plane delivery (kHello or kViewChange, possibly delayed):
  /// adopt any greater view, admit/refresh the sender's knowledge entry
  /// (adjacency round-monotonically, statistics count-monotonically), clear
  /// suspicion, and honor probes/solicits addressed to this agent. `now` is
  /// the delivery round (>= msg.round under delay).
  void on_membership_message(const Message& msg, std::int64_t now);
  /// Evaluate liveness at round `now`: silent members become suspects,
  /// due probes are returned (the runtime floods them), and suspects whose
  /// retry budget is exhausted are evicted — advancing this agent's view.
  std::vector<int> liveness_pass(std::int64_t now);
  /// Apply any deferred structural rebuild / view advance accumulated by
  /// the membership phase (batched so a burst of admissions costs one
  /// rebuild and one view change, like a real view-synchronous install).
  void flush_membership();
  /// Consume the "my view advanced, announce it" flag (runtime floods the
  /// kViewChange).
  bool take_view_dirty();
  /// Consume the "re-advertise myself this round" flag (set by link-layer
  /// changes, probes addressed to me, and solicits).
  bool take_hello_pending();
  /// Consume the "my next hello should solicit re-advertisements" flag
  /// (set on rejoin, when this agent's knowledge is stale).
  bool take_solicit();
  /// This node just came back on the air: its knowledge is stale, so drop
  /// it, advance the view, and ask the neighborhood to re-introduce itself.
  void on_rejoin();
  /// Link layer reports a changed direct-neighbor set (view-sync analog of
  /// set_own_neighbors mid-run): rebuild and re-advertise.
  void refresh_own_neighbors(std::vector<int> neighbors);
  /// Conservative transmit gate: a Winner transmits only if it has no
  /// suspects and its verdict was minted in its current view. Counted as a
  /// stale decision when it blocks (note_stale_abstain).
  bool transmit_ok() const;
  void note_stale_abstain() { ++counters_.stale_decisions; }

  /// Oracle accessors (tests): a tracked member's stored statistics and
  /// believed adjacency; nullptr when the member is unknown.
  std::pair<double, std::int64_t> member_stats(int v) const;
  const std::vector<int>* member_neighbors(int v) const;

  // ---- Learning state (vertex-local) ----
  /// Incorporate an observed data rate after transmitting (eqs. 5-6).
  void observe(double reward);
  double own_mean() const { return mean_; }
  std::int64_t own_count() const { return count_; }

  // ---- Round lifecycle ----
  /// Reset all statuses to Candidate and recompute all indices from the
  /// stored statistics for round t (K = num_arms network-wide).
  void begin_round(const IndexPolicy& policy, std::int64_t t, int num_arms);
  /// WB: a neighbor's refreshed statistics (count-monotonic under
  /// view-sync, so duplicated or delayed updates can never regress).
  void on_weight_update(const Message& msg);
  /// LS: does this agent's (weight, id) dominate every known Candidate in
  /// its (2r+1)-hop table? Conservative under view-sync: an agent with
  /// outstanding suspects never self-elects.
  bool should_lead() const;
  /// LMWIS + status determination: solve local MWIS over Candidates within
  /// r hops and produce the verdicts (including the leader's own).
  std::vector<StatusEntry> lead(MwisSolver& solver);
  /// Exact-solver variant wired through the decision-path structures:
  /// caller-owned SolveScratch (reused across agents by the runtime) and,
  /// optionally, this agent's memoized r-ball clique cover — the
  /// distributed analog of the engine's NeighborhoodCache memoization.
  std::vector<StatusEntry> lead(const BranchAndBoundMwisSolver& solver,
                                SolveScratch& scratch,
                                bool use_memoized_cover);
  /// LB: apply a leader's verdicts to self / known members. Under
  /// view-sync a verdict from a round other than the current one (a
  /// delayed wire) is discarded.
  void on_determination(const Message& msg);

  /// Number of (2r+1)-hop members tracked, excluding self (the O(m)
  /// space-complexity metric of §IV-C).
  std::size_t table_size() const { return table_.size(); }

 private:
  struct Entry {
    double mean = 0.0;
    std::int64_t count = 0;
    double index = 0.0;
    VertexStatus status = VertexStatus::kCandidate;
  };

  /// Everything this agent knows about one member (view-sync; persistent
  /// across rebuilds, ordered by id for deterministic iteration).
  struct MemberKnowledge {
    std::vector<int> neighbors;
    double mean = 0.0;
    std::int64_t count = 0;
    std::int64_t last_heard = 0;        ///< Send round of newest evidence.
    std::int64_t last_hello_round = -1; ///< Newest accepted adjacency.
    bool suspect = false;
    int probes_sent = 0;
    std::int64_t next_probe = 0;
  };

  double own_index_ = 0.0;

  int id_;
  int r_;
  bool memoize_cover_;
  MembershipMode mode_;
  LivenessParams liveness_;
  VertexStatus status_ = VertexStatus::kCandidate;
  bool active_ = true;

  double mean_ = 0.0;
  std::int64_t count_ = 0;
  std::int64_t round_now_ = 0;  ///< Current round (stale-verdict rejection).

  // Discovery state (omniscient mode).
  struct Hello {
    std::vector<int> neighbors;
    double mean = 0.0;
    std::int64_t count = 0;
  };
  std::vector<int> own_neighbors_;
  std::unordered_map<int, Hello> hello_lists_;
  bool discovered_ = false;

  // View-sync state.
  std::map<int, MemberKnowledge> knowledge_;  ///< Excludes self.
  ViewId view_{};
  ViewId decision_view_{};
  int suspect_count_ = 0;
  bool needs_rebuild_ = false;
  bool membership_changed_ = false;
  bool view_dirty_ = false;
  bool hello_pending_ = false;
  bool solicit_pending_ = false;
  AgentCounters counters_;

  // Local view: sorted member ids (== J_{2r+1}(id) incl. self), local graph
  // over them, and per-member entries.
  std::vector<int> members_;
  Graph local_graph_;
  std::unordered_map<int, Entry> table_;
  // Memoized at discovery: this agent's r-ball (local ids, sorted) and its
  // weight-free clique cover — static for the lifetime of the network.
  std::vector<int> r_ball_local_;
  std::vector<int> r_ball_cover_;
  int r_ball_cliques_ = 0;
  // lead() working buffers, reused across rounds.
  std::vector<int> cand_buf_;
  std::vector<int> cand_cover_buf_;
  std::vector<double> weight_buf_;

  int local_id(int global) const;
  void maybe_adopt(const ViewId& v);
  void bump_view();
  std::int64_t backoff_delay(int attempt) const;
  /// Rebuild members_/local_graph_/table_/r-ball from knowledge_ (view-sync
  /// structural refresh; statuses are re-seeded at the next begin_round).
  void rebuild_local_view();
  /// Shared structural build over an already-sorted members_ list; edge
  /// lists are read through `neighbors_of(member)`.
  template <typename NeighborsOf>
  void build_structures(NeighborsOf&& neighbors_of);
  /// Fill cand_buf_/cand_cover_buf_/weight_buf_ with the Candidates of the
  /// memoized r-ball (and their cover ids), in ascending local-id order.
  void gather_local_candidates();
  std::vector<StatusEntry> verdicts_from(const MwisResult& res);
};

}  // namespace mhca::net
