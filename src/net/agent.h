// Per-vertex protocol agent (paper Algorithm 3, vertex-local view).
//
// An agent stores only what a real node could learn from the control
// channel: the membership, adjacency, sufficient statistics (µ̃, m) and
// status of its (2r+1)-hop neighborhood — O(m) space as claimed in §IV-C.
// Every decision it takes (leader self-election, local MWIS, status
// updates) is a function of this local table alone.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "bandit/policy.h"
#include "graph/graph.h"
#include "mwis/branch_and_bound.h"
#include "mwis/distributed_ptas.h"
#include "net/message.h"

namespace mhca::net {

class VertexAgent {
 public:
  /// `memoize_cover`: also build this agent's r-ball clique cover at
  /// discovery (only useful when the runtime leads with memoized covers).
  VertexAgent(int id, int r, bool memoize_cover = false);

  int id() const { return id_; }
  VertexStatus status() const { return status_; }

  /// Whether this vertex's node is on the air (dynamics: a node that left
  /// keeps its agent — and its learned statistics — but sits out every
  /// round as a Loser until it rejoins).
  bool active() const { return active_; }
  void set_active(bool active) { active_ = active; }

  // ---- Discovery (initial, and scoped re-discovery after churn) ----
  /// Record another vertex's hello (its id, direct neighbor list, and
  /// current sufficient statistics — the paper's first WB round collects
  /// ids *and* weights of the local neighborhood).
  void on_hello(const Message& msg);
  /// Own direct neighbors (an agent knows who it can hear).
  void set_own_neighbors(std::vector<int> neighbors);
  /// Build the local subgraph from the collected hellos. Must be called
  /// once after all hellos have been delivered.
  void finalize_discovery();
  /// Re-open discovery after the local topology changed (the runtime calls
  /// this for every agent within the change's blast radius, then re-floods
  /// hellos and finalizes again). Learning state is untouched; the member
  /// table is rebuilt from the fresh hellos, whose carried statistics keep
  /// every index consistent network-wide.
  void reset_discovery();

  /// Members of this agent's (2r+1)-hop table (sorted, including self) —
  /// the "old ball" side of the runtime's blast-radius computation.
  const std::vector<int>& members() const { return members_; }

  // ---- Learning state (vertex-local) ----
  /// Incorporate an observed data rate after transmitting (eqs. 5-6).
  void observe(double reward);
  double own_mean() const { return mean_; }
  std::int64_t own_count() const { return count_; }

  // ---- Round lifecycle ----
  /// Reset all statuses to Candidate and recompute all indices from the
  /// stored statistics for round t (K = num_arms network-wide).
  void begin_round(const IndexPolicy& policy, std::int64_t t, int num_arms);
  /// WB: a neighbor's refreshed statistics.
  void on_weight_update(const Message& msg);
  /// LS: does this agent's (weight, id) dominate every known Candidate in
  /// its (2r+1)-hop table?
  bool should_lead() const;
  /// LMWIS + status determination: solve local MWIS over Candidates within
  /// r hops and produce the verdicts (including the leader's own).
  std::vector<StatusEntry> lead(MwisSolver& solver);
  /// Exact-solver variant wired through the decision-path structures:
  /// caller-owned SolveScratch (reused across agents by the runtime) and,
  /// optionally, this agent's memoized r-ball clique cover — the
  /// distributed analog of the engine's NeighborhoodCache memoization.
  std::vector<StatusEntry> lead(const BranchAndBoundMwisSolver& solver,
                                SolveScratch& scratch,
                                bool use_memoized_cover);
  /// LB: apply a leader's verdicts to self / known members.
  void on_determination(const Message& msg);

  /// Number of (2r+1)-hop members tracked, excluding self (the O(m)
  /// space-complexity metric of §IV-C).
  std::size_t table_size() const { return table_.size(); }

 private:
  struct Entry {
    double mean = 0.0;
    std::int64_t count = 0;
    double index = 0.0;
    VertexStatus status = VertexStatus::kCandidate;
  };

  double own_index_ = 0.0;

  int id_;
  int r_;
  bool memoize_cover_;
  VertexStatus status_ = VertexStatus::kCandidate;
  bool active_ = true;

  double mean_ = 0.0;
  std::int64_t count_ = 0;

  // Discovery state.
  struct Hello {
    std::vector<int> neighbors;
    double mean = 0.0;
    std::int64_t count = 0;
  };
  std::vector<int> own_neighbors_;
  std::unordered_map<int, Hello> hello_lists_;
  bool discovered_ = false;

  // Local view: sorted member ids (== J_{2r+1}(id) incl. self), local graph
  // over them, and per-member entries.
  std::vector<int> members_;
  Graph local_graph_;
  std::unordered_map<int, Entry> table_;
  // Memoized at discovery: this agent's r-ball (local ids, sorted) and its
  // weight-free clique cover — static for the lifetime of the network.
  std::vector<int> r_ball_local_;
  std::vector<int> r_ball_cover_;
  int r_ball_cliques_ = 0;
  // lead() working buffers, reused across rounds.
  std::vector<int> cand_buf_;
  std::vector<int> cand_cover_buf_;
  std::vector<double> weight_buf_;

  int local_id(int global) const;
  /// Fill cand_buf_/cand_cover_buf_/weight_buf_ with the Candidates of the
  /// memoized r-ball (and their cover ids), in ascending local-id order.
  void gather_local_candidates();
  std::vector<StatusEntry> verdicts_from(const MwisResult& res);
};

}  // namespace mhca::net
