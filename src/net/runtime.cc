#include "net/runtime.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "obs/trace.h"
#include "util/assert.h"

namespace mhca::net {

namespace {

FaultProfile profile_of(const NetConfig& cfg) {
  FaultProfile f;
  f.drop_prob = cfg.drop_prob;
  f.dup_prob = cfg.dup_prob;
  f.reorder_prob = cfg.reorder_prob;
  f.delay_slots_max = cfg.delay_slots_max;
  f.seed = cfg.drop_seed;
  return f;
}

}  // namespace

DistributedRuntime::DistributedRuntime(const ExtendedConflictGraph& ecg,
                                       const ChannelModel& model,
                                       NetConfig cfg)
    : DistributedRuntime(ecg, model, cfg, nullptr) {}

DistributedRuntime::DistributedRuntime(const ExtendedConflictGraph& ecg,
                                       const ChannelModel& model,
                                       NetConfig cfg, Transport& transport)
    : DistributedRuntime(ecg, model, cfg, &transport) {}

DistributedRuntime::DistributedRuntime(const ExtendedConflictGraph& ecg,
                                       const ChannelModel& model,
                                       NetConfig cfg, Transport* transport)
    : ecg_(ecg),
      model_(model),
      cfg_(cfg),
      channel_(ecg.graph(), profile_of(cfg)),
      exact_(cfg.bnb_node_cap),
      transport_(transport) {
  MHCA_ASSERT(ecg.num_nodes() == model.num_nodes() &&
                  ecg.num_channels() == model.num_channels(),
              "graph/model dimension mismatch");
  MHCA_ASSERT(cfg_.r >= 1, "r must be at least 1");
  channel_.set_mtu(cfg_.mtu);
  // Sharding replicates agent state and replays every flood in canonical
  // order — which only lines up with a single-process run when no phase
  // interleaves sends and receives within one flooding pass. Omniscient
  // membership has that property; view-sync's membership phase (probes
  // answered in the same pass) does not yet.
  MHCA_ASSERT(transport_ == nullptr ||
                  cfg_.membership == MembershipMode::kOmniscient,
              "sharded runs require membership = omniscient (the view-sync "
              "membership phase interleaves same-pass hello responses)");
  // Omniscient discovery finalizes each agent's table exactly once per
  // change; a hello the wire re-delivers out of order would arrive after
  // the finalize. Only view-sync membership absorbs late hellos.
  MHCA_ASSERT(cfg_.membership == MembershipMode::kViewSync ||
                  (cfg_.reorder_prob == 0.0 && cfg_.delay_slots_max == 0),
              "reorder_prob/delay_slots_max require membership = view_sync "
              "(omniscient discovery cannot absorb a late hello)");
  // Tag this thread's trace events with the shard index so a multi-process
  // (or multi-thread mesh) run merges into one Perfetto timeline with one
  // process track per shard. Purely observational.
  obs::set_current_shard(transport_ != nullptr ? transport_->shard_index()
                                               : 0);
  keepalive_interval_ = std::max(1, cfg_.hello_timeout_slots - 1);
  PolicyParams params = cfg_.policy_params;
  if (cfg_.policy == PolicyKind::kLlr && params.llr_max_strategy_len <= 1)
    params.llr_max_strategy_len = ecg.num_nodes();
  policy_ = make_policy(cfg_.policy, params);

  const LivenessParams liveness{cfg_.hello_timeout_slots,
                                cfg_.hello_max_retries, cfg_.backoff_base};
  agents_.reserve(static_cast<std::size_t>(ecg.num_vertices()));
  for (int v = 0; v < ecg.num_vertices(); ++v)
    agents_.emplace_back(v, cfg_.r, cfg_.use_memoized_covers,
                         cfg_.membership, liveness);
  discover();
}

void DistributedRuntime::set_fault_profile(const FaultProfile& faults) {
  MHCA_ASSERT(cfg_.membership == MembershipMode::kViewSync ||
                  (faults.reorder_prob == 0.0 && faults.delay_slots_max == 0),
              "reorder_prob/delay_slots_max require membership = view_sync");
  channel_.set_fault_profile(faults);
  cfg_.drop_prob = faults.drop_prob;
  cfg_.dup_prob = faults.dup_prob;
  cfg_.reorder_prob = faults.reorder_prob;
  cfg_.delay_slots_max = faults.delay_slots_max;
  cfg_.drop_seed = faults.seed;
}

Message DistributedRuntime::make_hello(int v) const {
  const auto nb = ecg_.graph().neighbors(v);
  Message hello;
  hello.type = MsgType::kHello;
  hello.origin = v;
  hello.round = t_;
  if (cfg_.membership == MembershipMode::kViewSync)
    hello.view = agents_[static_cast<std::size_t>(v)].view();
  hello.neighbor_list.assign(nb.begin(), nb.end());
  // Hellos carry the sender's live statistics (the paper's first WB round
  // collects ids *and* weights): zeros at initial discovery, and whatever
  // the sender has learned by the time churn — or a keep-alive — re-floods
  // them. Under view-sync this is also what heals tables a lossy wire let
  // go stale: every delivered keep-alive refreshes the receiver's copy.
  hello.mean = agents_[static_cast<std::size_t>(v)].own_mean();
  hello.count = agents_[static_cast<std::size_t>(v)].own_count();
  return hello;
}

void DistributedRuntime::route(int to, const Message& msg) {
  VertexAgent& a = agents_[static_cast<std::size_t>(to)];
  switch (msg.type) {
    case MsgType::kHello:
    case MsgType::kViewChange:
      a.on_membership_message(msg, t_);
      break;
    case MsgType::kWeightUpdate:
      a.on_weight_update(msg);
      break;
    case MsgType::kDetermination:
      a.on_determination(msg);
      break;
    case MsgType::kLeaderDeclare:
      break;  // election is table-local; the flood only costs airtime
  }
}

FloodFrame DistributedRuntime::make_frame(const Message& msg, int ttl) {
  FloodFrame f;
  f.origin = msg.origin;
  f.seq = 0;  // one flood per origin per phase; canonical order = origin asc
  f.ttl = ttl;
  wire::encode(msg, f.bytes);
  return f;
}

std::vector<int> DistributedRuntime::exchange_and_replay(
    std::vector<FloodFrame> frames,
    const std::function<void(int, const Message&)>& deliver,
    const std::function<void(const Message&)>& on_origin) {
  obs::TraceRecorder* const tr = obs::trace();
  char targs[96];
  if (tr)
    std::snprintf(targs, sizeof(targs),
                  "{\"shard\":%d,\"frames_out\":%zu}",
                  transport_->shard_index(), frames.size());
  obs::ScopedSpan span(tr, obs::kTidTransport, "transport.exchange",
                       tr ? std::string(targs) : std::string());
  std::vector<FloodFrame> merged = transport_->exchange(std::move(frames));
  std::vector<int> origins;
  origins.reserve(merged.size());
  for (FloodFrame& f : merged) {
    origins.push_back(f.origin);
    const auto bytes = std::make_shared<const std::vector<std::uint8_t>>(
        std::move(f.bytes));
    if (on_origin) on_origin(wire::decode(bytes->data(), bytes->size()));
    channel_.flood_encoded(bytes, f.ttl, deliver);
  }
  return origins;
}

void DistributedRuntime::discover() {
  const Graph& h = ecg_.graph();
  const int horizon = 2 * cfg_.r + 1;
  for (int v = 0; v < h.size(); ++v) {
    const auto nb = h.neighbors(v);
    agents_[static_cast<std::size_t>(v)].set_own_neighbors(
        std::vector<int>(nb.begin(), nb.end()));
  }
  const bool view_sync = cfg_.membership == MembershipMode::kViewSync;
  const auto deliver = [&](int to, const Message& m) {
    if (view_sync)
      agents_[static_cast<std::size_t>(to)].on_membership_message(m, t_);
    else
      agents_[static_cast<std::size_t>(to)].on_hello(m);
  };
  if (sharded()) {
    // Owned hellos travel the transport; the canonical replay is the same
    // ascending-origin order the classic loop below floods in.
    std::vector<FloodFrame> frames;
    for (int v = 0; v < h.size(); ++v)
      if (owns(v)) frames.push_back(make_frame(make_hello(v), horizon));
    exchange_and_replay(std::move(frames), deliver);
  } else {
    for (int v = 0; v < h.size(); ++v)
      channel_.flood(make_hello(v), horizon, deliver);
  }
  for (auto& a : agents_) a.finalize_discovery();
}

void DistributedRuntime::on_topology_change(
    std::span<const int> touched, const std::vector<char>& active_vertices) {
  MHCA_ASSERT(cfg_.membership == MembershipMode::kOmniscient,
              "on_topology_change is the omniscient delta feed; view-sync "
              "runs take on_wire_change");
  MHCA_ASSERT(!sharded(),
              "sharded runs support static graphs only (churn rediscovery "
              "would need its own exchange barrier)");
  const Graph& h = ecg_.graph();
  const int horizon = 2 * cfg_.r + 1;
  MHCA_ASSERT(static_cast<int>(active_vertices.size()) == h.size(),
              "activity mask mismatch");
  for (std::size_t v = 0; v < agents_.size(); ++v)
    agents_[v].set_active(active_vertices[v] != 0);
  // A vertex that just went off the air cannot flood its weight update.
  std::erase_if(prev_strategy_, [&](int v) {
    return active_vertices[static_cast<std::size_t>(v)] == 0;
  });
  if (touched.empty()) return;

  // Agents whose (2r+1)-hop view can have changed: members of a touched
  // agent's old table (hop distance is symmetric, so "t saw v" means "v saw
  // t"), plus everything within `horizon` new-graph hops of a touched
  // vertex.
  std::vector<char> affected(agents_.size(), 0);
  for (int t : touched)
    for (int m : agents_[static_cast<std::size_t>(t)].members())
      affected[static_cast<std::size_t>(m)] = 1;
  BfsScratch scratch(h.size());
  std::vector<int> reach;
  scratch.multi_source_k_hop(h, touched, horizon, reach);
  for (int v : reach) affected[static_cast<std::size_t>(v)] = 1;

  std::vector<int> affected_list;
  for (std::size_t v = 0; v < affected.size(); ++v)
    if (affected[v]) affected_list.push_back(static_cast<int>(v));
  for (int v : affected_list) {
    agents_[static_cast<std::size_t>(v)].reset_discovery();
    const auto nb = h.neighbors(v);
    agents_[static_cast<std::size_t>(v)].set_own_neighbors(
        std::vector<int>(nb.begin(), nb.end()));
  }

  // Every vertex within `horizon` hops of an affected agent re-floods its
  // hello — by symmetry the flood reaches exactly the reopened agents whose
  // new tables must list the sender. Hellos carry the sender's current
  // statistics, so a vertex entering someone's horizon arrives with a
  // consistent index (this is what keeps the runtime's decisions identical
  // to the lockstep engine across topology changes).
  std::vector<int> senders;
  scratch.multi_source_k_hop(h, affected_list, horizon, senders);
  for (int w : senders) {
    const Message hello = make_hello(w);
    channel_.flood(hello, horizon,
                   [this, &affected](int to, const Message& m) {
                     if (affected[static_cast<std::size_t>(to)])
                       agents_[static_cast<std::size_t>(to)].on_hello(m);
                   });
  }
  channel_.charge_timeslots(horizon);
  for (int v : affected_list)
    agents_[static_cast<std::size_t>(v)].finalize_discovery();
}

void DistributedRuntime::on_wire_change(
    std::span<const int> touched, const std::vector<char>& active_vertices) {
  MHCA_ASSERT(cfg_.membership == MembershipMode::kViewSync,
              "on_wire_change requires membership = view_sync (omniscient "
              "runs take on_topology_change)");
  const Graph& h = ecg_.graph();
  MHCA_ASSERT(static_cast<int>(active_vertices.size()) == h.size(),
              "activity mask mismatch");
  const auto own_neighbors = [&](int v) {
    const auto nb = h.neighbors(v);
    return std::vector<int>(nb.begin(), nb.end());
  };
  for (std::size_t v = 0; v < agents_.size(); ++v) {
    const bool was = agents_[v].active();
    const bool now = active_vertices[v] != 0;
    agents_[v].set_active(now);
    if (now && !was) {
      // Back on the air: link-layer truth only, everything else solicited.
      agents_[v].refresh_own_neighbors(own_neighbors(static_cast<int>(v)));
      agents_[v].on_rejoin();
    }
  }
  std::erase_if(prev_strategy_, [&](int v) {
    return active_vertices[static_cast<std::size_t>(v)] == 0;
  });
  // Touched agents learn their own new direct-neighbor sets — a node knows
  // who it can hear — and nothing more. Who left the (2r+1)-hop horizon,
  // who entered it: that is for hellos, timeouts and view changes to
  // establish over the (possibly faulty) wire.
  for (int v : touched) {
    if (active_vertices[static_cast<std::size_t>(v)] == 0) continue;
    agents_[static_cast<std::size_t>(v)].refresh_own_neighbors(
        own_neighbors(v));
  }
}

void DistributedRuntime::flood_pending_hellos(bool include_keepalives) {
  const int horizon = 2 * cfg_.r + 1;
  for (auto& a : agents_) {
    if (!a.active()) continue;
    bool send = a.take_hello_pending();
    if (include_keepalives &&
        (t_ + a.id()) % keepalive_interval_ == 0)
      send = true;
    if (!send) continue;
    Message hello = make_hello(a.id());
    hello.solicit = a.take_solicit();
    channel_.flood(hello, horizon,
                   [this](int to, const Message& m) { route(to, m); });
  }
}

void DistributedRuntime::membership_phase() {
  const int horizon = 2 * cfg_.r + 1;
  obs::TraceRecorder* const tr = obs::trace();
  obs::ScopedSpan span(tr, obs::kTidRuntime, "net.hello");
  // Delayed deliveries of earlier slots land first: the membership phase is
  // where a faulty wire's stragglers surface.
  channel_.begin_slot(t_, [this](int to, const Message& m) { route(to, m); });
  // Keep-alives (staggered so the channel is not saturated in lockstep)
  // plus link-change re-advertisements queued since last round.
  flood_pending_hellos(/*include_keepalives=*/true);
  // Liveness: silence past the timeout turns members into suspects; due
  // probes flood now, each a hello addressed at one suspect.
  for (auto& a : agents_) {
    if (!a.active()) continue;
    for (int target : a.liveness_pass(t_)) {
      if (tr) {
        char b[72];
        std::snprintf(b, sizeof(b), "{\"agent\":%d,\"suspect\":%d}", a.id(),
                      target);
        tr->instant(obs::kTidRuntime, "net.suspect_probe", b);
      }
      Message probe = make_hello(a.id());
      probe.probe_target = target;
      channel_.flood(probe, horizon,
                     [this](int to, const Message& m) { route(to, m); });
    }
  }
  // Same-round responses: probed or solicited agents re-advertise.
  flood_pending_hellos(/*include_keepalives=*/false);
  // Install accumulated membership changes (one rebuild + one view advance
  // per agent per phase, however many admissions/evictions piled up) and
  // announce the new views.
  for (auto& a : agents_)
    if (a.active()) a.flush_membership();
  for (auto& a : agents_) {
    if (!a.active() || !a.take_view_dirty()) continue;
    Message vc = make_hello(a.id());
    vc.type = MsgType::kViewChange;
    vc.view = a.view();
    // Evictions surface here: each completed probe cycle ends in a view
    // bump announced by this flood.
    if (tr) {
      char b[96];
      std::snprintf(b, sizeof(b),
                    "{\"agent\":%d,\"view_seq\":%" PRId64 ",\"rep\":%d}",
                    a.id(), vc.view.seq, vc.view.representative);
      tr->instant(obs::kTidRuntime, "net.view_change", b);
    }
    channel_.flood(vc, horizon,
                   [this](int to, const Message& m) { route(to, m); });
  }
  // View-change payloads may have admitted members in turn; install those
  // too (their announcements go out next round).
  for (auto& a : agents_)
    if (a.active()) a.flush_membership();
  channel_.charge_timeslots(horizon);
}

std::size_t DistributedRuntime::max_table_size() const {
  std::size_t best = 0;
  for (const auto& a : agents_) best = std::max(best, a.table_size());
  return best;
}

RuntimeCounters DistributedRuntime::counters() const {
  RuntimeCounters out;
  for (const auto& a : agents_) {
    out.retries += a.counters().retries;
    out.timeouts += a.counters().timeouts;
    out.view_changes += a.counters().view_changes;
    out.stale_decisions += a.counters().stale_decisions;
  }
  return out;
}

NetRoundResult DistributedRuntime::step() {
  ++t_;
  const int k_arms = ecg_.num_vertices();
  const int horizon = 2 * cfg_.r + 1;
  const bool view_sync = cfg_.membership == MembershipMode::kViewSync;

  obs::TraceRecorder* const tr = obs::trace();
  char targs[48];
  if (tr)
    std::snprintf(targs, sizeof(targs), "{\"round\":%" PRId64 "}", t_);
  obs::ScopedSpan round_span(tr, obs::kTidRuntime, "net.round",
                             tr ? std::string(targs) : std::string());

  if (view_sync) membership_phase();

  // --- WB: previous strategy's vertices flood refreshed statistics. ---
  const auto deliver = [this](int to, const Message& m) { route(to, m); };
  if (t_ > 1) {
    obs::ScopedSpan wb_span(tr, obs::kTidRuntime, "net.weight_broadcast");
    std::vector<FloodFrame> frames;  // sharded: owned weight updates
    for (int v : prev_strategy_) {
      if (!owns(v)) continue;
      Message wu;
      wu.type = MsgType::kWeightUpdate;
      wu.origin = v;
      wu.round = t_;
      if (view_sync) wu.view = agents_[static_cast<std::size_t>(v)].view();
      wu.mean = agents_[static_cast<std::size_t>(v)].own_mean();
      wu.count = agents_[static_cast<std::size_t>(v)].own_count();
      if (sharded())
        frames.push_back(make_frame(wu, horizon));
      else
        channel_.flood(wu, horizon, deliver);
    }
    // prev_strategy_ is sorted, so the canonical replay order equals the
    // classic flood order above. Every shard agrees t_ > 1, so every shard
    // reaches this barrier.
    if (sharded()) exchange_and_replay(std::move(frames), deliver);
  }
  for (auto& a : agents_) a.begin_round(*policy_, t_, k_arms);

  // --- D mini-rounds of Algorithm 3. ---
  MwisSolver& local_solver =
      cfg_.local_solver == LocalSolverKind::kExact
          ? static_cast<MwisSolver&>(exact_)
          : static_cast<MwisSolver&>(greedy_);
  NetRoundResult out;
  out.round = t_;
  int mr = 0;
  while (cfg_.D == 0 || mr < cfg_.D) {
    bool any_candidate = false;
    for (const auto& a : agents_) {
      if (a.status() == VertexStatus::kCandidate) {
        any_candidate = true;
        break;
      }
    }
    if (!any_candidate) break;
    ++mr;

    // LS/LD: self-election + declaration flood. Sharded: each shard elects
    // its owned candidates and learns the rest from the exchanged declares
    // — the merged (ascending-origin) list equals the classic one, because
    // should_lead() reads only replicated table state.
    std::vector<int> leaders;
    {  // election span scope (a `break` below unwinds it correctly)
    if (tr) std::snprintf(targs, sizeof(targs), "{\"mini_round\":%d}", mr);
    obs::ScopedSpan election_span(tr, obs::kTidRuntime, "net.election",
                                  tr ? std::string(targs) : std::string());
    if (sharded()) {
      std::vector<FloodFrame> frames;
      for (const auto& a : agents_) {
        if (!a.should_lead() || !owns(a.id())) continue;
        Message ld;
        ld.type = MsgType::kLeaderDeclare;
        ld.origin = a.id();
        ld.round = t_;
        frames.push_back(make_frame(ld, horizon));
      }
      leaders = exchange_and_replay(std::move(frames), deliver);
    } else {
      for (const auto& a : agents_)
        if (a.should_lead()) leaders.push_back(a.id());
    }
    // On a reliable omniscient channel the globally best candidate always
    // elects itself. Under message loss, stale tables can leave every
    // candidate believing a (long-marked) heavier neighbor is still in the
    // race; under view-sync, unreaped ghosts and suspect-conservatism can
    // suppress every election — a livelock a real deployment breaks by
    // timeout; we end the decision.
    MHCA_ASSERT(!leaders.empty() || unreliable(),
                "a candidate of maximal weight must elect itself");
    if (leaders.empty()) break;
    if (!sharded()) {
      for (int v : leaders) {
        Message ld;
        ld.type = MsgType::kLeaderDeclare;
        ld.origin = v;
        ld.round = t_;
        if (view_sync) ld.view = agents_[static_cast<std::size_t>(v)].view();
        channel_.flood(ld, horizon, deliver);
      }
    }
    channel_.charge_timeslots(horizon);
    }  // election span scope

    // LMWIS + LB. Under loss, an earlier leader's verdict this mini-round
    // may already have demoted a later "leader" (they can end up close
    // together when declarations were dropped) — it must then stand down.
    // Sharded: that stand-down dependency forces one exchange *per leader*
    // (an earlier leader's replayed verdict can demote a later one before
    // its turn); the skip decision reads replicated status, so every shard
    // agrees on which leaders reach their barrier.
    if (tr)
      std::snprintf(targs, sizeof(targs), "{\"leaders\":%zu}",
                    leaders.size());
    obs::ScopedSpan det_span(tr, obs::kTidRuntime, "net.determination",
                             tr ? std::string(targs) : std::string());
    for (int v : leaders) {
      if (agents_[static_cast<std::size_t>(v)].status() !=
          VertexStatus::kCandidate)
        continue;
      if (sharded()) {
        std::vector<FloodFrame> frames;
        if (owns(v)) {
          // Only the owner runs the local MWIS solve; the verdict travels
          // to every other shard as wire bytes.
          Message det;
          det.type = MsgType::kDetermination;
          det.origin = v;
          det.round = t_;
          det.statuses =
              cfg_.local_solver == LocalSolverKind::kExact
                  ? agents_[static_cast<std::size_t>(v)].lead(
                        exact_, lead_scratch_, cfg_.use_memoized_covers)
                  : agents_[static_cast<std::size_t>(v)].lead(local_solver);
          frames.push_back(make_frame(det, 3 * cfg_.r + 2));
        }
        exchange_and_replay(std::move(frames), deliver,
                            [this](const Message& det) {
                              agents_[static_cast<std::size_t>(det.origin)]
                                  .on_determination(det);
                            });
        continue;
      }
      Message det;
      det.type = MsgType::kDetermination;
      det.origin = v;
      det.round = t_;
      if (view_sync) det.view = agents_[static_cast<std::size_t>(v)].view();
      det.statuses =
          cfg_.local_solver == LocalSolverKind::kExact
              ? agents_[static_cast<std::size_t>(v)].lead(
                    exact_, lead_scratch_, cfg_.use_memoized_covers)
              : agents_[static_cast<std::size_t>(v)].lead(local_solver);
      agents_[static_cast<std::size_t>(v)].on_determination(det);
      // 3r+2: winner-adjacent losers sit up to r+1 hops from the leader and
      // must reach every holder of their status (2r+1 further hops).
      channel_.flood(det, 3 * cfg_.r + 2, deliver);
    }
    channel_.charge_timeslots(3 * cfg_.r + 2);
  }
  out.mini_rounds = mr;

  // --- Data transmission + observation. ---
  obs::ScopedSpan tx_span(tr, obs::kTidRuntime, "net.tx");
  out.all_marked = true;
  for (auto& a : agents_) {
    if (a.status() == VertexStatus::kWinner) {
      // Graceful degradation: a Winner whose view moved since its verdict,
      // or with suspects outstanding, cannot trust that every contender was
      // in the race it won — it abstains rather than risk a double-claim.
      if (!a.transmit_ok()) {
        a.note_stale_abstain();
        ++out.tx_abstained;
        continue;
      }
      out.strategy.push_back(a.id());
    } else if (a.status() == VertexStatus::kCandidate) {
      out.all_marked = false;
    }
  }
  out.conflict = !ecg_.graph().is_independent_set(out.strategy);
  MHCA_ASSERT(!out.conflict || unreliable(),
              "protocol produced a conflicting strategy on a reliable "
              "control channel");
  for (int v : out.strategy) {
    const double x =
        model_.sample(ecg_.master_of(v), ecg_.channel_of(v), t_);
    agents_[static_cast<std::size_t>(v)].observe(x);
    out.observed_sum += x;
  }
  prev_strategy_ = out.strategy;
  return out;
}

}  // namespace mhca::net
