#include "net/runtime.h"

#include <algorithm>

#include "util/assert.h"

namespace mhca::net {

DistributedRuntime::DistributedRuntime(const ExtendedConflictGraph& ecg,
                                       const ChannelModel& model,
                                       NetConfig cfg)
    : ecg_(ecg),
      model_(model),
      cfg_(cfg),
      channel_(ecg.graph(), cfg.drop_prob, cfg.drop_seed),
      exact_(cfg.bnb_node_cap) {
  MHCA_ASSERT(ecg.num_nodes() == model.num_nodes() &&
                  ecg.num_channels() == model.num_channels(),
              "graph/model dimension mismatch");
  MHCA_ASSERT(cfg_.r >= 1, "r must be at least 1");
  PolicyParams params = cfg_.policy_params;
  if (cfg_.policy == PolicyKind::kLlr && params.llr_max_strategy_len <= 1)
    params.llr_max_strategy_len = ecg.num_nodes();
  policy_ = make_policy(cfg_.policy, params);

  agents_.reserve(static_cast<std::size_t>(ecg.num_vertices()));
  for (int v = 0; v < ecg.num_vertices(); ++v)
    agents_.emplace_back(v, cfg_.r, cfg_.use_memoized_covers);
  discover();
}

Message DistributedRuntime::make_hello(int v) const {
  const auto nb = ecg_.graph().neighbors(v);
  Message hello;
  hello.type = MsgType::kHello;
  hello.origin = v;
  hello.neighbor_list.assign(nb.begin(), nb.end());
  // Hellos carry the sender's live statistics (the paper's first WB round
  // collects ids *and* weights): zeros at initial discovery, and whatever
  // the sender has learned by the time churn triggers a re-flood.
  hello.mean = agents_[static_cast<std::size_t>(v)].own_mean();
  hello.count = agents_[static_cast<std::size_t>(v)].own_count();
  return hello;
}

void DistributedRuntime::discover() {
  const Graph& h = ecg_.graph();
  const int horizon = 2 * cfg_.r + 1;
  for (int v = 0; v < h.size(); ++v) {
    const auto nb = h.neighbors(v);
    agents_[static_cast<std::size_t>(v)].set_own_neighbors(
        std::vector<int>(nb.begin(), nb.end()));
  }
  for (int v = 0; v < h.size(); ++v) {
    const Message hello = make_hello(v);
    channel_.flood(hello, horizon, [this](int to, const Message& m) {
      agents_[static_cast<std::size_t>(to)].on_hello(m);
    });
  }
  for (auto& a : agents_) a.finalize_discovery();
}

void DistributedRuntime::on_topology_change(
    std::span<const int> touched, const std::vector<char>& active_vertices) {
  const Graph& h = ecg_.graph();
  const int horizon = 2 * cfg_.r + 1;
  MHCA_ASSERT(static_cast<int>(active_vertices.size()) == h.size(),
              "activity mask mismatch");
  for (std::size_t v = 0; v < agents_.size(); ++v)
    agents_[v].set_active(active_vertices[v] != 0);
  // A vertex that just went off the air cannot flood its weight update.
  std::erase_if(prev_strategy_, [&](int v) {
    return active_vertices[static_cast<std::size_t>(v)] == 0;
  });
  if (touched.empty()) return;

  // Agents whose (2r+1)-hop view can have changed: members of a touched
  // agent's old table (hop distance is symmetric, so "t saw v" means "v saw
  // t"), plus everything within `horizon` new-graph hops of a touched
  // vertex.
  std::vector<char> affected(agents_.size(), 0);
  for (int t : touched)
    for (int m : agents_[static_cast<std::size_t>(t)].members())
      affected[static_cast<std::size_t>(m)] = 1;
  BfsScratch scratch(h.size());
  std::vector<int> reach;
  scratch.multi_source_k_hop(h, touched, horizon, reach);
  for (int v : reach) affected[static_cast<std::size_t>(v)] = 1;

  std::vector<int> affected_list;
  for (std::size_t v = 0; v < affected.size(); ++v)
    if (affected[v]) affected_list.push_back(static_cast<int>(v));
  for (int v : affected_list) {
    agents_[static_cast<std::size_t>(v)].reset_discovery();
    const auto nb = h.neighbors(v);
    agents_[static_cast<std::size_t>(v)].set_own_neighbors(
        std::vector<int>(nb.begin(), nb.end()));
  }

  // Every vertex within `horizon` hops of an affected agent re-floods its
  // hello — by symmetry the flood reaches exactly the reopened agents whose
  // new tables must list the sender. Hellos carry the sender's current
  // statistics, so a vertex entering someone's horizon arrives with a
  // consistent index (this is what keeps the runtime's decisions identical
  // to the lockstep engine across topology changes).
  std::vector<int> senders;
  scratch.multi_source_k_hop(h, affected_list, horizon, senders);
  for (int w : senders) {
    const Message hello = make_hello(w);
    channel_.flood(hello, horizon,
                   [this, &affected](int to, const Message& m) {
                     if (affected[static_cast<std::size_t>(to)])
                       agents_[static_cast<std::size_t>(to)].on_hello(m);
                   });
  }
  channel_.charge_timeslots(horizon);
  for (int v : affected_list)
    agents_[static_cast<std::size_t>(v)].finalize_discovery();
}

std::size_t DistributedRuntime::max_table_size() const {
  std::size_t best = 0;
  for (const auto& a : agents_) best = std::max(best, a.table_size());
  return best;
}

NetRoundResult DistributedRuntime::step() {
  ++t_;
  const int k_arms = ecg_.num_vertices();
  const int horizon = 2 * cfg_.r + 1;

  // --- WB: previous strategy's vertices flood refreshed statistics. ---
  if (t_ > 1) {
    for (int v : prev_strategy_) {
      Message wu;
      wu.type = MsgType::kWeightUpdate;
      wu.origin = v;
      wu.mean = agents_[static_cast<std::size_t>(v)].own_mean();
      wu.count = agents_[static_cast<std::size_t>(v)].own_count();
      channel_.flood(wu, horizon, [this](int to, const Message& m) {
        agents_[static_cast<std::size_t>(to)].on_weight_update(m);
      });
    }
  }
  for (auto& a : agents_) a.begin_round(*policy_, t_, k_arms);

  // --- D mini-rounds of Algorithm 3. ---
  MwisSolver& local_solver =
      cfg_.local_solver == LocalSolverKind::kExact
          ? static_cast<MwisSolver&>(exact_)
          : static_cast<MwisSolver&>(greedy_);
  NetRoundResult out;
  out.round = t_;
  int mr = 0;
  while (cfg_.D == 0 || mr < cfg_.D) {
    bool any_candidate = false;
    for (const auto& a : agents_) {
      if (a.status() == VertexStatus::kCandidate) {
        any_candidate = true;
        break;
      }
    }
    if (!any_candidate) break;
    ++mr;

    // LS/LD: self-election + declaration flood.
    std::vector<int> leaders;
    for (const auto& a : agents_)
      if (a.should_lead()) leaders.push_back(a.id());
    // On a reliable channel the globally best candidate always elects
    // itself. Under message loss, stale tables can leave every candidate
    // believing a (long-marked) heavier neighbor is still in the race —
    // a livelock a real deployment breaks by timeout; we end the decision.
    MHCA_ASSERT(!leaders.empty() || cfg_.drop_prob > 0.0,
                "a candidate of maximal weight must elect itself");
    if (leaders.empty()) break;
    for (int v : leaders) {
      Message ld;
      ld.type = MsgType::kLeaderDeclare;
      ld.origin = v;
      channel_.flood(ld, horizon, [](int, const Message&) {});
    }
    channel_.charge_timeslots(horizon);

    // LMWIS + LB. Under loss, an earlier leader's verdict this mini-round
    // may already have demoted a later "leader" (they can end up close
    // together when declarations were dropped) — it must then stand down.
    for (int v : leaders) {
      if (agents_[static_cast<std::size_t>(v)].status() !=
          VertexStatus::kCandidate)
        continue;
      Message det;
      det.type = MsgType::kDetermination;
      det.origin = v;
      det.statuses =
          cfg_.local_solver == LocalSolverKind::kExact
              ? agents_[static_cast<std::size_t>(v)].lead(
                    exact_, lead_scratch_, cfg_.use_memoized_covers)
              : agents_[static_cast<std::size_t>(v)].lead(local_solver);
      agents_[static_cast<std::size_t>(v)].on_determination(det);
      // 3r+2: winner-adjacent losers sit up to r+1 hops from the leader and
      // must reach every holder of their status (2r+1 further hops).
      channel_.flood(det, 3 * cfg_.r + 2, [this](int to, const Message& m) {
        agents_[static_cast<std::size_t>(to)].on_determination(m);
      });
    }
    channel_.charge_timeslots(3 * cfg_.r + 2);
  }
  out.mini_rounds = mr;

  // --- Data transmission + observation. ---
  out.all_marked = true;
  for (const auto& a : agents_) {
    if (a.status() == VertexStatus::kWinner)
      out.strategy.push_back(a.id());
    else if (a.status() == VertexStatus::kCandidate)
      out.all_marked = false;
  }
  out.conflict = !ecg_.graph().is_independent_set(out.strategy);
  MHCA_ASSERT(!out.conflict || cfg_.drop_prob > 0.0,
              "protocol produced a conflicting strategy on a reliable "
              "control channel");
  for (int v : out.strategy) {
    const double x =
        model_.sample(ecg_.master_of(v), ecg_.channel_of(v), t_);
    agents_[static_cast<std::size_t>(v)].observe(x);
    out.observed_sum += x;
  }
  prev_strategy_ = out.strategy;
  return out;
}

}  // namespace mhca::net
