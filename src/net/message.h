// Control-channel message formats (paper §IV: WB, LS/LD, LB phases).
//
// All strategy-decision coordination rides on a common control channel; the
// message types map to the protocol phases:
//   kHello        — neighborhood discovery and liveness (§IV-C: the first
//                   round must collect ids/weights of the (2r+1)-hop
//                   neighborhood). Under view-synchronous membership hellos
//                   are also the periodic keep-alives, the targeted
//                   retry/backoff probes (probe_target >= 0) and the
//                   solicited re-advertisements (solicit = true).
//   kWeightUpdate — WB: a vertex that transmitted last round floods its new
//                   sufficient statistics (µ̃, m); receivers recompute the
//                   index locally, so only O(1) numbers travel per update
//   kLeaderDeclare— LS/LD: a Candidate claims LocalLeader in 2r+1 hops
//   kDetermination— LB: a leader's Winner/Loser verdicts, flooded 3r+1 hops
//   kViewChange   — membership epoch advance: the initiator's new
//                   ViewId{seq, representative} plus its fresh hello
//                   payload, flooded within the table horizon so the
//                   neighborhood can adopt the view and reconcile
//
// Every message carries the sender's current ViewId and the round it was
// sent in: receivers adopt any strictly greater view they hear (views
// gossip with ordinary traffic) and use the round tag to reject stale
// payloads that a faulty wire delivered late (see net/control_channel.h).
#pragma once

#include <cstdint>
#include <vector>

#include "mwis/distributed_ptas.h"  // VertexStatus
#include "net/view.h"

namespace mhca::net {

enum class MsgType : std::uint8_t {
  kHello,
  kWeightUpdate,
  kLeaderDeclare,
  kDetermination,
  kViewChange,
};
inline constexpr int kNumMsgTypes = 5;

struct StatusEntry {
  int vertex = -1;
  VertexStatus status = VertexStatus::kCandidate;
};

struct Message {
  MsgType type = MsgType::kHello;
  int origin = -1;

  /// Round the message was sent in (view-sync: receivers accept hello
  /// payloads round-monotonically and discard cross-round decision
  /// messages a delayed wire delivers late).
  std::int64_t round = 0;
  /// Sender's membership epoch at send time (adopt-if-greater gossip).
  ViewId view{};

  // kHello payload: the origin's direct neighbors (lets receivers
  // reconstruct the adjacency of their local neighborhood).
  std::vector<int> neighbor_list;
  /// kHello (view-sync): ask receivers to re-advertise themselves (set by
  /// rejoining nodes rebuilding a stale table).
  bool solicit = false;
  /// kHello (view-sync): this hello is a liveness probe for one suspected
  /// member; only that member responds. -1 = not a probe.
  int probe_target = -1;

  // kHello / kWeightUpdate / kViewChange payload: origin's sufficient
  // statistics (hellos and view changes carry them so rebuilt tables stay
  // index-consistent network-wide).
  double mean = 0.0;
  std::int64_t count = 0;

  // kDetermination payload: the leader's verdicts.
  std::vector<StatusEntry> statuses;
};

}  // namespace mhca::net
