// Control-channel message formats (paper §IV: WB, LS/LD, LB phases).
//
// All strategy-decision coordination rides on a common control channel; the
// four message types map to the protocol phases:
//   kHello        — one-time neighborhood discovery (§IV-C: the first round
//                   must collect ids/weights of the (2r+1)-hop neighborhood)
//   kWeightUpdate — WB: a vertex that transmitted last round floods its new
//                   sufficient statistics (µ̃, m); receivers recompute the
//                   index locally, so only O(1) numbers travel per update
//   kLeaderDeclare— LS/LD: a Candidate claims LocalLeader in 2r+1 hops
//   kDetermination— LB: a leader's Winner/Loser verdicts, flooded 3r+1 hops
#pragma once

#include <cstdint>
#include <vector>

#include "mwis/distributed_ptas.h"  // VertexStatus

namespace mhca::net {

enum class MsgType : std::uint8_t {
  kHello,
  kWeightUpdate,
  kLeaderDeclare,
  kDetermination,
};

struct StatusEntry {
  int vertex = -1;
  VertexStatus status = VertexStatus::kCandidate;
};

struct Message {
  MsgType type = MsgType::kHello;
  int origin = -1;

  // kHello payload: the origin's direct neighbors (lets receivers
  // reconstruct the adjacency of their local neighborhood).
  std::vector<int> neighbor_list;

  // kWeightUpdate payload: origin's sufficient statistics.
  double mean = 0.0;
  std::int64_t count = 0;

  // kDetermination payload: the leader's verdicts.
  std::vector<StatusEntry> statuses;
};

}  // namespace mhca::net
