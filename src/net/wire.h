// Explicit wire format for control-channel messages (net/message.h).
//
// Every Message marshals to a fixed packed little-endian header followed by
// a versioned, type-specific payload:
//
//   offset  size  field
//        0     2  magic        0x4D48 ("HM" on the wire, LSB first)
//        2     1  version      kVersion (currently 1)
//        3     1  type         MsgType as uint8 (must be < kNumMsgTypes)
//        4     4  origin       int32
//        8     8  round        int64
//       16     8  view.seq     int64
//       24     4  view.repr    int32
//       28     4  payload_len  uint32 (bytes after the header, exact)
//       32     …  payload      (kHeaderSize = 32)
//
// Payload v1, by type (only the fields a type carries travel; decode leaves
// the rest at Message defaults):
//   hello / view_change   mean f64, count i64, probe_target i32,
//                         solicit u8 (0|1), n u32, n x neighbor i32
//   weight_update         mean f64, count i64
//   leader_declare        (empty)
//   determination         n u32, n x { vertex i32, status u8 (< 3) }
//
// Round-trip discipline (the galera read/write/size idiom): encoded_size()
// == encode().size(), and decode(encode(m)) == m field for field. decode()
// never reads past `len` and rejects — with an actionable error naming the
// offending field and value — truncated buffers, trailing bytes, bad magic,
// unknown versions/types, element counts that exceed the payload, and
// invalid enum/bool bytes. Arbitrary bytes must never crash it (fuzzed
// under ASan/UBSan by tests/wire_roundtrip_test.cc).
//
// Versioning rules: a payload change bumps kVersion; decoders reject
// versions they don't speak rather than guessing (every shard of one run
// is built from one source tree, so cross-version compatibility windows
// are not worth their complexity here).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "net/message.h"

namespace mhca::net::wire {

inline constexpr std::uint16_t kMagic = 0x4D48;
inline constexpr std::uint8_t kVersion = 1;
inline constexpr std::size_t kHeaderSize = 32;

/// Per-datagram framing overhead of the UDP transport (net/transport.h);
/// fragment accounting everywhere uses the same constant so the in-process
/// bill equals what the socket backend actually puts on the wire.
inline constexpr std::size_t kDatagramHeaderSize = 24;
/// Smallest supported MTU: one datagram must fit its header and a useful
/// slice of payload.
inline constexpr int kMinMtu = 128;
inline constexpr int kDefaultMtu = 1400;
/// Largest UDP payload a loopback datagram can carry.
inline constexpr int kMaxMtu = 65507;

/// Datagram fragments an encoded message of `wire_size` bytes occupies at
/// `mtu` (each fragment spends kDatagramHeaderSize on framing).
constexpr std::int64_t fragments_of(std::size_t wire_size, int mtu) {
  const auto cap = static_cast<std::size_t>(mtu) - kDatagramHeaderSize;
  if (wire_size <= cap) return 1;
  return static_cast<std::int64_t>((wire_size + cap - 1) / cap);
}

/// Malformed buffer: truncated/oversized/bad magic/unknown version or type/
/// lying element counts. The message names the offending field and value.
class WireError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Exact encoded size of `msg` (header + payload).
std::size_t encoded_size(const Message& msg);

/// Serialize `msg` into `out` (replacing its contents). Postcondition:
/// out.size() == encoded_size(msg).
void encode(const Message& msg, std::vector<std::uint8_t>& out);

/// Parse one message. Throws WireError on any malformation; never reads
/// past data + len.
Message decode(const std::uint8_t* data, std::size_t len);

/// Non-throwing decode: returns false (and the reason, if asked) instead.
bool try_decode(const std::uint8_t* data, std::size_t len, Message& out,
                std::string* error = nullptr);

/// Order-sensitive digest of an encoded buffer — the bytes-level fold the
/// control channel mixes into trace_hash(), proving replays byte-identical
/// at the wire level and not just at the struct level.
std::uint64_t bytes_digest(const std::uint8_t* data, std::size_t len);

}  // namespace mhca::net::wire
