// DeltaBatch — coalesce a run of per-slot GraphDeltas into one net delta.
//
// The second ROADMAP dynamics lever: when the engines only *decide* every
// `update_period` slots, paying structural maintenance (Graph::apply_delta,
// scoped cache invalidation, strategy pruning) on every intermediate slot
// buys nothing the next decision can see. A DeltaBatch accumulates the
// model's slot deltas and, at flush time, emits the *net* change versus the
// state at the last flush: an edge added and removed inside the window
// cancels outright (churny edges often do), a node that left and rejoined
// never appears, and the blast radius handed to cache invalidation covers
// only edges that actually differ. Applying the flushed delta yields a
// graph byte-identical to applying every slot delta in order
// (tests/dynamics_differential_test.cc fuzzes this).
//
// Used by DynamicNetwork's batch mode (`batch_period`, scenario key
// `dynamics.batch`); see dynamic_network.h for the semantics trade-off.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "dynamics/delta.h"

namespace mhca::dynamics {

class DeltaBatch {
 public:
  /// Fold one slot's delta in. Deltas must arrive in slot order and be
  /// exact with respect to the evolving (unflushed) state, which is what
  /// every DynamicsModel emits.
  void accumulate(const GraphDelta& d);

  bool empty() const { return edges_.empty() && activity_.empty(); }

  /// Write the net delta since the last flush into `out` (sorted canonical
  /// edge lists, ascending node lists) and reset the batch. `out` may be
  /// empty even after nonempty accumulates — everything cancelled.
  void flush(GraphDelta& out);

 private:
  static std::int64_t edge_key(int u, int v) {
    return (static_cast<std::int64_t>(u) << 32) | static_cast<std::uint32_t>(v);
  }

  /// Net edge state vs last flush: +1 = added, -1 = removed. An entry that
  /// returns to its pre-batch state is erased.
  std::unordered_map<std::int64_t, int> edges_;
  /// first = state before the batch, second = current state. Erased when
  /// they re-converge is handled at flush (cheaper than eager erase).
  std::unordered_map<int, std::pair<char, char>> activity_;
};

}  // namespace mhca::dynamics
