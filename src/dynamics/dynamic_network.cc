#include "dynamics/dynamic_network.h"

#include <algorithm>
#include <utility>

#include "util/assert.h"

namespace mhca::dynamics {

DynamicNetwork::DynamicNetwork(ConflictGraph base, int num_channels)
    : DynamicNetwork(std::move(base), num_channels, nullptr) {}

DynamicNetwork::DynamicNetwork(ConflictGraph base, int num_channels,
                               std::unique_ptr<DynamicsModel> model,
                               bool incremental)
    : cg_(std::move(base)),
      ecg_(cg_, num_channels),
      model_(std::move(model)),
      incremental_(incremental),
      active_nodes_(static_cast<std::size_t>(cg_.num_nodes()), 1),
      active_vertices_(static_cast<std::size_t>(ecg_.num_vertices()), 1),
      active_count_(cg_.num_nodes()) {}

void DynamicNetwork::set_batch_period(int period) {
  MHCA_ASSERT(period >= 1, "batch period must be positive");
  MHCA_ASSERT(last_slot_ == 1 && batch_.empty(),
              "set_batch_period before the first advance()");
  batch_period_ = period;
}

const SlotChange& DynamicNetwork::advance(std::int64_t t) {
  MHCA_ASSERT(t == last_slot_ + 1,
              "advance() must be called once per slot, in order");
  last_slot_ = t;
  change_.changed = false;
  change_.delta.clear();
  change_.touched_vertices.clear();
  if (!model_) return change_;

  const GraphDelta& d = model_->step(t);
  if (batch_period_ > 1) {
    // Batched maintenance: fold the slot delta in; apply the coalesced net
    // change only on the slots decisions are made on.
    if (!d.empty()) batch_.accumulate(d);
    if (((t - 1) % batch_period_) != 0 || batch_.empty()) return change_;
    batch_.flush(net_delta_);
    if (!net_delta_.empty()) apply_change(net_delta_);
    return change_;
  }
  if (!d.empty()) apply_change(d);
  return change_;
}

void DynamicNetwork::apply_change(const GraphDelta& d) {
  change_.changed = true;
  change_.delta = d;
  ++slots_changed_;
  edges_added_ += static_cast<std::int64_t>(d.added_edges.size());
  edges_removed_ += static_cast<std::int64_t>(d.removed_edges.size());

  // Activity masks first (pure bookkeeping, independent of the mode).
  const int m = ecg_.num_channels();
  const auto set_node = [&](int i, char up) {
    MHCA_ASSERT(i >= 0 && i < cg_.num_nodes(), "node out of range");
    MHCA_ASSERT(active_nodes_[static_cast<std::size_t>(i)] != up,
                "activity toggle does not change state");
    active_nodes_[static_cast<std::size_t>(i)] = up;
    for (int j = 0; j < m; ++j)
      active_vertices_[static_cast<std::size_t>(ecg_.vertex_of(i, j))] = up;
    active_count_ += up ? 1 : -1;
  };
  for (int i : change_.delta.deactivated) set_node(i, 0);
  for (int i : change_.delta.activated) set_node(i, 1);

  // Touched H vertices: every virtual vertex of a node incident to a
  // changed G edge (same-channel lifts touch all M copies of both ends).
  std::vector<int> touched_nodes;
  for (const auto& [u, v] : change_.delta.added_edges) {
    touched_nodes.push_back(u);
    touched_nodes.push_back(v);
  }
  for (const auto& [u, v] : change_.delta.removed_edges) {
    touched_nodes.push_back(u);
    touched_nodes.push_back(v);
  }
  std::sort(touched_nodes.begin(), touched_nodes.end());
  touched_nodes.erase(std::unique(touched_nodes.begin(), touched_nodes.end()),
                      touched_nodes.end());
  for (int i : touched_nodes)
    for (int j = 0; j < m; ++j)
      change_.touched_vertices.push_back(ecg_.vertex_of(i, j));

  if (incremental_)
    apply_incremental(change_.delta);
  else
    apply_full_rebuild(change_.delta);

  // A node that left must now be isolated in G (the model's contract: its
  // incident edges travel in the same delta; coalescing preserves this —
  // an edge back to a net-deactivated node cannot survive the window).
  for (int i : change_.delta.deactivated)
    MHCA_ASSERT(cg_.graph().degree(i) == 0,
                "deactivated node still has conflict edges");
}

void DynamicNetwork::apply_incremental(const GraphDelta& d) {
  cg_.apply_edge_delta(d.added_edges, d.removed_edges);
  ecg_.apply_conflict_delta(d.added_edges, d.removed_edges);
}

void DynamicNetwork::apply_full_rebuild(const GraphDelta& d) {
  // Reference path: re-derive the new edge set and rebuild G and H exactly
  // as a cold start would. Positions are not carried over — the engines are
  // location-free, and the mode exists for equivalence proof and baseline
  // timing only.
  std::vector<std::pair<int, int>> edges;
  const Graph& g = cg_.graph();
  for (int v = 0; v < g.size(); ++v)
    for (int u : g.neighbors(v))
      if (u > v) edges.emplace_back(v, u);  // sorted lexicographically
  std::vector<std::pair<int, int>> kept;
  kept.reserve(edges.size() + d.added_edges.size());
  std::set_difference(edges.begin(), edges.end(), d.removed_edges.begin(),
                      d.removed_edges.end(), std::back_inserter(kept));
  MHCA_ASSERT(kept.size() == edges.size() - d.removed_edges.size(),
              "removed edge not present in the current graph");
  kept.insert(kept.end(), d.added_edges.begin(), d.added_edges.end());
  cg_ = ConflictGraph::from_edges(cg_.num_nodes(), kept);
  ecg_ = ExtendedConflictGraph(cg_, ecg_.num_channels());
}

}  // namespace mhca::dynamics
