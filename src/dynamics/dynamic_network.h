// DynamicNetwork — owns the mutable topology of one dynamic run.
//
// The engines in this repo (Simulator, net runtime) borrow const references
// to a conflict graph / extended graph; a DynamicNetwork is the object that
// actually owns those structures when they change over time. Per slot it
// pulls the next GraphDelta from its DynamicsModel, applies it to G and
// lifts it onto H, maintains the node/vertex activity masks, and reports
// which H vertices were structurally touched so callers can scope their own
// cache maintenance (DistributedRobustPtas::on_graph_delta, the net
// runtime's scoped rediscovery).
//
// Two maintenance modes, selected by `incremental`:
//   true  (default) — Graph::apply_delta patches the CSR/bitset structures
//           in place; per-slot cost scales with the blast radius.
//   false — reference mode: G is rebuilt from its new edge set from scratch
//           and H re-derived from G, exactly as a cold start would. The two
//           modes are byte-identical by construction *and* by test
//           (tests/dynamics_differential_test.cc); the reference mode exists
//           to prove that and to be the bench baseline (bench_dynamics).
//
// Orthogonally, `set_batch_period(P)` batches structural maintenance across
// multi-slot update periods (the engines only decide every P slots — paying
// apply_delta + cache invalidation on slots no decision reads is wasted):
// the model still steps every slot, but its deltas accumulate in a
// DeltaBatch and are applied as one *coalesced* net delta at the slots
// decisions happen on (t with (t-1) % P == 0), cancelling add/remove churn
// inside the window. The graph the engines see at every decision slot is
// byte-identical to eager per-slot maintenance (fuzzed); what changes is
// that *between* decisions the topology (and the activity masks) hold
// still, so per-intermediate-slot consumers (strategy-feasibility pruning,
// per-slot conflict checks) observe the window-start state instead of the
// evolving one. P = 1 (default) is exact eager maintenance.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "dynamics/batch.h"
#include "dynamics/delta.h"
#include "dynamics/model.h"
#include "graph/conflict_graph.h"
#include "graph/extended_graph.h"

namespace mhca::dynamics {

/// What one advance() did, for callers that maintain derived state.
struct SlotChange {
  bool changed = false;
  GraphDelta delta;                   ///< Node-level delta applied.
  std::vector<int> touched_vertices;  ///< H vertices incident to any change.
};

class DynamicNetwork {
 public:
  /// Static network: advance() never reports a change. Exists so callers
  /// can treat every run uniformly.
  DynamicNetwork(ConflictGraph base, int num_channels);

  /// Dynamic network: `model` drives slots 2, 3, ... (slot 1 is `base`).
  DynamicNetwork(ConflictGraph base, int num_channels,
                 std::unique_ptr<DynamicsModel> model, bool incremental = true);

  bool dynamic() const { return model_ != nullptr; }
  bool incremental() const { return incremental_; }

  /// Batch structural maintenance to every `period`-th slot (see the class
  /// comment). Call before the first advance(); period >= 1, 1 = eager.
  void set_batch_period(int period);
  int batch_period() const { return batch_period_; }

  const ConflictGraph& network() const { return cg_; }
  const ExtendedConflictGraph& ecg() const { return ecg_; }
  const DynamicsModel& model() const { return *model_; }

  int num_active_nodes() const { return active_count_; }
  const std::vector<char>& active_nodes() const { return active_nodes_; }
  /// Full per-H-vertex mask (size K), regardless of whether masking is
  /// currently needed — the net runtime pushes this into its agents.
  const std::vector<char>& active_vertices() const {
    return active_vertices_;
  }

  /// Per-H-vertex activity mask for the MWIS engines: empty span when every
  /// node is active (the engines' "no masking" fast path), else size K.
  std::span<const char> active_vertex_mask() const {
    if (active_count_ == cg_.num_nodes()) return {};
    return active_vertices_;
  }

  /// Advance the topology into slot t. Must be called once per slot with
  /// t = 2, 3, ... in order; the returned reference is valid until the next
  /// call. No-op (changed = false) for static networks and empty deltas.
  const SlotChange& advance(std::int64_t t);

  // Cumulative maintenance statistics (benches / tests).
  std::int64_t slots_changed() const { return slots_changed_; }
  std::int64_t edges_added() const { return edges_added_; }
  std::int64_t edges_removed() const { return edges_removed_; }

 private:
  /// Shared tail of advance(): masks, touched vertices, structural apply,
  /// stats — for the slot delta (eager) or the coalesced one (batched).
  void apply_change(const GraphDelta& d);
  void apply_incremental(const GraphDelta& d);
  void apply_full_rebuild(const GraphDelta& d);

  ConflictGraph cg_;
  ExtendedConflictGraph ecg_;
  std::unique_ptr<DynamicsModel> model_;
  bool incremental_ = true;
  int batch_period_ = 1;
  DeltaBatch batch_;
  GraphDelta net_delta_;
  std::vector<char> active_nodes_;
  std::vector<char> active_vertices_;
  int active_count_ = 0;
  std::int64_t last_slot_ = 1;
  SlotChange change_;
  std::int64_t slots_changed_ = 0;
  std::int64_t edges_added_ = 0;
  std::int64_t edges_removed_ = 0;
};

}  // namespace mhca::dynamics
