#include "dynamics/registries.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>
#include <vector>

#include "graph/spatial_grid.h"
#include "util/assert.h"

namespace mhca::dynamics {

namespace {

using scenario::ParamMap;
using scenario::ScenarioError;

/// Bounding box of a position set (the arena mobility / regions live in).
struct Box {
  double x0 = 0.0, y0 = 0.0, x1 = 0.0, y1 = 0.0;
  double width() const { return x1 - x0; }
  double height() const { return y1 - y0; }
};

Box bounding_box(const std::vector<Point>& pts) {
  Box b;
  if (pts.empty()) return b;
  b.x0 = b.x1 = pts[0].x;
  b.y0 = b.y1 = pts[0].y;
  for (const Point& p : pts) {
    b.x0 = std::min(b.x0, p.x);
    b.x1 = std::max(b.x1, p.x);
    b.y0 = std::min(b.y0, p.y);
    b.y1 = std::max(b.y1, p.y);
  }
  return b;
}

std::vector<std::vector<int>> copy_adjacency(const Graph& g) {
  std::vector<std::vector<int>> adj(static_cast<std::size_t>(g.size()));
  for (int v = 0; v < g.size(); ++v) {
    const auto nb = g.neighbors(v);
    adj[static_cast<std::size_t>(v)].assign(nb.begin(), nb.end());
  }
  return adj;
}

void sort_unique(std::vector<std::pair<int, int>>& edges) {
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
}

std::pair<int, int> canonical(int u, int v) {
  return u < v ? std::pair{u, v} : std::pair{v, u};
}

/// Shared membership-transition machinery for mask-over-base-adjacency
/// models (churn, primary_user): given who leaves and who joins this slot,
/// emit the exact edge delta that keeps "edge present ⟺ both endpoints
/// active and base-adjacent" invariant, update the mask, and fill `out`.
void apply_mask_transition(const std::vector<std::vector<int>>& base_adj,
                           std::vector<char>& active,
                           const std::vector<int>& leavers,
                           const std::vector<int>& joiners, GraphDelta& out) {
  out.clear();
  std::vector<char> next = active;
  for (int i : leavers) {
    MHCA_ASSERT(active[static_cast<std::size_t>(i)], "leaver already down");
    next[static_cast<std::size_t>(i)] = 0;
  }
  for (int i : joiners) {
    MHCA_ASSERT(!active[static_cast<std::size_t>(i)], "joiner already up");
    next[static_cast<std::size_t>(i)] = 1;
  }
  // A leaver sheds every edge it currently has (both endpoints active now);
  // a joiner gains the base edges to endpoints active *after* this slot.
  // Both-endpoint events emit the pair twice — sort_unique collapses them.
  for (int i : leavers)
    for (int u : base_adj[static_cast<std::size_t>(i)])
      if (active[static_cast<std::size_t>(u)])
        out.removed_edges.push_back(canonical(i, u));
  for (int i : joiners)
    for (int u : base_adj[static_cast<std::size_t>(i)])
      if (next[static_cast<std::size_t>(u)])
        out.added_edges.push_back(canonical(i, u));
  sort_unique(out.removed_edges);
  sort_unique(out.added_edges);
  out.deactivated = leavers;
  out.activated = joiners;
  active = std::move(next);
}

// ------------------------------------------------------------------ static

class StaticModel final : public DynamicsModel {
 public:
  const char* name() const override { return "static"; }
  const GraphDelta& step(std::int64_t) override { return delta_; }

 private:
  GraphDelta delta_;
};

// ------------------------------------------------------------------- churn

/// Per-slot node churn over the base adjacency: every active node leaves
/// with `leave_prob` (never dropping below `min_active` live nodes), every
/// inactive node rejoins with `join_prob`. A rejoining node reconnects to
/// its base neighbors that are up.
class ChurnModel final : public DynamicsModel {
 public:
  ChurnModel(const ConflictGraph& base, double leave_prob, double join_prob,
             int min_active, Rng rng)
      : base_adj_(copy_adjacency(base.graph())),
        active_(static_cast<std::size_t>(base.num_nodes()), 1),
        active_count_(base.num_nodes()),
        leave_prob_(leave_prob),
        join_prob_(join_prob),
        min_active_(min_active),
        rng_(std::move(rng)) {}

  const char* name() const override { return "churn"; }

  const GraphDelta& step(std::int64_t) override {
    const int n = static_cast<int>(active_.size());
    std::vector<int> leavers, joiners;
    int live = active_count_;
    // Fates drawn in id order — the whole sequence is a pure function of
    // the construction seed.
    for (int i = 0; i < n; ++i) {
      if (active_[static_cast<std::size_t>(i)]) {
        if (live > min_active_ && rng_.bernoulli(leave_prob_)) {
          leavers.push_back(i);
          --live;
        }
      } else if (rng_.bernoulli(join_prob_)) {
        joiners.push_back(i);
        ++live;
      }
    }
    apply_mask_transition(base_adj_, active_, leavers, joiners, delta_);
    active_count_ = live;
    return delta_;
  }

 private:
  std::vector<std::vector<int>> base_adj_;
  std::vector<char> active_;
  int active_count_;
  double leave_prob_;
  double join_prob_;
  int min_active_;
  Rng rng_;
  GraphDelta delta_;
};

// ---------------------------------------------------------------- waypoint

/// Random-waypoint mobility over the base topology's bounding box: each
/// node moves `speed` units per slot toward a private waypoint, pauses
/// `pause` slots on arrival, then draws the next waypoint. The unit-disk
/// edge set is re-derived from the moved positions each slot and diffed
/// against the previous slot's — nodes never deactivate, the conflict
/// structure just flows.
class WaypointModel final : public DynamicsModel {
 public:
  WaypointModel(const ConflictGraph& base, double speed, int pause, Rng rng)
      : positions_(base.positions()),
        radius_(base.radius()),
        box_(bounding_box(positions_)),
        speed_(speed),
        pause_(pause),
        rng_(std::move(rng)) {
    const auto n = positions_.size();
    targets_.resize(n);
    pause_left_.assign(n, 0);
    for (std::size_t i = 0; i < n; ++i) targets_[i] = draw_waypoint();
    edges_ = edge_set();
  }

  const char* name() const override { return "waypoint"; }

  const GraphDelta& step(std::int64_t) override {
    for (std::size_t i = 0; i < positions_.size(); ++i) {
      if (pause_left_[i] > 0) {
        --pause_left_[i];
        continue;
      }
      Point& p = positions_[i];
      const Point t = targets_[i];
      const double d = distance(p, t);
      if (d <= speed_) {
        p = t;
        targets_[i] = draw_waypoint();
        pause_left_[i] = pause_;
      } else {
        p.x += (t.x - p.x) / d * speed_;
        p.y += (t.y - p.y) / d * speed_;
      }
    }
    std::vector<std::pair<int, int>> now = edge_set();
    delta_.clear();
    std::set_difference(edges_.begin(), edges_.end(), now.begin(), now.end(),
                        std::back_inserter(delta_.removed_edges));
    std::set_difference(now.begin(), now.end(), edges_.begin(), edges_.end(),
                        std::back_inserter(delta_.added_edges));
    edges_ = std::move(now);
    return delta_;
  }

  const std::vector<Point>& positions() const override { return positions_; }

 private:
  Point draw_waypoint() {
    return Point{rng_.uniform(box_.x0, box_.x1),
                 rng_.uniform(box_.y0, box_.y1)};
  }

  /// Unit-disk edges of the current positions via the spatial grid:
  /// O(n * k) per slot instead of the O(n^2) all-pairs sweep. The grid
  /// emits in cell order; sorting the (small) edge list restores the
  /// canonical ascending order set_difference needs.
  std::vector<std::pair<int, int>> edge_set() {
    grid_.rebuild(positions_, radius_);
    std::vector<std::pair<int, int>> out;
    out.reserve(edges_.size() + 16);
    grid_.for_each_pair_within(positions_, radius_,
                               [&](int i, int j) { out.emplace_back(i, j); });
    std::sort(out.begin(), out.end());
    return out;
  }

  std::vector<Point> positions_;
  double radius_;
  Box box_;
  double speed_;
  int pause_;
  Rng rng_;
  std::vector<Point> targets_;
  std::vector<int> pause_left_;
  std::vector<std::pair<int, int>> edges_;  ///< Current edge set, sorted.
  SpatialGrid grid_;                        ///< Rebuilt from moved positions.
  GraphDelta delta_;
};

// ------------------------------------------------------------ primary_user

/// On/off primary-user regions: fixed disk regions (centers drawn once at
/// construction) flip on/off per slot as independent two-state Markov
/// chains; while a region is on, every secondary user inside it must stay
/// silent — modeled as those nodes leaving the network (mask + incident
/// edges), exactly like churn but spatially correlated.
class PrimaryUserModel final : public DynamicsModel {
 public:
  PrimaryUserModel(const ConflictGraph& base, int regions,
                   double region_radius, double on_prob, double off_prob,
                   Rng rng)
      : base_adj_(copy_adjacency(base.graph())),
        positions_(base.positions()),
        active_(static_cast<std::size_t>(base.num_nodes()), 1),
        on_prob_(on_prob),
        off_prob_(off_prob),
        rng_(std::move(rng)) {
    const Box box = bounding_box(positions_);
    radius_ = region_radius > 0.0
                  ? region_radius
                  : 0.25 * std::max(box.width(), box.height());
    centers_.reserve(static_cast<std::size_t>(regions));
    for (int k = 0; k < regions; ++k)
      centers_.push_back(Point{rng_.uniform(box.x0, box.x1),
                               rng_.uniform(box.y0, box.y1)});
    on_.assign(static_cast<std::size_t>(regions), 0);
    // Secondary users never move in this model, so one grid serves every
    // slot's coverage queries: O(points inside) per on-region instead of an
    // all-points distance scan per region.
    grid_.rebuild(positions_, radius_);
    covered_.assign(positions_.size(), 0);
  }

  const char* name() const override { return "primary_user"; }

  const GraphDelta& step(std::int64_t) override {
    for (std::size_t k = 0; k < on_.size(); ++k) {
      if (on_[k]) {
        if (rng_.bernoulli(off_prob_)) on_[k] = 0;
      } else if (rng_.bernoulli(on_prob_)) {
        on_[k] = 1;
      }
    }
    std::fill(covered_.begin(), covered_.end(), 0);
    for (std::size_t k = 0; k < centers_.size(); ++k) {
      if (!on_[k]) continue;
      grid_.for_each_within(positions_, centers_[k], radius_, [&](int i) {
        covered_[static_cast<std::size_t>(i)] = 1;
      });
    }
    std::vector<int> leavers, joiners;
    for (std::size_t i = 0; i < positions_.size(); ++i) {
      const bool up = !covered_[i];
      if (active_[i] && !up) leavers.push_back(static_cast<int>(i));
      if (!active_[i] && up) joiners.push_back(static_cast<int>(i));
    }
    apply_mask_transition(base_adj_, active_, leavers, joiners, delta_);
    return delta_;
  }

 private:
  std::vector<std::vector<int>> base_adj_;
  std::vector<Point> positions_;
  std::vector<char> active_;
  std::vector<Point> centers_;
  std::vector<char> on_;
  double radius_ = 0.0;
  double on_prob_;
  double off_prob_;
  Rng rng_;
  SpatialGrid grid_;        ///< Over the (static) positions, cell = radius.
  std::vector<char> covered_;
  GraphDelta delta_;
};

// ------------------------------------------------------------ registration

const ConflictGraph& require_base(const DynamicsBuildContext& ctx,
                                  const char* kind) {
  if (ctx.base == nullptr)
    throw ScenarioError(std::string("dynamics model '") + kind +
                        "' needs a base topology in its build context");
  return *ctx.base;
}

const ConflictGraph& require_positions(const DynamicsBuildContext& ctx,
                                       const char* kind) {
  const ConflictGraph& base = require_base(ctx, kind);
  if (!base.has_positions())
    throw ScenarioError(std::string("dynamics model '") + kind +
                        "' needs a topology with node positions "
                        "(geometric, linear, grid)");
  return base;
}

double require_prob(const ParamMap& p, const std::string& key, double def,
                    const std::string& component) {
  const double v = p.get_double(key, def);
  if (v < 0.0 || v > 1.0)
    throw ScenarioError("bad value " + std::to_string(v) + " for '" + key +
                        "' of " + component + ": must be in [0, 1]");
  return v;
}

void register_builtin_models(DynamicsRegistry& reg) {
  reg.add(kStaticDynamicsKind, {},
          [](const ParamMap&, const DynamicsBuildContext&, Rng&) {
            return std::unique_ptr<DynamicsModel>(
                std::make_unique<StaticModel>());
          });
  reg.add("churn", {"leave_prob", "join_prob", "min_active"},
          [](const ParamMap& p, const DynamicsBuildContext& ctx, Rng& rng) {
            const ConflictGraph& base = require_base(ctx, "churn");
            const int min_active = scenario::checked_int32(
                p.get_int("min_active", 1), "min_active");
            if (min_active < 0 || min_active > base.num_nodes())
              throw ScenarioError(
                  "bad value " + std::to_string(min_active) +
                  " for 'min_active' of dynamics model 'churn': must be in "
                  "[0, nodes]");
            return std::unique_ptr<DynamicsModel>(std::make_unique<ChurnModel>(
                base,
                require_prob(p, "leave_prob", 0.01, "dynamics model 'churn'"),
                require_prob(p, "join_prob", 0.2, "dynamics model 'churn'"),
                min_active, rng.split()));
          });
  reg.add("waypoint", {"speed", "pause"},
          [](const ParamMap& p, const DynamicsBuildContext& ctx, Rng& rng) {
            const ConflictGraph& base = require_positions(ctx, "waypoint");
            const double speed = p.get_double("speed", 0.05);
            if (speed <= 0.0)
              throw ScenarioError(
                  "bad value " + std::to_string(speed) +
                  " for 'speed' of dynamics model 'waypoint': must be > 0");
            const int pause =
                scenario::checked_int32(p.get_int("pause", 0), "pause");
            if (pause < 0)
              throw ScenarioError(
                  "bad value " + std::to_string(pause) +
                  " for 'pause' of dynamics model 'waypoint': must be >= 0");
            return std::unique_ptr<DynamicsModel>(
                std::make_unique<WaypointModel>(base, speed, pause,
                                                rng.split()));
          });
  reg.add("primary_user", {"regions", "region_radius", "on_prob", "off_prob"},
          [](const ParamMap& p, const DynamicsBuildContext& ctx, Rng& rng) {
            const ConflictGraph& base = require_positions(ctx, "primary_user");
            const int regions = scenario::checked_int32(
                p.get_int("regions", 2), "regions");
            if (regions < 1)
              throw ScenarioError(
                  "bad value " + std::to_string(regions) +
                  " for 'regions' of dynamics model 'primary_user': must be "
                  ">= 1");
            return std::unique_ptr<DynamicsModel>(
                std::make_unique<PrimaryUserModel>(
                    base, regions, p.get_double("region_radius", 0.0),
                    require_prob(p, "on_prob", 0.05,
                                 "dynamics model 'primary_user'"),
                    require_prob(p, "off_prob", 0.2,
                                 "dynamics model 'primary_user'"),
                    rng.split()));
          });
}

}  // namespace

DynamicsRegistry& dynamics_registry() {
  static DynamicsRegistry* reg = [] {
    auto* r = new DynamicsRegistry("dynamics model");
    register_builtin_models(*r);
    return r;
  }();
  return *reg;
}

}  // namespace mhca::dynamics
