#include "dynamics/batch.h"

#include <algorithm>

#include "util/assert.h"

namespace mhca::dynamics {

void DeltaBatch::accumulate(const GraphDelta& d) {
  for (const auto& [u, v] : d.added_edges) {
    const auto key = edge_key(u, v);
    const auto it = edges_.find(key);
    if (it != edges_.end()) {
      // Present entry must be a pending removal: the edge existed at the
      // last flush, went away, and now returns — net nothing.
      MHCA_ASSERT(it->second == -1, "batched add of an already-added edge");
      edges_.erase(it);
    } else {
      edges_.emplace(key, +1);
    }
  }
  for (const auto& [u, v] : d.removed_edges) {
    const auto key = edge_key(u, v);
    const auto it = edges_.find(key);
    if (it != edges_.end()) {
      MHCA_ASSERT(it->second == +1,
                  "batched removal of an already-removed edge");
      edges_.erase(it);
    } else {
      edges_.emplace(key, -1);
    }
  }
  const auto toggle = [&](int i, char now) {
    const auto it = activity_.find(i);
    if (it != activity_.end()) {
      MHCA_ASSERT(it->second.second != now,
                  "batched activity toggle does not change state");
      it->second.second = now;
    } else {
      // First toggle in the window: the pre-batch state is the opposite.
      activity_.emplace(i, std::pair<char, char>{!now, now});
    }
  };
  for (int i : d.deactivated) toggle(i, 0);
  for (int i : d.activated) toggle(i, 1);
}

void DeltaBatch::flush(GraphDelta& out) {
  out.clear();
  for (const auto& [key, dir] : edges_) {
    const int u = static_cast<int>(key >> 32);
    const int v = static_cast<int>(key & 0xFFFFFFFF);
    if (dir > 0)
      out.added_edges.emplace_back(u, v);
    else
      out.removed_edges.emplace_back(u, v);
  }
  std::sort(out.added_edges.begin(), out.added_edges.end());
  std::sort(out.removed_edges.begin(), out.removed_edges.end());
  for (const auto& [i, state] : activity_) {
    if (state.first == state.second) continue;  // left and came back
    if (state.second)
      out.activated.push_back(i);
    else
      out.deactivated.push_back(i);
  }
  std::sort(out.activated.begin(), out.activated.end());
  std::sort(out.deactivated.begin(), out.deactivated.end());
  edges_.clear();
  activity_.clear();
}

}  // namespace mhca::dynamics
