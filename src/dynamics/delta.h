// GraphDelta — one slot's worth of conflict-graph change (src/dynamics).
//
// Deltas are expressed at the *node* level over a fixed vertex universe
// 0..N-1: nodes never appear or disappear, they toggle between active and
// inactive (the fixed universe is what keeps every per-vertex structure —
// NeighborhoodCache, agent tables, weight vectors — size-stable while the
// topology moves underneath). A node that leaves is left isolated: the
// emitting model includes all of its incident edges in `removed_edges`, and
// the activity mask keeps it out of every strategy until it rejoins.
#pragma once

#include <utility>
#include <vector>

namespace mhca::dynamics {

/// Edge and activity changes to apply between two slots. Edges are
/// canonical (u < v) and exact: every added edge must be absent and every
/// removed edge present (Graph::apply_delta asserts this), so a delta and
/// its inverse round-trip.
struct GraphDelta {
  std::vector<std::pair<int, int>> added_edges;
  std::vector<std::pair<int, int>> removed_edges;
  std::vector<int> deactivated;  ///< Nodes going offline this slot.
  std::vector<int> activated;    ///< Nodes coming back online.

  bool empty() const {
    return added_edges.empty() && removed_edges.empty() &&
           deactivated.empty() && activated.empty();
  }

  void clear() {
    added_edges.clear();
    removed_edges.clear();
    deactivated.clear();
    activated.clear();
  }
};

}  // namespace mhca::dynamics
