// The dynamics-model registry — fourth component registry of the Scenario
// API (next to topologies, channel models, and policies).
//
// Every DynamicsModel is constructible by string key: built-ins
// self-register on first access (registries.cc), extension code adds its
// own with `dynamics_registry().add(...)` at startup and is immediately
// reachable from every scenario file's [dynamics] section, CLI override,
// and `mhca_sim list`. Unknown kinds/keys fail with the same actionable
// errors as the other registries (bad name + the valid list).
#pragma once

#include <cstdint>
#include <memory>

#include "dynamics/model.h"
#include "graph/conflict_graph.h"
#include "scenario/registry.h"
#include "util/rng.h"

namespace mhca::dynamics {

/// Fixed build arguments a dynamics-model factory receives next to its
/// ParamMap. `base` is the slot-1 topology (borrowed only during
/// construction — models copy what they need); `horizon` is the scenario's
/// slot count.
struct DynamicsBuildContext {
  const ConflictGraph* base = nullptr;
  std::int64_t horizon = 0;
};

using DynamicsRegistry = scenario::Registry<std::unique_ptr<DynamicsModel>(
    const DynamicsBuildContext&, Rng&)>;

/// Process-wide registry, built-ins registered on first access.
DynamicsRegistry& dynamics_registry();

/// The registry key of the no-op model — scenarios default to it, and
/// `kind = static` is what "this scenario is not dynamic" looks like.
inline const char* const kStaticDynamicsKind = "static";

}  // namespace mhca::dynamics
