// DynamicsModel — the seeded, deterministic source of per-slot GraphDeltas.
//
// A model is built once per run from the *base* conflict graph (the slot-1
// topology the scenario's topology generator produced) and an Rng, and is
// then stepped through slots 2, 3, ... in order. Determinism contract: the
// entire delta sequence is a pure function of (base graph, params, seed) —
// models draw all randomness from the construction-time Rng in a fixed
// per-slot order and keep no hidden state, so two models built alike emit
// byte-identical sequences (this is what makes the incremental-vs-rebuild
// differential test meaningful, and dynamic scenarios replicable).
//
// Built-ins (registered by string key in registries.cc, like topologies /
// channels / policies): "static" (no change), "churn" (per-slot node
// leave/join over the base adjacency), "waypoint" (random-waypoint mobility
// re-deriving the unit-disk edge set from moving positions), and
// "primary_user" (on/off primary-user regions silencing the nodes they
// cover). See src/dynamics/README.md.
#pragma once

#include <cstdint>
#include <vector>

#include "dynamics/delta.h"
#include "graph/geometry.h"

namespace mhca::dynamics {

class DynamicsModel {
 public:
  virtual ~DynamicsModel() = default;

  virtual const char* name() const = 0;

  /// The delta transforming the slot t-1 topology into the slot t topology.
  /// Called exactly once per slot, for t = 2, 3, ... in order (asserted by
  /// DynamicNetwork); the returned reference is valid until the next call.
  virtual const GraphDelta& step(std::int64_t t) = 0;

  /// Current node positions for models that move them (mobility); empty for
  /// adjacency-only models. Introspection/testing only — the engine is
  /// location-free.
  virtual const std::vector<Point>& positions() const {
    static const std::vector<Point> kNone;
    return kNone;
  }
};

}  // namespace mhca::dynamics
