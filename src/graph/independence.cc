#include "graph/independence.h"

#include <algorithm>

#include "util/assert.h"

namespace mhca {
namespace {

/// Bron–Kerbosch over independent sets: recursion on (R, P, X) where P are
/// candidate vertices extending R and X are already-explored vertices that
/// could extend R (maximality check).
class MaximalIsEnumerator {
 public:
  MaximalIsEnumerator(const Graph& g, std::size_t cap,
                      std::vector<std::vector<int>>& out)
      : g_(g), cap_(cap), out_(out) {}

  bool run() {
    std::vector<int> r;
    std::vector<int> p(static_cast<std::size_t>(g_.size()));
    for (int v = 0; v < g_.size(); ++v) p[static_cast<std::size_t>(v)] = v;
    std::vector<int> x;
    return recurse(r, p, x);
  }

 private:
  // Returns false if the cap was hit (enumeration truncated).
  bool recurse(std::vector<int>& r, std::vector<int> p, std::vector<int> x) {
    if (p.empty() && x.empty()) {
      if (out_.size() >= cap_) return false;
      out_.push_back(r);
      return true;
    }
    // Pivot: vertex of P∪X with most *non*-neighbors in P (mirrors the
    // clique-version pivot picking most neighbors).
    int pivot = -1;
    std::size_t best = 0;
    auto count_nonadj = [&](int u) {
      std::size_t c = 0;
      for (int w : p)
        if (w != u && !g_.has_edge(u, w)) ++c;
      return c;
    };
    for (int u : p) {
      const std::size_t c = count_nonadj(u);
      if (pivot == -1 || c > best) pivot = u, best = c;
    }
    for (int u : x) {
      const std::size_t c = count_nonadj(u);
      if (pivot == -1 || c > best) pivot = u, best = c;
    }
    // Branch on vertices of P that are NOT "independent-extensions" of the
    // pivot, i.e. vertices adjacent to the pivot, plus the pivot itself.
    std::vector<int> branch;
    for (int u : p)
      if (u == pivot || g_.has_edge(u, pivot)) branch.push_back(u);
    for (int u : branch) {
      std::vector<int> p2, x2;
      for (int w : p)
        if (w != u && !g_.has_edge(u, w)) p2.push_back(w);
      for (int w : x)
        if (!g_.has_edge(u, w)) x2.push_back(w);
      r.push_back(u);
      const bool ok = recurse(r, std::move(p2), std::move(x2));
      r.pop_back();
      if (!ok) return false;
      p.erase(std::find(p.begin(), p.end(), u));
      x.push_back(u);
    }
    return true;
  }

  const Graph& g_;
  std::size_t cap_;
  std::vector<std::vector<int>>& out_;
};

int mis_recurse(const Graph& g, std::vector<int>& cand, int current, int best) {
  if (current + static_cast<int>(cand.size()) <= best) return best;
  if (cand.empty()) return std::max(best, current);
  // Branch on the highest-degree candidate (within cand) to shrink fast.
  const int v = cand.back();
  std::vector<int> rest(cand.begin(), cand.end() - 1);
  // Exclude v.
  best = mis_recurse(g, rest, current, best);
  // Include v.
  std::vector<int> keep;
  for (int u : rest)
    if (!g.has_edge(u, v)) keep.push_back(u);
  best = mis_recurse(g, keep, current + 1, best);
  return best;
}

}  // namespace

double set_weight(std::span<const int> vs, std::span<const double> weights) {
  double sum = 0.0;
  for (int v : vs) {
    MHCA_ASSERT(v >= 0 && static_cast<std::size_t>(v) < weights.size(),
                "vertex out of weight range");
    sum += weights[static_cast<std::size_t>(v)];
  }
  return sum;
}

bool enumerate_maximal_independent_sets(const Graph& g, std::size_t cap,
                                        std::vector<std::vector<int>>& out) {
  out.clear();
  MaximalIsEnumerator e(g, cap, out);
  return e.run();
}

int independence_number(const Graph& g) {
  std::vector<int> cand(static_cast<std::size_t>(g.size()));
  for (int v = 0; v < g.size(); ++v) cand[static_cast<std::size_t>(v)] = v;
  // Order by degree ascending so the branch vertex (back) has high degree.
  std::sort(cand.begin(), cand.end(),
            [&](int a, int b) { return g.degree(a) < g.degree(b); });
  return mis_recurse(g, cand, 0, 0);
}

}  // namespace mhca
