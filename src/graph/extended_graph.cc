#include "graph/extended_graph.h"

#include "util/assert.h"

namespace mhca {

ExtendedConflictGraph::ExtendedConflictGraph(const ConflictGraph& conflicts,
                                             int num_channels)
    : num_nodes_(conflicts.num_nodes()), num_channels_(num_channels) {
  MHCA_ASSERT(num_channels >= 1, "need at least one channel");
  graph_ = Graph(num_nodes_ * num_channels_);
  // Per-master cliques: a node uses at most one channel at a time.
  for (int i = 0; i < num_nodes_; ++i)
    for (int j = 0; j < num_channels_; ++j)
      for (int k = j + 1; k < num_channels_; ++k)
        graph_.add_edge(vertex_of(i, j), vertex_of(i, k));
  // Same-channel conflicts inherit edges of G.
  const Graph& g = conflicts.graph();
  for (int i = 0; i < num_nodes_; ++i)
    for (int p : g.neighbors(i))
      if (p > i)
        for (int j = 0; j < num_channels_; ++j)
          graph_.add_edge(vertex_of(i, j), vertex_of(p, j));
  graph_.finalize();
}

int ExtendedConflictGraph::vertex_of(int node, int channel) const {
  MHCA_ASSERT(node >= 0 && node < num_nodes_, "node out of range");
  MHCA_ASSERT(channel >= 0 && channel < num_channels_, "channel out of range");
  return node * num_channels_ + channel;
}

int ExtendedConflictGraph::master_of(int vertex) const {
  MHCA_ASSERT(vertex >= 0 && vertex < num_vertices(), "vertex out of range");
  return vertex / num_channels_;
}

int ExtendedConflictGraph::channel_of(int vertex) const {
  MHCA_ASSERT(vertex >= 0 && vertex < num_vertices(), "vertex out of range");
  return vertex % num_channels_;
}

Strategy ExtendedConflictGraph::to_strategy(
    std::span<const int> vertices) const {
  Strategy s;
  s.channel_of_node.assign(static_cast<std::size_t>(num_nodes_),
                           Strategy::kNoChannel);
  for (int v : vertices) {
    const int node = master_of(v);
    MHCA_ASSERT(s.channel_of_node[static_cast<std::size_t>(node)] ==
                    Strategy::kNoChannel,
                "two virtual vertices of the same node selected");
    s.channel_of_node[static_cast<std::size_t>(node)] = channel_of(v);
  }
  return s;
}

std::vector<int> ExtendedConflictGraph::to_vertices(const Strategy& s) const {
  MHCA_ASSERT(static_cast<int>(s.channel_of_node.size()) == num_nodes_,
              "strategy length mismatch");
  std::vector<int> out;
  for (int i = 0; i < num_nodes_; ++i) {
    const int c = s.channel_of_node[static_cast<std::size_t>(i)];
    if (c == Strategy::kNoChannel) continue;
    out.push_back(vertex_of(i, c));
  }
  return out;
}

void ExtendedConflictGraph::apply_conflict_delta(
    std::span<const std::pair<int, int>> added,
    std::span<const std::pair<int, int>> removed) {
  const auto lift = [this](std::span<const std::pair<int, int>> g_edges) {
    std::vector<std::pair<int, int>> h_edges;
    h_edges.reserve(g_edges.size() * static_cast<std::size_t>(num_channels_));
    for (const auto& [u, p] : g_edges)
      for (int j = 0; j < num_channels_; ++j)
        h_edges.emplace_back(vertex_of(u, j), vertex_of(p, j));
    return h_edges;
  };
  const std::vector<std::pair<int, int>> h_added = lift(added);
  const std::vector<std::pair<int, int>> h_removed = lift(removed);
  graph_.apply_delta(h_added, h_removed);
}

bool ExtendedConflictGraph::is_feasible(const Strategy& s) const {
  const std::vector<int> vs = to_vertices(s);
  return graph_.is_independent_set(vs);
}

}  // namespace mhca
