#include "graph/cds.h"

#include <algorithm>
#include <queue>

#include "util/assert.h"

namespace mhca {

bool is_dominating_set(const Graph& g, std::span<const int> ds) {
  std::vector<char> covered(static_cast<std::size_t>(g.size()), 0);
  for (int v : ds) {
    MHCA_ASSERT(v >= 0 && v < g.size(), "vertex out of range");
    covered[static_cast<std::size_t>(v)] = 1;
    for (int u : g.neighbors(v)) covered[static_cast<std::size_t>(u)] = 1;
  }
  for (char c : covered)
    if (!c) return false;
  return true;
}

bool induces_connected_subgraph(const Graph& g, std::span<const int> vs) {
  if (vs.size() <= 1) return true;
  std::vector<char> member(static_cast<std::size_t>(g.size()), 0);
  for (int v : vs) member[static_cast<std::size_t>(v)] = 1;
  std::vector<char> seen(static_cast<std::size_t>(g.size()), 0);
  std::queue<int> q;
  q.push(vs[0]);
  seen[static_cast<std::size_t>(vs[0])] = 1;
  std::size_t reached = 1;
  while (!q.empty()) {
    const int v = q.front();
    q.pop();
    for (int u : g.neighbors(v)) {
      auto ui = static_cast<std::size_t>(u);
      if (member[ui] && !seen[ui]) {
        seen[ui] = 1;
        ++reached;
        q.push(u);
      }
    }
  }
  return reached == vs.size();
}

std::vector<int> greedy_mis(const Graph& g) {
  std::vector<char> blocked(static_cast<std::size_t>(g.size()), 0);
  std::vector<int> mis;
  for (int v = 0; v < g.size(); ++v) {
    if (blocked[static_cast<std::size_t>(v)]) continue;
    mis.push_back(v);
    blocked[static_cast<std::size_t>(v)] = 1;
    for (int u : g.neighbors(v)) blocked[static_cast<std::size_t>(u)] = 1;
  }
  return mis;
}

std::vector<int> simple_connected_dominating_set(const Graph& g) {
  MHCA_ASSERT(g.is_connected(), "CDS construction requires a connected graph");
  if (g.size() == 0) return {};
  const std::vector<int> mis = greedy_mis(g);

  // BFS tree from the first dominator.
  const int root = mis.front();
  std::vector<int> parent(static_cast<std::size_t>(g.size()), -1);
  std::vector<char> seen(static_cast<std::size_t>(g.size()), 0);
  std::queue<int> q;
  q.push(root);
  seen[static_cast<std::size_t>(root)] = 1;
  while (!q.empty()) {
    const int v = q.front();
    q.pop();
    for (int u : g.neighbors(v)) {
      auto ui = static_cast<std::size_t>(u);
      if (!seen[ui]) {
        seen[ui] = 1;
        parent[ui] = v;
        q.push(u);
      }
    }
  }

  // Backbone = dominators + their parent chains into the backbone.
  std::vector<char> in_cds(static_cast<std::size_t>(g.size()), 0);
  in_cds[static_cast<std::size_t>(root)] = 1;
  for (int v : mis) {
    int x = v;
    while (x != -1 && !in_cds[static_cast<std::size_t>(x)]) {
      in_cds[static_cast<std::size_t>(x)] = 1;
      x = parent[static_cast<std::size_t>(x)];
    }
  }
  std::vector<int> cds;
  for (int v = 0; v < g.size(); ++v)
    if (in_cds[static_cast<std::size_t>(v)]) cds.push_back(v);
  return cds;
}

int pipelined_broadcast_timeslots(const Graph& g, std::span<const int> cds,
                                  int origin, int ttl) {
  MHCA_ASSERT(origin >= 0 && origin < g.size(), "origin out of range");
  MHCA_ASSERT(ttl >= 0, "negative ttl");
  // BFS where only CDS members (and the origin) relay; leaves may receive
  // but not forward. Returns the number of hops needed to cover everything
  // a plain ttl-flood covers, or ttl if equal.
  std::vector<char> relay(static_cast<std::size_t>(g.size()), 0);
  for (int v : cds) relay[static_cast<std::size_t>(v)] = 1;
  relay[static_cast<std::size_t>(origin)] = 1;

  std::vector<int> plain_dist(static_cast<std::size_t>(g.size()), -1);
  std::vector<int> cds_dist(static_cast<std::size_t>(g.size()), -1);
  // Plain BFS for the coverage target.
  {
    std::queue<int> q;
    q.push(origin);
    plain_dist[static_cast<std::size_t>(origin)] = 0;
    while (!q.empty()) {
      const int v = q.front();
      q.pop();
      const int d = plain_dist[static_cast<std::size_t>(v)];
      if (d == ttl) continue;
      for (int u : g.neighbors(v))
        if (plain_dist[static_cast<std::size_t>(u)] < 0) {
          plain_dist[static_cast<std::size_t>(u)] = d + 1;
          q.push(u);
        }
    }
  }
  // Restricted BFS: only relays expand.
  {
    std::queue<int> q;
    q.push(origin);
    cds_dist[static_cast<std::size_t>(origin)] = 0;
    while (!q.empty()) {
      const int v = q.front();
      q.pop();
      if (!relay[static_cast<std::size_t>(v)]) continue;
      for (int u : g.neighbors(v))
        if (cds_dist[static_cast<std::size_t>(u)] < 0) {
          cds_dist[static_cast<std::size_t>(u)] =
              cds_dist[static_cast<std::size_t>(v)] + 1;
          q.push(u);
        }
    }
  }
  int slots = 0;
  for (int v = 0; v < g.size(); ++v) {
    const auto vi = static_cast<std::size_t>(v);
    if (plain_dist[vi] < 0 || plain_dist[vi] > ttl) continue;
    MHCA_ASSERT(cds_dist[vi] >= 0,
                "CDS-restricted flood failed to cover a target vertex");
    slots = std::max(slots, cds_dist[vi]);
  }
  return slots;
}

}  // namespace mhca
