// Precomputed r-hop neighborhood structure for repeated strategy decisions.
//
// The distributed robust PTAS re-reads the same static neighborhoods every
// decision slot: leader election looks at (2r+1)-hop balls, local MWIS at
// r-hop balls (paper §IV-C). Both depend only on the graph and r — never on
// the weights — so they are computed once here (one bounded BFS per vertex)
// and stored flat in CSR form. `DistributedRobustPtas` walks these spans
// instead of re-flooding max-relaxation rounds and re-running BFS per
// leader.
//
// Optionally (`build_covers`) the cache also memoizes, per vertex, a greedy
// clique cover of its r-ball computed in the weight-free id-ascending order
// (`build_ball_cover`): the ball's clique *structure* never changes between
// slots, only the weights do, so the partition can be reused by restricting
// it to the current candidate subset (a subset of a clique is a clique).
// Covers are opt-in because the weight-free partition is measurably weaker
// as a bound than the per-solve weight-descending cover on hard instances
// (see src/mwis/README.md for the measurement); they pay off only where
// cover construction, not tree search, dominates.
//
// Reuse contract: the cache borrows the graph; the graph must be finalized
// first. When the graph *does* change (dynamics, src/dynamics/README.md),
// `apply_delta` re-synchronizes the cache by recomputing only the balls
// that can have moved — vertices within 2r+1 hops of a touched vertex in
// the old or new graph — instead of re-running one BFS per vertex.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"

namespace mhca {

class NeighborhoodCache {
 public:
  NeighborhoodCache() = default;

  /// Precompute, for every vertex v of g, the sorted r-hop ball J_r(v) and
  /// the sorted (2r+1)-hop election ball J_{2r+1}(v) (both include v).
  /// With `build_covers`, also memoize each r-ball's clique cover.
  ///
  /// `parallelism` fans the per-vertex BFS across worker threads with a
  /// two-pass count-then-fill layout into the CSR arrays (pass 1 sizes
  /// every ball, a prefix sum fixes each vertex's span, pass 2 re-runs the
  /// BFS writing into its disjoint slice), so the built cache is
  /// byte-identical at any worker count. 1 = the serial single-pass build;
  /// 0 = the MHCA_CACHE_BUILD_WORKERS environment variable if set (CI uses
  /// it to pin determinism across worker counts), else one worker per
  /// hardware thread.
  NeighborhoodCache(const Graph& g, int r, bool build_covers = false,
                    int parallelism = 0);

  bool built() const { return !r_offsets_.empty(); }
  bool has_covers() const { return !cover_counts_.empty(); }
  int r() const { return r_; }
  int size() const { return size_; }

  /// Sorted vertices within r hops of v, including v.
  std::span<const int> r_ball(int v) const {
    return span_of(r_offsets_, r_data_, v);
  }

  /// Sorted vertices within 2r+1 hops of v, including v.
  std::span<const int> election_ball(int v) const {
    return span_of(e_offsets_, e_data_, v);
  }

  /// Clique id per member of r_ball(v), aligned with that span. Ids are
  /// dense in [0, r_ball_clique_count(v)).
  std::span<const int> r_ball_cover(int v) const {
    return span_of(r_offsets_, cover_data_, v);
  }

  int r_ball_clique_count(int v) const {
    return cover_counts_[static_cast<std::size_t>(v)];
  }

  int r_ball_size(int v) const {
    return static_cast<int>(r_ball(v).size());
  }
  int election_ball_size(int v) const {
    return static_cast<int>(election_ball(v).size());
  }

  /// Total stored ball entries (memory introspection).
  std::int64_t total_entries() const {
    return static_cast<std::int64_t>(r_data_.size() + e_data_.size() +
                                     cover_data_.size());
  }

  /// Re-synchronize with a graph that just changed. `touched` are the
  /// vertices incident to an added/removed edge (the graph must already be
  /// patched). A vertex's k-ball can only change if it lies within k hops
  /// of a touched vertex either before or after the change, so the affected
  /// set is the union of (a) the *stored* election balls of the touched
  /// vertices — hop distance is symmetric, so "t was within 2r+1 of v" is
  /// read off t's old ball — and (b) one multi-source BFS to 2r+1 hops from
  /// `touched` on the new graph. Only affected vertices re-run BFS (and
  /// cover construction), and only moved bytes are written: spans whose
  /// size is unchanged — and every span before the first size change —
  /// keep their offsets and are patched in place; the suffix from the
  /// first size-changing vertex on is rewritten once. The result is
  /// byte-identical to a from-scratch rebuild
  /// (tests/dynamics_differential_test.cc fuzzes this claim).
  void apply_delta(const Graph& g, std::span<const int> touched);

  /// Affected vertices of the last apply_delta (introspection for benches).
  int last_invalidated() const { return last_invalidated_; }

  /// Greedy clique cover of `ball` (sorted vertex ids of g) in id-ascending
  /// order: each vertex joins the first clique it is fully adjacent to, else
  /// opens a new one. Writes the clique id of ball[i] to clique_of[i]
  /// (resized) and returns the clique count. Weight-free and deterministic,
  /// so a memoized cover and a freshly built one are always identical —
  /// the seed decision path rebuilds this per solve, the cached path reads
  /// it back from the cache, and both reach byte-identical solver behavior.
  static int build_ball_cover(const Graph& g, std::span<const int> ball,
                              std::vector<int>& clique_of);

 private:
  static std::span<const int> span_of(const std::vector<std::int64_t>& off,
                                      const std::vector<int>& data, int v) {
    const auto b = static_cast<std::size_t>(off[static_cast<std::size_t>(v)]);
    const auto e =
        static_cast<std::size_t>(off[static_cast<std::size_t>(v) + 1]);
    return {data.data() + b, e - b};
  }

  int r_ = 0;
  int size_ = 0;
  std::vector<std::int64_t> r_offsets_;  ///< size_+1.
  std::vector<int> r_data_;
  std::vector<std::int64_t> e_offsets_;  ///< size_+1.
  std::vector<int> e_data_;
  std::vector<int> cover_data_;          ///< Aligned with r_data_ when built.
  std::vector<int> cover_counts_;        ///< Cliques per r-ball when built.
  int last_invalidated_ = 0;
};

}  // namespace mhca
