// Precomputed r-hop neighborhood structure for repeated strategy decisions.
//
// The distributed robust PTAS re-reads the same static neighborhoods every
// decision slot: leader election looks at (2r+1)-hop balls, local MWIS at
// r-hop balls (paper §IV-C). Both depend only on the graph and r — never on
// the weights — so they are computed once here (one bounded BFS per vertex)
// and stored flat in CSR form. `DistributedRobustPtas` walks these spans
// instead of re-flooding max-relaxation rounds and re-running BFS per
// leader.
//
// The election-ball layer is *tiered*, selected per graph the same way
// `Graph::finalize()` selects dense-vs-sparse adjacency:
//
//   - kExplicit (n <= Graph::kAdjacencyMatrixLimit): every (2r+1)-ball is a
//     stored int32 CSR span, as the r-balls always are. Fast to scan, and
//     cheap at small n.
//   - kImplicit (larger graphs): only the per-vertex ball *size* is stored
//     (4 bytes/vertex); membership is re-enumerated on demand by bounded
//     BFS (`BfsScratch::k_hop_find`). At 50k vertices / r = 2 the explicit
//     e-ball spans are ~100 MB and dwarf everything else in the cache;
//     dropping them is what lets the cached decision path reach 10^6
//     vertices on a normal dev box. The election only ever runs an
//     existence scan (first blocker) over the ball, and its verdict is
//     scan-order independent, so decisions are byte-identical across tiers
//     (fuzzed by tests/tiered_simd_differential_test.cc).
//
// `MHCA_EBALL_TIER=explicit|implicit` overrides the size rule (read per
// construction — tests force both tiers on the same graph).
//
// Optionally (`build_covers`) the cache also memoizes, per vertex, a greedy
// clique cover of its r-ball computed in the weight-free id-ascending order
// (`build_ball_cover`): the ball's clique *structure* never changes between
// slots, only the weights do, so the partition can be reused by restricting
// it to the current candidate subset (a subset of a clique is a clique).
// Covers are opt-in because the weight-free partition is measurably weaker
// as a bound than the per-solve weight-descending cover on hard instances
// (see src/mwis/README.md for the measurement); they pay off only where
// cover construction, not tree search, dominates.
//
// Reuse contract: the cache borrows the graph; the graph must be finalized
// first. When the graph *does* change (dynamics, src/dynamics/README.md),
// `apply_delta` re-synchronizes the cache by recomputing only the balls
// that can have moved — vertices within 2r+1 hops of a touched vertex —
// instead of re-running one BFS per vertex.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "util/assert.h"

namespace mhca {

class NeighborhoodCache {
 public:
  enum class EballTier { kExplicit, kImplicit };

  NeighborhoodCache() = default;

  /// Precompute, for every vertex v of g, the sorted r-hop ball J_r(v)
  /// (always an explicit CSR span) and the (2r+1)-hop election ball
  /// J_{2r+1}(v) — stored per the selected tier (see file comment). Both
  /// include v. With `build_covers`, also memoize each r-ball's clique
  /// cover.
  ///
  /// `parallelism` fans the per-vertex BFS across worker threads with a
  /// two-pass count-then-fill layout into the CSR arrays (pass 1 sizes
  /// every ball, a prefix sum fixes each vertex's span, pass 2 re-runs the
  /// BFS writing into its disjoint slice), so the built cache is
  /// byte-identical at any worker count *and* at either tier (the implicit
  /// tier keeps both passes; its fill pass checks the re-enumerated e-ball
  /// size against the count pass and simply doesn't store the members).
  /// 1 = the serial single-pass build; 0 = the MHCA_CACHE_BUILD_WORKERS
  /// environment variable if set (CI uses it to pin determinism across
  /// worker counts), else one worker per hardware thread.
  NeighborhoodCache(const Graph& g, int r, bool build_covers = false,
                    int parallelism = 0);

  bool built() const { return !r_offsets_.empty(); }
  bool has_covers() const { return !cover_counts_.empty(); }
  int r() const { return r_; }
  int size() const { return size_; }
  EballTier eball_tier() const { return tier_; }

  /// Tier the constructor will pick for an n-vertex graph: the
  /// MHCA_EBALL_TIER override if set, else explicit iff
  /// n <= Graph::kAdjacencyMatrixLimit (the same threshold that selects the
  /// dense adjacency representation).
  static EballTier select_eball_tier(int n);

  /// Effective worker count the build will use for `parallelism` on an
  /// n-vertex graph (resolves 0 via MHCA_CACHE_BUILD_WORKERS, then
  /// hardware_concurrency, clamped to n). Exposed so benches can report
  /// the value actually used.
  static int build_workers(int parallelism, int n);

  /// Sorted vertices within r hops of v, including v.
  std::span<const int> r_ball(int v) const {
    return span_of(r_offsets_, r_data_, v);
  }

  /// Sorted vertices within 2r+1 hops of v, including v. Explicit tier
  /// only — the implicit tier stores no membership; enumerate with
  /// `BfsScratch::k_hop_find` / `k_hop_neighborhood` instead.
  std::span<const int> election_ball(int v) const {
    MHCA_ASSERT(tier_ == EballTier::kExplicit,
                "election_ball spans exist only on the explicit tier");
    return span_of(e_offsets_, e_data_, v);
  }

  /// Clique id per member of r_ball(v), aligned with that span. Ids are
  /// dense in [0, r_ball_clique_count(v)).
  std::span<const int> r_ball_cover(int v) const {
    return span_of(r_offsets_, cover_data_, v);
  }

  int r_ball_clique_count(int v) const {
    return cover_counts_[static_cast<std::size_t>(v)];
  }

  int r_ball_size(int v) const {
    return static_cast<int>(r_ball(v).size());
  }

  /// |J_{2r+1}(v)| — stored on both tiers (the protocol's message
  /// accounting needs it every round; 4 bytes/vertex is the whole price of
  /// the implicit tier).
  int election_ball_size(int v) const {
    if (tier_ == EballTier::kImplicit)
      return e_sizes_[static_cast<std::size_t>(v)];
    return static_cast<int>(election_ball(v).size());
  }

  /// Total stored ball entries (memory introspection; the implicit tier
  /// contributes no e-ball entries).
  std::int64_t total_entries() const {
    return static_cast<std::int64_t>(r_data_.size() + e_data_.size() +
                                     cover_data_.size());
  }

  /// Bytes actually held by the cache's arrays.
  std::int64_t resident_bytes() const;

  /// Bytes the cache would hold with the e-ball layer stored explicitly
  /// (the pre-tiered layout): equals resident_bytes() on the explicit
  /// tier. bench_decision_path gates explicit_layout_bytes() /
  /// resident_bytes() >= 4 at the 50k / r=2 cell (`cache_bytes_ok`).
  std::int64_t explicit_layout_bytes() const;

  /// Re-synchronize with a graph that just changed. `touched` are the
  /// vertices incident to an added/removed edge (the graph must already be
  /// patched). Affected = one multi-source BFS to 2r+1 hops from `touched`
  /// on the new graph. That single new-graph sweep is complete: touched
  /// holds both endpoints of every changed edge, so (a) a vertex entering
  /// some ball got there via an added edge whose endpoints are touched,
  /// and (b) a vertex leaving one had an old path through a removed edge —
  /// the prefix of that path up to the *first* removed edge survives in
  /// the new graph and ends at a touched vertex. Either way the ball's
  /// owner is within 2r+1 new-graph hops of `touched`. (Earlier revisions
  /// also unioned the stored old election balls of the touched vertices;
  /// that added only vertices whose balls hadn't changed — and the
  /// implicit tier has no stored balls to read.)
  ///
  /// Only affected vertices re-run BFS (and cover construction), and only
  /// moved bytes are written: spans whose size is unchanged — and every
  /// span before the first size change — keep their offsets and are
  /// patched in place; the suffix from the first size-changing vertex on
  /// is rewritten once. On the implicit tier the e-ball update is just the
  /// affected sizes. The result is byte-identical to a from-scratch
  /// rebuild (tests/dynamics_differential_test.cc fuzzes this claim).
  void apply_delta(const Graph& g, std::span<const int> touched);

  /// Affected vertices of the last apply_delta (introspection for benches).
  int last_invalidated() const { return last_invalidated_; }

  /// Greedy clique cover of `ball` (sorted vertex ids of g) in id-ascending
  /// order: each vertex joins the first clique it is fully adjacent to, else
  /// opens a new one. Writes the clique id of ball[i] to clique_of[i]
  /// (resized) and returns the clique count. Weight-free and deterministic,
  /// so a memoized cover and a freshly built one are always identical —
  /// the seed decision path rebuilds this per solve, the cached path reads
  /// it back from the cache, and both reach byte-identical solver behavior.
  static int build_ball_cover(const Graph& g, std::span<const int> ball,
                              std::vector<int>& clique_of);

 private:
  static std::span<const int> span_of(const std::vector<std::int64_t>& off,
                                      const std::vector<int>& data, int v) {
    const auto b = static_cast<std::size_t>(off[static_cast<std::size_t>(v)]);
    const auto e =
        static_cast<std::size_t>(off[static_cast<std::size_t>(v) + 1]);
    return {data.data() + b, e - b};
  }

  int r_ = 0;
  int size_ = 0;
  EballTier tier_ = EballTier::kExplicit;
  std::vector<std::int64_t> r_offsets_;  ///< size_+1.
  std::vector<int> r_data_;
  std::vector<std::int64_t> e_offsets_;  ///< size_+1; explicit tier only.
  std::vector<int> e_data_;              ///< Explicit tier only.
  std::vector<int> e_sizes_;             ///< size_; implicit tier only.
  std::vector<int> cover_data_;          ///< Aligned with r_data_ when built.
  std::vector<int> cover_counts_;        ///< Cliques per r-ball when built.
  int last_invalidated_ = 0;
};

}  // namespace mhca
