// Bounded-hop BFS utilities (r-hop neighborhoods J_{G,r}(v), hop distances).
//
// These are the geometric primitives of the robust PTAS: LocalLeader election
// uses (2r+1)-hop neighborhoods, local MWIS uses r-hop neighborhoods, and
// result broadcast reaches (3r+1) hops (paper §IV-C).
#pragma once

#include <limits>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "util/assert.h"

namespace mhca {

/// Reusable BFS workspace. Uses a stamp array so repeated traversals over the
/// same graph do not pay an O(V) clear each time.
class BfsScratch {
 public:
  explicit BfsScratch(int n = 0) { resize(n); }

  void resize(int n);

  /// Collect all vertices u with hop distance d(v, u) <= k, **including v**,
  /// in BFS (then sorted ascending) order.
  std::vector<int> k_hop_neighborhood(const Graph& g, int v, int k);

  /// As above but appends to `out` (cleared first); avoids an allocation.
  void k_hop_neighborhood(const Graph& g, int v, int k, std::vector<int>& out);

  /// Collect J_{k_inner}(v) and J_{k_outer}(v) (k_inner <= k_outer) in one
  /// BFS; both outputs are cleared first and sorted ascending, including v.
  void two_radius_neighborhood(const Graph& g, int v, int k_inner,
                               int k_outer, std::vector<int>& inner,
                               std::vector<int>& outer);

  /// |J_{k_inner}(v)| and |J_{k_outer}(v)| in one BFS without materializing
  /// or sorting either ball — the count pass of the NeighborhoodCache's
  /// count-then-fill parallel build only needs the sizes.
  void two_radius_sizes(const Graph& g, int v, int k_inner, int k_outer,
                        std::int64_t& inner_size, std::int64_t& outer_size);

  /// Collect all vertices within k hops of *any* source (sources included;
  /// duplicates among sources are fine), sorted ascending. This is the
  /// blast-radius primitive of incremental maintenance: vertices within
  /// 2r+1 hops of an edge change are exactly the ones whose cached balls
  /// can differ (see NeighborhoodCache::apply_delta).
  void multi_source_k_hop(const Graph& g, std::span<const int> sources, int k,
                          std::vector<int>& out);

  /// Early-exit bounded BFS: visit the vertices of J_k(v) (v included) in
  /// BFS order and return the first one satisfying `pred`, or -1 when none
  /// does. Nothing is materialized or sorted — this is the enumeration
  /// primitive of the NeighborhoodCache's *implicit* election-ball tier,
  /// where the (2r+1)-ball is walked on demand instead of stored (see
  /// src/graph/README.md). The visited set is exactly the stored ball, so
  /// any existence test over it (e.g. the election blocker predicate, whose
  /// verdict is scan-order independent) answers identically to a scan of
  /// the explicit span.
  template <class Pred>
  int k_hop_find(const Graph& g, int v, int k, Pred&& pred) {
    MHCA_ASSERT(v >= 0 && v < g.size(), "vertex out of range");
    MHCA_ASSERT(k >= 0, "hop count must be non-negative");
    if (static_cast<int>(stamp_.size()) != g.size()) resize(g.size());
    ++epoch_;
    queue_.clear();
    queue_.push_back(v);
    stamp_[static_cast<std::size_t>(v)] = epoch_;
    dist_[static_cast<std::size_t>(v)] = 0;
    std::size_t head = 0;
    while (head < queue_.size()) {
      const int x = queue_[head++];
      if (pred(x)) return x;
      const int dx = dist_[static_cast<std::size_t>(x)];
      if (dx == k) continue;
      for (int u : g.neighbors(x)) {
        const auto ui = static_cast<std::size_t>(u);
        if (stamp_[ui] != epoch_) {
          stamp_[ui] = epoch_;
          dist_[ui] = dx + 1;
          queue_.push_back(u);
        }
      }
    }
    return -1;
  }

  /// Hop distance between u and v, or `unreachable()` if no path within
  /// `cap` hops exists.
  int hop_distance(const Graph& g, int u, int v,
                   int cap = std::numeric_limits<int>::max());

  static constexpr int unreachable() { return std::numeric_limits<int>::max(); }

 private:
  std::vector<std::uint32_t> stamp_;
  std::vector<int> dist_;
  std::vector<int> queue_;
  std::uint32_t epoch_ = 0;
};

/// Convenience wrapper allocating a scratch internally.
std::vector<int> k_hop_neighborhood(const Graph& g, int v, int k);

/// Convenience wrapper allocating a scratch internally.
int hop_distance(const Graph& g, int u, int v,
                 int cap = std::numeric_limits<int>::max());

}  // namespace mhca
