#include "graph/hop.h"

#include <algorithm>

#include "util/assert.h"

namespace mhca {

void BfsScratch::resize(int n) {
  stamp_.assign(static_cast<std::size_t>(n), 0);
  dist_.assign(static_cast<std::size_t>(n), 0);
  queue_.clear();
  queue_.reserve(static_cast<std::size_t>(n));
  epoch_ = 0;
}

std::vector<int> BfsScratch::k_hop_neighborhood(const Graph& g, int v, int k) {
  std::vector<int> out;
  k_hop_neighborhood(g, v, k, out);
  return out;
}

void BfsScratch::k_hop_neighborhood(const Graph& g, int v, int k,
                                    std::vector<int>& out) {
  MHCA_ASSERT(v >= 0 && v < g.size(), "vertex out of range");
  MHCA_ASSERT(k >= 0, "hop count must be non-negative");
  if (static_cast<int>(stamp_.size()) != g.size()) resize(g.size());
  ++epoch_;
  out.clear();
  queue_.clear();
  queue_.push_back(v);
  stamp_[static_cast<std::size_t>(v)] = epoch_;
  dist_[static_cast<std::size_t>(v)] = 0;
  std::size_t head = 0;
  while (head < queue_.size()) {
    const int x = queue_[head++];
    out.push_back(x);
    const int dx = dist_[static_cast<std::size_t>(x)];
    if (dx == k) continue;
    for (int u : g.neighbors(x)) {
      auto ui = static_cast<std::size_t>(u);
      if (stamp_[ui] != epoch_) {
        stamp_[ui] = epoch_;
        dist_[ui] = dx + 1;
        queue_.push_back(u);
      }
    }
  }
  std::sort(out.begin(), out.end());
}

void BfsScratch::two_radius_neighborhood(const Graph& g, int v, int k_inner,
                                         int k_outer, std::vector<int>& inner,
                                         std::vector<int>& outer) {
  MHCA_ASSERT(0 <= k_inner && k_inner <= k_outer,
              "need 0 <= k_inner <= k_outer");
  k_hop_neighborhood(g, v, k_outer, outer);
  // The BFS left dist_ stamped for every vertex of the outer ball; the
  // inner ball is its distance-<= k_inner subset (outer is already sorted).
  inner.clear();
  for (int u : outer)
    if (dist_[static_cast<std::size_t>(u)] <= k_inner) inner.push_back(u);
}

void BfsScratch::two_radius_sizes(const Graph& g, int v, int k_inner,
                                  int k_outer, std::int64_t& inner_size,
                                  std::int64_t& outer_size) {
  MHCA_ASSERT(0 <= k_inner && k_inner <= k_outer,
              "need 0 <= k_inner <= k_outer");
  MHCA_ASSERT(v >= 0 && v < g.size(), "vertex out of range");
  if (static_cast<int>(stamp_.size()) != g.size()) resize(g.size());
  ++epoch_;
  queue_.clear();
  queue_.push_back(v);
  stamp_[static_cast<std::size_t>(v)] = epoch_;
  dist_[static_cast<std::size_t>(v)] = 0;
  inner_size = 0;
  std::size_t head = 0;
  while (head < queue_.size()) {
    const int x = queue_[head++];
    const int dx = dist_[static_cast<std::size_t>(x)];
    if (dx <= k_inner) ++inner_size;
    if (dx == k_outer) continue;
    for (int u : g.neighbors(x)) {
      auto ui = static_cast<std::size_t>(u);
      if (stamp_[ui] != epoch_) {
        stamp_[ui] = epoch_;
        dist_[ui] = dx + 1;
        queue_.push_back(u);
      }
    }
  }
  outer_size = static_cast<std::int64_t>(queue_.size());
}

void BfsScratch::multi_source_k_hop(const Graph& g,
                                    std::span<const int> sources, int k,
                                    std::vector<int>& out) {
  MHCA_ASSERT(k >= 0, "hop count must be non-negative");
  if (static_cast<int>(stamp_.size()) != g.size()) resize(g.size());
  ++epoch_;
  out.clear();
  queue_.clear();
  for (int v : sources) {
    MHCA_ASSERT(v >= 0 && v < g.size(), "vertex out of range");
    const auto vi = static_cast<std::size_t>(v);
    if (stamp_[vi] == epoch_) continue;
    stamp_[vi] = epoch_;
    dist_[vi] = 0;
    queue_.push_back(v);
  }
  std::size_t head = 0;
  while (head < queue_.size()) {
    const int x = queue_[head++];
    out.push_back(x);
    const int dx = dist_[static_cast<std::size_t>(x)];
    if (dx == k) continue;
    for (int u : g.neighbors(x)) {
      auto ui = static_cast<std::size_t>(u);
      if (stamp_[ui] != epoch_) {
        stamp_[ui] = epoch_;
        dist_[ui] = dx + 1;
        queue_.push_back(u);
      }
    }
  }
  std::sort(out.begin(), out.end());
}

int BfsScratch::hop_distance(const Graph& g, int u, int v, int cap) {
  MHCA_ASSERT(u >= 0 && u < g.size() && v >= 0 && v < g.size(),
              "vertex out of range");
  if (u == v) return 0;
  if (static_cast<int>(stamp_.size()) != g.size()) resize(g.size());
  ++epoch_;
  queue_.clear();
  queue_.push_back(u);
  stamp_[static_cast<std::size_t>(u)] = epoch_;
  dist_[static_cast<std::size_t>(u)] = 0;
  std::size_t head = 0;
  while (head < queue_.size()) {
    const int x = queue_[head++];
    const int dx = dist_[static_cast<std::size_t>(x)];
    if (dx >= cap) continue;
    for (int w : g.neighbors(x)) {
      auto wi = static_cast<std::size_t>(w);
      if (stamp_[wi] == epoch_) continue;
      if (w == v) return dx + 1;
      stamp_[wi] = epoch_;
      dist_[wi] = dx + 1;
      queue_.push_back(w);
    }
  }
  return unreachable();
}

std::vector<int> k_hop_neighborhood(const Graph& g, int v, int k) {
  BfsScratch scratch(g.size());
  return scratch.k_hop_neighborhood(g, v, k);
}

int hop_distance(const Graph& g, int u, int v, int cap) {
  BfsScratch scratch(g.size());
  return scratch.hop_distance(g, u, v, cap);
}

}  // namespace mhca
