// Network topology generators for experiments and tests.
#pragma once

#include "graph/conflict_graph.h"
#include "util/rng.h"

namespace mhca {

/// Random geometric (unit-disk) network: n nodes uniform in a square of the
/// given side, conflict radius `radius`. If `force_connected`, re-samples
/// until connected (throws after `max_attempts`).
ConflictGraph random_geometric(int n, double side, double radius, Rng& rng,
                               bool force_connected = true,
                               int max_attempts = 200);

/// Random geometric network sized so the *expected* average degree is
/// approximately `avg_degree` (area side chosen as sqrt(n), radius from
/// n*pi*r^2/side^2 = avg_degree).
ConflictGraph random_geometric_avg_degree(int n, double avg_degree, Rng& rng,
                                          bool force_connected = true);

/// Path v0 - v1 - ... - v_{n-1} (the paper's Fig. 5 worst case). Nodes are
/// positioned on a line at unit spacing.
ConflictGraph linear_network(int n);

/// rows x cols grid with 4-neighborhood conflicts.
ConflictGraph grid_network(int rows, int cols);

/// Complete conflict graph: the single-hop setting of prior MAB works,
/// where every pair of users conflicts.
ConflictGraph complete_network(int n);

/// Erdős–Rényi G(n, p); *not* a unit-disk graph — used to exercise the
/// location-free algorithms on non-geometric topologies.
ConflictGraph erdos_renyi(int n, double p, Rng& rng);

}  // namespace mhca
